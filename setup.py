"""Setup shim: enables legacy editable installs on machines without `wheel`.

The offline environment here lacks the `wheel` package, so PEP 660 editable
installs (`pip install -e .`) cannot build; `python setup.py develop` works.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
