"""E10: near-linear atmosphere scaling on 8, 16 and 32 processors.

Paper section 5: "We have seen almost linear scaling on 8, 16, and 32
atmosphere processors, which is what we normally use."  Two measurements:
the event-simulator curve with the production ocean allocation, and the
*functional* strong-scaling check — the simulated-MPI distributed transpose
(the spectral transform's communication pattern) run at several rank counts
with bit-identical results.
"""

import numpy as np

from conftest import report
from repro.parallel import block_bounds, run_ranks, transpose_forward
from repro.perf import simulate_coupled_day


def test_atm_scaling_curve(benchmark):
    def curve():
        return {n_atm: simulate_coupled_day(n_atm, n_ocn, seed=0).speedup
                for n_atm, n_ocn in ((8, 1), (16, 1), (32, 2))}

    s = benchmark(curve)
    r1 = s[16] / s[8]
    r2 = s[32] / s[16]
    report("E10: atmosphere strong scaling", [
        ("8 atm ranks", "-", f"{s[8]:,.0f}x"),
        ("16 atm ranks", "~2x the 8-rank run", f"{s[16]:,.0f}x ({r1:.2f}x)"),
        ("32 atm ranks", "~2x the 16-rank run", f"{s[32]:,.0f}x ({r2:.2f}x)"),
    ])
    assert r1 > 1.6 and r2 > 1.6          # 'almost linear'


def test_distributed_transpose_correctness(benchmark):
    """The spectral transform's alltoall produces identical data at any
    rank count (the functional substrate under the scaling claim)."""
    nrows, ncols = 40, 16
    rng = np.random.default_rng(0)
    full = rng.normal(size=(nrows, ncols))

    def run_at(size):
        def worker(comm):
            rlo, rhi = block_bounds(nrows, comm.size, comm.rank)
            cols = transpose_forward(comm, full[rlo:rhi].copy(), nrows, ncols)
            return cols

        return run_ranks(size, worker)

    out4 = benchmark(run_at, 4)
    out1 = run_at(1)
    out8 = run_at(8)
    np.testing.assert_allclose(np.concatenate(out4, axis=1), full)
    np.testing.assert_allclose(np.concatenate(out1, axis=1), full)
    np.testing.assert_allclose(np.concatenate(out8, axis=1), full)
