"""E11: computational cost ~ inverse cube of the horizontal spacing.

Paper section 2: "the computational cost, even without increases in
vertical resolution ... is roughly proportional to the inverse cube of the
horizontal spacing of represented points" — the scaling law motivating
FOAM's resolution choices.  Verified both in the cost model and in the
actual spectral dynamical core's wall-clock.
"""

import time


from conftest import report
from repro.atmosphere.dynamics import SpectralDynamicalCore
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid
from repro.perf import AtmosphereCost


def test_cube_law_cost_model(benchmark):
    def ratios():
        out = {}
        base = AtmosphereCost(nlat=32, nlon=64, mmax=21, dt=2400.0)
        for f, (nlat, nlon, mmax, dt) in {
                2: (64, 128, 42, 1200.0),
                3: (96, 192, 63, 800.0)}.items():
            fine = AtmosphereCost(nlat=nlat, nlon=nlon, mmax=mmax, dt=dt)
            out[f] = fine.day_ops() / base.day_ops()
        return out

    r = benchmark(ratios)
    report("E11: cost vs resolution (cost model)", [
        ("2x finer spacing", "~8x (2^3)", f"{r[2]:.1f}x"),
        ("3x finer spacing", "~27x (3^3)", f"{r[3]:.1f}x"),
    ])
    assert 6.0 < r[2] < 11.0
    assert 18.0 < r[3] < 38.0


def test_cube_law_implementation(benchmark):
    """Measured wall-clock of the real dynamical core at two resolutions."""
    def day_wall(nlat, nlon, mmax, dt):
        tr = SpectralTransform(nlat, nlon, Truncation(mmax))
        core = SpectralDynamicalCore(tr, VerticalGrid.ccm_like(4), dt=dt)
        st = core.initial_state(noise_amplitude=1e-8)
        prev, curr = st, core._forward_start(st)
        nsteps = int(86400.0 / dt)
        t0 = time.perf_counter()
        for _ in range(nsteps):
            prev, curr = core.step(prev, curr)
        return time.perf_counter() - t0

    def measure():
        coarse = day_wall(16, 32, 8, 3600.0)
        fine = day_wall(32, 64, 16, 1800.0)
        return fine / coarse

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("E11: cost vs resolution (implementation)", [
        ("2x finer spacing, measured wall-clock", "~8x", f"{ratio:.1f}x"),
    ])
    # Python overheads flatten the exponent at these small sizes; require
    # clear super-linear growth with the right trend.
    assert ratio > 3.0
