"""Fused kernel-plan benchmark (ISSUE 10).

Headline number: **fused vs unfused speedup on the batched spectral
transform section** at nens=16 on the tier-1 test grid.  "Fused" is the
:class:`~repro.backend.kernels.SpectralKernelPlan` path the model runs by
default — stacked Legendre einsums over all (level, member) slices at once,
workspace-resident intermediates, one irfft per direction pair.  "Unfused"
is the seed-era formulation those plans replaced: a python loop over every
(level, member) slice calling the naive 2-D reference kernels
(``analyze_ref`` & co — the same oracles the bitwise tests pin against).

Also reports the end-to-end coupled-day wall with ``FOAM_FUSED`` on vs off
(the full-model effect is diluted by physics/ocean/coupler time, so it is
reported, not gated), and — when torch is importable — a per-backend
dimension timing the same fused section under ``FOAM_BACKEND=torch``.

Persists ``BENCH_kernels.json`` (set ``BENCH_KERNELS_PATH`` to move it):
the machine-checkable record that the fused spectral section beats the
unfused loop by >= 1.5x at nens=16.
"""

import json
import os
import time

import numpy as np

from conftest import report
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.backend import get_backend
from repro.backend import kernels as K
from repro.core import FoamModel
# Alias keeps pytest from collecting the config factory as a test.
from repro.core.config import test_config as _test_config

GATE_NENS = 16
NENS_SWEEP = (1, 4, 16)
WARMUP_REPS = 2


def _fast() -> bool:
    return bool(os.environ.get("FOAM_BENCH_FAST"))


def _section_reps() -> int:
    return 3 if _fast() else 10


def _rounds(nens: int) -> int:
    if _fast():
        return 2
    return 6 if nens == GATE_NENS else 3


def _make_transform(backend="numpy") -> SpectralTransform:
    # The headline gate is numpy-vs-numpy; pin the backend so the ratio
    # doesn't silently compare across backends under FOAM_BACKEND=torch.
    cfg = _test_config()
    return SpectralTransform(cfg.atm_nlat, cfg.atm_nlon,
                             Truncation(cfg.atm_mmax), backend=backend)


def _make_fields(tr: SpectralTransform, nens: int):
    cfg = _test_config()
    rng = np.random.default_rng(7)
    shape = (cfg.atm_nlev, nens) if nens > 1 else (cfg.atm_nlev,)
    spec = (rng.normal(size=shape + tr.spec_shape)
            + 1j * rng.normal(size=shape + tr.spec_shape))
    spec[..., 0, :] = spec[..., 0, :].real
    spec = spec * tr._mask
    grid = rng.normal(size=shape + (tr.nlat, tr.nlon))
    u = rng.normal(size=shape + (tr.nlat, tr.nlon))
    v = rng.normal(size=shape + (tr.nlat, tr.nlon))
    return spec, grid, u, v


def _fused_section(tr, spec, grid, u, v, reps: int) -> None:
    """One batched pass over every transform the dycore's hot loop uses."""
    for _ in range(reps):
        tr.analyze(grid)
        tr.synthesize_many(spec, spec, spec)
        tr.uv_from_vortdiv(spec, spec)
        tr.vortdiv_from_uv(u, v)
        tr.gradient(spec)


def _unfused_section(tr, spec, grid, u, v, reps: int) -> None:
    """The loop the plan replaced: naive 2-D kernels per (level, member)."""
    flat_spec = spec.reshape((-1,) + tr.spec_shape)
    flat_grid = grid.reshape((-1, tr.nlat, tr.nlon))
    flat_u = u.reshape((-1, tr.nlat, tr.nlon))
    flat_v = v.reshape((-1, tr.nlat, tr.nlon))
    n = flat_spec.shape[0]
    for _ in range(reps):
        for i in range(n):
            K.analyze_ref(tr, flat_grid[i])
            for _f in range(3):
                K.synthesize_ref(tr, flat_spec[i])
            K.uv_from_vortdiv_ref(tr, flat_spec[i], flat_spec[i])
            K.vortdiv_from_uv_ref(tr, flat_u[i], flat_v[i])
            K.gradient_ref(tr, flat_spec[i])


def _compare_section(nens: int, reps: int) -> dict:
    """Time fused vs unfused spectral sections, interleaved best-of."""
    tr = _make_transform()
    spec, grid, u, v = _make_fields(tr, nens)
    _fused_section(tr, spec, grid, u, v, WARMUP_REPS)
    _unfused_section(tr, spec, grid, u, v, 1)

    fused_best = unfused_best = float("inf")
    for _ in range(_rounds(nens)):
        t0 = time.perf_counter()
        _fused_section(tr, spec, grid, u, v, reps)
        fused_best = min(fused_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        _unfused_section(tr, spec, grid, u, v, reps)
        unfused_best = min(unfused_best, time.perf_counter() - t0)

    return {
        "nens": nens,
        "reps": reps,
        "fused_seconds": fused_best,
        "unfused_seconds": unfused_best,
        "speedup": unfused_best / fused_best,
    }


def _coupled_day_wall() -> dict:
    """End-to-end coupled day, FOAM_FUSED on vs off (reported, not gated)."""
    steps = 6 if _fast() else 24
    walls = {}
    prior = os.environ.get("FOAM_FUSED")
    try:
        for label, value in (("fused", "1"), ("unfused", "0")):
            os.environ["FOAM_FUSED"] = value
            cfg = _test_config()
            cfg.backend = "numpy"
            model = FoamModel(cfg)
            state = model.initial_state()
            state = model.coupled_step(state)       # warm caches
            t0 = time.perf_counter()
            for _ in range(steps):
                state = model.coupled_step(state)
            walls[label] = time.perf_counter() - t0
    finally:
        if prior is None:
            os.environ.pop("FOAM_FUSED", None)
        else:
            os.environ["FOAM_FUSED"] = prior
    return {
        "steps": steps,
        "fused_seconds": walls["fused"],
        "unfused_seconds": walls["unfused"],
        "speedup": walls["unfused"] / walls["fused"],
    }


def _torch_section() -> dict | None:
    """The fused section under the torch backend, when torch is present."""
    try:
        import torch  # noqa: F401
    except ImportError:
        return None
    bk = get_backend("torch")
    tr = _make_transform(backend=bk)
    spec, grid, u, v = _make_fields(tr, GATE_NENS)
    reps = _section_reps()
    _fused_section(tr, spec, grid, u, v, WARMUP_REPS)
    best = float("inf")
    for _ in range(_rounds(GATE_NENS)):
        t0 = time.perf_counter()
        _fused_section(tr, spec, grid, u, v, reps)
        best = min(best, time.perf_counter() - t0)
    return {"nens": GATE_NENS, "reps": reps, "fused_seconds": best}


def test_kernel_plan_speedup(benchmark):
    reps = _section_reps()

    runs = {}
    for nens in NENS_SWEEP:
        if nens == GATE_NENS:
            runs[str(nens)] = benchmark.pedantic(
                _compare_section, kwargs={"nens": nens, "reps": reps},
                rounds=1, iterations=1)
        else:
            runs[str(nens)] = _compare_section(nens, reps)

    day = _coupled_day_wall()
    torch_run = _torch_section()

    gate = runs[str(GATE_NENS)]["speedup"]
    # The FAST smoke job measures too few reps for a tight bound; it gates
    # on a sanity threshold and the full run enforces the real one.
    floor = 1.2 if _fast() else 1.5

    # Persist the artifact before asserting so a failed gate still uploads
    # the measurements that explain it.
    out_path = os.environ.get("BENCH_KERNELS_PATH", "BENCH_kernels.json")
    payload = {
        "config": "test",
        "section_reps": reps,
        "rounds": {str(n): _rounds(n) for n in NENS_SWEEP},
        "nens_sweep": list(NENS_SWEEP),
        "gate": {"nens": GATE_NENS, "speedup": gate, "floor": floor},
        "runs": runs,
        "coupled_day": day,
        "torch": torch_run,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    rows = []
    for nens in NENS_SWEEP:
        r = runs[str(nens)]
        rows.append((f"nens={nens} fused section s", "< unfused",
                     f"{r['fused_seconds']:.4f}"))
        rows.append((f"nens={nens} unfused section s", "baseline",
                     f"{r['unfused_seconds']:.4f}"))
        rows.append((f"nens={nens} speedup", ">= 1.5x @ 16",
                     f"{r['speedup']:.2f}x"))
    rows.append(("coupled day fused s", "< unfused",
                 f"{day['fused_seconds']:.3f}"))
    rows.append(("coupled day unfused s", "baseline",
                 f"{day['unfused_seconds']:.3f}"))
    rows.append(("coupled day speedup", "report only",
                 f"{day['speedup']:.2f}x"))
    if torch_run:
        rows.append(("torch fused section s", "report only",
                     f"{torch_run['fused_seconds']:.4f}"))
    rows.append(("kernels artifact", "BENCH_kernels.json", out_path))
    report(f"Kernel plans: fused vs unfused (test grid, {reps} reps)", rows)

    # ISSUE 10 acceptance: the fused batched spectral section beats the
    # unfused per-slice loop by >= 1.5x at nens=16 on the tier-1 grid.
    assert gate >= floor, (
        f"nens={GATE_NENS} fused speedup {gate:.2f}x below {floor}x")
    # Fusing must never lose to the unfused loop at any batch size.
    for nens in NENS_SWEEP:
        assert runs[str(nens)]["speedup"] >= 1.0, (
            f"nens={nens}: speedup {runs[str(nens)]['speedup']:.2f}x")
