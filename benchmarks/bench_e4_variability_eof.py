"""E4 / Figure 4: VARIMAX-rotated EOF of low-pass-filtered SST variability.

The paper's Figure 4: a rotated EOF of 60-month low-passed SST explaining
~15 % of filtered variance, correlating the North Atlantic and North
Pacific, with a century time scale.  The full 500-year run is beyond a
pure-Python session, so the bench exercises the identical pipeline on a
synthetic SST record with a *known* embedded two-basin decadal mode plus
realistic weather noise — verifying the pipeline finds the mode, assigns it
the right variance share, and recovers its (long) time scale.  The same
pipeline runs on genuine model output in examples/variability_eof.py.
"""

import numpy as np

from conftest import report
from repro.analysis import (
    anomalies,
    compute_eofs,
    lowpass,
    rotated_variance_fractions,
    varimax,
)


def make_record(rng, nt=720, ny=24, nx=36):
    """60 years of monthly SST anomalies with an embedded two-basin mode."""
    lat = np.linspace(-70, 70, ny)[:, None] * np.ones((1, nx))
    lon = np.linspace(0, 350, nx)[None, :] * np.ones((ny, 1))
    # The two-basin pattern: same-signed lobes in N Atlantic and N Pacific.
    natl = np.exp(-(((lat - 45) / 12) ** 2 + ((lon - 320) / 25) ** 2))
    npac = np.exp(-(((lat - 42) / 12) ** 2 + ((lon - 180) / 30) ** 2))
    pattern = natl + npac
    t = np.arange(nt)
    decadal = np.sin(2 * np.pi * t / 300.0)        # 25-year oscillation
    record = 0.8 * decadal[:, None, None] * pattern[None]
    record += 0.9 * rng.normal(size=(nt, ny, nx))  # weather noise
    # A competing short-period tropical mode (ENSO-like).
    enso = np.exp(-((lat / 8) ** 2 + ((lon - 230) / 40) ** 2))
    record += 0.7 * np.sin(2 * np.pi * t / 48.0)[:, None, None] * enso[None]
    return record, pattern, lat


def analyze(record, lat):
    nt = record.shape[0]
    anoms = anomalies(record).reshape(nt, -1)
    filt = lowpass(anoms, cutoff_steps=60, half_width=60)   # 60-month low-pass
    w = np.cos(np.deg2rad(lat)).ravel()
    w = w / w.sum()
    res = compute_eofs(filt, n_modes=4, weights=w)
    rotated, rot = varimax(res.patterns)
    frac = rotated_variance_fractions(res.pcs, rot, np.sum(res.pcs**2)) \
        * res.variance_fraction.sum()
    pcs_rot = res.pcs @ rot
    return res, rotated, frac, pcs_rot


def test_figure4_two_basin_variability(benchmark, rng):
    record, true_pattern, lat = make_record(rng)
    res, rotated, frac, pcs_rot = benchmark(analyze, record, lat)

    # Which rotated mode matches the embedded two-basin pattern?
    w = np.cos(np.deg2rad(lat)).ravel()
    target = (true_pattern.ravel() * np.sqrt(w / w.sum()))
    target /= np.linalg.norm(target)
    sims = [abs(float(np.dot(rotated[k] / np.linalg.norm(rotated[k]), target)))
            for k in range(rotated.shape[0])]
    k_best = int(np.argmax(sims))

    series = pcs_rot[:, k_best]
    lag12 = float(np.corrcoef(series[:-12], series[12:])[0, 1])

    report("E4: Figure 4 — two-basin variability", [
        ("rotated mode matches two-basin pattern", "yes", f"r = {sims[k_best]:.2f}"),
        ("variance of 60-mo filtered SST explained", "~15 %",
         f"{100 * frac[k_best]:.0f} %"),
        ("time scale (12-month lag autocorr)", "long (decadal)",
         f"{lag12:.2f}"),
    ])
    assert sims[k_best] > 0.85            # the pipeline isolates the mode
    assert 0.05 < frac[k_best] < 0.65     # an O(15%) share of filtered variance
    assert lag12 > 0.5                     # long time scale survives filtering
