"""E6: stand-alone ocean throughput — >105,000x real time on 64 nodes.

Paper section 4.2: "We have benchmarked the ocean code at 128 x 128
resolution on 64 SP2 nodes running at over 105,000 times real time."
The bench regenerates the number on the machine model, and separately
measures the *actual Python ocean* stepping rate to document what this
reproduction achieves in serial NumPy.
"""


import numpy as np

from conftest import report
from repro.ocean import OceanForcing, OceanGrid, OceanModel, world_topography
from repro.perf import simulate_ocean_day


def test_ocean_throughput_model(benchmark):
    res64 = benchmark(simulate_ocean_day, 64)
    res1 = simulate_ocean_day(1)

    report("E6: ocean-only throughput (128x128x16)", [
        ("64 SP2 nodes", ">105,000x", f"{res64.speedup:,.0f}x"),
        ("1 SP2 node", "-", f"{res1.speedup:,.0f}x"),
        ("64-node efficiency vs 1 node", "sub-linear (small domain)",
         f"{100 * res64.speedup / (64 * res1.speedup):.0f} %"),
    ])
    assert res64.speedup > 105_000.0
    assert res64.speedup < 64 * res1.speedup      # communication costs bite


def test_ocean_python_stepping_rate(benchmark):
    """The reproduction's own ocean throughput (serial NumPy, small grid)."""
    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    model = OceanModel(g, land, depth)
    state = model.initial_state()
    forcing = OceanForcing.zeros(g.ny, g.nx)
    # Warm up once (allocations, caches).
    state = model.step(state, forcing)

    result = benchmark(model.step, state, forcing)
    assert np.all(np.isfinite(result.temp))
