"""E1 / Figure 1: the overlap grid — conservative atm<->ocean exchange.

The paper's Figure 1 shows the overlap decomposition and the two averaging
passes (to the ocean, region i; to the atmosphere, region ii).  This bench
builds the paper-resolution overlap grid (R15 atmosphere 48x40 over the
128x128 Mercator ocean), measures the exchange cost, and verifies the
defining property: global flux integrals identical on all three grids.
"""

import numpy as np

from conftest import report
from repro.atmosphere.spectral import gaussian_latitudes
from repro.coupler import OverlapGrid
from repro.ocean import mercator_latitudes


def build_paper_overlap() -> OverlapGrid:
    mu, _ = gaussian_latitudes(40)
    return OverlapGrid(np.arcsin(mu), 48, mercator_latitudes(128), 128)


def test_overlap_exchange(benchmark, rng):
    ov = build_paper_overlap()
    flux = rng.normal(size=(ov.nlat, ov.nlon))

    def exchange():
        atm = ov.to_atm(flux)
        ocn = ov.to_ocn(flux)
        return atm, ocn

    atm, ocn = benchmark(exchange)

    total_overlap = ov.integrate(flux)
    total_atm = ov.integrate_atm(atm)
    valid_total = ov.integrate(np.where(ov.ocean_valid_mask(), flux, 0.0))
    total_ocn = ov.integrate_ocn(ocn)

    rel_err_atm = abs(total_atm - total_overlap) / abs(total_overlap)
    rel_err_ocn = abs(total_ocn - valid_total) / max(abs(valid_total), 1e-30)
    report("E1: overlap grid (Figure 1)", [
        ("overlap cells (48x40 over 128x128)",
         "exact intersections", f"{ov.nlat}x{ov.nlon}"),
        ("flux conservation to atmosphere grid", "exact", f"{rel_err_atm:.2e}"),
        ("flux conservation to ocean grid", "exact", f"{rel_err_ocn:.2e}"),
        ("state variables interpolated", "none", "none (piecewise const)"),
    ])
    assert rel_err_atm < 1e-12
    assert rel_err_ocn < 1e-12
