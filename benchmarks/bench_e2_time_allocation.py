"""E2 / Figure 2: per-processor time allocation for one simulated day.

The paper's Figure 2 shows 17 SP processors over one simulated day: long
green atmosphere bars (with two extra-long radiation steps), red coupler
slivers after each synchronization, a blue ocean bar on the dedicated ocean
node, and purple idle time from imperfect cloud load balancing.  The bench
regenerates that trace from the calibrated event simulator and checks its
qualitative anatomy.
"""

from conftest import report
from repro.perf import simulate_coupled_day


def test_figure2_time_allocation(benchmark):
    result = benchmark(simulate_coupled_day, 16, 1, seed=0)

    traces = result.traces
    b = traces.breakdown()
    # Radiation steps: the two longest atmosphere segments on rank 0.
    segs = [s.duration for s in traces.traces[0].segments
            if s.activity == "atmosphere"]
    segs_sorted = sorted(segs)
    radiation_ratio = segs_sorted[-1] / (sum(segs_sorted[:-2]) / (len(segs) - 2))

    report("E2: Figure 2 — time allocation (17 nodes, 1 simulated day)", [
        ("atmosphere share of processor time", "dominant", f"{100*b['atmosphere']:.0f} %"),
        ("coupler share", "small", f"{100*b['coupler']:.0f} %"),
        ("ocean share (1 of 17 ranks)", "~1 node", f"{100*b['ocean']:.0f} %"),
        ("idle (load imbalance + waits)", "visible", f"{100*b['idle']:.0f} %"),
        ("atmosphere steps per day", "48",
         f"{sum(1 for s in traces.traces[0].segments if s.activity == 'atmosphere')}"),
        ("radiation step vs normal step", "much longer", f"{radiation_ratio:.1f}x"),
        ("throughput at 17 nodes", "2,000-4,000x", f"{result.speedup:,.0f}x"),
    ])
    assert b["atmosphere"] > 0.5
    assert radiation_ratio > 5.0
    assert 1500 < result.speedup < 5000
    # All 17 ranks traced; ocean rank mostly blue.
    assert traces.nranks == 17
    ocean_trace = traces.traces[16]
    assert ocean_trace.time_in("ocean") > 0
