"""E5: coupled throughput vs node count — 4,000x at 34, ~6,000x at 68.

Paper section 5: "our best performance has been approximately 6,000 times
real time in a run on 68 nodes ... this is a poor scaling from our
production runs ... We typically achieve peak performance faster than 4,000
times real time on 34 nodes."  The bench regenerates the curve on the
calibrated SP2 model and checks the two anchors and the knee.
"""

from conftest import report
from repro.perf import scaling_curve


def test_coupled_speedup_curve(benchmark):
    nodes = [9, 17, 34, 68]
    curve = benchmark(scaling_curve, nodes)

    report("E5: coupled model speedup vs nodes", [
        ("9 nodes (8 atm + 1 ocn)", "-", f"{curve[9]:,.0f}x"),
        ("17 nodes (16 atm + 1 ocn)", "~2,000-3,000x (production)",
         f"{curve[17]:,.0f}x"),
        ("34 nodes (32 atm + 2 ocn)", ">4,000x", f"{curve[34]:,.0f}x"),
        ("68 nodes", "~6,000x (best)", f"{curve[68]:,.0f}x"),
        ("34 -> 68 scaling factor", "poor (<<2)",
         f"{curve[68] / curve[34]:.2f}"),
    ])
    assert curve[34] > 4000.0
    assert 5000.0 < curve[68] < 8000.0
    assert curve[68] / curve[34] < 1.6          # the decomposition knee
    assert curve[17] / curve[9] > 1.6           # near-linear low end
