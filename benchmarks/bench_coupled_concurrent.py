"""Concurrent coupled execution benchmark (ISSUE 5): pool-split speedup.

Times the same trajectory twice — serially (one thread stepping
``FoamModel.coupled_step``) and concurrently on disjoint rank pools
(2 atmosphere + 1 coupler + 1 ocean) — and checks the calibrated event
simulator's prediction of the pool-split speedup against the functional
measurement.  On the GIL-bound simulated-MPI substrate the functional
"speedup" at test-config size is typically *below* 1 (the replicated
spectral work is serialized by the interpreter); the acceptance bar is
that the calibrated prediction tracks the functional number within 25 %,
i.e. the event simulator understands the schedule it is extrapolating.

The benchmark also carries a **per-substrate dimension** (ISSUE 7): the
identical pool layout runs once on rank threads and once on real forked
rank processes (``substrate="process"``), both bitwise-equal to the serial
trajectory, and the headline number is the process-over-thread day-wall
speedup.  On a multi-core host the process substrate escapes the GIL and
must deliver at least 1.5x; on single-core machines (or under
``FOAM_BENCH_FAST``) the ratio is recorded but not gated, since there is
no parallel hardware for the forked ranks to use.

Persists ``BENCH_coupled.json`` (set ``BENCH_COUPLED_PATH`` to move it):
serial vs concurrent wall time per substrate, the process-over-thread
speedup, per-kind idle/wait accounting, overlap (hidden ocean compute),
and the prediction comparison.
"""

import json
import os
import time

import numpy as np

from conftest import report
from repro.core.config import test_config as _test_config
from repro.core.foam import FoamModel
from repro.parallel.coupled import PoolLayout, run_concurrent_coupled
from repro.perf.costmodel import (
    AtmosphereCost,
    OceanCost,
    calibrate_concurrent_from_profile,
    calibrate_from_profile,
)
from repro.perf.eventsim import predict_concurrent_speedup
from repro.perf.profiler import Profiler, thread_profiler

LAYOUT = PoolLayout(n_atm=2, n_ocn=1)


def _coupled_steps() -> int:
    # Two simulated days normally; one under the CI smoke job.  Both are
    # whole days, so radiation cadence matches the event simulator's.
    return 24 if os.environ.get("FOAM_BENCH_FAST") else 48


def _serial_run(cfg, nsteps: int) -> dict:
    model = FoamModel(cfg)
    state = model.initial_state()
    prof = Profiler(enabled=True)
    t0 = time.perf_counter()
    with thread_profiler(prof):
        for _ in range(nsteps):
            state = model.coupled_step(state)
    wall = time.perf_counter() - t0
    return {"state": state, "wall": wall,
            "profile": prof.snapshot(label="serial bench",
                                     meta={"dtype": cfg.dtype_policy.name})}


def test_concurrent_coupled_speedup(benchmark):
    nsteps = _coupled_steps()
    cfg = _test_config()

    # Best-of-two on both sides: the prediction is judged against wall
    # clocks, so shave scheduler noise off each measurement.
    serial = min((_serial_run(cfg, nsteps) for _ in range(2)),
                 key=lambda r: r["wall"])
    conc = min((run_concurrent_coupled(config=cfg, nsteps=nsteps,
                                       layout=LAYOUT, profile=True,
                                       substrate="thread")
                for _ in range(2)),
               key=lambda r: r.wall_seconds)
    conc_proc = min((run_concurrent_coupled(config=cfg, nsteps=nsteps,
                                            layout=LAYOUT,
                                            substrate="process")
                     for _ in range(2)),
                    key=lambda r: r.wall_seconds)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Both substrates' trajectories are the serial one (bitwise at
    # float64); guard the timing numbers with a cheap equivalence check.
    for c in (conc, conc_proc):
        assert np.array_equal(c.state.atm_curr.vort,
                              serial["state"].atm_curr.vort)
        assert np.array_equal(c.state.ocean.temp,
                              serial["state"].ocean.temp)

    functional = serial["wall"] / conc.wall_seconds
    proc_speedup = conc.wall_seconds / conc_proc.wall_seconds
    cpu_count = os.cpu_count() or 1
    serial_costs = calibrate_from_profile(serial["profile"])
    conc_costs = calibrate_concurrent_from_profile(conc.profile,
                                                   n_atm_ranks=LAYOUT.n_atm)
    atm = AtmosphereCost(nlat=cfg.atm_nlat, nlon=cfg.atm_nlon,
                         nlev=cfg.atm_nlev, mmax=cfg.atm_mmax, dt=cfg.atm_dt)
    ocn = OceanCost(nx=cfg.ocn_nx, ny=cfg.ocn_ny, nlev=cfg.ocn_nlev,
                    dt_long=cfg.ocean_coupling_interval)
    pred = predict_concurrent_speedup(serial_costs, conc_costs,
                                      LAYOUT.n_atm, LAYOUT.n_ocn,
                                      atm=atm, ocn=ocn)
    rel_err = abs(functional - pred["speedup"]) / pred["speedup"]

    out_path = os.environ.get("BENCH_COUPLED_PATH", "BENCH_coupled.json")
    payload = {
        "config": "test",
        "nsteps": nsteps,
        "cpu_count": cpu_count,
        "layout": {"n_atm": LAYOUT.n_atm, "n_ocn": LAYOUT.n_ocn,
                   "world_size": LAYOUT.world_size},
        "serial_wall_seconds": serial["wall"],
        "concurrent_wall_seconds": conc.wall_seconds,
        "functional_speedup": functional,
        "substrates": {
            "thread": {"wall_seconds": conc.wall_seconds,
                       "day_wall_seconds": conc.wall_seconds * 24 / nsteps,
                       "speedup_vs_serial": functional},
            "process": {"wall_seconds": conc_proc.wall_seconds,
                        "day_wall_seconds": conc_proc.wall_seconds * 24 / nsteps,
                        "speedup_vs_serial":
                            serial["wall"] / conc_proc.wall_seconds},
        },
        "process_over_thread_speedup": proc_speedup,
        "predicted": pred,
        "prediction_rel_err": rel_err,
        "rank_walls": conc.rank_walls,
        "waits": conc.waits,
        "rank_waits": conc.rank_waits,
        "ocean_busy_seconds": conc.ocean_busy_seconds,
        "overlap_seconds": conc.overlap_seconds,
        "hidden_fraction": conc.hidden_fraction,
        "workspace_stats": conc.ws_stats,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    report(f"Ecoupled: concurrent pool split (test config, {nsteps} steps)", [
        ("serial wall", "baseline", f"{serial['wall']:.3f} s"),
        ("concurrent wall", "measured", f"{conc.wall_seconds:.3f} s"),
        ("functional speedup", "GIL-bound", f"{functional:.3f}x"),
        ("process wall", "measured", f"{conc_proc.wall_seconds:.3f} s"),
        ("process/thread speedup", ">= 1.5x multi-core",
         f"{proc_speedup:.3f}x ({cpu_count} cpus)"),
        ("predicted speedup", "within 25%", f"{pred['speedup']:.3f}x"),
        ("prediction rel err", "<= 0.25", f"{rel_err:.3f}"),
        ("ocean compute hidden", "-> 1.0", f"{conc.hidden_fraction:.2f}"),
        ("coupled artifact", "BENCH_coupled.json", out_path),
    ])

    # ISSUE 5 acceptance: calibrated prediction within 25 % of functional.
    assert rel_err <= 0.25, (
        f"functional {functional:.3f}x vs predicted {pred['speedup']:.3f}x "
        f"(rel err {rel_err:.3f})")
    # ISSUE 7 acceptance: on a host with a core per rank, real processes
    # beat GIL-bound threads by >= 1.5x at the identical pool layout.  On
    # smaller machines (and in the fast smoke run) the ratio is recorded
    # in the payload but there is no parallelism to gate on.
    if cpu_count >= LAYOUT.world_size and not os.environ.get("FOAM_BENCH_FAST"):
        assert proc_speedup >= 1.5, (
            f"process substrate only {proc_speedup:.3f}x over threads on "
            f"{cpu_count} cpus (layout needs {LAYOUT.world_size})")
    assert os.path.exists(out_path)
