"""E8: FOAM vs NCAR CSM — 3x throughput, >10x cost-performance.

Paper section 5: "The performance of FOAM can be compared directly to the
NCAR CSM coupled model which accomplishes only a third of FOAM's maximum
throughput using 16 nodes of a Cray C90" and "the cost per unit of
performance of FOAM is already more than ten times better than that of
other current models of the same phenomena."
"""

from conftest import report
from repro.perf import (
    CSMCostModel,
    cost_performance_ratio,
    foam_cost_musd,
    scaling_curve,
)


def test_csm_comparison(benchmark):
    def compare():
        foam_max = scaling_curve([68])[68]
        csm = CSMCostModel()
        return foam_max, csm.throughput(16), csm

    foam_max, csm_tp, csm = benchmark(compare)
    ratio = foam_max / csm_tp
    cp = cost_performance_ratio(foam_max, 68, csm)

    report("E8: FOAM vs NCAR CSM (16-node Cray C90)", [
        ("FOAM max throughput (68 SP2 nodes)", "~6,000x", f"{foam_max:,.0f}x"),
        ("CSM throughput (16 C90 nodes)", "~1/3 of FOAM", f"{csm_tp:,.0f}x"),
        ("throughput ratio", "~3x", f"{ratio:.1f}x"),
        ("FOAM hardware cost", "-", f"${foam_cost_musd(68):.1f}M"),
        ("C90 hardware cost", "-", f"${csm.machine_cost_musd(16):.0f}M"),
        ("cost-performance advantage", ">10x", f"{cp:.0f}x"),
    ])
    assert 2.0 < ratio < 4.5
    assert cp > 10.0
