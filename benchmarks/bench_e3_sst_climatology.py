"""E3 / Figure 3: SST climatology — model vs observations vs difference.

The paper's Figure 3 compares FOAM's annual-mean SST with the
Shea-Trenberth-Reynolds atlas: broad structure captured, western-boundary
gradients smeared, worst errors in the Antarctic (crude sea ice).  The
bench runs the coupled model, builds the model climatology, differences it
against the synthetic observed climatology, and checks those three shape
claims.
"""

import numpy as np

from conftest import report
from repro.analysis import sst_error_statistics, synthetic_sst_climatology
from repro.core import CoupledDiagnostics, FoamModel
from repro.core import test_config as tiny_config


def run_climatology(days: float = 10.0):
    model = FoamModel(tiny_config())
    state = model.initial_state()
    diags = CoupledDiagnostics()
    model.run_days(state, days, diagnostics=diags)
    return model, diags.mean_sst()


def test_figure3_sst_climatology(benchmark):
    model, model_sst = benchmark.pedantic(run_climatology, rounds=1,
                                          iterations=1)
    g = model.ocean_grid
    obs = synthetic_sst_climatology(g.lats, g.lons)
    mask = model.ocean.mask2d
    stats = sst_error_statistics(model_sst, obs, g.cell_areas(), mask)

    # Broad structure: tropics warm, poles cold, in both fields.
    lats = np.degrees(g.lats)
    trop = np.abs(lats) < 15
    high = lats < -50
    m_trop = np.nanmean(np.where(mask[trop], model_sst[trop], np.nan))
    m_high = np.nanmean(np.where(mask[high], model_sst[high], np.nan))

    report("E3: Figure 3 — SST climatology", [
        ("pattern correlation model vs obs", "high (broad "
         "features captured)", f"{stats['pattern_correlation']:.2f}"),
        ("global bias", "small", f"{stats['bias']:+.2f} C"),
        ("RMSE", "few C at low res", f"{stats['rmse']:.2f} C"),
        ("tropical-mean SST", "~26-29 C", f"{m_trop:.1f} C"),
        ("Southern-Ocean-mean SST", "near freezing", f"{m_high:.1f} C"),
    ])
    assert stats["pattern_correlation"] > 0.75   # broad structure captured
    assert m_trop > m_high + 10.0                # equator-pole gradient
    assert abs(stats["bias"]) < 6.0
    assert np.nanmin(model_sst[mask]) >= -1.92 - 1e-6   # the clamp
