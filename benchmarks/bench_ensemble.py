"""Batched-ensemble throughput benchmark (ISSUE 6).

Headline number: **members * model-days per wall-second** for
nens in {1, 4, 16, 64}, batched (one :class:`FoamEnsemble` stepping every
member through ``coupled_step`` as a single leading-axis batch) against the
sequential member-at-a-time loop it replaces.  The batch amortizes python
and numpy dispatch overhead across members and turns many small-array
kernels into fewer big-array ones, which is where the win comes from on the
tiny tier-1 grids.

Persists ``BENCH_ensemble.json`` (set ``BENCH_ENSEMBLE_PATH`` to move it):
the machine-checkable record that batched execution beats the sequential
loop by >= 2x at nens=16 on the tier-1 test configuration.
"""

import json
import os
import time

from conftest import report
from repro.core import EnsembleConfig, FoamEnsemble, FoamModel
# Alias keeps pytest from collecting the config factory as a test.
from repro.core.config import test_config as _test_config

NENS_SWEEP = (1, 4, 16, 64)
WARMUP_STEPS = 2
GATE_NENS = 16


def _fast() -> bool:
    return bool(os.environ.get("FOAM_BENCH_FAST"))


def _measure_steps() -> int:
    return 4 if _fast() else 8


def _rounds(nens: int) -> int:
    # The gate size gets extra interleaved rounds: min-of-rounds on a noisy
    # shared box needs several samples to find a clean window for each side.
    if _fast():
        return 2
    return 6 if nens == GATE_NENS else 3


def _throughput(nens: int, steps: int, wall: float, dt: float) -> float:
    """Members * simulated days per wall-second."""
    return nens * steps * dt / 86400.0 / wall


def _compare(nens: int, steps: int) -> dict:
    """Time batched vs sequential execution of ``nens`` members.

    The two modes are measured in alternating rounds (best-of for each) so
    that slow periods on a noisy shared box hit both paths alike instead of
    biasing one side of the ratio.
    """
    ens = FoamEnsemble(EnsembleConfig(nens=nens, base=_test_config()))
    bstate = ens.initial_state()
    for _ in range(WARMUP_STEPS):
        bstate = ens.step(bstate)

    # The loop the batch replaces: one model, members stepped one at a time.
    model = FoamModel(_test_config())
    sstates = [model.initial_state() for _ in range(nens)]
    for e in range(nens):
        for _ in range(WARMUP_STEPS):
            sstates[e] = model.coupled_step(sstates[e])

    batched_best = sequential_best = float("inf")
    for _ in range(_rounds(nens)):
        t0 = time.perf_counter()
        for _ in range(steps):
            bstate = ens.step(bstate)
        batched_best = min(batched_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        for e in range(nens):
            for _ in range(steps):
                sstates[e] = model.coupled_step(sstates[e])
        sequential_best = min(sequential_best, time.perf_counter() - t0)

    dt = ens.model.config.atm_dt

    def _timing(wall: float) -> dict:
        return {
            "nens": nens,
            "steps": steps,
            "wall_seconds": wall,
            "member_step_seconds": wall / steps / nens,
            "members_days_per_sec": _throughput(nens, steps, wall, dt),
        }

    return {
        "batched": _timing(batched_best),
        "sequential": _timing(sequential_best),
        "speedup": sequential_best / batched_best,
    }


def test_ensemble_throughput(benchmark):
    steps = _measure_steps()

    runs = {}
    for nens in NENS_SWEEP:
        if nens == GATE_NENS:
            runs[str(nens)] = benchmark.pedantic(
                _compare, kwargs={"nens": nens, "steps": steps},
                rounds=1, iterations=1)
        else:
            runs[str(nens)] = _compare(nens, steps)

    gate = runs[str(GATE_NENS)]["speedup"]
    # The FAST smoke job measures too few steps for a tight bound; it gates
    # on a sanity threshold and the full run enforces the real one.
    floor = 1.3 if _fast() else 2.0

    # Persist the artifact before asserting so a failed gate still uploads
    # the measurements that explain it.
    out_path = os.environ.get("BENCH_ENSEMBLE_PATH", "BENCH_ensemble.json")
    payload = {
        "config": "test",
        "measured_steps": steps,
        "warmup_steps": WARMUP_STEPS,
        "rounds": {str(n): _rounds(n) for n in NENS_SWEEP},
        "nens_sweep": list(NENS_SWEEP),
        "gate": {"nens": GATE_NENS, "speedup": gate, "floor": floor},
        "runs": runs,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    rows = []
    for nens in NENS_SWEEP:
        r = runs[str(nens)]
        rows.append((f"nens={nens} batched members*days/s", "> sequential",
                     f"{r['batched']['members_days_per_sec']:.2f}"))
        rows.append((f"nens={nens} sequential members*days/s", "baseline",
                     f"{r['sequential']['members_days_per_sec']:.2f}"))
        rows.append((f"nens={nens} speedup", ">= 2x @ 16",
                     f"{r['speedup']:.2f}x"))
    rows.append(("ensemble artifact", "BENCH_ensemble.json", out_path))
    report(f"Ensemble: batched vs sequential (test config, {steps} steps)",
           rows)

    # ISSUE 6 acceptance: batched members*days/sec beats the sequential loop
    # by >= 2x at nens=16 on the tier-1 config.
    assert gate >= floor, (
        f"nens={GATE_NENS} batched speedup {gate:.2f}x below {floor}x")
    # Batching must never lose to the sequential loop at any ensemble size.
    for nens in NENS_SWEEP:
        assert runs[str(nens)]["speedup"] >= (0.8 if nens == 1 else 1.0), (
            f"nens={nens}: speedup {runs[str(nens)]['speedup']:.2f}x")
