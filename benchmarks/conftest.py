"""Shared fixtures for the FOAM benchmark harness.

Each ``bench_eN_*`` module regenerates one paper artifact (figure or
quantitative claim); see DESIGN.md's experiment index.  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print their reproduction rows (paper value vs measured value);
use ``-s`` to see them inline.
"""

import os

import numpy as np
import pytest

try:
    import pytest_benchmark  # noqa: F401
    HAVE_PYTEST_BENCHMARK = True
except ImportError:
    HAVE_PYTEST_BENCHMARK = False


def pytest_configure(config):
    # Deterministic fallback for any legacy np.random use inside benches.
    np.random.seed(42)
    # FOAM_BENCH_FAST=1 (set by the CI smoke job) bounds every benchmark:
    # one warm-up-free round instead of pytest-benchmark's auto-calibration,
    # so no single bench can exceed its function's own runtime.
    if HAVE_PYTEST_BENCHMARK and os.environ.get("FOAM_BENCH_FAST"):
        config.option.benchmark_min_rounds = 1
        config.option.benchmark_max_time = 1.0
        config.option.benchmark_warmup = "off"


def backend_measure_steps() -> int:
    """Measured coupled steps for bench_backend's timing window.

    A full simulated day (24 one-hour test-config steps) normally; the
    FOAM_BENCH_FAST smoke job shrinks the window the same way it bounds
    pytest-benchmark rounds.  The backend itself still honors the usual
    ``FOAM_DTYPE``/``FOAM_BACKEND``/``FOAM_WORKSPACE`` knobs for any bench
    that does not set them explicitly.
    """
    return 6 if os.environ.get("FOAM_BENCH_FAST") else 24


if not HAVE_PYTEST_BENCHMARK:
    # Headless/minimal environments without pytest-benchmark still collect
    # and run the bench files: each benchmarked callable runs exactly once.
    class _OnceBenchmark:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _OnceBenchmark()


def pytest_sessionfinish(session, exitstatus):
    """Exit 0, not 5, when a marker expression deselects every benchmark.

    ``pytest benchmarks/ -m parallel`` (or any ``-m``/``-k`` that matches
    nothing here) would otherwise fail CI with NO_TESTS_COLLECTED even
    though nothing is wrong.
    """
    deselecting = session.config.getoption("-m") or session.config.getoption("-k")
    if exitstatus == pytest.ExitCode.NO_TESTS_COLLECTED and deselecting:
        session.exitstatus = pytest.ExitCode.OK


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table (shown under -s; captured otherwise)."""
    print(f"\n--- {title} ---")
    print(f"{'quantity':44s} {'paper':>16s} {'measured':>16s}")
    for name, paper, measured in rows:
        print(f"{name:44s} {paper:>16s} {measured:>16s}")
