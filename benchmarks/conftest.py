"""Shared fixtures for the FOAM benchmark harness.

Each ``bench_eN_*`` module regenerates one paper artifact (figure or
quantitative claim); see DESIGN.md's experiment index.  Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks print their reproduction rows (paper value vs measured value);
use ``-s`` to see them inline.
"""

import numpy as np
import pytest


def pytest_sessionfinish(session, exitstatus):
    """Exit 0, not 5, when a marker expression deselects every benchmark.

    ``pytest benchmarks/ -m parallel`` (or any ``-m``/``-k`` that matches
    nothing here) would otherwise fail CI with NO_TESTS_COLLECTED even
    though nothing is wrong.
    """
    deselecting = session.config.getoption("-m") or session.config.getoption("-k")
    if exitstatus == pytest.ExitCode.NO_TESTS_COLLECTED and deselecting:
        session.exitstatus = pytest.ExitCode.OK


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table (shown under -s; captured otherwise)."""
    print(f"\n--- {title} ---")
    print(f"{'quantity':44s} {'paper':>16s} {'measured':>16s}")
    for name, paper, measured in rows:
        print(f"{name:44s} {paper:>16s} {measured:>16s}")
