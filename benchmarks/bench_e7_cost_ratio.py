"""E7: the R15 atmosphere costs ~16x the 128x128 ocean per simulated time.

Paper section 5: "Although R15 is an extremely coarse resolution ... it
still requires approximately 16 times as much processor time as our ocean
with 128 x 128 resolution ...  Accordingly, we typically run on 17 or 34
nodes, with 1 or 2 of those processors, respectively, dedicated to the
ocean."  The bench checks the ratio in the cost model AND in the actual
Python implementation's wall-clock times at reduced resolution.
"""

import time

from conftest import report
from repro.perf import AtmosphereCost, OceanCost, atmosphere_ocean_cost_ratio


def test_cost_ratio_model(benchmark):
    ratio = benchmark(atmosphere_ocean_cost_ratio)
    atm = AtmosphereCost()
    ocn = OceanCost()
    report("E7: atmosphere/ocean cost ratio (paper resolutions)", [
        ("atm ops per simulated day (R15 L18)", "-", f"{atm.day_ops():.2e}"),
        ("ocn ops per simulated day (128^2 L16)", "-", f"{ocn.day_ops():.2e}"),
        ("ratio", "~16x", f"{ratio:.1f}x"),
        ("implied node split at 17 nodes", "16 atm : 1 ocn",
         f"{ratio:.0f} : 1"),
    ])
    assert 12.0 < ratio < 24.0


def test_cost_ratio_actual_implementation(benchmark):
    """Measure the same ratio in this reproduction's own wall-clock."""
    import numpy as np

    from repro.atmosphere.dynamics import SpectralDynamicalCore
    from repro.atmosphere.spectral import SpectralTransform, Truncation
    from repro.atmosphere.vertical import VerticalGrid
    from repro.ocean import OceanForcing, OceanGrid, OceanModel, world_topography

    tr = SpectralTransform(24, 32, Truncation(8))
    core = SpectralDynamicalCore(tr, VerticalGrid.ccm_like(5), dt=1800.0)
    atm_state = core.initial_state(noise_amplitude=1e-8)
    prev, curr = atm_state, core._forward_start(atm_state)

    g = OceanGrid(nx=24, ny=24, nlev=5)
    land, depth = world_topography(g)
    ocean = OceanModel(g, land, depth)
    ocn_state = ocean.initial_state()
    forcing = OceanForcing.zeros(g.ny, g.nx)

    def one_simulated_day():
        nonlocal prev, curr, ocn_state
        for _ in range(48):                 # atmosphere: 48 steps/day
            prev, curr = core.step(prev, curr)
        for _ in range(4):                  # ocean: 4 calls/day
            ocn_state = ocean.step(ocn_state, forcing)

    benchmark.pedantic(one_simulated_day, rounds=1, iterations=1)

    t0 = time.perf_counter()
    for _ in range(24):
        prev, curr = core.step(prev, curr)
    atm_wall = (time.perf_counter() - t0) * 2
    t0 = time.perf_counter()
    for _ in range(4):
        ocn_state = ocean.step(ocn_state, forcing)
    ocn_wall = time.perf_counter() - t0
    ratio = atm_wall / ocn_wall
    report("E7 (implementation): wall-clock ratio per simulated day", [
        ("atm day (dynamics only, reduced res)", "-", f"{atm_wall:.2f} s"),
        ("ocn day (reduced res)", "-", f"{ocn_wall:.2f} s"),
        ("ratio", "atmosphere dominates", f"{ratio:.1f}x"),
    ])
    assert ratio > 1.0      # atmosphere is the expensive component here too
    assert np.all(np.isfinite(ocn_state.temp))
