"""Measured runtime profile of the real coupled model (ISSUE 3 tentpole).

Unlike the ``bench_eN`` experiments, which replay the paper on the modeled
1997 machine, this bench measures the *actual* Python components with
``repro.perf.profiler``, calibrates the event simulator from the measured
section costs, and persists the whole thing as ``BENCH_profile.json`` — the
machine-checkable perf trajectory across PRs.

Set ``BENCH_PROFILE_PATH`` to control where the JSON artifact lands
(defaults to ``BENCH_profile.json`` in the current directory).
"""

import json
import os

from conftest import report
from repro.perf import calibrate_from_profile, simulate_coupled_day
from repro.perf.report import profile_coupled_run

# One coupling interval of the test configuration: includes the step-0
# radiation pass and one ocean call — the minimum run that calibrates every
# event-simulator section.  Deterministic (config seed) and fast (~0.1 s).
PROFILE_DAYS = 0.25


def test_profile_coupled_run(benchmark):
    profile = benchmark.pedantic(
        profile_coupled_run, kwargs={"days": PROFILE_DAYS, "config": "test"},
        rounds=1, iterations=1)

    assert profile.sections, "profiled run recorded no sections"
    mc = calibrate_from_profile(profile)
    assert mc.radiation_step_seconds > mc.step_seconds > 0.0

    # Replay one simulated day on the modeled machine at the measured costs.
    sim = simulate_coupled_day(16, 1, seed=0, measured=mc)

    out_path = os.environ.get("BENCH_PROFILE_PATH", "BENCH_profile.json")
    payload = {
        "profile": profile.to_dict(),
        "calibration": {
            "step_seconds": mc.step_seconds,
            "radiation_step_seconds": mc.radiation_step_seconds,
            "coupler_seconds": mc.coupler_seconds,
            "ocean_call_seconds": mc.ocean_call_seconds,
            "transpose_seconds": mc.transpose_seconds,
            "source": mc.source,
        },
        "replay": {
            "n_atm_ranks": sim.n_atm_ranks,
            "n_ocn_ranks": sim.n_ocn_ranks,
            "wall_seconds": sim.wall_seconds,
            "speedup": sim.speedup,
            "per_step_costs": sim.per_step_costs,
        },
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    top = {s.path: s.inclusive for s in profile.roots()}
    report("Eprof: measured time allocation (test config, "
           f"{PROFILE_DAYS:g} simulated days)", [
        ("atmosphere inclusive seconds", "dominant",
         f"{top.get('atmosphere', 0.0):.4f} s"),
        ("coupler inclusive seconds", "small",
         f"{top.get('coupler', 0.0):.4f} s"),
        ("ocean inclusive seconds", "sliver",
         f"{top.get('ocean', 0.0):.4f} s"),
        ("radiation step vs ordinary step", "> 1x",
         f"{mc.radiation_step_seconds / mc.step_seconds:.2f}x"),
        ("profile artifact", "BENCH_profile.json", out_path),
    ])
    assert os.path.exists(out_path)
