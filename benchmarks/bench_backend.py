"""Backend/workspace benchmark (ISSUE 4): precision + allocation reuse.

Times one coupled simulated day of the test configuration under the default
float64 policy and under ``dtype="float32"``, with the profiler's workspace
counters (``ws.hits``/``ws.misses``) recording how many hot-path temporaries
were served from the preallocated :mod:`repro.backend` arena instead of
fresh ``np.empty`` calls.  A third run with ``FOAM_WORKSPACE=0`` gives the
no-reuse baseline, so the allocation drop is measured, not asserted from
code reading.

Persists ``BENCH_backend.json`` (set ``BENCH_BACKEND_PATH`` to move it) —
the machine-checkable record that the workspace layer eliminates >= 50 % of
per-step temporary allocations in the ocean and spectral kernels.
"""

import json
import os
import time

from conftest import backend_measure_steps, report
from repro.backend import workspace_totals
# Alias keeps pytest from collecting the config factory as a test.
from repro.core.config import test_config as _test_config
from repro.core.foam import FoamModel
from repro.perf.profiler import enable_profiling, take_profile

WARMUP_STEPS = 2      # enough to populate every (name, shape, dtype) buffer


def _section_ws_counters(profile, prefix: str) -> tuple[float, float]:
    """Sum (ws.hits, ws.misses) over sections whose path starts with prefix."""
    hits = misses = 0.0
    for s in profile.matching(lambda p: p == prefix or p.startswith(prefix + "/")):
        hits += s.counters.get("ws.hits", 0.0)
        misses += s.counters.get("ws.misses", 0.0)
    return hits, misses


def _run_day(dtype: str, workspace_on: bool, steps: int) -> dict:
    """One warmed coupled day; returns wall time + workspace accounting."""
    old = os.environ.get("FOAM_WORKSPACE")
    os.environ["FOAM_WORKSPACE"] = "1" if workspace_on else "0"
    try:
        cfg = _test_config()
        cfg.dtype = dtype
        model = FoamModel(cfg)
        state = model.initial_state()
        for _ in range(WARMUP_STEPS):
            state = model.coupled_step(state)

        before = workspace_totals()
        prof = enable_profiling()
        prof.reset()
        t0 = time.perf_counter()
        try:
            for _ in range(steps):
                state = model.coupled_step(state)
        finally:
            prof.disable()
        wall = time.perf_counter() - t0
        after = workspace_totals()
        profile = take_profile(label=f"backend bench {dtype}")
    finally:
        if old is None:
            os.environ.pop("FOAM_WORKSPACE", None)
        else:
            os.environ["FOAM_WORKSPACE"] = old

    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    requests = hits + misses
    ocn_hits, ocn_misses = _section_ws_counters(profile, "ocean")
    atm_hits, atm_misses = _section_ws_counters(profile, "atmosphere")
    return {
        "dtype": dtype,
        "workspace": workspace_on,
        "steps": steps,
        "wall_seconds": wall,
        "step_seconds": wall / steps,
        "ws_hits": hits,
        "ws_misses": misses,
        "ws_requests": requests,
        "hit_rate": hits / requests if requests else 0.0,
        "ws_buffers": after["buffers"],
        "ws_nbytes": after["nbytes"],
        "ocean": {"ws_hits": ocn_hits, "ws_misses": ocn_misses},
        "atmosphere": {"ws_hits": atm_hits, "ws_misses": atm_misses},
    }


def test_backend_workspace_day(benchmark):
    steps = backend_measure_steps()

    f64 = benchmark.pedantic(
        _run_day, kwargs={"dtype": "float64", "workspace_on": True,
                          "steps": steps},
        rounds=1, iterations=1)
    f32 = _run_day("float32", workspace_on=True, steps=steps)
    base = _run_day("float64", workspace_on=False, steps=steps)

    # ISSUE 4 acceptance: the warmed workspace serves >= 50 % of hot-path
    # temporary requests from reused buffers (it is ~100 % in practice),
    # both overall and within the ocean and spectral-atmosphere sections.
    for run in (f64, f32):
        assert run["ws_requests"] > 0, "workspace layer saw no requests"
        assert run["hit_rate"] >= 0.5, (
            f"{run['dtype']}: hit rate {run['hit_rate']:.2%} below 50 %")
        for part in ("ocean", "atmosphere"):
            h, m = run[part]["ws_hits"], run[part]["ws_misses"]
            assert h + m > 0, f"{part} kernels made no workspace requests"
            assert h / (h + m) >= 0.5, (
                f"{run['dtype']}/{part}: hit rate {h / (h + m):.2%}")
    # The disabled-workspace baseline allocates on every request.
    assert base["ws_hits"] == 0 and base["ws_misses"] == base["ws_requests"]
    alloc_drop = 1.0 - (f64["ws_misses"] / base["ws_misses"]
                        if base["ws_misses"] else 1.0)
    assert alloc_drop >= 0.5

    out_path = os.environ.get("BENCH_BACKEND_PATH", "BENCH_backend.json")
    payload = {
        "config": "test",
        "measured_steps": steps,
        "warmup_steps": WARMUP_STEPS,
        "allocation_drop": alloc_drop,
        "runs": {"float64": f64, "float32": f32, "no_workspace": base},
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    report("Ebackend: workspace + precision (test config, "
           f"{steps} coupled steps)", [
        ("float64 day wall", "baseline", f"{f64['wall_seconds']:.3f} s"),
        ("float32 day wall", "<= ~baseline", f"{f32['wall_seconds']:.3f} s"),
        ("no-workspace day wall", "reference", f"{base['wall_seconds']:.3f} s"),
        ("float64 ws hit rate", ">= 50%", f"{f64['hit_rate']:.1%}"),
        ("float32 ws hit rate", ">= 50%", f"{f32['hit_rate']:.1%}"),
        ("per-step allocation drop", ">= 50%", f"{alloc_drop:.1%}"),
        ("ocean hit rate (f64)", ">= 50%",
         f"{f64['ocean']['ws_hits'] / max(1.0, sum(f64['ocean'].values())):.1%}"),
        ("backend artifact", "BENCH_backend.json", out_path),
    ])
    assert os.path.exists(out_path)


def test_backend_legendre_kernel(benchmark):
    """ISSUE 5 satellite: batched Legendre kernels vs the per-m loop.

    Times the stacked recurrence (``associated_legendre`` +
    ``legendre_derivative``) against the retained loop oracles at the
    paper's R15 table size, asserts bitwise agreement, and merges a
    ``legendre`` entry (speedup + plan-cache stats) into
    ``BENCH_backend.json`` — creating the file when this bench runs alone.
    """
    from repro.atmosphere.spectral import (
        SpectralTransform,
        Truncation,
        _associated_legendre_ref,
        _legendre_derivative_ref,
        associated_legendre,
        clear_legendre_plans,
        gaussian_latitudes,
        legendre_derivative,
        legendre_plan_stats,
    )

    nlat, mmax, nkmax = 40, 15, 17          # R15 extended table
    mu, _ = gaussian_latitudes(nlat)
    repeats = 3 if os.environ.get("FOAM_BENCH_FAST") else 7

    # Bitwise contract first: the batched kernels ARE the loop kernels.
    pbar_ext = associated_legendre(mu, mmax, nkmax)
    assert pbar_ext.tobytes() == _associated_legendre_ref(mu, mmax, nkmax).tobytes()
    assert legendre_derivative(mu, pbar_ext).tobytes() == \
        _legendre_derivative_ref(mu, pbar_ext).tobytes()

    def _kernels_batched():
        p = associated_legendre(mu, mmax, nkmax)
        return legendre_derivative(mu, p)

    def _kernels_loop():
        p = _associated_legendre_ref(mu, mmax, nkmax)
        return _legendre_derivative_ref(mu, p)

    def _min_time(fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    batched = _min_time(_kernels_batched)
    benchmark.pedantic(_kernels_batched, rounds=1, iterations=1)
    loop = _min_time(_kernels_loop)
    speedup = loop / batched

    # Plan cache: two same-resolution transforms share one build.
    clear_legendre_plans()
    SpectralTransform(nlat=nlat, nlon=48, trunc=Truncation(mmax))
    SpectralTransform(nlat=nlat, nlon=48, trunc=Truncation(mmax))
    stats = legendre_plan_stats()
    assert stats["builds"] == 1 and stats["hits"] >= 1

    out_path = os.environ.get("BENCH_BACKEND_PATH", "BENCH_backend.json")
    payload = {}
    if os.path.exists(out_path):
        with open(out_path) as fh:
            payload = json.load(fh)
    payload["legendre"] = {
        "table": {"nlat": nlat, "mmax": mmax, "nkmax": nkmax},
        "loop_seconds": loop,
        "batched_seconds": batched,
        "speedup": speedup,
        "plan_cache": stats,
        "repeats": repeats,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    report("Ebackend: batched Legendre kernels (R15 tables)", [
        ("loop kernels", "baseline", f"{loop * 1e3:.2f} ms"),
        ("batched kernels", "faster", f"{batched * 1e3:.2f} ms"),
        ("kernel speedup", "> 1x", f"{speedup:.2f}x"),
        ("plan builds for 2 transforms", "1", str(stats["builds"])),
    ])
    # The batching exists for speed; at R15 size it must not be slower.
    assert speedup > 1.0, f"batched kernels slower than loop: {speedup:.2f}x"
