"""E9: the ocean formulation ablation — 'roughly a tenfold increase'.

Paper section 4.2: the combination of (1) the slowed free surface, (2)
barotropic/baroclinic mode splitting and (3) multi-rate subcycling yields
"roughly a tenfold increase in the amount of simulated time represented per
unit of computation" over state-of-the-art contemporaries.

Two measurements:

* the cost model's ratio against a rigid-lid MOM-class baseline (the
  paper's actual comparator class);
* the running implementation's op-count ratio against the naive unsplit
  explicit model on the same grid (a harsher baseline, hence larger ratio).
"""

from conftest import report
from repro.ocean import (
    ConventionalOceanModel,
    OceanForcing,
    OceanGrid,
    OceanModel,
    world_topography,
)
from repro.perf import OceanCost


def test_ocean_ablation(benchmark):
    # Cost-model ratio at paper resolution.
    ocn = OceanCost()
    model_ratio = ocn.conventional_day_ops() / ocn.day_ops()

    # Implementation ratio on a real (reduced) grid.
    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    foam = OceanModel(g, land, depth)
    conv = ConventionalOceanModel(g, land, depth)
    forcing = OceanForcing.zeros(g.ny, g.nx)

    def measure():
        foam.op_count = 0
        conv.op_count = 0
        foam.step(foam.initial_state(), forcing)
        conv.step(conv.initial_state(), forcing)
        return conv.op_count / foam.op_count

    impl_ratio = benchmark(measure)

    report("E9: ocean formulation ablation", [
        ("vs MOM-class rigid-lid baseline (cost model)", "~10x",
         f"{model_ratio:.1f}x"),
        ("vs naive explicit baseline (implementation)", ">10x",
         f"{impl_ratio:.1f}x"),
        ("conventional single-rate steps per 6 h", "many",
         f"{conv.steps_per_long()}"),
        ("slowed barotropic CFL gain", "10x (slow_factor 0.1)",
         f"{conv.dt_single and foam.baro.dt_max / conv.dt_single:.1f}x"),
    ])
    assert 7.0 < model_ratio < 14.0           # 'roughly tenfold'
    assert impl_ratio > 10.0
    assert foam.baro.dt_max / conv.dt_single > 9.0
