"""Streaming-history overhead benchmark (ISSUE 9).

Headline number: **overhead_fraction** — the extra wall time one model-day
costs when a :class:`~repro.runs.HistoryObserver` streams the default
field set (6-hourly snapshots, rolling flushes) versus the bare stepping
loop.  The paper's production runs lost nearly half their throughput to
output; the harness gate pins the reproduction's history tax at <10% of a
day's wall so the streaming writer can stay on by default.

Persists ``BENCH_history.json`` (set ``BENCH_HISTORY_PATH`` to move it).
"""

import json
import os
import tempfile
import time

from conftest import report
from repro.core import FoamModel, HistoryWriter
# Alias keeps pytest from collecting the config factory as a test.
from repro.core.config import test_config as _test_config
from repro.runs import HistoryObserver, drive_steps

WARMUP_STEPS = 2
HISTORY_INTERVAL_DAYS = 0.25
FLUSH_EVERY = 2
FIELDS = ("sst", "t_sfc", "ice_thickness")


def _fast() -> bool:
    return bool(os.environ.get("FOAM_BENCH_FAST"))


def _measure_steps(model) -> int:
    # One full model-day when we can afford it; half in the FAST smoke.
    day = int(round(86400.0 / model.config.atm_dt))
    return day // 2 if _fast() else day


def _rounds() -> int:
    return 2 if _fast() else 5


def _compare() -> dict:
    """Best-of-rounds wall for a day of stepping, bare vs instrumented.

    The two sides run in alternating rounds from the same trajectory so a
    noisy shared box hits both alike instead of biasing the ratio.
    """
    model = FoamModel(_test_config())
    state = model.initial_state()
    for _ in range(WARMUP_STEPS):
        state = model.coupled_step(state)
    steps = _measure_steps(model)
    interval = int(round(HISTORY_INTERVAL_DAYS * 86400.0
                         / model.config.atm_dt))

    plain_best = instrumented_best = float("inf")
    snapshots = files = bytes_written = 0
    for _ in range(_rounds()):
        t0 = time.perf_counter()
        state = drive_steps(model, state, steps)
        plain_best = min(plain_best, time.perf_counter() - t0)

        with tempfile.TemporaryDirectory() as td:
            writer = HistoryWriter(td, flush_every=FLUSH_EVERY)
            observer = HistoryObserver(writer, interval, fields=FIELDS)
            t0 = time.perf_counter()
            state = drive_steps(model, state, steps, (observer,))
            instrumented_best = min(instrumented_best,
                                    time.perf_counter() - t0)
            snapshots = writer.snapshots_recorded
            files = len(writer.files_written)
            bytes_written = writer.bytes_written

    return {
        "steps": steps,
        "interval_steps": interval,
        "fields": list(FIELDS),
        "plain_wall_seconds": plain_best,
        "instrumented_wall_seconds": instrumented_best,
        "overhead_seconds": instrumented_best - plain_best,
        "overhead_fraction": (instrumented_best - plain_best) / plain_best,
        "snapshots_per_measurement": snapshots,
        "files_per_measurement": files,
        "bytes_per_measurement": bytes_written,
    }


def test_history_write_overhead(benchmark):
    run = benchmark.pedantic(_compare, rounds=1, iterations=1)
    overhead = run["overhead_fraction"]
    # The FAST smoke measures half a day over two rounds — too noisy for
    # the real bound; it gates on sanity and the full run enforces <10%.
    ceiling = 0.5 if _fast() else 0.10

    # Persist the artifact before asserting so a failed gate still uploads
    # the measurements that explain it.
    out_path = os.environ.get("BENCH_HISTORY_PATH", "BENCH_history.json")
    payload = {
        "config": "test",
        "warmup_steps": WARMUP_STEPS,
        "rounds": _rounds(),
        "gate": {"overhead_fraction": overhead, "ceiling": ceiling},
        "run": run,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    report(f"History streaming overhead (test config, {run['steps']} steps)",
           [("plain day wall", "baseline",
             f"{run['plain_wall_seconds']:.3f}s"),
            ("instrumented day wall", "+history observer",
             f"{run['instrumented_wall_seconds']:.3f}s"),
            ("overhead fraction", f"< {ceiling:.0%}", f"{overhead:.2%}"),
            ("snapshots / day", f"every {run['interval_steps']} steps",
             f"{run['snapshots_per_measurement']}"),
            ("bytes / day", "rolling npz",
             f"{run['bytes_per_measurement']}"),
            ("history artifact", "BENCH_history.json", out_path)])

    # ISSUE 9 acceptance: streaming history costs <10% of a day's wall.
    assert overhead < ceiling, (
        f"history overhead {overhead:.2%} above the {ceiling:.0%} ceiling")
