#!/usr/bin/env python
"""Figure 4 workflow: two-basin decadal variability via VARIMAX-rotated EOFs.

The paper ran FOAM for 500+ simulated years and found a VARIMAX-rotated EOF
of 60-month low-pass filtered SST linking the North Atlantic and North
Pacific, explaining ~15 % of the filtered variance.  A 500-year coupled run
is outside a laptop demo, so this example applies the *identical analysis
pipeline* (monthly means -> anomalies -> 60-month Lanczos low-pass ->
area-weighted EOF -> VARIMAX) to SST from the coupled model's own ocean
driven through many fast seasons, demonstrating every analysis stage on
real model output and printing the Figure-4-style summary: leading rotated
pattern, its variance share, and the basin loadings.

Run:  python examples/variability_eof.py [--years N]
"""

import argparse
import time

import numpy as np

from repro.analysis import (
    anomalies,
    compute_eofs,
    lowpass,
    rotated_variance_fractions,
    varimax,
)
from repro.core import CoupledDiagnostics, FoamModel, test_config


def basin_masks(model):
    """North Atlantic and North Pacific boxes on the ocean grid."""
    g = model.ocean_grid
    lat = np.degrees(g.lats)[:, None] * np.ones((1, g.nx))
    lon = np.degrees(g.lons)[None, :] * np.ones((g.ny, 1))
    natl = (lat > 25) & (lat < 65) & (lon > 290) & (lon < 350) & model.ocean.mask2d
    npac = (lat > 25) & (lat < 60) & (lon > 140) & (lon < 230) & model.ocean.mask2d
    return natl, npac


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--years", type=float, default=1.0,
                        help="simulated years of monthly SST to analyze")
    args = parser.parse_args()

    model = FoamModel(test_config())
    state = model.initial_state()
    diags = CoupledDiagnostics()

    days = args.years * 360.0
    print(f"running {days:.0f} simulated days for the SST record ...")
    t0 = time.time()
    # Sample SST every 10 days: 36 "months" per simulated year.
    state = model.run_days(state, days, diagnostics=diags,
                           sst_sample_interval=10 * 86400.0)
    print(f"done in {time.time() - t0:.1f} s wall; "
          f"{diags.sst_count} SST samples collected")

    sst = np.array(diags.history_sst)                     # (t, ny, nx)
    mask = model.ocean.mask2d
    nt = sst.shape[0]
    # Anomalies, then low-pass: with the short demo record we use a cutoff
    # scaled to the record length (the paper used 60 months of 500 years).
    anoms = anomalies(sst)
    cutoff = max(4.0, nt / 6.0)
    filtered = lowpass(anoms.reshape(nt, -1), cutoff_steps=cutoff,
                       half_width=max(3, int(cutoff)))

    weights = (model.ocean_grid.cell_areas() * mask).ravel()
    weights = weights / weights.sum()
    res = compute_eofs(filtered, n_modes=4, weights=weights)
    rotated, rot = varimax(res.patterns)
    total_var = np.sum(res.pcs**2)
    frac = rotated_variance_fractions(res.pcs, rot, total_var) \
        * res.variance_fraction.sum()

    print("\n=== Figure 4 reproduction: VARIMAX-rotated EOF analysis ===")
    for k in range(len(frac)):
        print(f"rotated mode {k + 1}: {100 * frac[k]:5.1f} % of filtered variance")

    lead = np.argmax(frac)
    pattern = rotated[lead].reshape(mask.shape)
    natl, npac = basin_masks(model)
    l_na = np.abs(pattern[natl]).mean() if natl.any() else 0.0
    l_np = np.abs(pattern[npac]).mean() if npac.any() else 0.0
    l_all = np.abs(pattern[mask]).mean()
    print(f"\nleading rotated mode ({100 * frac[lead]:.1f} % of variance):")
    print(f"  mean |loading| North Atlantic: {l_na / max(l_all, 1e-12):.2f} x global")
    print(f"  mean |loading| North Pacific:  {l_np / max(l_all, 1e-12):.2f} x global")
    print("  (the paper's mode loads on BOTH northern basins simultaneously)")

    pcs_rot = res.pcs @ rot
    series = pcs_rot[:, lead]
    print(f"\nassociated time series: {nt} samples, "
          f"std = {series.std():.3f}, "
          f"lag-1 autocorr = {np.corrcoef(series[:-1], series[1:])[0, 1]:.2f} "
          "(high persistence = long time scale)")


if __name__ == "__main__":
    main()
