#!/usr/bin/env python
"""Quickstart: run the coupled FOAM model for a few simulated days.

Builds the full coupled system (spectral atmosphere + fast ocean + overlap
coupler) at a small resolution, integrates five simulated days, and prints
the diagnostics a climate modeler looks at first: global-mean surface
pressure (mass conservation), SST statistics, precipitation, and the water
inventory of the closed hydrological cycle.

Run:  python examples/quickstart.py [--dtype float32] [--backend numpy]
"""

import argparse
import time

import numpy as np

from repro.core import CoupledDiagnostics, FoamModel, test_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dtype", default=None,
                        choices=("float64", "float32"),
                        help="array precision (default: FOAM_DTYPE or float64)")
    parser.add_argument("--backend", default=None,
                        help="array backend (default: FOAM_BACKEND or numpy)")
    args = parser.parse_args()

    print("=== FOAM quickstart ===")
    cfg = test_config()
    cfg.dtype = args.dtype
    cfg.backend = args.backend
    cfg.array_backend()   # fail fast if the requested backend is unavailable
    print(f"precision:  {cfg.dtype_policy.name} on the "
          f"{cfg.array_backend().name} backend")
    print(f"atmosphere: R{cfg.atm_mmax} spectral, {cfg.atm_nlon}x{cfg.atm_nlat}"
          f"x{cfg.atm_nlev}, dt = {cfg.atm_dt:.0f} s")
    print(f"ocean:      {cfg.ocn_nx}x{cfg.ocn_ny}x{cfg.ocn_nlev} Mercator, "
          f"called every {cfg.ocean_coupling_interval / 3600:.0f} h")

    model = FoamModel(cfg)
    state = model.initial_state()
    diags = CoupledDiagnostics()

    days = 5.0
    wall0 = time.time()
    state = model.run_days(state, days, diagnostics=diags)
    wall = time.time() - wall0

    sim_seconds = days * 86400.0
    print(f"\nintegrated {days:.0f} simulated days in {wall:.1f} s wall "
          f"(model speedup ~{sim_seconds / wall:,.0f}x real time)")

    d = model.dycore.diagnose(state.atm_curr)
    sst = model.ocean.sst(state.ocean)
    print(f"\nglobal-mean surface pressure: {model.dycore.global_mass(state.atm_curr):,.0f} Pa")
    print(f"atmosphere T range:           {d.temp.min():.1f} .. {d.temp.max():.1f} K")
    print(f"max wind speed:               {np.abs(d.u).max():.1f} m/s")
    print(f"SST range:                    {np.nanmin(sst):.2f} .. {np.nanmax(sst):.2f} C")
    print(f"sea-ice cells:                {int(state.coupler.ice.mask.sum())}")

    inv = model.global_water_inventory(state)
    print("\nwater inventory (kg):")
    for name, kg in inv.items():
        print(f"  {name:12s} {kg:.3e}")

    mean_sst = diags.mean_sst()
    print(f"\n{diags.sst_count}-sample mean SST (zonal means, S->N):")
    zonal = np.nanmean(np.where(model.ocean.mask2d, mean_sst, np.nan), axis=1)
    lats = np.degrees(model.ocean_grid.lats)
    for j in range(0, len(lats), max(1, len(lats) // 8)):
        print(f"  lat {lats[j]:+6.1f}: {zonal[j]:6.2f} C")


if __name__ == "__main__":
    main()
