#!/usr/bin/env python
"""Run harness tour: one plan, every substrate, bitwise-resumable.

Declares a :class:`~repro.runs.RunPlan` (world + duration + output
cadences), runs it through the :class:`~repro.runs.RunHarness` with
streaming history and checkpoints, kills the run halfway, resumes it from
the checkpoint — on a *concurrent* substrate — and shows the final state
is bitwise what the uninterrupted serial run produces.  Finishes by
loading the streamed history files back as one time series.

Run:  python examples/run_harness.py [--substrate thread|process]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.core.history import load_history
from repro.runs import CheckpointSpec, HistorySpec, RunHarness, RunPlan


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--substrate", default="thread",
                        choices=("thread", "process"),
                        help="rank substrate for the resumed leg")
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="foam_harness_"))
    plan = RunPlan(
        scenario="control", days=1.0,
        history=HistorySpec(str(workdir / "history"), interval_days=0.25),
        checkpoint=CheckpointSpec(str(workdir / "ckpt"), interval_days=0.5))

    print("=== FOAM run harness tour ===")
    print(f"plan: scenario={plan.scenario} days={plan.days} "
          f"mode={plan.mode}")
    print(f"run key (cache identity, mode-independent): "
          f"{plan.run_key()[:16]}…")

    # --- the reference: one uninterrupted serial run ---------------------
    result = RunHarness(plan).run()
    print(f"\nserial run: {result.steps} steps in "
          f"{result.wall_seconds:.2f} s wall")
    print(f"  checkpoints: {[p.name for p in result.checkpoints]}")
    print(f"  history files: {[p.name for p in result.history_files]}")

    # --- the interrupted version: stop at the halfway checkpoint ---------
    half = RunHarness(RunPlan(scenario="control", days=0.5,
                              checkpoint=CheckpointSpec(
                                  str(workdir / "ckpt2"),
                                  interval_days=0.5))).run()
    ckpt = half.checkpoints[-1]
    print(f"\ninterrupted at day 0.5 -> {ckpt.name}")

    # --- resume onto the concurrent rank pools ---------------------------
    resumed = RunHarness(RunPlan(
        scenario="control", days=1.0, mode="concurrent",
        substrate=args.substrate)).run(resume_from=ckpt)
    print(f"resumed on {args.substrate} rank pools: "
          f"{resumed.steps} more steps "
          f"(hidden ocean fraction {resumed.hidden_fraction:.0%})")

    same = all(
        np.array_equal(a, b) for a, b in [
            (resumed.state.atm_curr.vort, result.state.atm_curr.vort),
            (resumed.state.ocean.temp, result.state.ocean.temp),
            (resumed.state.coupler.ice.thickness,
             result.state.coupler.ice.thickness),
        ])
    print(f"bitwise identical to the uninterrupted serial run: {same}")
    assert same

    # --- the streamed history reads back as one series -------------------
    series = load_history(result.history_files)
    sst = series["sst"]
    print(f"\nhistory: {sst.shape[0]} snapshots of {sorted(series)} "
          f"({sst.shape=})")
    for t, snap in zip(series["time"], sst):
        ocean = snap[snap != 0.0]
        print(f"  day {t / 86400.0:4.2f}: mean ocean SST "
              f"{ocean.mean():6.2f} C")
    print(f"\nartifacts kept in {workdir}")


if __name__ == "__main__":
    main()
