#!/usr/bin/env python
"""Concurrent coupled execution on disjoint rank pools (ISSUE 5 demo).

Runs the same coupled trajectory twice — serially and split across an
atmosphere pool, a dedicated coupler rank, and an ocean pool on the
simulated-MPI layer — verifies the float64 trajectories are bitwise
identical, and prints the overlap/wait accounting plus the calibrated
event-simulator prediction of the pool-split speedup.

Run:  python examples/concurrent_coupled.py --atm-ranks 2 --ocn-ranks 1 --days 1
"""

import argparse
import time

import numpy as np

from repro.core.config import test_config
from repro.core.foam import FoamModel
from repro.parallel.coupled import PoolLayout, run_concurrent_coupled
from repro.perf.costmodel import (
    AtmosphereCost,
    OceanCost,
    calibrate_concurrent_from_profile,
    calibrate_from_profile,
)
from repro.perf.eventsim import predict_concurrent_speedup
from repro.perf.profiler import Profiler, thread_profiler
from repro.perf.report import format_waits


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--atm-ranks", type=int, default=2,
                        help="atmosphere-pool ranks (default: 2)")
    parser.add_argument("--ocn-ranks", type=int, default=1,
                        help="ocean-pool ranks (default: 1)")
    parser.add_argument("--days", type=float, default=1.0,
                        help="simulated days (default: 1)")
    args = parser.parse_args()

    cfg = test_config()
    layout = PoolLayout(n_atm=args.atm_ranks, n_ocn=args.ocn_ranks)
    nsteps = max(1, int(round(args.days * 86400.0 / cfg.atm_dt)))
    print(f"pool layout: atm ranks {list(layout.atm_ranks)}, coupler rank "
          f"{layout.cpl_rank}, ocean ranks {list(layout.ocn_ranks)}  "
          f"({nsteps} steps)")

    # Serial reference, profiled.
    model = FoamModel(cfg)
    state = model.initial_state()
    prof = Profiler(enabled=True)
    t0 = time.perf_counter()
    with thread_profiler(prof):
        for _ in range(nsteps):
            state = model.coupled_step(state)
    serial_wall = time.perf_counter() - t0
    serial_profile = prof.snapshot(label="serial",
                                   meta={"dtype": cfg.dtype_policy.name})

    # Concurrent pool-split run.
    res = run_concurrent_coupled(config=cfg, nsteps=nsteps, layout=layout,
                                 profile=True)

    bitwise = (
        np.array_equal(res.state.atm_curr.vort, state.atm_curr.vort)
        and np.array_equal(res.state.atm_curr.q, state.atm_curr.q)
        and np.array_equal(res.state.ocean.temp, state.ocean.temp)
        and np.array_equal(res.sst, model.ocean.sst(state.ocean),
                           equal_nan=True))
    print(f"\nserial wall      {serial_wall:8.3f} s")
    print(f"concurrent wall  {res.wall_seconds:8.3f} s   "
          f"(functional speedup {serial_wall / res.wall_seconds:.3f}x)")
    print(f"trajectory bitwise identical: {bitwise}")
    print()
    print(format_waits(res))

    serial_costs = calibrate_from_profile(serial_profile)
    conc_costs = calibrate_concurrent_from_profile(res.profile, layout.n_atm)
    atm = AtmosphereCost(nlat=cfg.atm_nlat, nlon=cfg.atm_nlon,
                         nlev=cfg.atm_nlev, mmax=cfg.atm_mmax, dt=cfg.atm_dt)
    ocn = OceanCost(nx=cfg.ocn_nx, ny=cfg.ocn_ny, nlev=cfg.ocn_nlev,
                    dt_long=cfg.ocean_coupling_interval)
    pred = predict_concurrent_speedup(serial_costs, conc_costs,
                                      layout.n_atm, layout.n_ocn,
                                      atm=atm, ocn=ocn)
    print(f"\nevent-simulator prediction: speedup {pred['speedup']:.3f}x "
          f"(functional {serial_wall / res.wall_seconds:.3f}x)")
    if not bitwise:
        raise SystemExit("trajectory mismatch")


if __name__ == "__main__":
    main()
