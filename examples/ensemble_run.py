#!/usr/bin/env python
"""Batched ensemble run: N perturbed members through one coupled model.

Builds a :class:`repro.core.FoamEnsemble` whose members share one
:class:`~repro.core.FoamModel` and advance together through every coupled
step — the spectral transforms, dynamics, physics columns, ocean, and
coupler all operate on arrays with a leading member axis, so python and
numpy dispatch overhead is paid once per step instead of once per member.

The script perturbs initial vorticity, integrates two simulated days,
compares the batched wall time against the member-at-a-time loop it
replaces, and prints the ensemble spread a forecaster looks at first.

Run:  python examples/ensemble_run.py [--nens 8] [--days 2]
"""

import argparse
import time

import numpy as np

from repro.core import EnsembleConfig, FoamEnsemble, FoamModel, test_config


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nens", type=int, default=8,
                        help="ensemble members (default: 8)")
    parser.add_argument("--days", type=float, default=2.0,
                        help="simulated days to integrate (default: 2)")
    parser.add_argument("--perturbation", type=float, default=1e-7,
                        help="initial vorticity noise amplitude (default: 1e-7)")
    args = parser.parse_args()

    print("=== FOAM batched ensemble ===")
    cfg = test_config()
    steps = max(1, int(round(args.days * 86400.0 / cfg.atm_dt)))
    print(f"{args.nens} members, {steps} coupled steps "
          f"({args.days:g} simulated days)")

    ens = FoamEnsemble(EnsembleConfig(nens=args.nens, base=cfg,
                                      ic_perturbation=args.perturbation))
    state = ens.initial_state()
    t0 = time.perf_counter()
    for _ in range(steps):
        state = ens.step(state)
    batched = time.perf_counter() - t0
    print(f"batched:    {batched:6.2f} s "
          f"({batched / steps / args.nens * 1e3:.1f} ms per member-step)")

    # The loop the batch replaces: same members, stepped one at a time.
    model = FoamModel(test_config())
    t0 = time.perf_counter()
    for e in range(args.nens):
        member = ens.member_state(ens.initial_state(), e)
        for _ in range(steps):
            member = model.coupled_step(member)
    sequential = time.perf_counter() - t0
    print(f"sequential: {sequential:6.2f} s "
          f"-> batched speedup {sequential / batched:.2f}x")

    # Ensemble spread: the perturbation growth a forecaster reads first.
    # The batched state already carries the member axis — read the
    # (nens, ...) slabs directly instead of extracting member copies.
    sst = state.ocean.temp[0]                 # (nens, ny, nx)
    t_low = state.atm_curr.temp[-1]           # (nens, nm, nk)
    print(f"SST member spread (max over grid):        "
          f"{np.max(np.std(sst, axis=0)):.3e} K")
    print(f"lowest-level temperature spectral spread: "
          f"{np.max(np.std(np.abs(t_low), axis=0)):.3e}")


if __name__ == "__main__":
    main()
