#!/usr/bin/env python
"""Scenario tour: integrate every registered world and compare climates.

Runs each scenario in the registry (aquaplanet, snowball, doubled CO2,
slab ocean, tidally locked, Pangaea-style paleo, and the paper's Earth)
for a couple of simulated days at test resolution and prints the
climatology summary side by side — the quickest way to *see* that the
snowball is cold and frozen, the slab ocean is motionless, and the
tidally-locked world spins up enormous ocean currents under its fixed sun.

Run:  python examples/scenario_tour.py [--days D] [--scenarios A B ...]
"""

import argparse
import time

from repro.scenarios import get_scenario, scenario_climatology, scenario_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=float, default=2.0,
                        help="simulated days per world (default 2)")
    parser.add_argument("--scenarios", nargs="*", default=None,
                        metavar="NAME", help="subset to run (default: all)")
    args = parser.parse_args()

    names = args.scenarios or scenario_names()
    print(f"=== scenario tour: {len(names)} worlds x {args.days:g} days ===")
    header = (f"{'scenario':<16} {'Ts [K]':>8} {'SST [C]':>8} {'ice':>6} "
              f"{'ocean KE [J]':>13} {'evap mm/d':>10} {'wall':>6}")
    print(header)
    print("-" * len(header))
    rows = {}
    for name in names:
        scenario = get_scenario(name)
        model, state = scenario.build("test")
        t0 = time.perf_counter()
        _, clim = scenario_climatology(model, state, days=args.days)
        wall = time.perf_counter() - t0
        rows[name] = clim
        print(f"{name:<16} {clim['ts_global_k']:>8.2f} "
              f"{clim['sst_ocean_c']:>8.2f} {clim['ice_fraction']:>6.2f} "
              f"{clim['ocean_ke_j']:>13.3e} {clim['evap_mm_day']:>10.3f} "
              f"{wall:>5.1f}s")

    if {"snowball", "aquaplanet", "doubled_co2"} <= rows.keys():
        cold = rows["snowball"]["ts_global_k"]
        base = rows["aquaplanet"]["ts_global_k"]
        warm = rows["doubled_co2"]["ts_global_k"]
        print(f"\nordering check: snowball {cold:.2f} K < "
              f"aquaplanet {base:.2f} K < doubled CO2 {warm:.5f} K: "
              f"{'PASS' if cold < base < warm else 'FAIL'}")


if __name__ == "__main__":
    main()
