#!/usr/bin/env python
"""Profile a coupled run and replay it on the modeled 1997 machine.

Walkthrough of the runtime profiling layer (``repro.perf.profiler``):

1. run the coupled model with profiling enabled and capture a
   hierarchical per-section :class:`~repro.perf.profiler.RunProfile`;
2. print the measured time-allocation table — the wall-clock analogue
   of the paper's Figure 2;
3. calibrate the discrete-event simulator from the measured section
   costs (:func:`~repro.perf.costmodel.calibrate_from_profile`) and
   replay one simulated day on 16 modeled atmosphere ranks.

Run:  PYTHONPATH=src python examples/profile_coupled_day.py
"""

from repro.perf import calibrate_from_profile, simulate_coupled_day
from repro.perf.report import format_calibration, profile_coupled_run


def main() -> None:
    print("=== FOAM profiled coupled run ===")

    # Step 1: a profiled quarter-day at the test resolution (6 coupled
    # steps — includes the step-0 radiation pass and one ocean call).
    profile = profile_coupled_run(days=0.25, config="test")
    print(f"captured: {profile.label}\n")

    # Step 2: the measured Figure-2-style table.  Inclusive time counts
    # children; exclusive time is a section's own work.
    print(profile.format_table(min_fraction=0.005))
    print()
    print(format_calibration(profile))

    # Step 3: drive the event simulator from the measured costs instead
    # of the analytic 1997 machine model.
    mc = calibrate_from_profile(profile)
    sim = simulate_coupled_day(16, 1, seed=0, measured=mc)
    print(f"\nreplayed on 16+1 modeled ranks: "
          f"wall {sim.wall_seconds:.3f} s for one simulated day "
          f"({sim.speedup:,.0f}x real time)")
    busy = sim.traces.breakdown()
    total = sum(busy.values())
    for activity, seconds in sorted(busy.items(), key=lambda kv: -kv[1]):
        print(f"  {activity:12s} {100 * seconds / total:5.1f}% of rank-time")

    # Profiles serialise to JSON for archiving / diffing across commits:
    #   profile.save("profile.json"); RunProfile.load("profile.json")
    # or from the command line:
    #   PYTHONPATH=src python -m repro.perf.report --days 0.5 --json out.json


if __name__ == "__main__":
    main()
