#!/usr/bin/env python
"""The closed hydrological cycle: bucket -> rivers -> ocean.

The paper's coupler innovation beyond flux exchange is the *closed
hydrological cycle*: a 15 cm bucket on every land cell, runoff routed
through an explicit river model (F = V u / d with u = 0.35 m/s), and the
discharge injected at river mouths so that "variations in continental
rainfall and delayed resultant variations in ocean salinity" can interact.

This demo builds an idealized continent, rains on it, and traces the water:
bucket filling, overflow, the routing delay to the coast, and exact global
conservation at every step.

Run:  python examples/river_hydrology.py
"""

import numpy as np

from repro.coupler import (
    HydrologyState,
    RiverModel,
    distance_to_ocean,
    step_hydrology,
    wetness_factor,
)
from repro.util.constants import RHO_WATER


def main() -> None:
    ny, nx = 16, 24
    land = np.zeros((ny, nx), dtype=bool)
    land[4:12, 6:18] = True                      # one rectangular continent
    areas = np.full((ny, nx), 1.0e10)            # 100 km cells
    spacing = np.full(ny, 1.0e5)

    print("=== continent and drainage ===")
    dist = distance_to_ocean(land)
    print(f"land cells: {land.sum()}, interior distance to coast: "
          f"up to {dist[land].max()} cells")

    river = RiverModel(land, areas, spacing)
    hydro = HydrologyState.initialized(ny, nx, moisture_fraction=0.3)

    dt = 6 * 3600.0
    rain = np.where(land, 4.0e-4, 0.0)           # ~35 mm/day over land
    warm = np.full((ny, nx), 290.0)
    evap = np.where(land, 4.0e-5, 0.0)

    print("\n=== raining 30 days at ~35 mm/day ===")
    print(f"{'day':>4} {'bucket (mm)':>12} {'wetness':>8} "
          f"{'runoff (kg/s)':>14} {'discharge (kg/s)':>17} {'stored (m^3)':>13}")
    added = 0.0
    delivered = 0.0
    for step in range(120):
        hydro, runoff = step_hydrology(
            hydro, precip=rain, evaporation=evap, ground_temp=warm,
            t_low1=warm, t_low2=warm, melt_energy=np.zeros((ny, nx)),
            dt=dt, land_mask=land)
        discharge = river.step(runoff, dt)
        added += float(np.sum((rain - evap) * np.where(land, areas, 0.0))) * dt
        delivered += float(np.sum(discharge * areas)) * dt
        if step % 20 == 19:
            bucket = hydro.soil_moisture[land].mean() * 1000.0
            dw = wetness_factor(hydro)[land].mean()
            print(f"{(step + 1) / 4:4.0f} {bucket:12.1f} {dw:8.2f} "
                  f"{np.sum(runoff * areas):14.3e} "
                  f"{np.sum(discharge * areas):17.3e} "
                  f"{river.total_storage():13.3e}")

    print("\n=== water ledger (kg) ===")
    bucket_kg = float(np.sum(hydro.soil_moisture * RHO_WATER
                             * np.where(land, areas, 0.0)))
    initial_kg = 0.3 * 0.15 * RHO_WATER * float(np.sum(np.where(land, areas, 0.0)))
    stored_kg = river.total_storage() * 1000.0
    print(f"net precipitation input:    {added:.4e}")
    print(f"delivered to the ocean:     {delivered:.4e}")
    print(f"held in river channels:     {stored_kg:.4e}")
    print(f"bucket change:              {bucket_kg - initial_kg:.4e}")
    closure = added - delivered - stored_kg - (bucket_kg - initial_kg)
    print(f"ledger residual:            {closure:.3e} "
          f"({abs(closure) / max(added, 1e-30):.2e} relative — exact to roundoff)")

    print("\n=== river mouths ===")
    discharge = river.step(runoff, dt)
    mouths = np.argwhere(discharge > 0)
    print(f"{len(mouths)} mouth cells along the coast; largest:")
    flat = [(float(discharge[j, i] * areas[j, i]), j, i) for j, i in mouths]
    for kgps, j, i in sorted(flat, reverse=True)[:5]:
        print(f"  cell ({j:2d},{i:2d}): {kgps:.3e} kg/s")


if __name__ == "__main__":
    main()
