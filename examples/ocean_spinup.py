#!/usr/bin/env python
"""Stand-alone ocean: wind-driven spin-up and the triple-rate ablation.

Exercises the FOAM ocean by itself — the component the paper calls "the
most computationally efficient ocean model in existence" — under idealized
wind and heat forcing:

* spins up wind-driven gyres and prints the circulation metrics;
* demonstrates the paper's three speedup techniques by comparing the
  operation count against the conventional (unsplit, unslowed) baseline on
  the same grid (experiment E9's model-level measurement);
* shows the slowed free surface relaxing the barotropic CFL limit tenfold.

Run:  python examples/ocean_spinup.py [--months N]
"""

import argparse
import time

import numpy as np

from repro.ocean import (
    BarotropicParams,
    BarotropicSolver,
    ConventionalOceanModel,
    OceanForcing,
    OceanGrid,
    OceanModel,
    world_topography,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--months", type=float, default=3.0)
    args = parser.parse_args()

    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    model = OceanModel(g, land, depth)
    state = model.initial_state()

    # Idealized climatological forcing: trades/westerlies + solar heating.
    tx = 0.1 * np.sin(2 * g.lats[:, None]) * np.ones((1, g.nx)) * model.mask2d
    q = (60.0 * np.cos(g.lats[:, None]) ** 2 - 30.0) \
        * np.ones((1, g.nx)) * model.mask2d
    forcing = OceanForcing(tx, np.zeros_like(tx), q, np.zeros((g.ny, g.nx)))

    nsteps = int(args.months * 30 * 4)          # 4 six-hour steps per day
    print(f"spinning up {args.months:.0f} months "
          f"({nsteps} six-hour steps) on a {g.nx}x{g.ny}x{g.nlev} grid ...")
    t0 = time.time()
    state = model.run(state, nsteps, forcing)
    wall = time.time() - t0
    sim = nsteps * model.params.dt_long
    print(f"done in {wall:.1f} s wall ({sim / wall:,.0f}x real time in "
          "serial Python)")

    u, v = model.total_velocity(state)
    sst = model.sst(state)
    print(f"\nmax |u|:          {np.abs(u).max():.2f} m/s")
    print(f"max |eta|:        {np.abs(state.eta).max():.2f} m")
    print(f"SST range:        {np.nanmin(sst):.2f} .. {np.nanmax(sst):.2f} C")
    print(f"kinetic energy:   {model.total_kinetic_energy(state):.3e} J")

    print("\n=== the three speedup techniques (experiment E9) ===")
    conv = ConventionalOceanModel(g, land, depth)
    print(f"conventional model's required step: {conv.dt_single:,.0f} s "
          f"(vs FOAM's {model.params.dt_long:,.0f} s slow step)")
    print(f"single-rate steps per FOAM long step: {conv.steps_per_long()}")
    model.op_count = 0
    conv.op_count = 0
    f0 = OceanForcing.zeros(g.ny, g.nx)
    model.step(model.initial_state(), f0)
    conv.step(conv.initial_state(), f0)
    print(f"measured op-count ratio conventional/FOAM: "
          f"{conv.op_count / model.op_count:.1f}  (paper: 'roughly tenfold')")

    print("\n=== slowed barotropic dynamics ===")
    for slow in (1.0, 0.1):
        solver = BarotropicSolver(g, depth, model.mask2d,
                                  BarotropicParams(slow_factor=slow))
        print(f"  slow_factor {slow:4.1f}: max stable barotropic step "
              f"{solver.dt_max:8.1f} s")


if __name__ == "__main__":
    main()
