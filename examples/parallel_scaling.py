#!/usr/bin/env python
"""Section 5 workflow: Figure 2 time allocation and the scaling study.

Reproduces the paper's performance story on the calibrated SP2 machine
model:

* the Figure 2 Gantt chart (17-node run, one simulated day): green
  atmosphere bars, red coupler, blue ocean, purple idle — rendered here as
  A / C / O / . text art;
* the 'one ocean processor keeps up with 16 atmosphere processors but not
  32' observation;
* the coupled scaling curve with the paper's anchor points (~4,000x on 34
  nodes, ~6,000x on 68 with the decomposition knee);
* the stand-alone ocean throughput (>100,000x on 64 nodes);
* the NCAR-CSM/Cray-C90 comparison (about 3x) and the >10x
  cost-performance claim.

Run:  python examples/parallel_scaling.py
"""


from repro.perf import (
    CSMCostModel,
    atmosphere_ocean_cost_ratio,
    cost_performance_ratio,
    scaling_curve,
    simulate_coupled_day,
    simulate_ocean_day,
)


def main() -> None:
    print("=== Figure 2: time allocation, 17-node run (16 atm + 1 ocn) ===")
    res17 = simulate_coupled_day(16, 1, seed=0)
    print(res17.traces.render_ascii(width=76))
    b = res17.traces.breakdown()
    print(f"\nbudget: atmosphere {100 * b['atmosphere']:.0f} %, "
          f"coupler {100 * b['coupler']:.0f} %, ocean {100 * b['ocean']:.0f} %, "
          f"idle {100 * b['idle']:.0f} %")
    print(f"17-node throughput: {res17.speedup:,.0f}x real time")

    print("\n=== one ocean rank vs the atmosphere (Figure 2 discussion) ===")
    for n_atm in (16, 32):
        r = simulate_coupled_day(n_atm, 1, seed=0, imbalance=0.0)
        idle = sum(t.time_in("idle") for t in r.traces.traces[:n_atm]) / n_atm
        verdict = "keeps up" if idle < 6.0 else "falls behind"
        print(f"  {n_atm:2d} atm ranks + 1 ocean: mean atm wait "
              f"{idle:5.1f} s/day -> ocean {verdict}")

    print("\n=== coupled scaling (experiments E5/E10) ===")
    nodes = [9, 17, 34, 68]
    curve = scaling_curve(nodes)
    base = None
    for n in nodes:
        s = curve[n]
        if base is None:
            base = (n, s)
        rel = s / base[1] / (n / base[0])
        print(f"  {n:3d} nodes: {s:8,.0f}x real time   "
              f"(parallel efficiency vs {base[0]}-node run: {100 * rel:.0f} %)")
    print("  paper anchors: ~4,000x at 34 nodes; ~6,000x best at 68 "
          "(poor 34->68 scaling from the decomposition limit)")

    print("\n=== stand-alone ocean (experiment E6) ===")
    for n in (1, 16, 64):
        print(f"  {n:3d} nodes: {simulate_ocean_day(n).speedup:10,.0f}x real time")
    print("  paper anchor: >105,000x on 64 SP2 nodes")

    print("\n=== component cost ratio (experiment E7) ===")
    print(f"  atmosphere / ocean ops per simulated day: "
          f"{atmosphere_ocean_cost_ratio():.1f}  (paper: ~16)")

    print("\n=== NCAR CSM baseline (experiment E8) ===")
    csm = CSMCostModel()
    foam_max = curve[68]
    csm_tp = csm.throughput(16)
    print(f"  CSM-like model, 16-node Cray C90: {csm_tp:,.0f}x real time")
    print(f"  FOAM max / CSM = {foam_max / csm_tp:.1f}  (paper: ~3)")
    print(f"  cost-performance advantage: "
          f"{cost_performance_ratio(foam_max, 68):.0f}x  (paper: >10x)")


if __name__ == "__main__":
    main()
