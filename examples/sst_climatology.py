#!/usr/bin/env python
"""Figure 3 workflow: model SST climatology vs (synthetic) observations.

Runs the coupled model long enough to accumulate an SST climatology, then
compares it against the synthetic observed climatology (the stand-in for
the Shea-Trenberth-Reynolds atlas of the paper's Figure 3(b)) and prints
the three-panel summary: model field, observed field, and the difference,
each reduced to zonal means plus the error statistics.

The paper's qualitative findings to look for in the output:
* the broad SST structure (warm tropics, cold poles) is captured;
* western-boundary-current gradients are smeared at coarse resolution;
* the largest errors sit in the Antarctic (the crude sea-ice scheme).

Run:  python examples/sst_climatology.py [--days N]
"""

import argparse
import time

import numpy as np

from repro.analysis import sst_error_statistics, synthetic_sst_climatology
from repro.core import CoupledDiagnostics, FoamModel, test_config


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--days", type=float, default=20.0,
                        help="simulated days to average over")
    args = parser.parse_args()

    model = FoamModel(test_config())
    state = model.initial_state()
    diags = CoupledDiagnostics()

    print(f"running {args.days:.0f} simulated days ...")
    t0 = time.time()
    state = model.run_days(state, args.days, diagnostics=diags)
    print(f"done in {time.time() - t0:.1f} s wall")

    g = model.ocean_grid
    model_sst = diags.mean_sst()
    obs_sst = synthetic_sst_climatology(g.lats, g.lons)
    mask = model.ocean.mask2d
    weights = g.cell_areas()

    stats = sst_error_statistics(model_sst, obs_sst, weights, mask)
    print("\n=== Figure 3 reproduction: SST climatology ===")
    print(f"bias:                {stats['bias']:+.2f} C")
    print(f"rmse:                {stats['rmse']:.2f} C")
    print(f"pattern correlation: {stats['pattern_correlation']:.3f}")

    lats = np.degrees(g.lats)
    zonal_m = np.nanmean(np.where(mask, model_sst, np.nan), axis=1)
    zonal_o = np.nanmean(np.where(mask, obs_sst, np.nan), axis=1)
    print("\n  lat     model    obs     diff   (zonal means, C)")
    for j in range(0, len(lats), max(1, len(lats) // 12)):
        if np.isfinite(zonal_m[j]):
            print(f"  {lats[j]:+6.1f}  {zonal_m[j]:6.2f}  {zonal_o[j]:6.2f}  "
                  f"{zonal_m[j] - zonal_o[j]:+6.2f}")

    # The Antarctic-error finding of the paper, quantified.
    south = lats < -50
    rest = ~south
    err = np.where(mask, np.abs(model_sst - obs_sst), np.nan)
    print(f"\nmean |error| south of 50S: {np.nanmean(err[south]):.2f} C")
    print(f"mean |error| elsewhere:    {np.nanmean(err[rest]):.2f} C")
    print("(the paper attributes the Antarctic excess to the crude sea ice)")


if __name__ == "__main__":
    main()
