"""Direct tests of the FluxCoupler: surface blending, overlap fluxes, rivers."""

import numpy as np
import pytest

from repro.atmosphere.spectral import gaussian_latitudes
from repro.coupler import FluxCoupler
from repro.ocean import OceanGrid, world_topography


@pytest.fixture(scope="module")
def setup():
    mu, _ = gaussian_latitudes(16)
    atm_lats = np.arcsin(mu)
    g = OceanGrid(nx=24, ny=24, nlev=4)
    land, depth = world_topography(g)
    coupler = FluxCoupler(atm_lats, 24, g.lats, 24, land)
    return coupler, g, land


def make_atm_fields(nlat=16, nlon=24, seed=0):
    rng = np.random.default_rng(seed)
    return dict(
        t_air=285.0 + rng.normal(scale=5.0, size=(nlat, nlon)),
        q_air=np.full((nlat, nlon), 0.008),
        u_air=rng.normal(scale=6.0, size=(nlat, nlon)),
        v_air=rng.normal(scale=6.0, size=(nlat, nlon)),
        ps=np.full((nlat, nlon), 1.0e5))


def make_sst(g, land):
    sst = 26.0 * np.cos(g.lats[:, None]) ** 2 * np.ones((1, g.nx)) - 1.0
    return np.where(land, np.nan, sst)


def test_atm_land_mask_follows_ocean_fractions(setup):
    coupler, g, land = setup
    # Global land fraction is comparable on both grids.
    atm_frac = coupler.atm_land_mask.mean()
    ocn_frac = land.mean()
    assert abs(atm_frac - ocn_frac) < 0.20
    # Ocean fraction is a true area fraction in [0, 1].
    assert coupler.atm_ocean_frac.min() >= 0.0
    assert coupler.atm_ocean_frac.max() <= 1.0 + 1e-12


def test_surface_state_blends_sanely(setup):
    coupler, g, land = setup
    state = coupler.initial_state()
    sst = make_sst(g, land)
    surf = coupler.surface_state_for_atm(state, sst)
    assert surf.t_sfc.shape == (16, 24)
    assert np.all(np.isfinite(surf.t_sfc))
    assert 200.0 < surf.t_sfc.min() and surf.t_sfc.max() < 320.0
    # Albedo physically bounded; wetness 1 over pure-ocean columns.
    assert np.all((surf.albedo > 0.0) & (surf.albedo < 0.95))
    pure_ocean = coupler.atm_ocean_frac > 0.999
    if pure_ocean.any():
        np.testing.assert_allclose(surf.wetness[pure_ocean], 1.0)


def test_turbulent_fluxes_shapes_and_signs(setup):
    coupler, g, land = setup
    state = coupler.initial_state()
    out = coupler.turbulent_fluxes(state, sst_celsius=make_sst(g, land),
                                   **make_atm_fields())
    atm = out["atm"]
    assert atm["shf"].shape == (16, 24)
    assert out["ocn_taux"].shape == (g.ny, g.nx)
    # Evaporation from the ocean is upward on balance (dew over the coldest
    # water under warm air is physical and allowed).
    ocean = ~land
    assert np.mean(out["ocn_evap"][ocean] > 0) > 0.5
    assert np.sum(out["ocn_evap"][ocean]) > 0.0
    # Stress over land cells of the ocean grid is zero (water-only average).
    assert np.all(out["ocn_taux"][land] == 0.0)


def test_flux_conservation_through_overlap(setup):
    """The energy the atmosphere hands over equals what the surfaces get."""
    coupler, g, land = setup
    state = coupler.initial_state()
    out = coupler.turbulent_fluxes(state, sst_celsius=make_sst(g, land),
                                   **make_atm_fields(seed=3))
    ov = coupler.overlap
    # Total SHF integrated over the overlap grid vs the atm-grid average.
    total_overlap = ov.integrate(out["overlap"]["shf"])
    total_atm = ov.integrate_atm(out["atm"]["shf"])
    np.testing.assert_allclose(total_atm, total_overlap, rtol=1e-12)


def test_ice_changes_the_fluxes(setup):
    coupler, g, land = setup
    state = coupler.initial_state()
    fields = make_atm_fields(seed=4)
    sst = make_sst(g, land)
    base = coupler.turbulent_fluxes(state, sst_celsius=sst, **fields)
    # Freeze the high-latitude ocean.
    icy = state.ice
    icy.thickness[:] = np.where((np.abs(np.degrees(g.lats))[:, None] > 55)
                                & ~land, 1.0, 0.0)
    frozen = coupler.turbulent_fluxes(state, sst_celsius=sst, **fields)
    # Ice shields the stress (divided by 15) somewhere.
    high = np.abs(np.degrees(g.lats)) > 60
    stress_base = np.abs(base["ocn_taux"][high]).sum()
    stress_frozen = np.abs(frozen["ocn_taux"][high]).sum()
    assert stress_frozen < stress_base
    icy.thickness[:] = 0.0   # restore shared fixture


def test_discharge_mapping_conserves_mass(setup):
    coupler, g, land = setup
    rng = np.random.default_rng(5)
    # Put discharge on atm-grid coastal ocean cells.
    discharge_atm = np.where(~coupler.atm_land_mask,
                             rng.uniform(0, 1e-4, (16, 24)), 0.0)
    mapped = coupler.discharge_to_ocean_grid(discharge_atm)
    total_in = float(np.sum(discharge_atm * coupler.atm_cell_areas))
    total_out = coupler.overlap.integrate_ocn(mapped)
    np.testing.assert_allclose(total_out, total_in, rtol=1e-10)
    assert np.all(mapped >= 0.0)


def test_step_land_and_rivers_closes_books(setup):
    coupler, g, land = setup
    state = coupler.initial_state()
    nlat, nlon = 16, 24
    warm = np.full((nlat, nlon), 288.0)
    precip = np.where(coupler.atm_land_mask, 3e-4, 1e-4)
    new_state, discharge, diags = coupler.step_land_and_rivers(
        state, precip=precip, evap=np.full((nlat, nlon), 2e-5),
        t_low1=warm, t_low2=warm,
        net_land_flux=np.full((nlat, nlon), 30.0), dt=1800.0)
    assert diags.precip_total > 0
    assert diags.runoff_total >= 0
    assert new_state.time == state.time + 1800.0
    assert np.all(new_state.hydrology.soil_moisture <= 0.15 + 1e-12)
    # Land warms under the positive flux.
    landm = coupler.atm_land_mask
    assert np.all(new_state.land.soil_temp[0][landm]
                  >= state.land.soil_temp[0][landm])


def test_sea_ice_step_freshwater_bookkeeping(setup):
    coupler, g, land = setup
    state = coupler.initial_state()
    sst = np.where(land, np.nan, -1.92)          # everything at the clamp
    new_state, fw = coupler.step_sea_ice(
        state, sst_celsius=sst,
        ocean_heat_loss=np.full((g.ny, g.nx), 400.0),
        t_air_on_ocn=np.full((g.ny, g.nx), 260.0),
        dt=6 * 3600.0)
    # Persistent clamp-level heat loss eventually builds ice somewhere.
    for _ in range(100):
        new_state, fw = coupler.step_sea_ice(
            new_state, sst_celsius=sst,
            ocean_heat_loss=np.full((g.ny, g.nx), 400.0),
            t_air_on_ocn=np.full((g.ny, g.nx), 260.0),
            dt=6 * 3600.0)
    assert new_state.ice.mask.sum() > 0
    assert np.all(fw[land] == 0.0)
