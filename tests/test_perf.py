"""Tests for the performance model (machine, costs, event simulator, CSM)."""

import numpy as np
import pytest

from repro.parallel.trace import TraceSet
from repro.perf import (
    AtmosphereCost,
    CSMCostModel,
    OceanCost,
    atmosphere_ocean_cost_ratio,
    atmosphere_parallel_efficiency,
    cost_performance_ratio,
    ibm_sp2,
    scaling_curve,
    simulate_coupled_day,
    simulate_ocean_day,
)


# ------------------------------------------------------------- machine
def test_machine_times():
    m = ibm_sp2()
    assert m.compute_time(25.0e6) == pytest.approx(1.0)
    assert m.message_time(0.0) == pytest.approx(m.latency)
    assert m.alltoall_time(1, 1e6) == 0.0
    assert m.alltoall_time(4, 1e6) > 3 * m.latency
    with pytest.raises(ValueError):
        m.compute_time(-1.0)


# ------------------------------------------------------------- cost model
def test_atmosphere_is_physics_dominated():
    """Paper: the difference in execution time is 'attributable to the
    relatively complicated atmospheric physics code'."""
    atm = AtmosphereCost()
    assert atm.physics_ops() > 3 * atm.dynamics_ops()


def test_radiation_steps_much_longer():
    atm = AtmosphereCost()
    assert atm.step_ops(radiation=True) > 5 * atm.step_ops(radiation=False)


def test_cost_cube_law():
    """E11: halving the grid spacing costs ~8x per simulated time."""
    coarse = AtmosphereCost(nlat=32, nlon=64, mmax=21, dt=2400.0)
    fine = AtmosphereCost(nlat=64, nlon=128, mmax=42, dt=1200.0)
    ratio = fine.day_ops() / coarse.day_ops()
    assert 6.0 < ratio < 11.0


def test_paper_cost_ratio_atm_ocn():
    """E7: R15 atmosphere ~ 16x the 128x128 ocean per simulated time."""
    ratio = atmosphere_ocean_cost_ratio()
    assert 12.0 < ratio < 24.0


def test_ocean_formulation_tenfold():
    """E9 (model level): conventional ocean needs ~10x the operations."""
    ocn = OceanCost()
    ratio = ocn.conventional_day_ops() / ocn.day_ops()
    assert 7.0 < ratio < 14.0


# ------------------------------------------------------------- efficiency
def test_efficiency_perfect_below_half_lat():
    assert atmosphere_parallel_efficiency(16, 40) == 1.0
    assert atmosphere_parallel_efficiency(20, 40) == 1.0


def test_efficiency_degrades_at_decomposition_limit():
    e32 = atmosphere_parallel_efficiency(32, 40)
    e40 = atmosphere_parallel_efficiency(40, 40)
    e66 = atmosphere_parallel_efficiency(66, 40)
    assert 1.0 > e32 > e40 > e66
    with pytest.raises(ValueError):
        atmosphere_parallel_efficiency(0, 40)


# ------------------------------------------------------------- event sim
def test_simulated_day_produces_valid_traces():
    res = simulate_coupled_day(8, 1, seed=1)
    assert isinstance(res.traces, TraceSet)
    assert res.traces.nranks == 9
    assert res.wall_seconds > 0
    assert res.speedup > 100
    # Every rank's trace spans to (near) the makespan.
    for tr in res.traces.traces[:8]:
        assert tr.end_time == pytest.approx(res.traces.makespan, rel=0.05)


def test_figure2_breakdown_structure():
    """Figure 2: mostly atmosphere, some coupler, a sliver of ocean, idle."""
    res = simulate_coupled_day(16, 1, seed=0)
    b = res.traces.breakdown()
    assert b["atmosphere"] > 0.5
    assert 0.0 < b["coupler"] < 0.2
    assert 0.0 < b["ocean"] < 0.15
    assert 0.0 < b["idle"] < 0.4
    assert sum(b.values()) == pytest.approx(1.0, abs=1e-6)


def test_one_ocean_rank_keeps_up_with_16_but_not_32():
    """The paper's Figure 2 observation, reproduced quantitatively.

    With zero load imbalance, atmosphere idle comes only from waiting on
    the ocean.  Every run pays one unavoidable end-of-day drain of the
    final ocean call; *mid-day* waits appear only when the ocean cannot
    keep pace.
    """
    def atm_idle_per_rank(n_atm):
        res = simulate_coupled_day(n_atm, 1, seed=0, imbalance=0.0)
        total = sum(tr.time_in("idle") for tr in res.traces.traces[:n_atm])
        return total / n_atm

    ocean_call = simulate_ocean_day(1).wall_seconds / 4.0
    # 16 atm ranks: only the final drain (~ one ocean call) shows up.
    assert atm_idle_per_rank(16) < 1.5 * ocean_call
    # 32 atm ranks: the ocean falls behind at every coupling boundary.
    assert atm_idle_per_rank(32) > 2.0 * ocean_call


def test_radiation_steps_visible_in_trace():
    """The two long atmosphere segments of Fig 2 (radiation) are present."""
    res = simulate_coupled_day(4, 1, seed=0, imbalance=0.0)
    seg_lengths = [s.duration for s in res.traces.traces[0].segments
                   if s.activity == "atmosphere"]
    longest = sorted(seg_lengths)[-2:]
    typical = np.median(seg_lengths)
    assert all(s > 5 * typical for s in longest)


def test_paper_speedup_anchors():
    """E5: ~4,000x at 34 nodes, ~6,000x at 68 with a pronounced knee."""
    curve = scaling_curve([34, 68])
    assert 3500 < curve[34] < 6000
    assert 5000 < curve[68] < 8000
    # Poor 34 -> 68 scaling: far below the 2x of perfect scaling.
    assert curve[68] / curve[34] < 1.6


def test_near_linear_atm_scaling_8_16_32():
    """E10: 'almost linear scaling on 8, 16, and 32 atmosphere processors'.

    Uses the paper's production allocation: one ocean rank per ~16
    atmosphere ranks (17- and 34-node runs)."""
    s = {n_atm: simulate_coupled_day(n_atm, n_ocn, seed=0).speedup
         for n_atm, n_ocn in ((8, 1), (16, 1), (32, 2))}
    assert 1.6 < s[16] / s[8] <= 2.05
    assert 1.6 < s[32] / s[16] <= 2.05


def test_ocean_throughput_anchor():
    """E6: ocean alone > 100,000x real time on 64 nodes."""
    res = simulate_ocean_day(64)
    assert res.speedup > 100_000
    assert simulate_ocean_day(1).speedup < res.speedup


def test_scaling_curve_validates_nodes():
    with pytest.raises(ValueError):
        scaling_curve([1], ocean_ranks_for={1: 1})


# ------------------------------------------------------------- CSM baseline
def test_csm_about_one_third_of_foam():
    """E8: 'CSM ... accomplishes only a third of FOAM's maximum throughput'."""
    foam_max = scaling_curve([68])[68]
    csm = CSMCostModel().throughput(16)
    assert 2.0 < foam_max / csm < 4.5


def test_cost_performance_more_than_tenfold():
    """E8: cost per unit performance > 10x better than the C90 baseline."""
    foam_max = scaling_curve([68])[68]
    assert cost_performance_ratio(foam_max, 68) > 10.0


def test_csm_capped_at_machine_size():
    csm = CSMCostModel()
    assert csm.throughput(64) == csm.throughput(16)


def test_trace_ascii_rendering():
    res = simulate_coupled_day(4, 1, seed=0)
    art = res.traces.render_ascii(width=60)
    lines = art.splitlines()
    assert len(lines) == 5
    assert "A" in art and "O" in art


# ------------------------------------------- CommStats-calibrated timing
def test_eventsim_accepts_measured_transpose_comm():
    """ISSUE 2 acceptance: eventsim driven by a CommStats-derived message
    volume (measured on the real distributed transpose) must land within
    10% of the analytic-formula throughput."""
    pytest.importorskip("repro.parallel.components")
    from repro.parallel.components import measure_transpose_comm
    from repro.perf import transpose_bytes_from_stats, transpose_messages_from_stats

    atm = AtmosphereCost()
    stats = measure_transpose_comm(4, nlat=atm.nlat, nm=atm.mmax + 1,
                                   nlev=atm.nlev)
    assert transpose_messages_from_stats(stats) == 2 * 4 * 3  # fwd+back pairwise

    measured = transpose_bytes_from_stats(stats)
    analytic = atm.transpose_bytes()
    assert measured == pytest.approx(analytic, rel=0.10)

    base = simulate_coupled_day(8, 1, seed=0)
    calibrated = simulate_coupled_day(8, 1, seed=0, transpose_comm=stats)
    assert calibrated.speedup == pytest.approx(base.speedup, rel=0.10)
    # The measured stats ride along on the trace set.
    assert calibrated.traces.comm is not None
    assert calibrated.traces.total_messages() > 0
    assert calibrated.traces.total_comm_bytes() > 0
    assert any(op.startswith("transpose")
               for op in calibrated.traces.message_breakdown())


def test_measured_transpose_volume_rank_count_invariant():
    """The full-exchange estimate must not depend on the measuring world."""
    from repro.parallel.components import measure_transpose_comm
    from repro.perf import transpose_bytes_from_stats

    volumes = [transpose_bytes_from_stats(
        measure_transpose_comm(k, nlat=16, nm=8, nlev=3)) for k in (2, 4)]
    assert volumes[0] == pytest.approx(volumes[1], rel=1e-12)


# --------------------------------------- profile-calibrated timing (ISSUE 3)
def test_measured_costs_validation():
    from repro.perf import MeasuredCosts

    mc = MeasuredCosts(step_seconds=0.01, radiation_step_seconds=0.02,
                       coupler_seconds=0.003, ocean_call_seconds=0.013)
    assert mc.transpose_seconds == 0.0
    with pytest.raises(ValueError):
        MeasuredCosts(step_seconds=0.0, radiation_step_seconds=0.02,
                      coupler_seconds=0.003, ocean_call_seconds=0.013)


def test_calibrate_from_profile_requires_instrumented_run():
    from repro.perf import calibrate_from_profile
    from repro.perf.profiler import RunProfile

    with pytest.raises(ValueError, match="atmosphere/dynamics"):
        calibrate_from_profile(RunProfile(label="empty"))


def test_calibrated_eventsim_reproduces_measured_ordering():
    """ISSUE 3 acceptance: `calibrate_from_profile()`-driven
    `simulate_coupled_day` reproduces the measured section ordering —
    radiation steps costlier than ordinary steps, transpose nonzero."""
    from repro.core.config import test_config
    from repro.core.foam import FoamModel
    from repro.parallel.components import measure_transpose_comm
    from repro.perf import calibrate_from_profile
    from repro.perf.profiler import (
        disable_profiling,
        enable_profiling,
        take_profile,
    )

    model = FoamModel(test_config())
    state = model.initial_state()
    prof = enable_profiling()
    prof.reset()
    try:
        # One coupling interval: includes the step-0 radiation pass and one
        # ocean call; plus one distributed transpose for the comm sections.
        for _ in range(model.config.atm_steps_per_coupling):
            state = model.coupled_step(state)
        measure_transpose_comm(4, nlat=model.config.atm_nlat,
                               nm=model.config.atm_mmax + 1,
                               nlev=model.config.atm_nlev)
    finally:
        disable_profiling()
    profile = take_profile("measured coupled interval")

    mc = calibrate_from_profile(profile)
    # Measured ordering: radiation steps cost strictly more than ordinary
    # ones, and the distributed transpose has a nonzero measured cost.
    assert mc.radiation_step_seconds > mc.step_seconds > 0.0
    assert mc.transpose_seconds > 0.0
    assert mc.ocean_call_seconds > 0.0
    assert mc.coupler_seconds > 0.0

    res = simulate_coupled_day(8, 1, seed=0, imbalance=0.0, measured=mc)
    costs = res.per_step_costs
    assert costs["source"] == "measured coupled interval"
    assert costs["radiation_step_seconds"] > costs["step_seconds"]
    assert costs["transpose_seconds"] == pytest.approx(mc.transpose_seconds)
    assert res.wall_seconds > 0 and res.speedup > 0

    # With no imbalance, the radiation step (k=0) must show up as a longer
    # atmosphere segment than the ordinary step that follows it.
    atm_segments = [s for s in res.traces.traces[0].segments
                    if s.activity == "atmosphere"]
    assert atm_segments[0].duration > atm_segments[1].duration


def test_eventsim_reports_per_step_costs_in_analytic_mode():
    res = simulate_coupled_day(8, 1, seed=0)
    costs = res.per_step_costs
    assert costs["source"] == "analytic"
    assert costs["radiation_step_seconds"] > costs["step_seconds"] > 0
    assert costs["transpose_seconds"] > 0
    assert costs["ocean_call_seconds"] > 0
