"""Integration tests for the coupled FOAM model (repro.core)."""

import numpy as np
import pytest

from repro.core import (
    CoupledDiagnostics,
    FoamConfig,
    FoamModel,
    load_restart,
    paper_config,
    save_restart,
)
from repro.core import test_config as tiny_config


@pytest.fixture(scope="module")
def model():
    return FoamModel(tiny_config())


@pytest.fixture(scope="module")
def spun_up(model):
    """A 3-day coupled run shared by several assertions."""
    st = model.initial_state()
    return model.run_days(st, 3.0)


def test_config_validation():
    with pytest.raises(ValueError):
        FoamConfig(atm_dt=1700.0)      # does not divide 6 h


def test_paper_config_matches_paper():
    cfg = paper_config()
    assert cfg.atm_mmax == 15          # R15
    assert (cfg.atm_nlat, cfg.atm_nlon) == (40, 48)
    assert cfg.atm_nlev == 18
    assert cfg.atm_dt == 1800.0        # 30-minute step
    assert (cfg.ocn_nx, cfg.ocn_ny, cfg.ocn_nlev) == (128, 128, 16)
    assert cfg.atm_steps_per_coupling == 12   # ocean called 4x/day
    assert cfg.radiation_interval == 43200.0  # radiation 2x/day


def test_one_coupled_day_finite(model):
    st = model.initial_state()
    st = model.run_days(st, 1.0)
    d = model.dycore.diagnose(st.atm_curr)
    assert np.all(np.isfinite(d.u))
    assert np.all(np.isfinite(st.ocean.temp))
    assert 180.0 < d.temp.min() and d.temp.max() < 350.0


def test_multiday_run_stays_physical(spun_up, model):
    d = model.dycore.diagnose(spun_up.atm_curr)
    assert np.abs(d.u).max() < 150.0
    sst = model.ocean.sst(spun_up.ocean)
    assert -2.0 <= np.nanmin(sst) and np.nanmax(sst) < 45.0
    assert spun_up.atm_curr.q.min() >= 0.0
    assert spun_up.atm_curr.q.max() < 0.05


def test_ocean_called_on_schedule(model):
    st = model.initial_state()
    t0 = st.ocean.time
    st = model.run_days(st, 1.0)
    # 4 ocean calls per day at the 6 h coupling interval.
    assert st.ocean.time - t0 == pytest.approx(86400.0)


def test_sst_feels_the_atmosphere(model):
    """Coupling does something: SST pattern changes vs an uncoupled ocean."""
    st = model.initial_state()
    sst0 = np.nan_to_num(model.ocean.sst(st.ocean))
    st = model.run_days(st, 3.0)
    sst1 = np.nan_to_num(model.ocean.sst(st.ocean))
    assert np.abs(sst1 - sst0).max() > 0.05


def test_diagnostics_accumulate(model):
    st = model.initial_state()
    diags = CoupledDiagnostics()
    model.run_days(st, 2.0, diagnostics=diags)
    assert 2 <= diags.sst_count <= 3   # daily samples incl. the first step
    assert len(diags.history_sst) == diags.sst_count
    assert diags.mean_sst().shape == (model.ocean_grid.ny, model.ocean_grid.nx)


def test_diagnostics_error_when_empty():
    with pytest.raises(RuntimeError):
        CoupledDiagnostics().mean_sst()


def test_water_inventory_reservoirs(model, spun_up):
    inv = model.global_water_inventory(spun_up)
    assert set(inv) == {"atmosphere", "soil", "snow", "rivers"}
    assert inv["atmosphere"] > 0
    assert inv["soil"] > 0
    assert all(v >= 0 for v in inv.values())


def test_restart_roundtrip(tmp_path, model, spun_up):
    """Restart files reproduce the state bit-exactly."""
    p = save_restart(tmp_path / "restart.npz", spun_up)
    back = load_restart(p)
    np.testing.assert_array_equal(back.atm_curr.vort, spun_up.atm_curr.vort)
    np.testing.assert_array_equal(back.ocean.temp, spun_up.ocean.temp)
    np.testing.assert_array_equal(back.coupler.hydrology.soil_moisture,
                                  spun_up.coupler.hydrology.soil_moisture)
    assert back.time == spun_up.time


def test_restart_continues_identically(tmp_path):
    """run(1 day) -> restart -> run(1 day) is bit-exact vs running through.

    Restarting at a radiation + ocean-coupling boundary (whole days are
    both) makes the model-level caches reconstructible; the test uses a
    fresh model so no cache state leaks in from other tests.
    """
    model = FoamModel(tiny_config())
    st_a = model.initial_state()
    st_a = model.run_days(st_a, 1.0)
    p = save_restart(tmp_path / "mid.npz", st_a)
    st_b = load_restart(p)
    out_a = model.run_days(st_a, 1.0)
    # Reset model-level caches the way a fresh process would start.
    model.physics._last_radiation_time = -np.inf
    model._reset_ocean_accumulator()
    out_b = model.run_days(st_b, 1.0)
    np.testing.assert_array_equal(out_b.ocean.temp, out_a.ocean.temp)
    np.testing.assert_array_equal(out_b.atm_curr.vort, out_a.atm_curr.vort)


def test_history_writer_roundtrip(tmp_path):
    from repro.core import HistoryWriter, load_history

    w = HistoryWriter(tmp_path, prefix="h")
    rng = np.random.default_rng(0)
    f1 = rng.normal(size=(4, 5))
    f2 = rng.normal(size=(4, 5))
    w.record(0.0, sst=f1)
    w.record(86400.0, sst=f2)
    path = w.flush()
    data = load_history(path)
    np.testing.assert_array_equal(data["sst"][0], f1)
    np.testing.assert_array_equal(data["time"], [0.0, 86400.0])
    assert w.flush() is None


def test_history_writer_rejects_inconsistent_fields(tmp_path):
    from repro.core import HistoryWriter

    w = HistoryWriter(tmp_path)
    w.record(0.0, sst=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        w.record(1.0, ice=np.zeros((2, 2)))
