"""Concurrent coupled execution: equivalence, overlap, and prediction.

The requirements these encode (ISSUE 5): the pool-split driver
(``repro.parallel.coupled``) must reproduce the serial float64 trajectory
*bitwise* over multiple simulated days — same exchange epochs, same
operation order; the per-rank profiles must merge into one coherent
profile; the rank arenas must stay disjoint; a mis-tagged coupler
exchange with two active pools must be diagnosed as a deadlock naming
both pools' waiting ranks; and the calibrated event-simulator prediction
must track the functional pool-split speedup.
"""

import time

import numpy as np
import pytest

from repro.core import FoamModel
from repro.core import test_config as tiny_config
from repro.parallel import DeadlockError, resolve_substrate, run_ranks
from repro.parallel.coupled import (
    TAG_ATM_STATE,
    TAG_FORCING,
    TAG_SST,
    TAG_SURFACE,
    PoolLayout,
    run_concurrent_coupled,
)
from repro.perf.costmodel import (
    AtmosphereCost,
    OceanCost,
    calibrate_concurrent_from_profile,
    calibrate_from_profile,
)
from repro.perf.eventsim import predict_concurrent_speedup
from repro.perf.profiler import Profiler, thread_profiler

pytestmark = pytest.mark.parallel

# Two simulated days plus three extra steps, so the coupler's forcing
# accumulator is mid-window at the end (acc_steps == 3): equivalence must
# hold for partial windows too, not just at coupling boundaries.
NSTEPS = 51
LAYOUT = PoolLayout(n_atm=2, n_ocn=1)


@pytest.fixture(scope="module")
def cfg():
    return tiny_config()


@pytest.fixture(scope="module")
def serial(cfg):
    """Profiled serial reference run of NSTEPS coupled steps."""
    model = FoamModel(cfg)
    state = model.initial_state()
    prof = Profiler(enabled=True)
    t0 = time.perf_counter()
    with thread_profiler(prof):
        for _ in range(NSTEPS):
            state = model.coupled_step(state)
    wall = time.perf_counter() - t0
    return {"model": model, "state": state, "wall": wall,
            "profile": prof.snapshot(label="serial",
                                     meta={"dtype": cfg.dtype_policy.name})}


@pytest.fixture(scope="module")
def concurrent(cfg):
    """The same NSTEPS on disjoint pools (2 atm + 1 coupler + 1 ocean)."""
    return run_concurrent_coupled(config=cfg, nsteps=NSTEPS, layout=LAYOUT,
                                  profile=True)


def _assert_bitwise(a, b, label):
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype, f"{label}: dtype {a.dtype} != {b.dtype}"
    assert np.array_equal(a, b, equal_nan=True), \
        f"{label}: max |diff| = {np.nanmax(np.abs(a - b))}"


def test_layout_roles():
    lay = PoolLayout(n_atm=3, n_ocn=2)
    assert lay.world_size == 6
    assert lay.atm_ranks == (0, 1, 2)
    assert lay.cpl_rank == 3
    assert lay.ocn_ranks == (4, 5)
    assert lay.ocn_leader == 4
    assert [lay.role_of(r) for r in range(6)] == \
        ["atm", "atm", "atm", "cpl", "ocn", "ocn"]
    with pytest.raises(ValueError):
        lay.role_of(6)
    with pytest.raises(ValueError):
        PoolLayout(n_atm=0)


def test_atmosphere_trajectory_bitwise(serial, concurrent):
    s, c = serial["state"], concurrent.state
    assert c.time == s.time
    for which in ("atm_prev", "atm_curr"):
        sa, ca = getattr(s, which), getattr(c, which)
        for f in ("vort", "div", "temp", "lnps", "q"):
            _assert_bitwise(getattr(ca, f), getattr(sa, f), f"{which}.{f}")


def test_ocean_trajectory_bitwise(serial, concurrent):
    s, c = serial["state"].ocean, concurrent.state.ocean
    for f in ("u", "v", "temp", "salt", "eta", "ubar", "vbar"):
        _assert_bitwise(getattr(c, f), getattr(s, f), f"ocean.{f}")
    # The SST the coupler last held is the final ocean call's (NaN on land).
    sst = serial["model"].ocean.sst(s)
    _assert_bitwise(concurrent.sst, sst, "sst")


def test_coupler_state_and_accumulators_bitwise(serial, concurrent):
    s, c = serial["state"].coupler, concurrent.state.coupler
    _assert_bitwise(c.land.soil_temp, s.land.soil_temp, "soil_temp")
    _assert_bitwise(c.hydrology.soil_moisture, s.hydrology.soil_moisture,
                    "soil_moisture")
    _assert_bitwise(c.hydrology.snow_depth, s.hydrology.snow_depth,
                    "snow_depth")
    _assert_bitwise(c.ice.thickness, s.ice.thickness, "ice.thickness")
    _assert_bitwise(c.ice.surface_temp, s.ice.surface_temp, "ice.surface_temp")
    _assert_bitwise(c.river_volume, s.river_volume, "river_volume")
    # Mid-window forcing accumulator: 51 = 8 * 6 + 3 steps accumulated.
    model = serial["model"]
    assert concurrent.acc_steps == model._acc_steps == 3
    for f in ("taux", "tauy", "heat_flux", "freshwater"):
        _assert_bitwise(getattr(concurrent.acc, f), getattr(model._acc, f),
                        f"acc.{f}")


def test_trajectory_allclose_acceptance(serial, concurrent):
    """The acceptance wording: allclose at 1e-12 (bitwise implies it)."""
    s, c = serial["state"], concurrent.state
    for f in ("vort", "div", "temp", "lnps"):
        assert np.allclose(getattr(c.atm_curr, f), getattr(s.atm_curr, f),
                           rtol=1e-12, atol=1e-12)
    sst = serial["model"].ocean.sst(s.ocean)
    assert np.allclose(np.nan_to_num(concurrent.sst), np.nan_to_num(sst),
                       rtol=1e-12, atol=1e-12)
    for f in ("taux", "tauy", "heat_flux", "freshwater"):
        assert np.allclose(getattr(concurrent.acc, f),
                           getattr(serial["model"]._acc, f),
                           rtol=1e-12, atol=1e-12)


def test_merged_profile_structure(concurrent):
    assert len(concurrent.profiles) == LAYOUT.world_size
    merged = concurrent.profile
    # Both atmosphere ranks run dynamics every step (replicated spectral).
    assert merged.total_calls("atmosphere/dynamics") == LAYOUT.n_atm * NSTEPS
    assert merged.total_calls("ocean") == NSTEPS // 6
    assert merged.total_calls("coupler/merge_surface") == NSTEPS
    assert merged.meta["merged_from"] == LAYOUT.world_size
    assert len(merged.meta["rank_walls"]) == LAYOUT.world_size
    assert merged.meta["layout"] == {"n_atm": 2, "n_ocn": 1}
    # Wall is a max across ranks, not a sum.
    assert merged.wall_seconds == pytest.approx(
        max(p.wall_seconds for p in concurrent.profiles))


def test_overlap_accounting(concurrent):
    assert concurrent.ocean_busy_seconds > 0.0
    assert 0.0 <= concurrent.overlap_seconds <= concurrent.ocean_busy_seconds
    assert 0.0 <= concurrent.hidden_fraction <= 1.0
    # The ocean rank spends most of the run waiting for forcing windows.
    assert concurrent.waits.get("forcing", 0.0) > 0.0


def test_workspace_arenas_disjoint(concurrent):
    from repro.backend import arenas_disjoint
    assert len(concurrent.workspaces) == LAYOUT.world_size
    assert len({id(w) for w in concurrent.workspaces}) == LAYOUT.world_size
    assert arenas_disjoint(concurrent.workspaces)
    # Per-rank stats were captured at loop exit and aggregate without
    # double counting (each arena is a distinct registry entry).
    for w, st in zip(concurrent.workspaces, concurrent.ws_stats):
        assert st["hits"] == w.hits and st["misses"] == w.misses


def test_eventsim_prediction_tracks_functional(serial, concurrent, cfg):
    if resolve_substrate() == "process":
        pytest.skip("calibration envelope is a thread-substrate contract: "
                    "forked ranks on a multi-core host change the "
                    "functional/predicted timing ratio by design")
    serial_costs = calibrate_from_profile(serial["profile"])
    conc_costs = calibrate_concurrent_from_profile(concurrent.profile,
                                                   n_atm_ranks=LAYOUT.n_atm)
    assert conc_costs.transpose_seconds == 0.0
    assert conc_costs.dynamics_seconds > 0.0
    assert conc_costs.coupler_exposed_seconds is not None
    atm = AtmosphereCost(nlat=cfg.atm_nlat, nlon=cfg.atm_nlon,
                         nlev=cfg.atm_nlev, mmax=cfg.atm_mmax, dt=cfg.atm_dt)
    ocn = OceanCost(nx=cfg.ocn_nx, ny=cfg.ocn_ny, nlev=cfg.ocn_nlev,
                    dt_long=cfg.ocean_coupling_interval)
    pred = predict_concurrent_speedup(serial_costs, conc_costs,
                                      LAYOUT.n_atm, LAYOUT.n_ocn,
                                      atm=atm, ocn=ocn)
    assert pred["speedup"] > 0.0
    functional = serial["wall"] / concurrent.wall_seconds
    # The strict 25% acceptance check lives in the benchmark (quiet, timed
    # runs); under pytest parallelism/load a factor-2 envelope still proves
    # the calibration tracks the functional schedule.
    ratio = functional / pred["speedup"]
    assert 0.5 < ratio < 2.0, \
        f"functional {functional:.3f} vs predicted {pred['speedup']:.3f}"


def test_mistagged_coupler_exchange_deadlocks_both_pools():
    """A wrong-tag FORCING send wedges both pools; the report names them."""
    layout = PoolLayout(n_atm=2, n_ocn=1)

    def worker(comm):
        role = layout.role_of(comm.rank)
        if role == "atm":
            # Both atmosphere ranks wait for a surface that never comes.
            return comm.recv(layout.cpl_rank, TAG_SURFACE)
        if role == "cpl":
            # Mis-tagged: the forcing goes out under TAG_SST, so the ocean
            # (waiting on TAG_FORCING) never matches it.
            comm.send({"taux": np.zeros(3)}, layout.ocn_leader, TAG_SST)
            return comm.recv(layout.atm_ranks[0], TAG_ATM_STATE)
        return comm.recv(layout.cpl_rank, TAG_FORCING)

    t0 = time.monotonic()
    with pytest.raises(DeadlockError) as excinfo:
        run_ranks(layout.world_size, worker, timeout=60.0)
    elapsed = time.monotonic() - t0
    assert elapsed < 1.0, f"deadlock diagnosis took {elapsed:.1f}s"

    report = excinfo.value.report
    # Every rank of both pools (and the coupler) is named as blocked.
    assert set(report.ranks) == {0, 1, 2, 3}
    by_rank = {b.rank: b for b in report.blocked}
    for r in layout.atm_ranks:
        assert by_rank[r].peer == layout.cpl_rank
        assert by_rank[r].tag == TAG_SURFACE
    assert by_rank[layout.ocn_leader].peer == layout.cpl_rank
    assert by_rank[layout.ocn_leader].tag == TAG_FORCING


def test_rejects_more_atm_ranks_than_latitudes(cfg):
    with pytest.raises(ValueError):
        run_concurrent_coupled(config=cfg, nsteps=1,
                               layout=PoolLayout(n_atm=cfg.atm_nlat + 1))
