"""Tests for the shared utilities: thermodynamics, validation, constants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import (
    dewpoint,
    moist_static_energy,
    potential_temperature,
    require_finite,
    require_in_range,
    require_positive,
    require_shape,
    saturation_mixing_ratio,
    saturation_vapor_pressure,
    temperature_from_theta,
    virtual_temperature,
)


# ------------------------------------------------------------- thermo
def test_saturation_vapor_pressure_anchor_points():
    """611 Pa at 0 C; ~2.3 kPa at 20 C; ~4.2 kPa at 30 C (standard tables)."""
    assert saturation_vapor_pressure(273.15) == pytest.approx(611.2, rel=1e-3)
    assert saturation_vapor_pressure(293.15) == pytest.approx(2339.0, rel=0.02)
    assert saturation_vapor_pressure(303.15) == pytest.approx(4247.0, rel=0.02)


@settings(max_examples=50, deadline=None)
@given(t=st.floats(220.0, 320.0))
def test_saturation_vapor_pressure_monotone(t):
    assert saturation_vapor_pressure(t + 1.0) > saturation_vapor_pressure(t)


@settings(max_examples=50, deadline=None)
@given(t=st.floats(230.0, 315.0), p=st.floats(2.0e4, 1.05e5))
def test_saturation_mixing_ratio_positive_and_bounded(t, p):
    q = saturation_mixing_ratio(t, p)
    assert 0.0 < q < 1.0


def test_potential_temperature_roundtrip():
    t = np.array([250.0, 280.0, 300.0])
    p = np.array([3.0e4, 7.0e4, 1.0e5])
    theta = potential_temperature(t, p)
    np.testing.assert_allclose(temperature_from_theta(theta, p), t, rtol=1e-12)
    # theta == T at the reference pressure.
    assert potential_temperature(288.0, 1.0e5) == pytest.approx(288.0)


def test_potential_temperature_increases_aloft_when_stable():
    # A moist-adiabat-ish profile: theta grows with height (lower p).
    assert potential_temperature(250.0, 3.0e4) > potential_temperature(288.0, 1.0e5)


def test_virtual_temperature_exceeds_dry():
    assert virtual_temperature(300.0, 0.02) > 300.0
    assert virtual_temperature(300.0, 0.0) == pytest.approx(300.0)


def test_moist_static_energy_components():
    h_dry = moist_static_energy(280.0, 0.0, 0.0)
    h_moist = moist_static_energy(280.0, 0.0, 0.01)
    h_high = moist_static_energy(280.0, 1000.0, 0.0)
    assert h_moist > h_dry
    assert h_high > h_dry


@settings(max_examples=40, deadline=None)
@given(t=st.floats(240.0, 310.0))
def test_dewpoint_inverts_vapor_pressure(t):
    e = saturation_vapor_pressure(t)
    np.testing.assert_allclose(dewpoint(e), t, rtol=1e-10)


def test_dewpoint_below_temperature_when_subsaturated():
    t = 295.0
    e = 0.5 * saturation_vapor_pressure(t)
    assert dewpoint(e) < t


# ------------------------------------------------------------- validation
def test_require_positive():
    assert require_positive(3, "x") == 3
    with pytest.raises(ValueError):
        require_positive(0, "x")
    with pytest.raises(TypeError):
        require_positive(np.array([1.0, 2.0]), "x")


def test_require_shape():
    a = require_shape(np.zeros((2, 3)), (2, 3), "a")
    assert a.shape == (2, 3)
    with pytest.raises(ValueError, match="must have shape"):
        require_shape(np.zeros((3, 2)), (2, 3), "a")


def test_require_in_range():
    assert require_in_range(0.5, 0.0, 1.0, "f") == 0.5
    with pytest.raises(ValueError):
        require_in_range(1.5, 0.0, 1.0, "f")


def test_require_finite():
    require_finite(np.ones(3), "ok")
    with pytest.raises(FloatingPointError, match="2 non-finite"):
        require_finite(np.array([1.0, np.nan, np.inf]), "bad")


# ------------------------------------------------------------- constants
def test_paper_constants_verbatim():
    """The coupler constants quoted in the paper, exactly."""
    from repro.util import constants as c

    assert c.SOIL_MOISTURE_CAPACITY == 0.15        # "a 15 cm soil moisture box"
    assert c.SNOW_RUNOFF_DEPTH == 1.0              # "greater than 1 m"
    assert c.RIVER_FLOW_VELOCITY == 0.35           # "a constant 0.35 m/s"
    assert c.SEAICE_FRESHWATER_DEPTH == 2.0        # "a flux of 2 m of water"
    assert c.SEAICE_STRESS_DIVISOR == 15.0         # "divided by 15"
    assert c.T_FREEZE_SEA == pytest.approx(273.15 - 1.92)  # "-1.92 C" clamp
