"""Tests for the array-backend layer: dtype policy, backend registry,
workspace arena, float32 drift bounds, and the bitwise golden regression
that pins the default (float64/NumPy) configuration to the pre-backend
model trajectory.
"""

import threading
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    FLOAT32,
    FLOAT64,
    BackendUnavailableError,
    Workspace,
    available_backends,
    default_policy,
    dtype_policy,
    get_backend,
    get_workspace,
    policy_from_name,
    set_default_dtype,
    workspace_enabled,
    workspace_totals,
)
from repro.core.config import test_config as _test_config
from repro.core.foam import FoamModel

GOLDEN = Path(__file__).parent / "data" / "golden_backend_float64.npz"


def _run_coupled(dtype: str, steps: int):
    cfg = _test_config()
    cfg.dtype = dtype
    # Pin the numpy backend the same way dtype is pinned: these tests check
    # the default path's arithmetic (bitwise for the golden), so they must
    # not float with a FOAM_BACKEND=torch CI environment.
    cfg.backend = "numpy"
    model = FoamModel(cfg)
    state = model.initial_state()
    for _ in range(steps):
        state = model.coupled_step(state)
    return model, state


# ---------------------------------------------------------------------------
# DTypePolicy
# ---------------------------------------------------------------------------
class TestDTypePolicy:
    def test_aliases_resolve(self):
        for alias in ("float64", "f64", "double", "fp64"):
            assert policy_from_name(alias) is FLOAT64
        for alias in ("float32", "F32", " single ", "fp32"):
            assert policy_from_name(alias) is FLOAT32

    def test_passthrough_and_default(self):
        assert policy_from_name(FLOAT32) is FLOAT32
        assert policy_from_name(None) is default_policy()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dtype policy"):
            policy_from_name("float16")

    def test_pairs_and_bytes(self):
        assert FLOAT64.complex_dtype == np.dtype(np.complex128)
        assert FLOAT32.complex_dtype == np.dtype(np.complex64)
        assert FLOAT64.float_bytes == 8 and FLOAT32.float_bytes == 4
        assert FLOAT32.complex_bytes == 8

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("FOAM_DTYPE", "f32")
        assert default_policy() is FLOAT32
        monkeypatch.delenv("FOAM_DTYPE")
        assert default_policy() is FLOAT64

    def test_override_and_context(self, monkeypatch):
        monkeypatch.delenv("FOAM_DTYPE", raising=False)
        set_default_dtype("float32")
        try:
            assert default_policy() is FLOAT32
        finally:
            set_default_dtype(None)
        assert default_policy() is FLOAT64
        with dtype_policy("float32") as pol:
            assert pol is FLOAT32 and default_policy() is FLOAT32
        assert default_policy() is FLOAT64

    def test_asfloat_identity_no_copy(self):
        a = np.ones(4)
        assert FLOAT64.asfloat(a) is a          # no silent copies at float64
        down = FLOAT32.asfloat(a)
        assert down.dtype == np.float32
        c = np.ones(3, dtype=complex)
        assert FLOAT64.ascomplex(c) is c
        assert FLOAT32.ascomplex(c).dtype == np.complex64


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------
class TestBackendRegistry:
    def test_default_is_numpy(self):
        be = get_backend()
        assert be.name == "numpy" and be.xp is np
        assert get_backend("NumPy") is be       # case-insensitive, cached

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("FOAM_BACKEND", "numpy")
        assert get_backend().name == "numpy"

    def test_backend_instance_passthrough(self):
        be = get_backend("numpy")
        assert get_backend(be) is be

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("jax")

    def test_registry_lists_optional_backends(self):
        names = available_backends()
        assert {"numpy", "torch", "cupy"} <= set(names)

    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_missing_dependency_is_actionable(self, name):
        try:
            __import__(name)
        except ImportError:
            with pytest.raises(BackendUnavailableError, match=name):
                get_backend(name)
        else:  # dependency actually present: selection must succeed
            assert get_backend(name).name == name

    def test_numpy_allocation_surface(self):
        be = get_backend("numpy")
        z = be.zeros((2, 3), np.float32)
        assert z.shape == (2, 3) and z.dtype == np.float32 and not z.any()
        e = be.empty((4,), np.float64)
        assert e.shape == (4,) and e.dtype == np.float64
        arr = be.asarray([1, 2], dtype=np.float64)
        assert be.to_numpy(arr) is not None
        assert np.array_equal(be.to_numpy(arr), [1.0, 2.0])


# ---------------------------------------------------------------------------
# Workspace arena
# ---------------------------------------------------------------------------
class TestWorkspace:
    def test_hit_miss_accounting(self):
        ws = Workspace()
        a = ws.empty("t.a", (3, 4), np.float64)
        assert ws.misses == 1 and ws.hits == 0
        b = ws.empty("t.a", (3, 4), np.float64)
        assert b is a and ws.hits == 1
        # A different shape or dtype or name is a distinct buffer.
        assert ws.empty("t.a", (4, 3), np.float64) is not a
        assert ws.empty("t.a", (3, 4), np.float32) is not a
        assert ws.empty("t.b", (3, 4), np.float64) is not a
        assert len(ws) == 4

    def test_zeros_refill_bitwise(self):
        ws = Workspace()
        buf = ws.zeros("t.z", (5,), np.float64)
        buf[:] = np.pi
        again = ws.zeros("t.z", (5,), np.float64)
        assert again is buf
        fresh = np.zeros(5)
        assert np.array_equal(again, fresh)
        assert np.array_equal(again.view(np.uint64), fresh.view(np.uint64))

    def test_like_helpers(self):
        ws = Workspace()
        ref = np.ones((2, 2), dtype=np.complex64)
        assert ws.empty_like("t.e", ref).dtype == np.complex64
        z = ws.zeros_like("t.zl", ref)
        assert z.shape == (2, 2) and not z.any()

    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.empty("t.a", (10,), np.float64)
        assert ws.nbytes == 80
        ws.clear()
        assert len(ws) == 0 and ws.hits == 0 and ws.misses == 0

    def test_kill_switch(self, monkeypatch):
        monkeypatch.setenv("FOAM_WORKSPACE", "0")
        assert not workspace_enabled()
        ws = Workspace()
        a = ws.empty("t.k", (3,), np.float64)
        b = ws.empty("t.k", (3,), np.float64)
        assert b is not a                       # reuse disabled
        assert ws.hits == 0 and ws.misses == 2  # every request allocates
        monkeypatch.delenv("FOAM_WORKSPACE")
        assert workspace_enabled()
        assert ws.empty("t.k", (3,), np.float64) is b  # reuse resumes in-process

    def test_thread_local_workspaces(self):
        main_ws = get_workspace()
        assert get_workspace() is main_ws
        seen = []
        t = threading.Thread(target=lambda: seen.append(get_workspace()))
        t.start()
        t.join()
        assert seen and seen[0] is not main_ws

    def test_totals_aggregate(self):
        before = workspace_totals()
        ws = Workspace()
        ws.empty("t.tot", (7,), np.float64)
        ws.empty("t.tot", (7,), np.float64)
        after = workspace_totals()
        assert after["misses"] - before["misses"] >= 1
        assert after["hits"] - before["hits"] >= 1
        assert after["nbytes"] >= before["nbytes"] + 56

    def test_counters_land_on_profiler_sections(self):
        from repro.perf.profiler import (
            enable_profiling, profile_section, take_profile,
        )
        prof = enable_profiling()
        prof.reset()
        try:
            ws = Workspace()
            with profile_section("wstest"):
                ws.empty("t.sec", (2,), np.float64)
                ws.empty("t.sec", (2,), np.float64)
        finally:
            prof.disable()
        profile = take_profile(label="ws counters")
        stat = profile["wstest"]
        assert stat.counters.get("ws.misses") == 1.0
        assert stat.counters.get("ws.hits") == 1.0


# ---------------------------------------------------------------------------
# Precision: float32 runs, stays float32, and drifts boundedly
# ---------------------------------------------------------------------------
class TestFloat32Integration:
    def test_float32_coupled_day_bounded_drift(self):
        steps = 24                              # one simulated day (test cfg)
        m64, s64 = _run_coupled("float64", steps)
        m32, s32 = _run_coupled("float32", steps)

        # State arrays carry the policy dtype all the way through.
        assert s32.atm_curr.vort.dtype == np.complex64
        assert s32.atm_curr.q.dtype == np.float32
        assert s32.ocean.temp.dtype == np.float32
        assert s32.ocean.eta.dtype == np.float32
        assert s64.atm_curr.vort.dtype == np.complex128

        # Conserved-quantity drift between precisions stays bounded: the
        # trajectories decorrelate pointwise, but mass (area-mean surface
        # pressure), column energy, and ocean kinetic energy must agree to
        # within far-better-than-single-precision-accumulation bounds.
        mass64 = m64.dycore.global_mass(s64.atm_curr)
        mass32 = m32.dycore.global_mass(s32.atm_curr)
        assert np.isfinite(mass32)
        assert abs(mass32 - mass64) / abs(mass64) < 1e-4

        e64 = m64.dycore.total_energy(s64.atm_curr)
        e32 = m32.dycore.total_energy(s32.atm_curr)
        assert np.isfinite(e32)
        assert abs(e32 - e64) / abs(e64) < 1e-3

        ke64 = m64.ocean.total_kinetic_energy(s64.ocean)
        ke32 = m32.ocean.total_kinetic_energy(s32.ocean)
        assert np.isfinite(ke32)
        assert abs(ke32 - ke64) / max(abs(ke64), 1e-12) < 5e-2

        for arr in (s32.atm_curr.temp, s32.atm_curr.q, s32.ocean.temp,
                    s32.ocean.salt, s32.ocean.eta):
            assert np.all(np.isfinite(arr))


# ---------------------------------------------------------------------------
# Bitwise golden regression: default policy == pre-backend trajectory
# ---------------------------------------------------------------------------
class TestGoldenRegression:
    def test_default_float64_bitwise_golden(self):
        """Six coupled steps of the test config reproduce the stored golden
        trajectory bit for bit.  ``dtype`` is pinned explicitly so the test
        also passes under a ``FOAM_DTYPE=float32`` CI environment — it pins
        the *default policy's* arithmetic, not the ambient environment.
        """
        _, s = _run_coupled("float64", 6)
        golden = np.load(GOLDEN)
        got = {
            "vort": s.atm_curr.vort, "temp": s.atm_curr.temp,
            "lnps": s.atm_curr.lnps, "q": s.atm_curr.q,
            "otemp": s.ocean.temp, "osalt": s.ocean.salt,
            "eta": s.ocean.eta, "ubar": s.ocean.ubar, "vbar": s.ocean.vbar,
        }
        for name, arr in got.items():
            ref = golden[name]
            assert arr.dtype == ref.dtype, f"{name}: dtype changed"
            assert np.array_equal(arr, ref), (
                f"{name}: trajectory diverged bitwise from the golden file; "
                "the default float64 path must stay bit-identical — if the "
                "numerics changed intentionally, regenerate "
                "tests/data/golden_backend_float64.npz")
