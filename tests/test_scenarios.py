"""Scenario layer tests: registry, golden climatologies, CLI, round-trips.

The per-scenario regression (``test_climatology_regression[<name>]``) is
what the CI scenario matrix selects one job per world from; everything
runs together under tier-1.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import (
    OCEAN_INIT_KINDS,
    OCEAN_MODES,
    TOPOGRAPHY_KINDS,
    FoamConfig,
)
from repro.core.config import test_config as _test_config
from repro.core.foam import FoamModel
from repro.scenarios import (
    BASE_CONFIGS,
    GOLDEN_DAYS,
    Scenario,
    compare_climatology,
    get_scenario,
    register,
    scenario_climatology,
    scenario_names,
)
from repro.scenarios.__main__ import main as cli_main

GOLDEN_PATH = Path(__file__).parent / "data" / "scenario_climatology.json"

# One climatology integration per scenario per test session: the regression,
# ordering, and sanity tests all read from this cache.
_CLIM_CACHE: dict[str, dict] = {}


def _clim(name: str) -> dict:
    if name not in _CLIM_CACHE:
        model, state = get_scenario(name).build("test")
        _, metrics = scenario_climatology(model, state, days=GOLDEN_DAYS)
        _CLIM_CACHE[name] = metrics
    return _CLIM_CACHE[name]


def _golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_has_the_canon():
    names = scenario_names()
    for required in ("control", "aquaplanet", "snowball", "doubled_co2",
                     "slab_ocean", "tidally_locked", "paleo"):
        assert required in names


def test_register_rejects_duplicates_and_blank_names():
    s = get_scenario("aquaplanet")
    with pytest.raises(ValueError, match="already registered"):
        register(s)
    register(s, replace=True)  # idempotent with replace
    with pytest.raises(ValueError, match="non-empty name"):
        register(Scenario(name="", description="nameless"))


def test_get_scenario_unknown_lists_choices():
    with pytest.raises(ValueError, match="aquaplanet"):
        get_scenario("venus")


def test_scenario_config_bases():
    s = get_scenario("aquaplanet")
    assert s.config("test").atm_nlon == _test_config().atm_nlon
    assert s.config(None).atm_nlon == _test_config().atm_nlon
    paper = s.config("paper")
    assert paper.atm_nlon == FoamConfig().atm_nlon
    assert paper.topography == "aquaplanet"
    with pytest.raises(ValueError, match="unknown base config"):
        s.config("enormous")
    # config_overrides pass through arbitrary FoamConfig fields
    tweaked = dataclasses.replace(s, config_overrides={"atm_dt": 1200.0})
    assert tweaked.config("test").atm_dt == 1200.0


def test_knob_summary_is_sparse():
    assert get_scenario("control").knob_summary() == {}
    ks = get_scenario("tidally_locked").knob_summary()
    assert ks["rotation_factor"] == pytest.approx(1.0 / 16.0)
    assert ks["subsolar_lon_deg"] == 180.0
    assert "co2_ppmv" not in ks


# ----------------------------------------------------------------------
# golden climatology regression (CI matrix selects one name per job)
# ----------------------------------------------------------------------
def test_golden_file_covers_registry():
    golden = _golden()
    assert sorted(golden["scenarios"]) == scenario_names(), (
        "registry and goldens diverged — regenerate with "
        "`python -m repro.scenarios golden`")
    assert golden["_meta"]["days"] == GOLDEN_DAYS


@pytest.mark.parametrize("name", scenario_names())
def test_climatology_regression(name):
    got = _clim(name)
    want = _golden()["scenarios"][name]
    problems = compare_climatology(got, want)
    assert not problems, "\n".join(problems)
    # physical sanity, independent of the pinned numbers
    assert 0.0 <= got["ice_fraction"] <= 1.0
    assert got["ocean_ke_j"] >= 0.0
    assert got["mass_drift_rel"] < 1e-5
    assert all(np.isfinite(v) for v in got.values())


def test_cross_scenario_ordering():
    """The climate ordering the scenarios exist to demonstrate."""
    snowball, aqua, co2 = (_clim(n) for n in
                           ("snowball", "aquaplanet", "doubled_co2"))
    # Global-mean surface temperature: frozen < baseline < greenhouse.
    assert snowball["ts_global_k"] < aqua["ts_global_k"] < co2["ts_global_k"]
    # Column air temperature shows the CO2 signal orders of magnitude
    # above platform noise (OLR drops immediately under doubled CO2).
    assert co2["t_atm_k"] - aqua["t_atm_k"] > 1e-4
    assert snowball["t_atm_k"] < aqua["t_atm_k"]
    # Ice: the snowball is frozen over, the warm aquaplanet is not.
    assert snowball["ice_fraction"] > 0.9
    assert aqua["ice_fraction"] < 0.1
    # The slab ocean is motionless by construction.
    assert _clim("slab_ocean")["ocean_ke_j"] == 0.0


def test_compare_climatology_flags_problems():
    want = {"ts_global_k": 290.0, "extra_metric": 1.0}
    got = {"ts_global_k": 295.0, "novel_metric": 2.0}
    problems = compare_climatology(got, want)
    text = "\n".join(problems)
    assert "ts_global_k" in text            # out of tolerance
    assert "extra_metric" in text           # missing from run
    assert "novel_metric" in text           # not in golden
    assert compare_climatology({"ts_global_k": 290.1},
                               {"ts_global_k": 290.0}) == []
    assert compare_climatology({"ts_global_k": float("nan")},
                               {"ts_global_k": 290.0})


# ----------------------------------------------------------------------
# no silent drift: the scenario layer reproduces plain FoamModel bitwise
# ----------------------------------------------------------------------
def _assert_states_identical(a, b, path=""):
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, path
        assert np.array_equal(a, b, equal_nan=True), path
    elif dataclasses.is_dataclass(a):
        for f in dataclasses.fields(a):
            _assert_states_identical(getattr(a, f.name), getattr(b, f.name),
                                     f"{path}.{f.name}")
    elif isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for k in a:
            _assert_states_identical(a[k], b[k], f"{path}[{k}]")
    else:
        assert a == b, path


@pytest.mark.parametrize("name,cfg_delta", [
    ("control", {}),
    ("aquaplanet", {"topography": "aquaplanet"}),
])
def test_scenario_bitwise_equals_plain_model(name, cfg_delta):
    """Building through a Scenario adds nothing to the numerics."""
    model_s, state_s = get_scenario(name).build("test")
    cfg = dataclasses.replace(_test_config(), **cfg_delta)
    model_p = FoamModel(cfg)
    state_p = model_p.initial_state()
    for _ in range(3):
        state_s = model_s.coupled_step(state_s)
        state_p = model_p.coupled_step(state_p)
    _assert_states_identical(state_s, state_p)


# ----------------------------------------------------------------------
# config serialization round-trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", scenario_names())
def test_config_roundtrip_per_scenario(name):
    for base in BASE_CONFIGS:
        cfg = get_scenario(name).config(base)
        assert FoamConfig.from_dict(cfg.to_dict()) == cfg


def test_from_dict_rejects_unknown_fields():
    d = _test_config().to_dict()
    d["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        FoamConfig.from_dict(d)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    solar=st.floats(min_value=100.0, max_value=5000.0,
                    allow_nan=False, allow_infinity=False),
    co2=st.floats(min_value=1.0, max_value=1e5,
                  allow_nan=False, allow_infinity=False),
    rot=st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
    sublon=st.one_of(st.none(), st.floats(min_value=-180.0, max_value=360.0,
                                          allow_nan=False)),
    topo=st.sampled_from(TOPOGRAPHY_KINDS),
    mode=st.sampled_from(OCEAN_MODES),
    mld=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    init=st.sampled_from(OCEAN_INIT_KINDS),
    ice=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_config_roundtrip_property(solar, co2, rot, sublon, topo, mode,
                                   mld, init, ice):
    cfg = dataclasses.replace(
        _test_config(), solar_constant=solar, co2_ppmv=co2,
        rotation_factor=rot, subsolar_lon_deg=sublon, topography=topo,
        ocean_mode=mode, mixed_layer_depth=mld, ocean_init=init,
        initial_ice_thickness=ice)
    back = FoamConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
    assert back == cfg


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list_and_describe(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out

    assert cli_main(["list", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert [s["name"] for s in listed] == scenario_names()

    assert cli_main(["describe", "snowball", "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["config"]["initial_ice_thickness"] == 1.0
    assert cli_main(["describe", "snowball"]) == 0
    assert "faint-sun" in capsys.readouterr().out


def test_cli_run_serial_json(capsys):
    assert cli_main(["run", "aquaplanet", "--days", "0.25", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["scenario"] == "aquaplanet"
    assert out["mode"] == "serial"
    clim = out["climatology"]
    assert 250.0 < clim["ts_global_k"] < 320.0
    assert np.isfinite(clim["ocean_ke_j"])


def test_cli_run_ensemble(capsys):
    assert cli_main(["run", "aquaplanet", "--days", "0.125",
                     "--ensemble", "2", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["mode"] == "ensemble"
    assert out["nens"] == 2
    assert len(out["members"]) == 2
    assert out["ts_spread_k"] >= 0.0


def test_cli_run_concurrent(capsys):
    assert cli_main(["run", "aquaplanet", "--days", "0.125",
                     "--substrate", "thread", "--json"]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["mode"] == "concurrent"
    assert out["substrate"] == "thread"
    assert 250.0 < out["final_state"]["ts_global_k"] < 320.0


def test_cli_run_rejects_ensemble_plus_substrate():
    with pytest.raises(SystemExit):
        cli_main(["run", "aquaplanet", "--ensemble", "2",
                  "--substrate", "thread"])


def test_cli_golden_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "golden.json"
    assert cli_main(["golden", "aquaplanet", "--days", "0.125",
                     "--out", str(out_path)]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert list(data["scenarios"]) == ["aquaplanet"]
    assert data["_meta"]["days"] == 0.125


def test_cli_module_entrypoint_subprocess():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.scenarios", "list"],
        capture_output=True, text=True,
        cwd=str(Path(__file__).parent.parent))
    assert proc.returncode == 0, proc.stderr
    assert "aquaplanet" in proc.stdout


def test_cli_checkpoint_then_resume_subprocess(tmp_path):
    """End-to-end harness resume through the CLI, in a fresh interpreter."""
    repo = str(Path(__file__).parent.parent)
    ckdir = tmp_path / "ck"
    first = subprocess.run(
        [sys.executable, "-m", "repro.scenarios", "run", "control",
         "--days", "0.5", "--checkpoint-dir", str(ckdir), "--json"],
        capture_output=True, text=True, cwd=repo)
    assert first.returncode == 0, first.stderr
    out = json.loads(first.stdout)
    assert out["checkpoints"], "no checkpoint written"

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.scenarios", "run", "control",
         "--days", "1.0", "--resume", out["checkpoints"][-1], "--json"],
        capture_output=True, text=True, cwd=repo)
    assert resumed.returncode == 0, resumed.stderr
    body = json.loads(resumed.stdout)
    assert body["resumed_from_step"] == 12
    assert body["run_key"] != out["run_key"]       # different total days
    assert 250.0 < body["climatology"]["ts_global_k"] < 320.0
