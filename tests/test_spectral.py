"""Tests for the spherical-harmonic transform core (repro.atmosphere.spectral)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atmosphere.spectral import (
    SpectralTransform,
    Truncation,
    associated_legendre,
    gaussian_latitudes,
)
from repro.util.constants import EARTH_RADIUS


@pytest.fixture(scope="module")
def r15():
    """The paper's atmosphere resolution: R15 on a 48x40 grid."""
    return SpectralTransform(nlat=40, nlon=48, trunc=Truncation(15))


@pytest.fixture(scope="module")
def t10():
    return SpectralTransform(nlat=32, nlon=64, trunc=Truncation(10, kind="triangular"))


# ----------------------------------------------------------- Gaussian grid
def test_gaussian_latitudes_sorted_and_symmetric():
    mu, w = gaussian_latitudes(40)
    assert np.all(np.diff(mu) > 0)
    np.testing.assert_allclose(mu, -mu[::-1], atol=1e-14)
    np.testing.assert_allclose(w, w[::-1], atol=1e-14)
    np.testing.assert_allclose(w.sum(), 2.0, atol=1e-13)


def test_gaussian_quadrature_exact_for_polynomials():
    mu, w = gaussian_latitudes(8)
    # Exact for polynomials up to degree 15.
    for p in range(0, 16, 2):
        np.testing.assert_allclose(np.sum(w * mu**p), 2.0 / (p + 1), atol=1e-12)
    for p in range(1, 16, 2):
        np.testing.assert_allclose(np.sum(w * mu**p), 0.0, atol=1e-13)


def test_gaussian_latitudes_rejects_tiny():
    with pytest.raises(ValueError):
        gaussian_latitudes(1)


# ----------------------------------------------------------- Legendre table
def test_legendre_orthonormality():
    """(1/2) int Pbar_n^m Pbar_l^m dmu = delta_nl via Gaussian quadrature."""
    mu, w = gaussian_latitudes(48)
    pbar = associated_legendre(mu, mmax=10, nkmax=11)
    for m in [0, 1, 5, 10]:
        block = pbar[:, m, :]  # (nlat, nk): columns are n = m..m+10
        gram = np.einsum("j,jk,jl->kl", w / 2.0, block, block)
        np.testing.assert_allclose(gram, np.eye(block.shape[1]), atol=1e-10)


def test_legendre_known_values():
    """Check Pbar against hand-normalized low-order Legendre polynomials."""
    mu, _ = gaussian_latitudes(16)
    pbar = associated_legendre(mu, mmax=2, nkmax=3)
    np.testing.assert_allclose(pbar[:, 0, 0], np.ones_like(mu), atol=1e-13)
    # Pbar_1^0 = sqrt(3) mu
    np.testing.assert_allclose(pbar[:, 0, 1], np.sqrt(3.0) * mu, atol=1e-12)
    # Pbar_2^0 = sqrt(5)/2 (3 mu^2 - 1)
    np.testing.assert_allclose(pbar[:, 0, 2], np.sqrt(5.0) / 2 * (3 * mu**2 - 1), atol=1e-12)
    # Pbar_1^1 = sqrt(3/2) cos(lat)
    np.testing.assert_allclose(pbar[:, 1, 0], np.sqrt(1.5) * np.sqrt(1 - mu**2), atol=1e-12)


# ----------------------------------------------------------- truncation
def test_truncation_validation():
    with pytest.raises(ValueError):
        Truncation(0)
    with pytest.raises(ValueError):
        Truncation(5, kind="hexagonal")


def test_triangular_mask_shape():
    t = Truncation(4, kind="triangular")
    mask = t.mask()
    assert mask[0, 4] and not mask[1, 4] and not mask[4, 1]
    assert mask.sum() == 15  # (5+4+3+2+1)


def test_transform_rejects_aliasing_grid():
    with pytest.raises(ValueError, match="alias"):
        SpectralTransform(nlat=40, nlon=24, trunc=Truncation(15))
    with pytest.raises(ValueError, match="quadrature"):
        SpectralTransform(nlat=10, nlon=48, trunc=Truncation(15))


# ----------------------------------------------------------- transforms
def test_roundtrip_bandlimited_field(r15):
    """synthesize(analyze(f)) == f for a field inside the truncation."""
    rng = np.random.default_rng(0)
    spec = (rng.normal(size=r15.spec_shape) + 1j * rng.normal(size=r15.spec_shape))
    spec[0, :] = spec[0, :].real  # m=0 coefficients of real fields are real
    grid = r15.synthesize(spec)
    spec2 = r15.analyze(grid)
    np.testing.assert_allclose(spec2, spec, atol=1e-10)


def test_roundtrip_triangular(t10):
    rng = np.random.default_rng(1)
    spec = (rng.normal(size=t10.spec_shape) + 1j * rng.normal(size=t10.spec_shape))
    spec[0, :] = spec[0, :].real
    spec = spec * t10.trunc.mask()
    np.testing.assert_allclose(t10.analyze(t10.synthesize(spec)), spec, atol=1e-10)


def test_constant_field_maps_to_mean_mode(r15):
    grid = np.full((40, 48), 7.25)
    spec = r15.analyze(grid)
    assert spec[0, 0] == pytest.approx(7.25, abs=1e-12)
    off = spec.copy()
    off[0, 0] = 0.0
    np.testing.assert_allclose(off, 0.0, atol=1e-12)


def test_global_mean_matches_spec00(r15):
    rng = np.random.default_rng(2)
    spec = rng.normal(size=r15.spec_shape) + 1j * rng.normal(size=r15.spec_shape)
    spec[0, :] = spec[0, :].real
    grid = r15.synthesize(spec)
    assert r15.global_mean(grid) == pytest.approx(spec[0, 0].real, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_parseval_energy_identity(seed):
    """Quadrature norm of the grid field equals the spectral norm (Parseval)."""
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    rng = np.random.default_rng(seed)
    spec = rng.normal(size=tr.spec_shape) + 1j * rng.normal(size=tr.spec_shape)
    spec[0, :] = spec[0, :].real
    grid = tr.synthesize(spec)
    grid_norm = np.sum(tr.cell_area_weights * grid**2)
    spec_norm = np.sum(np.abs(spec[0, :]) ** 2) + 2.0 * np.sum(np.abs(spec[1:, :]) ** 2)
    np.testing.assert_allclose(grid_norm, spec_norm, rtol=1e-10)


# ----------------------------------------------------------- operators
def test_laplacian_eigenfunction(r15):
    """Each harmonic is an eigenfunction: del^2 Y_n^m = -n(n+1)/a^2 Y_n^m."""
    spec = np.zeros(r15.spec_shape, dtype=complex)
    spec[3, 2] = 1.0  # m=3, n=5
    lap = r15.laplacian(spec)
    assert lap[3, 2] == pytest.approx(-5 * 6 / EARTH_RADIUS**2)


def test_inverse_laplacian_inverts(r15):
    rng = np.random.default_rng(3)
    spec = rng.normal(size=r15.spec_shape) + 1j * rng.normal(size=r15.spec_shape)
    spec[0, 0] = 0.0
    np.testing.assert_allclose(
        r15.inverse_laplacian(r15.laplacian(spec)), spec, atol=1e-12)


def test_ddlambda_of_zonal_harmonic(r15):
    """d/dlambda of cos^2(lat) sin(2 lambda) = 2 cos^2(lat) cos(2 lambda).

    cos^2(lat) e^{2 i lambda} is proportional to Y_2^2, so the field is
    band-limited and the identity must hold pointwise on the grid.
    """
    lon = r15.lons[None, :]
    cos2 = r15.coslat[:, None] ** 2
    grid = cos2 * np.sin(2 * lon)
    spec = r15.analyze(grid)
    ddx = r15.synthesize(r15.ddlambda(spec))
    np.testing.assert_allclose(ddx, 2 * cos2 * np.cos(2 * lon), atol=1e-12)


def test_gradient_of_zonal_wave(r15):
    """Gradient x-component of f = cos(lat) sin(lambda) is cos(lambda)/a."""
    lon = r15.lons[None, :]
    coslat = r15.coslat[:, None]
    grid = coslat * np.sin(lon)
    fx, fy = r15.gradient(r15.analyze(grid))
    np.testing.assert_allclose(fx, np.cos(lon) / EARTH_RADIUS * np.ones_like(coslat),
                               atol=1e-9 / EARTH_RADIUS * 1e3)
    # f = cos(lat) sin(lon) is the real Y_1^1 harmonic up to scale; its
    # meridional derivative is -sin(lat) sin(lon) / a * ... check numerically:
    mu = r15.mu[:, None]
    expect_fy = -mu * np.sin(lon) / EARTH_RADIUS
    np.testing.assert_allclose(fy, expect_fy, atol=1e-12)


# ----------------------------------------------- wind <-> vorticity/divergence
def test_uv_vortdiv_roundtrip(r15):
    """vortdiv_from_uv(uv_from_vortdiv(z, d)) == (z, d) inside truncation."""
    rng = np.random.default_rng(4)
    nm, nk = r15.spec_shape
    vort = rng.normal(size=(nm, nk)) * 1e-5 + 1j * rng.normal(size=(nm, nk)) * 1e-5
    div = rng.normal(size=(nm, nk)) * 1e-6 + 1j * rng.normal(size=(nm, nk)) * 1e-6
    vort[0, :] = vort[0, :].real
    div[0, :] = div[0, :].real
    vort[0, 0] = 0.0  # mean vorticity/divergence of a flow vanish
    div[0, 0] = 0.0
    # Leave headroom at the rhomboidal boundary: the H operator couples n -> n+1,
    # so the top k row cannot round-trip exactly (standard truncation behavior).
    vort[:, -1] = 0.0
    div[:, -1] = 0.0
    u, v = r15.uv_from_vortdiv(vort, div)
    vort2, div2 = r15.vortdiv_from_uv(u, v)
    np.testing.assert_allclose(vort2[:, :-1], vort[:, :-1], atol=1e-11)
    np.testing.assert_allclose(div2[:, :-1], div[:, :-1], atol=1e-11)


def test_solid_body_rotation_vorticity(r15):
    """u = U0 cos(lat) (solid body) has vorticity 2 U0 sin(lat) / a."""
    u0 = 10.0
    u = u0 * r15.coslat[:, None] * np.ones((1, 48))
    v = np.zeros_like(u)
    vort_spec, div_spec = r15.vortdiv_from_uv(u, v)
    vort = r15.synthesize(vort_spec)
    expect = 2 * u0 * r15.mu[:, None] / EARTH_RADIUS * np.ones((1, 48))
    np.testing.assert_allclose(vort, expect, atol=1e-12)
    np.testing.assert_allclose(r15.synthesize(div_spec), 0.0, atol=1e-12)


def test_purely_divergent_flow_has_no_vorticity(r15):
    rng = np.random.default_rng(5)
    nm, nk = r15.spec_shape
    div = rng.normal(size=(nm, nk)) * 1e-6 + 1j * rng.normal(size=(nm, nk)) * 1e-6
    div[0, :] = div[0, :].real
    div[0, 0] = 0.0
    u, v = r15.uv_from_vortdiv(np.zeros_like(div), div)
    vort2, _ = r15.vortdiv_from_uv(u, v)
    np.testing.assert_allclose(np.abs(vort2), 0.0, atol=1e-12)


# ----------------------------------------------------------- hyperdiffusion
def test_spectral_filter_damps_high_wavenumbers_only(r15):
    spec = np.ones(r15.spec_shape, dtype=complex)
    out = r15.spectral_filter(spec, order=4, coefficient=1e16, dt=1800.0)
    assert out[0, 0] == pytest.approx(1.0)           # mean untouched
    assert abs(out[15, 15]) < abs(out[1, 1])          # small scales damped more
    assert np.all(np.abs(out) <= 1.0 + 1e-15)


def test_spectral_filter_rejects_odd_order(r15):
    with pytest.raises(ValueError):
        r15.spectral_filter(np.zeros(r15.spec_shape), order=3)


# ------------------------------------------- batched Legendre kernels (ISSUE 5)
def test_batched_legendre_bitwise_matches_reference():
    """The stacked per-k recurrence reproduces the per-m loop bit for bit."""
    from repro.atmosphere.spectral import _associated_legendre_ref

    for nlat, mmax, nkmax in ((40, 15, 17), (24, 8, 10), (8, 3, 5)):
        mu, _ = gaussian_latitudes(nlat)
        batched = associated_legendre(mu, mmax, nkmax)
        ref = _associated_legendre_ref(mu, mmax, nkmax)
        assert batched.dtype == ref.dtype
        assert batched.tobytes() == ref.tobytes()


def test_batched_legendre_derivative_bitwise_matches_reference():
    from repro.atmosphere.spectral import (
        _legendre_derivative_ref,
        legendre_derivative,
    )

    for nlat, mmax, nk in ((40, 15, 16), (24, 8, 9)):
        mu, _ = gaussian_latitudes(nlat)
        pbar_ext = associated_legendre(mu, mmax, nk + 1)
        batched = legendre_derivative(mu, pbar_ext)
        ref = _legendre_derivative_ref(mu, pbar_ext)
        assert batched.tobytes() == ref.tobytes()


def test_legendre_plan_cache_shares_tables():
    from repro.atmosphere.spectral import (
        clear_legendre_plans,
        legendre_plan,
        legendre_plan_stats,
    )

    clear_legendre_plans()
    p1, h1 = legendre_plan(24, 8, 10)
    p2, h2 = legendre_plan(24, 8, 10)
    assert p1 is p2 and h1 is h2          # cached, not rebuilt
    assert not p1.flags.writeable and not h1.flags.writeable
    stats = legendre_plan_stats()
    assert stats["builds"] == 1 and stats["hits"] == 1
    legendre_plan(24, 9, 10)              # different key -> new build
    assert legendre_plan_stats()["builds"] == 2
    clear_legendre_plans()
    assert legendre_plan_stats() == {"builds": 0, "hits": 0}


def test_transforms_share_cached_plan():
    """Two transforms at one resolution read the same plan arrays."""
    from repro.atmosphere.spectral import clear_legendre_plans

    clear_legendre_plans()
    tr1 = SpectralTransform(nlat=24, nlon=32, trunc=Truncation(8))
    tr2 = SpectralTransform(nlat=24, nlon=32, trunc=Truncation(8))
    # At float64 the astype(copy=False) keeps the cached arrays themselves:
    # hbar is the shared table, pbar a view of the shared extended table.
    assert tr1.hbar is tr2.hbar
    assert tr1.pbar.base is not None
    assert tr1.pbar.base is tr2.pbar.base
