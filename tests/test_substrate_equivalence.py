"""Cross-substrate equivalence matrix: thread vs process vs serial, bitwise.

ISSUE 7's acceptance property: the process substrate is not "close to" the
thread substrate — it is *indistinguishable* from it at float64, message
count and byte count, on the same communication-heavy paths the decomposed
equivalence suite pins against serial.  Every comparison here is
``assert_array_equal`` (with ``equal_nan`` only where land points are NaN
by construction); tolerance would hide exactly the marshalling bugs a
process boundary can introduce (a truncated shared-memory block, a
dtype-mangling pickle round-trip, a misrouted shm handle).

The matrix:

* decomposed spectral analysis on 1/2/4 ranks — serial == thread == process;
* forward+backward transpose traffic on 1/2/4 ranks — per-rank CommStats
  (messages, bytes, op labels) identical across substrates, and the
  calibration input ``transpose_bytes_from_stats`` derived from them
  identical too;
* a 2-step concurrent coupled run — full model state (spectral atmosphere,
  ocean, coupler SST) bitwise equal: serial == thread == process;
* ``CommStats.merge`` feeding measured transpose bytes to the performance
  model unchanged when ``FOAM_COMM=process`` selects the substrate via the
  environment rather than an explicit argument.
"""

import numpy as np
import pytest

from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.parallel import CommStats, PoolLayout, run_concurrent_coupled
from repro.parallel.components import (
    measure_transpose_comm,
    parallel_spectral_analysis,
)
from repro.perf.costmodel import transpose_bytes_from_stats

pytestmark = pytest.mark.parallel

RANK_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def transform():
    return SpectralTransform(nlat=20, nlon=32, trunc=Truncation(8))


@pytest.fixture(scope="module")
def grid_field(transform):
    rng = np.random.default_rng(7)
    spec = (rng.normal(size=transform.spec_shape)
            + 1j * rng.normal(size=transform.spec_shape))
    spec[0, :] = spec[0, :].real
    return transform.synthesize(spec)


# ----------------------------------------------------------- spectral path
@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_spectral_analysis_bitwise_serial_thread_process(transform,
                                                         grid_field, nranks):
    """serial == thread-decomposed == process-decomposed, to the last bit."""
    serial = transform.analyze(grid_field)
    thread = parallel_spectral_analysis(nranks, transform, grid_field,
                                        substrate="thread")
    process = parallel_spectral_analysis(nranks, transform, grid_field,
                                         substrate="process")
    np.testing.assert_array_equal(thread, serial)
    np.testing.assert_array_equal(process, serial)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_transpose_traffic_identical_across_substrates(nranks):
    """The measured transpose CommStats are substrate-invariant per rank."""
    thread = measure_transpose_comm(nranks, nlat=16, nm=8, nlev=3,
                                    substrate="thread")
    process = measure_transpose_comm(nranks, nlat=16, nm=8, nlev=3,
                                     substrate="process")
    assert len(thread) == len(process) == nranks
    for t, p in zip(thread, process):
        assert t.rank == p.rank
        assert t.msgs_sent == p.msgs_sent
        assert t.bytes_sent == p.bytes_sent
        assert t.msgs_recv == p.msgs_recv
        assert t.bytes_recv == p.bytes_recv
        assert t.op_bytes == p.op_bytes
        assert t.op_msgs == p.op_msgs
        assert t.peer_bytes == p.peer_bytes
    assert (transpose_bytes_from_stats(thread)
            == transpose_bytes_from_stats(process))


# ------------------------------------------------------- coupled trajectory
def _assert_states_equal(a, b):
    for f in ("vort", "div", "temp", "q", "lnps"):
        np.testing.assert_array_equal(getattr(a.atm_curr, f),
                                      getattr(b.atm_curr, f),
                                      err_msg=f"atm_curr.{f}")
    np.testing.assert_array_equal(a.ocean.temp, b.ocean.temp,
                                  err_msg="ocean.temp")
    assert a.time == b.time


def test_concurrent_coupled_bitwise_serial_thread_process():
    """2-step coupled trajectory: serial == thread pools == process pools."""
    from repro.core.config import test_config
    from repro.core.foam import FoamModel

    nsteps = 2
    model = FoamModel(test_config())
    serial = model.initial_state()
    for _ in range(nsteps):
        serial = model.coupled_step(serial)

    layout = PoolLayout(n_atm=2, n_ocn=1)
    thread = run_concurrent_coupled(nsteps=nsteps, layout=layout,
                                    substrate="thread")
    process = run_concurrent_coupled(nsteps=nsteps, layout=layout,
                                     substrate="process")
    assert thread.substrate == "thread"
    assert process.substrate == "process"
    _assert_states_equal(thread.state, serial)
    _assert_states_equal(process.state, serial)
    # Coupler-held SST (NaN over land by construction).
    np.testing.assert_array_equal(
        np.nan_to_num(thread.sst), np.nan_to_num(process.sst))
    assert np.array_equal(np.isnan(thread.sst), np.isnan(process.sst))


# -------------------------------------------------- stats merge/calibration
def test_transpose_bytes_reach_calibration_unchanged_under_process_env(
        monkeypatch):
    """Satellite 4: with ``FOAM_COMM=process`` the per-rank CommStats come
    back from forked processes, merge cleanly, and feed the event
    simulator's transpose-volume calibration the exact same number the
    thread substrate produces."""
    thread = measure_transpose_comm(4, nlat=16, nm=8, nlev=3)

    monkeypatch.setenv("FOAM_COMM", "process")
    process = measure_transpose_comm(4, nlat=16, nm=8, nlev=3)

    assert transpose_bytes_from_stats(process) \
        == transpose_bytes_from_stats(thread)

    merged_t = CommStats.merge(thread)
    merged_p = CommStats.merge(process)
    assert merged_t.op_bytes == merged_p.op_bytes
    assert merged_t.bytes_sent == merged_p.bytes_sent
    assert merged_p.bytes_for("transpose") == sum(
        s.bytes_for("transpose") for s in thread)
