"""Tests for the semi-implicit spectral dynamical core."""

import numpy as np
import pytest

from repro.atmosphere.dynamics import SpectralDynamicalCore
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid
from repro.util.constants import P0


@pytest.fixture(scope="module")
def small_core():
    """Cheap configuration for fast tests: R8 on 24x48, 5 levels."""
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    vg = VerticalGrid.ccm_like(nlev=5)
    return SpectralDynamicalCore(tr, vg, dt=1800.0)


def test_rejects_nonpositive_dt():
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    with pytest.raises(ValueError):
        SpectralDynamicalCore(tr, VerticalGrid.ccm_like(5), dt=0.0)


def test_initial_state_shapes(small_core):
    st = small_core.initial_state()
    L = small_core.vg.nlev
    assert st.vort.shape == (L,) + small_core.tr.spec_shape
    assert st.q.shape == (L, 24, 48)
    with pytest.raises(ValueError):
        small_core.initial_state("warm_bubble")


def test_exact_rest_state_stays_at_rest(small_core):
    """Isothermal rest with zero noise is an exact steady state."""
    st = small_core.initial_state(noise_amplitude=0.0)
    out = small_core.run(st, 10)
    assert np.abs(out.vort).max() < 1e-16
    assert np.abs(out.div).max() < 1e-12
    assert np.abs(out.temp).max() < 1e-9
    assert np.abs(out.lnps).max() < 1e-12


def test_noise_stays_bounded_one_day(small_core):
    """Small random vorticity noise must not amplify (gravity-wave stability)."""
    st = small_core.initial_state(noise_amplitude=1e-8, seed=1)
    z0 = np.abs(st.vort).max()
    out = small_core.run(st, 48)
    assert np.abs(out.vort).max() < 50 * z0
    d = small_core.diagnose(out)
    assert np.abs(d.u).max() < 1.0
    assert np.abs(d.temp - small_core.vg.t_ref).max() < 1.0


def test_mass_conservation(small_core):
    """Global-mean surface pressure drifts by < 1e-4 relative over a day."""
    st = small_core.initial_state(noise_amplitude=1e-8, seed=2)
    m0 = small_core.global_mass(st)
    out = small_core.run(st, 48)
    m1 = small_core.global_mass(out)
    assert m0 == pytest.approx(P0, rel=1e-12)
    assert abs(m1 - m0) / m0 < 1e-4


def test_zonal_jet_runs_stably(small_core):
    """A balanced-ish jet integrates for 2 days without blowup."""
    st = small_core.initial_state("zonal_jet")
    out = small_core.run(st, 96)
    d = small_core.diagnose(out)
    assert np.all(np.isfinite(d.u))
    assert np.abs(d.u).max() < 150.0
    assert np.abs(d.temp - 300.0).max() < 60.0


@pytest.mark.filterwarnings("ignore::RuntimeWarning")
def test_semi_implicit_allows_long_steps():
    """Explicit stepping at dt=1800 s diverges where semi-implicit is stable.

    This is the point of the scheme (and of the paper's 30-minute step).
    """
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    vg = VerticalGrid.ccm_like(nlev=5)
    st_si = SpectralDynamicalCore(tr, vg, dt=1800.0, semi_implicit=True)
    st_ex = SpectralDynamicalCore(tr, vg, dt=1800.0, semi_implicit=False)
    # Excite a gravity wave directly through a pressure anomaly.
    init = st_si.initial_state(noise_amplitude=0.0)
    init.lnps[2, 2] = 1e-4
    out_si = st_si.run(init.copy(), 60)
    assert np.all(np.isfinite(out_si.div))
    assert np.abs(out_si.div).max() < 1e-4
    out_ex = st_ex.run(init.copy(), 60)
    ex_max = np.abs(out_ex.div).max()
    si_max = np.abs(out_si.div).max()
    assert not np.isfinite(ex_max) or ex_max > 100 * si_max


def test_explicit_stable_at_short_step():
    """The explicit branch is sound when dt respects the gravity-wave CFL."""
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    vg = VerticalGrid.ccm_like(nlev=5)
    core = SpectralDynamicalCore(tr, vg, dt=120.0, semi_implicit=False)
    init = core.initial_state(noise_amplitude=0.0)
    init.lnps[2, 2] = 1e-4
    out = core.run(init, 100)
    assert np.all(np.isfinite(out.div))
    assert np.abs(out.div).max() < 1e-5


def test_hyperdiffusion_selectively_damps(small_core):
    st = small_core.initial_state(noise_amplitude=0.0)
    spec = np.zeros_like(st.vort)
    spec[:, 1, 0] = 1e-5   # large scale (n=1)
    spec[:, 8, 8] = 1e-5   # small scale (n=16)
    out = small_core._hyperdiffuse(spec)
    assert abs(out[0, 8, 8]) < abs(out[0, 1, 0])
    assert abs(out[0, 1, 0]) > 0.99e-5


def test_diagnose_pressure_and_geopotential(small_core):
    st = small_core.initial_state(noise_amplitude=0.0)
    d = small_core.diagnose(st)
    np.testing.assert_allclose(d.ps, P0, rtol=1e-12)
    # Pressure increases downward; geopotential decreases downward.
    assert np.all(np.diff(d.pressure, axis=0) > 0)
    assert np.all(np.diff(d.geopotential, axis=0) < 0)


def test_forward_start_restores_dt(small_core):
    before = small_core.dt
    small_core._forward_start(small_core.initial_state(noise_amplitude=0.0))
    assert small_core.dt == before


def test_forcing_hook_applied(small_core):
    calls = []

    def forcing(core, prev, curr):
        calls.append(curr.time)
        curr.temp[:, 0, 1] += 1e-6

    st = small_core.initial_state(noise_amplitude=0.0)
    out = small_core.run(st, 5, forcing=forcing)
    assert len(calls) == 5
    assert np.abs(out.temp).max() > 0


def test_state_copy_is_deep(small_core):
    st = small_core.initial_state(noise_amplitude=0.0)
    st2 = st.copy()
    st2.vort[0, 0, 0] = 1.0
    assert st.vort[0, 0, 0] == 0.0
