"""Tests for the analysis toolkit (EOF, VARIMAX, filters, climatology)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    anomalies,
    area_weights_from_lats,
    compute_eofs,
    detrend,
    lanczos_lowpass_weights,
    lowpass,
    monthly_means,
    rotated_variance_fractions,
    sst_error_statistics,
    synthetic_sst_climatology,
    time_mean,
    varimax,
    zonal_mean,
)


# ------------------------------------------------------------- EOF
def make_two_mode_data(nt=200, ns=60, seed=0):
    """Synthetic data with two known orthogonal modes + noise."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 2 * np.pi, ns)
    p1 = np.sin(x)
    p2 = np.cos(3 * x)
    t = np.arange(nt)
    a1 = 3.0 * np.sin(2 * np.pi * t / 50)
    a2 = 1.0 * np.sin(2 * np.pi * t / 11)
    data = np.outer(a1, p1) + np.outer(a2, p2) + 0.05 * rng.normal(size=(nt, ns))
    return data, p1, p2


def test_eof_recovers_leading_mode():
    data, p1, p2 = make_two_mode_data()
    res = compute_eofs(data, n_modes=4)
    # Leading EOF aligned with the dominant pattern (up to sign).
    corr = np.corrcoef(res.patterns[0], p1)[0, 1]
    assert abs(corr) > 0.99
    assert res.variance_fraction[0] > 0.8
    assert res.variance_fraction[0] >= res.variance_fraction[1]


def test_eof_patterns_orthonormal():
    data, _, _ = make_two_mode_data(seed=1)
    res = compute_eofs(data, n_modes=5)
    gram = res.patterns @ res.patterns.T
    np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)


def test_eof_variance_fractions_sum_below_one():
    data, _, _ = make_two_mode_data(seed=2)
    res = compute_eofs(data, n_modes=6)
    assert 0.99 < res.variance_fraction.sum() <= 1.0 + 1e-12


def test_eof_reconstruction_converges():
    data, _, _ = make_two_mode_data(seed=3)
    res = compute_eofs(data, n_modes=2)
    rec = res.reconstruct()
    anoms = data - data.mean(axis=0)
    resid = np.abs(rec - anoms).max()
    assert resid < 0.5      # two modes capture the two-mode signal


def test_eof_validation():
    with pytest.raises(ValueError):
        compute_eofs(np.zeros((1, 5)))
    with pytest.raises(ValueError):
        compute_eofs(np.zeros((5,)))
    with pytest.raises(ValueError):
        compute_eofs(np.zeros((5, 4)))     # zero variance
    with pytest.raises(ValueError):
        compute_eofs(np.random.default_rng(0).normal(size=(5, 4)),
                     weights=np.ones(3))


def test_eof_weights_change_patterns():
    data, _, _ = make_two_mode_data(seed=4)
    w = np.linspace(0.1, 1.0, data.shape[1])
    res_u = compute_eofs(data, n_modes=1)
    res_w = compute_eofs(data, n_modes=1, weights=w)
    assert not np.allclose(res_u.patterns[0], res_w.patterns[0])


# ------------------------------------------------------------- VARIMAX
def test_varimax_rotation_is_orthogonal():
    data, _, _ = make_two_mode_data(seed=5)
    res = compute_eofs(data, n_modes=3)
    rotated, r = varimax(res.patterns)
    np.testing.assert_allclose(r.T @ r, np.eye(3), atol=1e-10)


def test_varimax_preserves_total_variance():
    """Orthogonal rotation redistributes variance but conserves its sum."""
    data, _, _ = make_two_mode_data(seed=6)
    res = compute_eofs(data, n_modes=3)
    total = np.sum(res.pcs**2)   # variance held by the 3 retained modes
    _, r = varimax(res.patterns)
    frac = rotated_variance_fractions(res.pcs, r, total)
    np.testing.assert_allclose(frac.sum(), 1.0, rtol=1e-10)
    # ... but generally redistributed across modes.
    assert frac.shape == (3,)


def test_varimax_concentrates_loadings():
    """Rotation increases the varimax criterion (variance of squared loadings)."""
    rng = np.random.default_rng(7)
    # Two localized sources mixed into spread-out EOFs.
    ns = 80
    s1 = np.exp(-((np.arange(ns) - 20) / 5.0) ** 2)
    s2 = np.exp(-((np.arange(ns) - 60) / 5.0) ** 2)
    mix = np.array([[0.7, 0.7], [-0.7, 0.7]])
    patterns = mix @ np.vstack([s1, s2])
    rotated, _ = varimax(patterns)

    def criterion(p):
        q = p**2
        return np.sum(q.var(axis=1))

    assert criterion(rotated) >= criterion(patterns) - 1e-12
    # Rotated modes separate the two centers of action.
    peak_locs = sorted(np.argmax(np.abs(rotated), axis=1))
    assert abs(peak_locs[0] - 20) <= 3 and abs(peak_locs[1] - 60) <= 3


def test_varimax_single_mode_noop():
    p = np.random.default_rng(8).normal(size=(1, 30))
    rotated, r = varimax(p)
    np.testing.assert_allclose(rotated, p)
    np.testing.assert_allclose(r, np.eye(1))


# ------------------------------------------------------------- filters
def test_lanczos_weights_normalized_and_symmetric():
    w = lanczos_lowpass_weights(60.0, 80)
    assert w.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(w, w[::-1], atol=1e-15)


def test_lanczos_weight_validation():
    with pytest.raises(ValueError):
        lanczos_lowpass_weights(1.5, 10)
    with pytest.raises(ValueError):
        lanczos_lowpass_weights(60.0, 0)


def test_lowpass_keeps_slow_kills_fast():
    t = np.arange(600, dtype=float)
    slow = np.sin(2 * np.pi * t / 200)
    fast = np.sin(2 * np.pi * t / 8)
    filtered = lowpass(slow + fast, cutoff_steps=60, half_width=90)
    # Interior comparison (edges are reflection-padded).
    sl = slice(120, -120)
    resid_slow = np.abs(filtered[sl] - slow[sl]).max()
    fast_power = np.std(filtered[sl] - slow[sl])
    assert resid_slow < 0.15
    assert fast_power < 0.05 * np.std(fast)


def test_lowpass_preserves_constant():
    const = np.full(300, 7.0)
    np.testing.assert_allclose(lowpass(const, 60), 7.0, rtol=1e-12)


def test_lowpass_multidimensional():
    rng = np.random.default_rng(9)
    x = rng.normal(size=(400, 3, 4))
    out = lowpass(x, cutoff_steps=40)
    assert out.shape == x.shape
    assert np.std(out) < np.std(x)


def test_monthly_means_binning():
    t = np.arange(0, 90 * 86400.0, 86400.0)
    x = np.arange(len(t), dtype=float)
    centers, means = monthly_means(x, t)
    assert len(means) == 3
    assert means[0] == pytest.approx(np.mean(np.arange(30)))


def test_detrend_removes_line():
    t = np.arange(100, dtype=float)
    x = 3.0 + 0.5 * t
    out = detrend(x)
    np.testing.assert_allclose(out, 0.0, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 999))
def test_detrend_idempotent(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=50).cumsum()
    once = detrend(x)
    twice = detrend(once)
    np.testing.assert_allclose(twice, once, atol=1e-10)


# ------------------------------------------------------------- climatology
def test_time_mean_and_anomalies():
    x = np.array([[1.0, 2.0], [3.0, 4.0]])
    np.testing.assert_allclose(time_mean(x), [2.0, 3.0])
    np.testing.assert_allclose(anomalies(x).mean(axis=0), 0.0, atol=1e-15)
    with pytest.raises(ValueError):
        time_mean(np.zeros((0, 3)))


def test_zonal_mean_with_mask():
    f = np.array([[1.0, 2.0, 3.0, 100.0]])
    mask = np.array([[True, True, True, False]])
    assert zonal_mean(f, mask)[0] == pytest.approx(2.0)


def test_area_weights_sum_to_one():
    lats = np.deg2rad(np.linspace(-80, 80, 10))
    w = area_weights_from_lats(lats, 12)
    assert w.sum() == pytest.approx(1.0)
    assert w.min() > 0


# ------------------------------------------------------------- synthetic SST
def test_synthetic_sst_structure():
    lats = np.deg2rad(np.linspace(-75, 75, 40))
    lons = np.deg2rad(np.linspace(0, 357.5, 80))
    sst = synthetic_sst_climatology(lats, lons)
    j_eq = 20
    assert sst[j_eq].mean() > 24.0                # warm tropics
    assert sst[0].mean() < 5.0                    # cold Southern Ocean
    assert sst.min() >= -1.92 - 1e-9              # freezing clamp
    # Warm pool warmer than cold tongue along the equator.
    i_wp = np.argmin(np.abs(np.degrees(lons) - 150))
    i_ct = np.argmin(np.abs(np.degrees(lons) - 255))
    assert sst[j_eq, i_wp] > sst[j_eq, i_ct] + 2.0


def test_sst_error_statistics_perfect_model():
    lats = np.deg2rad(np.linspace(-60, 60, 20))
    lons = np.deg2rad(np.linspace(0, 350, 30))
    obs = synthetic_sst_climatology(lats, lons)
    w = np.cos(lats)[:, None] * np.ones((1, 30))
    stats = sst_error_statistics(obs, obs, w)
    assert stats["bias"] == pytest.approx(0.0, abs=1e-12)
    assert stats["rmse"] == pytest.approx(0.0, abs=1e-12)
    assert stats["pattern_correlation"] == pytest.approx(1.0)


def test_sst_error_statistics_detects_bias():
    lats = np.deg2rad(np.linspace(-60, 60, 20))
    lons = np.deg2rad(np.linspace(0, 350, 30))
    obs = synthetic_sst_climatology(lats, lons)
    w = np.cos(lats)[:, None] * np.ones((1, 30))
    stats = sst_error_statistics(obs + 2.0, obs, w)
    assert stats["bias"] == pytest.approx(2.0)
    assert stats["rmse"] == pytest.approx(2.0)
