"""Unit tests for the simulated MPI layer (repro.parallel.simmpi)."""

import numpy as np
import pytest

from repro.parallel import ANY_SOURCE, CommError, CommStats, DeadlockError, run_ranks

pytestmark = pytest.mark.parallel


def test_single_rank_world():
    out = run_ranks(1, lambda c: c.rank)
    assert out == [0]


def test_send_recv_roundtrip():
    def worker(comm):
        if comm.rank == 0:
            comm.send({"x": 42}, dest=1, tag=7)
            return None
        return comm.recv(source=0, tag=7)

    out = run_ranks(2, worker)
    assert out[1] == {"x": 42}


def test_send_copies_numpy_buffer():
    """MPI semantics: mutating the send buffer after send must not corrupt the message."""
    def worker(comm):
        if comm.rank == 0:
            buf = np.arange(5.0)
            comm.send(buf, dest=1)
            buf[:] = -1.0
            return None
        return comm.recv(source=0)

    out = run_ranks(2, worker)
    np.testing.assert_array_equal(out[1], np.arange(5.0))


def test_recv_wildcard_source():
    def worker(comm):
        if comm.rank == 0:
            got = sorted(comm.recv(source=ANY_SOURCE) for _ in range(comm.size - 1))
            return got
        comm.send(comm.rank * 10, dest=0)
        return None

    out = run_ranks(4, worker)
    assert out[0] == [10, 20, 30]


def test_recv_tag_selectivity_with_stash():
    """A message with the wrong tag must be stashed, not lost."""
    def worker(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)   # arrives after tag=1: forces stash
        first = comm.recv(source=0, tag=1)    # must come from the stash
        return (first, second)

    out = run_ranks(2, worker)
    assert out[1] == ("first", "second")


def test_sendrecv_ring_shift():
    def worker(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    out = run_ranks(5, worker)
    assert out == [(r - 1) % 5 for r in range(5)]


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 8])
def test_bcast_all_sizes(size):
    def worker(comm):
        payload = np.arange(10.0) if comm.rank == 2 % comm.size else None
        return comm.bcast(payload, root=2 % comm.size)

    out = run_ranks(size, worker)
    for arr in out:
        np.testing.assert_array_equal(arr, np.arange(10.0))


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_reduce_sum(size):
    def worker(comm):
        return comm.reduce(comm.rank + 1, op="sum", root=0)

    out = run_ranks(size, worker)
    assert out[0] == size * (size + 1) // 2
    assert all(v is None for v in out[1:])


@pytest.mark.parametrize("op,expect", [("sum", 10), ("max", 4), ("min", 1), ("prod", 24)])
def test_allreduce_ops(op, expect):
    def worker(comm):
        return comm.allreduce(comm.rank + 1, op=op)

    out = run_ranks(4, worker)
    assert out == [expect] * 4


def test_allreduce_arrays():
    def worker(comm):
        return comm.allreduce(np.full(3, float(comm.rank)), op="max")

    out = run_ranks(3, worker)
    for arr in out:
        np.testing.assert_array_equal(arr, np.full(3, 2.0))


def test_gather_preserves_rank_order():
    def worker(comm):
        return comm.gather(f"r{comm.rank}", root=1)

    out = run_ranks(4, worker)
    assert out[1] == ["r0", "r1", "r2", "r3"]
    assert out[0] is None


def test_allgather():
    out = run_ranks(3, lambda c: c.allgather(c.rank * 2))
    assert out == [[0, 2, 4]] * 3


def test_scatter():
    def worker(comm):
        objs = [i * i for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(objs, root=0)

    out = run_ranks(4, worker)
    assert out == [0, 1, 4, 9]


def test_scatter_wrong_length_raises():
    def worker(comm):
        objs = [1, 2] if comm.rank == 0 else None
        return comm.scatter(objs, root=0)

    with pytest.raises(CommError):
        run_ranks(3, worker, timeout=5.0)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 6])
def test_alltoall_personalized(size):
    def worker(comm):
        objs = [comm.rank * 100 + dest for dest in range(comm.size)]
        return comm.alltoall(objs)

    out = run_ranks(size, worker)
    for rank, received in enumerate(out):
        assert received == [src * 100 + rank for src in range(size)]


def test_barrier_completes():
    def worker(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert run_ranks(4, worker) == [True] * 4


def test_worker_exception_propagates():
    def worker(comm):
        if comm.rank == 1:
            raise ValueError("rank 1 blew up")
        comm.barrier()
        return True

    with pytest.raises(ValueError, match="rank 1 blew up"):
        run_ranks(3, worker, timeout=5.0)


def test_recv_from_finished_peer_diagnosed_immediately():
    """A recv that can never be satisfied fails structurally, not by timeout."""
    def worker(comm):
        if comm.rank == 0:
            return comm.recv(source=1)  # rank 1 never sends
        return None

    with pytest.raises(CommError, match="can never complete"):
        run_ranks(2, worker, timeout=30.0)


def test_bad_destination_raises():
    def worker(comm):
        comm.send(1, dest=99)

    with pytest.raises(CommError, match="bad destination"):
        run_ranks(2, worker, timeout=5.0)


def test_bytes_accounting():
    def worker(comm):
        if comm.rank == 0:
            comm.send(np.zeros(1000), dest=1)
            return comm.bytes_sent
        comm.recv(source=0)
        return comm.bytes_sent

    out = run_ranks(2, worker)
    assert out[0] == 8000
    assert out[1] == 0


def test_comm_stats_merge_sums_every_counter():
    """CommStats.merge is the exact column sum of the per-rank counters —
    the process substrate relies on it to fold child-process stats into a
    world view without losing a byte."""
    a = CommStats(rank=0)
    a.note_send("transpose.forward", dest=1, nbytes=100)
    a.note_send("transpose.forward", dest=2, nbytes=50)
    a.note_recv(8)
    a.note_call("bcast")
    b = CommStats(rank=1)
    b.note_send("bcast", dest=0, nbytes=8)
    b.note_recv(100)
    b.note_recv(8)
    b.note_call("bcast")

    m = CommStats.merge([a, b], rank=-1)
    assert m.rank == -1
    assert m.msgs_sent == 3 and m.bytes_sent == 158
    assert m.msgs_recv == 3 and m.bytes_recv == 116
    assert m.bytes_for("transpose") == 150
    assert m.op_calls["bcast"] == 2
    assert m.peer_bytes[1] == 100 and m.peer_bytes[2] == 50
    assert m.peer_bytes[0] == 8
    # Merging merges is still a plain sum (associativity).
    mm = CommStats.merge([CommStats.merge([a]), CommStats.merge([b])])
    assert mm.op_bytes == m.op_bytes and mm.bytes_sent == m.bytes_sent
    # Neutral element: merging nothing is all-zero.
    z = CommStats.merge([])
    assert z.msgs_sent == 0 and z.op_bytes == {}


# -------------------------------------------------------------------- split
def test_split_groups_and_sizes():
    """color partitions the world; sub-ranks are dense and ordered by rank."""
    def worker(comm):
        sub = comm.split(comm.rank % 2)
        return (sub.rank, sub.size)

    out = run_ranks(4, worker)
    # Even world ranks 0,2 -> sub ranks 0,1; odd world ranks 1,3 likewise.
    assert out == [(0, 2), (0, 2), (1, 2), (1, 2)]


def test_split_key_reverses_order():
    def worker(comm):
        sub = comm.split(0, key=-comm.rank)
        return sub.rank

    assert run_ranks(3, worker) == [2, 1, 0]


def test_split_color_none_opts_out():
    def worker(comm):
        sub = comm.split(None if comm.rank == 2 else 0)
        if sub is None:
            return None
        return sub.allreduce(comm.rank, op="sum")

    assert run_ranks(3, worker) == [1, 1, None]


def test_split_collectives_stay_inside_group():
    def worker(comm):
        sub = comm.split(comm.rank // 2)
        return sub.allgather(comm.rank)

    out = run_ranks(4, worker)
    assert out == [[0, 1], [0, 1], [2, 3], [2, 3]]


def test_split_tag_isolation_from_world():
    """The same (source, tag) on world and sub-communicator never cross."""
    def worker(comm):
        sub = comm.split(0)
        if comm.rank == 0:
            comm.send("world", dest=1, tag=7)
            sub.send("sub", dest=1, tag=7)
            return None
        got_sub = sub.recv(source=0, tag=7)
        got_world = comm.recv(source=0, tag=7)
        return (got_sub, got_world)

    out = run_ranks(2, worker)
    assert out[1] == ("sub", "world")


def test_split_point_to_point_uses_group_ranks():
    """Sub-communicator rank numbering is local to the group."""
    def worker(comm):
        sub = comm.split(comm.rank % 2)   # group of world ranks {1, 3}
        if comm.rank == 1:
            sub.send(comm.rank, dest=1)   # sub rank 1 == world rank 3
            return None
        if comm.rank == 3:
            return sub.recv(source=0)     # sub rank 0 == world rank 1
        return None

    assert run_ranks(4, worker)[3] == 1


def test_split_deadlock_reports_world_ranks():
    """A wedge inside a sub-communicator is named in world ranks."""
    def worker(comm):
        sub = comm.split(comm.rank // 2)  # {0,1} and {2,3}
        if comm.rank < 2:
            return sub.allreduce(1, op="sum")   # healthy group
        return sub.recv(source=1 - sub.rank, tag=9)   # {2,3} wedge each other

    with pytest.raises(DeadlockError) as excinfo:
        run_ranks(4, worker, timeout=60.0)
    report = excinfo.value.report
    assert set(report.ranks) == {2, 3}
    for b in report.blocked:
        assert b.peer == 5 - b.rank       # world rank of the sub peer
