"""Tests for semi-Lagrangian moisture transport."""

import numpy as np
import pytest

from repro.atmosphere.semilag import (
    _bilinear_sphere,
    advect_semilagrangian,
    departure_points,
)
from repro.atmosphere.spectral import SpectralTransform, Truncation


@pytest.fixture(scope="module")
def tr():
    return SpectralTransform(nlat=32, nlon=64, trunc=Truncation(10))


def test_bilinear_reproduces_nodes(tr):
    rng = np.random.default_rng(0)
    field = rng.normal(size=(tr.nlat, tr.nlon))
    lat2 = tr.lats[:, None] * np.ones((1, tr.nlon))
    lon2 = np.ones((tr.nlat, 1)) * tr.lons[None, :]
    out = _bilinear_sphere(field, tr.lats, tr.lons, lat2, lon2)
    np.testing.assert_allclose(out, field, atol=1e-12)


def test_bilinear_linear_in_longitude(tr):
    """Interpolation of a field linear in lon is exact between nodes."""
    field = np.ones((tr.nlat, 1)) * tr.lons[None, :]
    lat_q = np.array([[tr.lats[5]]])
    lon_q = np.array([[0.5 * (tr.lons[3] + tr.lons[4])]])
    out = _bilinear_sphere(field, tr.lats, tr.lons, lat_q, lon_q)
    assert out[0, 0] == pytest.approx(lon_q[0, 0])


def test_bilinear_periodic_wrap(tr):
    """Querying just west of lon=0 must blend the last and first columns."""
    field = np.zeros((tr.nlat, tr.nlon))
    field[:, 0] = 1.0
    eps = 0.25 * (tr.lons[1] - tr.lons[0])
    lat_q = np.full((1, 1), tr.lats[10])
    lon_q = np.full((1, 1), 2 * np.pi - eps)
    out = _bilinear_sphere(field, tr.lats, tr.lons, lat_q, lon_q)
    assert 0.0 < out[0, 0] < 1.0


def test_departure_points_zero_wind(tr):
    u = np.zeros((tr.nlat, tr.nlon))
    lat_d, lon_d = departure_points(tr, u, u, dt=1800.0)
    np.testing.assert_allclose(lat_d, tr.lats[:, None] * np.ones((1, tr.nlon)), atol=1e-14)


def test_departure_points_westerly(tr):
    """Uniform westerly wind: departure longitudes are upstream (west)."""
    u = np.full((tr.nlat, tr.nlon), 10.0)
    v = np.zeros_like(u)
    lat_d, lon_d = departure_points(tr, u, v, dt=1800.0)
    j = tr.nlat // 2
    shift = (tr.lons[None, :] - lon_d)[j]
    expect = 10.0 * 1800.0 / (tr.radius * tr.coslat[j])
    np.testing.assert_allclose(shift, expect, rtol=1e-12)


def test_advection_conserves_constant_field(tr):
    """A spatially constant tracer is invariant under any flow."""
    rng = np.random.default_rng(1)
    u = rng.normal(scale=10.0, size=(2, tr.nlat, tr.nlon))
    v = rng.normal(scale=10.0, size=(2, tr.nlat, tr.nlon))
    q = np.full((2, tr.nlat, tr.nlon), 0.007)
    out = advect_semilagrangian(tr, u, v, q, dt=1800.0)
    np.testing.assert_allclose(out, 0.007, atol=1e-12)


def test_advection_positive_definite(tr):
    rng = np.random.default_rng(2)
    u = rng.normal(scale=30.0, size=(1, tr.nlat, tr.nlon))
    v = rng.normal(scale=30.0, size=(1, tr.nlat, tr.nlon))
    q = np.maximum(rng.normal(size=(1, tr.nlat, tr.nlon)), 0.0) * 1e-3
    out = advect_semilagrangian(tr, u, v, q, dt=3600.0)
    assert np.all(out >= 0.0)


def test_solid_rotation_translates_blob(tr):
    """One full solid-body rotation returns the tracer blob near its start."""
    period = 20 * 86400.0
    u0 = 2 * np.pi * tr.radius / period
    u = (u0 * tr.coslat[:, None] * np.ones((1, tr.nlon)))[None]
    v = np.zeros_like(u)
    # Gaussian blob on the equator.
    lon2 = np.ones((tr.nlat, 1)) * tr.lons[None, :]
    lat2 = tr.lats[:, None] * np.ones((1, tr.nlon))
    q0 = np.exp(-((lon2 - np.pi) ** 2 + lat2**2) / 0.08)[None]
    q = q0.copy()
    nsteps = 200
    dt = period / nsteps
    for _ in range(nsteps):
        q = advect_semilagrangian(tr, u, v, q, dt)
    # Semi-Lagrangian diffuses a little; require the blob back in place with
    # most of its amplitude and its max within one grid cell of the start.
    j_eq = np.argmin(np.abs(tr.lats))
    peak_lon = tr.lons[np.argmax(q[0, j_eq])]
    assert abs(peak_lon - np.pi) < 2 * (tr.lons[1] - tr.lons[0])
    assert q.max() > 0.2  # bilinear interpolation diffuses over 200 steps
    assert q.min() >= 0.0


def test_advection_shape_mismatch_raises(tr):
    u = np.zeros((2, tr.nlat, tr.nlon))
    q = np.zeros((3, tr.nlat, tr.nlon))
    with pytest.raises(ValueError):
        advect_semilagrangian(tr, u, u, q, 1800.0)
