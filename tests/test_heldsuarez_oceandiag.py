"""Tests for the Held-Suarez forcing and the ocean circulation diagnostics."""

import numpy as np
import pytest

from repro.atmosphere.dynamics import SpectralDynamicalCore
from repro.atmosphere.heldsuarez import (
    HeldSuarezForcing,
    equilibrium_temperature,
)
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid
from repro.ocean import (
    OceanForcing,
    OceanGrid,
    OceanModel,
    aquaplanet_topography,
    world_topography,
)
from repro.ocean.diagnostics import (
    barotropic_streamfunction,
    drake_passage_transport,
    meridional_overturning,
    mixed_layer_depth,
)


# ------------------------------------------------------------- Held-Suarez
def test_equilibrium_temperature_structure():
    lats = np.deg2rad(np.linspace(-85, 85, 16))
    sigma = np.linspace(0.05, 0.95, 8)
    teq = equilibrium_temperature(lats, sigma)
    # Warm equatorial surface, cold poles, stratospheric floor.
    j_eq = 8
    assert teq[-1, j_eq, 0] > teq[-1, 0, 0] + 30.0
    assert teq[0].min() == pytest.approx(200.0)
    assert np.all(teq >= 200.0)


def test_held_suarez_spins_up_jets():
    """From rest, HS forcing must develop westerly midlatitude jets."""
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    vg = VerticalGrid.ccm_like(nlev=5)
    core = SpectralDynamicalCore(tr, vg, dt=1800.0)
    forcing = HeldSuarezForcing(core)
    state = core.initial_state(noise_amplitude=1e-7, seed=3)
    out = core.run(state, 48 * 20, forcing=forcing)       # 20 days
    d = core.diagnose(out)
    # Zonal-mean upper-level wind: westerly in midlatitudes.
    u_upper = d.u[1].mean(axis=1)
    lat_d = np.degrees(tr.lats)
    nh_mid = (lat_d > 25) & (lat_d < 60)
    sh_mid = (lat_d < -25) & (lat_d > -60)
    # 20 days is early spin-up (full HS equilibration takes ~200 days);
    # clear westerlies must already be forming in both hemispheres.
    assert u_upper[nh_mid].max() > 2.5
    assert u_upper[sh_mid].max() > 2.5
    # Temperature is relaxing toward the HS climate: a clear equator-pole
    # gradient has emerged (full contrast needs the 40-day k_a timescale).
    t_low = d.temp[-1].mean(axis=1)
    assert t_low[np.abs(lat_d).argmin()] > t_low[0] + 8.0
    assert np.all(np.isfinite(d.u))


def test_held_suarez_drag_confined_to_boundary_layer():
    tr = SpectralTransform(nlat=24, nlon=48, trunc=Truncation(8))
    core = SpectralDynamicalCore(tr, VerticalGrid.ccm_like(nlev=6), dt=1800.0)
    f = HeldSuarezForcing(core)
    sig = core.vg.sigma
    assert np.all(f.k_v[sig < 0.7] == 0.0)
    assert np.all(f.k_v[sig > 0.9] > 0.0)


# ------------------------------------------------------------- ocean diags
@pytest.fixture(scope="module")
def spun_ocean():
    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    model = OceanModel(g, land, depth)
    state = model.initial_state()
    tx = 0.1 * np.sin(2 * g.lats[:, None]) * np.ones((1, g.nx)) * model.mask2d
    f = OceanForcing(tx, np.zeros_like(tx), np.zeros((g.ny, g.nx)),
                     np.zeros((g.ny, g.nx)))
    state = model.run(state, 120, f)    # 30 days
    return model, state


def test_streamfunction_closed_and_finite(spun_ocean):
    model, state = spun_ocean
    psi = barotropic_streamfunction(model, state)
    vals = psi[model.mask2d]
    assert np.all(np.isfinite(vals))
    assert np.abs(vals).max() > 0.01      # gyres exist (Sv scale)
    assert np.abs(vals).max() < 500.0     # ...but physically bounded


def test_drake_passage_transport_finite(spun_ocean):
    model, state = spun_ocean
    acc = drake_passage_transport(model, state)
    assert np.isfinite(acc)
    assert abs(acc) < 1000.0


def test_overturning_vanishes_at_boundaries(spun_ocean):
    model, state = spun_ocean
    psi = meridional_overturning(model, state)
    assert psi.shape == (model.grid.nlev + 1, model.grid.ny)
    np.testing.assert_allclose(psi[0], 0.0)
    assert np.all(np.isfinite(psi))


def test_mixed_layer_depth_shallower_in_tropics():
    g = OceanGrid(nx=16, ny=16, nlev=8)
    land, depth = aquaplanet_topography(g)
    model = OceanModel(g, land, depth)
    state = model.initial_state()
    mld = mixed_layer_depth(model, state)
    assert np.all(np.isfinite(mld[model.mask2d]))
    assert np.nanmin(mld) >= 0.0
    # The initial stratification decays over ~800 m: MLD well above bottom.
    assert np.nanmedian(mld) < 0.5 * g.total_depth
