"""The run-harness contract: plans, keys, and bitwise resume everywhere.

The headline test matrix: ``run(N days)`` is bitwise float64-identical to
``run(k) -> checkpoint -> load -> run(N-k)`` across serial ==
ensemble-member == concurrent rank pools, including resuming a serial
checkpoint onto a concurrent substrate.  That equivalence is what makes
:meth:`RunPlan.run_key` a valid cache key for every execution path.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import FoamConfig
from repro.core.config import test_config as _test_config
from repro.core.history import load_checkpoint, load_history
from repro.runs import (
    RUN_MODES,
    CheckpointSpec,
    HistorySpec,
    RunHarness,
    RunPlan,
)

DAYS = 1.0          # total run length; checkpoint taken halfway
CKPT_DAYS = 0.5     # the safe boundary at test size (lcm of cadences)


def _state_pairs(a, b):
    """All 18 prognostic/coupler fields of two coupled states."""
    yield "vort", a.atm_curr.vort, b.atm_curr.vort
    yield "div", a.atm_curr.div, b.atm_curr.div
    yield "temp", a.atm_curr.temp, b.atm_curr.temp
    yield "lnps", a.atm_curr.lnps, b.atm_curr.lnps
    yield "q", a.atm_curr.q, b.atm_curr.q
    yield "prev_vort", a.atm_prev.vort, b.atm_prev.vort
    yield "ocn_u", a.ocean.u, b.ocean.u
    yield "ocn_v", a.ocean.v, b.ocean.v
    yield "otemp", a.ocean.temp, b.ocean.temp
    yield "osalt", a.ocean.salt, b.ocean.salt
    yield "eta", a.ocean.eta, b.ocean.eta
    yield "ubar", a.ocean.ubar, b.ocean.ubar
    yield "vbar", a.ocean.vbar, b.ocean.vbar
    yield "soil_temp", a.coupler.land.soil_temp, b.coupler.land.soil_temp
    yield ("soil_moisture", a.coupler.hydrology.soil_moisture,
           b.coupler.hydrology.soil_moisture)
    yield "snow", a.coupler.hydrology.snow_depth, b.coupler.hydrology.snow_depth
    yield "ice", a.coupler.ice.thickness, b.coupler.ice.thickness
    yield "river", a.coupler.river_volume, b.coupler.river_volume


def _assert_bitwise(got, want, context=""):
    for name, x, y in _state_pairs(got, want):
        assert np.array_equal(np.asarray(x), np.asarray(y)), (
            f"{context}: {name} differs, max|diff|="
            f"{np.max(np.abs(np.asarray(x) - np.asarray(y)))}")
    assert got.time == want.time


def _halfway_checkpoint(result):
    """The checkpoint a run wrote at the CKPT_DAYS boundary."""
    cfg = result.plan.resolved_config()
    step = int(round(CKPT_DAYS * 86400.0 / cfg.atm_dt))
    for p in result.checkpoints:
        if p.stem.endswith(f"{step:08d}"):
            return p
    raise AssertionError(
        f"no checkpoint at step {step} among {result.checkpoints}")


@pytest.fixture(scope="module")
def serial_baseline():
    """One straight serial run of the reference plan, shared module-wide."""
    harness = RunHarness(RunPlan(days=DAYS))
    return harness.run()


@pytest.fixture(scope="module")
def serial_checkpointed(tmp_path_factory):
    """The same run with a halfway checkpoint streamed out."""
    td = tmp_path_factory.mktemp("ckpt_serial")
    harness = RunHarness(RunPlan(
        days=DAYS, checkpoint=CheckpointSpec(str(td),
                                             interval_days=CKPT_DAYS)))
    return harness.run()


# ----------------------------------------------------------------------
class TestContentHash:
    def test_is_sha256_hex(self):
        h = _test_config().content_hash()
        assert len(h) == 64
        int(h, 16)      # hex-parsable

    def test_stable_across_key_ordering(self):
        cfg = _test_config()
        shuffled = dict(reversed(list(cfg.to_dict().items())))
        assert FoamConfig.from_dict(shuffled).content_hash() \
            == cfg.content_hash()

    def test_changes_with_any_knob(self):
        cfg = _test_config()
        assert dataclasses.replace(cfg, seed=cfg.seed + 1).content_hash() \
            != cfg.content_hash()

    def test_from_dict_rejects_unknown_fields(self):
        payload = _test_config().to_dict()
        payload["not_a_knob"] = 1.0
        with pytest.raises((ValueError, TypeError)):
            FoamConfig.from_dict(payload)


class TestRunKey:
    def test_mode_invariant(self):
        # One cache entry serves every execution path: the key covers the
        # result-determining inputs only, never how they are computed.
        serial = RunPlan(days=DAYS)
        concurrent = RunPlan(days=DAYS, mode="concurrent",
                             substrate="thread", n_atm=3)
        assert serial.run_key() == concurrent.run_key()

    def test_output_cadences_do_not_change_key(self, tmp_path):
        plain = RunPlan(days=DAYS)
        instrumented = RunPlan(
            days=DAYS,
            history=HistorySpec(str(tmp_path / "h")),
            checkpoint=CheckpointSpec(str(tmp_path / "c")))
        assert plain.run_key() == instrumented.run_key()

    def test_result_determining_inputs_change_key(self):
        base = RunPlan(days=DAYS)
        assert RunPlan(days=2 * DAYS).run_key() != base.run_key()
        assert RunPlan(days=DAYS, mode="ensemble", nens=3,
                       ic_perturbation=1e-8).run_key() != base.run_key()
        assert RunPlan(days=DAYS,
                       scenario="aquaplanet").run_key() != base.run_key()


class TestPlanValidation:
    def test_modes(self):
        assert RUN_MODES == ("serial", "ensemble", "concurrent")
        with pytest.raises(ValueError):
            RunPlan(mode="turbo")

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError):
            RunPlan(days=0.0)

    def test_nens_requires_ensemble_mode(self):
        with pytest.raises(ValueError):
            RunPlan(nens=3)

    def test_substrate_requires_concurrent_mode(self):
        with pytest.raises(ValueError):
            RunPlan(substrate="thread")

    def test_checkpoint_cadence_must_hit_safe_boundary(self, tmp_path):
        cfg = _test_config()
        # 0.25 day = 6 steps at test size: a coupling boundary but not a
        # radiation one — a checkpoint there would not resume bitwise.
        spec = CheckpointSpec(str(tmp_path), interval_days=0.25)
        with pytest.raises(ValueError, match="safe checkpoint boundary"):
            spec.interval_steps(cfg)
        plan = RunPlan(days=DAYS, checkpoint=spec)
        with pytest.raises(ValueError, match="safe checkpoint boundary"):
            RunHarness(plan).run()

    def test_resume_refuses_config_mismatch(self, serial_checkpointed):
        ckpt = _halfway_checkpoint(serial_checkpointed)
        other = dataclasses.replace(_test_config(), seed=99)
        harness = RunHarness(RunPlan(config=other, days=DAYS))
        with pytest.raises(ValueError, match="different[\\s\\S]*configuration"):
            harness.run(resume_from=ckpt)

    def test_resume_refuses_nens_mismatch(self, serial_checkpointed):
        ckpt = _halfway_checkpoint(serial_checkpointed)
        harness = RunHarness(RunPlan(days=DAYS, mode="ensemble", nens=3,
                                     ic_perturbation=1e-8))
        with pytest.raises(ValueError, match="nens"):
            harness.run(resume_from=ckpt)

    def test_resume_beyond_plan_duration_raises(self, serial_checkpointed):
        ckpt = _halfway_checkpoint(serial_checkpointed)
        harness = RunHarness(RunPlan(days=0.25))
        with pytest.raises(ValueError, match="already"):
            harness.run(resume_from=ckpt)


# ----------------------------------------------------------------------
class TestSerialResume:
    def test_checkpointing_does_not_perturb_the_run(
            self, serial_baseline, serial_checkpointed):
        _assert_bitwise(serial_checkpointed.state, serial_baseline.state,
                        "checkpointed vs plain")

    def test_resume_is_bitwise(self, serial_baseline, serial_checkpointed):
        ckpt = _halfway_checkpoint(serial_checkpointed)
        resumed = RunHarness(RunPlan(days=DAYS)).run(resume_from=ckpt)
        assert resumed.start_step > 0
        assert resumed.steps + resumed.start_step \
            == serial_baseline.steps
        _assert_bitwise(resumed.state, serial_baseline.state,
                        "serial resume")

    def test_checkpoint_is_stamped(self, serial_checkpointed):
        ckpt = _halfway_checkpoint(serial_checkpointed)
        state, meta = load_checkpoint(ckpt)
        cfg = serial_checkpointed.plan.resolved_config()
        assert meta["format_version"] == 2
        assert meta["config_hash"] == cfg.content_hash()
        assert FoamConfig.from_dict(meta["config"]) == cfg
        assert meta["run_key"] == serial_checkpointed.run_key
        assert meta["mode"] == "serial"
        assert meta["step"] * cfg.atm_dt == pytest.approx(state.time)


class TestEnsembleResume:
    NENS = 3

    def _plan(self, tmp_path=None):
        kw = {}
        if tmp_path is not None:
            kw["checkpoint"] = CheckpointSpec(str(tmp_path),
                                              interval_days=CKPT_DAYS)
        return RunPlan(days=DAYS, mode="ensemble", nens=self.NENS,
                       ic_perturbation=1e-8, **kw)

    def test_resume_is_bitwise_for_every_member(self, tmp_path):
        straight = RunHarness(self._plan()).run()
        ckpted = RunHarness(self._plan(tmp_path)).run()
        _assert_bitwise(ckpted.state, straight.state,
                        "ensemble checkpointed vs plain")
        ckpt = _halfway_checkpoint(ckpted)
        harness = RunHarness(self._plan())
        resumed = harness.run(resume_from=ckpt)
        # batched arrays carry the member axis, so bitwise equality of the
        # stacked state is bitwise equality of every member at once
        _assert_bitwise(resumed.state, straight.state, "ensemble resume")
        for e in range(self.NENS):
            got = harness.ensemble.member_state(resumed.state, e)
            want = harness.ensemble.member_state(straight.state, e)
            _assert_bitwise(got, want, f"member {e}")


@pytest.mark.parallel
class TestConcurrentResume:
    """Rank-pool legs of the matrix; substrate follows ``FOAM_COMM``."""

    def _plan(self, tmp_path=None):
        kw = {}
        if tmp_path is not None:
            kw["checkpoint"] = CheckpointSpec(str(tmp_path),
                                              interval_days=CKPT_DAYS)
        return RunPlan(days=DAYS, mode="concurrent", **kw)

    def test_concurrent_matches_serial(self, serial_baseline):
        result = RunHarness(self._plan()).run()
        _assert_bitwise(result.state, serial_baseline.state,
                        "concurrent vs serial")

    def test_concurrent_resume_is_bitwise(self, serial_baseline, tmp_path):
        ckpted = RunHarness(self._plan(tmp_path)).run()
        _assert_bitwise(ckpted.state, serial_baseline.state,
                        "segmented concurrent vs serial")
        ckpt = _halfway_checkpoint(ckpted)
        resumed = RunHarness(self._plan()).run(resume_from=ckpt)
        _assert_bitwise(resumed.state, serial_baseline.state,
                        "concurrent resume")

    def test_serial_checkpoint_resumes_on_concurrent_substrate(
            self, serial_baseline, serial_checkpointed):
        # The cross-substrate leg: a checkpoint written by the serial path
        # finishes bitwise-identically on the rank pools.
        ckpt = _halfway_checkpoint(serial_checkpointed)
        resumed = RunHarness(self._plan()).run(resume_from=ckpt)
        _assert_bitwise(resumed.state, serial_baseline.state,
                        "serial ckpt -> concurrent resume")


# ----------------------------------------------------------------------
class TestHarnessHistory:
    def test_serial_history_schedule_and_rolling_flush(self, tmp_path):
        plan = RunPlan(days=DAYS, history=HistorySpec(
            str(tmp_path), interval_days=0.25, flush_every=2,
            fields=("sst", "eta")))
        result = RunHarness(plan).run()
        # 24 steps, cadence 6: snapshots at steps 0, 6, 12, 18, 24
        assert len(result.history_files) == 3      # 2 + 2 + 1 snapshots
        data = load_history(result.history_files)
        assert data["time"].shape == (5,)
        assert np.array_equal(data["time"],
                              np.arange(5) * 0.25 * 86400.0)
        assert data["sst"].shape[0] == 5
        assert data["sst"].dtype == np.float64

    def test_ensemble_history_carries_member_axis(self, tmp_path):
        nens = 3
        plan = RunPlan(days=0.5, mode="ensemble", nens=nens,
                       ic_perturbation=1e-8,
                       history=HistorySpec(str(tmp_path),
                                           interval_days=0.25,
                                           fields=("sst", "ice_thickness")))
        harness = RunHarness(plan)
        result = harness.run()
        data = load_history(result.history_files)
        model = harness.model
        ny, nx = model.ocean.grid.ny, model.ocean.grid.nx
        assert data["sst"].shape == (3, nens, ny, nx)
        assert data["ice_thickness"].shape == (3, nens, ny, nx)

    def test_resumed_history_continues_the_schedule(self, tmp_path):
        spec = HistorySpec(str(tmp_path / "resumed"), interval_days=0.25,
                           fields=("sst",))
        ck = CheckpointSpec(str(tmp_path / "ck"), interval_days=CKPT_DAYS)
        first = RunHarness(RunPlan(days=CKPT_DAYS, history=spec,
                                   checkpoint=ck)).run()
        second = RunHarness(RunPlan(days=DAYS, history=spec)).run(
            resume_from=first.checkpoints[-1])
        combined = load_history(first.history_files + second.history_files)

        straight = RunHarness(RunPlan(days=DAYS, history=HistorySpec(
            str(tmp_path / "straight"), interval_days=0.25,
            fields=("sst",)))).run()
        want = load_history(straight.history_files)
        # same snapshot schedule, same numbers: the resumed run's history
        # is indistinguishable from the straight-through run's
        assert np.array_equal(combined["time"], want["time"])
        assert np.array_equal(combined["sst"], want["sst"])
