"""Tests for the overlap grid (Figure 1 / experiment E1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atmosphere.spectral import gaussian_latitudes
from repro.coupler import OverlapGrid, cell_edges_from_centers
from repro.ocean import mercator_latitudes


@pytest.fixture(scope="module")
def grids():
    """Paper configuration in miniature: Gaussian atm 24x16, Mercator ocn 32x32."""
    mu, _ = gaussian_latitudes(16)
    atm_lats = np.arcsin(mu)
    ocn_lats = mercator_latitudes(32)
    return OverlapGrid(atm_lats, 24, ocn_lats, 32)


def test_cell_edges_validation():
    with pytest.raises(ValueError):
        cell_edges_from_centers(np.array([0.3, 0.1]), 0.0, 1.0)


def test_overlap_areas_sum_to_sphere(grids):
    """Overlap cells tile the sphere exactly: total area = 4 pi R^2."""
    from repro.util.constants import EARTH_RADIUS

    assert grids.areas.sum() == pytest.approx(4 * np.pi * EARTH_RADIUS**2, rel=1e-12)


def test_overlap_finer_than_both(grids):
    assert grids.nlat >= 32
    assert grids.nlon >= 32


def test_from_atm_piecewise_constant(grids):
    """Gathering is pure indexing — every overlap value exists in the source."""
    rng = np.random.default_rng(0)
    f = rng.normal(size=(16, 24))
    ov = grids.from_atm(f)
    assert set(np.unique(ov)).issubset(set(np.unique(f)))


def test_atm_roundtrip_identity(grids):
    """to_atm(from_atm(f)) == f exactly: averaging a constant-per-cell field."""
    rng = np.random.default_rng(1)
    f = rng.normal(size=(16, 24))
    np.testing.assert_allclose(grids.to_atm(grids.from_atm(f)), f, atol=1e-12)


def test_ocn_roundtrip_identity(grids):
    rng = np.random.default_rng(2)
    f = rng.normal(size=(32, 32))
    np.testing.assert_allclose(grids.to_ocn(grids.from_ocn(f)), f, atol=1e-12)


def test_flux_conservation_atm_to_ocn(grids):
    """The defining property: the global integral of a flux is identical
    whether counted on the overlap grid or after averaging to either grid.

    This is what lets FOAM close the hydrological cycle without flux
    correction."""
    rng = np.random.default_rng(3)
    flux_ov = rng.normal(size=(grids.nlat, grids.nlon))
    total_overlap = grids.integrate(flux_ov)
    total_atm = grids.integrate_atm(grids.to_atm(flux_ov))
    np.testing.assert_allclose(total_atm, total_overlap, rtol=1e-12)
    # Ocean side: conservation holds over the ocean grid's latitude span.
    valid = grids.ocean_valid_mask()
    total_valid = grids.integrate(np.where(valid, flux_ov, 0.0))
    total_ocn = grids.integrate_ocn(grids.to_ocn(flux_ov))
    np.testing.assert_allclose(total_ocn, total_valid, rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 999))
def test_conservation_property_random_grids(seed):
    rng = np.random.default_rng(seed)
    nlat_a = int(rng.integers(6, 20))
    nlon_a = int(rng.integers(8, 30))
    nlat_o = int(rng.integers(8, 30))
    nlon_o = int(rng.integers(8, 30))
    mu, _ = gaussian_latitudes(nlat_a)
    ov = OverlapGrid(np.arcsin(mu), nlon_a, mercator_latitudes(nlat_o), nlon_o)
    flux = rng.normal(size=(ov.nlat, ov.nlon))
    np.testing.assert_allclose(ov.integrate_atm(ov.to_atm(flux)),
                               ov.integrate(flux), rtol=1e-10)


def test_constant_field_maps_to_constant(grids):
    """Averaging preserves constants on both targets (partition of unity)."""
    ov_field = np.full((grids.nlat, grids.nlon), 4.2)
    np.testing.assert_allclose(grids.to_atm(ov_field), 4.2, rtol=1e-12)
    np.testing.assert_allclose(grids.to_ocn(ov_field), 4.2, rtol=1e-12)


def test_polar_caps_are_atm_only(grids):
    """Overlap cells poleward of the ocean grid's span have no ocean index."""
    valid = grids.ocean_valid_mask()
    assert not valid[0].any()      # southernmost band beyond Mercator limit
    assert not valid[-1].any()
    assert valid[grids.nlat // 2].all()


def test_no_interpolation_of_state(grids):
    """'No effort is made to interpolate all state variables to a single
    grid': a sharp front in the source stays sharp (no new extrema, no
    smearing beyond cell granularity)."""
    f = np.zeros((16, 24))
    f[:, :12] = 1.0
    ov = grids.from_atm(f)
    assert set(np.unique(ov)) == {0.0, 1.0}
