"""Tests for domain decomposition and halo exchange (repro.parallel.decomp)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import BlockDecomp1D, BlockDecomp2D, block_bounds, run_ranks

pytestmark = pytest.mark.parallel


# ---------------------------------------------------------------- block_bounds
@given(n=st.integers(1, 500), parts=st.integers(1, 32))
def test_block_bounds_partition_property(n, parts):
    """Blocks tile [0, n) exactly, in order, with sizes differing by <= 1."""
    if parts > n:
        parts = n
    sizes = []
    prev_hi = 0
    for i in range(parts):
        lo, hi = block_bounds(n, parts, i)
        assert lo == prev_hi
        prev_hi = hi
        sizes.append(hi - lo)
    assert prev_hi == n
    assert max(sizes) - min(sizes) <= 1


def test_block_bounds_rejects_bad_index():
    with pytest.raises(ValueError):
        block_bounds(10, 4, 4)
    with pytest.raises(ValueError):
        block_bounds(10, 0, 0)


# ---------------------------------------------------------------- 1-D decomp
def test_decomp1d_rejects_more_ranks_than_rows():
    with pytest.raises(ValueError, match="decomposition limit"):
        BlockDecomp1D(nlat=4, nlon=8, nranks=5)


def test_decomp1d_owner_roundtrip():
    d = BlockDecomp1D(nlat=40, nlon=48, nranks=7)
    for j in range(40):
        r = d.owner(j)
        lo, hi = d.bounds(r)
        assert lo <= j < hi


@pytest.mark.parametrize("nranks", [1, 2, 4, 5])
def test_decomp1d_scatter_gather_identity(nranks):
    full = np.arange(40 * 48, dtype=float).reshape(40, 48)
    d = BlockDecomp1D(nlat=40, nlon=48, nranks=nranks)

    def worker(comm):
        local = d.scatter(comm, full if comm.rank == 0 else None)
        lo, hi = d.bounds(comm.rank)
        np.testing.assert_array_equal(local, full[lo:hi])
        return d.gather(comm, local)

    out = run_ranks(nranks, worker)
    np.testing.assert_array_equal(out[0], full)


def test_decomp1d_halo_exchange_matches_serial():
    full = np.random.default_rng(0).normal(size=(12, 6))
    d = BlockDecomp1D(nlat=12, nlon=6, nranks=3)

    def worker(comm):
        local = d.scatter(comm, full if comm.rank == 0 else None)
        south, north = d.exchange_halo(comm, local)
        lo, hi = d.bounds(comm.rank)
        expect_south = full[lo - 1] if lo > 0 else full[lo]
        expect_north = full[hi] if hi < 12 else full[hi - 1]
        np.testing.assert_array_equal(south, expect_south)
        np.testing.assert_array_equal(north, expect_north)
        return True

    assert all(run_ranks(3, worker))


# ---------------------------------------------------------------- 2-D decomp
def test_decomp2d_coords_rank_roundtrip():
    d = BlockDecomp2D(ny=16, nx=16, py=2, px=3)
    for r in range(d.nranks):
        prow, pcol = d.coords(r)
        assert d.rank_at(prow, pcol) == r


def test_decomp2d_rank_at_periodic_in_x():
    d = BlockDecomp2D(ny=8, nx=8, py=2, px=4)
    assert d.rank_at(0, 4) == d.rank_at(0, 0)
    assert d.rank_at(1, -1) == d.rank_at(1, 3)


@pytest.mark.parametrize("py,px", [(1, 1), (2, 2), (2, 3), (4, 1)])
def test_decomp2d_scatter_gather_identity(py, px):
    full = np.random.default_rng(1).normal(size=(16, 18))
    d = BlockDecomp2D(ny=16, nx=18, py=py, px=px)

    def worker(comm):
        local = d.scatter(comm, full if comm.rank == 0 else None)
        return d.gather(comm, local)

    out = run_ranks(d.nranks, worker)
    np.testing.assert_array_equal(out[0], full)


@pytest.mark.parametrize("py,px", [(1, 2), (2, 2), (2, 3)])
def test_decomp2d_halo_matches_serial_padding(py, px):
    """Halo exchange must reproduce what serial periodic/replicated padding gives."""
    ny, nx = 12, 16
    full = np.random.default_rng(2).normal(size=(ny, nx))
    d = BlockDecomp2D(ny=ny, nx=nx, py=py, px=px)

    # Serial reference: pad the full array the same way.
    ref = np.empty((ny + 2, nx + 2))
    ref[1:-1, 1:-1] = full
    ref[1:-1, 0] = full[:, -1]
    ref[1:-1, -1] = full[:, 0]
    ref[0, 1:-1] = full[0]
    ref[-1, 1:-1] = full[-1]

    def worker(comm):
        local = d.scatter(comm, full if comm.rank == 0 else None)
        padded = d.exchange_halo(comm, local)
        (ylo, yhi), (xlo, xhi) = d.bounds(comm.rank)
        # Interior of the padded block must match the serial reference window
        # (skip corners, which are closure-filled).
        np.testing.assert_array_equal(padded[1:-1, 1:-1], full[ylo:yhi, xlo:xhi])
        if xlo == 0:
            np.testing.assert_array_equal(padded[1:-1, 0], ref[ylo + 1:yhi + 1, 0])
        if ylo == 0:
            np.testing.assert_array_equal(padded[0, 1:-1], ref[0, xlo + 1:xhi + 1])
        return True

    assert all(run_ranks(d.nranks, worker))


# ---------------------------------------------------------------- transpose
@pytest.mark.parametrize("size", [1, 2, 3, 4])
def test_transpose_roundtrip(size):
    from repro.parallel import transpose_backward, transpose_forward

    nrows, ncols = 12, 10
    full = np.random.default_rng(3).normal(size=(nrows, ncols))

    def worker(comm):
        rlo, rhi = block_bounds(nrows, comm.size, comm.rank)
        local_rows = full[rlo:rhi].copy()
        local_cols = transpose_forward(comm, local_rows, nrows, ncols)
        clo, chi = block_bounds(ncols, comm.size, comm.rank)
        np.testing.assert_allclose(local_cols, full[:, clo:chi])
        back = transpose_backward(comm, local_cols, nrows, ncols)
        np.testing.assert_allclose(back, full[rlo:rhi])
        return True

    assert all(run_ranks(size, worker))
