"""Property-based tests: every SimComm collective vs its NumPy serial equivalent.

For randomized world sizes 1-9, random dtypes and shapes (including
non-contiguous inputs and size-1 communicators), each collective must agree
with the obvious serial NumPy computation over the same per-rank payloads.
The whole module is parametrized over both communicator substrates (rank
threads and real forked processes), so every property doubles as a
cross-substrate equivalence proof:

* ``bcast``       == identity from the root payload
* ``reduce``      == ``np.add/maximum/minimum/multiply.reduce`` over ranks
* ``allreduce``   == the same, on every rank
* ``gather``      == the list of payloads in rank order
* ``allgather``   == the same, on every rank
* ``scatter``     == bitwise hand-out of the root's list
* ``alltoall``    == the transpose of the payload matrix
* ``sendrecv``    == a ring shift

Exactness: integer dtypes and min/max are compared bitwise; floating
sum/prod use a tolerance because the binomial reduction tree legitimately
reassociates the arithmetic.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel import run_ranks

pytestmark = pytest.mark.parallel

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@pytest.fixture(scope="module", params=["thread", "process"])
def substrate(request):
    """Run every property on both communicator substrates.

    Module-scoped so hypothesis's function_scoped_fixture health check
    stays quiet: the fixture value is a constant string per parametrized
    module run, not per-example state.
    """
    return request.param

world_sizes = st.integers(min_value=1, max_value=9)
dtypes = st.sampled_from(["float64", "float32", "int64", "int32", "complex128"])
shapes = st.lists(st.integers(1, 4), min_size=1, max_size=3).map(tuple)


@st.composite
def world_and_payloads(draw):
    """A world size plus one deterministic array payload per rank.

    Payloads are kept small-magnitude so float32 sum/prod comparisons stay
    well-conditioned; with probability ~1/2 each payload is a non-contiguous
    view (reversed leading axis), exercising the copy-on-send path.
    """
    size = draw(world_sizes)
    dtype = np.dtype(draw(dtypes))
    shape = draw(shapes)
    seed = draw(st.integers(0, 2**31 - 1))
    noncontig = draw(st.booleans())
    rng = np.random.default_rng(seed)
    payloads = []
    for _ in range(size):
        if dtype.kind == "c":
            arr = (rng.integers(-8, 8, size=shape)
                   + 1j * rng.integers(-8, 8, size=shape)).astype(dtype)
        elif dtype.kind == "f":
            arr = rng.integers(-8, 8, size=shape).astype(dtype) / 4.0
        else:
            arr = rng.integers(-8, 8, size=shape).astype(dtype)
        if noncontig and shape[0] > 1:
            arr = arr[::-1]
            assert not arr.flags["C_CONTIGUOUS"]
        payloads.append(arr)
    return size, payloads


def _assert_agrees(actual, expected, op):
    expected = np.asarray(expected)
    if expected.dtype.kind in "iub" or op in ("max", "min"):
        np.testing.assert_array_equal(actual, expected)
    else:
        rtol = 1e-5 if expected.dtype in (np.float32, np.complex64) else 1e-12
        np.testing.assert_allclose(actual, expected, rtol=rtol, atol=1e-12)


@settings(**_SETTINGS)
@given(world_and_payloads(), st.integers(0, 8))
def test_bcast_equals_root_payload(substrate, wp, root_pick):
    size, payloads = wp
    root = root_pick % size

    def worker(comm):
        obj = payloads[root] if comm.rank == root else None
        return comm.bcast(obj, root=root)

    for received in run_ranks(size, worker, timeout=30.0, substrate=substrate):
        np.testing.assert_array_equal(received, payloads[root])


@settings(**_SETTINGS)
@given(world_and_payloads(), st.sampled_from(["sum", "max", "min"]),
       st.integers(0, 8))
def test_reduce_equals_numpy_reduce(substrate, wp, op, root_pick):
    size, payloads = wp
    root = root_pick % size
    ufunc = {"sum": np.add, "max": np.maximum, "min": np.minimum}[op]
    if op in ("max", "min") and payloads[0].dtype.kind == "c":
        payloads = [p.real for p in payloads]  # no complex ordering
    expected = ufunc.reduce(np.stack(payloads), axis=0)

    def worker(comm):
        return comm.reduce(payloads[comm.rank], op=op, root=root)

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    _assert_agrees(out[root], expected, op)
    assert all(out[r] is None for r in range(size) if r != root)


@settings(**_SETTINGS)
@given(world_and_payloads(), st.sampled_from(["sum", "prod", "max", "min"]))
def test_allreduce_equals_numpy_on_every_rank(substrate, wp, op):
    size, payloads = wp
    ufunc = {"sum": np.add, "prod": np.multiply,
             "max": np.maximum, "min": np.minimum}[op]
    if op in ("max", "min") and payloads[0].dtype.kind == "c":
        payloads = [p.real for p in payloads]
    expected = ufunc.reduce(np.stack(payloads), axis=0)

    def worker(comm):
        return comm.allreduce(payloads[comm.rank], op=op)

    for received in run_ranks(size, worker, timeout=30.0, substrate=substrate):
        _assert_agrees(received, expected, op)


@settings(**_SETTINGS)
@given(world_and_payloads(), st.integers(0, 8))
def test_gather_equals_rank_ordered_list(substrate, wp, root_pick):
    size, payloads = wp
    root = root_pick % size

    def worker(comm):
        return comm.gather(payloads[comm.rank], root=root)

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    assert len(out[root]) == size
    for r in range(size):
        np.testing.assert_array_equal(out[root][r], payloads[r])
        if r != root:
            assert out[r] is None


@settings(**_SETTINGS)
@given(world_and_payloads())
def test_allgather_equals_rank_ordered_list_everywhere(substrate, wp):
    size, payloads = wp

    def worker(comm):
        return comm.allgather(payloads[comm.rank])

    for received in run_ranks(size, worker, timeout=30.0, substrate=substrate):
        assert len(received) == size
        for r in range(size):
            np.testing.assert_array_equal(received[r], payloads[r])


@settings(**_SETTINGS)
@given(world_and_payloads(), st.integers(0, 8))
def test_scatter_is_bitwise_handout(substrate, wp, root_pick):
    size, payloads = wp
    root = root_pick % size

    def worker(comm):
        objs = payloads if comm.rank == root else None
        return comm.scatter(objs, root=root)

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    for r in range(size):
        np.testing.assert_array_equal(out[r], payloads[r])


@settings(**_SETTINGS)
@given(world_and_payloads(), st.integers(0, 2**31 - 1))
def test_alltoall_is_matrix_transpose(substrate, wp, seed):
    size, payloads = wp
    rng = np.random.default_rng(seed)
    # matrix[src][dest]: a distinct block for every (src, dest) pair.
    matrix = [[payloads[src] + dest * rng.integers(1, 3)
               for dest in range(size)] for src in range(size)]

    def worker(comm):
        return comm.alltoall(matrix[comm.rank])

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    for dest in range(size):
        for src in range(size):
            np.testing.assert_array_equal(out[dest][src], matrix[src][dest])


@settings(**_SETTINGS)
@given(world_and_payloads())
def test_sendrecv_ring_shift(substrate, wp):
    size, payloads = wp

    def worker(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(payloads[comm.rank], dest=right, source=left)

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    for r in range(size):
        np.testing.assert_array_equal(out[r], payloads[(r - 1) % size])


@settings(**_SETTINGS)
@given(world_and_payloads())
def test_collectives_preserve_noncontiguous_inputs(substrate, wp):
    """Send buffers are copied: mutating them after the call is harmless."""
    size, payloads = wp
    originals = [p.copy() for p in payloads]

    def worker(comm):
        buf = payloads[comm.rank]
        gathered = comm.gather(buf, root=0)
        return gathered

    out = run_ranks(size, worker, timeout=30.0, substrate=substrate)
    for r in range(size):
        np.testing.assert_array_equal(out[0][r], originals[r])


def test_size_one_world_runs_every_collective(substrate):
    """Size-1 communicators: every collective degenerates to the identity."""
    x = np.arange(6.0).reshape(2, 3)

    def worker(comm):
        assert comm.size == 1
        comm.barrier()
        a = comm.bcast(x, root=0)
        b = comm.reduce(x, op="sum", root=0)
        c = comm.allreduce(x, op="max")
        d = comm.gather(x, root=0)
        e = comm.allgather(x)
        f = comm.scatter([x], root=0)
        g = comm.alltoall([x])
        return a, b, c, d, e, f, g

    a, b, c, d, e, f, g = run_ranks(1, worker, timeout=30.0, substrate=substrate)[0]
    for got in (a, b, c, d[0], e[0], f, g[0]):
        np.testing.assert_array_equal(got, x)
