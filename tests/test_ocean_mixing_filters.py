"""Tests for PP mixing, convective adjustment, polar filter, and operators."""

import numpy as np
import pytest

from repro.ocean import (
    OceanGrid,
    PPMixingParams,
    apply_polar_filter,
    convective_adjustment,
    mix_column_implicit,
    polar_filter_factors,
    pp_viscosity,
    richardson_number,
)
from repro.ocean.filters import masked_zonal_smooth
from repro.ocean.operators import biharmonic, ddx, flux_divergence, laplacian


# ------------------------------------------------------------- PP mixing
def test_pp_viscosity_decreases_with_richardson():
    ri = np.array([0.0, 0.5, 2.0, 10.0])
    nu, kappa = pp_viscosity(ri)
    assert np.all(np.diff(nu) < 0)
    assert np.all(np.diff(kappa) < 0)
    assert np.all(kappa <= nu + 1e-12)


def test_pp_steeper_exponent_mixes_less_at_moderate_ri():
    """FOAM's steepened exponent (Peters et al.) cuts mixing at Ri ~ 0.5."""
    ri = np.array([0.5])
    nu_pp81, _ = pp_viscosity(ri, PPMixingParams(exponent=2.0))
    nu_foam, _ = pp_viscosity(ri, PPMixingParams(exponent=3.0))
    assert nu_foam[0] < nu_pp81[0]


def test_pp_convective_regime():
    nu, kappa = pp_viscosity(np.array([-0.1]))
    p = PPMixingParams()
    assert kappa[0] == p.convective_kappa


def test_richardson_number_sign_follows_stratification():
    z = np.array([10.0, 100.0])
    u = np.array([[0.1], [0.0]])
    v = np.zeros((2, 1))
    ri_stable = richardson_number(u, v, np.array([[1e-5]]), z)
    ri_unstable = richardson_number(u, v, np.array([[-1e-5]]), z)
    assert ri_stable[0, 0] > 0 > ri_unstable[0, 0]


def test_mix_column_conserves_integral_without_flux():
    dz = np.array([10.0, 20.0, 40.0, 80.0])
    field = np.array([20.0, 15.0, 10.0, 5.0])[:, None]
    kappa = np.full((3, 1), 1e-3)
    out = mix_column_implicit(field, kappa, dz, dt=3600.0)
    np.testing.assert_allclose((out[:, 0] * dz).sum(), (field[:, 0] * dz).sum(),
                               rtol=1e-12)


def test_mix_column_respects_mask():
    """No diffusion across the sea floor: inactive levels stay untouched."""
    dz = np.array([10.0, 20.0, 40.0])
    field = np.array([20.0, 10.0, 0.0])[:, None]
    kappa = np.full((2, 1), 1.0)
    mask = np.array([True, True, False])[:, None]
    out = mix_column_implicit(field, kappa, dz, dt=36000.0, mask=mask)
    assert out[2, 0] == 0.0
    # Active pair mixed toward each other.
    assert out[0, 0] < 20.0 and out[1, 0] > 10.0


def test_surface_flux_enters_top_layer():
    dz = np.array([10.0, 20.0])
    field = np.zeros((2, 1))
    kappa = np.zeros((1, 1))
    out = mix_column_implicit(field, kappa, dz, dt=100.0,
                              surface_flux=np.array([5.0e-2]))
    assert out[0, 0] == pytest.approx(5.0e-2 * 100.0 / 10.0)
    assert out[1, 0] == 0.0


# ------------------------------------------------------------- convective adj
def test_convective_adjustment_stabilizes_column():
    from repro.ocean.eos import density_anomaly

    z = np.array([10.0, 50.0, 200.0])
    dz = np.array([20.0, 60.0, 300.0])
    temp = np.array([2.0, 10.0, 12.0])[:, None]   # cold over warm: unstable
    salt = np.full((3, 1), 35.0)
    t2, s2 = convective_adjustment(temp, salt, z, dz, passes=12)
    rho = density_anomaly(t2, s2, 0.0)
    # Pairwise sweeps converge geometrically; a milli-unit residual remains.
    assert np.all(np.diff(rho[:, 0]) >= -2e-3)
    # The original profile was far more unstable than that.
    rho0 = density_anomaly(temp, salt, 0.0)
    assert np.diff(rho0[:, 0]).min() < -1.0


def test_convective_adjustment_conserves_heat():
    z = np.array([10.0, 50.0, 200.0])
    dz = np.array([20.0, 60.0, 300.0])
    temp = np.array([2.0, 10.0, 12.0])[:, None]
    salt = np.full((3, 1), 35.0)
    t2, _ = convective_adjustment(temp, salt, z, dz)
    np.testing.assert_allclose((t2[:, 0] * dz).sum(), (temp[:, 0] * dz).sum(),
                               rtol=1e-12)


def test_convective_adjustment_mask_protects_inactive():
    z = np.array([10.0, 50.0])
    dz = np.array([20.0, 60.0])
    temp = np.array([[10.0], [0.0]])  # inactive placeholder below
    salt = np.array([[35.0], [0.0]])
    mask = np.array([[True], [False]])
    t2, s2 = convective_adjustment(temp, salt, z, dz, mask=mask)
    np.testing.assert_allclose(t2, temp)
    np.testing.assert_allclose(s2, salt)


# ------------------------------------------------------------- polar filter
def test_polar_filter_factors_pass_equatorward():
    f = polar_filter_factors(64, coslat_row=0.9, coslat_crit=0.5)
    np.testing.assert_allclose(f, 1.0)


def test_polar_filter_factors_damp_high_wavenumbers():
    f = polar_filter_factors(64, coslat_row=0.1, coslat_crit=0.5)
    assert f[0] == 1.0
    assert f[-1] < 0.1
    assert np.all(np.diff(f[1:]) <= 1e-12)


def test_polar_filter_preserves_zonal_mean():
    g = OceanGrid(nx=32, ny=32, nlev=2)
    mask = np.ones((32, 32), dtype=bool)
    rng = np.random.default_rng(0)
    field = rng.normal(size=(32, 32))
    out = apply_polar_filter(field, g.lats, mask, lat_crit_deg=50.0)
    np.testing.assert_allclose(out.mean(axis=1), field.mean(axis=1), atol=1e-12)
    # Polar rows actually changed; tropical rows untouched.
    assert not np.allclose(out[-1], field[-1])
    j_eq = 16
    np.testing.assert_allclose(out[j_eq], field[j_eq])


def test_masked_smoother_never_uses_land_values():
    row = np.array([1.0, 2.0, 999.0, 3.0, 4.0, 5.0, 6.0, 7.0])
    mask = np.array([True, True, False, True, True, True, True, True])
    out = masked_zonal_smooth(row, mask, passes=3)
    # Land cell unchanged, ocean values bounded by ocean range.
    assert out[2] == 999.0
    assert out[~(~mask)].max() <= 999.0
    ocean = out[mask]
    assert ocean.max() <= 7.0 + 1e-12 and ocean.min() >= 1.0 - 1e-12


# ------------------------------------------------------------- operators
@pytest.fixture
def opgrid():
    g = OceanGrid(nx=24, ny=24, nlev=2)
    mask = np.ones((24, 24), dtype=bool)
    return g, mask

def test_ddx_of_zonal_wave(opgrid):
    g, mask = opgrid
    field = np.sin(2 * g.lons)[None, :] * np.ones((24, 1))
    d = ddx(field, g.dx, mask)
    expect = 2 * np.cos(2 * g.lons)[None, :] / (g.dx[:, None] * 24 / (2 * np.pi) / 1)
    # centered difference of sin(2x): derivative scaled by sin(k dx)/dx factor
    k = 2
    dlon = 2 * np.pi / 24
    eff = np.sin(k * dlon) / dlon
    expect = eff * np.cos(2 * g.lons)[None, :] * (dlon / g.dx[:, None])
    np.testing.assert_allclose(d, expect, atol=1e-12)


def test_flux_divergence_conservative(opgrid):
    """Global area integral of div(H u) vanishes exactly (closed domain)."""
    g, mask = opgrid
    rng = np.random.default_rng(1)
    hu = rng.normal(size=(24, 24))
    hv = rng.normal(size=(24, 24))
    # Random land too.
    mask = rng.random((24, 24)) > 0.25
    div = flux_divergence(hu, hv, g.dx, g.dy, mask)
    areas = (g.dx * g.dy)[:, None]
    total = np.sum(div * areas)
    assert abs(total) < 1e-8 * np.sum(np.abs(div) * areas + 1e-30)


def test_laplacian_of_constant_is_zero(opgrid):
    g, mask = opgrid
    field = np.full((24, 24), 3.7)
    np.testing.assert_allclose(laplacian(field, g.dx, g.dy, mask), 0.0, atol=1e-18)
    np.testing.assert_allclose(biharmonic(field, g.dx, g.dy, mask), 0.0, atol=1e-18)


def test_laplacian_sign_at_maximum(opgrid):
    g, mask = opgrid
    field = np.zeros((24, 24))
    field[12, 12] = 1.0
    lap = laplacian(field, g.dx, g.dy, mask)
    assert lap[12, 12] < 0
    assert lap[12, 13] > 0


def test_ddx_centered_only_drops_coastal_gradient(opgrid):
    g, _ = opgrid
    mask = np.ones((24, 24), dtype=bool)
    mask[:, 10] = False
    field = np.cumsum(np.ones((24, 24)), axis=1)
    d_onesided = ddx(field, g.dx, mask)
    d_centered = ddx(field, g.dx, mask, centered_only=True)
    # Cells adjacent to the land column: one-sided keeps a gradient,
    # centered-only zeroes it.
    assert d_onesided[5, 9] != 0.0
    assert d_centered[5, 9] == 0.0
    # Interior unchanged between the two.
    np.testing.assert_allclose(d_centered[:, 3], d_onesided[:, 3])
