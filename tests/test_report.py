"""Tests for the measured time-allocation report CLI (repro.perf.report)."""

import json

import pytest

from repro.perf.profiler import RunProfile, profiling_enabled
from repro.perf.report import format_calibration, main, profile_coupled_run


@pytest.fixture(scope="module")
def quarter_day_profile():
    """One profiled coupling interval of the test config (shared: ~0.2 s)."""
    return profile_coupled_run(days=0.25, config="test", seed=0)


def test_profile_coupled_run_covers_all_components(quarter_day_profile):
    profile = quarter_day_profile
    assert not profiling_enabled()   # profiling must be off afterwards
    roots = {s.path for s in profile.roots()}
    assert roots == {"atmosphere", "coupler", "ocean"}
    # 0.25 days at dt=3600 is 6 steps; dynamics runs once per step.
    assert profile.calls("atmosphere/dynamics") == 6
    assert profile.total_calls("radiation") >= 1
    assert profile.meta["config"] == "test"


def test_profile_coupled_run_rejects_unknown_config():
    with pytest.raises(ValueError, match="unknown config"):
        profile_coupled_run(days=0.25, config="huge")


def test_format_calibration_renders_costs(quarter_day_profile):
    text = format_calibration(quarter_day_profile)
    assert "ordinary atmosphere step" in text
    assert "radiation atmosphere step" in text
    assert "ocean call" in text


def test_format_calibration_reports_uncalibratable_profile():
    empty = RunProfile(label="empty", wall_seconds=0.0, sections=[])
    assert format_calibration(empty).startswith("calibration unavailable")


def test_cli_prints_section_table(capsys, tmp_path):
    """The Figure-2-style report: per-section rows with calls and shares."""
    out = tmp_path / "profile.json"
    rc = main(["--days", "0.25", "--seed", "0", "--json", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    for section in ("atmosphere", "dynamics", "physics", "coupler", "ocean"):
        assert section in text
    assert "calls" in text and "incl s" in text and "%" in text
    assert "calibrated event-simulator costs" in text

    saved = json.loads(out.read_text())
    assert saved["sections"]   # non-empty profile was written


def test_cli_renders_saved_profile(capsys, tmp_path, quarter_day_profile):
    path = tmp_path / "saved.json"
    quarter_day_profile.save(path)
    rc = main(["--load", str(path), "--min-fraction", "0.02"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "atmosphere" in text
    assert quarter_day_profile.label in text


def test_profile_ensemble_run_batches_members():
    """--ensemble N profiles one batched run: per-step section call counts
    match a serial run (the batch amortizes, it does not multiply calls)."""
    from repro.perf.report import profile_ensemble_run

    profile = profile_ensemble_run(days=0.25, config="test", nens=2, seed=0)
    assert profile.meta["nens"] == 2
    # 0.25 days at dt=3600 is 6 steps; dynamics runs once per batched step.
    assert profile.calls("atmosphere/dynamics") == 6
    roots = {s.path for s in profile.roots()}
    assert roots == {"atmosphere", "coupler", "ocean"}


def test_profile_ensemble_run_validates_nens():
    from repro.perf.report import profile_ensemble_run

    with pytest.raises(ValueError, match="nens"):
        profile_ensemble_run(days=0.25, nens=0)
    with pytest.raises(ValueError, match="unknown config"):
        profile_ensemble_run(days=0.25, config="huge")


def test_cli_ensemble_flag(capsys):
    rc = main(["--days", "0.25", "--seed", "0", "--ensemble", "2"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "nens=2" in text
    assert "atmosphere" in text and "ocean" in text


def test_cli_ensemble_excludes_ranks(capsys):
    with pytest.raises(SystemExit):
        main(["--ensemble", "2", "--atm-ranks", "2"])
