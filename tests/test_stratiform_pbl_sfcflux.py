"""Tests for stratiform condensation, boundary layer, and surface fluxes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atmosphere.physics.boundary_layer import (
    BoundaryLayerParams,
    diagnose_pbl_height,
    diffuse_column,
    kprofile_diffusivity,
    solve_tridiagonal,
)
from repro.atmosphere.physics.stratiform import (
    saturation_adjustment,
    stratiform_tendencies,
)
from repro.atmosphere.physics.surface_flux import (
    SurfaceFluxParams,
    bulk_fluxes,
    bulk_richardson,
    neutral_coefficient,
    ocean_fluxes,
    ocean_roughness,
    stability_function,
)
from repro.util.constants import CP, GRAVITY, LATENT_HEAT_VAP
from repro.util.thermo import saturation_mixing_ratio


def column(L=8, nlat=2, nlon=2, t0=285.0, rh=0.5):
    sigma = np.linspace(0.2, 0.98, L)
    ps = np.full((nlat, nlon), 1.0e5)
    p = sigma[:, None, None] * ps[None]
    shape = (L, nlat, nlon)
    temp = np.broadcast_to(t0 - 50.0 * (1.0 - sigma[:, None, None]), shape).copy()
    q = rh * saturation_mixing_ratio(temp, p)
    dp = np.gradient(sigma)[:, None, None] * ps[None]
    return temp, q, p, dp


# ------------------------------------------------------------- stratiform
def test_saturation_adjustment_noop_when_subsaturated():
    temp, q, p, dp = column(rh=0.5)
    t2, q2, cond = saturation_adjustment(temp, q, p)
    np.testing.assert_allclose(t2, temp)
    np.testing.assert_allclose(q2, q)
    assert np.all(cond == 0.0)


def test_saturation_adjustment_removes_supersaturation():
    temp, q, p, dp = column(rh=1.3)
    t2, q2, cond = saturation_adjustment(temp, q, p)
    qsat2 = saturation_mixing_ratio(t2, p)
    assert np.all(q2 <= qsat2 * 1.001)
    assert np.all(cond > 0.0)
    assert np.all(t2 > temp)  # condensational heating


def test_saturation_adjustment_conserves_moist_enthalpy():
    temp, q, p, dp = column(rh=1.4)
    t2, q2, cond = saturation_adjustment(temp, q, p)
    h1 = CP * temp + LATENT_HEAT_VAP * q
    h2 = CP * t2 + LATENT_HEAT_VAP * q2
    np.testing.assert_allclose(h2, h1, rtol=1e-12)


def test_stratiform_precip_reaches_surface_from_saturated_column():
    temp, q, p, dp = column(rh=1.2)
    dtdt, dqdt, prec = stratiform_tendencies(temp, q, p, dp, dt=1800.0)
    assert np.all(prec > 0.0)


def test_stratiform_water_budget_closes():
    """Column moisture loss = surface precipitation exactly."""
    temp, q, p, dp = column(rh=1.2)
    dt = 1800.0
    dtdt, dqdt, prec = stratiform_tendencies(temp, q, p, dp, dt=dt)
    mass = dp / GRAVITY
    col_dq = np.sum(dqdt * mass, axis=0)
    np.testing.assert_allclose(-col_dq, prec, rtol=1e-9)


def test_stratiform_evaporation_moistens_dry_subcloud_layer():
    """Saturate aloft, keep the lowest layers dry: rain must evaporate there."""
    temp, q, p, dp = column(rh=0.2)
    qsat = saturation_mixing_ratio(temp, p)
    q[:3] = 1.3 * qsat[:3]           # supersaturate upper layers only
    dtdt, dqdt, prec = stratiform_tendencies(temp, q, p, dp, dt=1800.0)
    # Subcloud layers (below index 3) gain moisture and cool.
    assert np.any(dqdt[3:] > 0.0)
    assert np.any(dtdt[3:] < 0.0)
    # Evaporation must reduce surface precipitation below the no-evaporation case.
    from repro.atmosphere.physics.stratiform import StratiformParams
    _, _, prec_noevap = stratiform_tendencies(
        temp, q, p, dp, dt=1800.0, params=StratiformParams(evap_efficiency=0.0))
    assert np.all(prec < prec_noevap)


# ------------------------------------------------------------- tridiagonal
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 9999), L=st.integers(2, 12))
def test_tridiagonal_matches_dense_solve(seed, L):
    rng = np.random.default_rng(seed)
    lower = rng.normal(size=(L, 1)) * 0.3
    upper = rng.normal(size=(L, 1)) * 0.3
    diag = rng.normal(size=(L, 1)) + np.sign(rng.normal(size=(L, 1))) * 3.0
    rhs = rng.normal(size=(L, 1))
    x = solve_tridiagonal(lower, diag, upper, rhs)
    A = np.diag(diag[:, 0]) + np.diag(lower[1:, 0], -1) + np.diag(upper[:-1, 0], 1)
    np.testing.assert_allclose(x[:, 0], np.linalg.solve(A, rhs[:, 0]), rtol=1e-8)


def test_diffusion_conserves_column_integral():
    """Zero-flux diffusion preserves the (thickness-weighted) column mean
    on a uniform grid."""
    L = 10
    z = np.linspace(9000.0, 100.0, L)[:, None, None] * np.ones((1, 1, 1))
    rng = np.random.default_rng(1)
    field = rng.normal(size=(L, 1, 1)) + 280.0
    k_half = np.full((L - 1, 1, 1), 50.0)
    out = diffuse_column(field, k_half, z, dt=1800.0)
    np.testing.assert_allclose(out.sum(), field.sum(), rtol=1e-10)


def test_diffusion_smooths_profile():
    L = 10
    z = np.linspace(9000.0, 100.0, L)[:, None, None]
    field = np.zeros((L, 1, 1))
    field[5] = 10.0
    k_half = np.full((L - 1, 1, 1), 80.0)
    out = field
    for _ in range(50):
        out = diffuse_column(out, k_half, z, dt=1800.0)
    assert out.max() < 5.0
    assert out.min() > -1e-10


def test_surface_flux_injection_heats_lowest_layer():
    L = 6
    z = np.linspace(5000.0, 50.0, L)[:, None, None]
    field = np.full((L, 1, 1), 280.0)
    k_half = np.full((L - 1, 1, 1), 0.1)  # almost no mixing
    rho = np.full((L, 1, 1), 1.2)
    out = diffuse_column(field, k_half, z, dt=600.0,
                         surface_flux=np.full((1, 1), 100.0 / CP), rho=rho)
    assert out[-1, 0, 0] > 280.0
    assert abs(out[0, 0, 0] - 280.0) < 1e-6


# ------------------------------------------------------------- PBL height
def test_pbl_height_shallow_when_strongly_stable():
    L = 8
    z = np.linspace(8000.0, 60.0, L)[:, None, None] * np.ones((1, 2, 2))
    theta = 290.0 + np.linspace(40.0, 0.0, L)[:, None, None] * np.ones((1, 2, 2))
    u = np.zeros((L, 2, 2))
    h = diagnose_pbl_height(theta, u, u, z)
    assert np.all(h <= 1500.0)


def test_pbl_height_deep_when_well_mixed():
    L = 8
    z = np.linspace(8000.0, 60.0, L)[:, None, None] * np.ones((1, 2, 2))
    theta = np.full((L, 2, 2), 300.0)       # neutral: Ri never exceeds Ric
    u = np.zeros((L, 2, 2))
    p = BoundaryLayerParams()
    h = diagnose_pbl_height(theta, u, u, z, p)
    np.testing.assert_allclose(h, p.max_pbl_height)


def test_kprofile_zero_outside_pbl():
    p = BoundaryLayerParams()
    z = np.array([100.0, 500.0, 2000.0])
    k = kprofile_diffusivity(z, np.full(3, 1000.0), np.full(3, 0.3), p)
    assert k[2] == pytest.approx(p.k_background)
    assert k[0] > p.k_background


# ------------------------------------------------------------- surface fluxes
def test_bulk_richardson_sign():
    t_air = np.array([280.0])
    wind = np.array([5.0])
    assert bulk_richardson(t_air, np.array([290.0]), wind, 60.0) < 0  # unstable
    assert bulk_richardson(t_air, np.array([270.0]), wind, 60.0) > 0  # stable


def test_stability_function_enhances_unstable():
    p = SurfaceFluxParams()
    assert stability_function(np.array([-1.0]), p) > 1.0
    assert stability_function(np.array([1.0]), p) < 1.0
    assert stability_function(np.array([0.0]), p) == pytest.approx(1.0)


def test_neutral_coefficient_increases_with_roughness():
    c_smooth = neutral_coefficient(np.array([1e-4]), 60.0)
    c_rough = neutral_coefficient(np.array([0.1]), 60.0)
    assert c_rough > c_smooth
    assert 1e-4 < c_smooth < 1e-2


def test_ocean_roughness_grows_with_wind():
    rib = np.zeros(3)
    z0 = ocean_roughness(np.array([2.0, 10.0, 25.0]), rib)
    assert z0[0] < z0[1] < z0[2]


def test_fluxes_warm_ocean_cold_air():
    """Cold air over warm water: upward sensible and latent heat."""
    shape = (3,)
    out = ocean_fluxes(np.full(shape, 280.0), np.full(shape, 0.004),
                       np.full(shape, 8.0), np.zeros(shape),
                       np.full(shape, 1.0e5), np.full(shape, 295.0))
    assert np.all(out["shf"] > 0.0)
    assert np.all(out["lhf"] > 0.0)
    assert np.all(out["evap"] > 0.0)
    assert np.all(out["ustar"] > 0.0)


def test_fluxes_stable_regime_suppressed():
    """Warm air over cold water transfers much less heat."""
    shape = (1,)
    warm_over_cold = ocean_fluxes(np.full(shape, 300.0), np.full(shape, 0.01),
                                  np.full(shape, 8.0), np.zeros(shape),
                                  np.full(shape, 1.0e5), np.full(shape, 285.0))
    cold_over_warm = ocean_fluxes(np.full(shape, 285.0), np.full(shape, 0.005),
                                  np.full(shape, 8.0), np.zeros(shape),
                                  np.full(shape, 1.0e5), np.full(shape, 300.0))
    assert abs(warm_over_cold["shf"][0]) < abs(cold_over_warm["shf"][0])


def test_wetness_scales_evaporation():
    shape = (1,)
    args = (np.full(shape, 285.0), np.full(shape, 0.004), np.full(shape, 6.0),
            np.zeros(shape), np.full(shape, 1.0e5), np.full(shape, 295.0),
            np.full(shape, 1e-3))
    dry = bulk_fluxes(*args, np.full(shape, 0.25))
    wet = bulk_fluxes(*args, np.full(shape, 1.0))
    assert wet["evap"][0] == pytest.approx(4.0 * dry["evap"][0])


def test_stress_opposes_wind():
    shape = (1,)
    out = ocean_fluxes(np.full(shape, 288.0), np.full(shape, 0.008),
                       np.full(shape, -7.0), np.full(shape, 3.0),
                       np.full(shape, 1.0e5), np.full(shape, 289.0))
    assert out["taux"][0] < 0.0 and out["tauy"][0] > 0.0
