"""Fused kernel plans: bitwise regression against the unfused oracles.

The fused spectral kernels (``repro.backend.kernels``) must be bitwise
identical on the numpy float64 path to the seed-era unfused formulation —
the same pinning discipline ``legendre_plan`` uses against its per-m
reference loop.  Covers serial (2-D) and batched (nlev, nens=3) inputs on
both truncation kinds, the FOAM_FUSED=0 fallback, the fused elementwise
chains, and backend-parametrized transform round-trips that skip cleanly
when torch is not installed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.backend import (
    BackendUnavailableError,
    fused_enabled,
    get_backend,
    get_workspace,
    robert_filter,
)
from repro.backend import kernels as K

NLAT, NLON, MMAX = 24, 48, 10
L, E = 3, 3


def _bitwise(a, b) -> bool:
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.dtype == b.dtype and a.shape == b.shape \
        and a.tobytes() == b.tobytes()


@pytest.fixture(params=["rhomboidal", "triangular"])
def tr(request):
    # The bitwise contract is a numpy-float64 contract: pin the backend so
    # these tests don't float with a FOAM_BACKEND=torch CI environment.
    return SpectralTransform(NLAT, NLON, Truncation(MMAX, request.param),
                             backend="numpy")


@pytest.fixture()
def fields(tr):
    rng = np.random.default_rng(42)
    spec = (rng.normal(size=(L, E) + tr.spec_shape)
            + 1j * rng.normal(size=(L, E) + tr.spec_shape))
    spec[..., 0, :] = spec[..., 0, :].real   # m=0 of a real field is real
    spec *= tr._mask
    grid = rng.normal(size=(L, E, tr.nlat, tr.nlon))
    u = rng.normal(size=(L, E, tr.nlat, tr.nlon))
    v = rng.normal(size=(L, E, tr.nlat, tr.nlon))
    return spec, grid, u, v


# ---------------------------------------------------------------------------
# fused == unfused oracle, bitwise, serial and batched
# ---------------------------------------------------------------------------
class TestFusedBitwise:
    def test_analyze(self, tr, fields):
        _, grid, _, _ = fields
        batched = tr.analyze(grid)
        serial = tr.analyze(grid[0, 0])
        ref = K.analyze_ref(tr, grid[0, 0])
        assert _bitwise(serial, ref)
        for l in range(L):
            for e in range(E):
                assert _bitwise(batched[l, e], K.analyze_ref(tr, grid[l, e]))

    def test_synthesize(self, tr, fields):
        spec, _, _, _ = fields
        batched = tr.synthesize(spec)
        assert _bitwise(tr.synthesize(spec[0, 0]),
                        K.synthesize_ref(tr, spec[0, 0]))
        for l in range(L):
            for e in range(E):
                assert _bitwise(batched[l, e],
                                K.synthesize_ref(tr, spec[l, e]))

    def test_synthesize_many(self, tr, fields):
        spec, _, _, _ = fields
        a, b, c = spec, spec * 2.0, spec * 0.5
        ga, gb, gc = tr.synthesize_many(a, b, c)
        for got, src in ((ga, a), (gb, b), (gc, c)):
            for l in range(L):
                for e in range(E):
                    assert _bitwise(got[l, e], K.synthesize_ref(tr, src[l, e]))

    def test_uv_from_vortdiv(self, tr, fields):
        spec, _, _, _ = fields
        vs, ds = spec, spec * 0.3
        bu, bv = tr.uv_from_vortdiv(vs, ds)
        su, sv = tr.uv_from_vortdiv(vs[0, 0], ds[0, 0])
        ru, rv = K.uv_from_vortdiv_ref(tr, vs[0, 0], ds[0, 0])
        assert _bitwise(su, ru) and _bitwise(sv, rv)
        for l in range(L):
            for e in range(E):
                ru, rv = K.uv_from_vortdiv_ref(tr, vs[l, e], ds[l, e])
                assert _bitwise(bu[l, e], ru) and _bitwise(bv[l, e], rv)

    def test_vortdiv_from_uv(self, tr, fields):
        _, _, u, v = fields
        bz, bd = tr.vortdiv_from_uv(u, v)
        for l in range(L):
            for e in range(E):
                rz, rd = K.vortdiv_from_uv_ref(tr, u[l, e], v[l, e])
                assert _bitwise(bz[l, e], rz) and _bitwise(bd[l, e], rd)

    def test_gradient(self, tr, fields):
        spec, _, _, _ = fields
        bx, by = tr.gradient(spec)
        for l in range(L):
            for e in range(E):
                rx, ry = K.gradient_ref(tr, spec[l, e])
                assert _bitwise(bx[l, e], rx) and _bitwise(by[l, e], ry)

    def test_roundtrip_identity(self, tr, fields):
        spec, _, _, _ = fields
        back = tr.analyze(tr.synthesize(spec))
        assert np.allclose(back, spec, atol=1e-12)


# ---------------------------------------------------------------------------
# FOAM_FUSED=0 fallback == fused path, bitwise
# ---------------------------------------------------------------------------
class TestFusedToggle:
    def test_env_toggle(self, monkeypatch):
        assert fused_enabled()
        monkeypatch.setenv("FOAM_FUSED", "0")
        assert not fused_enabled()
        monkeypatch.setenv("FOAM_FUSED", "off")
        assert not fused_enabled()
        monkeypatch.setenv("FOAM_FUSED", "1")
        assert fused_enabled()

    def test_unfused_path_bitwise_equal(self, tr, fields, monkeypatch):
        spec, grid, u, v = fields
        fused = (tr.analyze(grid), tr.synthesize(spec),
                 *tr.uv_from_vortdiv(spec, spec * 0.3),
                 *tr.vortdiv_from_uv(u, v), *tr.gradient(spec),
                 *tr.synthesize_many(spec, spec * 2.0))
        monkeypatch.setenv("FOAM_FUSED", "0")
        unfused = (tr.analyze(grid), tr.synthesize(spec),
                   *tr.uv_from_vortdiv(spec, spec * 0.3),
                   *tr.vortdiv_from_uv(u, v), *tr.gradient(spec),
                   *tr.synthesize_many(spec, spec * 2.0))
        for f, n in zip(fused, unfused):
            assert _bitwise(f, n)


# ---------------------------------------------------------------------------
# fused elementwise chains
# ---------------------------------------------------------------------------
class TestElementwiseChains:
    def test_robert_filter_scalar(self):
        rng = np.random.default_rng(3)
        prev = rng.normal(size=(L, 8, 8)) + 1j * rng.normal(size=(L, 8, 8))
        curr = rng.normal(size=(L, 8, 8)) + 1j * rng.normal(size=(L, 8, 8))
        new = rng.normal(size=(L, 8, 8)) + 1j * rng.normal(size=(L, 8, 8))
        filt = 0.04
        got = robert_filter(prev, curr, new, filt, name="test.rob")
        want = curr + filt * (prev - 2 * curr + new)
        assert _bitwise(got, want)

    def test_robert_filter_per_member(self):
        rng = np.random.default_rng(4)
        shape = (L, E, 8, 8)
        prev, curr, new = (rng.normal(size=shape) for _ in range(3))
        filt = np.array([0.02, 0.04, 0.08]).reshape(E, 1, 1)
        got = robert_filter(prev, curr, new, filt, name="test.rob.mem")
        want = curr + filt * (prev - 2 * curr + new)
        assert _bitwise(got, want)

    def test_pp_viscosity_matches_expression(self):
        from repro.ocean.mixing import PPMixingParams, pp_viscosity
        rng = np.random.default_rng(5)
        ri = rng.normal(loc=1.0, scale=2.0, size=(4, 6, 6))
        p = PPMixingParams()
        nu, kappa = pp_viscosity(ri, p)
        ri_c = np.clip(ri, 0.0, p.ri_max)
        denom = 1.0 + p.alpha * ri_c
        nu_ref = p.nu0 / denom**p.exponent + p.nu_background
        kap_ref = (p.nu0 / denom**p.exponent) / denom + p.kappa_background
        unstable = ri < 0.0
        assert _bitwise(nu, np.where(unstable, p.convective_kappa, nu_ref))
        assert _bitwise(kappa, np.where(unstable, p.convective_kappa, kap_ref))

    def test_richardson_matches_expression(self):
        from repro.ocean.mixing import richardson_number
        rng = np.random.default_rng(6)
        u, v = rng.normal(size=(2, 5, 6, 6))
        n_sq = rng.normal(size=(4, 6, 6)) ** 2
        z = -np.cumsum(np.ones(5) * 10.0)
        got = richardson_number(u, v, n_sq, z)
        dz = (z[1:] - z[:-1]).reshape(-1, 1, 1)
        du = (u[1:] - u[:-1]) / dz
        dv = (v[1:] - v[:-1]) / dz
        want = n_sq / (du * du + dv * dv + 1e-10)
        assert _bitwise(got, want)

    def test_zeros_once_keeps_tail(self):
        ws = get_workspace()
        buf = ws.zeros_once("test.zeros_once", (4, 4), np.float64)
        assert np.all(buf == 0.0)
        buf[0] = 7.0
        again = ws.zeros_once("test.zeros_once", (4, 4), np.float64)
        assert again is buf
        assert np.all(again[0] == 7.0)       # hits do NOT re-zero
        assert np.all(again[1:] == 0.0)      # untouched region stays zero


# ---------------------------------------------------------------------------
# batched ensemble diagnostics == per-member serial metrics
# ---------------------------------------------------------------------------
def test_ensemble_member_metrics_match_serial():
    from repro.core import EnsembleConfig, FoamEnsemble, test_config
    from repro.scenarios.climatology import (
        ensemble_member_metrics, state_metrics,
    )

    cfg = test_config()
    cfg.backend = "numpy"      # metric-consistency check pins the numpy path
    ens = FoamEnsemble(EnsembleConfig(nens=3, base=cfg,
                                      ic_perturbation=1e-7))
    state = ens.initial_state()
    for _ in range(4):
        state = ens.step(state)
    batched = ensemble_member_metrics(ens.model, state)
    assert len(batched) == 3
    for e, got in enumerate(batched):
        want = state_metrics(ens.model, ens.member_state(state, e))
        assert set(got) == set(want)
        for key in want:
            assert got[key] == pytest.approx(want[key], rel=1e-10), (
                f"member {e} metric {key}")


# ---------------------------------------------------------------------------
# backend-parametrized round trips (torch skips cleanly when absent)
# ---------------------------------------------------------------------------
def _backend_or_skip(name: str):
    try:
        return get_backend(name)
    except BackendUnavailableError:
        pytest.skip(f"{name} not installed")


@pytest.mark.parametrize("backend", ["numpy", "torch"])
class TestBackendRoundTrip:
    def test_transform_roundtrip(self, backend):
        bk = _backend_or_skip(backend)
        tr = SpectralTransform(NLAT, NLON, Truncation(MMAX), backend=bk)
        rng = np.random.default_rng(11)
        spec = (rng.normal(size=(L,) + tr.spec_shape)
                + 1j * rng.normal(size=(L,) + tr.spec_shape))
        spec[:, 0, :] = spec[:, 0, :].real   # m=0 of a real field is real
        spec = spec * tr._mask
        grid = tr.synthesize(spec)
        assert isinstance(grid, np.ndarray)
        back = tr.analyze(grid)
        assert np.allclose(back, spec, atol=1e-10)

    def test_winds_roundtrip(self, backend):
        bk = _backend_or_skip(backend)
        tr = SpectralTransform(NLAT, NLON, Truncation(MMAX), backend=bk)
        rng = np.random.default_rng(12)
        vs = (rng.normal(size=(L,) + tr.spec_shape)
              + 1j * rng.normal(size=(L,) + tr.spec_shape))
        vs[:, 0, :] = vs[:, 0, :].real       # m=0 of a real field is real
        vs = vs * tr._mask
        # Zero the (0,0) mode: uv_from_vortdiv cannot represent it.
        vs[:, 0, 0] = 0.0
        ds = vs * 0.5
        u, v = tr.uv_from_vortdiv(vs, ds)
        vz, dz = tr.vortdiv_from_uv(u, v)
        assert np.allclose(vz, vs, atol=1e-8)
        assert np.allclose(dz, ds, atol=1e-8)

    def test_matches_numpy_backend(self, backend):
        if backend == "numpy":
            pytest.skip("self-comparison")
        bk = _backend_or_skip(backend)
        tr_np = SpectralTransform(NLAT, NLON, Truncation(MMAX),
                                  backend="numpy")
        tr_bk = SpectralTransform(NLAT, NLON, Truncation(MMAX), backend=bk)
        rng = np.random.default_rng(13)
        grid = rng.normal(size=(L, tr_np.nlat, tr_np.nlon))
        assert np.allclose(tr_bk.analyze(grid), tr_np.analyze(grid),
                           rtol=1e-12, atol=1e-14)
        spec = tr_np.analyze(grid)
        assert np.allclose(tr_bk.synthesize(spec), tr_np.synthesize(spec),
                           rtol=1e-12, atol=1e-12)


def test_torch_coupled_day_matches_numpy():
    """A full coupled day under FOAM_BACKEND=torch agrees with numpy.

    Tolerance-gated (torch contractions accumulate in different orders, so
    bitwise equality is not expected); skipped when torch is missing.
    """
    try:
        get_backend("torch")
    except BackendUnavailableError:
        pytest.skip("torch not installed")
    from repro.core.config import test_config
    from repro.core.foam import FoamModel

    results = {}
    for backend in ("numpy", "torch"):
        cfg = test_config()
        cfg.backend = backend
        model = FoamModel(cfg)
        state = model.initial_state(seed=3)
        state = model.run_days(state, 1)
        results[backend] = state
    a, b = results["numpy"], results["torch"]
    assert np.allclose(b.atm_curr.temp, a.atm_curr.temp, rtol=1e-9, atol=1e-9)
    assert np.allclose(b.atm_curr.vort, a.atm_curr.vort, rtol=1e-9, atol=1e-12)
    assert np.allclose(b.ocean.temp, a.ocean.temp, rtol=1e-9, atol=1e-9)
    assert np.allclose(b.atm_curr.q, a.atm_curr.q, rtol=1e-7, atol=1e-12)
