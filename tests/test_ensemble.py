"""Batched ensemble execution (repro.core.ensemble).

The load-bearing guarantee: a zero-perturbation batch of N members is
bitwise float64-identical, member for member, to N independent serial runs
— batching is a pure throughput optimization, never a trajectory change.
"""

import numpy as np
import pytest

from repro.backend import workspace_totals
from repro.core import (EnsembleConfig, FoamEnsemble, FoamModel, member_state,
                        stack_members)
from repro.core import test_config as _test_config
from repro.core.ensemble import promote_member_values

NENS = 3
STEPS = 3


def _serial_run(cfg, steps, seed=None):
    model = FoamModel(cfg)
    state = model.initial_state(seed=seed)
    for _ in range(steps):
        state = model.coupled_step(state)
    return model, state


def _state_pairs(a, b):
    yield "vort", a.atm_curr.vort, b.atm_curr.vort
    yield "div", a.atm_curr.div, b.atm_curr.div
    yield "temp", a.atm_curr.temp, b.atm_curr.temp
    yield "lnps", a.atm_curr.lnps, b.atm_curr.lnps
    yield "q", a.atm_curr.q, b.atm_curr.q
    yield "prev_vort", a.atm_prev.vort, b.atm_prev.vort
    yield "ocn_u", a.ocean.u, b.ocean.u
    yield "ocn_v", a.ocean.v, b.ocean.v
    yield "otemp", a.ocean.temp, b.ocean.temp
    yield "osalt", a.ocean.salt, b.ocean.salt
    yield "eta", a.ocean.eta, b.ocean.eta
    yield "ubar", a.ocean.ubar, b.ocean.ubar
    yield "vbar", a.ocean.vbar, b.ocean.vbar
    yield "soil_temp", a.coupler.land.soil_temp, b.coupler.land.soil_temp
    yield ("soil_moisture", a.coupler.hydrology.soil_moisture,
           b.coupler.hydrology.soil_moisture)
    yield "snow", a.coupler.hydrology.snow_depth, b.coupler.hydrology.snow_depth
    yield "ice", a.coupler.ice.thickness, b.coupler.ice.thickness
    yield "river", a.coupler.river_volume, b.coupler.river_volume


def _assert_member_bitwise(extracted, serial, member):
    for item in _state_pairs(extracted, serial):
        name, got, want = item
        assert np.array_equal(got, want), (
            f"member {member}: {name} differs, "
            f"max|diff|={np.max(np.abs(np.asarray(got) - np.asarray(want)))}")


class TestPromotion:
    def test_scalar_stays_python_float(self):
        assert promote_member_values(0.04, 4, np.float64) == 0.04
        v = promote_member_values(np.float64(0.04), 4, np.float32)
        assert isinstance(v, float)
        v = promote_member_values(np.array(0.04), 4, np.float32)
        assert isinstance(v, float)            # 0-d arrays collapse too

    def test_sequence_promotes_to_broadcast_array(self):
        arr = promote_member_values([1.0, 2.0, 3.0], 3, np.float32)
        assert arr.shape == (3, 1, 1) and arr.dtype == np.float32
        field = np.zeros((5, 3, 8, 8), dtype=np.float32)
        assert (arr * field).dtype == np.float32   # no upcast

    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            promote_member_values([1.0, 2.0], 4, np.float64)


class TestBitwiseEquivalence:
    def test_zero_perturbation_matches_serial(self):
        """N identical members batched == N serial runs, bit for bit."""
        cfg = _test_config()
        cfg.dtype = "float64"
        ens = FoamEnsemble(EnsembleConfig(nens=NENS, base=cfg))
        bstate = ens.initial_state()
        assert bstate.atm_curr.vort.shape[1] == NENS
        for _ in range(STEPS):
            bstate = ens.step(bstate)

        scfg = _test_config()
        scfg.dtype = "float64"
        _, sstate = _serial_run(scfg, STEPS)
        for e in range(NENS):
            _assert_member_bitwise(ens.member_state(bstate, e), sstate, e)

    def test_per_member_knobs_match_serial(self):
        """Per-member Robert filters / SST clamps reproduce each member's
        standalone run (built from ``member_config``) bitwise."""
        cfg = _test_config()
        cfg.dtype = "float64"
        ens = FoamEnsemble(EnsembleConfig(
            nens=NENS, base=cfg,
            robert_filter=[0.03, 0.04, 0.06],
            sst_clamp=[-1.92, -1.5, -1.0]))
        bstate = ens.initial_state()
        for _ in range(2):
            bstate = ens.step(bstate)

        for e in range(NENS):
            _, sstate = _serial_run(ens.member_config(e), 2)
            _assert_member_bitwise(ens.member_state(bstate, e), sstate, e)

    def test_stack_unstack_roundtrip(self):
        cfg = _test_config()
        model = FoamModel(cfg)
        states = [model.initial_state(seed=s) for s in (1, 2)]
        batched = stack_members(states)
        for e, want in enumerate(states):
            got = member_state(batched, e)
            _assert_member_bitwise(got, want, e)


class TestPerturbedEnsemble:
    def test_perturbed_members_diverge(self):
        ens = FoamEnsemble(EnsembleConfig(nens=2, base=_test_config(),
                                          ic_perturbation=1e-7))
        state = ens.initial_state()
        for _ in range(STEPS):
            state = ens.step(state)
        m0 = ens.member_state(state, 0)
        m1 = ens.member_state(state, 1)
        # Different noise realizations: trajectories must have separated.
        assert not np.array_equal(m0.atm_curr.vort, m1.atm_curr.vort)
        assert np.max(np.abs(m0.atm_curr.vort - m1.atm_curr.vort)) > 0
        # ... while every field stays finite.
        for name, a, _ in _state_pairs(m0, m1):
            assert np.all(np.isfinite(a)), f"{name} not finite"

    def test_zero_perturbation_members_identical(self):
        ens = FoamEnsemble(EnsembleConfig(nens=2, base=_test_config()))
        state = ens.initial_state()
        for _ in range(2):
            state = ens.step(state)
        m0 = ens.member_state(state, 0)
        m1 = ens.member_state(state, 1)
        for item in _state_pairs(m0, m1):
            name, a, b = item
            assert np.array_equal(a, b), f"members differ in {name}"


class TestWorkspaceReuse:
    def test_hit_rate_survives_ensemble_shapes(self):
        """Ensemble-shaped buffers miss once, then hit: the arena's >99%
        steady-state hit rate survives the member axis."""
        ens = FoamEnsemble(EnsembleConfig(nens=4, base=_test_config()))
        state = ens.initial_state()
        state = ens.step(state)          # warm the arena with batched shapes
        before = workspace_totals()
        for _ in range(3):
            state = ens.step(state)
        after = workspace_totals()
        hits = after["hits"] - before["hits"]
        misses = after["misses"] - before["misses"]
        assert hits > 0
        assert hits / (hits + misses) > 0.99, (hits, misses)


class TestFloat32Ensemble:
    def test_float32_batch_bounded_drift(self):
        """Mirrors test_backend.TestFloat32Integration for the batched path:
        same dtype guarantees, bounded conserved-quantity drift vs float64."""
        steps = 12

        def run(dtype):
            cfg = _test_config()
            cfg.dtype = dtype
            ens = FoamEnsemble(EnsembleConfig(nens=2, base=cfg))
            state = ens.initial_state()
            for _ in range(steps):
                state = ens.step(state)
            return ens, state

        ens64, s64 = run("float64")
        ens32, s32 = run("float32")

        assert s32.atm_curr.vort.dtype == np.complex64
        assert s32.atm_curr.q.dtype == np.float32
        assert s32.ocean.temp.dtype == np.float32
        assert s64.atm_curr.vort.dtype == np.complex128

        m64 = ens64.member_state(s64, 0)
        m32 = ens32.member_state(s32, 0)
        mass64 = ens64.model.dycore.global_mass(m64.atm_curr)
        mass32 = ens32.model.dycore.global_mass(m32.atm_curr)
        assert np.isfinite(mass32)
        assert abs(mass32 - mass64) / abs(mass64) < 1e-4

        e64 = ens64.model.dycore.total_energy(m64.atm_curr)
        e32 = ens32.model.dycore.total_energy(m32.atm_curr)
        assert np.isfinite(e32)
        assert abs(e32 - e64) / abs(e64) < 1e-3

        for arr in (s32.atm_curr.temp, s32.atm_curr.q, s32.ocean.temp,
                    s32.ocean.salt, s32.ocean.eta):
            assert np.all(np.isfinite(arr))

    def test_float32_per_member_knobs_keep_dtype(self):
        """Promoted per-member arrays carry the policy dtype: no silent
        upcast of complex64/float32 state through the Robert filter or the
        SST clamp."""
        cfg = _test_config()
        cfg.dtype = "float32"
        ens = FoamEnsemble(EnsembleConfig(
            nens=2, base=cfg, robert_filter=[0.03, 0.05],
            sst_clamp=[-1.92, -1.5]))
        assert ens.model.dycore.robert.dtype == np.float32
        assert ens.model.ocean.params.sst_clamp.dtype == np.float32
        state = ens.initial_state()
        state = ens.step(state)
        assert state.atm_curr.vort.dtype == np.complex64
        assert state.ocean.temp.dtype == np.float32


class TestEnsembleAPI:
    def test_kwargs_construction_and_defaults(self):
        """EnsembleConfig fields pass through **kwargs; base defaults to
        the test config."""
        ens = FoamEnsemble(nens=2, base=_test_config())
        assert ens.nens == 2
        default_base = FoamEnsemble(nens=1)
        assert (default_base.model.config.atm_nlat
                == _test_config().atm_nlat)

    def test_run_days_advances_all_members(self):
        ens = FoamEnsemble(EnsembleConfig(nens=2, base=_test_config()))
        state = ens.initial_state()
        dt = ens.model.config.atm_dt
        out = ens.run_days(state, 2 * dt / 86400.0)
        assert out.time == pytest.approx(state.time + 2 * dt)
        assert out.atm_curr.vort.shape[1] == 2

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="nens"):
            FoamEnsemble(EnsembleConfig(nens=0, base=_test_config()))
        with pytest.raises(ValueError, match="at least one"):
            stack_members([])
        ens = FoamEnsemble(EnsembleConfig(nens=2, base=_test_config()))
        state = ens.initial_state()
        with pytest.raises(IndexError):
            ens.member_state(state, 2)
