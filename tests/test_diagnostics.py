"""Tests for the climate diagnostics module."""

import numpy as np
import pytest

from repro.core.diagnostics import (
    equator_pole_gradient,
    ice_area,
    meridional_heat_transport,
    nino3_index,
    ocean_heat_content,
    surface_energy_balance,
)
from repro.util.constants import CP_SEAWATER, RHO_SEAWATER, STEFAN_BOLTZMANN


@pytest.fixture
def grid():
    lats = np.deg2rad(np.linspace(-80, 80, 20))
    lons = np.deg2rad(np.linspace(0, 342, 19))
    mask = np.ones((20, 19), dtype=bool)
    areas = np.cos(lats)[:, None] * np.ones((1, 19)) * 1e12
    return lats, lons, mask, areas


def test_nino3_box_selects_east_pacific(grid):
    lats, lons, mask, _ = grid
    sst = np.full((20, 19), 20.0)
    lat_d = np.degrees(lats)[:, None]
    lon_d = np.degrees(lons)[None, :]
    in_box = (np.abs(lat_d) <= 5) & (lon_d >= 210) & (lon_d <= 270)
    sst = np.where(in_box, 28.0, sst)
    assert nino3_index(sst, lats, lons, mask) == pytest.approx(28.0)


def test_nino3_raises_without_ocean(grid):
    lats, lons, _, _ = grid
    with pytest.raises(ValueError):
        nino3_index(np.zeros((20, 19)), lats, lons,
                    np.zeros((20, 19), dtype=bool))


def test_ice_area_counts_only_ice(grid):
    _, _, _, areas = grid
    ice = np.zeros((20, 19), dtype=bool)
    ice[-2:, :] = True
    a = ice_area(ice, areas)
    assert a == pytest.approx(areas[-2:, :].sum())


def test_ocean_heat_content_scales_linearly(grid):
    _, _, _, areas = grid
    dz3d = np.ones((4, 20, 19)) * 100.0
    t1 = np.full((4, 20, 19), 1.0)
    ohc = ocean_heat_content(t1, dz3d, areas)
    expect = RHO_SEAWATER * CP_SEAWATER * np.sum(dz3d * areas[None])
    assert ohc == pytest.approx(expect)
    assert ocean_heat_content(2 * t1, dz3d, areas) == pytest.approx(2 * ohc)


def test_meridional_transport_poleward_for_tropical_heating(grid):
    lats, _, mask, areas = grid
    # Heat in at the tropics, out at the poles, zero net.
    lat_d = np.degrees(lats)[:, None]
    flux = np.where(np.abs(lat_d) < 30, 50.0, -37.0) * np.ones((1, 19))
    row = np.sum(flux * areas, axis=1)
    flux = flux - row.sum() / areas.sum()   # close the budget exactly
    t = meridional_heat_transport(flux, lats, areas, mask)
    assert t[0] == pytest.approx(0.0)
    assert abs(t[-1]) < 1e-3 * np.abs(t).max()
    # Northward transport positive in the NH subtropics, negative in the SH.
    mid = len(t) // 2
    assert t[mid + 3] > 0
    assert t[mid - 3] < 0


def test_surface_energy_balance_bookkeeping():
    w = np.full((2, 2), 0.25)
    t_sfc = np.full((2, 2), 288.0)
    fluxes = {
        "sw_sfc": np.full((2, 2), 160.0),
        "lw_down": np.full((2, 2), 340.0),
        "shf": np.full((2, 2), 20.0),
        "lhf": np.full((2, 2), 80.0),
    }
    out = surface_energy_balance(fluxes, t_sfc, w)
    lw_up = STEFAN_BOLTZMANN * 288.0**4
    assert out["lw_net_up"] == pytest.approx(lw_up - 340.0)
    assert out["net_into_surface"] == pytest.approx(
        160.0 - (lw_up - 340.0) - 20.0 - 80.0)


def test_equator_pole_gradient(grid):
    lats, _, mask, _ = grid
    lat_d = np.degrees(lats)[:, None]
    sst = (28.0 * np.cos(np.deg2rad(lat_d)) ** 2) * np.ones((1, 19))
    g = equator_pole_gradient(sst, lats, mask)
    assert 15.0 < g < 28.0


def test_diagnostics_on_real_coupled_state():
    """Integration: all diagnostics run on genuine model output."""
    from repro.core import FoamModel
    from repro.core import test_config as tiny_config

    model = FoamModel(tiny_config())
    state = model.run_days(model.initial_state(), 1.0)
    g = model.ocean_grid
    sst = model.ocean.sst(state.ocean)
    areas = g.cell_areas()
    assert np.isfinite(nino3_index(sst, g.lats, g.lons, model.ocean.mask2d))
    assert ice_area(state.coupler.ice.mask, areas) >= 0.0
    ohc = ocean_heat_content(state.ocean.temp, model.ocean.dz3d, areas)
    assert ohc > 0
    grad = equator_pole_gradient(sst, g.lats, model.ocean.mask2d)
    assert grad > 5.0
