"""Tests for the ocean grid, topography generator, and equation of state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ocean import (
    OceanGrid,
    aquaplanet_topography,
    density,
    density_anomaly,
    mercator_latitudes,
    stretched_depths,
    thermal_expansion,
    world_topography,
)
from repro.ocean.eos import buoyancy_frequency_sq
from repro.util.constants import RHO_SEAWATER


# ------------------------------------------------------------- Mercator grid
def test_mercator_latitudes_symmetric_and_bounded():
    lats = mercator_latitudes(64, lat_max_deg=72.0)
    np.testing.assert_allclose(lats, -lats[::-1], atol=1e-14)
    assert np.degrees(lats).max() == pytest.approx(72.0)


def test_mercator_property_constant_aspect_ratio():
    """The defining Mercator property: dx/dy is the same at every latitude
    (the grid is conformal — locally the same shape everywhere)."""
    g = OceanGrid(nx=64, ny=64)
    ratio = g.dx[2:-2] / g.dy[2:-2]
    np.testing.assert_allclose(ratio, ratio.mean(), rtol=0.02)


def test_grid_rejects_tiny():
    with pytest.raises(ValueError):
        OceanGrid(nx=2, ny=32)
    with pytest.raises(ValueError):
        mercator_latitudes(2)


def test_paper_resolution_is_about_1p4_by_2p8_degrees():
    """Paper: 128 x 128 Mercator ~ 1.4 deg lat x 2.8 deg lon."""
    g = OceanGrid(nx=128, ny=128)
    dlon = 360.0 / 128
    assert dlon == pytest.approx(2.8125)
    dlat_equator = np.degrees(np.diff(g.lats))[64]
    assert 1.0 < dlat_equator < 1.8


# ------------------------------------------------------------- depths
def test_stretched_depths_monotone_and_total():
    z = stretched_depths(16, total_depth=5000.0)
    assert z[0] == 0.0
    assert z[-1] == pytest.approx(5000.0)
    assert np.all(np.diff(z) > 0)
    # Surface-refined: first layer much thinner than last.
    assert (z[1] - z[0]) < 0.1 * (z[-1] - z[-2])


def test_stretched_depths_validation():
    with pytest.raises(ValueError):
        stretched_depths(1)
    with pytest.raises(ValueError):
        stretched_depths(10, total_depth=100.0, surface_layer=50.0)


# ------------------------------------------------------------- topography
@pytest.mark.parametrize("nx,ny", [(32, 32), (64, 64), (128, 128)])
def test_world_topography_basin_topology(nx, ny):
    """The generator guarantees the paper's hand-tuned basin topology."""
    g = OceanGrid(nx=nx, ny=ny)
    land, depth = world_topography(g)
    lat, lon = g.lat_degrees, g.lon_degrees

    def ocean_frac(lat_lo, lat_hi, lon_lo, lon_hi):
        jm = (lat >= lat_lo) & (lat <= lat_hi)
        im = (lon >= lon_lo) & (lon <= lon_hi)
        sub = ~land[np.ix_(jm, im)]
        return sub.mean() if sub.size else 1.0

    assert ocean_frac(-60, -50, 285, 305) > 0.9     # Drake Passage open
    assert ocean_frac(-15, 5, 60, 90) > 0.9         # Indian Ocean open
    assert ocean_frac(20, 40, 180, 220) > 0.9       # mid-Pacific open
    assert ocean_frac(-50, -45, 0, 360) > 0.8       # Southern Ocean ring
    # The continents exist.
    assert land.mean() > 0.15
    assert ocean_frac(30, 60, 245, 280) < 0.3       # North America solid
    # Depth is zero exactly on land, positive elsewhere.
    assert np.all(depth[land] == 0.0)
    assert np.all(depth[~land] > 0.0)


def test_world_topography_has_shelves():
    g = OceanGrid(nx=64, ny=64)
    land, depth = world_topography(g)
    vals = np.unique(depth[~land])
    assert len(vals) >= 2          # shelf + deep at least
    assert vals.min() < 0.5 * vals.max()


def test_aquaplanet_all_ocean():
    g = OceanGrid(nx=16, ny=16, nlev=4)
    land, depth = aquaplanet_topography(g)
    assert not land.any()
    assert np.all(depth > 0)


# ------------------------------------------------------------- EOS
def test_density_reference_point():
    assert density_anomaly(10.0, 35.0, 0.0) == pytest.approx(0.0)
    assert density(10.0, 35.0) == pytest.approx(RHO_SEAWATER)


def test_density_decreases_with_temperature():
    t = np.linspace(-2, 30, 50)
    rho = density_anomaly(t, 35.0)
    assert np.all(np.diff(rho) < 0)


def test_density_increases_with_salinity_and_depth():
    assert density_anomaly(10.0, 36.0) > density_anomaly(10.0, 35.0)
    assert density_anomaly(10.0, 35.0, 4000.0) > density_anomaly(10.0, 35.0, 0.0)


def test_thermal_expansion_grows_with_temperature():
    """The EOS nonlinearity: warm water expands more per degree."""
    assert thermal_expansion(25.0) > thermal_expansion(5.0)


@settings(max_examples=50, deadline=None)
@given(t=st.floats(-2.0, 32.0), s=st.floats(30.0, 40.0))
def test_density_in_oceanographic_range(t, s):
    rho = density(t, s)
    assert 1015.0 < rho < 1035.0


def test_buoyancy_frequency_positive_for_stable_column():
    z = np.array([10.0, 50.0, 200.0, 1000.0])
    temp = np.array([20.0, 15.0, 8.0, 3.0])[:, None]
    salt = np.full((4, 1), 35.0)
    n2 = buoyancy_frequency_sq(temp, salt, z)
    assert np.all(n2 > 0)


def test_buoyancy_frequency_negative_when_inverted():
    z = np.array([10.0, 50.0])
    temp = np.array([[5.0], [20.0]])  # warm below cold: unstable
    salt = np.full((2, 1), 35.0)
    n2 = buoyancy_frequency_sq(temp, salt, z)
    assert np.all(n2 < 0)
