"""Integration test of the full physics suite driver."""

import numpy as np
import pytest

from repro.atmosphere.physics import PhysicsSuite, SurfaceState
from repro.util.constants import SECONDS_PER_DAY
from repro.util.thermo import saturation_mixing_ratio


@pytest.fixture
def setup():
    L, nlat, nlon = 8, 6, 8
    lats = np.deg2rad(np.linspace(-75, 75, nlat))
    lons = np.linspace(0, 2 * np.pi, nlon, endpoint=False)
    sigma_half = np.linspace(0.0, 1.0, L + 1)
    dsigma = np.diff(sigma_half)
    sigma = 0.5 * (sigma_half[:-1] + sigma_half[1:])
    ps = np.full((nlat, nlon), 1.0e5)
    pressure = sigma[:, None, None] * ps[None]
    shape = (L, nlat, nlon)
    temp = np.broadcast_to(288.0 - 55.0 * (1.0 - sigma[:, None, None]), shape).copy()
    q = 0.6 * saturation_mixing_ratio(temp, pressure)
    u = np.full(shape, 5.0)
    v = np.zeros(shape)
    geop = np.zeros(shape)
    for l in range(L - 2, -1, -1):
        geop[l] = geop[l + 1] + 287.0 * temp[l] * np.log(pressure[l + 1] / pressure[l])
    surface = SurfaceState(
        t_sfc=np.full((nlat, nlon), 290.0),
        albedo=np.full((nlat, nlon), 0.1),
        wetness=np.ones((nlat, nlon)),
        z0=np.full((nlat, nlon), 1e-3),
        ocean_mask=np.ones((nlat, nlon), dtype=bool))
    return dict(temp=temp, q=q, u=u, v=v, pressure=pressure, ps=ps,
                geopotential=geop, dsigma=dsigma, surface=surface,
                lats=lats, lons=lons)


def test_driver_produces_finite_tendencies(setup):
    suite = PhysicsSuite()
    out = suite.compute(dt=1800.0, time=0.0, **setup)
    for arr in (out.dtdt, out.dqdt, out.dudt, out.dvdt):
        assert np.all(np.isfinite(arr))
    assert np.all(out.precip_conv >= 0.0)
    assert np.all(out.precip_strat >= 0.0)
    assert "olr" in out.fluxes and np.all(out.fluxes["olr"] > 50.0)


def test_driver_radiation_cadence(setup):
    """Radiation runs twice per day: cached between radiation steps."""
    suite = PhysicsSuite()
    assert suite.radiation_due(0.0)
    suite.compute(dt=1800.0, time=0.0, **setup)
    assert not suite.radiation_due(1800.0)
    assert not suite.radiation_due(SECONDS_PER_DAY / 2 - 1800.0)
    assert suite.radiation_due(SECONDS_PER_DAY / 2)


def test_driver_external_fluxes_respected(setup):
    """When the coupler supplies fluxes, the internal bulk formulas are bypassed."""
    suite = PhysicsSuite()
    nlat, nlon = setup["ps"].shape
    zeros = np.zeros((nlat, nlon))
    ext = {"shf": zeros, "lhf": zeros, "evap": zeros,
           "taux": zeros, "tauy": zeros, "ustar": np.full((nlat, nlon), 0.1)}
    out = suite.compute(dt=1800.0, time=0.0, external_fluxes=ext, **setup)
    assert out.fluxes["shf"] is zeros


def test_driver_tendencies_bounded(setup):
    """One 30-minute step changes T by < 15 K anywhere (physics sanity)."""
    suite = PhysicsSuite()
    out = suite.compute(dt=1800.0, time=0.0, **setup)
    assert np.abs(out.dtdt * 1800.0).max() < 15.0
    q_new = setup["q"] + 1800.0 * out.dqdt
    assert q_new.min() > -1e-10
