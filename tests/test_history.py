"""Streaming history writer and versioned checkpoint format.

Covers the rolling-flush buffer bound, out-of-order multi-file loading,
field-set/shape/dtype consistency enforcement, the v2 checkpoint stamps
(config hash, run metadata, ``river_volume=None`` presence flag), legacy
v1 file compatibility, and a hypothesis round-trip property over dtypes,
shapes, and the batched member axis.
"""

import dataclasses
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import FoamConfig
from repro.core.config import test_config as _test_config
from repro.core.foam import FoamModel
from repro.core.history import (
    CHECKPOINT_FORMAT_VERSION,
    HistoryWriter,
    load_checkpoint,
    load_history,
    load_restart,
    save_restart,
)


@pytest.fixture(scope="module")
def model():
    return FoamModel(_test_config())


@pytest.fixture(scope="module")
def state(model):
    return model.initial_state()


# ----------------------------------------------------------------------
class TestHistoryWriter:
    def test_auto_flush_bounds_the_buffer(self, tmp_path):
        w = HistoryWriter(tmp_path, flush_every=3)
        paths = []
        for i in range(7):
            got = w.record(float(i), sst=np.full((2, 2), float(i)))
            if got is not None:
                paths.append(got)
            assert w.buffered_snapshots < 3
        assert len(paths) == 2                 # two full buffers rolled out
        assert w.buffered_snapshots == 1       # the 7th is still pending
        last = w.close()
        assert last is not None
        assert w.close() is None               # idempotent
        data = load_history(paths + [last])
        assert np.array_equal(data["time"], np.arange(7.0))

    def test_memory_accounting(self, tmp_path):
        w = HistoryWriter(tmp_path)
        w.record(0.0, sst=np.zeros((4, 4)))
        assert w.nbytes_buffered == 4 * 4 * 8
        assert w.snapshots_recorded == 1
        w.close()
        assert w.nbytes_buffered == 0
        assert w.bytes_written > 0

    def test_rejects_field_set_drift(self, tmp_path):
        w = HistoryWriter(tmp_path)
        w.record(0.0, sst=np.zeros(3))
        with pytest.raises(ValueError, match="inconsistent history fields"):
            w.record(1.0, sst=np.zeros(3), eta=np.zeros(3))
        with pytest.raises(ValueError, match="inconsistent history fields"):
            w.record(1.0, eta=np.zeros(3))

    def test_rejects_shape_and_dtype_drift(self, tmp_path):
        w = HistoryWriter(tmp_path)
        w.record(0.0, sst=np.zeros((3, 3)))
        with pytest.raises(ValueError, match="changed shape/dtype"):
            w.record(1.0, sst=np.zeros((4, 3)))
        with pytest.raises(ValueError, match="changed shape/dtype"):
            w.record(1.0, sst=np.zeros((3, 3), dtype=np.float32))

    def test_rejects_empty_snapshot_and_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            HistoryWriter(tmp_path, flush_every=0)
        w = HistoryWriter(tmp_path)
        with pytest.raises(ValueError, match="at least one field"):
            w.record(0.0)

    def test_numbering_continues_in_a_used_directory(self, tmp_path):
        # A resumed run streaming into the directory of its first leg must
        # append new files, not overwrite history_0000.npz.
        w1 = HistoryWriter(tmp_path)
        w1.record(0.0, sst=np.zeros(2))
        first = w1.close()
        w2 = HistoryWriter(tmp_path)
        w2.record(1.0, sst=np.ones(2))
        second = w2.close()
        assert first.name == "history_0000.npz"
        assert second.name == "history_0001.npz"
        data = load_history([first, second])
        assert np.array_equal(data["time"], [0.0, 1.0])


class TestLoadHistory:
    def _write(self, tmp_path, times, **fields):
        w = HistoryWriter(tmp_path)
        for i, t in enumerate(times):
            w.record(t, **{k: v[i] for k, v in fields.items()})
        return w.close()

    def test_out_of_order_files_sort_by_time(self, tmp_path):
        vals = np.arange(6.0).reshape(6, 1)
        p0 = self._write(tmp_path, [0.0, 1.0], sst=vals[:2])
        p1 = self._write(tmp_path, [2.0, 3.0], sst=vals[2:4])
        p2 = self._write(tmp_path, [4.0, 5.0], sst=vals[4:])
        data = load_history([p2, p0, p1])      # deliberately shuffled
        assert np.array_equal(data["time"], np.arange(6.0))
        assert np.array_equal(data["sst"], vals)

    def test_inconsistent_field_sets_raise(self, tmp_path):
        p0 = self._write(tmp_path / "a", [0.0], sst=np.zeros((1, 2)))
        p1 = self._write(tmp_path / "b", [1.0], eta=np.zeros((1, 2)))
        with pytest.raises(ValueError, match="inconsistent history files"):
            load_history([p0, p1])

    def test_empty_path_list_raises(self):
        with pytest.raises(ValueError, match="no history files"):
            load_history([])

    def test_single_path_accepted_bare(self, tmp_path):
        p = self._write(tmp_path, [0.0], sst=np.ones((1, 2)))
        data = load_history(p)
        assert data["sst"].shape == (1, 2)


# dtype/shape/member-axis round-trip property: whatever goes into the
# rolling writer comes back out of load_history bit-identical, in order,
# with dtype preserved — including a leading ensemble member axis.
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    dtype=st.sampled_from([np.float32, np.float64, np.int32, np.int64]),
    ny=st.integers(min_value=1, max_value=4),
    nx=st.integers(min_value=1, max_value=4),
    nens=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    nsnap=st.integers(min_value=1, max_value=7),
    flush_every=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_history_roundtrip_property(dtype, ny, nx, nens, nsnap,
                                    flush_every, seed):
    shape = (ny, nx) if nens is None else (nens, ny, nx)
    rng = np.random.default_rng(seed)
    snaps = [(rng.uniform(-1e6, 1e6, size=shape)).astype(dtype)
             for _ in range(nsnap)]
    with tempfile.TemporaryDirectory() as td:
        w = HistoryWriter(td, flush_every=flush_every)
        for i, snap in enumerate(snaps):
            w.record(float(i), field=snap)
        w.close()
        files = sorted(Path(td).glob("history_*.npz"))
        assert len(files) == (1 if flush_every is None
                              else -(-nsnap // flush_every))
        data = load_history(files)
    assert data["field"].dtype == dtype
    assert data["field"].shape == (nsnap, *shape)
    assert np.array_equal(data["field"], np.stack(snaps))
    assert np.array_equal(data["time"], np.arange(float(nsnap)))


# ----------------------------------------------------------------------
class TestCheckpointFormat:
    def test_river_volume_none_roundtrips_as_none(self, tmp_path, state):
        # v1 silently zero-filled a None river_volume; v2 stores a
        # presence flag instead.
        bare = dataclasses.replace(state,
                                   coupler=dataclasses.replace(
                                       state.coupler, river_volume=None))
        path = save_restart(tmp_path / "r.npz", bare)
        loaded = load_restart(path)
        assert loaded.coupler.river_volume is None

    def test_config_and_meta_stamps(self, tmp_path, state):
        cfg = _test_config()
        path = save_restart(tmp_path / "c.npz", state, config=cfg,
                            meta={"run_key": "abc", "nens": 1})
        loaded, meta = load_checkpoint(path)
        assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert meta["config_hash"] == cfg.content_hash()
        assert FoamConfig.from_dict(meta["config"]) == cfg
        assert meta["run_key"] == "abc"
        assert meta["nens"] == 1
        assert np.array_equal(loaded.ocean.temp, state.ocean.temp)

    def test_unstamped_checkpoint_loads_with_bare_meta(self, tmp_path,
                                                       state):
        path = save_restart(tmp_path / "u.npz", state)
        _, meta = load_checkpoint(path)
        assert meta == {"format_version": CHECKPOINT_FORMAT_VERSION}

    def test_legacy_v1_file_still_loads(self, tmp_path, state):
        # Reconstruct the pre-versioning layout: no format_version, no
        # presence flag, river always materialized as an array.
        path = save_restart(tmp_path / "v2.npz", state)
        with np.load(path) as d:
            payload = {k: d[k] for k in d.files
                       if k not in ("format_version", "c_river_present")}
        if "c_river" not in payload:
            payload["c_river"] = np.zeros_like(
                state.coupler.hydrology.soil_moisture)
        legacy = tmp_path / "v1.npz"
        np.savez_compressed(legacy, **payload)

        loaded, meta = load_checkpoint(legacy)
        assert meta["format_version"] == 1
        assert loaded.coupler.river_volume is not None
        assert np.array_equal(loaded.atm_curr.vort, state.atm_curr.vort)
