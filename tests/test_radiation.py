"""Tests for the radiation package."""

import numpy as np

from repro.atmosphere.physics.radiation import (
    RadiationParams,
    diagnose_cloud_fraction,
    diurnal_mean_insolation,
    layer_emissivity,
    longwave,
    shortwave,
    solar_zenith_cos,
    vapor_path,
)
from repro.util.constants import SOLAR_CONSTANT, STEFAN_BOLTZMANN


def make_column(nlat=4, nlon=8, L=10, t_sfc=288.0, q0=0.01):
    """A moist tropical-ish column replicated over a small grid."""
    sigma = np.linspace(0.05, 0.99, L)
    ps = np.full((nlat, nlon), 1.0e5)
    p = sigma[:, None, None] * ps[None]
    shape = (L, nlat, nlon)
    temp = np.broadcast_to(t_sfc - 60.0 * (1.0 - sigma[:, None, None]), shape).copy()
    q = np.broadcast_to(q0 * (sigma[:, None, None] ** 3), shape).copy()
    dp = np.gradient(sigma)[:, None, None] * ps[None]
    return temp, q, p, dp


# ------------------------------------------------------------- geometry
def test_zenith_angle_zero_at_night():
    lats = np.deg2rad(np.array([0.0]))
    lons = np.array([0.0])
    # Local midnight at lon 0 (UTC 0 with our hour-angle convention is noon-pi)
    mu_midnight = solar_zenith_cos(lats, 80.0, 0.0, lons)
    mu_noon = solar_zenith_cos(lats, 80.0, 43200.0, lons)
    assert mu_noon[0, 0] > 0.8
    assert mu_midnight[0, 0] == 0.0


def test_diurnal_mean_insolation_structure():
    lats = np.deg2rad(np.linspace(-89, 89, 37))
    # Northern summer solstice: pole gets round-the-clock sun.
    q_jun = diurnal_mean_insolation(lats, 172.0)
    assert q_jun[-1] > q_jun[18]      # N pole exceeds equator at solstice
    assert q_jun[0] == 0.0            # polar night in the south
    assert np.all(q_jun >= 0.0)
    assert q_jun.max() < SOLAR_CONSTANT


# ------------------------------------------------------------- clouds
def test_cloud_fraction_zero_when_dry():
    temp, q, p, dp = make_column(q0=1e-6)
    cf = diagnose_cloud_fraction(temp, q, p)
    assert np.all(cf == 0.0)


def test_cloud_fraction_saturated_layer():
    temp, q, p, dp = make_column()
    from repro.util.thermo import saturation_mixing_ratio
    q_sat = saturation_mixing_ratio(temp, p)
    cf = diagnose_cloud_fraction(temp, q_sat * 1.0, p)
    assert np.all(cf >= 0.99)


# ------------------------------------------------------------- shortwave
def test_shortwave_energy_ledger_closes():
    """Insolation = reflected + absorbed_atm + absorbed_sfc exactly."""
    temp, q, p, dp = make_column()
    cosz = np.full(temp.shape[1:], 0.6)
    albedo = np.full_like(cosz, 0.15)
    heat, sfc, refl = shortwave(temp, q, p, dp, cosz, albedo)
    from repro.util.constants import CP, GRAVITY
    absorbed_atm = np.sum(heat * CP * dp / GRAVITY, axis=0)
    total = refl + absorbed_atm + sfc
    insolation = SOLAR_CONSTANT * cosz
    # The single-bounce ledger keeps > 97% of the energy exactly accounted;
    # the residual is the retained cloud-surface multiple reflection term.
    np.testing.assert_allclose(total, insolation, rtol=0.03)
    assert np.all(heat >= 0.0)


def test_shortwave_dark_at_night():
    temp, q, p, dp = make_column()
    cosz = np.zeros(temp.shape[1:])
    albedo = np.full_like(cosz, 0.15)
    heat, sfc, refl = shortwave(temp, q, p, dp, cosz, albedo)
    assert np.all(heat == 0.0) and np.all(sfc == 0.0) and np.all(refl == 0.0)


def test_shortwave_bright_surface_reflects_more():
    temp, q, p, dp = make_column()
    cosz = np.full(temp.shape[1:], 0.7)
    _, sfc_dark, refl_dark = shortwave(temp, q, p, dp, cosz, np.full_like(cosz, 0.1))
    _, sfc_ice, refl_ice = shortwave(temp, q, p, dp, cosz, np.full_like(cosz, 0.7))
    assert np.all(refl_ice > refl_dark)
    assert np.all(sfc_ice < sfc_dark)


# ------------------------------------------------------------- longwave
def test_longwave_isothermal_column_olr_below_blackbody():
    temp, q, p, dp = make_column(t_sfc=288.0)
    t_sfc = np.full(temp.shape[1:], 288.0)
    heat, olr, lw_down, net_sfc = longwave(temp, q, dp, t_sfc)
    bb = STEFAN_BOLTZMANN * 288.0**4
    assert np.all(olr < bb)            # greenhouse: colder emission aloft
    assert np.all(olr > 0.5 * bb)
    assert np.all(lw_down > 0.0)
    assert np.all(net_sfc > 0.0)       # surface loses LW on net


def test_longwave_energy_conservation():
    """Column LW heating integrates to (net absorbed) = -(OLR - surface emission + ...)."""
    temp, q, p, dp = make_column()
    t_sfc = np.full(temp.shape[1:], 290.0)
    heat, olr, lw_down, net_sfc = longwave(temp, q, dp, t_sfc)
    from repro.util.constants import CP, GRAVITY
    atm_gain = np.sum(heat * CP * dp / GRAVITY, axis=0)
    # Energy entering the atmosphere = surface net upward LW - OLR escaping.
    np.testing.assert_allclose(atm_gain, net_sfc - olr + 0.0, rtol=1e-10)


def test_more_co2_means_less_olr():
    temp, q, p, dp = make_column()
    t_sfc = np.full(temp.shape[1:], 288.0)
    _, olr_1x, _, _ = longwave(temp, q, dp, t_sfc, RadiationParams(co2_ppmv=355.0))
    _, olr_2x, _, _ = longwave(temp, q, dp, t_sfc, RadiationParams(co2_ppmv=710.0))
    assert np.all(olr_2x < olr_1x)
    # Forcing of plausible magnitude (a few W/m^2 for doubling).
    forcing = (olr_1x - olr_2x).mean()
    assert 0.3 < forcing < 15.0


def test_emissivity_bounded():
    temp, q, p, dp = make_column(q0=0.05)
    eps = layer_emissivity(q, dp)
    assert np.all(eps >= 0.0) and np.all(eps <= 0.98)


def test_vapor_path_scaling():
    temp, q, p, dp = make_column()
    w = vapor_path(q, dp)
    w2 = vapor_path(2 * q, dp)
    np.testing.assert_allclose(w2, 2 * w)
