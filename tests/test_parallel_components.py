"""Decomposed == serial: the correctness property of the parallel substrate."""

import numpy as np
import pytest

from repro.atmosphere.physics import PhysicsSuite, SurfaceState
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.ocean import OceanGrid, world_topography
from repro.ocean.operators import biharmonic, laplacian
from repro.parallel.components import (
    parallel_biharmonic,
    parallel_laplacian,
    parallel_physics,
    parallel_spectral_analysis,
)
from repro.util.thermo import saturation_mixing_ratio

pytestmark = pytest.mark.parallel


@pytest.fixture(scope="module")
def column_setup():
    L, nlat, nlon = 6, 12, 16
    rng = np.random.default_rng(0)
    lats = np.deg2rad(np.linspace(-70, 70, nlat))
    lons = np.linspace(0, 2 * np.pi, nlon, endpoint=False)
    sigma_half = np.linspace(0.0, 1.0, L + 1)
    dsigma = np.diff(sigma_half)
    sigma = 0.5 * (sigma_half[:-1] + sigma_half[1:])
    ps = np.full((nlat, nlon), 1.0e5)
    pressure = sigma[:, None, None] * ps[None]
    temp = np.broadcast_to(288.0 - 55.0 * (1.0 - sigma[:, None, None]),
                           (L, nlat, nlon)).copy()
    temp += rng.normal(scale=2.0, size=temp.shape)
    q = 0.7 * saturation_mixing_ratio(temp, pressure)
    u = rng.normal(scale=5.0, size=temp.shape)
    v = rng.normal(scale=5.0, size=temp.shape)
    geop = np.zeros_like(temp)
    for l in range(L - 2, -1, -1):
        geop[l] = geop[l + 1] + 287.0 * temp[l] * np.log(pressure[l + 1]
                                                         / pressure[l])
    surface = SurfaceState(
        t_sfc=290.0 + rng.normal(scale=3.0, size=(nlat, nlon)),
        albedo=np.full((nlat, nlon), 0.1),
        wetness=np.ones((nlat, nlon)),
        z0=np.full((nlat, nlon), 1e-3),
        ocean_mask=rng.random((nlat, nlon)) > 0.4)
    return dict(temp=temp, q=q, u=u, v=v, pressure=pressure, ps=ps,
                geopotential=geop, dsigma=dsigma, surface=surface,
                dt=1800.0, time=0.0, lats=lats, lons=lons)


@pytest.mark.parametrize("nranks", [1, 2, 4])
def test_parallel_physics_matches_serial(column_setup, nranks):
    """Column physics decomposed by latitude band is bit-identical to serial."""
    serial = PhysicsSuite().compute(**column_setup)
    par = parallel_physics(nranks, **column_setup)
    np.testing.assert_array_equal(par["dtdt"], serial.dtdt)
    np.testing.assert_array_equal(par["dqdt"], serial.dqdt)
    np.testing.assert_array_equal(
        par["precip"], serial.precip_conv + serial.precip_strat)


def test_physics_needs_no_communication(column_setup):
    """The paper's claim: vertical-column physics exchanges no messages."""
    par = parallel_physics(3, **column_setup)
    assert par["physics_messages"] == [0, 0, 0]


@pytest.mark.parametrize("py,px", [(1, 2), (2, 2), (2, 3), (4, 1)])
def test_parallel_laplacian_matches_serial(py, px):
    g = OceanGrid(nx=24, ny=24, nlev=2)
    land, _ = world_topography(g)
    mask = ~land
    rng = np.random.default_rng(1)
    field = np.where(mask, rng.normal(size=(24, 24)), 0.0)
    serial = laplacian(field, g.dx, g.dy, mask)
    par = parallel_laplacian(py, px, field, g, mask)
    np.testing.assert_allclose(par, serial, atol=1e-14)


def test_parallel_biharmonic_matches_serial():
    g = OceanGrid(nx=16, ny=16, nlev=2)
    land, _ = world_topography(g)
    mask = ~land
    rng = np.random.default_rng(2)
    field = np.where(mask, rng.normal(size=(16, 16)), 0.0)
    serial = biharmonic(field, g.dx, g.dy, mask)
    par = parallel_biharmonic(2, 2, field, g, mask)
    np.testing.assert_allclose(par, serial, atol=1e-10)


@pytest.mark.parametrize("nranks", [1, 2, 4, 5])
def test_parallel_spectral_analysis_matches_serial(nranks):
    tr = SpectralTransform(nlat=20, nlon=32, trunc=Truncation(8))
    rng = np.random.default_rng(3)
    spec = rng.normal(size=tr.spec_shape) + 1j * rng.normal(size=tr.spec_shape)
    spec[0, :] = spec[0, :].real
    grid = tr.synthesize(spec)
    serial = tr.analyze(grid)
    par = parallel_spectral_analysis(nranks, tr, grid)
    np.testing.assert_allclose(par, serial, atol=1e-13)
