"""Tests for the hierarchical wall-clock profiler (repro.perf.profiler)."""

import json
import sys
import threading
import time

import numpy as np
import pytest

from repro.perf.profiler import (
    Profiler,
    RunProfile,
    disable_profiling,
    enable_profiling,
    get_profiler,
    profile_count,
    profile_section,
    profiled,
    profiling_enabled,
    set_profiler,
    take_profile,
)


@pytest.fixture
def fresh_profiler():
    """Install a fresh enabled profiler as the default; restore afterwards."""
    prof = Profiler(enabled=True)
    previous = set_profiler(prof)
    try:
        yield prof
    finally:
        set_profiler(previous)


# ------------------------------------------------------------- nesting
def test_nested_sections_record_full_paths(fresh_profiler):
    with profile_section("a"):
        with profile_section("b"):
            with profile_section("c"):
                pass
        with profile_section("b"):
            pass
    profile = take_profile("nesting")
    paths = {s.path: s.calls for s in profile.sections}
    assert paths == {"a": 1, "a/b": 2, "a/b/c": 1}


def test_sibling_sections_do_not_nest(fresh_profiler):
    with profile_section("first"):
        pass
    with profile_section("second"):
        pass
    profile = take_profile()
    assert {s.path for s in profile.sections} == {"first", "second"}
    assert all(s.depth == 0 for s in profile.sections)


def test_decorator_records_section(fresh_profiler):
    @profiled("work")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    assert fn(2) == 3
    profile = take_profile()
    assert profile["work"].calls == 2


def test_decorator_defaults_to_function_name(fresh_profiler):
    @profiled()
    def named_thing():
        return 42

    named_thing()
    assert take_profile().calls("named_thing") == 1


# ------------------------------------------- exclusive vs inclusive
def test_exclusive_excludes_child_time(fresh_profiler):
    with profile_section("outer"):
        time.sleep(0.005)
        with profile_section("inner"):
            time.sleep(0.01)
    profile = take_profile()
    outer, inner = profile["outer"], profile["outer/inner"]
    assert inner.inclusive >= 0.01
    assert outer.inclusive >= inner.inclusive + 0.005
    # The accounting identity is exact by construction: the parent's
    # exclusive time is its inclusive time minus its children's elapsed.
    assert outer.exclusive == pytest.approx(outer.inclusive - inner.inclusive,
                                            abs=1e-9)
    assert inner.exclusive == pytest.approx(inner.inclusive, abs=1e-9)


def test_repeated_entries_accumulate(fresh_profiler):
    for _ in range(5):
        with profile_section("loop"):
            time.sleep(0.001)
    s = take_profile()["loop"]
    assert s.calls == 5
    assert s.inclusive >= 5 * 0.001
    assert s.per_call == pytest.approx(s.inclusive / 5)


# ------------------------------------------------------------- counters
def test_counter_attaches_to_innermost_section(fresh_profiler):
    with profile_section("xfer") as sec:
        sec.count("comm_bytes", 1024)
        sec.count("comm_bytes", 1024)
    profile = take_profile()
    assert profile["xfer"].counters["comm_bytes"] == 2048
    assert profile.comm_bytes() == 2048


def test_counter_outside_section_is_profile_level(fresh_profiler):
    profile_count("events", 3)
    profile_count("events", 4)
    profile = take_profile()
    assert profile.counters["events"] == 7
    assert profile.sections == []


# ------------------------------------------------------------- disabled mode
def test_disabled_records_nothing(fresh_profiler):
    disable_profiling()
    assert not profiling_enabled()
    with profile_section("ghost") as sec:
        assert sec is None
        profile_count("ghost_counter")
    profile = take_profile()
    assert profile.sections == []
    assert profile.counters == {}
    enable_profiling()
    assert profiling_enabled()


def test_disabled_overhead_is_bounded(fresh_profiler):
    """Instrumentation left in a hot loop must cost <5% while disabled."""
    if sys.gettrace() is not None or "coverage" in sys.modules:
        pytest.skip("timing comparison is meaningless under a line tracer")
    disable_profiling()
    a = np.random.default_rng(0).normal(size=(96, 96))

    def plain(n):
        for _ in range(n):
            a @ a

    def instrumented(n):
        for _ in range(n):
            with profile_section("hot"):
                a @ a

    n = 200
    plain(n), instrumented(n)   # warm up caches and allocator
    # Min-of-7 suppresses scheduler noise; retry the whole measurement a
    # couple of times so a loaded CI machine cannot flake a genuine pass.
    for attempt in range(3):
        t_plain = min(_timed(plain, n) for _ in range(7))
        t_inst = min(_timed(instrumented, n) for _ in range(7))
        if t_inst < 1.05 * t_plain:
            return
    assert t_inst < 1.05 * t_plain, (
        f"disabled-mode overhead {100 * (t_inst / t_plain - 1):.2f}% "
        f"exceeds the 5% budget")


def _timed(fn, n):
    t0 = time.perf_counter()
    fn(n)
    return time.perf_counter() - t0


# ------------------------------------------------------------- threads
def test_thread_safety_across_threads(fresh_profiler):
    """Concurrent threads in the same sections must not corrupt accounting."""
    n_threads, n_iter = 8, 200
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        for _ in range(n_iter):
            with profile_section("outer"):
                with profile_section("inner"):
                    pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    profile = take_profile()
    # No cross-thread stack leakage: exactly the two expected paths.
    assert {s.path for s in profile.sections} == {"outer", "outer/inner"}
    assert profile["outer"].calls == n_threads * n_iter
    assert profile["outer/inner"].calls == n_threads * n_iter
    assert profile["outer"].inclusive >= profile["outer/inner"].inclusive


@pytest.mark.parallel
def test_simmpi_rank_threads_profile_transpose(fresh_profiler):
    """The instrumented simmpi transpose profiles correctly from rank threads.

    Pinned to the thread substrate: the property under test is that the
    *parent's* global profiler aggregates sections recorded by rank threads
    sharing its process.  Forked ranks profile into their own processes
    (the coupled driver marshals those back explicitly via per-rank
    RunProfiles instead).
    """
    from repro.parallel.components import measure_transpose_comm

    nranks = 4
    stats = measure_transpose_comm(nranks, nlat=16, nm=8, nlev=3,
                                   substrate="thread")
    profile = take_profile("transpose")
    fwd = profile["transpose.forward"]
    bwd = profile["transpose.backward"]
    assert fwd.calls == nranks and bwd.calls == nranks
    assert fwd.inclusive > 0 and bwd.inclusive > 0
    # The comm_bytes counter must agree with the CommStats ground truth.
    measured = sum(s.bytes_for("transpose") for s in stats)
    assert profile.comm_bytes("transpose") == pytest.approx(measured)


# ------------------------------------------------------------- RunProfile
def _sample_profile(prof):
    with prof.section("atmosphere"):
        with prof.section("physics"):
            with prof.section("radiation") as sec:
                sec.count("calls_counted", 2)
        with prof.section("dynamics"):
            pass
    with prof.section("ocean"):
        pass
    return prof.snapshot(label="sample", meta={"config": "test"})


def test_runprofile_lookup_helpers(fresh_profiler):
    profile = _sample_profile(fresh_profiler)
    assert profile.calls("atmosphere/physics/radiation") == 1
    # Leaf-name matching finds sections wherever they nest.
    assert profile.total_calls("radiation") == 1
    assert profile.total_inclusive("radiation") > 0
    # Topmost matching: children do not double-count under their ancestor.
    assert profile.total_inclusive("atmosphere") == profile["atmosphere"].inclusive
    assert profile.get("no/such/section") is None
    with pytest.raises(KeyError):
        profile["no/such/section"]
    assert {s.path for s in profile.roots()} == {"atmosphere", "ocean"}
    assert profile.accounted_seconds == pytest.approx(
        profile["atmosphere"].inclusive + profile["ocean"].inclusive)


def test_runprofile_json_roundtrip(fresh_profiler, tmp_path):
    profile = _sample_profile(fresh_profiler)
    text = profile.to_json()
    json.loads(text)   # valid JSON
    back = RunProfile.from_json(text)
    assert back.to_dict() == profile.to_dict()
    assert back.label == "sample"
    assert back.meta == {"config": "test"}
    assert back["atmosphere/physics/radiation"].counters["calls_counted"] == 2

    path = tmp_path / "profile.json"
    profile.save(path)
    assert RunProfile.load(path).to_dict() == profile.to_dict()


def test_format_table_renders_tree(fresh_profiler):
    profile = _sample_profile(fresh_profiler)
    table = profile.format_table()
    lines = table.splitlines()
    assert any("radiation" in line for line in lines)
    assert any(line.startswith("atmosphere") for line in lines)
    # Nested rows are indented under their parents.
    assert any(line.startswith("  physics") for line in lines)


def test_take_profile_resets_by_default(fresh_profiler):
    with profile_section("once"):
        pass
    first = take_profile()
    assert first.calls("once") == 1
    second = take_profile()
    assert second.sections == []


def test_default_profiler_starts_disabled():
    # The library-wide default must not record in normal (unprofiled) runs.
    assert isinstance(get_profiler(), Profiler)
    assert not profiling_enabled()


# ------------------------------------------------- thread-local routing
def test_thread_profiler_routes_sections_to_local_profiler():
    """Inside the context, hooks hit the installed per-thread profiler."""
    from repro.perf.profiler import merge_profiles, thread_profiler

    mine = Profiler(enabled=True)
    with thread_profiler(mine):
        with profile_section("work"):
            profile_count("items", 3)
    prof = mine.snapshot(label="tls")
    assert prof.total_calls("work") == 1
    assert prof.get("work").counters["items"] == 3
    # Nothing leaked to the process-wide default profiler.
    assert get_profiler().snapshot().sections == []
    _ = merge_profiles  # imported together; used by the tests below


def test_thread_profiler_is_reentrant_and_restores():
    from repro.perf.profiler import thread_profiler

    outer, inner = Profiler(enabled=True), Profiler(enabled=True)
    with thread_profiler(outer):
        with profile_section("outer_only"):
            pass
        with thread_profiler(inner):
            with profile_section("inner_only"):
                pass
        with profile_section("outer_again"):
            pass
    out = outer.snapshot()
    assert out.total_calls("outer_only") == 1
    assert out.total_calls("outer_again") == 1
    assert out.total_calls("inner_only") == 0
    assert inner.snapshot().total_calls("inner_only") == 1


def test_thread_profiler_isolated_between_threads():
    """Two rank-style threads record into disjoint profilers."""
    from repro.perf.profiler import thread_profiler

    profs = [Profiler(enabled=True) for _ in range(2)]

    def work(i):
        with thread_profiler(profs[i]):
            for _ in range(i + 1):
                with profile_section("step"):
                    pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert profs[0].snapshot().total_calls("step") == 1
    assert profs[1].snapshot().total_calls("step") == 2


# ---------------------------------------------------------------- merging
def _profile_with(label, path, calls, seconds, wall):
    from repro.perf.profiler import SectionStat
    return RunProfile(label=label, wall_seconds=wall, sections=[
        SectionStat(path=path, calls=calls, inclusive=seconds,
                    exclusive=seconds)])


def test_merge_profiles_sums_sections_and_maxes_wall():
    from repro.perf.profiler import merge_profiles

    a = _profile_with("rank0", "atmosphere", 4, 2.0, wall=5.0)
    b = _profile_with("rank1", "atmosphere", 4, 3.0, wall=4.0)
    merged = merge_profiles([a, b], label="both")
    assert merged.total_calls("atmosphere") == 8
    assert merged.total_inclusive("atmosphere") == pytest.approx(5.0)
    assert merged.wall_seconds == pytest.approx(5.0)   # max, not sum
    assert merged.meta["merged_from"] == 2
    assert merged.meta["rank_walls"] == [5.0, 4.0]
    assert merged.meta["rank_labels"] == ["rank0", "rank1"]


def test_merge_profiles_user_meta_and_empty():
    from repro.perf.profiler import merge_profiles

    a = _profile_with("a", "x", 1, 1.0, wall=1.0)
    merged = merge_profiles([a], meta={"nsteps": 7})
    assert merged.meta["nsteps"] == 7
    with pytest.raises(ValueError):
        merge_profiles([])
