"""Tests for the Hack shallow and Zhang-McFarlane deep convection schemes."""

import numpy as np

from repro.atmosphere.physics.convection import (
    compute_cape,
    hack_shallow,
    zhang_mcfarlane_deep,
)
from repro.util.constants import CP, GRAVITY, LATENT_HEAT_VAP


def make_sounding(L=12, unstable=False, nlat=2, nlon=3):
    sigma = np.linspace(0.1, 0.99, L)
    ps = np.full((nlat, nlon), 1.0e5)
    p = sigma[:, None, None] * ps[None]
    dp = np.gradient(sigma)[:, None, None] * ps[None]
    shape = (L, nlat, nlon)
    if unstable:
        # Hot, very moist surface under a cool dry troposphere: large CAPE.
        temp = np.broadcast_to(220.0 + 85.0 * sigma[:, None, None] ** 0.8, shape).copy()
        q = np.broadcast_to(
            np.where(sigma[:, None, None] > 0.9, 0.022, 1e-4), shape).copy()
    else:
        # Stable stratification, dry: much warmer aloft than a dry adiabat.
        temp = np.broadcast_to(
            300.0 - 40.0 * (1.0 - sigma[:, None, None]), shape).copy()
        q = np.full(shape, 1e-4)
    geop = np.zeros_like(temp)
    # hydrostatic-ish height
    for l in range(L - 2, -1, -1):
        geop[l] = geop[l + 1] + 287.0 * temp[l] * (np.log(p[l + 1] / p[l]))
    return temp, q, p, dp, geop


# ------------------------------------------------------------- CAPE
def test_cape_zero_for_stable_dry_column():
    temp, q, p, dp, geop = make_sounding(unstable=False)
    cape = compute_cape(temp, q, p)
    assert np.all(cape < 10.0)


def test_cape_large_for_moist_unstable_column():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    cape = compute_cape(temp, q, p)
    assert np.all(cape > 500.0)


def test_cape_monotone_in_low_level_moisture():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    cape_moist = compute_cape(temp, q, p)
    cape_drier = compute_cape(temp, 0.5 * q, p)
    assert np.all(cape_drier <= cape_moist + 1e-9)


# ------------------------------------------------------------- ZM deep
def test_zm_inactive_below_threshold():
    temp, q, p, dp, geop = make_sounding(unstable=False)
    dtdt, dqdt, prec = zhang_mcfarlane_deep(temp, q, p, dp, dt=1800.0)
    assert np.all(dtdt == 0.0) and np.all(dqdt == 0.0) and np.all(prec == 0.0)


def test_zm_fires_and_precipitates_on_unstable_column():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dtdt, dqdt, prec = zhang_mcfarlane_deep(temp, q, p, dp, dt=1800.0)
    assert np.all(prec > 0.0)
    # Heating aloft, drying at low levels.
    assert dtdt.max() > 0.0
    assert dqdt.min() < 0.0


def test_zm_moisture_budget_closes():
    """Column moisture loss equals precipitation."""
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dt = 1800.0
    dtdt, dqdt, prec = zhang_mcfarlane_deep(temp, q, p, dp, dt=dt)
    mass = dp / GRAVITY
    col_dq = np.sum(dqdt * mass, axis=0)
    np.testing.assert_allclose(-col_dq, prec, rtol=1e-10)


def test_zm_never_drives_negative_humidity():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dt = 1800.0
    _, dqdt, _ = zhang_mcfarlane_deep(temp, q, p, dp, dt=dt)
    assert np.all(q + dt * dqdt >= -1e-18)


def test_zm_reduces_cape():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dt = 1800.0
    dtdt, dqdt, _ = zhang_mcfarlane_deep(temp, q, p, dp, dt=dt)
    cape0 = compute_cape(temp, q, p)
    cape1 = compute_cape(temp + dt * dtdt, q + dt * dqdt, p)
    assert np.all(cape1 < cape0)


# ------------------------------------------------------------- Hack shallow
def test_hack_inactive_on_stable_column():
    temp, q, p, dp, geop = make_sounding(unstable=False)
    dtdt, dqdt, prec = hack_shallow(temp, q, p, dp, geop, dt=1800.0)
    assert np.all(dtdt == 0.0) and np.all(prec == 0.0)


def test_hack_transports_mse_upward():
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dtdt, dqdt, prec = hack_shallow(temp, q, p, dp, geop, dt=1800.0)
    # Lowest layer loses energy, some layer above gains.
    assert dtdt[-1].max() <= 0.0 or dqdt[-1].max() <= 0.0
    assert (dtdt[:-1].max() > 0.0) or (dqdt[:-1].max() > 0.0)
    assert np.all(prec >= 0.0)


def test_hack_energy_budget_closes():
    """Column MSE change equals -L*precip (energy leaves as latent in rain...
    rain removes L q, heating stays) — net cp T + L q column change must be
    ~ 0 because condensation converts latent to sensible in place."""
    temp, q, p, dp, geop = make_sounding(unstable=True)
    dt = 1800.0
    dtdt, dqdt, prec = hack_shallow(temp, q, p, dp, geop, dt=dt)
    mass = dp / GRAVITY
    d_cp = np.sum(CP * dtdt * mass, axis=0)
    d_lq = np.sum(LATENT_HEAT_VAP * dqdt * mass, axis=0)
    np.testing.assert_allclose(d_cp + d_lq, 0.0, atol=1e-6 * CP)


def test_hack_and_zm_are_independent_of_column_order():
    """Physics is column-local: permuting columns permutes the output."""
    temp, q, p, dp, geop = make_sounding(unstable=True, nlat=1, nlon=4)
    rng = np.random.default_rng(0)
    q = q * (1.0 + 0.2 * rng.random(q.shape))
    perm = np.array([2, 0, 3, 1])
    out1 = zhang_mcfarlane_deep(temp, q, p, dp, 1800.0)[2]
    out2 = zhang_mcfarlane_deep(temp[:, :, perm], q[:, :, perm],
                                p[:, :, perm], dp[:, :, perm], 1800.0)[2]
    np.testing.assert_allclose(out2, out1[:, perm])
