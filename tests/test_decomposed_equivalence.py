"""Golden decomposed-vs-serial equivalence: the paper's central claim, bitwise.

FOAM's correctness argument (PAPER.md section 4, DESIGN.md) is that the
MPI-decomposed model produces *exactly* the serial answer — not merely
close.  These tests pin that down as executable, bitwise assertions on
1, 2 and 4 ranks for the two communication-heavy paths:

* the transpose-based parallel spectral transform (FFT -> distributed
  transpose -> Legendre quadrature -> gather), and
* the coupler-style flux computation decomposed by latitude band and
  reassembled with the coupler gather.

Tolerance-based comparisons would hide exactly the class of bug this layer
exists to catch (a misrouted block, a swapped tag, an off-by-one halo), so
every assertion here is ``assert_array_equal``.
"""

import numpy as np
import pytest

from repro.atmosphere.physics.surface_flux import bulk_fluxes
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.parallel import (
    BlockDecomp1D,
    block_bounds,
    run_ranks,
    transpose_backward,
    transpose_forward,
)
from repro.parallel.components import parallel_spectral_analysis

pytestmark = pytest.mark.parallel

RANK_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def transform():
    return SpectralTransform(nlat=20, nlon=32, trunc=Truncation(8))


@pytest.fixture(scope="module")
def grid_field(transform):
    rng = np.random.default_rng(7)
    spec = (rng.normal(size=transform.spec_shape)
            + 1j * rng.normal(size=transform.spec_shape))
    spec[0, :] = spec[0, :].real
    return transform.synthesize(spec)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_spectral_path_bitwise_identical(transform, grid_field, nranks):
    """Decomposed spectral analysis == serial analysis, to the last bit."""
    serial = transform.analyze(grid_field)
    par = parallel_spectral_analysis(nranks, transform, grid_field)
    np.testing.assert_array_equal(par, serial)


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_transpose_roundtrip_bitwise_identical(nranks):
    """forward then backward transpose returns every rank's exact rows,
    including uneven block sizes (10 rows over 4 ranks)."""
    nrows, ncols = 10, 7
    rng = np.random.default_rng(1)
    full = rng.normal(size=(nrows, ncols)) + 1j * rng.normal(size=(nrows, ncols))

    def worker(comm):
        lo, hi = block_bounds(nrows, comm.size, comm.rank)
        cols = transpose_forward(comm, full[lo:hi], nrows, ncols)
        # The column block itself must be the exact global columns.
        clo, chi = block_bounds(ncols, comm.size, comm.rank)
        if not np.array_equal(cols, full[:, clo:chi]):
            raise AssertionError(f"rank {comm.rank}: forward block differs")
        back = transpose_backward(comm, cols, nrows, ncols)
        return np.array_equal(back, full[lo:hi])

    assert all(run_ranks(nranks, worker, timeout=30.0))


@pytest.fixture(scope="module")
def flux_inputs():
    nlat, nlon = 12, 16
    rng = np.random.default_rng(3)
    return dict(
        t_air=280.0 + rng.normal(scale=10.0, size=(nlat, nlon)),
        q_air=np.abs(rng.normal(scale=5e-3, size=(nlat, nlon))),
        u_air=rng.normal(scale=6.0, size=(nlat, nlon)),
        v_air=rng.normal(scale=6.0, size=(nlat, nlon)),
        p_sfc=1.0e5 + rng.normal(scale=2e3, size=(nlat, nlon)),
        t_sfc=282.0 + rng.normal(scale=8.0, size=(nlat, nlon)),
        z0=np.full((nlat, nlon), 1e-3),
        wetness=rng.uniform(0.2, 1.0, size=(nlat, nlon)),
    )


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_coupler_flux_gather_bitwise_identical(flux_inputs, nranks):
    """Latitude-band flux computation + coupler gather == the serial fluxes."""
    serial = bulk_fluxes(**flux_inputs)
    nlat, nlon = flux_inputs["t_air"].shape
    decomp = BlockDecomp1D(nlat=nlat, nlon=nlon, nranks=nranks)

    def worker(comm):
        lo, hi = decomp.bounds(comm.rank)
        local = bulk_fluxes(**{k: v[lo:hi] for k, v in flux_inputs.items()})
        return {k: decomp.gather(comm, local[k]) for k in ("shf", "lhf", "evap",
                                                           "taux", "tauy")}

    gathered = run_ranks(nranks, worker, timeout=30.0)[0]
    for key, full in gathered.items():
        np.testing.assert_array_equal(full, serial[key])


@pytest.mark.parametrize("nranks", RANK_COUNTS)
def test_scatter_gather_roundtrip_bitwise(nranks):
    """The decomposition's own scatter/gather moves blocks untouched."""
    nlat, nlon = 9, 5
    rng = np.random.default_rng(11)
    full = rng.normal(size=(nlat, nlon))
    decomp = BlockDecomp1D(nlat=nlat, nlon=nlon, nranks=nranks)

    def worker(comm):
        local = decomp.scatter(comm, full if comm.rank == 0 else None)
        return decomp.gather(comm, local)

    out = run_ranks(nranks, worker, timeout=30.0)
    np.testing.assert_array_equal(out[0], full)
