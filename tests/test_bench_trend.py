"""Bench-trend gate tests: extraction, regression math, CLI behavior."""

import json

import pytest

from repro.perf.trend import (
    HEADLINES,
    Comparison,
    compare_report,
    extract,
    main,
)


def _write(path, data):
    path.write_text(json.dumps(data))
    return path


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def test_extract_dotted_paths():
    data = {"a": {"b": {"c": 3.5}}, "top": 1}
    assert extract(data, "a.b.c") == 3.5
    assert extract(data, "top") == 1.0
    with pytest.raises(KeyError, match="a.b.missing"):
        extract(data, "a.b.missing")
    with pytest.raises(TypeError, match="not a number"):
        extract({"a": {"b": 1}}, "a")


# ----------------------------------------------------------------------
# regression math
# ----------------------------------------------------------------------
def test_comparison_directions():
    slower = Comparison("r", "m", "lower", current=1.4, baseline=1.0,
                        threshold=0.3)
    assert slower.regressed and slower.change == pytest.approx(0.4)
    faster = Comparison("r", "m", "lower", current=0.5, baseline=1.0,
                        threshold=0.3)
    assert not faster.regressed and faster.change == pytest.approx(-0.5)
    # higher-is-better flips the sign
    dropped = Comparison("r", "m", "higher", current=0.6, baseline=1.0,
                         threshold=0.3)
    assert dropped.regressed and dropped.change == pytest.approx(0.4)
    improved = Comparison("r", "m", "higher", current=2.0, baseline=1.0,
                          threshold=0.3)
    assert not improved.regressed
    # within threshold is fine in both directions
    assert not Comparison("r", "m", "lower", 1.25, 1.0, 0.3).regressed
    # zero baseline never divides
    assert Comparison("r", "m", "lower", 5.0, 0.0, 0.3).change == 0.0
    assert "worse" in dropped.describe()
    assert "better" in improved.describe()


def test_compare_report_uses_headlines(tmp_path):
    current = _write(tmp_path / "BENCH_ensemble.json",
                     {"gate": {"speedup": 1.0}})
    baseline = _write(tmp_path / "base_BENCH_ensemble.json",
                      {"gate": {"speedup": 2.0}})
    (cmp,) = compare_report(current, baseline)
    assert cmp.metric == "gate.speedup"
    assert cmp.regressed
    with pytest.raises(ValueError, match="no headline metrics"):
        compare_report(_write(tmp_path / "BENCH_unknown.json", {}), baseline)


def test_headline_registry_is_sane():
    assert set(HEADLINES) == {"BENCH_profile", "BENCH_backend",
                              "BENCH_coupled", "BENCH_ensemble",
                              "BENCH_kernels", "BENCH_history"}
    for metrics in HEADLINES.values():
        assert metrics
        assert all(d in ("lower", "higher") for d in metrics.values())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _ensemble_pair(tmp_path, current_speedup, baseline_speedup):
    tmp_path.mkdir(exist_ok=True)
    report = _write(tmp_path / "BENCH_ensemble.json",
                    {"gate": {"speedup": current_speedup}})
    bdir = tmp_path / "baselines"
    bdir.mkdir()
    _write(bdir / "BENCH_ensemble.json",
           {"gate": {"speedup": baseline_speedup}})
    return report, bdir


def test_main_passes_and_fails(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv("FOAM_BENCH_FAST", raising=False)
    report, bdir = _ensemble_pair(tmp_path, 2.0, 2.1)
    assert main([str(report), "--baseline-dir", str(bdir)]) == 0
    assert "ok:" in capsys.readouterr().out

    report, bdir = _ensemble_pair(tmp_path / "x", 1.0, 2.0)
    assert main([str(report), "--baseline-dir", str(bdir)]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_main_warn_only_modes(tmp_path, monkeypatch, capsys):
    report, bdir = _ensemble_pair(tmp_path, 1.0, 2.0)
    monkeypatch.delenv("FOAM_BENCH_FAST", raising=False)
    assert main([str(report), "--baseline-dir", str(bdir),
                 "--warn-only"]) == 0
    assert "ignored" in capsys.readouterr().err
    # FOAM_BENCH_FAST implies warn-only: CI's fast bench never blocks.
    monkeypatch.setenv("FOAM_BENCH_FAST", "1")
    assert main([str(report), "--baseline-dir", str(bdir)]) == 0
    assert "ignored" in capsys.readouterr().err


def test_main_missing_baseline_warns(tmp_path, monkeypatch, capsys):
    monkeypatch.delenv("FOAM_BENCH_FAST", raising=False)
    report = _write(tmp_path / "BENCH_ensemble.json",
                    {"gate": {"speedup": 1.0}})
    assert main([str(report), "--baseline-dir",
                 str(tmp_path / "nowhere")]) == 0
    assert "no baseline" in capsys.readouterr().err


def test_main_update_writes_baselines(tmp_path, capsys):
    report = _write(tmp_path / "BENCH_ensemble.json",
                    {"gate": {"speedup": 3.0}})
    bdir = tmp_path / "baselines"
    assert main([str(report), "--baseline-dir", str(bdir),
                 "--update"]) == 0
    written = json.loads((bdir / "BENCH_ensemble.json").read_text())
    assert written["gate"]["speedup"] == 3.0
    # and the freshly written baseline gates clean
    assert main([str(report), "--baseline-dir", str(bdir)]) == 0
