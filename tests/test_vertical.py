"""Tests for the sigma vertical grid and semi-implicit matrices."""

import numpy as np
import pytest

from repro.atmosphere.vertical import VerticalGrid, default_sigma_levels
from repro.util.constants import KAPPA, RD


@pytest.fixture
def vg():
    return VerticalGrid.ccm_like(nlev=18)


def test_default_sigma_levels_monotone_and_bounded():
    for nlev in (2, 5, 18, 30):
        sh = default_sigma_levels(nlev)
        assert sh[0] == 0.0 and sh[-1] == 1.0
        assert np.all(np.diff(sh) > 0)
        assert sh.size == nlev + 1


def test_default_sigma_levels_cluster_near_surface():
    sh = default_sigma_levels(18)
    # Bottom layer thinner than top layer: boundary-layer clustering.
    assert (sh[-1] - sh[-2]) > (sh[1] - sh[0])


def test_vertical_grid_validation():
    with pytest.raises(ValueError):
        VerticalGrid(np.array([0.0, 0.5]))           # too few interfaces
    with pytest.raises(ValueError):
        VerticalGrid(np.array([0.1, 0.5, 1.0]))       # top not 0
    with pytest.raises(ValueError):
        VerticalGrid(np.array([0.0, 0.6, 0.5, 1.0]))  # not monotone


def test_layer_thicknesses_sum_to_one(vg):
    assert vg.dsigma.sum() == pytest.approx(1.0)
    assert vg.nlev == 18


def test_hydrostatic_matrix_structure(vg):
    G = vg.hydrostatic_matrix()
    # Upper triangular in the "levels below" sense: level l only feels
    # temperatures at and below itself (k >= l).
    assert np.allclose(np.tril(G, -1), 0.0)
    assert np.all(np.diag(G) > 0)
    # An isothermal atmosphere's geopotential decreases downward.
    phi = vg.geopotential(np.full(vg.nlev, 250.0))
    assert np.all(np.diff(phi) < 0)


def test_geopotential_isothermal_matches_analytic():
    """For isothermal T, Phi(sigma) = -R T ln(sigma) exactly at full levels."""
    vg = VerticalGrid.ccm_like(nlev=30)
    t0 = 280.0
    phi = vg.geopotential(np.full(vg.nlev, t0))
    expect = -RD * t0 * np.log(vg.sigma)
    # Discrete hydrostatic integration is not exact but must track closely.
    np.testing.assert_allclose(phi[5:], expect[5:], rtol=0.02)


def test_energy_conversion_matrix_lower_triangular(vg):
    tau = vg.energy_conversion_matrix()
    assert np.allclose(np.triu(tau, 1), 0.0)
    assert np.all(np.diag(tau) > 0)
    # Scale: tau ~ kappa Tref dsig / sigma.
    assert tau[0, 0] == pytest.approx(
        KAPPA * vg.t_ref * 0.5 * vg.dsigma[0] / vg.sigma[0])


def test_semi_implicit_matrix_positive_eigenvalues(vg):
    """M's spectrum sets the implicit gravity-wave speeds; must be real>0."""
    M = vg.semi_implicit_matrix()
    eig = np.linalg.eigvals(M)
    assert np.all(np.abs(eig.imag) < 1e-8 * np.abs(eig.real).max())
    assert np.all(eig.real > 0)
    # The gravest mode's equivalent phase speed sqrt(max eig) should be of
    # order the external gravity wave speed (~300 m/s) for Tref = 300 K.
    c = np.sqrt(eig.real.max())
    assert 200.0 < c < 400.0


def test_sigma_dot_vanishes_for_uniform_divergence_integral():
    """If the column integral of C is zero, sigdot is the pure cumulative sum."""
    vg = VerticalGrid.isobaric(4)
    div = np.array([1.0, -1.0, 1.0, -1.0])[:, None, None]
    zero = np.zeros_like(div)
    sd = vg.sigma_dot(div, zero)
    # total = 0, so sigdot_{l+1/2} = -sum_{k<=l} dsig C
    np.testing.assert_allclose(sd[:, 0, 0], [-0.25, 0.0, -0.25])


def test_sigma_dot_boundary_consistency():
    """Top/bottom interfaces are implicitly zero: last partial equals total."""
    vg = VerticalGrid.ccm_like(8)
    rng = np.random.default_rng(0)
    div = rng.normal(size=(8, 3, 4))
    vgp = rng.normal(size=(8, 3, 4))
    sd = vg.sigma_dot(div, vgp)
    assert sd.shape == (7, 3, 4)
    c = div + vgp
    wc = vg.dsigma[:, None, None] * c
    # at the surface (sigma=1): sigma_half=1 -> total - total = 0 by formula
    bottom = 1.0 * wc.sum(axis=0) - wc.sum(axis=0)
    np.testing.assert_allclose(bottom, 0.0, atol=1e-14)


def test_omega_over_p_sign_for_convergence():
    """Uniform convergence (D<0) gives rising motion: omega/p > 0?  No —
    convergence aloft forces downward mass flux below; check the sign chain:
    with D < 0 everywhere and no pressure advection, omega/p = +|.|/sigma > 0
    is wrong physically for ascent; our convention keeps omega/p = (1/p)dp/dt,
    negative for ascent.  Uniform D < 0 must give omega/p > 0... verify the
    discrete formula directly instead."""
    vg = VerticalGrid.isobaric(3)
    div = np.full((3, 1, 1), -1.0e-5)
    zero = np.zeros_like(div)
    wop = vg.omega_over_p(div, zero)
    # formula: -(1/sig_l)(sum_{k<l} + 0.5 self) * dsig * D; D<0 -> wop > 0
    assert np.all(wop > 0)
    expect_top = -(0.5 * (1.0 / 3.0) * -1e-5) / vg.sigma[0]
    assert wop[0, 0, 0] == pytest.approx(expect_top)


def test_vertical_advection_of_linear_profile():
    """sigdot d/dsigma of X = sigma recovers sigdot itself (interior levels)."""
    vg = VerticalGrid.isobaric(10)
    x = vg.sigma[:, None, None] * np.ones((10, 2, 2))
    sigdot = np.ones((9, 2, 2)) * 2.0e-4
    adv = vg.vertical_advection(sigdot, x)
    # Interior levels: both half-level contributions present -> exactly sigdot.
    np.testing.assert_allclose(adv[1:-1], 2.0e-4, rtol=1e-12)
    # Boundary levels: one-sided -> half magnitude.
    np.testing.assert_allclose(adv[0], 1.0e-4, rtol=1e-12)
    np.testing.assert_allclose(adv[-1], 1.0e-4, rtol=1e-12)
