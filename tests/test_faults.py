"""Fault-injection and deadlock-diagnosis regression tests.

The requirements these encode (ISSUE 2): a crashed rank surfaces as a
``CommError`` naming the dead rank on *every* peer rather than a hang; a
recv/recv tag-mismatch cycle is diagnosed as a structured
:class:`DeadlockReport` within ~2 seconds, not a 120-second timeout; and
every FaultPlan perturbation (delay, reorder, duplicate, corrupt, crash)
is observable through the normal API.

ISSUE 7 extends the same guarantees to the real-process substrate: the
``process substrate`` section pins that an injected crash is named on
every peer *process* and that a mis-tagged coupler exchange on forked
rank pools still yields a marshalled :class:`DeadlockReport` in under a
second.  (The whole module also runs under ``FOAM_COMM=process`` in CI,
which routes every ``run_ranks`` world here through the process
substrate.)
"""

import time

import numpy as np
import pytest

from repro.parallel import (
    CommBase,
    CommError,
    DeadlockError,
    FaultPlan,
    RankCrashedError,
    block_bounds,
    run_ranks,
    transpose_forward,
)
from repro.parallel.coupled import (
    TAG_ATM_STATE,
    TAG_FORCING,
    TAG_SST,
    TAG_SURFACE,
    PoolLayout,
)

pytestmark = pytest.mark.parallel


# ------------------------------------------------------------------ crashes
def test_crashed_rank_named_on_every_peer():
    """Rank 2 dies at its first op; every peer gets a CommError naming it."""
    def worker(comm):
        if comm.rank == 2:
            comm.barrier()  # injected crash fires here
            return "unreachable"
        try:
            return comm.recv(source=2, tag=9)
        except CommError as exc:
            return str(exc)

    t0 = time.monotonic()
    out = run_ranks(4, worker, timeout=30.0,
                    faults=FaultPlan().crash(rank=2, at_op=1),
                    return_exceptions=True)
    elapsed = time.monotonic() - t0
    assert elapsed < 5.0, f"crash diagnosis took {elapsed:.1f}s"
    assert isinstance(out[2], RankCrashedError)
    for rank in (0, 1, 3):
        assert isinstance(out[rank], str), f"rank {rank} did not fail cleanly"
        assert "rank 2 crashed" in out[rank]


def test_crash_at_later_op_counts_operations():
    """at_op=3 lets the first two collectives finish, then kills the rank."""
    def worker(comm):
        a = comm.allreduce(1)          # op 1: completes on all ranks
        b = comm.allreduce(2)          # op 2: completes on all ranks
        c = comm.allreduce(3)          # op 3: rank 1 dies entering this
        return (a, b, c)

    with pytest.raises(RankCrashedError, match=r"rank 1: injected crash at communication op #3"):
        run_ranks(3, worker, timeout=30.0, faults=FaultPlan().crash(rank=1, at_op=3))


def test_crash_during_collective_fails_peers_not_hangs():
    """A death mid-collective propagates as CommError fallout, not a hang."""
    def worker(comm):
        return comm.bcast(np.arange(4.0) if comm.rank == 0 else None, root=0)

    t0 = time.monotonic()
    out = run_ranks(4, worker, timeout=30.0,
                    faults=FaultPlan().crash(rank=0, at_op=1),
                    return_exceptions=True)
    assert time.monotonic() - t0 < 5.0
    assert isinstance(out[0], RankCrashedError)
    assert all(isinstance(o, CommError) for o in out)


# ----------------------------------------------------------------- deadlock
def test_tag_mismatch_cycle_reported_within_two_seconds():
    """The issue's canonical cycle: 0 recv-from 1, 1 recv-from 0, wrong tags."""
    def worker(comm):
        peer = 1 - comm.rank
        comm.send(comm.rank, dest=peer, tag=comm.rank)      # tags 0 and 1
        return comm.recv(source=peer, tag=5)                # nobody sends tag 5

    t0 = time.monotonic()
    with pytest.raises(DeadlockError) as excinfo:
        run_ranks(2, worker, timeout=60.0)
    elapsed = time.monotonic() - t0
    assert elapsed < 2.0, f"deadlock diagnosis took {elapsed:.1f}s"

    report = excinfo.value.report
    assert report.ranks == (0, 1)
    for blocked in report.blocked:
        assert blocked.op == "recv"
        assert blocked.peer == 1 - blocked.rank
        assert blocked.tag == 5
    assert set(report.cycle) == {0, 1}


def test_deadlock_report_names_barrier():
    """A rank skipping a barrier wedges the rest; the report says 'barrier'."""
    def worker(comm):
        if comm.rank == 0:
            return comm.recv(source=2, tag=77)   # never sent
        comm.barrier()
        return True

    with pytest.raises(DeadlockError) as excinfo:
        run_ranks(3, worker, timeout=60.0)
    ops = {b.rank: b.op for b in excinfo.value.report.blocked}
    assert ops[0] == "recv"
    assert ops[1] == "barrier" and ops[2] == "barrier"


def test_tag_mismatch_in_transpose_forward_is_diagnosed():
    """ISSUE 2 acceptance: a deliberately-introduced tag mismatch inside
    transpose_forward surfaces as a DeadlockReport naming the blocked ranks
    and the transpose operation in < 5 s."""
    nrows, ncols = 8, 6
    rng = np.random.default_rng(0)
    full = rng.normal(size=(nrows, ncols))

    orig = CommBase._collective_tag

    def skewed_tag(self, base):
        # Rank-dependent collective tags: the textbook way transposes wedge.
        return orig(self, base) + self.rank

    def worker(comm):
        lo, hi = block_bounds(nrows, comm.size, comm.rank)
        return transpose_forward(comm, full[lo:hi], nrows, ncols)

    # Patch the substrate-shared base so the skew applies on thread AND
    # process communicators (forked children inherit the patched class).
    CommBase._collective_tag = skewed_tag
    try:
        t0 = time.monotonic()
        with pytest.raises(DeadlockError) as excinfo:
            run_ranks(3, worker, timeout=60.0)
        elapsed = time.monotonic() - t0
    finally:
        CommBase._collective_tag = orig

    assert elapsed < 5.0, f"transpose deadlock diagnosis took {elapsed:.1f}s"
    report = excinfo.value.report
    assert len(report.blocked) >= 2
    assert any(b.op == "transpose.forward" for b in report.blocked)


# ------------------------------------------------------- message perturbation
def test_delayed_message_arrives_late_but_intact():
    def worker(comm):
        if comm.rank == 0:
            comm.send(np.arange(3.0), dest=1, tag=4)
            return None
        t0 = time.monotonic()
        data = comm.recv(source=0, tag=4)
        return (time.monotonic() - t0, data)

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().delay(0.3, src=0, dest=1))
    waited, data = out[1]
    assert waited >= 0.25
    np.testing.assert_array_equal(data, np.arange(3.0))


def test_duplicate_delivery():
    def worker(comm):
        if comm.rank == 0:
            comm.send("hello", dest=1, tag=2)
            return None
        return (comm.recv(source=0, tag=2), comm.recv(source=0, tag=2))

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().duplicate(src=0, dest=1, times=1))
    assert out[1] == ("hello", "hello")


def test_corruption_is_deterministic_and_detectable():
    payload = np.arange(5.0)

    def worker(comm):
        if comm.rank == 0:
            comm.send(payload, dest=1)
            return None
        return comm.recv(source=0)

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().corrupt(src=0, dest=1))
    assert not np.array_equal(out[1], payload)
    np.testing.assert_array_equal(out[1], -payload - 1)


def test_reorder_swaps_consecutive_messages():
    def worker(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=3)
            comm.send("second", dest=1, tag=3)
            return None
        return (comm.recv(source=0, tag=3), comm.recv(source=0, tag=3))

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().reorder(src=0, dest=1))
    assert out[1] == ("second", "first")


def test_reorder_holdback_is_flushed_not_wedged():
    """A single held message must be released, not turn into a fake deadlock."""
    def worker(comm):
        if comm.rank == 0:
            comm.send("only", dest=1, tag=6)
            return None
        return comm.recv(source=0, tag=6)

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().reorder(src=0, dest=1))
    assert out[1] == "only"


def test_faults_thread_through_collectives():
    """Corrupting root's outbound traffic perturbs a bcast result."""
    def worker(comm):
        return comm.bcast(np.ones(4) if comm.rank == 0 else None, root=0)

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().corrupt(src=0, dest=1))
    np.testing.assert_array_equal(out[0], np.ones(4))      # root untouched
    np.testing.assert_array_equal(out[1], -np.ones(4) - 1)  # peer corrupted


def test_delay_under_collective_does_not_break_correctness():
    """Delays slow a reduction but cannot change its value."""
    def worker(comm):
        return comm.allreduce(comm.rank + 1, op="sum")

    out = run_ranks(4, worker, timeout=30.0, faults=FaultPlan().delay(0.05))
    assert out == [10, 10, 10, 10]


# ------------------------------------------------------------------- stats
def test_comm_stats_label_traffic_by_operation():
    def worker(comm):
        comm.bcast(np.zeros(8) if comm.rank == 0 else None, root=0)
        comm.barrier()
        return comm.stats

    stats = run_ranks(4, worker, timeout=30.0)
    assert all(s.op_calls.get("bcast") == 1 for s in stats)
    assert all(s.op_calls.get("barrier") == 1 for s in stats)
    total_sent = sum(s.msgs_sent for s in stats)
    total_recv = sum(s.msgs_recv for s in stats)
    assert total_sent == total_recv > 0
    # Traffic inside the barrier's gather/bcast is charged to "barrier".
    assert sum(s.op_msgs.get("barrier", 0) for s in stats) > 0


# -------------------------------------------------------- process substrate
def test_process_crash_named_on_every_peer_process():
    """ISSUE 7: an injected crash in a forked rank process surfaces as a
    CommError naming the dead rank on every peer process — the diagnosis
    crosses the process boundary intact (origin_rank included)."""
    def worker(comm):
        if comm.rank == 2:
            comm.barrier()  # injected crash fires here
            return "unreachable"
        return comm.recv(source=2, tag=9)

    t0 = time.monotonic()
    out = run_ranks(4, worker, timeout=30.0,
                    faults=FaultPlan().crash(rank=2, at_op=1),
                    return_exceptions=True, substrate="process")
    elapsed = time.monotonic() - t0
    assert elapsed < 5.0, f"crash diagnosis took {elapsed:.1f}s"
    assert isinstance(out[2], RankCrashedError)
    for rank in (0, 1, 3):
        assert isinstance(out[rank], CommError), \
            f"rank {rank} did not fail cleanly: {out[rank]!r}"
        assert "rank 2 crashed" in str(out[rank])
        assert out[rank].origin_rank == 2


def test_process_mistagged_coupler_exchange_deadlock_report():
    """ISSUE 7: a wrong-tag coupler exchange on forked rank pools yields a
    DeadlockReport — marshalled back from the child processes — naming
    every blocked rank with its op, peer and tag, in under a second."""
    layout = PoolLayout(n_atm=2, n_ocn=1)

    def worker(comm):
        role = layout.role_of(comm.rank)
        if role == "atm":
            return comm.recv(layout.cpl_rank, TAG_SURFACE)
        if role == "cpl":
            # Mis-tagged: the forcing goes out under TAG_SST, so the ocean
            # (waiting on TAG_FORCING) never matches it.
            comm.send({"taux": np.zeros(3)}, layout.ocn_leader, TAG_SST)
            return comm.recv(layout.atm_ranks[0], TAG_ATM_STATE)
        return comm.recv(layout.cpl_rank, TAG_FORCING)

    t0 = time.monotonic()
    with pytest.raises(DeadlockError) as excinfo:
        run_ranks(layout.world_size, worker, timeout=60.0,
                  substrate="process")
    elapsed = time.monotonic() - t0
    assert elapsed < 1.0, f"deadlock diagnosis took {elapsed:.1f}s"

    report = excinfo.value.report
    assert set(report.ranks) == {0, 1, 2, 3}
    by_rank = {b.rank: b for b in report.blocked}
    for r in layout.atm_ranks:
        assert by_rank[r].peer == layout.cpl_rank
        assert by_rank[r].tag == TAG_SURFACE
        assert by_rank[r].op == "recv"
    assert by_rank[layout.ocn_leader].peer == layout.cpl_rank
    assert by_rank[layout.ocn_leader].tag == TAG_FORCING


def test_process_faults_thread_through_collectives():
    """The router applies FaultPlan transforms: corruption of root's
    outbound traffic perturbs a process-substrate bcast identically to
    the thread substrate (including shm-parked bulk payloads)."""
    big = 16384  # float64 payload over the shm threshold (128 KiB)

    def worker(comm):
        return comm.bcast(np.ones(big) if comm.rank == 0 else None, root=0)

    out = run_ranks(2, worker, timeout=30.0,
                    faults=FaultPlan().corrupt(src=0, dest=1),
                    substrate="process")
    np.testing.assert_array_equal(out[0], np.ones(big))       # root untouched
    np.testing.assert_array_equal(out[1], -np.ones(big) - 1)  # peer corrupted
