"""Integration tests for the FOAM ocean model and its baseline."""

import numpy as np
import pytest

from repro.ocean import (
    BarotropicParams,
    BarotropicSolver,
    ConventionalOceanModel,
    OceanForcing,
    OceanGrid,
    OceanModel,
    aquaplanet_topography,
    world_topography,
)


@pytest.fixture(scope="module")
def aqua():
    g = OceanGrid(nx=24, ny=24, nlev=6)
    land, depth = aquaplanet_topography(g)
    return OceanModel(g, land, depth)


@pytest.fixture(scope="module")
def world():
    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    return OceanModel(g, land, depth)


def wind(model):
    g = model.grid
    tx = 0.1 * np.sin(2 * g.lats[:, None]) * np.ones((1, g.nx)) * model.mask2d
    return OceanForcing(tx, np.zeros_like(tx),
                        np.zeros((g.ny, g.nx)), np.zeros((g.ny, g.nx)))


# ------------------------------------------------------------- barotropic
def test_barotropic_params_validation():
    with pytest.raises(ValueError):
        BarotropicParams(slow_factor=0.0)
    with pytest.raises(ValueError):
        BarotropicParams(slow_factor=1.5)


def test_slowing_relaxes_cfl_by_slow_factor():
    g = OceanGrid(nx=24, ny=24, nlev=4)
    land, depth = aquaplanet_topography(g)
    mask = ~land
    fast = BarotropicSolver(g, depth, mask, BarotropicParams(slow_factor=1.0))
    slow = BarotropicSolver(g, depth, mask, BarotropicParams(slow_factor=0.1))
    assert slow.dt_max == pytest.approx(10.0 * fast.dt_max)
    assert slow.n_substeps(6 * 3600.0) < fast.n_substeps(6 * 3600.0)


def test_barotropic_conserves_volume():
    """Mean sea level is exactly conserved by the flux-form eta step."""
    g = OceanGrid(nx=24, ny=24, nlev=4)
    land, depth = world_topography(g)
    solver = BarotropicSolver(g, depth, ~land)
    rng = np.random.default_rng(0)
    eta = np.where(~land, rng.normal(scale=0.1, size=(24, 24)), 0.0)
    ubar = np.where(~land, rng.normal(scale=0.05, size=(24, 24)), 0.0)
    vbar = np.where(~land, rng.normal(scale=0.05, size=(24, 24)), 0.0)
    zero = np.zeros((24, 24))
    msl0 = solver.mean_sea_level(eta)
    for _ in range(5):
        eta, ubar, vbar, _ = solver.step(eta, ubar, vbar, zero, zero, 6 * 3600.0)
    assert solver.mean_sea_level(eta) == pytest.approx(msl0, abs=1e-12)
    assert np.all(np.isfinite(eta))


def test_barotropic_geostrophic_adjustment_bounded():
    """An eta bump radiates (slowed) gravity waves and stays bounded."""
    g = OceanGrid(nx=24, ny=24, nlev=4)
    land, depth = aquaplanet_topography(g)
    solver = BarotropicSolver(g, depth, ~land)
    eta = np.zeros((24, 24))
    eta[12, 12] = 1.0
    ubar = np.zeros_like(eta)
    vbar = np.zeros_like(eta)
    zero = np.zeros_like(eta)
    for _ in range(40):
        eta, ubar, vbar, _ = solver.step(eta, ubar, vbar, zero, zero, 3600.0)
    assert np.abs(eta).max() <= 1.0 + 1e-9
    assert np.all(np.isfinite(ubar))


# ------------------------------------------------------------- ocean model
def test_initial_state_masked_and_warm_tropics(world):
    st = world.initial_state()
    sst = world.sst(st)
    j_eq = world.grid.ny // 2
    j_hi = world.grid.ny - 2
    assert np.nanmean(sst[j_eq]) > 15.0
    assert np.nanmean(sst[j_hi]) < 8.0
    assert np.all(st.temp[~world.mask3d] == 0.0)
    with pytest.raises(ValueError):
        world.initial_state("el_nino")


def test_rest_unforced_stays_calm(aqua):
    st = aqua.initial_state()
    f = OceanForcing.zeros(aqua.grid.ny, aqua.grid.nx)
    out = aqua.run(st, 20, f)
    u, v = aqua.total_velocity(out)
    assert np.abs(u).max() < 0.5
    assert np.all(np.isfinite(out.temp))


def test_wind_driven_spinup_produces_circulation(world):
    st = world.initial_state()
    out = world.run(st, 80, wind(world))
    u, v = world.total_velocity(out)
    assert 0.01 < np.abs(u).max() < 5.0
    ke = world.total_kinetic_energy(out)
    assert ke > 0


def test_tracer_means_nearly_conserved_unforced(aqua):
    st = aqua.initial_state()
    t0 = aqua.mean_temperature(st)
    s0 = aqua.mean_salinity(st)
    out = aqua.run(st, 40, OceanForcing.zeros(aqua.grid.ny, aqua.grid.nx))
    assert abs(aqua.mean_temperature(out) - t0) < 0.05
    assert abs(aqua.mean_salinity(out) - s0) < 0.01


def test_heat_flux_warms_ocean(aqua):
    """Heated run ends warmer than an otherwise identical control run."""
    g = aqua.grid
    f_warm = OceanForcing(np.zeros((g.ny, g.nx)), np.zeros((g.ny, g.nx)),
                          np.full((g.ny, g.nx), 200.0), np.zeros((g.ny, g.nx)))
    out_warm = aqua.run(aqua.initial_state(), 20, f_warm)
    out_ctrl = aqua.run(aqua.initial_state(), 20,
                        OceanForcing.zeros(g.ny, g.nx))
    assert aqua.mean_temperature(out_warm) > aqua.mean_temperature(out_ctrl)


def test_freshwater_freshens_surface(aqua):
    st = aqua.initial_state()
    g = aqua.grid
    f = OceanForcing(np.zeros((g.ny, g.nx)), np.zeros((g.ny, g.nx)),
                     np.zeros((g.ny, g.nx)), np.full((g.ny, g.nx), 1e-4))
    s0 = float(np.mean(st.salt[0]))
    out = aqua.run(st, 20, f)
    assert float(np.mean(out.salt[0])) < s0


def test_sst_clamp_enforced(world):
    """Surface temperature never falls below the paper's -1.92 C."""
    st = world.initial_state()
    g = world.grid
    # Brutal cooling everywhere.
    f = OceanForcing(np.zeros((g.ny, g.nx)), np.zeros((g.ny, g.nx)),
                     np.full((g.ny, g.nx), -800.0), np.zeros((g.ny, g.nx)))
    out = world.run(st, 30, f)
    assert np.nanmin(world.sst(out)) >= -1.92 - 1e-9


def test_world_run_one_season_stable(world):
    st = world.initial_state()
    g = world.grid
    tx = 0.1 * np.sin(2 * g.lats[:, None]) * np.ones((1, g.nx)) * world.mask2d
    q = (60.0 * np.cos(g.lats[:, None]) ** 2 - 30.0) * np.ones((1, g.nx)) * world.mask2d
    f = OceanForcing(tx, np.zeros_like(tx), q, np.zeros((g.ny, g.nx)))
    out = world.run(st, 360, f)   # 90 days
    u, v = world.total_velocity(out)
    for arr in (u, v, out.temp, out.salt, out.eta):
        assert np.all(np.isfinite(arr))
    assert np.abs(u).max() < 5.0


def test_depth_mean_removal_invariant(world):
    st = world.initial_state()
    rng = np.random.default_rng(3)
    field = np.where(world.mask3d, rng.normal(size=st.u.shape), 0.0)
    out, mean = world.remove_depth_mean(field)
    resid = world.depth_mean(out)
    np.testing.assert_allclose(resid[world.mask2d], 0.0, atol=1e-12)


def test_op_count_increases(world):
    st = world.initial_state()
    c0 = world.op_count
    world.step(st, wind(world))
    assert world.op_count > c0


# ------------------------------------------------------------- baseline
def test_conventional_baseline_needs_many_more_steps():
    """The ablation core: FOAM's techniques cut ops/simulated-time ~10x."""
    g = OceanGrid(nx=32, ny=32, nlev=8)
    land, depth = world_topography(g)
    foam = OceanModel(g, land, depth)
    conv = ConventionalOceanModel(g, land, depth)
    n = conv.steps_per_long()
    assert n > 5   # unsplit model must take many small steps per 6h

    foam.op_count = 0
    conv.op_count = 0
    st_f = foam.initial_state()
    st_c = conv.initial_state()
    f = OceanForcing.zeros(g.ny, g.nx)
    foam.step(st_f, f)
    conv.step(st_c, f)
    ratio = conv.op_count / foam.op_count
    assert ratio > 3.0   # order-of-magnitude class advantage


def test_conventional_baseline_physics_comparable():
    """Same equations: short unforced runs agree between FOAM and baseline."""
    g = OceanGrid(nx=24, ny=24, nlev=5)
    land, depth = aquaplanet_topography(g)
    foam = OceanModel(g, land, depth)
    conv = ConventionalOceanModel(g, land, depth)
    f = OceanForcing.zeros(g.ny, g.nx)
    out_f = foam.run(foam.initial_state(), 4, f)
    out_c = conv.run(conv.initial_state(), 4, f)
    # Temperature fields stay close (same physics, different step sizes).
    diff = np.abs(out_f.temp - out_c.temp).max()
    assert diff < 0.5
