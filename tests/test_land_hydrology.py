"""Tests for the land model, bucket hydrology, river routing, and sea ice."""

import numpy as np
import pytest

from repro.coupler import (
    HydrologyState,
    LandModel,
    LandState,
    RiverModel,
    SeaIceModel,
    SeaIceState,
    derive_flow_directions,
    distance_to_ocean,
    snowfall_partition,
    soil_types_from_latitude,
    step_hydrology,
    wetness_factor,
)
from repro.coupler.seaice import SEAICE_MIN_THICKNESS
from repro.util.constants import (
    RHO_WATER,
    SEAICE_STRESS_DIVISOR,
    SOIL_MOISTURE_CAPACITY,
)


# ------------------------------------------------------------- land model
def test_soil_type_map_structure():
    lat = np.linspace(-85, 85, 40)
    t = soil_types_from_latitude(lat, 16)
    assert t.min() >= 0 and t.max() <= 4
    assert (t[np.abs(lat) >= 70] == 4).all()          # polar land ice
    assert (t[(np.abs(lat) > 16) & (np.abs(lat) < 34)] != 4).all()


def test_land_model_rejects_bad_types():
    with pytest.raises(ValueError):
        LandModel(np.array([[0, 7]]))


def test_land_ice_brighter_than_forest():
    lm = LandModel(np.array([[2, 4]]))
    alb = lm.albedo()
    assert alb[0, 1] > 2 * alb[0, 0]


def test_snow_brightens_surface():
    lm = LandModel(np.array([[2]]))
    bare = lm.albedo(np.array([[0.0]]))
    snowy = lm.albedo(np.array([[0.5]]))
    assert snowy[0, 0] > bare[0, 0] + 0.3


def test_soil_diffusion_warms_top_layer_under_positive_flux():
    lm = LandModel(np.zeros((2, 2), dtype=int))
    st = LandState.isothermal(2, 2, 280.0)
    out = lm.step(st, np.full((2, 2), 100.0), dt=3600.0)
    assert np.all(out.soil_temp[0] > 280.0)
    assert np.all(out.soil_temp[-1] == pytest.approx(280.0, abs=0.2))


def test_soil_diffusion_relaxes_gradient():
    lm = LandModel(np.zeros((1, 1), dtype=int))
    st = LandState(np.array([300.0, 280.0, 280.0, 280.0]).reshape(4, 1, 1))
    out = st
    for _ in range(400):
        out = lm.step(out, np.zeros((1, 1)), dt=3600.0)
    spread = out.soil_temp.max() - out.soil_temp.min()
    assert spread < 5.0


# ------------------------------------------------------------- hydrology
def test_wetness_ramp_and_saturation():
    st = HydrologyState(
        soil_moisture=np.array([[0.0, 0.05, 0.1125, 0.15]]),
        snow_depth=np.zeros((1, 4)))
    dw = wetness_factor(st)
    assert dw[0, 0] == 0.0
    assert dw[0, 1] == pytest.approx(0.05 / (0.75 * 0.15))
    assert dw[0, 2] == pytest.approx(1.0)
    assert dw[0, 3] == 1.0


def test_wetness_is_one_over_snow_and_ice():
    st = HydrologyState(soil_moisture=np.zeros((1, 2)),
                        snow_depth=np.array([[0.1, 0.0]]))
    dw = wetness_factor(st, land_ice=np.array([[False, True]]))
    assert dw[0, 0] == 1.0 and dw[0, 1] == 1.0


def test_snowfall_requires_all_three_levels_cold():
    """Paper rule: snow iff ground AND lowest two atm levels below freezing."""
    t = np.array([[270.0]])
    warm = np.array([[275.0]])
    assert snowfall_partition(None, t, t, t)[0, 0] == 1.0
    assert snowfall_partition(None, warm, t, t)[0, 0] == 0.0
    assert snowfall_partition(None, t, warm, t)[0, 0] == 0.0
    assert snowfall_partition(None, t, t, warm)[0, 0] == 0.0


def test_bucket_overflow_becomes_runoff():
    st = HydrologyState(soil_moisture=np.full((1, 1), 0.14),
                        snow_depth=np.zeros((1, 1)))
    dt = 3600.0
    heavy_rain = np.full((1, 1), 0.05 / dt * RHO_WATER)  # 5 cm per step
    warm = np.full((1, 1), 290.0)
    new, runoff = step_hydrology(
        st, precip=heavy_rain, evaporation=np.zeros((1, 1)),
        ground_temp=warm, t_low1=warm, t_low2=warm,
        melt_energy=np.zeros((1, 1)), dt=dt, land_mask=np.ones((1, 1), bool))
    assert new.soil_moisture[0, 0] == pytest.approx(SOIL_MOISTURE_CAPACITY)
    expect_runoff = (0.14 + 0.05 - 0.15) * RHO_WATER / dt
    assert runoff[0, 0] == pytest.approx(expect_runoff)


def test_hydrology_water_budget_closes():
    """d(storage) = P - E - runoff exactly."""
    rng = np.random.default_rng(0)
    st = HydrologyState(soil_moisture=rng.uniform(0, 0.15, (4, 4)),
                        snow_depth=rng.uniform(0, 0.3, (4, 4)))
    dt = 1800.0
    precip = rng.uniform(0, 2e-4, (4, 4))
    evap = rng.uniform(0, 5e-5, (4, 4))
    cold = np.full((4, 4), 268.0)
    new, runoff = step_hydrology(
        st, precip=precip, evaporation=evap, ground_temp=cold,
        t_low1=cold, t_low2=cold, melt_energy=np.zeros((4, 4)),
        dt=dt, land_mask=np.ones((4, 4), bool))
    storage0 = (st.soil_moisture + st.snow_depth) * RHO_WATER
    storage1 = (new.soil_moisture + new.snow_depth) * RHO_WATER
    np.testing.assert_allclose(storage1 - storage0,
                               dt * (precip - evap - runoff), atol=1e-9)


def test_deep_snow_sheds_to_river():
    """Snow beyond 1 m liquid equivalent runs off (ice-sheet equilibrium)."""
    st = HydrologyState(soil_moisture=np.zeros((1, 1)),
                        snow_depth=np.full((1, 1), 0.999))
    dt = 3600.0
    cold = np.full((1, 1), 260.0)
    snowstorm = np.full((1, 1), 0.01 / dt * RHO_WATER)
    new, runoff = step_hydrology(
        st, precip=snowstorm, evaporation=np.zeros((1, 1)),
        ground_temp=cold, t_low1=cold, t_low2=cold,
        melt_energy=np.zeros((1, 1)), dt=dt, land_mask=np.ones((1, 1), bool))
    assert new.snow_depth[0, 0] == pytest.approx(1.0)
    assert runoff[0, 0] > 0


# ------------------------------------------------------------- river model
def make_island(ny=9, nx=12):
    land = np.zeros((ny, nx), dtype=bool)
    land[3:7, 4:9] = True
    return land


def test_distance_to_ocean_zero_on_water():
    land = make_island()
    d = distance_to_ocean(land)
    assert (d[~land] == 0).all()
    assert (d[land] >= 1).all()
    # Center of the island is farthest.
    assert d[5, 6] >= d[3, 4]


def test_flow_directions_point_downhill():
    land = make_island()
    d = distance_to_ocean(land)
    dirs = derive_flow_directions(land)
    from repro.coupler import NEIGHBORS
    ny, nx = land.shape
    for j in range(ny):
        for i in range(nx):
            if land[j, i] and dirs[j, i] >= 0:
                dj, di = NEIGHBORS[dirs[j, i]]
                assert d[j + dj, (i + di) % nx] < d[j, i]


def test_river_conserves_water():
    land = make_island()
    areas = np.full(land.shape, 1e10)
    spacing = np.full(land.shape[0], 2e5)
    rm = RiverModel(land, areas, spacing)
    dt = 6 * 3600.0
    runoff = np.where(land, 1e-4, 0.0)
    delivered = 0.0
    added = 0.0
    for _ in range(50):
        out = rm.step(runoff, dt)
        delivered += float(np.sum(out * areas)) * dt
        added += float(np.sum(runoff * np.where(land, areas, 0.0))) * dt
    stored = rm.total_storage() * 1000.0   # m^3 -> kg
    np.testing.assert_allclose(added, delivered + stored, rtol=1e-10)


def test_river_delivers_to_coastal_ocean_only():
    land = make_island()
    areas = np.full(land.shape, 1e10)
    spacing = np.full(land.shape[0], 2e5)
    rm = RiverModel(land, areas, spacing)
    out = np.zeros(land.shape)
    for _ in range(30):
        out = rm.step(np.where(land, 1e-4, 0.0), 6 * 3600.0)
    assert np.all(out[land] == 0.0)
    assert out.sum() > 0
    # Mouths hug the coastline: every delivery cell touches land.
    mouths = np.argwhere(out > 0)
    for j, i in mouths:
        neighborhood = land[max(0, j - 1):j + 2, max(0, i - 1):i + 2]
        assert neighborhood.any()


def test_river_finite_delay():
    """Water takes d/u per cell: discharge ramps up over multiple steps."""
    land = make_island()
    areas = np.full(land.shape, 1e10)
    spacing = np.full(land.shape[0], 3e5)
    rm = RiverModel(land, areas, spacing)
    dt = 6 * 3600.0
    runoff = np.where(land, 1e-4, 0.0)
    first = rm.step(runoff, dt).sum()
    for _ in range(60):
        last = rm.step(runoff, dt).sum()
    assert last > 2 * max(first, 1e-30)


def test_set_direction_hand_tuning():
    land = make_island()
    areas = np.full(land.shape, 1e10)
    spacing = np.full(land.shape[0], 2e5)
    rm = RiverModel(land, areas, spacing)
    rm.set_direction(5, 6, 1)
    assert rm.direction[5, 6] == 1
    with pytest.raises(ValueError):
        rm.set_direction(0, 0, 1)      # ocean cell
    with pytest.raises(ValueError):
        rm.set_direction(5, 6, 9)


# ------------------------------------------------------------- sea ice
def test_ice_forms_at_clamp_under_heat_loss():
    model = SeaIceModel()
    st = SeaIceState.ice_free(2, 2)
    ocean = np.ones((2, 2), dtype=bool)
    sst = np.full((2, 2), 271.23)          # at the clamp
    loss = np.full((2, 2), 200.0)
    cold_air = np.full((2, 2), 260.0)
    fw_total = np.zeros((2, 2))
    for _ in range(200):
        st, fw = model.step(st, sst=sst, ocean_heat_loss=loss,
                            air_temp=cold_air, ocean_mask=ocean, dt=6 * 3600.0)
        fw_total += fw
    assert np.all(st.mask)
    assert np.all(fw_total < 0)           # water left the ocean on formation


def test_no_ice_in_warm_water():
    model = SeaIceModel()
    st = SeaIceState.ice_free(1, 1)
    st, fw = model.step(st, sst=np.array([[290.0]]),
                        ocean_heat_loss=np.array([[300.0]]),
                        air_temp=np.array([[280.0]]),
                        ocean_mask=np.ones((1, 1), bool), dt=21600.0)
    assert st.thickness[0, 0] == 0.0
    assert fw[0, 0] == 0.0


def test_ice_melts_under_warm_air_and_returns_freshwater():
    model = SeaIceModel()
    st = SeaIceState(thickness=np.full((1, 1), 0.3),
                     surface_temp=np.full((1, 1), 265.0))
    warm_air = np.array([[285.0]])
    fw_sum = 0.0
    for _ in range(600):
        st, fw = model.step(st, sst=np.array([[272.0]]),
                            ocean_heat_loss=np.array([[0.0]]),
                            air_temp=warm_air,
                            ocean_mask=np.ones((1, 1), bool), dt=21600.0)
        fw_sum += fw[0, 0]
    assert st.thickness[0, 0] < SEAICE_MIN_THICKNESS
    assert fw_sum > 0


def test_stress_divided_by_fifteen():
    taux = np.array([[0.15, 0.15]])
    tauy = np.array([[0.3, 0.3]])
    ice = np.array([[True, False]])
    tx, ty = SeaIceModel.stress_to_ocean(taux, tauy, ice)
    assert tx[0, 0] == pytest.approx(0.15 / SEAICE_STRESS_DIVISOR)
    assert tx[0, 1] == 0.15
    assert ty[0, 0] == pytest.approx(0.3 / SEAICE_STRESS_DIVISOR)
