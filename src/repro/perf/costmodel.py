"""Operation-count model of the FOAM components.

Counts are derived from the array shapes of the actual implementation (the
same loops our NumPy code executes), with per-point constants calibrated
once against the paper's anchor measurements:

* the atmosphere is *physics dominated* ("attributable to the relatively
  complicated atmospheric physics code" — paper section 5);
* radiation costs ~10 ordinary physics steps and runs twice a day (the long
  bars of Figure 2);
* the FOAM ocean needs roughly 10x fewer ops per simulated time than a
  conventional formulation (section 4.2), which emerges here from the
  triple-rate structure rather than being hardcoded;
* at the paper's resolutions the R15 atmosphere costs ~16x the 128x128
  ocean per simulated day (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Calibrated per-point constants (flops).
PHYSICS_OPS_PER_COLUMN_LEVEL = 2900.0     # full CCM-style physics suite
RADIATION_MULTIPLIER = 10.0               # one radiation pass ~ 10 physics passes
DYNAMICS_TRANSFORM_PASSES = 12.0          # synthesis+analysis per step
OCEAN_OPS_3D_SLOW = 450.0                 # advection+dissipation+mixing per pt
OCEAN_OPS_3D_FAST = 25.0                  # internal (PGF+Coriolis+wdT/dz) per pt
OCEAN_OPS_2D_BARO = 30.0                  # barotropic subcycle per pt
CONVENTIONAL_OCEAN_DT = 1800.0            # a 1997 MOM-class model's time step
CONVENTIONAL_ELLIPTIC_ITERS = 50.0        # rigid-lid streamfunction solve
COUPLER_OPS_PER_OVERLAP_CELL = 220.0      # bulk fluxes + averaging


@dataclass(frozen=True)
class AtmosphereCost:
    """R15-class spectral atmosphere cost structure."""

    nlat: int = 40
    nlon: int = 48
    nlev: int = 18
    mmax: int = 15
    dt: float = 1800.0
    item_bytes: float = 8.0           # bytes per real value (4 under float32)

    @property
    def ncols(self) -> int:
        return self.nlat * self.nlon

    def physics_ops(self) -> float:
        return PHYSICS_OPS_PER_COLUMN_LEVEL * self.ncols * self.nlev

    def dynamics_ops(self) -> float:
        nm = self.mmax + 1
        nk = self.mmax + 1
        legendre = 8.0 * self.nlat * nm * nk * self.nlev * DYNAMICS_TRANSFORM_PASSES
        fft = 5.0 * self.nlat * self.nlon * np.log2(self.nlon) \
            * self.nlev * DYNAMICS_TRANSFORM_PASSES
        return legendre + fft

    def step_ops(self, radiation: bool = False) -> float:
        ops = self.physics_ops() + self.dynamics_ops()
        if radiation:
            ops += RADIATION_MULTIPLIER * self.physics_ops()
        return ops

    def steps_per_day(self) -> int:
        return int(round(86400.0 / self.dt))

    def day_ops(self, radiation_steps_per_day: int = 2) -> float:
        n = self.steps_per_day()
        return (n - radiation_steps_per_day) * self.step_ops(False) \
            + radiation_steps_per_day * self.step_ops(True)

    def transpose_bytes(self) -> float:
        """Data moved by the parallel spectral transpose per step (all ranks)."""
        # Fourier coefficients for all levels; complex = two reals.
        return (2.0 * self.item_bytes) * self.nlat * (self.mmax + 1) \
            * self.nlev * 2


@dataclass(frozen=True)
class OceanCost:
    """FOAM ocean cost structure (triple-rate stepping)."""

    nx: int = 128
    ny: int = 128
    nlev: int = 16
    ocean_fraction: float = 0.65      # fraction of cells that are water
    n_internal: int = 6
    barotropic_substeps: int = 4      # per internal step, slowed CFL
    dt_long: float = 6 * 3600.0
    item_bytes: float = 8.0           # bytes per real value (4 under float32)

    @property
    def n3(self) -> float:
        return self.nx * self.ny * self.nlev * self.ocean_fraction

    @property
    def n2(self) -> float:
        return self.nx * self.ny * self.ocean_fraction

    def call_ops(self) -> float:
        """Ops for one long (6 h) FOAM ocean step."""
        return (OCEAN_OPS_3D_SLOW * self.n3
                + self.n_internal * OCEAN_OPS_3D_FAST * self.n3
                + self.n_internal * self.barotropic_substeps
                * OCEAN_OPS_2D_BARO * self.n2)

    def calls_per_day(self) -> int:
        return int(round(86400.0 / self.dt_long))

    def day_ops(self) -> float:
        return self.calls_per_day() * self.call_ops()

    def conventional_day_ops(self) -> float:
        """A state-of-the-art 1997 ocean (MOM-class, rigid lid): every 3-D
        term evaluated at a ~30-minute leapfrog step, plus an elliptic
        barotropic streamfunction solve each step.  This is the E9
        ablation's denominator — the paper's 'roughly a tenfold increase in
        the amount of simulated time represented per unit of computation'.
        """
        steps_per_long = self.dt_long / CONVENTIONAL_OCEAN_DT
        per_step = (OCEAN_OPS_3D_SLOW + OCEAN_OPS_3D_FAST) * self.n3 \
            + CONVENTIONAL_ELLIPTIC_ITERS * 15.0 * self.n2
        return self.calls_per_day() * steps_per_long * per_step

    def halo_bytes(self) -> float:
        """Halo bytes exchanged per long step per rank boundary (approx)."""
        return self.item_bytes * 4 * (self.nx + self.ny) * self.nlev


@dataclass(frozen=True)
class CouplerCost:
    """Overlap-grid flux computation + land/river/ice, per atmosphere step."""

    n_overlap: int = 176 * 170        # merged-edge counts at paper resolution

    def step_ops(self) -> float:
        return COUPLER_OPS_PER_OVERLAP_CELL * self.n_overlap


def foam_paper_costs() -> tuple[AtmosphereCost, OceanCost, CouplerCost]:
    """The production-resolution cost triple (R15 atm, 128^2 ocean)."""
    return AtmosphereCost(), OceanCost(), CouplerCost()


def transpose_bytes_from_stats(stats) -> float:
    """Full-exchange transpose volume estimated from measured CommStats.

    ``stats`` is the per-rank list returned by
    ``repro.parallel.components.measure_transpose_comm`` (or any run whose
    transpose traffic is labeled ``transpose.*``).  An alltoall on ``k``
    ranks moves only the off-diagonal ``(k-1)/k`` of the global array, so
    the measurement is rescaled to the full exchange volume the
    :meth:`MachineModel.alltoall_time` formula expects — making the
    estimate independent of the rank count it was measured at.
    """
    k = len(stats)
    measured = float(sum(s.bytes_for("transpose") for s in stats))
    if k <= 1:
        return measured
    return measured * k / (k - 1)


def transpose_messages_from_stats(stats) -> int:
    """Total transpose messages measured across ranks (diagnostic)."""
    return sum(s.msgs_for("transpose") for s in stats)


def atmosphere_ocean_cost_ratio(atm: AtmosphereCost | None = None,
                                ocn: OceanCost | None = None) -> float:
    """The paper's ~16x figure: atmosphere vs ocean ops per simulated day."""
    atm = atm or AtmosphereCost()
    ocn = ocn or OceanCost()
    return atm.day_ops() / ocn.day_ops()


# ---------------------------------------------------------------------------
# Measured-cost calibration: profiler wall clock -> event-simulator inputs.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredCosts:
    """Per-section wall-clock costs measured by :mod:`repro.perf.profiler`.

    The measured counterpart of the analytic (:class:`AtmosphereCost`,
    :class:`OceanCost`, :class:`CouplerCost`) op counts: one serial-run
    second figure per simulator section, which
    :func:`repro.perf.eventsim.simulate_coupled_day` divides across ranks
    exactly the way it divides op counts.  This extends the PR-1
    ``transpose_bytes_from_stats`` pattern (measured traffic replacing an
    analytic formula) from communication volume to compute cost.
    """

    step_seconds: float              # ordinary atmosphere step, all ranks' work
    radiation_step_seconds: float    # atmosphere step that recomputes radiation
    coupler_seconds: float           # coupler work per atmosphere step
    ocean_call_seconds: float        # one long (coupling-interval) ocean call
    transpose_seconds: float = 0.0   # forward+backward spectral transpose/step
    dynamics_seconds: float = 0.0    # dynamics slice of a step (overlap window)
    # Coupler work on the atmosphere's critical path even when the coupler
    # runs on its own rank (surface merge + turbulent fluxes: the atmosphere
    # cannot start physics without their result).  None = not separately
    # measured; the simulator then estimates exposure from overlap_seconds.
    coupler_exposed_seconds: float | None = None
    item_bytes: float = 8.0          # bytes/real of the profiled run's dtype
    source: str = "profile"

    def __post_init__(self):
        for name in ("step_seconds", "radiation_step_seconds",
                     "coupler_seconds", "ocean_call_seconds"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive, got "
                                 f"{getattr(self, name)}")


def calibrate_from_profile(profile) -> MeasuredCosts:
    """Derive :class:`MeasuredCosts` from a measured :class:`RunProfile`.

    ``profile`` must come from a coupled run instrumented by
    :mod:`repro.perf.profiler` (e.g. ``repro.perf.report.profile_coupled_run``)
    covering at least one ocean call and one radiation step; section
    conventions are the ones ``FoamModel.coupled_step`` establishes
    (top-level ``atmosphere`` / ``coupler`` / ``ocean``, with
    ``radiation`` nested somewhere under ``atmosphere``).

    Transpose cost is taken from ``transpose.forward``/``transpose.backward``
    sections when the profiled run exercised the distributed transpose;
    otherwise it is left at zero and the simulator falls back to charging
    the (measured or analytic) byte volume on its machine model.
    """
    n_steps = profile.total_calls("atmosphere/dynamics")
    if n_steps == 0:
        raise ValueError(
            "profile has no 'atmosphere/dynamics' sections — was the run "
            "executed with profiling enabled through FoamModel.coupled_step?")
    atm_seconds = profile.total_inclusive("atmosphere")
    rad_seconds = profile.total_inclusive("radiation")
    n_rad = profile.total_calls("radiation")
    if n_rad == 0:
        raise ValueError(
            "profile contains no radiation step; profile at least one "
            "radiation interval so radiation cost can be separated")
    step_seconds = (atm_seconds - rad_seconds) / n_steps
    radiation_step_seconds = step_seconds + rad_seconds / n_rad

    coupler_seconds = profile.total_inclusive("coupler") / n_steps

    n_ocean = profile.total_calls("ocean")
    if n_ocean == 0:
        raise ValueError(
            "profile contains no ocean call; profile at least one coupling "
            "interval (ocean_coupling_interval of simulated time)")
    ocean_call_seconds = profile.total_inclusive("ocean") / n_ocean

    transpose_seconds = 0.0
    for label in ("transpose.forward", "transpose.backward"):
        calls = profile.total_calls(label)
        if calls:
            transpose_seconds += profile.total_inclusive(label) / calls

    return MeasuredCosts(
        step_seconds=step_seconds,
        radiation_step_seconds=radiation_step_seconds,
        coupler_seconds=coupler_seconds,
        ocean_call_seconds=ocean_call_seconds,
        transpose_seconds=transpose_seconds,
        dynamics_seconds=profile.total_inclusive("atmosphere/dynamics") / n_steps,
        item_bytes=_profile_item_bytes(profile),
        source=profile.label or "profile")


def _profile_item_bytes(profile) -> float:
    """Element size of the profiled run's dtype (from profile metadata)."""
    # Precision of the profiled run (recorded by repro.perf.report in the
    # profile metadata): the event simulator charges communication volumes
    # proportional to the element size.
    meta = getattr(profile, "meta", None) or {}
    dtype_name = meta.get("dtype")
    if dtype_name:
        return float(np.dtype(dtype_name).itemsize)
    return 8.0


def calibrate_concurrent_from_profile(profile, n_atm_ranks: int) -> MeasuredCosts:
    """Derive :class:`MeasuredCosts` from a *merged* concurrent-run profile.

    ``profile`` comes from :func:`repro.perf.profiler.merge_profiles` over the
    per-rank profiles of a :func:`repro.parallel.coupled.run_concurrent_coupled`
    run: section times are summed across the atmosphere-pool ranks (which each
    execute the replicated spectral work plus a latitude band of physics), the
    coupler rank, and the ocean rank.  The normalisations undo that summation
    so the event simulator's usual "divide across ranks" convention recovers
    per-rank elapsed time:

    * ``step_seconds`` is the all-ranks total per step (summed ``atmosphere``
      minus radiation, over ``steps``); the simulator divides it by the rank
      count, giving the *average* per-rank step time — under concurrent
      execution each rank's section clock already includes time spent waiting
      for shared resources, so this average approximates the pool's elapsed
      step time;
    * radiation is band-decomposed, so its summed cost per radiation step is
      ``rad_incl * n_atm_ranks / rad_calls``;
    * ``coupler_seconds`` is the dedicated coupler rank's full per-step cost
      (use ``coupler_offloaded=True`` in the simulator so it is charged as
      overlap-hidden work, not divided across atmosphere ranks), and
      ``coupler_exposed_seconds`` is its serially-dependent slice
      (``merge_surface`` + ``fluxes``), which stays on the critical path;
    * ``dynamics_seconds`` is the per-rank dynamics slice — the window the
      concurrent schedule hides coupler/ocean work under (pass it as
      ``overlap_seconds``);
    * there is no distributed transpose in the concurrent driver (spectral
      state is replicated), so ``transpose_seconds`` stays zero.
    """
    if n_atm_ranks < 1:
        raise ValueError("need at least one atmosphere rank")
    dyn_calls = profile.total_calls("atmosphere/dynamics")
    steps = dyn_calls // n_atm_ranks
    if steps == 0:
        raise ValueError(
            "profile has no full 'atmosphere/dynamics' step per atmosphere "
            "rank — was it merged from a concurrent coupled run?")
    atm_seconds = profile.total_inclusive("atmosphere")
    rad_seconds = profile.total_inclusive("radiation")
    rad_calls = profile.total_calls("radiation")
    if rad_calls == 0:
        raise ValueError(
            "profile contains no radiation step; run at least one radiation "
            "interval so radiation cost can be separated")
    step_seconds = (atm_seconds - rad_seconds) / steps
    radiation_step_seconds = step_seconds + rad_seconds * n_atm_ranks / rad_calls

    n_ocean = profile.total_calls("ocean")
    if n_ocean == 0:
        raise ValueError(
            "profile contains no ocean call; run at least one coupling "
            "interval (ocean_coupling_interval of simulated time)")

    exposed = (profile.total_inclusive("coupler/merge_surface")
               + profile.total_inclusive("coupler/fluxes")) / steps

    return MeasuredCosts(
        step_seconds=step_seconds,
        radiation_step_seconds=radiation_step_seconds,
        coupler_seconds=profile.total_inclusive("coupler") / steps,
        ocean_call_seconds=profile.total_inclusive("ocean") / n_ocean,
        transpose_seconds=0.0,
        dynamics_seconds=profile.total_inclusive("atmosphere/dynamics") / dyn_calls,
        coupler_exposed_seconds=exposed,
        item_bytes=_profile_item_bytes(profile),
        source=profile.label or "concurrent-profile")
