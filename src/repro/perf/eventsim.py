"""Discrete-event simulator of FOAM runs on a modeled machine.

Reproduces the paper's section 5 in silico: Figure 2 (per-processor time
allocation over one simulated day) and the throughput/scaling numbers
(6,000x on 68 nodes, ~4,000x on 34, near-linear 8/16/32 atmosphere scaling,
>100,000x for the stand-alone ocean on 64 nodes).

Structure mirrors the real run exactly:

* atmosphere ranks advance 48 half-hour steps per day in lockstep — each
  step is compute (with a random cloud-driven load imbalance, the paper's
  explanation for ranks entering the coupler at different times), then the
  spectral-transpose all-to-all, then the coupler section on the same nodes;
* radiation steps (2/day) are ~10x longer, the tall green bars of Fig. 2;
* dedicated ocean ranks receive a 6-hour ocean call at each coupling
  boundary and work through it while the atmosphere marches on; if the
  ocean is still busy at the *next* boundary, every atmosphere rank idles
  until it finishes — "one ocean processor has no difficulty keeping up
  with 16 atmosphere processors, but ... can not keep up with 32";
* the atmosphere's latitude-band decomposition cannot use more ranks than
  latitude pairs, and efficiency degrades near that limit — the paper's
  "poor scaling from our production runs" at 68 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.trace import RankTrace, TraceSet
from repro.perf.costmodel import (
    AtmosphereCost,
    CouplerCost,
    MeasuredCosts,
    OceanCost,
    transpose_bytes_from_stats,
)
from repro.perf.machine import MachineModel, ibm_sp2


@dataclass
class SimulationResult:
    """Output of one simulated run."""

    traces: TraceSet
    wall_seconds: float          # makespan for the simulated duration
    simulated_seconds: float
    n_atm_ranks: int
    n_ocn_ranks: int
    # Resolved per-section costs the run was driven by (analytic or measured):
    # step/radiation-step/coupler/transpose/ocean-call seconds, single rank.
    per_step_costs: dict | None = None

    @property
    def speedup(self) -> float:
        """Model speedup: simulated time per wall-clock time (the paper's metric)."""
        return self.simulated_seconds / self.wall_seconds


def atmosphere_parallel_efficiency(n_ranks: int, nlat: int) -> float:
    """Efficiency of the latitude-band decomposition at ``n_ranks``.

    PCCM2's 2-D decomposition scales cleanly while each rank holds at least
    one latitude band (the paper: "almost linear scaling on 8, 16, and 32
    atmosphere processors"); beyond ``nlat`` ranks the extra processors
    cannot be given rows and the decomposition wastes them — "this lack of
    scaling to 68 nodes is due to limitations in the spatial decomposition
    technique as applied to the low atmosphere resolution we use".
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_ranks <= nlat:
        # Mild granularity loss as rows-per-rank approaches one.
        rows = nlat / n_ranks
        return 1.0 if rows >= 2.0 else 0.9 + 0.1 * (rows - 1.0)
    # More ranks than rows: only nlat ranks do row work, and the wider
    # transpose adds overhead.
    return (nlat / n_ranks) * 0.85


def simulate_coupled_day(n_atm_ranks: int, n_ocn_ranks: int = 1,
                         machine: MachineModel | None = None,
                         atm: AtmosphereCost | None = None,
                         ocn: OceanCost | None = None,
                         cpl: CouplerCost | None = None,
                         imbalance: float = 0.10,
                         seed: int = 0,
                         transpose_comm=None,
                         measured: MeasuredCosts | None = None,
                         schedule: str = "lagged",
                         coupler_offloaded: bool = False,
                         overlap_seconds: float = 0.0) -> SimulationResult:
    """Simulate one coupled simulated day; returns traces + throughput.

    ``transpose_comm`` optionally supplies measured per-rank
    :class:`~repro.parallel.simmpi.CommStats` from a real distributed
    transpose (``repro.parallel.components.measure_transpose_comm``); the
    per-step transpose cost is then charged from the *measured* byte volume
    instead of the analytic ``AtmosphereCost.transpose_bytes()`` formula,
    and the stats are attached to the returned ``TraceSet.comm``.

    ``measured`` optionally supplies wall-clock section costs from a real
    profiled run (:func:`repro.perf.costmodel.calibrate_from_profile`); the
    atmosphere-step, radiation-step, coupler, and ocean-call costs are then
    the *measured* seconds (divided across ranks exactly as op counts would
    be) instead of machine-model analytic constants.  Cadence (steps per
    day, coupling interval, decomposition limits) still comes from ``atm``
    and ``ocn``.  The resolved costs are reported on
    ``SimulationResult.per_step_costs`` either way.

    The concurrent-coupled schedule of ``repro.parallel.coupled`` is modeled
    by three knobs:

    * ``schedule="sync"`` — the coupler consumes the ocean's SST at the step
      right after each boundary (instead of one full coupling interval later,
      the classic FOAM "lagged" schedule), so only ``overlap_seconds`` of the
      ocean call is hidden under atmosphere compute; the remainder is charged
      as an atmosphere wait at the boundary.
    * ``coupler_offloaded=True`` — coupler work runs on a dedicated rank
      concurrently with the atmosphere; only the part exceeding
      ``overlap_seconds`` is exposed on the atmosphere's critical path
      (instead of dividing the coupler across atmosphere ranks).
    * ``overlap_seconds`` — the per-step window of atmosphere compute that
      concurrent coupler/ocean work can hide under (calibrate it from a
      measured ``MeasuredCosts.dynamics_seconds``).
    """
    if schedule not in ("lagged", "sync"):
        raise ValueError(f"unknown schedule {schedule!r}")
    machine = machine or ibm_sp2()
    atm = atm or AtmosphereCost()
    ocn = ocn or OceanCost()
    cpl = cpl or CouplerCost()
    if measured is not None and measured.item_bytes != atm.item_bytes:
        # The profiled run's precision sets the communication element size
        # (e.g. a float32 run halves the analytic transpose/halo volumes).
        from dataclasses import replace
        atm = replace(atm, item_bytes=measured.item_bytes)
        ocn = replace(ocn, item_bytes=measured.item_bytes)
    rng = np.random.default_rng(seed)

    nsteps = atm.steps_per_day()
    radiation_steps = {0, nsteps // 2}
    steps_per_coupling = int(round(ocn.dt_long / atm.dt))
    eff = atmosphere_parallel_efficiency(n_atm_ranks, atm.nlat)

    atm_traces = [RankTrace(rank=r) for r in range(n_atm_ranks)]
    ocn_traces = [RankTrace(rank=n_atm_ranks + r) for r in range(n_ocn_ranks)]

    t = 0.0                       # global atmosphere clock (lockstep)
    ocean_busy_until = 0.0        # when the ocean ranks finish their call
    ocean_work_start = None

    if measured is not None:
        coupler_full = measured.coupler_seconds
        step_seconds = measured.step_seconds
        radiation_step_seconds = measured.radiation_step_seconds
        ocean_call_seconds = measured.ocean_call_seconds
    else:
        coupler_full = machine.compute_time(cpl.step_ops())
        step_seconds = machine.compute_time(atm.step_ops(radiation=False))
        radiation_step_seconds = machine.compute_time(atm.step_ops(radiation=True))
        ocean_call_seconds = machine.compute_time(ocn.call_ops())
    if coupler_offloaded:
        # Dedicated coupler rank: the serially-dependent slice (measured as
        # coupler_exposed_seconds when available) stays on the atmosphere's
        # clock; the rest hides under the overlap window.
        exposed = getattr(measured, "coupler_exposed_seconds", None) \
            if measured is not None else None
        if exposed is not None:
            coupler_time = exposed
        else:
            coupler_time = max(0.0, coupler_full - overlap_seconds)
    else:
        coupler_time = coupler_full / n_atm_ranks
    if measured is not None and (measured.transpose_seconds > 0.0
                                 or schedule == "sync"):
        # A sync-schedule (concurrent) run replicates spectral state instead
        # of transposing it, so a measured zero really means zero.
        transpose_time = measured.transpose_seconds
    else:
        if transpose_comm is not None:
            transpose_volume = transpose_bytes_from_stats(transpose_comm)
        else:
            transpose_volume = atm.transpose_bytes()
        transpose_time = machine.alltoall_time(n_atm_ranks, transpose_volume)
    per_step_costs = {
        "step_seconds": step_seconds,
        "radiation_step_seconds": radiation_step_seconds,
        "coupler_seconds": coupler_full,
        "coupler_exposed_seconds": (coupler_time if coupler_offloaded
                                    else coupler_full),
        "transpose_seconds": transpose_time,
        "ocean_call_seconds": ocean_call_seconds,
        "schedule": schedule,
        "overlap_seconds": overlap_seconds,
        "source": measured.source if measured is not None else "analytic",
    }

    for k in range(nsteps):
        step_total = (radiation_step_seconds if k in radiation_steps
                      else step_seconds)
        base = step_total / (n_atm_ranks * eff)
        # Cloud-driven imbalance: each rank's compute differs (Fig 2).
        comp = base * (1.0 + imbalance * rng.uniform(-1.0, 1.0, n_atm_ranks))
        comp_end = t + comp
        sync_at = float(comp_end.max()) + transpose_time

        for r, tr in enumerate(atm_traces):
            tr.record(t, float(comp_end[r]), "atmosphere")
            if comp_end[r] < sync_at:
                tr.record(float(comp_end[r]), sync_at, "idle")
            tr.record(sync_at, sync_at + coupler_time, "coupler")
        t = sync_at + coupler_time

        # Coupling boundary: hand a 6-hour call to the ocean ranks; if the
        # previous call hasn't finished, the whole atmosphere waits for it.
        if (k + 1) % steps_per_coupling == 0:
            if ocean_busy_until > t:
                wait_until = ocean_busy_until
                for tr in atm_traces:
                    tr.record(t, wait_until, "idle")
                t = wait_until
            # Close out the previous ocean busy period in the ocean traces.
            if ocean_work_start is not None:
                for tr in ocn_traces:
                    tr.record(ocean_work_start, ocean_busy_until, "ocean")
                    if ocean_busy_until < t:
                        tr.record(ocean_busy_until, t, "idle")
            elif t > 0:
                for tr in ocn_traces:
                    tr.record(0.0, t, "idle")
            ocean_call = ocean_call_seconds / n_ocn_ranks
            if n_ocn_ranks > 1:
                ocean_call += 4 * machine.message_time(ocn.halo_bytes())
            ocean_work_start = t
            ocean_busy_until = t + ocean_call
            if schedule == "sync":
                # Synchronous SST consumption: the coupler needs this call's
                # SST at the very next step, so only ``overlap_seconds`` of
                # the call hides under atmosphere compute; the rest stalls
                # the atmosphere right at the boundary.
                wait = max(0.0, ocean_call - overlap_seconds)
                if wait > 0.0:
                    for tr in atm_traces:
                        tr.record(t, t + wait, "idle")
                    t += wait

    # Drain the final ocean call.
    if ocean_work_start is not None:
        end = max(t, ocean_busy_until)
        for tr in ocn_traces:
            tr.record(ocean_work_start, ocean_busy_until, "ocean")
            if ocean_busy_until < end:
                tr.record(ocean_busy_until, end, "idle")
        if ocean_busy_until > t:
            for tr in atm_traces:
                tr.record(t, ocean_busy_until, "idle")
        t = end

    traces = TraceSet(atm_traces + ocn_traces)
    if transpose_comm is not None:
        traces.attach_comm(transpose_comm)
    return SimulationResult(traces=traces, wall_seconds=t,
                            simulated_seconds=86400.0,
                            n_atm_ranks=n_atm_ranks, n_ocn_ranks=n_ocn_ranks,
                            per_step_costs=per_step_costs)


def simulate_serial_day(machine: MachineModel | None = None,
                        atm: AtmosphereCost | None = None,
                        ocn: OceanCost | None = None,
                        cpl: CouplerCost | None = None,
                        measured: MeasuredCosts | None = None,
                        seed: int = 0) -> SimulationResult:
    """Simulate one coupled day on a single rank (everything inline).

    The baseline the concurrent pool-split is judged against: one rank runs
    every atmosphere step, the full coupler each step, and the ocean call
    inline at each coupling boundary — no transpose, no overlap, no waits.
    """
    machine = machine or ibm_sp2()
    atm = atm or AtmosphereCost()
    ocn = ocn or OceanCost()
    cpl = cpl or CouplerCost()
    nsteps = atm.steps_per_day()
    radiation_steps = {0, nsteps // 2}
    steps_per_coupling = int(round(ocn.dt_long / atm.dt))

    if measured is not None:
        coupler_time = measured.coupler_seconds
        step_seconds = measured.step_seconds
        radiation_step_seconds = measured.radiation_step_seconds
        ocean_call_seconds = measured.ocean_call_seconds
    else:
        coupler_time = machine.compute_time(cpl.step_ops())
        step_seconds = machine.compute_time(atm.step_ops(radiation=False))
        radiation_step_seconds = machine.compute_time(atm.step_ops(radiation=True))
        ocean_call_seconds = machine.compute_time(ocn.call_ops())

    tr = RankTrace(rank=0)
    t = 0.0
    for k in range(nsteps):
        comp = (radiation_step_seconds if k in radiation_steps
                else step_seconds)
        tr.record(t, t + comp, "atmosphere")
        t += comp
        tr.record(t, t + coupler_time, "coupler")
        t += coupler_time
        if (k + 1) % steps_per_coupling == 0:
            tr.record(t, t + ocean_call_seconds, "ocean")
            t += ocean_call_seconds
    per_step_costs = {
        "step_seconds": step_seconds,
        "radiation_step_seconds": radiation_step_seconds,
        "coupler_seconds": coupler_time,
        "transpose_seconds": 0.0,
        "ocean_call_seconds": ocean_call_seconds,
        "schedule": "serial",
        "source": measured.source if measured is not None else "analytic",
    }
    return SimulationResult(traces=TraceSet([tr]), wall_seconds=t,
                            simulated_seconds=86400.0,
                            n_atm_ranks=1, n_ocn_ranks=0,
                            per_step_costs=per_step_costs)


def predict_concurrent_speedup(serial: MeasuredCosts,
                               concurrent: MeasuredCosts,
                               n_atm_ranks: int,
                               n_ocn_ranks: int = 1,
                               atm: AtmosphereCost | None = None,
                               ocn: OceanCost | None = None,
                               cpl: CouplerCost | None = None,
                               machine: MachineModel | None = None) -> dict:
    """Event-simulator prediction of the concurrent pool-split speedup.

    ``serial`` comes from :func:`repro.perf.costmodel.calibrate_from_profile`
    over a profiled serial ``run_days``; ``concurrent`` from
    :func:`repro.perf.costmodel.calibrate_concurrent_from_profile` over the
    merged per-rank profiles of a ``run_concurrent_coupled`` run.  Both runs
    are replayed on the event simulator (the serial one inline on one rank,
    the concurrent one with the sync schedule, an offloaded coupler, and the
    measured per-step dynamics window as the overlap budget) and the ratio of
    the simulated walls is the predicted speedup —  compared against the
    functional walls by ``benchmarks/bench_coupled_concurrent.py``.

    Returns a JSON-friendly dict: ``serial_wall_seconds`` /
    ``concurrent_wall_seconds`` / ``speedup`` plus the concurrent run's
    resolved ``per_step_costs``.
    """
    serial_sim = simulate_serial_day(machine=machine, atm=atm, ocn=ocn,
                                     cpl=cpl, measured=serial)
    concurrent_sim = simulate_coupled_day(
        n_atm_ranks, n_ocn_ranks, machine=machine, atm=atm, ocn=ocn, cpl=cpl,
        imbalance=0.0, measured=concurrent, schedule="sync",
        coupler_offloaded=True,
        overlap_seconds=concurrent.dynamics_seconds)
    return {
        "serial_wall_seconds": serial_sim.wall_seconds,
        "concurrent_wall_seconds": concurrent_sim.wall_seconds,
        "speedup": serial_sim.wall_seconds / concurrent_sim.wall_seconds,
        "per_step_costs": concurrent_sim.per_step_costs,
    }


def simulate_ocean_day(n_ranks: int, machine: MachineModel | None = None,
                       ocn: OceanCost | None = None) -> SimulationResult:
    """Stand-alone ocean throughput (experiment E6: >105,000x on 64 nodes)."""
    machine = machine or ibm_sp2()
    ocn = ocn or OceanCost()
    traces = [RankTrace(rank=r) for r in range(n_ranks)]
    t = 0.0
    # 2-D decomposition: near-perfect compute scaling, communication from
    # halo exchanges each call (latency-bound at small local domains).
    for _ in range(ocn.calls_per_day()):
        comp = machine.compute_time(ocn.call_ops() / n_ranks)
        comm = 0.0
        if n_ranks > 1:
            per_rank_halo = ocn.halo_bytes() / np.sqrt(n_ranks)
            # Subcycled internal+barotropic exchanges dominate message count.
            n_messages = 4 * ocn.n_internal * (1 + ocn.barotropic_substeps)
            comm = n_messages * machine.message_time(per_rank_halo)
        for tr in traces:
            tr.record(t, t + comp + comm, "ocean")
        t += comp + comm
    return SimulationResult(traces=TraceSet(traces), wall_seconds=t,
                            simulated_seconds=86400.0,
                            n_atm_ranks=0, n_ocn_ranks=n_ranks)


def scaling_curve(node_counts, ocean_ranks_for=None, **kwargs) -> dict[int, float]:
    """Coupled speedup vs total node count (experiments E5/E10).

    ``ocean_ranks_for``: mapping from total nodes to dedicated ocean ranks;
    the paper's practice is 1 ocean rank per 16 atmosphere ranks.
    """
    out = {}
    for n in node_counts:
        n_ocn = (ocean_ranks_for or {}).get(n, max(1, round(n / 17)))
        n_atm = n - n_ocn
        if n_atm < 1:
            raise ValueError(f"{n} nodes leaves no atmosphere ranks")
        res = simulate_coupled_day(n_atm, n_ocn, **kwargs)
        out[n] = res.speedup
    return out
