"""NCAR-CSM-class baseline cost model (experiment E8).

Paper: *"The performance of FOAM can be compared directly to the NCAR CSM
coupled model which accomplishes only a third of FOAM's maximum throughput
using 16 nodes of a Cray C90."* and *"we estimate that the cost per unit of
performance of FOAM is already more than ten times better."*

The CSM baseline differs from FOAM in exactly the ways the paper credits
for its advantage:

* a T42-class atmosphere (~2.8x finer spacing than R15, hence ~(2.8)^3
  more work per simulated time from the resolution cube law, realized here
  as a 128 x 64 grid with a 20-minute step);
* a conventional ocean without FOAM's slowed/split/subcycled stepping;
* a vector supercomputer (Cray C90) whose cost per delivered flop was far
  higher than the SP2's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.costmodel import AtmosphereCost, OceanCost
from repro.perf.machine import MachineModel, cray_c90

# Rough 1997 list prices (millions of USD) for the cost-performance claim.
SP2_COST_PER_NODE_MUSD = 0.08
C90_16_NODE_COST_MUSD = 30.0


@dataclass
class CSMCostModel:
    """A CSM-like coupled model on a C90-like machine."""

    machine: MachineModel = field(default_factory=cray_c90)
    atm: AtmosphereCost = field(default_factory=lambda: AtmosphereCost(
        nlat=64, nlon=128, nlev=18, mmax=42, dt=1200.0))
    ocn: OceanCost = field(default_factory=OceanCost)

    def day_ops(self) -> float:
        """Coupled ops per simulated day: T42 atmosphere + conventional ocean."""
        return self.atm.day_ops() + self.ocn.conventional_day_ops()

    def throughput(self, n_nodes: int = 16) -> float:
        """Model speedup (simulated/wall) on ``n_nodes`` of the C90.

        Vector machines parallelize coupled climate codes with modest
        multitasking efficiency; 85 % is generous to the baseline.
        """
        n = min(n_nodes, self.machine.max_nodes)
        wall = self.day_ops() / (n * self.machine.flop_rate * 0.85)
        return 86400.0 / wall

    def machine_cost_musd(self, n_nodes: int = 16) -> float:
        return C90_16_NODE_COST_MUSD * n_nodes / 16.0


def foam_cost_musd(n_nodes: int) -> float:
    """Price of an n-node SP2 (1997 list, M USD)."""
    return SP2_COST_PER_NODE_MUSD * n_nodes


def cost_performance_ratio(foam_speedup: float, foam_nodes: int,
                           csm: CSMCostModel | None = None,
                           csm_nodes: int = 16) -> float:
    """FOAM's (speedup per M$) divided by CSM's — the paper's '>10x better'."""
    csm = csm or CSMCostModel()
    foam_cp = foam_speedup / foam_cost_musd(foam_nodes)
    csm_cp = csm.throughput(csm_nodes) / csm.machine_cost_musd(csm_nodes)
    return foam_cp / csm_cp
