"""Benchmark trend gate: diff fresh BENCH_*.json against committed baselines.

The bench-smoke CI job produces machine-readable benchmark reports
(``BENCH_profile.json``, ``BENCH_backend.json``, ...).  This module compares
a small set of *headline* numbers from each report against the baselines
committed under ``benchmarks/baselines/`` and fails on a >30% regression —
the perf equivalent of the golden-climatology gate.

Raw wall-clock headlines are machine-dependent; the dimensionless ones
(speedups, hit rates, hidden fractions) travel between machines.  Under
``FOAM_BENCH_FAST=1`` (CI's abbreviated bench runs) or when a baseline file
is missing, violations downgrade to warnings so a noisy shared runner can
never block a merge — the full-fidelity local run is the enforcing one.

Usage::

    python -m repro.perf.trend --baseline-dir benchmarks/baselines \
        BENCH_profile.json BENCH_backend.json ...
    python -m repro.perf.trend --update ...   # rewrite the baselines
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

#: Headline metrics per report: dotted JSON path -> direction
#: ("lower" = lower is better, "higher" = higher is better).
HEADLINES: dict[str, dict[str, str]] = {
    "BENCH_profile": {
        "calibration.step_seconds": "lower",
        "calibration.ocean_call_seconds": "lower",
    },
    "BENCH_backend": {
        "runs.float64.step_seconds": "lower",
        "runs.float64.hit_rate": "higher",
        "legendre.speedup": "higher",
    },
    "BENCH_coupled": {
        "hidden_fraction": "higher",
        "concurrent_wall_seconds": "lower",
    },
    "BENCH_ensemble": {
        "gate.speedup": "higher",
    },
    # The fused-vs-unfused section speedup is dimensionless and travels
    # between machines; the coupled-day walls are tracked by BENCH_profile.
    "BENCH_kernels": {
        "gate.speedup": "higher",
    },
    # overhead_fraction itself is a ratio of two near-equal walls — far too
    # high-variance for a relative trend gate; the <10% ceiling is enforced
    # inside the bench, and the trend tracks the instrumented day wall.
    "BENCH_history": {
        "run.instrumented_wall_seconds": "lower",
    },
}

#: Default allowed fractional regression before the gate trips.
DEFAULT_THRESHOLD = 0.30


@dataclass(frozen=True)
class Comparison:
    """One headline metric diffed against its baseline."""

    report: str
    metric: str
    direction: str
    current: float
    baseline: float
    threshold: float

    @property
    def change(self) -> float:
        """Signed fractional change, positive = regression."""
        if self.baseline == 0.0:
            return 0.0
        delta = (self.current - self.baseline) / abs(self.baseline)
        return delta if self.direction == "lower" else -delta

    @property
    def regressed(self) -> bool:
        return self.change > self.threshold

    def describe(self) -> str:
        arrow = "worse" if self.change > 0 else "better"
        return (f"{self.report}:{self.metric} ({self.direction} is better): "
                f"{self.baseline:.6g} -> {self.current:.6g} "
                f"({abs(self.change) * 100.0:.1f}% {arrow})")


def extract(data: dict, dotted: str) -> float:
    """Pull a scalar out of a nested dict by dotted path."""
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"no {dotted!r} in report (missing {part!r})")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise TypeError(f"{dotted!r} is {type(node).__name__}, not a number")
    return float(node)


def compare_report(report_path: Path, baseline_path: Path,
                   threshold: float = DEFAULT_THRESHOLD
                   ) -> list[Comparison]:
    """Diff one fresh report against its committed baseline."""
    stem = report_path.stem
    headlines = HEADLINES.get(stem)
    if headlines is None:
        raise ValueError(f"no headline metrics registered for {stem!r}; "
                         f"known: {sorted(HEADLINES)}")
    with open(report_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    out = []
    for metric, direction in headlines.items():
        out.append(Comparison(
            report=stem, metric=metric, direction=direction,
            current=extract(current, metric),
            baseline=extract(baseline, metric),
            threshold=threshold))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.trend",
        description="Gate benchmark headline numbers against baselines.")
    parser.add_argument("reports", nargs="+", metavar="BENCH_*.json")
    parser.add_argument("--baseline-dir", default="benchmarks/baselines",
                        type=Path)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh reports over the baselines "
                             "instead of gating")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(implied by FOAM_BENCH_FAST=1)")
    args = parser.parse_args(argv)

    if args.update:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for report in args.reports:
            dest = args.baseline_dir / Path(report).name
            shutil.copyfile(report, dest)
            print(f"baseline updated: {dest}")
        return 0

    warn_only = args.warn_only or bool(os.environ.get("FOAM_BENCH_FAST"))
    regressions = 0
    for report in map(Path, args.reports):
        baseline = args.baseline_dir / report.name
        if not baseline.exists():
            print(f"WARNING: no baseline for {report.name} "
                  f"(expected {baseline}); skipping — commit one with "
                  f"--update", file=sys.stderr)
            continue
        for cmp in compare_report(report, baseline, args.threshold):
            line = cmp.describe()
            if cmp.regressed:
                regressions += 1
                print(f"REGRESSION: {line}", file=sys.stderr)
            else:
                print(f"ok: {line}")

    if regressions and warn_only:
        print(f"WARNING: {regressions} headline regression(s) ignored "
              f"(fast/noisy bench mode)", file=sys.stderr)
        return 0
    if regressions:
        print(f"{regressions} headline regression(s) beyond "
              f"{args.threshold * 100.0:.0f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
