"""Hierarchical wall-clock profiling of the *real* Python components.

The performance story so far ran entirely on modeled time: analytic op
counts (:mod:`repro.perf.costmodel`) fed a discrete-event simulator
(:mod:`repro.perf.eventsim`) whose output mimics the paper's Figure 2.
This module closes the loop with *measured* time: a low-overhead
instrumentation layer threaded through the hot paths (spectral transforms,
semi-Lagrangian advection, physics, ocean stages, coupler, the simmpi
transpose), producing a structured :class:`RunProfile` whose per-section
costs can in turn calibrate the event simulator
(:func:`repro.perf.costmodel.calibrate_from_profile`).

Design constraints, in order:

1. **Near-zero cost when disabled.**  Instrumentation stays in the hot
   paths permanently, so the disabled check is one attribute read and the
   returned context manager is a shared no-op singleton; a test bounds the
   overhead on an instrumented hot loop.
2. **Thread-safe.**  The simmpi layer runs one thread per rank, all
   entering the same sections concurrently.  Each thread keeps its own
   section stack (``threading.local``); the shared per-path accumulators
   are only touched under a lock at section exit.
3. **Hierarchical.**  Sections nest: entering ``"physics"`` inside
   ``"atmosphere"`` records under the path ``"atmosphere/physics"``, and
   each node tracks both *inclusive* time (with children) and *exclusive*
   time (children subtracted), the two columns of the report table.

Usage::

    from repro.perf.profiler import enable_profiling, profile_section, take_profile

    enable_profiling()
    with profile_section("atmosphere"):
        with profile_section("physics"):
            ...
    profile = take_profile(label="one day")   # -> RunProfile (and resets)
    print(profile.format_table())
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from functools import wraps

SEP = "/"


class _NullSection:
    """Shared no-op context manager returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SECTION = _NullSection()


class _Node:
    """Accumulator for one section path (shared across threads)."""

    __slots__ = ("calls", "inclusive", "exclusive", "counters")

    def __init__(self):
        self.calls = 0
        self.inclusive = 0.0
        self.exclusive = 0.0
        self.counters: dict[str, float] = {}


class _Section:
    """Live context manager for one enabled section entry."""

    __slots__ = ("_prof", "_name", "_start", "_child", "_counters", "_frames")

    def __init__(self, prof: "Profiler", name: str):
        self._prof = prof
        self._name = name

    def __enter__(self):
        self._frames = self._prof._stack()
        self._child = 0.0
        self._counters = None
        self._frames.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        frames = self._frames
        frames.pop()
        if frames:
            frames[-1]._child += elapsed
        path = SEP.join(f._name for f in frames) + SEP + self._name if frames \
            else self._name
        prof = self._prof
        with prof._lock:
            node = prof._nodes.get(path)
            if node is None:
                node = prof._nodes[path] = _Node()
            node.calls += 1
            node.inclusive += elapsed
            node.exclusive += elapsed - self._child
            if self._counters:
                for k, v in self._counters.items():
                    node.counters[k] = node.counters.get(k, 0.0) + v
        return False

    def count(self, name: str, value: float = 1.0) -> None:
        if self._counters is None:
            self._counters = {}
        self._counters[name] = self._counters.get(name, 0.0) + value


class Profiler:
    """Thread-safe hierarchical wall-clock timer + counter registry."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._nodes: dict[str, _Node] = {}
        self._counters: dict[str, float] = {}
        self._local = threading.local()
        self._started = time.perf_counter()

    # -- section management ------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def section(self, name: str):
        """Context manager timing one (possibly nested) section.

        Disabled profilers return a shared no-op object — the hot-path cost
        is one attribute check and one method call.
        """
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def profiled(self, name: str | None = None):
        """Decorator equivalent of :meth:`section` (name defaults to ``fn.__name__``)."""
        def decorate(fn):
            label = name or fn.__name__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with _Section(self, label):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    def count(self, name: str, value: float = 1.0) -> None:
        """Add to a counter on the innermost active section of this thread.

        Outside any section (or from a thread with no sections open) the
        count lands in the profile-level counter table instead.
        """
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].count(name, value)
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    # -- lifecycle ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._nodes.clear()
            self._counters.clear()
            self._started = time.perf_counter()

    def snapshot(self, label: str = "", meta: dict | None = None) -> "RunProfile":
        """Freeze current accumulators into a :class:`RunProfile` (no reset)."""
        with self._lock:
            sections = [
                SectionStat(path=path, calls=n.calls, inclusive=n.inclusive,
                            exclusive=n.exclusive, counters=dict(n.counters))
                for path, n in sorted(self._nodes.items())
            ]
            counters = dict(self._counters)
            elapsed = time.perf_counter() - self._started
        return RunProfile(label=label, wall_seconds=elapsed,
                          sections=sections, counters=counters,
                          meta=dict(meta or {}))


@dataclass
class SectionStat:
    """One row of a :class:`RunProfile`: measured cost of one section path."""

    path: str                 # "/"-joined nesting path, e.g. "atmosphere/physics"
    calls: int
    inclusive: float          # seconds, children included
    exclusive: float          # seconds, children subtracted
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.path.rsplit(SEP, 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count(SEP)

    @property
    def per_call(self) -> float:
        return self.inclusive / self.calls if self.calls else 0.0


@dataclass
class RunProfile:
    """Structured, JSON-serializable report of one profiled run.

    The measured analogue of the event simulator's Figure-2 breakdown:
    per-section inclusive/exclusive wall time, call counts, and whatever
    counters the sections recorded (notably ``comm_bytes`` from the simmpi
    transpose).  This is both the human-readable artifact behind
    ``python -m repro.perf.report`` and the machine-readable calibration
    input of :func:`repro.perf.costmodel.calibrate_from_profile`.
    """

    label: str = ""
    wall_seconds: float = 0.0
    sections: list[SectionStat] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    # -- lookup ------------------------------------------------------------
    def __getitem__(self, path: str) -> SectionStat:
        for s in self.sections:
            if s.path == path:
                return s
        raise KeyError(f"no section {path!r} in profile "
                       f"(have {[s.path for s in self.sections]})")

    def get(self, path: str) -> SectionStat | None:
        try:
            return self[path]
        except KeyError:
            return None

    def matching(self, predicate) -> list[SectionStat]:
        """All sections whose *path* satisfies ``predicate``."""
        return [s for s in self.sections if predicate(s.path)]

    def _topmost_matches(self, prefix: str) -> list[SectionStat]:
        """Sections matching ``prefix`` whose ancestors do not also match.

        A section matches when its full path equals or extends ``prefix``,
        or when its own (leaf) name equals ``prefix`` — so ``"radiation"``
        finds ``"atmosphere/physics/radiation"`` wherever it nests.
        Ancestor-matching sections shadow their children to avoid
        double-charging nested matches.
        """
        out = []
        for s in self.sections:
            if not (s.path == prefix or s.path.startswith(prefix + SEP)
                    or s.name == prefix):
                continue
            parts = s.path.split(SEP)
            ancestor_match = any(
                SEP.join(parts[:i]) == prefix or parts[i - 1] == prefix
                for i in range(1, len(parts)))
            if not ancestor_match:
                out.append(s)
        return out

    def total_inclusive(self, prefix: str) -> float:
        """Summed inclusive seconds of all top-most sections under ``prefix``."""
        return sum(s.inclusive for s in self._topmost_matches(prefix))

    def total_calls(self, prefix: str) -> int:
        """Summed call count of all top-most sections under ``prefix``."""
        return sum(s.calls for s in self._topmost_matches(prefix))

    def calls(self, path: str) -> int:
        s = self.get(path)
        return s.calls if s else 0

    def comm_bytes(self, prefix: str = "") -> float:
        """Total ``comm_bytes`` counters under sections matching ``prefix``."""
        return sum(s.counters.get("comm_bytes", 0.0) for s in self.sections
                   if s.path.startswith(prefix))

    def roots(self) -> list[SectionStat]:
        return [s for s in self.sections if SEP not in s.path]

    @property
    def accounted_seconds(self) -> float:
        """Wall time covered by top-level sections."""
        return sum(s.inclusive for s in self.roots())

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "meta": dict(self.meta),
            "sections": [
                {"path": s.path, "calls": s.calls, "inclusive": s.inclusive,
                 "exclusive": s.exclusive, "counters": dict(s.counters)}
                for s in self.sections
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunProfile":
        return cls(
            label=d.get("label", ""),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            counters=dict(d.get("counters", {})),
            meta=dict(d.get("meta", {})),
            sections=[SectionStat(path=s["path"], calls=int(s["calls"]),
                                  inclusive=float(s["inclusive"]),
                                  exclusive=float(s["exclusive"]),
                                  counters=dict(s.get("counters", {})))
                      for s in d.get("sections", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunProfile":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "RunProfile":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- rendering ---------------------------------------------------------
    def format_table(self, min_fraction: float = 0.0) -> str:
        """Render the measured time-allocation table (Figure-2 analogue).

        One row per section in tree order, indented by nesting depth, with
        call counts, exclusive and inclusive seconds, the share of total
        accounted time, and comm bytes when a section recorded traffic.
        ``min_fraction`` hides rows below that share of the total.
        """
        total = self.accounted_seconds or 1e-30
        header = (f"{'section':38s} {'calls':>7s} {'excl s':>10s} "
                  f"{'incl s':>10s} {'share':>7s} {'comm':>10s}")
        lines = []
        if self.label:
            lines.append(f"profile: {self.label}")
        lines.append(f"wall time {self.wall_seconds:.3f} s, "
                     f"accounted {self.accounted_seconds:.3f} s")
        lines.append(header)
        lines.append("-" * len(header))
        for s in self.sections:
            share = s.inclusive / total
            if share < min_fraction and s.depth > 0:
                continue
            indent = "  " * s.depth
            comm = s.counters.get("comm_bytes", 0.0)
            comm_str = _human_bytes(comm) if comm else ""
            lines.append(f"{indent + s.name:38s} {s.calls:7d} "
                         f"{s.exclusive:10.4f} {s.inclusive:10.4f} "
                         f"{100.0 * share:6.1f}% {comm_str:>10s}")
        for name, value in sorted(self.counters.items()):
            lines.append(f"counter {name} = {value:g}")
        return "\n".join(lines)


def _human_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GB"


# ---------------------------------------------------------------------------
# Default (module-level) profiler: what the instrumented library code uses.
#
# A thread may override it with ``thread_profiler(...)`` so simulated-MPI
# rank threads each record into their own Profiler.  ``_tls_installs`` is a
# fast-path guard: while it is zero (the usual, single-profiler case) the
# hot-path hooks pay only one extra global-int truthiness check.
# ---------------------------------------------------------------------------
_default = Profiler(enabled=False)
_tls = threading.local()
_tls_installs = 0
_tls_lock = threading.Lock()


def _active_profiler() -> Profiler:
    """This thread's profiler: the thread-local override, else the default."""
    if _tls_installs:
        override = getattr(_tls, "profiler", None)
        if override is not None:
            return override
    return _default


class thread_profiler:
    """Context manager: route this thread's sections to ``profiler``.

    The concurrent coupled driver wraps each rank thread's main loop in one
    of these so every rank accumulates its own :class:`RunProfile` (merged
    afterwards with :func:`merge_profiles`).  Other threads — and this
    thread outside the with-block — keep using the process default.
    Re-entrant: nesting restores the previous override on exit.
    """

    def __init__(self, profiler: Profiler):
        self.profiler = profiler
        self._previous = None

    def __enter__(self) -> Profiler:
        global _tls_installs
        self._previous = getattr(_tls, "profiler", None)
        _tls.profiler = self.profiler
        with _tls_lock:
            _tls_installs += 1
        return self.profiler

    def __exit__(self, *exc):
        global _tls_installs
        _tls.profiler = self._previous
        with _tls_lock:
            _tls_installs -= 1
        return False


def merge_profiles(profiles, label: str = "",
                   meta: dict | None = None) -> RunProfile:
    """Merge per-rank :class:`RunProfile` s into one aggregate profile.

    Section calls, inclusive/exclusive seconds, and counters are summed by
    path; profile-level counters are summed by name.  ``wall_seconds`` is
    the *maximum* rank wall (the ranks ran concurrently), while the summed
    section seconds keep the total work visible — so the merged profile's
    overlap (accounted_seconds vs wall) is exactly what the concurrent
    schedule hid.  Per-rank walls and labels land in ``meta``.
    """
    profiles = list(profiles)
    if not profiles:
        raise ValueError("merge_profiles needs at least one profile")
    nodes: dict[str, SectionStat] = {}
    counters: dict[str, float] = {}
    wall = 0.0
    for p in profiles:
        wall = max(wall, p.wall_seconds)
        for k, v in p.counters.items():
            counters[k] = counters.get(k, 0.0) + v
        for s in p.sections:
            agg = nodes.get(s.path)
            if agg is None:
                nodes[s.path] = SectionStat(
                    path=s.path, calls=s.calls, inclusive=s.inclusive,
                    exclusive=s.exclusive, counters=dict(s.counters))
            else:
                agg.calls += s.calls
                agg.inclusive += s.inclusive
                agg.exclusive += s.exclusive
                for k, v in s.counters.items():
                    agg.counters[k] = agg.counters.get(k, 0.0) + v
    merged_meta = {
        "merged_from": len(profiles),
        "rank_walls": [p.wall_seconds for p in profiles],
        "rank_labels": [p.label for p in profiles],
    }
    merged_meta.update(meta or {})
    return RunProfile(label=label or f"merge of {len(profiles)} profiles",
                      wall_seconds=wall,
                      sections=[nodes[k] for k in sorted(nodes)],
                      counters=counters, meta=merged_meta)


def get_profiler() -> Profiler:
    """The process-wide default profiler the instrumentation reports to."""
    return _default


def set_profiler(profiler: Profiler) -> Profiler:
    """Install ``profiler`` as the default; returns the previous one."""
    global _default
    previous = _default
    _default = profiler
    return previous


def enable_profiling() -> Profiler:
    """Enable (and return) the default profiler."""
    _default.enable()
    return _default


def disable_profiling() -> None:
    _default.disable()


def profiling_enabled() -> bool:
    return _default.enabled


def profile_section(name: str):
    """Section context manager on the active profiler (the hot-path hook)."""
    prof = _active_profiler() if _tls_installs else _default
    if not prof.enabled:
        return _NULL_SECTION
    return _Section(prof, name)


def profile_count(name: str, value: float = 1.0) -> None:
    """Counter on the active profiler (no-op while disabled)."""
    prof = _active_profiler() if _tls_installs else _default
    if prof.enabled:
        prof.count(name, value)


def profiled(name: str | None = None):
    """Decorator: time every call of ``fn`` as a section on the active profiler."""
    def decorate(fn):
        label = name or fn.__name__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            prof = _active_profiler() if _tls_installs else _default
            if not prof.enabled:
                return fn(*args, **kwargs)
            with _Section(prof, label):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def take_profile(label: str = "", meta: dict | None = None,
                 reset: bool = True) -> RunProfile:
    """Snapshot the default profiler into a :class:`RunProfile`.

    With ``reset=True`` (default) the accumulators are cleared so
    back-to-back profiling windows do not bleed into each other.
    """
    profile = _default.snapshot(label=label, meta=meta)
    if reset:
        _default.reset()
    return profile
