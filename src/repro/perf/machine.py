"""Machine models for the performance simulator.

The paper's platform is an IBM SP2 with 120 MHz P2SC nodes connected by the
SP switch; the comparison baseline (NCAR CSM) ran on a 16-node Cray C90.
Since we have neither, experiments E2/E5-E10 run on a calibrated model: a
node is a sustained flop rate, a link is (latency, bandwidth), and the
discrete-event simulator charges compute time = ops/rate and message time =
latency + bytes/bandwidth.

Calibration: sustained rates are set so the model reproduces the paper's
anchor points — ~4,000x real time on 34 SP2 nodes, ocean >100,000x on 64,
CSM at about a third of FOAM's peak on the C90 (documented in DESIGN.md and
EXPERIMENTS.md).  Spectral-transform climate codes sustained ~5-10 % of peak
on 1997 hardware, hence 25 MFLOP/s of the P2SC's 480 MFLOP/s peak.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """A homogeneous distributed-memory machine."""

    name: str
    flop_rate: float          # sustained flop/s per node
    latency: float            # s per message
    bandwidth: float          # bytes/s per link
    max_nodes: int = 512

    def compute_time(self, ops: float) -> float:
        """Seconds to execute ``ops`` floating-point operations on one node."""
        if ops < 0:
            raise ValueError(f"ops must be >= 0, got {ops}")
        return ops / self.flop_rate

    def message_time(self, nbytes: float) -> float:
        """Seconds to move one message of ``nbytes`` across one link."""
        return self.latency + nbytes / self.bandwidth

    def alltoall_time(self, nranks: int, total_bytes: float) -> float:
        """Pairwise-exchange personalized all-to-all among ``nranks`` ranks."""
        if nranks <= 1:
            return 0.0
        per_pair = total_bytes / max(nranks, 1)
        return (nranks - 1) * self.message_time(per_pair)


def ibm_sp2() -> MachineModel:
    """The paper's production platform (120 MHz P2SC, SP switch)."""
    return MachineModel(name="IBM SP2 (120 MHz P2SC)",
                        flop_rate=25.0e6,       # sustained, spectral GCM code
                        latency=40.0e-6,
                        bandwidth=35.0e6)


def cray_c90() -> MachineModel:
    """The NCAR CSM baseline platform: 16-node Cray C90.

    Coupled climate codes sustained ~10 % of the C90's 1 GFLOP/s vector
    peak; 110 MFLOP/s reproduces the published CSM throughput (about a third
    of FOAM's maximum — Trenberth 1997 via the paper).
    """
    return MachineModel(name="Cray C90", flop_rate=110.0e6,
                        latency=5.0e-6, bandwidth=300.0e6, max_nodes=16)


def commodity_cluster_1999() -> MachineModel:
    """The paper's outlook: 'PC clusters to improve cost performance'."""
    return MachineModel(name="commodity PC cluster (100 Mb ethernet)",
                        flop_rate=40.0e6, latency=120.0e-6, bandwidth=10.0e6)
