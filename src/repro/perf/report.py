"""Measured time-allocation report: the wall-clock analogue of Figure 2.

``python -m repro.perf.report`` runs a short coupled integration with the
profiler enabled, prints the hierarchical per-section table, and shows the
event-simulator calibration derived from it
(:func:`repro.perf.costmodel.calibrate_from_profile`) — closing the loop
between the real Python components and the modeled 1997 machine::

    PYTHONPATH=src python -m repro.perf.report --days 0.5
    PYTHONPATH=src python -m repro.perf.report --json profile.json
    PYTHONPATH=src python -m repro.perf.report --load profile.json
    PYTHONPATH=src python -m repro.perf.report --atm-ranks 2 --ocn-ranks 1

With ``--atm-ranks``/``--ocn-ranks`` the run executes *concurrently* on
disjoint rank pools (:func:`repro.parallel.coupled.run_concurrent_coupled`);
the table is then the merged per-rank profile, followed by the blocking-wait
summary and the concurrent calibration
(:func:`repro.perf.costmodel.calibrate_concurrent_from_profile`).

This module imports :mod:`repro.core` (the whole coupled model), so it is
*not* re-exported from ``repro.perf`` — the instrumented component modules
import ``repro.perf.profiler`` and must not be pulled in circularly.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.costmodel import (
    calibrate_concurrent_from_profile,
    calibrate_from_profile,
)
from repro.perf.profiler import RunProfile, enable_profiling, take_profile


def kernel_cache_stats() -> dict:
    """Kernel-cache health: Legendre plan builds/hits + workspace totals.

    Snapshotted into profile metadata so ``--json`` output (and saved
    profiles) carry the cache counters alongside the section table.
    """
    from repro.atmosphere.spectral import legendre_plan_stats
    from repro.backend import fused_enabled, workspace_totals

    return {"legendre_plan": legendre_plan_stats(),
            "workspace": workspace_totals(),
            "fused": fused_enabled()}


def format_kernel_caches(profile: RunProfile) -> str:
    """Render the kernel-cache health block from profile metadata."""
    stats = (profile.meta or {}).get("kernel_caches")
    if not stats:
        return "kernel caches: not recorded in this profile"
    plan = stats.get("legendre_plan", {})
    ws = stats.get("workspace", {})
    req = ws.get("hits", 0) + ws.get("misses", 0)
    hit_rate = ws.get("hits", 0) / req if req else 0.0
    return "\n".join([
        "kernel caches "
        f"(fused kernels {'on' if stats.get('fused') else 'off'}):",
        f"  legendre plans   {plan.get('builds', 0)} built, "
        f"{plan.get('hits', 0)} cache hits",
        f"  workspace        {ws.get('hits', 0)} hits / "
        f"{ws.get('misses', 0)} misses ({hit_rate:.1%} hit rate), "
        f"{ws.get('buffers', 0)} buffers, "
        f"{ws.get('nbytes', 0) / 1e6:.1f} MB resident",
    ])


def profile_coupled_run(days: float = 1.0, config: str = "test",
                        seed: int | None = None,
                        dtype: str | None = None,
                        backend: str | None = None) -> RunProfile:
    """Run the coupled model for ``days`` with profiling on; return the profile.

    ``config`` selects ``repro.core.config``'s ``test``/``small``/``paper``
    resolution.  ``dtype``/``backend`` pick the array precision/backend
    (default: the ``FOAM_DTYPE``/``FOAM_BACKEND`` environment policy); the
    resolved dtype is recorded in the profile metadata so
    :func:`calibrate_from_profile` can size communication volumes.  Model
    construction and spin-up state building are *outside* the profiling
    window; only ``coupled_step`` work is measured.
    """
    # Deferred import: keeps repro.perf importable from the instrumented
    # component modules (repro.core pulls in all of them).
    from repro.core.config import paper_config, small_config, test_config
    from repro.core.foam import FoamModel

    factories = {"test": test_config, "small": small_config,
                 "paper": paper_config}
    if config not in factories:
        raise ValueError(f"unknown config {config!r}; pick from "
                         f"{sorted(factories)}")
    cfg = factories[config]()
    if seed is not None:
        cfg.seed = seed
    if dtype is not None:
        cfg.dtype = dtype
    if backend is not None:
        cfg.backend = backend
    cfg.array_backend()          # fail fast if the backend is unavailable
    model = FoamModel(cfg)
    state = model.initial_state()
    nsteps = max(1, int(round(days * 86400.0 / cfg.atm_dt)))

    prof = enable_profiling()
    prof.reset()
    try:
        for _ in range(nsteps):
            state = model.coupled_step(state)
    finally:
        prof.disable()
    return take_profile(
        label=f"coupled {config} run, {nsteps} steps ({days:g} days)",
        meta={"config": config, "days": days, "nsteps": nsteps,
              "atm_dt": cfg.atm_dt,
              "atm_grid": [cfg.atm_nlat, cfg.atm_nlon, cfg.atm_nlev],
              "ocn_grid": [cfg.ocn_ny, cfg.ocn_nx, cfg.ocn_nlev],
              "dtype": cfg.dtype_policy.name,
              "backend": cfg.array_backend().name,
              "kernel_caches": kernel_cache_stats()})


def profile_ensemble_run(days: float = 1.0, config: str = "test",
                         nens: int = 4, seed: int | None = None,
                         dtype: str | None = None,
                         backend: str | None = None) -> RunProfile:
    """Profile a *batched* ensemble run: ``nens`` members per coupled step.

    Same profiling window as :func:`profile_coupled_run` (construction and
    initial states excluded), but every ``coupled_step`` advances all
    members at once through the leading member axis, so per-section times
    are the batch's — divide by ``nens`` for per-member cost.
    """
    from repro.core.config import paper_config, small_config, test_config
    from repro.core.ensemble import EnsembleConfig, FoamEnsemble

    factories = {"test": test_config, "small": small_config,
                 "paper": paper_config}
    if config not in factories:
        raise ValueError(f"unknown config {config!r}; pick from "
                         f"{sorted(factories)}")
    if nens < 1:
        raise ValueError(f"nens must be >= 1, got {nens}")
    cfg = factories[config]()
    if seed is not None:
        cfg.seed = seed
    if dtype is not None:
        cfg.dtype = dtype
    if backend is not None:
        cfg.backend = backend
    cfg.array_backend()          # fail fast if the backend is unavailable
    ens = FoamEnsemble(EnsembleConfig(nens=nens, base=cfg))
    state = ens.initial_state()
    nsteps = max(1, int(round(days * 86400.0 / cfg.atm_dt)))

    prof = enable_profiling()
    prof.reset()
    try:
        for _ in range(nsteps):
            state = ens.step(state)
    finally:
        prof.disable()
    return take_profile(
        label=f"batched ensemble {config} run, nens={nens}, "
              f"{nsteps} steps ({days:g} days)",
        meta={"config": config, "days": days, "nsteps": nsteps,
              "nens": nens, "atm_dt": cfg.atm_dt,
              "atm_grid": [cfg.atm_nlat, cfg.atm_nlon, cfg.atm_nlev],
              "ocn_grid": [cfg.ocn_ny, cfg.ocn_nx, cfg.ocn_nlev],
              "dtype": cfg.dtype_policy.name,
              "backend": cfg.array_backend().name,
              "kernel_caches": kernel_cache_stats()})


def profile_concurrent_run(days: float = 1.0, config: str = "test",
                           n_atm: int = 2, n_ocn: int = 1,
                           substrate: str | None = None):
    """Run the pool-split coupled driver with per-rank profiling.

    Returns the :class:`repro.parallel.coupled.ConcurrentCoupledResult`
    (merged profile on ``.profile``, per-rank ones on ``.profiles``).
    ``substrate`` picks the communicator implementation: ``"thread"``
    (default) or ``"process"`` for real forked rank processes that use
    every core the layout asks for.
    """
    from repro.core.config import paper_config, small_config, test_config
    from repro.parallel.coupled import PoolLayout, run_concurrent_coupled

    factories = {"test": test_config, "small": small_config,
                 "paper": paper_config}
    if config not in factories:
        raise ValueError(f"unknown config {config!r}; pick from "
                         f"{sorted(factories)}")
    return run_concurrent_coupled(config=factories[config](), days=days,
                                  layout=PoolLayout(n_atm=n_atm, n_ocn=n_ocn),
                                  profile=True, substrate=substrate)


def format_waits(result) -> str:
    """Render a concurrent run's blocking-recv wait accounting."""
    lines = [f"blocking waits over {result.wall_seconds:.3f} s wall "
             f"({result.nsteps} steps, {result.substrate} ranks):"]
    for kind in sorted(result.waits):
        lines.append(f"  {kind:12s} {result.waits[kind]:10.3f} s")
    lines.append(f"  ocean busy  {result.ocean_busy_seconds:10.3f} s "
                 f"({result.hidden_fraction:.0%} hidden under the "
                 "atmosphere/coupler overlap)")
    return "\n".join(lines)


def format_concurrent_calibration(profile: RunProfile, n_atm: int) -> str:
    """Render the sync-schedule costs calibrated from a merged profile."""
    try:
        mc = calibrate_concurrent_from_profile(profile, n_atm)
    except ValueError as err:
        return f"concurrent calibration unavailable: {err}"
    lines = [
        "calibrated concurrent-schedule costs (summed-rank seconds):",
        f"  ordinary atmosphere step  {mc.step_seconds:12.6f}",
        f"  radiation atmosphere step {mc.radiation_step_seconds:12.6f}",
        f"  coupler per step          {mc.coupler_seconds:12.6f}"
        f"  (exposed {mc.coupler_exposed_seconds:.6f})",
        f"  dynamics overlap window   {mc.dynamics_seconds:12.6f}",
        f"  ocean call                {mc.ocean_call_seconds:12.6f}",
        "feed these into simulate_coupled_day(..., measured=..., "
        "schedule='sync', coupler_offloaded=True) or "
        "predict_concurrent_speedup(...).",
    ]
    return "\n".join(lines)


def format_calibration(profile: RunProfile) -> str:
    """Render the event-simulator costs calibrated from ``profile``."""
    try:
        mc = calibrate_from_profile(profile)
    except ValueError as err:
        return f"calibration unavailable: {err}"
    lines = [
        "calibrated event-simulator costs (serial seconds per section):",
        f"  ordinary atmosphere step  {mc.step_seconds:12.6f}",
        f"  radiation atmosphere step {mc.radiation_step_seconds:12.6f}"
        f"  ({mc.radiation_step_seconds / mc.step_seconds:.2f}x ordinary)",
        f"  coupler per step          {mc.coupler_seconds:12.6f}",
        f"  ocean call                {mc.ocean_call_seconds:12.6f}",
    ]
    if mc.transpose_seconds > 0.0:
        lines.append(f"  transpose per step        {mc.transpose_seconds:12.6f}")
    else:
        lines.append("  transpose: not exercised (serial run); simulator "
                     "falls back to byte-volume model")
    lines.append("feed these into simulate_coupled_day(..., measured=...) "
                 "to replay the run on a modeled machine.")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.report",
        description="Measured per-section time allocation of a coupled run "
                    "(the wall-clock analogue of the paper's Figure 2).")
    parser.add_argument("--days", type=float, default=1.0,
                        help="simulated days to integrate (default: 1)")
    parser.add_argument("--config", default="test",
                        choices=("test", "small", "paper"),
                        help="model resolution (default: test)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the config's RNG seed")
    parser.add_argument("--dtype", default=None,
                        choices=("float64", "float32"),
                        help="array precision (default: FOAM_DTYPE or float64)")
    parser.add_argument("--backend", default=None,
                        help="array backend (default: FOAM_BACKEND or numpy)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the RunProfile as JSON to PATH")
    parser.add_argument("--load", metavar="PATH", default=None,
                        help="render a previously saved profile instead of "
                             "running the model")
    parser.add_argument("--min-fraction", type=float, default=0.0,
                        help="hide sections below this share of total time")
    parser.add_argument("--atm-ranks", type=int, default=None, metavar="N",
                        help="run concurrently with N atmosphere-pool ranks "
                             "(adds a dedicated coupler rank)")
    parser.add_argument("--ocn-ranks", type=int, default=1, metavar="N",
                        help="ocean-pool ranks for --atm-ranks mode "
                             "(default: 1)")
    parser.add_argument("--substrate", default=None,
                        choices=("thread", "process"),
                        help="communicator substrate for --atm-ranks mode: "
                             "rank threads or real forked processes "
                             "(default: FOAM_COMM or thread)")
    parser.add_argument("--ensemble", type=int, default=None, metavar="N",
                        help="profile a batched N-member ensemble run "
                             "(section times are for the whole batch)")
    args = parser.parse_args(argv)

    if args.ensemble is not None and args.atm_ranks is not None:
        parser.error("--ensemble and --atm-ranks are mutually exclusive")
    if args.substrate is not None and args.atm_ranks is None:
        parser.error("--substrate requires --atm-ranks (it picks the "
                     "communicator for the concurrent coupled run)")

    result = None
    if args.load is not None:
        profile = RunProfile.load(args.load)
    elif args.ensemble is not None:
        profile = profile_ensemble_run(days=args.days, config=args.config,
                                       nens=args.ensemble, seed=args.seed,
                                       dtype=args.dtype,
                                       backend=args.backend)
    elif args.atm_ranks is not None:
        result = profile_concurrent_run(days=args.days, config=args.config,
                                        n_atm=args.atm_ranks,
                                        n_ocn=args.ocn_ranks,
                                        substrate=args.substrate)
        profile = result.profile

    else:
        profile = profile_coupled_run(days=args.days, config=args.config,
                                      seed=args.seed, dtype=args.dtype,
                                      backend=args.backend)

    print(profile.format_table(min_fraction=args.min_fraction))
    print()
    if result is not None:
        print(format_waits(result))
        print()
        print(format_concurrent_calibration(profile, args.atm_ranks))
    else:
        print(format_calibration(profile))
    print()
    print(format_kernel_caches(profile))

    if args.json is not None:
        profile.save(args.json)
        print(f"\nprofile written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
