"""Performance modeling: machine models, op counts, and the event simulator.

Reproduces the paper's section 5 results (Figure 2 and the throughput
claims) on a calibrated model of the 1997 hardware we do not have.
"""

from repro.perf.costmodel import (
    AtmosphereCost,
    CouplerCost,
    MeasuredCosts,
    OceanCost,
    atmosphere_ocean_cost_ratio,
    calibrate_concurrent_from_profile,
    calibrate_from_profile,
    foam_paper_costs,
    transpose_bytes_from_stats,
    transpose_messages_from_stats,
)
from repro.perf.csm import (
    CSMCostModel,
    cost_performance_ratio,
    foam_cost_musd,
)
from repro.perf.eventsim import (
    SimulationResult,
    atmosphere_parallel_efficiency,
    predict_concurrent_speedup,
    scaling_curve,
    simulate_coupled_day,
    simulate_ocean_day,
    simulate_serial_day,
)
from repro.perf.machine import (
    MachineModel,
    commodity_cluster_1999,
    cray_c90,
    ibm_sp2,
)
# NOTE: repro.perf.report is deliberately NOT imported here — it pulls in
# repro.core (the whole coupled model), while this package must stay
# importable from the instrumented component modules themselves.
from repro.perf.profiler import (
    Profiler,
    RunProfile,
    SectionStat,
    disable_profiling,
    enable_profiling,
    get_profiler,
    merge_profiles,
    profile_count,
    profile_section,
    profiled,
    profiling_enabled,
    set_profiler,
    take_profile,
    thread_profiler,
)

__all__ = [
    "MachineModel", "commodity_cluster_1999", "cray_c90", "ibm_sp2",
    "AtmosphereCost", "CouplerCost", "MeasuredCosts", "OceanCost",
    "atmosphere_ocean_cost_ratio", "calibrate_concurrent_from_profile",
    "calibrate_from_profile", "foam_paper_costs",
    "transpose_bytes_from_stats", "transpose_messages_from_stats",
    "SimulationResult", "atmosphere_parallel_efficiency",
    "predict_concurrent_speedup", "scaling_curve",
    "simulate_coupled_day", "simulate_ocean_day", "simulate_serial_day",
    "CSMCostModel", "cost_performance_ratio", "foam_cost_musd",
    "Profiler", "RunProfile", "SectionStat",
    "disable_profiling", "enable_profiling", "get_profiler",
    "merge_profiles", "profile_count", "profile_section", "profiled",
    "profiling_enabled", "set_profiler", "take_profile", "thread_profiler",
]
