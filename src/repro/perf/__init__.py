"""Performance modeling: machine models, op counts, and the event simulator.

Reproduces the paper's section 5 results (Figure 2 and the throughput
claims) on a calibrated model of the 1997 hardware we do not have.
"""

from repro.perf.machine import (
    MachineModel,
    commodity_cluster_1999,
    cray_c90,
    ibm_sp2,
)
from repro.perf.costmodel import (
    AtmosphereCost,
    CouplerCost,
    OceanCost,
    atmosphere_ocean_cost_ratio,
    foam_paper_costs,
    transpose_bytes_from_stats,
    transpose_messages_from_stats,
)
from repro.perf.eventsim import (
    SimulationResult,
    atmosphere_parallel_efficiency,
    scaling_curve,
    simulate_coupled_day,
    simulate_ocean_day,
)
from repro.perf.csm import (
    CSMCostModel,
    cost_performance_ratio,
    foam_cost_musd,
)

__all__ = [
    "MachineModel", "commodity_cluster_1999", "cray_c90", "ibm_sp2",
    "AtmosphereCost", "CouplerCost", "OceanCost",
    "atmosphere_ocean_cost_ratio", "foam_paper_costs",
    "transpose_bytes_from_stats", "transpose_messages_from_stats",
    "SimulationResult", "atmosphere_parallel_efficiency", "scaling_curve",
    "simulate_coupled_day", "simulate_ocean_day",
    "CSMCostModel", "cost_performance_ratio", "foam_cost_musd",
]
