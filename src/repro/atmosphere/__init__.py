"""The FOAM atmosphere: PCCM2-derived spectral dynamics + CCM2/CCM3 physics.

Paper section 4.1: an R15 rhomboidal spectral model (48 x 40 Gaussian grid,
18 hybrid levels, 30-minute steps) whose physics columns run without
interprocessor communication.  Subpackages:

* :mod:`repro.atmosphere.spectral` — spherical-harmonic transform engine;
* :mod:`repro.atmosphere.vertical` — sigma levels and semi-implicit matrices;
* :mod:`repro.atmosphere.dynamics` — the semi-implicit dynamical core;
* :mod:`repro.atmosphere.semilag` — semi-Lagrangian moisture transport;
* :mod:`repro.atmosphere.physics` — radiation, convection, stratiform,
  boundary layer, and surface-flux parameterizations.
"""

from repro.atmosphere.dynamics import (
    AtmosphereState,
    GridDiagnostics,
    SpectralDynamicalCore,
)
from repro.atmosphere.semilag import advect_semilagrangian
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid

__all__ = [
    "SpectralTransform",
    "Truncation",
    "VerticalGrid",
    "AtmosphereState",
    "GridDiagnostics",
    "SpectralDynamicalCore",
    "advect_semilagrangian",
]
