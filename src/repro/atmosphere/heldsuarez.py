"""Held-Suarez (1994) forcing: the standard dry dynamical-core test climate.

Not part of FOAM itself, but the canonical way to exercise a primitive-
equation dynamical core without the full physics suite: Newtonian
relaxation of temperature toward a prescribed equilibrium profile plus
Rayleigh drag on low-level winds.  Used by the test suite to demonstrate
that the spectral core develops a realistic general circulation (jets,
baroclinic eddies) from rest — the baseline credential of any GCM dycore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState, SpectralDynamicalCore
from repro.util.constants import KAPPA


@dataclass(frozen=True)
class HeldSuarezParams:
    t_surface_eq: float = 315.0     # K, equatorial surface equilibrium
    delta_t_y: float = 60.0         # K, equator-pole contrast
    delta_theta_z: float = 10.0     # K, static-stability parameter
    t_stratosphere: float = 200.0   # K, floor
    k_a: float = 1.0 / (40.0 * 86400.0)   # free-atmosphere relaxation
    k_s: float = 1.0 / (4.0 * 86400.0)    # surface relaxation
    k_f: float = 1.0 / 86400.0            # Rayleigh drag
    sigma_b: float = 0.7                  # boundary-layer top


def equilibrium_temperature(lats: np.ndarray, sigma: np.ndarray,
                            p: HeldSuarezParams = HeldSuarezParams()
                            ) -> np.ndarray:
    """T_eq(lat, sigma) of Held & Suarez (1994), shape (L, nlat, 1)."""
    lat = lats[None, :, None]
    sig = sigma[:, None, None]
    t_eq = (p.t_surface_eq - p.delta_t_y * np.sin(lat) ** 2
            - p.delta_theta_z * np.log(sig) * np.cos(lat) ** 2) * sig**KAPPA
    return np.maximum(t_eq, p.t_stratosphere)


class HeldSuarezForcing:
    """Callable forcing hook for :meth:`SpectralDynamicalCore.run`."""

    def __init__(self, core: SpectralDynamicalCore,
                 params: HeldSuarezParams = HeldSuarezParams()):
        self.params = params
        self.core = core
        tr, vg = core.tr, core.vg
        self.t_eq = equilibrium_temperature(tr.lats, vg.sigma, params)
        sig = vg.sigma[:, None, None]
        weight = np.clip((sig - params.sigma_b) / (1.0 - params.sigma_b),
                         0.0, 1.0)
        lat = tr.lats[None, :, None]
        self.k_t = params.k_a + (params.k_s - params.k_a) * weight \
            * np.cos(lat) ** 4
        self.k_v = params.k_f * weight

    def __call__(self, core: SpectralDynamicalCore, prev: AtmosphereState,
                 curr: AtmosphereState) -> None:
        """Apply one step of relaxation + drag to ``curr`` (in place)."""
        tr, vg, dt = core.tr, core.vg, core.dt
        d = core.diagnose(curr)
        dtdt = -self.k_t * (d.temp - self.t_eq)
        dudt = -self.k_v * d.u
        dvdt = -self.k_v * d.v
        for l in range(vg.nlev):
            curr.temp[l] += dt * tr.analyze(dtdt[l])
            dvort, ddiv = tr.vortdiv_from_uv(dudt[l], dvdt[l])
            curr.vort[l] += dt * dvort
            curr.div[l] += dt * ddiv
