"""Spherical-harmonic spectral transform core (the PCCM2 dynamical substrate).

The FOAM atmosphere is a spectral transform model: fields live both on a
longitude x Gaussian-latitude grid and as spherical-harmonic coefficients
under a rhomboidal truncation (R15 in the paper: zonal wavenumbers
m = 0..15, total wavenumbers n = m..m+15, on a 48 x 40 grid).  This module
implements, from scratch:

* Gaussian latitudes and quadrature weights;
* normalized associated Legendre functions ``Pbar`` and their derivative
  combination ``H = (1-mu^2) dPbar/dmu`` by stable three-term recurrence;
* grid <-> spectral transforms (FFT in longitude, Gauss-Legendre quadrature
  in latitude);
* the spectral differential operators a GCM dynamical core needs: zonal
  derivative, Laplacian and its inverse, and the wind <-> (vorticity,
  divergence) relations in the integrated-by-parts form of Bourke (1972)
  that avoids grid-space differentiation.

Normalization: ``(1/2) \\int_{-1}^{1} Pbar_n^m(mu)^2 dmu = 1`` and Fourier
coefficients carry a 1/nlon factor on analysis, so a spectral coefficient
(m=0, n=0) equals the global mean of the field.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.backend import (
    ArrayBackend,
    DTypePolicy,
    get_backend,
    get_workspace,
    policy_from_name,
)
from repro.backend.kernels import SpectralKernelPlan, fused_enabled
from repro.perf.profiler import profiled
from repro.util.constants import EARTH_RADIUS


@dataclass(frozen=True)
class Truncation:
    """Spectral truncation: rhomboidal (CCM/R15 style) or triangular.

    ``mmax`` is the highest zonal wavenumber; for each m the retained total
    wavenumbers are n = m .. m + nextra (rhomboidal, nextra = K) or
    n = m .. mmax (triangular, nextra decreasing).
    """

    mmax: int
    kind: str = "rhomboidal"

    def __post_init__(self):
        if self.mmax < 1:
            raise ValueError(f"mmax must be >= 1, got {self.mmax}")
        if self.kind not in ("rhomboidal", "triangular"):
            raise ValueError(f"unknown truncation kind {self.kind!r}")

    @property
    def nm(self) -> int:
        """Number of zonal wavenumbers (m = 0..mmax)."""
        return self.mmax + 1

    @property
    def nk(self) -> int:
        """Number of retained n per m (k index 0..nk-1, n = m + k)."""
        return self.mmax + 1

    def mask(self) -> np.ndarray:
        """Boolean (nm, nk) mask of retained coefficients."""
        m = np.arange(self.nm)[:, None]
        k = np.arange(self.nk)[None, :]
        if self.kind == "rhomboidal":
            return np.ones((self.nm, self.nk), dtype=bool)
        return (m + k) <= self.mmax

    def n_values(self) -> np.ndarray:
        """Total wavenumber n at each (m, k) slot."""
        m = np.arange(self.nm)[:, None]
        k = np.arange(self.nk)[None, :]
        return m + k


def gaussian_latitudes(nlat: int) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian quadrature nodes mu = sin(lat) (south->north) and weights."""
    if nlat < 2:
        raise ValueError(f"need at least 2 latitudes, got {nlat}")
    mu, w = np.polynomial.legendre.leggauss(nlat)
    order = np.argsort(mu)
    return mu[order], w[order]


def _epsilon(n: np.ndarray | float, m: np.ndarray | int) -> np.ndarray | float:
    """Recurrence coefficient eps_n^m = sqrt((n^2 - m^2) / (4 n^2 - 1))."""
    n = np.asarray(n, dtype=float)
    return np.sqrt(np.maximum(n * n - m * m, 0.0) / (4.0 * n * n - 1.0))


def associated_legendre(mu: np.ndarray, mmax: int, nkmax: int) -> np.ndarray:
    """Normalized associated Legendre functions on Gaussian nodes.

    Returns ``pbar`` of shape (nlat, mmax+1, nkmax) with
    ``pbar[j, m, k] = Pbar_{m+k}^m(mu_j)``.  Normalization is
    ``(1/2) int Pbar^2 dmu = 1``; computed with the stable sectoral seed +
    three-term recurrence in n, batched across every m column at once
    (bitwise identical to :func:`_associated_legendre_ref` — same
    elementwise IEEE operations, just stacked).
    """
    mu = np.asarray(mu, dtype=float)
    nlat = mu.size
    cos2 = 1.0 - mu * mu  # cos^2(lat)
    pbar = np.zeros((nlat, mmax + 1, nkmax))
    # Sectoral functions Pbar_m^m built multiplicatively to avoid overflow;
    # this seed chain is inherently sequential in m (and cheap).
    pmm = np.ones(nlat)  # Pbar_0^0 = 1 under this normalization
    for m in range(mmax + 1):
        pbar[:, m, 0] = pmm
        # Seed for the next m: Pbar_{m+1}^{m+1} = sqrt((2m+3)/(2m+2)) cos(lat) Pbar_m^m
        if m < mmax:
            pmm = np.sqrt((2.0 * m + 3.0) / (2.0 * m + 2.0)) * np.sqrt(cos2) * pmm
    # Upward recurrence in n, all (nlat, m) columns per k step:
    #   Pbar_n = (mu Pbar_{n-1} - eps_{n-1} Pbar_{n-2}) / eps_n
    m_arr = np.arange(mmax + 1, dtype=float)
    mu_col = mu[:, None]
    pnm2 = np.zeros((nlat, mmax + 1))
    pnm1 = pbar[:, :, 0]
    for k in range(1, nkmax):
        n_arr = m_arr + k
        e_n = _epsilon(n_arr, m_arr)
        e_nm1 = _epsilon(n_arr - 1.0, m_arr)
        pn = (mu_col * pnm1 - e_nm1 * pnm2) / e_n
        pbar[:, :, k] = pn
        pnm2, pnm1 = pnm1, pn
    return pbar


def _associated_legendre_ref(mu: np.ndarray, mmax: int, nkmax: int) -> np.ndarray:
    """Reference per-m loop implementation of :func:`associated_legendre`.

    Kept as the bitwise oracle for the batched kernel (and as the baseline
    the Legendre entry in ``BENCH_backend.json`` measures against).
    """
    mu = np.asarray(mu, dtype=float)
    nlat = mu.size
    cos2 = 1.0 - mu * mu
    pbar = np.zeros((nlat, mmax + 1, nkmax))
    pmm = np.ones(nlat)
    for m in range(mmax + 1):
        pbar[:, m, 0] = pmm
        pnm2 = np.zeros(nlat)
        pnm1 = pmm
        for k in range(1, nkmax):
            n = m + k
            e_n = _epsilon(n, m)
            e_nm1 = _epsilon(n - 1, m)
            pn = (mu * pnm1 - e_nm1 * pnm2) / e_n
            pbar[:, m, k] = pn
            pnm2, pnm1 = pnm1, pn
        if m < mmax:
            pmm = np.sqrt((2.0 * m + 3.0) / (2.0 * m + 2.0)) * np.sqrt(cos2) * pmm
    return pbar


def legendre_derivative(mu: np.ndarray, pbar_ext: np.ndarray) -> np.ndarray:
    """H_n^m = (1 - mu^2) dPbar_n^m/dmu from the extended Pbar table.

    ``pbar_ext`` must hold one extra k row (n up to m + nk), since
    ``H_n = (n+1) eps_n Pbar_{n-1} - n eps_{n+1} Pbar_{n+1}``.
    Returns shape (nlat, nm, nk) where nk = pbar_ext.shape[2] - 1.
    Fully vectorized over (m, k); bitwise identical to
    :func:`_legendre_derivative_ref` (the k = 0 down-term is a zeros
    column, so ``term_up + term_dn`` reproduces the reference's
    ``term_up + 0.0`` including its -0.0 -> +0.0 normalization).
    """
    nlat, nm, nk_ext = pbar_ext.shape
    nk = nk_ext - 1
    m = np.arange(nm, dtype=float)[:, None]
    k = np.arange(nk, dtype=float)[None, :]
    n = m + k
    up = (-n) * _epsilon(n + 1.0, m)            # (nm, nk)
    dn = (n + 1.0) * _epsilon(n, m)
    h = up[None, :, :] * pbar_ext[:, :, 1:nk + 1]
    term_dn = np.zeros_like(h)
    term_dn[:, :, 1:] = dn[None, :, 1:] * pbar_ext[:, :, 0:nk - 1]
    return h + term_dn


def _legendre_derivative_ref(mu: np.ndarray, pbar_ext: np.ndarray) -> np.ndarray:
    """Reference double-loop implementation of :func:`legendre_derivative`."""
    nlat, nm, nk_ext = pbar_ext.shape
    nk = nk_ext - 1
    h = np.zeros((nlat, nm, nk))
    for m in range(nm):
        for k in range(nk):
            n = m + k
            term_up = -n * _epsilon(n + 1, m) * pbar_ext[:, m, k + 1]
            term_dn = (n + 1) * _epsilon(n, m) * pbar_ext[:, m, k - 1] if k >= 1 else 0.0
            h[:, m, k] = term_up + term_dn
    return h


# ---------------------------------------------------------------------------
# Cached Legendre plan tables
# ---------------------------------------------------------------------------
_plan_lock = threading.Lock()
_plan_cache: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}
_plan_stats = {"builds": 0, "hits": 0}


def legendre_plan(nlat: int, mmax: int, nkmax: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached read-only float64 ``(pbar_ext, hbar)`` tables for one grid.

    Every :class:`SpectralTransform` for the same (nlat, mmax, nkmax) —
    including the replicated per-rank models the concurrent coupled driver
    constructs on simulated-MPI threads — shares one table, so pool workers
    never redo the recurrences.  The arrays are marked non-writeable;
    ``.astype(float64, copy=False)`` on them returns the shared array.
    """
    key = (int(nlat), int(mmax), int(nkmax))
    with _plan_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _plan_stats["hits"] += 1
            return plan
    mu, _ = gaussian_latitudes(nlat)
    pbar_ext = associated_legendre(mu, mmax, nkmax)
    hbar = legendre_derivative(mu, pbar_ext)
    pbar_ext.setflags(write=False)
    hbar.setflags(write=False)
    with _plan_lock:
        # A racing builder may have beaten us; keep whichever landed first.
        plan = _plan_cache.setdefault(key, (pbar_ext, hbar))
        _plan_stats["builds"] += 1
    return plan


def legendre_plan_stats() -> dict:
    """Copy of the plan-cache counters: {"builds": ..., "hits": ...}."""
    with _plan_lock:
        return dict(_plan_stats)


def clear_legendre_plans() -> None:
    """Drop all cached plan tables and zero the counters (test hook)."""
    with _plan_lock:
        _plan_cache.clear()
        _plan_stats["builds"] = 0
        _plan_stats["hits"] = 0


class SpectralTransform:
    """Grid <-> spectral transform engine for one (nlat, nlon, truncation).

    Precomputes Legendre tables once; all transforms are einsum/FFT calls
    with no Python-level loops over latitude or wavenumber (the guides'
    vectorization rule — these are the model's innermost kernels).
    """

    def __init__(self, nlat: int, nlon: int, trunc: Truncation,
                 radius: float = EARTH_RADIUS,
                 dtype: str | DTypePolicy | None = None,
                 backend: str | ArrayBackend | None = None):
        if nlon < 2 * trunc.mmax + 1:
            raise ValueError(
                f"nlon={nlon} cannot resolve m up to {trunc.mmax} without aliasing; "
                f"need nlon >= {2 * trunc.mmax + 1}")
        max_n = trunc.mmax + trunc.nk - 1
        if 2 * nlat < max_n + trunc.mmax + 1:
            raise ValueError(
                f"nlat={nlat} too coarse for quadrature of truncation "
                f"(max n = {max_n}); need nlat >= {(max_n + trunc.mmax + 1 + 1) // 2}")
        self.nlat = nlat
        self.nlon = nlon
        self.trunc = trunc
        self.radius = radius
        self.policy = policy_from_name(dtype)
        fdt = self.policy.float_dtype
        cdt = self.policy.complex_dtype

        self.mu, self.weights = gaussian_latitudes(nlat)
        self.lats = np.arcsin(self.mu)                  # radians, S->N
        self.lons = 2.0 * np.pi * np.arange(nlon) / nlon

        # Legendre tables: built in float64 for recurrence stability (shared
        # across transforms via the plan cache), then cast to the policy
        # precision the transforms run in.
        pbar_ext, hbar = legendre_plan(nlat, trunc.mmax, trunc.nk + 1)
        pbar = pbar_ext[:, :, : trunc.nk]
        self._wp = ((self.weights[:, None, None] / 2.0) * pbar).astype(fdt, copy=False)
        self._wh = ((self.weights[:, None, None] / 2.0) * hbar).astype(fdt, copy=False)
        self.pbar = pbar.astype(fdt, copy=False)
        self.hbar = hbar.astype(fdt, copy=False)
        self.coslat = np.cos(self.lats).astype(fdt, copy=False)
        self._mask = trunc.mask()
        n64 = trunc.n_values().astype(np.float64)
        m64 = np.arange(trunc.nm, dtype=np.float64)[:, None] * np.ones_like(n64)
        lap64 = -n64 * (n64 + 1.0) / radius**2
        with np.errstate(divide="ignore"):
            inv64 = np.where(lap64 != 0.0, 1.0 / lap64, 0.0)
        self._n = n64.astype(fdt, copy=False)
        self._m = m64.astype(fdt, copy=False)
        self._im = (1j * m64).astype(cdt, copy=False)
        self._lap = lap64.astype(fdt, copy=False)
        self._invlap = inv64.astype(fdt, copy=False)
        self._rcos = (radius * np.cos(self.lats)).astype(fdt, copy=False)[:, None]

        # Fused kernel plan: the transforms above as few large
        # backend-dispatchable calls (FOAM_FUSED=0 falls back to the
        # unfused per-call formulation kept in the methods below).
        self.backend = get_backend(backend)
        self._plan = SpectralKernelPlan(self)

    # ------------------------------------------------------------------
    @property
    def spec_shape(self) -> tuple[int, int]:
        return (self.trunc.nm, self.trunc.nk)

    @cached_property
    def lat_degrees(self) -> np.ndarray:
        return np.degrees(self.lats)

    @cached_property
    def lon_degrees(self) -> np.ndarray:
        return np.degrees(self.lons)

    @cached_property
    def cell_area_weights(self) -> np.ndarray:
        """(nlat, nlon) area weights summing to 1 (Gaussian x uniform lon)."""
        w = np.repeat(self.weights[:, None] / 2.0, self.nlon, axis=1) / self.nlon
        return w

    def global_mean(self, grid: np.ndarray) -> float:
        """Exact (quadrature) area-weighted global mean of a grid field."""
        return float(np.sum(grid * self.cell_area_weights))

    # ------------------------------------------------------------------
    # core transforms
    # ------------------------------------------------------------------
    def _fourier(self, grid: np.ndarray) -> np.ndarray:
        """Forward FFT in longitude; returns (nlat, nm) complex, 1/nlon norm."""
        f = np.fft.rfft(grid, axis=-1) / self.nlon
        return f[..., : self.trunc.nm]

    def _inverse_fourier(self, fm: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`_fourier`: (nlat, nm) complex -> (nlat, nlon) real."""
        ws = get_workspace()
        full = ws.zeros("spectral.ifft_pad",
                        fm.shape[:-1] + (self.nlon // 2 + 1,), fm.dtype)
        full[..., : self.trunc.nm] = fm
        full *= self.nlon
        return np.fft.irfft(full, n=self.nlon, axis=-1)

    @profiled("spectral.analyze")
    def analyze(self, grid: np.ndarray) -> np.ndarray:
        """Grid (..., nlat, nlon) -> spectral coefficients (..., nm, nk).

        Leading (batch/ensemble) axes pass straight through: the quadrature
        einsum contracts latitude per batch member with the same summation
        order as the unbatched call, so batched results are bitwise
        identical to member-at-a-time calls.
        """
        if fused_enabled():
            return self._plan.analyze(grid)
        fm = self._fourier(grid)
        ws = get_workspace()
        spec = np.einsum("...jm,jmk->...mk", fm, self._wp,
                         out=ws.empty("spectral.analyze.spec",
                                      fm.shape[:-2] + self.spec_shape,
                                      np.result_type(fm, self._wp)))
        return spec * self._mask

    @profiled("spectral.synthesize")
    def synthesize(self, spec: np.ndarray) -> np.ndarray:
        """Spectral (..., nm, nk) -> grid (..., nlat, nlon), real."""
        if fused_enabled():
            return self._plan.synthesize(spec)
        ws = get_workspace()
        masked = np.multiply(spec, self._mask,
                             out=ws.empty("spectral.synth.masked",
                                          spec.shape, spec.dtype))
        fm = np.einsum("...mk,jmk->...jm", masked, self.pbar,
                       out=ws.empty("spectral.synth.fm",
                                    spec.shape[:-2] + (self.nlat, self.trunc.nm),
                                    np.result_type(spec, self.pbar)))
        return self._inverse_fourier(fm)

    @profiled("spectral.synthesize")
    def synthesize_many(self, *specs: np.ndarray) -> tuple:
        """Synthesize several same-shape spectral fields at once.

        The fused plan stacks them through a single einsum + inverse FFT;
        the unfused fallback is plain per-field :meth:`synthesize`.  Each
        returned grid is bitwise identical either way.
        """
        if fused_enabled():
            return self._plan.synthesize_many(*specs)
        return tuple(self.synthesize(s) for s in specs)

    # ------------------------------------------------------------------
    # differential operators (spectral space)
    # ------------------------------------------------------------------
    def laplacian(self, spec: np.ndarray) -> np.ndarray:
        """del^2 in spectral space: multiply by -n(n+1)/a^2."""
        return spec * self._lap

    def inverse_laplacian(self, spec: np.ndarray) -> np.ndarray:
        """del^-2; the (0,0) global-mean mode maps to zero."""
        return spec * self._invlap

    def ddlambda(self, spec: np.ndarray) -> np.ndarray:
        """Zonal derivative d/dlambda (multiply by i m)."""
        return spec * self._im

    # ------------------------------------------------------------------
    # wind <-> vorticity/divergence (Bourke form)
    # ------------------------------------------------------------------
    @profiled("spectral.uv_from_vortdiv")
    def uv_from_vortdiv(self, vort_spec: np.ndarray, div_spec: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Grid winds (u, v) from spectral relative vorticity and divergence.

        Solves psi = del^-2 zeta, chi = del^-2 D, then
        U = u cos(lat) = (im chi Pbar - psi H)/a summed over n, likewise V.
        """
        if fused_enabled():
            return self._plan.uv_from_vortdiv(vort_spec, div_spec)
        ws = get_workspace()
        sdt = np.result_type(vort_spec, self._invlap)
        shape = vort_spec.shape
        psi = np.multiply(vort_spec, self._invlap,
                          out=ws.empty("spectral.uv.psi", shape, sdt))
        chi = np.multiply(div_spec, self._invlap,
                          out=ws.empty("spectral.uv.chi", shape, sdt))
        t1 = np.multiply(self._im, chi, out=ws.empty("spectral.uv.t1", shape, sdt))
        t1 = np.multiply(t1, self._mask, out=t1)
        t2 = np.multiply(psi, self._mask, out=ws.empty("spectral.uv.t2", shape, sdt))
        fm_shape = shape[:-2] + (self.nlat, self.trunc.nm)
        fdt = np.result_type(sdt, self.pbar)
        e1 = np.einsum("...mk,jmk->...jm", t1, self.pbar,
                       out=ws.empty("spectral.uv.ufm", fm_shape, fdt))
        e2 = np.einsum("...mk,jmk->...jm", t2, self.hbar,
                       out=ws.empty("spectral.uv.e2", fm_shape, fdt))
        u_fm = np.subtract(e1, e2, out=e1)
        u_fm /= self.radius
        t1 = np.multiply(self._im, psi, out=t1)
        t1 = np.multiply(t1, self._mask, out=t1)
        t2 = np.multiply(chi, self._mask, out=t2)
        e3 = np.einsum("...mk,jmk->...jm", t1, self.pbar,
                       out=ws.empty("spectral.uv.vfm", fm_shape, fdt))
        e4 = np.einsum("...mk,jmk->...jm", t2, self.hbar,
                       out=ws.empty("spectral.uv.e4", fm_shape, fdt))
        v_fm = np.add(e3, e4, out=e3)
        v_fm /= self.radius
        big_u = self._inverse_fourier(u_fm)
        big_v = self._inverse_fourier(v_fm)
        cos = self.coslat[:, None]
        return big_u / cos, big_v / cos

    @profiled("spectral.vortdiv_from_uv")
    def vortdiv_from_uv(self, u: np.ndarray, v: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Spectral (zeta, D) from grid winds by integration by parts.

        zeta_n^m = (1/a) sum_j w_j/2 [ im V_m Pbar + U_m H ] / (1-mu^2)
        D_n^m    = (1/a) sum_j w_j/2 [ im U_m Pbar - V_m H ] / (1-mu^2)
        which never differentiates on the grid (Bourke 1972).
        """
        if fused_enabled():
            return self._plan.vortdiv_from_uv(u, v)
        ws = get_workspace()
        cos = self.coslat[:, None]
        over_c2 = 1.0 / (cos[:, 0] ** 2)
        u_fm = self._fourier(u * cos) * over_c2[:, None]
        v_fm = self._fourier(v * cos) * over_c2[:, None]
        sdt = np.result_type(u_fm, self._wp)
        sp_shape = u_fm.shape[:-2] + self.spec_shape
        e1 = np.einsum("...jm,jmk->...mk", v_fm, self._wp,
                       out=ws.empty("spectral.vd.e1", sp_shape, sdt))
        e2 = np.einsum("...jm,jmk->...mk", u_fm, self._wh,
                       out=ws.empty("spectral.vd.e2", sp_shape, sdt))
        e1 = np.multiply(self._im, e1, out=e1)
        vort = np.add(e1, e2, out=e1)
        vort /= self.radius
        e3 = np.einsum("...jm,jmk->...mk", u_fm, self._wp,
                       out=ws.empty("spectral.vd.e3", sp_shape, sdt))
        e4 = np.einsum("...jm,jmk->...mk", v_fm, self._wh,
                       out=ws.empty("spectral.vd.e4", sp_shape, sdt))
        e3 = np.multiply(self._im, e3, out=e3)
        div = np.subtract(e3, e4, out=e3)
        div /= self.radius
        return vort * self._mask, div * self._mask

    def gradient(self, spec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Grid (df/dx, df/dy) of a spectral field on the sphere.

        df/dx = (1/(a cos)) df/dlambda,  df/dy = (cos/a) df/dmu; the
        meridional part uses the H functions so no finite differencing occurs.
        """
        if fused_enabled():
            return self._plan.gradient(spec)
        ws = get_workspace()
        t1 = np.multiply(spec, self._im,
                         out=ws.empty("spectral.grad.t1", spec.shape,
                                      np.result_type(spec, self._im)))
        t1 = np.multiply(t1, self._mask, out=t1)
        t2 = np.multiply(spec, self._mask,
                         out=ws.empty("spectral.grad.t2", spec.shape, spec.dtype))
        fm_shape = spec.shape[:-2] + (self.nlat, self.trunc.nm)
        fdt = np.result_type(t1, self.pbar)
        fx_fm = np.einsum("...mk,jmk->...jm", t1, self.pbar,
                          out=ws.empty("spectral.grad.fx", fm_shape, fdt))
        fy_fm = np.einsum("...mk,jmk->...jm", t2, self.hbar,
                          out=ws.empty("spectral.grad.fy", fm_shape, fdt))
        fx = self._inverse_fourier(fx_fm) / self._rcos
        fy = self._inverse_fourier(fy_fm) / self._rcos
        return fx, fy

    def spectral_filter(self, spec: np.ndarray, order: int = 4,
                        coefficient: float = 1.0e16, dt: float = 1.0) -> np.ndarray:
        """Implicit del^(2*order/2) hyperdiffusion damping (CCM-style del^4).

        Returns the filtered coefficients after one step of
        d a / dt = -K (-lap)^{order/2} a  applied implicitly.
        """
        if order % 2 != 0:
            raise ValueError(f"hyperdiffusion order must be even, got {order}")
        damp = coefficient * (self._n * (self._n + 1.0) / self.radius**2) ** (order // 2)
        return spec / (1.0 + dt * damp)
