"""Vertical (sigma) discretization for the FOAM atmosphere.

The paper's atmosphere uses 18 levels on a hybrid terrain-following/pressure
coordinate.  We implement the sigma limit of that coordinate (terrain
following everywhere), which is what the semi-implicit dynamical core
linearizes about anyway, plus the level-coupling matrices the core needs:

* the hydrostatic matrix ``G`` with Phi' = G T' (geopotential from
  temperature deviations);
* the linearized energy-conversion matrix ``tau`` with the implicit
  thermodynamic term  dT/dt = ... - tau D;
* the continuity row vector ``dsig`` with  d(ln ps)/dt = ... - dsig . D.

These three are the ingredients of the semi-implicit Helmholtz operator
``M = G tau + R T_ref (1 dsig^T)`` (Hoskins & Simmons 1975), inverted once
per total wavenumber at model setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import DTypePolicy, policy_from_name
from repro.util.constants import KAPPA, RD


def default_sigma_levels(nlev: int) -> np.ndarray:
    """Half-level sigma values (nlev+1,), top -> bottom, clustered near surface.

    A quadratic stretching puts extra resolution in the boundary layer, the
    same qualitative layout as CCM2's 18 hybrid levels.
    """
    if nlev < 2:
        raise ValueError(f"need at least 2 levels, got {nlev}")
    x = np.linspace(0.0, 1.0, nlev + 1)
    half = 0.4 * x + 0.6 * x**2
    half[0] = 0.0
    half[-1] = 1.0
    return half


@dataclass
class VerticalGrid:
    """Sigma-coordinate vertical grid and semi-implicit coupling matrices."""

    sigma_half: np.ndarray
    t_ref: float = 300.0  # isothermal reference temperature for semi-implicit
    dtype: str | DTypePolicy | None = None

    # Derived fields, filled in __post_init__.
    sigma: np.ndarray = field(init=False)
    dsigma: np.ndarray = field(init=False)
    nlev: int = field(init=False)

    def __post_init__(self):
        sh = np.asarray(self.sigma_half, dtype=np.float64)
        if sh.ndim != 1 or sh.size < 3:
            raise ValueError("sigma_half must be a 1-D array of >= 3 interface values")
        if not (abs(sh[0]) < 1e-12 and abs(sh[-1] - 1.0) < 1e-12):
            raise ValueError("sigma_half must run from 0 (top) to 1 (surface)")
        if np.any(np.diff(sh) <= 0):
            raise ValueError("sigma_half must be strictly increasing")
        # Runtime arrays carry the policy precision; the float64 originals
        # stay around so the semi-implicit matrices keep solver accuracy.
        self.policy = policy_from_name(self.dtype)
        fdt = self.policy.float_dtype
        self._sh64 = sh
        self._sigma64 = 0.5 * (sh[:-1] + sh[1:])       # full levels, top->bottom
        self._dsigma64 = np.diff(sh)                    # layer thicknesses
        self.sigma_half = sh.astype(fdt, copy=False)
        self.sigma = self._sigma64.astype(fdt, copy=False)
        self.dsigma = self._dsigma64.astype(fdt, copy=False)
        self.nlev = self.sigma.size
        self._g_cache: np.ndarray | None = None
        self._tau_cache: np.ndarray | None = None

    @classmethod
    def isobaric(cls, nlev: int, t_ref: float = 300.0,
                 dtype: str | DTypePolicy | None = None) -> "VerticalGrid":
        """Evenly spaced sigma layers (mostly for tests)."""
        return cls(np.linspace(0.0, 1.0, nlev + 1), t_ref=t_ref, dtype=dtype)

    @classmethod
    def ccm_like(cls, nlev: int = 18, t_ref: float = 300.0,
                 dtype: str | DTypePolicy | None = None) -> "VerticalGrid":
        """The FOAM/CCM2-style stretched grid (paper: 18 levels)."""
        return cls(default_sigma_levels(nlev), t_ref=t_ref, dtype=dtype)

    # ------------------------------------------------------------------
    # level-coupling matrices
    # ------------------------------------------------------------------
    def hydrostatic_matrix(self) -> np.ndarray:
        """G with Phi_l = Phi_s + sum_k G[l,k] T_k (discrete hydrostatic law).

        Integrating dPhi = -R T d(ln sigma) upward from the surface:
        interface L+1/2 is the surface; layer k contributes
        R T_k ln(sigma_half[k+1]/sigma_half[k]) across its full depth for
        levels above it, and R T_l ln(sigma_half[l+1]/sigma[l]) for the
        half-layer between level l and its lower interface.
        """
        if self._g_cache is not None:
            return self._g_cache
        L = self.nlev
        G = np.zeros((L, L))
        sh = self._sh64
        sf = self._sigma64
        for l in range(L):
            # half-layer from level l down to its lower interface
            G[l, l] = RD * np.log(sh[l + 1] / sf[l])
            # full layers strictly below level l (k = l+1 .. L-1)
            for k in range(l + 1, L):
                G[l, k] = RD * np.log(sh[k + 1] / sh[k])
        self._g_cache = G
        return G

    def energy_conversion_matrix(self) -> np.ndarray:
        """tau with the linearized  kappa T_ref (omega/p)  term: dT/dt = -tau D.

        Discrete (omega/p)_l^lin = -(1/sigma_l) [ sum_{k<l} dsig_k D_k
        + 0.5 dsig_l D_l ], so tau[l,k] = kappa T_ref dsig_k / sigma_l for
        k < l and half that for k = l.
        """
        if self._tau_cache is not None:
            return self._tau_cache
        L = self.nlev
        tau = np.zeros((L, L))
        for l in range(L):
            tau[l, : l] = self._dsigma64[: l]
            tau[l, l] = 0.5 * self._dsigma64[l]
            tau[l] *= KAPPA * self.t_ref / self._sigma64[l]
        self._tau_cache = tau
        return tau

    def semi_implicit_matrix(self) -> np.ndarray:
        """M = G tau + R T_ref (1 x dsig^T): the gravity-wave coupling operator."""
        G = self.hydrostatic_matrix()
        tau = self.energy_conversion_matrix()
        return G @ tau + RD * self.t_ref * np.outer(np.ones(self.nlev),
                                                    self._dsigma64)

    def geopotential(self, t_full: np.ndarray, phi_surface: np.ndarray | float = 0.0
                     ) -> np.ndarray:
        """Geopotential at full levels from temperature (level-major arrays).

        ``t_full`` has shape (L, ...); broadcasting handles grid dims.
        """
        G = self.hydrostatic_matrix()
        phi = np.tensordot(G, t_full, axes=(1, 0))
        return phi + phi_surface

    def omega_over_p(self, div: np.ndarray, vgradp: np.ndarray) -> np.ndarray:
        """Full (omega/p)_l = v_l . grad(ln ps) - (1/sig_l)[cumsum-weighted C].

        ``div`` and ``vgradp`` have shape (L, ...); C = div + vgradp.
        """
        c = div + vgradp
        wc = self.dsigma.reshape((-1,) + (1,) * (c.ndim - 1)) * c
        below = np.cumsum(wc, axis=0) - wc  # sum over k < l
        half_self = 0.5 * wc
        sig = self.sigma.reshape((-1,) + (1,) * (c.ndim - 1))
        return vgradp - (below + half_self) / sig

    def sigma_dot(self, div: np.ndarray, vgradp: np.ndarray) -> np.ndarray:
        """Vertical velocity sigma-dot at interior half levels, shape (L-1, ...).

        sigdot_{l+1/2} = sigma_{l+1/2} * sum_all(dsig C) - sum_{k<=l}(dsig C);
        identically zero at the top and bottom boundaries (not returned).
        """
        c = div + vgradp
        wc = self.dsigma.reshape((-1,) + (1,) * (c.ndim - 1)) * c
        total = np.sum(wc, axis=0)
        partial = np.cumsum(wc, axis=0)[:-1]  # k <= l for l = 0..L-2
        sh = self.sigma_half[1:-1].reshape((-1,) + (1,) * (c.ndim - 1))
        return sh * total - partial

    def vertical_advection(self, sigdot_half: np.ndarray, x_full: np.ndarray
                           ) -> np.ndarray:
        """sigdot dX/dsigma at full levels by energy-conserving averaging.

        (1/(2 dsig_l)) [ sigdot_{l+1/2}(X_{l+1}-X_l) + sigdot_{l-1/2}(X_l-X_{l-1}) ]
        with sigdot = 0 at the domain top and bottom.
        """
        L = self.nlev
        out = np.zeros_like(x_full)
        dx = x_full[1:] - x_full[:-1]            # X_{l+1} - X_l at half levels
        flux = sigdot_half * dx                   # (L-1, ...)
        dsig = self.dsigma.reshape((-1,) + (1,) * (x_full.ndim - 1))
        out[:-1] += flux
        out[1:] += flux
        return out / (2.0 * dsig)

    def column_mass_weights(self) -> np.ndarray:
        """dsigma as mass weights (sum to 1): vertical integrals are dsig . X."""
        return self.dsigma.copy()
