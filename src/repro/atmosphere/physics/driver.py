"""Physics driver: runs the full CCM-style column-physics suite in order.

The paper stresses that CCM physics "occur entirely in vertical columns" and
therefore parallelize with no communication; this driver preserves that
property — every scheme is a pure function of the column state, vectorized
over whatever horizontal shape the caller supplies.

Call order per physics step (the CCM sequence):

1. radiation (only on radiation steps — twice per simulated day, per Fig 2);
2. surface fluxes (unless the coupler supplies them, as in coupled FOAM);
3. boundary-layer vertical diffusion (consumes the surface fluxes);
4. Zhang-McFarlane deep convection;
5. Hack shallow convection;
6. stratiform condensation + precipitation evaporation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atmosphere.physics.boundary_layer import (
    BoundaryLayerParams,
    boundary_layer_tendencies,
)
from repro.atmosphere.physics.convection import (
    ConvectionParams,
    hack_shallow,
    zhang_mcfarlane_deep,
)
from repro.atmosphere.physics.radiation import (
    RadiationParams,
    fixed_subsolar_cos,
    longwave,
    shortwave,
    solar_zenith_cos,
)
from repro.atmosphere.physics.stratiform import StratiformParams, stratiform_tendencies
from repro.backend import get_workspace
from repro.perf.profiler import profile_section
from repro.util.constants import GRAVITY, SECONDS_PER_DAY


@dataclass
class SurfaceState:
    """What the physics needs to know about the lower boundary."""

    t_sfc: np.ndarray           # surface (skin / SST) temperature, K
    albedo: np.ndarray          # broadband surface albedo
    wetness: np.ndarray         # D_w latent-heat availability factor
    z0: np.ndarray              # roughness length (m); ocean overridden internally
    ocean_mask: np.ndarray      # bool: True where the CCM3 ocean formulas apply


@dataclass
class PhysicsTendencies:
    """Output of one physics step (all per second)."""

    dtdt: np.ndarray
    dqdt: np.ndarray
    dudt: np.ndarray
    dvdt: np.ndarray
    precip_conv: np.ndarray     # kg m^-2 s^-1
    precip_strat: np.ndarray
    fluxes: dict = field(default_factory=dict)   # surface energy budget pieces
    heating_sw: np.ndarray | None = None
    heating_lw: np.ndarray | None = None


class PhysicsSuite:
    """Holds all parameterization settings and applies them in CCM order."""

    def __init__(self,
                 radiation: RadiationParams = RadiationParams(),
                 convection: ConvectionParams = ConvectionParams(),
                 stratiform: StratiformParams = StratiformParams(),
                 boundary_layer: BoundaryLayerParams = BoundaryLayerParams(),
                 radiation_interval: float = SECONDS_PER_DAY / 2.0):
        self.rad = radiation
        self.conv = convection
        self.strat = stratiform
        self.pbl = boundary_layer
        self.radiation_interval = radiation_interval
        self._cached_sw = None
        self._cached_lw = None
        self._last_radiation_time = -np.inf

    def radiation_due(self, time: float) -> bool:
        """Radiation recomputes on its own (longer) cadence — paper: 2x/day."""
        return time - self._last_radiation_time >= self.radiation_interval - 1e-6

    # ------------------------------------------------------------------
    def compute(self, *, temp: np.ndarray, q: np.ndarray, u: np.ndarray,
                v: np.ndarray, pressure: np.ndarray, ps: np.ndarray,
                geopotential: np.ndarray, dsigma: np.ndarray,
                surface: SurfaceState, dt: float, time: float,
                lats: np.ndarray, lons: np.ndarray,
                external_fluxes: dict | None = None) -> PhysicsTendencies:
        """One physics step over all columns.

        ``external_fluxes`` lets the FOAM coupler own the surface flux
        computation (its overlap-grid role); otherwise the CCM2/CCM3 bulk
        formulas run here.
        """
        ws = get_workspace()
        dp = np.multiply(
            dsigma[:, None, None], ps[None],
            out=ws.empty("phys.dp", (dsigma.shape[0],) + ps.shape,
                         np.result_type(dsigma, ps)))
        z_full = np.divide(geopotential, GRAVITY,
                           out=ws.empty_like("phys.z_full", geopotential))

        # ---- 1. radiation (cached between radiation steps) --------------
        if self.radiation_due(time):
            with profile_section("radiation"):
                day = (time / SECONDS_PER_DAY) % 365.0
                secs = time % SECONDS_PER_DAY
                if self.rad.subsolar_lon_deg is not None:
                    cosz = fixed_subsolar_cos(lats, lons,
                                              self.rad.subsolar_lon_deg)
                else:
                    cosz = solar_zenith_cos(lats, day, secs, lons)
                sw_heat, sw_sfc, sw_toa_refl = shortwave(
                    temp, q, pressure, dp, cosz, surface.albedo, self.rad)
                lw_heat, olr, lw_down, lw_net_sfc = longwave(
                    temp, q, dp, surface.t_sfc, self.rad)
                self._cached_sw = (sw_heat, sw_sfc, sw_toa_refl)
                self._cached_lw = (lw_heat, olr, lw_down, lw_net_sfc)
                self._last_radiation_time = time
        sw_heat, sw_sfc, sw_toa_refl = self._cached_sw
        lw_heat, olr, lw_down, lw_net_sfc = self._cached_lw

        # ---- 2. surface fluxes ------------------------------------------
        with profile_section("surface_fluxes"):
            if external_fluxes is None:
                from repro.atmosphere.physics.surface_flux import bulk_fluxes, ocean_fluxes
                land = bulk_fluxes(temp[-1], q[-1], u[-1], v[-1], ps,
                                   surface.t_sfc, surface.z0, surface.wetness)
                ocean = ocean_fluxes(temp[-1], q[-1], u[-1], v[-1], ps, surface.t_sfc)
                mask = surface.ocean_mask
                fluxes = {k: np.where(mask, ocean[k], land[k]) for k in land}
            else:
                fluxes = external_fluxes

        # ---- 3. boundary layer ------------------------------------------
        with profile_section("boundary_layer"):
            dtdt_pbl, dqdt_pbl, dudt_pbl, dvdt_pbl = boundary_layer_tendencies(
                temp, q, u, v, pressure, z_full, dt,
                ustar=fluxes["ustar"], shf=fluxes["shf"], lhf_evap=fluxes["evap"],
                taux=-fluxes["taux"], tauy=-fluxes["tauy"], params=self.pbl)

            # In-place accumulation on workspace buffers; the op order matches
            # the original expressions so default-precision runs are bitwise
            # identical.  Only the fresh total_* arrays below escape.
            t_work = np.add(dtdt_pbl, sw_heat,
                            out=ws.empty_like("phys.t_work", temp))
            t_work += lw_heat
            t_work *= dt
            t_work += temp
            q_work = np.multiply(dqdt_pbl, dt,
                                 out=ws.empty_like("phys.q_work", q))
            q_work += q
            np.maximum(q_work, 0.0, out=q_work)

        # ---- 4. deep convection ------------------------------------------
        with profile_section("deep_convection"):
            dtdt_zm, dqdt_zm, prec_zm = zhang_mcfarlane_deep(
                t_work, q_work, pressure, dp, dt, self.conv)
            t_work += np.multiply(dtdt_zm, dt,
                                  out=ws.empty_like("phys.incr", temp))
            q_work += np.multiply(dqdt_zm, dt,
                                  out=ws.empty_like("phys.incr", q))
            np.maximum(q_work, 0.0, out=q_work)

        # ---- 5. shallow convection ----------------------------------------
        with profile_section("shallow_convection"):
            dtdt_hk, dqdt_hk, prec_hk = hack_shallow(
                t_work, q_work, pressure, dp, geopotential, dt, self.conv)
            t_work += np.multiply(dtdt_hk, dt,
                                  out=ws.empty_like("phys.incr", temp))
            q_work += np.multiply(dqdt_hk, dt,
                                  out=ws.empty_like("phys.incr", q))
            np.maximum(q_work, 0.0, out=q_work)

        # ---- 6. stratiform -------------------------------------------------
        with profile_section("stratiform"):
            dtdt_st, dqdt_st, prec_st = stratiform_tendencies(
                t_work, q_work, pressure, dp, dt, self.strat)
            t_work += np.multiply(dtdt_st, dt,
                                  out=ws.empty_like("phys.incr", temp))
            q_work += np.multiply(dqdt_st, dt,
                                  out=ws.empty_like("phys.incr", q))
            np.maximum(q_work, 0.0, out=q_work)

        # Fresh (they escape into PhysicsTendencies); the division lands in
        # place on the difference — same ops, one temporary fewer each.
        total_dtdt = np.subtract(t_work, temp)
        np.divide(total_dtdt, dt, out=total_dtdt)
        total_dqdt = np.subtract(q_work, q)
        np.divide(total_dqdt, dt, out=total_dqdt)

        fluxes = dict(fluxes)
        fluxes.update({
            "sw_sfc": sw_sfc, "lw_down": lw_down, "lw_net_sfc": lw_net_sfc,
            "olr": olr, "sw_toa_reflected": sw_toa_refl,
        })
        return PhysicsTendencies(
            dtdt=total_dtdt, dqdt=total_dqdt, dudt=dudt_pbl, dvdt=dvdt_pbl,
            precip_conv=prec_zm + prec_hk, precip_strat=prec_st,
            fluxes=fluxes, heating_sw=sw_heat, heating_lw=lw_heat)
