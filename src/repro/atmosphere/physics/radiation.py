"""Radiative transfer: simplified CCM2-lineage solar + longwave schemes.

The paper's radiation is the CCM2 package (delta-Eddington solar of Briegleb
1992, longwave with the Kiehl-Briegleb CO2 15-micron band absorptance) plus
the CCM3 refinements.  We implement schemes with the same *structure* and
cost profile:

* **shortwave**: two-stream with a delta-Eddington-style cloud layer —
  insolation from orbital geometry, reflection from diagnosed cloud albedo
  stacked over surface albedo, column absorption split between water vapor
  (exponential-band absorptance) and ozone-layer heating aloft;
* **longwave**: broadband emissivity exchange — each layer has an emissivity
  from its water-vapor path plus a logarithmic CO2 band increment (the
  Kiehl & Briegleb 1991 scaling), fluxes assembled by the standard
  upward/downward recursion, heating rates from flux divergence;
* **clouds**: relative-humidity diagnosis, as CCM2 did.

Radiation is deliberately the most expensive physics component and is called
twice per simulated day (paper, Figure 2 discussion); the FOAM driver honors
that cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import (
    CP,
    GRAVITY,
    SOLAR_CONSTANT,
    STEFAN_BOLTZMANN,
)
from repro.util.thermo import saturation_mixing_ratio


@dataclass(frozen=True)
class RadiationParams:
    """Tunable coefficients of the simplified radiation package."""

    solar_constant: float = SOLAR_CONSTANT  # W m^-2 (scenario knob)
    # Fixed-sun insolation for tidally locked worlds: the subsolar point
    # stays pinned at this longitude (degrees, zero declination).  None
    # keeps the normal diurnal + seasonal cycle.
    subsolar_lon_deg: float | None = None
    co2_ppmv: float = 355.0          # early-1990s concentration
    cloud_rh_threshold: float = 0.80
    cloud_albedo_max: float = 0.55
    sw_vapor_absorptance: float = 0.11   # fraction absorbed per unit sqrt(path/ref)
    lw_vapor_path_scale: float = 2.5     # kg m^-2 vapor path for e-fold emissivity
    co2_band_emissivity: float = 0.185   # CO2 15um band at reference concentration
    co2_reference_ppmv: float = 355.0
    ozone_heating: float = 0.0           # K/day applied to the top layer (off by default)
    emissivity_surface: float = 0.98


def solar_zenith_cos(lats: np.ndarray, day_of_year: float, seconds_utc: float,
                     lons: np.ndarray) -> np.ndarray:
    """Cosine of solar zenith angle on a (nlat, nlon) grid (clipped at 0).

    Standard declination formula; adequate for climate forcing.
    """
    decl = np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + day_of_year) / 365.0)
    hour_angle = (2.0 * np.pi * seconds_utc / 86400.0 - np.pi) + lons[None, :]
    mu = (np.sin(lats[:, None]) * np.sin(decl)
          + np.cos(lats[:, None]) * np.cos(decl) * np.cos(hour_angle))
    return np.maximum(mu, 0.0)


def diurnal_mean_insolation(lats: np.ndarray, day_of_year: float,
                            solar_constant: float = SOLAR_CONSTANT
                            ) -> np.ndarray:
    """Daily-mean TOA insolation (W m^-2) per latitude — the cheap option."""
    decl = np.deg2rad(23.45) * np.sin(2.0 * np.pi * (284.0 + day_of_year) / 365.0)
    lat = lats
    cos_h0 = np.clip(-np.tan(lat) * np.tan(decl), -1.0, 1.0)
    h0 = np.arccos(cos_h0)
    q = (solar_constant / np.pi) * (
        h0 * np.sin(lat) * np.sin(decl) + np.cos(lat) * np.cos(decl) * np.sin(h0))
    return np.maximum(q, 0.0)


def fixed_subsolar_cos(lats: np.ndarray, lons: np.ndarray,
                       subsolar_lon_deg: float) -> np.ndarray:
    """Cosine of solar zenith angle for a sun fixed over one longitude.

    The tidally locked geometry: zero declination, hour angle replaced by
    the offset from the (permanent) subsolar meridian.  The dayside
    hemisphere sees perpetual insolation; the nightside none.
    """
    dlon = lons[None, :] - np.deg2rad(subsolar_lon_deg)
    mu = np.cos(lats[:, None]) * np.cos(dlon)
    return np.maximum(mu, 0.0)


def diagnose_cloud_fraction(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                            params: RadiationParams = RadiationParams()) -> np.ndarray:
    """RH-based cloud fraction per layer, the CCM2-style quadratic ramp."""
    qsat = saturation_mixing_ratio(temp, pressure)
    rh = np.clip(q / np.maximum(qsat, 1e-10), 0.0, 1.1)
    x = np.clip((rh - params.cloud_rh_threshold) / (1.0 - params.cloud_rh_threshold),
                0.0, 1.0)
    return x * x


def vapor_path(q: np.ndarray, dp: np.ndarray) -> np.ndarray:
    """Water vapor mass path per layer (kg m^-2): q dp / g."""
    return q * dp / GRAVITY


def shortwave(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
              dp: np.ndarray, cosz: np.ndarray, surface_albedo: np.ndarray,
              params: RadiationParams = RadiationParams()
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solar radiation: (heating K/s (L,...), absorbed at surface, TOA reflected).

    A single effective cloud deck (max-overlap of layer clouds) reflects
    delta-Eddington-style; vapor absorption follows a square-root path law
    as in broadband absorptance fits.
    """
    insolation = params.solar_constant * cosz                       # (...,)
    cloud = diagnose_cloud_fraction(temp, q, pressure, params)
    cloud_total = cloud.max(axis=0)                                  # max overlap
    cloud_albedo = params.cloud_albedo_max * cloud_total

    # Column vapor absorption (fraction of the direct beam).
    w = vapor_path(q, dp)
    wcol = w.sum(axis=0)
    slant = 1.0 / np.maximum(cosz, 0.05)
    absorb_frac = np.clip(
        params.sw_vapor_absorptance * np.sqrt(np.maximum(wcol * slant, 0.0) / 10.0),
        0.0, 0.35)

    # Radiative ledger: reflect at cloud deck, absorb in column, then the
    # surface reflects its share; one bounce is retained (higher-order
    # bounces are percent-level here).
    reflected_cloud = insolation * cloud_albedo
    after_cloud = insolation - reflected_cloud
    absorbed_atm = after_cloud * absorb_frac
    reaching_sfc = after_cloud - absorbed_atm
    absorbed_sfc = reaching_sfc * (1.0 - surface_albedo)
    reflected_sfc = reaching_sfc * surface_albedo
    toa_reflected = reflected_cloud + reflected_sfc * (1.0 - cloud_albedo)

    # Distribute atmospheric absorption by vapor mass per layer.
    wsafe = np.maximum(wcol, 1e-12)
    frac = w / wsafe
    heating = frac * absorbed_atm / (CP * dp / GRAVITY)
    if params.ozone_heating > 0:
        heating[0] += params.ozone_heating / 86400.0
    return heating, absorbed_sfc, toa_reflected


def layer_emissivity(q: np.ndarray, dp: np.ndarray,
                     params: RadiationParams = RadiationParams()) -> np.ndarray:
    """Broadband LW emissivity per layer: vapor exponential + CO2 log band.

    The CO2 term follows Kiehl & Briegleb (1991): band absorptance grows
    logarithmically with concentration, spread uniformly over layers by mass.
    """
    w = vapor_path(q, dp)
    eps_vapor = 1.0 - np.exp(-w / params.lw_vapor_path_scale)
    co2_scale = 1.0 + 0.114 * np.log(params.co2_ppmv / params.co2_reference_ppmv)
    eps_co2 = params.co2_band_emissivity * co2_scale * (dp / dp.sum(axis=0))
    return np.clip(eps_vapor + eps_co2, 0.0, 0.98)


def longwave(temp: np.ndarray, q: np.ndarray, dp: np.ndarray,
             t_surface: np.ndarray,
             params: RadiationParams = RadiationParams()
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Longwave fluxes by the emissivity-exchange recursion.

    Returns (heating K/s (L,...), OLR at TOA, downward LW at surface,
    net LW at surface, positive = surface loses energy).

    Levels are ordered top (index 0) to bottom.  Downward recursion: each
    layer emits eps sigma T^4 and transmits (1-eps) of what comes from above;
    upward likewise starting from the surface emission.
    """
    L = temp.shape[0]
    eps = layer_emissivity(q, dp, params)
    b = STEFAN_BOLTZMANN * temp**4

    flux_down = np.zeros_like(temp)    # at layer *tops*, downward positive
    running = np.zeros_like(temp[0])
    down_at_bottom = np.empty_like(temp)
    for l in range(L):
        flux_down[l] = running
        running = running * (1.0 - eps[l]) + eps[l] * b[l]
        down_at_bottom[l] = running
    lw_down_sfc = running

    sfc_emit = params.emissivity_surface * STEFAN_BOLTZMANN * t_surface**4 \
        + (1.0 - params.emissivity_surface) * lw_down_sfc
    flux_up_bottom = np.empty_like(temp)   # at layer *bottoms*, upward positive
    running = sfc_emit
    up_at_top = np.empty_like(temp)
    for l in range(L - 1, -1, -1):
        flux_up_bottom[l] = running
        running = running * (1.0 - eps[l]) + eps[l] * b[l]
        up_at_top[l] = running
    olr = running

    # Net upward flux at layer interfaces; heating from its divergence.
    # Interface k (k=0..L): above layer k. F_net(top of l) = up_at_top[l] - flux_down[l]
    net_top = up_at_top - flux_down
    net_bottom = flux_up_bottom - down_at_bottom
    heating = -(net_top - net_bottom) / (CP * dp / GRAVITY)

    net_sfc = sfc_emit - lw_down_sfc
    return heating, olr, lw_down_sfc, net_sfc
