"""Surface fluxes: stability-dependent bulk transfer (CCM2/CCM3 forms).

Two regimes, exactly as the paper describes the coupler doing:

* **land / ice**: CCM2 bulk formulas with a prescribed roughness length per
  surface type and Louis-type stability functions of the bulk Richardson
  number;
* **ocean**: the CCM3 update — the roughness length is *diagnosed* from wind
  speed and stability via a Charnock relation, iterated once, so the drag
  coefficient grows with wind speed ("a diagnosed surface roughness which is
  a function of wind speed and stability", paper section 4.1).

All functions are vectorized over arbitrary grids of surface points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import CP, GRAVITY, LATENT_HEAT_VAP, RD
from repro.util.thermo import saturation_mixing_ratio

KARMAN = 0.4
CHARNOCK = 0.018


@dataclass(frozen=True)
class SurfaceFluxParams:
    z_ref: float = 60.0          # m, height of the lowest model level (approx)
    min_wind: float = 1.0        # m/s gustiness floor
    z0_ocean_min: float = 1.5e-5  # m, smooth-flow limit
    z0_ice: float = 5.0e-4
    louis_b: float = 5.0         # stability function coefficients
    louis_c: float = 5.0
    louis_d: float = 5.0


def bulk_richardson(t_air: np.ndarray, t_sfc: np.ndarray, wind: np.ndarray,
                    z_ref: float) -> np.ndarray:
    """Bulk Richardson number of the surface layer (virtual-T effects folded in)."""
    tbar = 0.5 * (t_air + t_sfc)
    return GRAVITY * z_ref * (t_air - t_sfc) / (tbar * np.maximum(wind, 0.5) ** 2)


def stability_function(rib: np.ndarray, p: SurfaceFluxParams) -> np.ndarray:
    """Louis (1979) analytic stability factor multiplying the neutral coefficient."""
    unstable = 1.0 - p.louis_b * rib / (
        1.0 + p.louis_c * np.sqrt(np.maximum(-rib, 0.0)))
    stable = 1.0 / (1.0 + p.louis_d * np.maximum(rib, 0.0)) ** 2
    return np.where(rib < 0.0, unstable, stable)


def neutral_coefficient(z0: np.ndarray, z_ref: float) -> np.ndarray:
    """Neutral exchange coefficient C_N = (kappa / ln(z/z0))^2."""
    return (KARMAN / np.log(z_ref / np.maximum(z0, 1e-8))) ** 2


def ocean_roughness(wind: np.ndarray, rib: np.ndarray,
                    p: SurfaceFluxParams = SurfaceFluxParams()) -> np.ndarray:
    """CCM3-style wind-speed-dependent ocean roughness (Charnock relation).

    One fixed-point pass: z0 -> u* -> z0 = a u*^2 / g, floored at the
    smooth-flow limit; stability enters through the friction velocity.
    """
    w = np.maximum(wind, p.min_wind)
    z0 = np.full_like(w, 1.0e-4)
    for _ in range(2):
        cn = neutral_coefficient(z0, p.z_ref)
        f = np.maximum(stability_function(rib, p), 0.05)
        ustar = np.sqrt(cn * f) * w
        z0 = np.maximum(CHARNOCK * ustar**2 / GRAVITY, p.z0_ocean_min)
    return z0


def bulk_fluxes(t_air: np.ndarray, q_air: np.ndarray, u_air: np.ndarray,
                v_air: np.ndarray, p_sfc: np.ndarray, t_sfc: np.ndarray,
                z0: np.ndarray, wetness: np.ndarray,
                params: SurfaceFluxParams = SurfaceFluxParams()):
    """Bulk transfer fluxes at one surface.

    Parameters follow CCM conventions: ``wetness`` is the D_w factor of the
    paper's hydrology (1 over ocean/ice/snow, soil-moisture dependent over
    land) scaling the latent heat flux.

    Returns a dict with sensible ``shf`` (W/m^2, positive upward into the
    atmosphere), latent ``lhf`` (W/m^2), evaporation ``evap`` (kg m^-2 s^-1),
    stress on the surface ``taux, tauy`` (N/m^2), friction velocity
    ``ustar`` and the exchange coefficients.
    """
    wind = np.sqrt(u_air**2 + v_air**2)
    wind = np.maximum(wind, params.min_wind)
    rib = bulk_richardson(t_air, t_sfc, wind, params.z_ref)
    cn = neutral_coefficient(z0, params.z_ref)
    f = np.maximum(stability_function(rib, params), 0.02)
    cd = cn * f                                  # momentum
    ch = cd                                      # heat ~ momentum at this level
    rho = p_sfc / (RD * 0.5 * (t_air + t_sfc))

    shf = rho * CP * ch * wind * (t_sfc - t_air)
    qsat_sfc = saturation_mixing_ratio(t_sfc, p_sfc)
    evap = rho * ch * wind * wetness * np.maximum(qsat_sfc - q_air, -q_air)
    lhf = LATENT_HEAT_VAP * evap
    taux = rho * cd * wind * u_air
    tauy = rho * cd * wind * v_air
    ustar = np.sqrt(cd) * wind
    return {
        "shf": shf, "lhf": lhf, "evap": evap,
        "taux": taux, "tauy": tauy, "ustar": ustar,
        "cd": cd, "ch": ch, "rib": rib,
    }


def ocean_fluxes(t_air, q_air, u_air, v_air, p_sfc, sst,
                 params: SurfaceFluxParams = SurfaceFluxParams()):
    """Air-sea fluxes with the CCM3 diagnosed roughness (wetness = 1)."""
    wind = np.sqrt(u_air**2 + v_air**2)
    rib = bulk_richardson(t_air, sst, np.maximum(wind, params.min_wind), params.z_ref)
    z0 = ocean_roughness(wind, rib, params)
    return bulk_fluxes(t_air, q_air, u_air, v_air, p_sfc, sst, z0,
                       np.ones_like(sst), params)
