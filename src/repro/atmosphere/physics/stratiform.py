"""Stratiform (large-scale) condensation with precipitation evaporation.

CCM-style saturation adjustment: wherever the grid box is supersaturated,
condense to exactly saturated (iterating because condensational heating
raises the saturation mixing ratio), rain the condensate out, and — the CCM3
addition the paper explicitly adopts — evaporate falling precipitation into
subsaturated layers below cloud.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import CP, GRAVITY, LATENT_HEAT_VAP, RV
from repro.util.thermo import saturation_mixing_ratio


@dataclass(frozen=True)
class StratiformParams:
    iterations: int = 3                 # saturation-adjustment Newton sweeps
    evap_efficiency: float = 2.0e-5     # s^-1 (kg m^-2 s^-1)^-1/2-ish bulk rate
    evap_rh_cap: float = 0.95           # stop evaporating once RH reaches this


def saturation_adjustment(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                          params: StratiformParams = StratiformParams()
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Condense supersaturation; returns (T_new, q_new, condensate kg/kg).

    Newton iteration on  q - qsat(T + L dq / cp) = 0  per layer.
    """
    t = temp.copy()
    qv = q.copy()
    cond_total = np.zeros_like(q)
    for _ in range(params.iterations):
        qsat = saturation_mixing_ratio(t, pressure)
        # dqsat/dT from Clausius-Clapeyron: qsat L / (Rv T^2)
        dqsat_dt = qsat * LATENT_HEAT_VAP / (RV * t * t)
        excess = qv - qsat
        # Newton step with latent-heat feedback in the denominator.
        dq = np.where(excess > 0.0,
                      excess / (1.0 + LATENT_HEAT_VAP / CP * dqsat_dt), 0.0)
        qv -= dq
        t += LATENT_HEAT_VAP * dq / CP
        cond_total += dq
    return t, qv, cond_total


def stratiform_tendencies(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                          dp: np.ndarray, dt: float,
                          params: StratiformParams = StratiformParams()
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full stratiform step: (dT/dt, dq/dt, surface precip rate kg m^-2 s^-1).

    Condensate forms at each level, falls, and partially evaporates into
    subsaturated layers below (cooling and moistening them) before what
    survives reaches the surface as precipitation.
    """
    t_adj, q_adj, cond = saturation_adjustment(temp, q, pressure, params)
    mass = dp / GRAVITY
    L = temp.shape[0]

    # March the precipitation flux downward, evaporating en route.
    flux = np.zeros_like(temp[0])                 # kg m^-2 s^-1
    t_new = t_adj.copy()
    q_new = q_adj.copy()
    for l in range(L):
        flux = flux + cond[l] * mass[l] / dt
        qsat = saturation_mixing_ratio(t_new[l], pressure[l])
        rh = q_new[l] / np.maximum(qsat, 1e-12)
        deficit = np.maximum(params.evap_rh_cap - rh, 0.0)
        # Bulk evaporation: proportional to flux and to subsaturation.
        evap_rate = params.evap_efficiency * deficit * np.sqrt(
            np.maximum(flux, 0.0) * 3.6e5)       # normalized to mm/hr scale
        evap = np.minimum(evap_rate * dt * qsat, flux * dt / np.maximum(mass[l], 1e-12))
        evap = np.minimum(evap, deficit * qsat)   # don't overshoot the cap
        q_new[l] += evap
        t_new[l] -= LATENT_HEAT_VAP * evap / CP
        flux = np.maximum(flux - evap * mass[l] / dt, 0.0)

    dtdt = (t_new - temp) / dt
    dqdt = (q_new - q) / dt
    return dtdt, dqdt, flux
