"""CCM2/CCM3-lineage column physics for the FOAM atmosphere."""

from repro.atmosphere.physics.boundary_layer import (
    BoundaryLayerParams,
    boundary_layer_tendencies,
    diagnose_pbl_height,
    solve_tridiagonal,
)
from repro.atmosphere.physics.convection import (
    ConvectionParams,
    compute_cape,
    hack_shallow,
    zhang_mcfarlane_deep,
)
from repro.atmosphere.physics.driver import PhysicsSuite, PhysicsTendencies, SurfaceState
from repro.atmosphere.physics.radiation import (
    RadiationParams,
    diagnose_cloud_fraction,
    diurnal_mean_insolation,
    longwave,
    shortwave,
    solar_zenith_cos,
)
from repro.atmosphere.physics.stratiform import (
    StratiformParams,
    saturation_adjustment,
    stratiform_tendencies,
)
from repro.atmosphere.physics.surface_flux import (
    SurfaceFluxParams,
    bulk_fluxes,
    ocean_fluxes,
    ocean_roughness,
)

__all__ = [
    "RadiationParams", "diagnose_cloud_fraction", "diurnal_mean_insolation",
    "longwave", "shortwave", "solar_zenith_cos",
    "ConvectionParams", "compute_cape", "hack_shallow", "zhang_mcfarlane_deep",
    "StratiformParams", "saturation_adjustment", "stratiform_tendencies",
    "BoundaryLayerParams", "boundary_layer_tendencies", "diagnose_pbl_height",
    "solve_tridiagonal",
    "SurfaceFluxParams", "bulk_fluxes", "ocean_fluxes", "ocean_roughness",
    "PhysicsSuite", "PhysicsTendencies", "SurfaceState",
]
