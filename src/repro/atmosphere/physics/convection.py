"""Moist convection: Hack (1994) shallow scheme + Zhang-McFarlane deep scheme.

CCM2 handled all moist convection with the Hack mass-flux scheme; CCM3 (and
hence FOAM — paper, "The FOAM Atmosphere Model") pairs it with the
Zhang & McFarlane (1995) deep convection parameterization.  We implement both
with the same division of labor:

* :func:`hack_shallow` — a local three-level mass-flux adjustment: wherever a
  layer is buoyantly unstable with respect to the layer above (moist static
  energy decreasing with height beyond a threshold), a convective mass flux
  mixes the triplet and rains out condensate;
* :func:`zhang_mcfarlane_deep` — a CAPE-consuming bulk plume: when the
  column CAPE exceeds a threshold, heating/drying tendencies relax CAPE back
  toward it over a fixed adjustment time scale, with precipitation closing
  the moisture budget.

Both operate on (L, ...) arrays, vectorized over all columns at once, and
return temperature/humidity tendencies plus surface precipitation rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import CP, GRAVITY, LATENT_HEAT_VAP, RD
from repro.util.thermo import saturation_mixing_ratio


@dataclass(frozen=True)
class ConvectionParams:
    hack_mse_threshold: float = 200.0       # J/kg instability deadband
    hack_adjustment_time: float = 3600.0    # s, shallow overturning time scale
    zm_cape_threshold: float = 70.0         # J/kg, ZM trigger
    zm_adjustment_time: float = 7200.0      # s, the ZM tau (2 h in CCM3)
    zm_max_fraction: float = 0.25           # max fraction of CAPE removed per call
    parcel_launch_level: int = -1           # lowest model level


def moist_static_energy_profile(temp: np.ndarray, q: np.ndarray,
                                geopotential: np.ndarray) -> np.ndarray:
    """h = cp T + Phi + L q per layer (geopotential already includes g z)."""
    return CP * temp + geopotential + LATENT_HEAT_VAP * q


def hack_shallow(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                 dp: np.ndarray, geopotential: np.ndarray, dt: float,
                 params: ConvectionParams = ConvectionParams()
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Hack-style shallow convective adjustment.

    Returns (dT/dt, dq/dt, precipitation rate kg m^-2 s^-1).  Works pairwise
    from the surface upward: if the saturated moist static energy of a layer
    exceeds the saturation MSE of the layer above (conditional instability),
    exchange heat and moisture at a rate that removes the instability over
    ``hack_adjustment_time``, condensing any supersaturation produced.
    """
    L = temp.shape[0]
    h = moist_static_energy_profile(temp, q, geopotential)
    qsat = saturation_mixing_ratio(temp, pressure)
    hsat = CP * temp + geopotential + LATENT_HEAT_VAP * qsat

    dtdt = np.zeros_like(temp)
    dqdt = np.zeros_like(q)
    precip = np.zeros_like(temp[0])

    # Pairwise bottom-up sweep (l below, l-1 above), vectorized over columns.
    for l in range(L - 1, 0, -1):
        below_h = h[l]
        above_hsat = hsat[l - 1]
        instab = below_h - above_hsat - params.hack_mse_threshold
        active = instab > 0.0
        if not np.any(active):
            continue
        # Energy transferred upward this step (J/kg of the lower layer),
        # limited so the instability is at most neutralized.
        rate = np.where(active, instab / params.hack_adjustment_time, 0.0)
        de = rate * dt                       # J/kg moved from lower layer
        de = np.minimum(de, np.maximum(instab, 0.0) * 0.5)

        # Split the transferred MSE between sensible and latent using the
        # lower layer's moisture availability.
        latent_avail = LATENT_HEAT_VAP * np.maximum(q[l], 0.0)
        lat_frac = np.clip(latent_avail / np.maximum(below_h, 1.0), 0.0, 0.5)
        d_sensible = de * (1.0 - lat_frac)
        d_latent = de * lat_frac

        mass_l = dp[l] / GRAVITY
        mass_u = dp[l - 1] / GRAVITY

        dtl = -d_sensible / CP
        dtu = d_sensible / CP * (mass_l / mass_u)
        dql = -d_latent / LATENT_HEAT_VAP
        dqu_all = d_latent / LATENT_HEAT_VAP * (mass_l / mass_u)

        # Moisture arriving above condenses if it exceeds saturation there:
        # rains out and heats the upper layer (the mass-flux detrainment).
        q_up_new = q[l - 1] + dqu_all
        qsat_u = qsat[l - 1]
        excess = np.maximum(q_up_new - qsat_u, 0.0)
        dqu = dqu_all - excess
        dtu = dtu + LATENT_HEAT_VAP * excess / CP
        precip += excess * mass_u / np.maximum(dt, 1e-12)

        dtdt[l] += dtl / dt
        dtdt[l - 1] += dtu / dt
        dqdt[l] += dql / dt
        dqdt[l - 1] += dqu / dt
        # Keep working arrays current for the next pair up.
        temp = temp.copy()
        q = q.copy()
        temp[l] += dtl
        temp[l - 1] += dtu
        q[l] += dql
        q[l - 1] += dqu
        h = moist_static_energy_profile(temp, q, geopotential)
        qsat = saturation_mixing_ratio(temp, pressure)
        hsat = CP * temp + geopotential + LATENT_HEAT_VAP * qsat

    return dtdt, dqdt, np.maximum(precip, 0.0)


def compute_cape(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                 launch: int = -1) -> np.ndarray:
    """Pseudo-adiabatic CAPE (J/kg) of a parcel lifted from ``launch`` level.

    Vectorized over columns; uses a simple undilute parcel with latent heat
    release above the lifting condensation level.  Accurate enough to drive
    a relaxation closure.
    """
    L = temp.shape[0]
    t_parcel = temp[launch].copy()
    q_parcel = q[launch].copy()
    p0 = pressure[launch]
    cape = np.zeros_like(t_parcel)
    kappa = RD / CP

    t_lev = t_parcel
    start = (L + launch if launch < 0 else launch) - 1
    for l in range(start, -1, -1):
        p = pressure[l]
        # Dry-adiabatic lift to this level...
        t_lift = t_lev * (p / p0) ** kappa
        # ...then condense supersaturation pseudo-adiabatically.
        qs = saturation_mixing_ratio(t_lift, p)
        cond = np.maximum(q_parcel - qs, 0.0)
        t_lift = t_lift + LATENT_HEAT_VAP * cond / CP
        q_parcel = q_parcel - cond
        buoy = RD * (t_lift - temp[l]) * np.log(p0 / p)
        cape += np.maximum(buoy, 0.0)
        t_lev, p0 = t_lift, p
    return cape


def zhang_mcfarlane_deep(temp: np.ndarray, q: np.ndarray, pressure: np.ndarray,
                         dp: np.ndarray, dt: float,
                         params: ConvectionParams = ConvectionParams()
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ZM deep convection: CAPE relaxation with a bulk heating profile.

    Returns (dT/dt, dq/dt, precipitation rate).  Where CAPE exceeds the
    trigger, the column is heated aloft / dried below with a fixed vertical
    shape whose amplitude removes (dt / tau) of the excess CAPE; the moisture
    sink is converted to precipitation.
    """
    L = temp.shape[0]
    cape = compute_cape(temp, q, pressure, params.parcel_launch_level)
    excess = np.maximum(cape - params.zm_cape_threshold, 0.0)
    active = excess > 0.0
    dtdt = np.zeros_like(temp)
    dqdt = np.zeros_like(q)
    precip = np.zeros_like(temp[0])
    if not np.any(active):
        return dtdt, dqdt, precip

    frac = np.minimum(dt / params.zm_adjustment_time, params.zm_max_fraction)
    # Energy to redistribute per unit mass of column (J/kg):
    de = excess * frac

    # Heating shape: half-sine peaked in the mid troposphere (sigma ~ 0.4),
    # the canonical deep-convective profile; drying shape peaked at low levels.
    sigma = pressure / pressure[-1]
    heat_shape = np.sin(np.pi * np.clip((1.0 - sigma) / 0.85, 0.0, 1.0))
    dry_shape = np.clip((sigma - 0.6) / 0.4, 0.0, 1.0)

    # Normalize shapes by column mass so the budget closes.
    mass = dp / GRAVITY
    heat_norm = np.sum(heat_shape * mass, axis=0)
    dry_norm = np.sum(dry_shape * mass, axis=0)
    heat_shape = np.where(heat_norm > 0, heat_shape / np.maximum(heat_norm, 1e-12), 0.0)
    dry_shape = np.where(dry_norm > 0, dry_shape / np.maximum(dry_norm, 1e-12), 0.0)

    colmass = mass.sum(axis=0)
    e_col = de * colmass * active                # J/m^2 redistributed
    # Latent closure: heating comes from condensing moisture; drying supplies it.
    dq_col = e_col / LATENT_HEAT_VAP             # kg/m^2 condensed
    # Cap drying at 50% of available column moisture this step.
    q_col = np.sum(np.maximum(q, 0.0) * mass, axis=0)
    dq_col = np.minimum(dq_col, 0.5 * q_col)
    e_col = dq_col * LATENT_HEAT_VAP

    dtdt += heat_shape * e_col / (CP * dt)
    dqdt += -dry_shape * dq_col / dt
    # Don't let drying drive q negative anywhere.
    floor = -np.maximum(q, 0.0) / dt
    dqdt = np.maximum(dqdt, floor)
    precip = np.maximum(-np.sum(dqdt * mass, axis=0), 0.0)
    return dtdt, dqdt, precip
