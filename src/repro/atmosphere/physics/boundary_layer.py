"""Planetary boundary layer: Holtslag-style nonlocal K-profile diffusion.

CCM2's boundary layer was modified "as described by Vogelzang & Holtslag"
(paper, atmosphere section): the PBL height is diagnosed from a bulk
Richardson number and eddy diffusivities follow a cubic K-profile within it.
Vertical diffusion is solved implicitly (tridiagonal per column, vectorized
across all columns) so the scheme is stable at FOAM's 30-minute step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import get_workspace
from repro.util.constants import CP, GRAVITY, RD
from repro.util.thermo import potential_temperature


@dataclass(frozen=True)
class BoundaryLayerParams:
    ric: float = 0.25             # critical bulk Richardson number
    k_max: float = 100.0          # m^2/s cap on eddy diffusivity
    k_background: float = 0.1     # m^2/s free-troposphere background
    min_pbl_height: float = 100.0  # m
    max_pbl_height: float = 3000.0


def solve_tridiagonal(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                      rhs: np.ndarray) -> np.ndarray:
    """Thomas algorithm along axis 0, vectorized over trailing axes.

    ``lower[0]`` and ``upper[-1]`` are ignored.  All inputs share shape
    (L, ...); returns the solution with the same shape.
    """
    L = diag.shape[0]
    ws = get_workspace()
    cp = ws.empty_like("tridiag.cp", diag)
    dp_ = ws.empty_like("tridiag.dp", rhs)
    cp[0] = upper[0] / diag[0]
    dp_[0] = rhs[0] / diag[0]
    for i in range(1, L):
        denom = diag[i] - lower[i] * cp[i - 1]
        cp[i] = upper[i] / denom if i < L - 1 else 0.0
        dp_[i] = (rhs[i] - lower[i] * dp_[i - 1]) / denom
    x = np.empty_like(rhs)
    x[-1] = dp_[-1]
    for i in range(L - 2, -1, -1):
        x[i] = dp_[i] - cp[i] * x[i + 1]
    return x


def diagnose_pbl_height(theta: np.ndarray, u: np.ndarray, v: np.ndarray,
                        z: np.ndarray,
                        params: BoundaryLayerParams = BoundaryLayerParams()
                        ) -> np.ndarray:
    """PBL top height (m) where the bulk Richardson number first exceeds Ri_c.

    Levels ordered top->bottom; scans upward from the surface layer.
    """
    L = theta.shape[0]
    sfc = L - 1
    th0 = theta[sfc]
    z0 = z[sfc]
    h = np.full_like(th0, params.min_pbl_height)
    found = np.zeros(th0.shape, dtype=bool)
    for l in range(sfc - 1, -1, -1):
        dz = np.maximum(z[l] - z0, 1.0)
        du2 = (u[l] - u[sfc]) ** 2 + (v[l] - v[sfc]) ** 2 + 0.1
        ri = GRAVITY / th0 * (theta[l] - th0) * dz / du2
        newly = (~found) & (ri > params.ric)
        h = np.where(newly, z[l] - z0, h)
        found |= newly
    h = np.where(found, h, params.max_pbl_height)
    return np.clip(h, params.min_pbl_height, params.max_pbl_height)


def kprofile_diffusivity(z_above_sfc: np.ndarray, pbl_height: np.ndarray,
                         ustar: np.ndarray,
                         params: BoundaryLayerParams = BoundaryLayerParams()
                         ) -> np.ndarray:
    """Cubic K-profile: K = k u* z (1 - z/h)^2 inside the PBL, background above."""
    karman = 0.4
    zr = np.clip(z_above_sfc / np.maximum(pbl_height, 1.0), 0.0, 1.0)
    k = karman * ustar * z_above_sfc * (1.0 - zr) ** 2
    k = np.where(z_above_sfc < pbl_height, k, 0.0)
    return np.clip(k + params.k_background, params.k_background, params.k_max)


def diffuse_column(field: np.ndarray, k_half: np.ndarray, z_full: np.ndarray,
                   dt: float, surface_flux: np.ndarray | None = None,
                   rho: np.ndarray | None = None) -> np.ndarray:
    """Implicit vertical diffusion of ``field`` (L, ...) over one step.

    ``k_half`` (L-1, ...) are diffusivities at interior interfaces (between
    level l and l+1).  ``surface_flux`` (positive into the atmosphere, units
    of field * kg m^-2 s^-1) enters the lowest layer; ``rho`` (L, ...) layer
    densities convert it to a tendency.  Zero-flux at the top.
    """
    L = field.shape[0]
    dz_half = z_full[:-1] - z_full[1:]              # >0: spacing between levels
    dz_half = np.maximum(dz_half, 1.0)
    # Layer thickness around each full level.
    dz_full = np.empty_like(field)
    dz_full[0] = dz_half[0]
    dz_full[-1] = dz_half[-1]
    if L > 2:
        dz_full[1:-1] = 0.5 * (dz_half[:-1] + dz_half[1:])

    a = np.zeros_like(field)   # lower diagonal (couples to l-1, i.e. above)
    c = np.zeros_like(field)   # upper diagonal (couples to l+1, i.e. below)
    alpha = dt / dz_full
    a[1:] = -alpha[1:] * k_half / dz_half
    c[:-1] = -alpha[:-1] * k_half / dz_half
    b = 1.0 - a - c
    rhs = field.copy()
    if surface_flux is not None:
        if rho is None:
            raise ValueError("rho required when surface_flux is given")
        rhs[-1] = rhs[-1] + dt * surface_flux / (rho[-1] * dz_full[-1])
    return solve_tridiagonal(a, b, c, rhs)


def boundary_layer_tendencies(temp: np.ndarray, q: np.ndarray, u: np.ndarray,
                              v: np.ndarray, pressure: np.ndarray,
                              z_full: np.ndarray, dt: float,
                              ustar: np.ndarray,
                              shf: np.ndarray, lhf_evap: np.ndarray,
                              taux: np.ndarray, tauy: np.ndarray,
                              params: BoundaryLayerParams = BoundaryLayerParams()):
    """Full PBL step: diffuse theta, q, u, v; inject surface fluxes.

    ``shf`` is the sensible heat flux (W m^-2, positive into the atmosphere),
    ``lhf_evap`` the surface evaporation (kg m^-2 s^-1), ``taux/tauy`` the
    surface stress *on the atmosphere* (N m^-2, typically negative of the
    drag on the surface).  Returns (dT/dt, dq/dt, du/dt, dv/dt).
    """
    theta = potential_temperature(temp, pressure)
    rho = pressure / (RD * temp)
    h = diagnose_pbl_height(theta, u, v, z_full, params)
    z_above = z_full - z_full[-1]
    z_half = 0.5 * (z_above[:-1] + z_above[1:])
    k_half = kprofile_diffusivity(z_half, h[None], ustar[None], params)

    theta_new = diffuse_column(theta, k_half, z_full, dt,
                               surface_flux=shf / CP, rho=rho)
    q_new = diffuse_column(q, k_half, z_full, dt,
                           surface_flux=lhf_evap, rho=rho)
    u_new = diffuse_column(u, k_half, z_full, dt, surface_flux=taux, rho=rho)
    v_new = diffuse_column(v, k_half, z_full, dt, surface_flux=tauy, rho=rho)

    t_new = theta_new * (temp / theta)   # convert back with the same Exner factor
    return ((t_new - temp) / dt, (q_new - q) / dt,
            (u_new - u) / dt, (v_new - v) / dt)
