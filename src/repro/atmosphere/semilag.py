"""Semi-Lagrangian transport for moisture (the PCCM2 advection upgrade).

The paper notes PCCM2's modifications "involved the semi-Lagrangian
representation of advection".  FOAM transports specific humidity this way:
trace each grid point's trajectory upstream over the time step, interpolate
the field at the departure point, and assign it at the arrival point.  The
scheme is unconditionally stable (no CFL limit from the polar convergence of
meridians) and shape-preserving here because we use monotone bilinear
interpolation and clip negatives.

Departure points are found with one iteration of the implicit midpoint rule
(adequate at the long time steps and coarse resolution FOAM targets).
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere.spectral import SpectralTransform
from repro.backend import get_workspace


def _bilinear_sphere(field: np.ndarray, lats: np.ndarray, lons: np.ndarray,
                     lat_d: np.ndarray, lon_d: np.ndarray) -> np.ndarray:
    """Bilinear interpolation on a (..., nlat, nlon) lat-lon grid.

    Longitude wraps periodically; latitude is clamped to the Gaussian grid's
    span (trajectories crossing the pole are rare at climate time steps and
    are handled by the clamp).  Leading (ensemble) axes on ``field`` must
    match leading axes on the departure coordinates; each member is then
    interpolated from its own field.
    """
    nlat, nlon = field.shape[-2:]
    dlon = 2.0 * np.pi / nlon

    # Non-finite departure points (a blown-up wind field) fall back to zero;
    # the caller's state is already garbage at that point and will be caught
    # by its own finiteness checks.
    lon_d = np.nan_to_num(lon_d, nan=0.0, posinf=0.0, neginf=0.0)
    lat_d = np.nan_to_num(lat_d, nan=0.0, posinf=0.0, neginf=0.0)
    lon_d = np.mod(lon_d, 2.0 * np.pi)
    x = lon_d / dlon
    i0 = np.floor(x).astype(int) % nlon
    i1 = (i0 + 1) % nlon
    wx = x - np.floor(x)

    # Latitude: Gaussian nodes are not uniform; use searchsorted.
    j1 = np.searchsorted(lats, lat_d)
    j1 = np.clip(j1, 1, nlat - 1)
    j0 = j1 - 1
    denom = lats[j1] - lats[j0]
    wy = np.clip((lat_d - lats[j0]) / denom, 0.0, 1.0)

    # Flattened-index gathers: np.take on a 1-D view moves the same elements
    # as the 2-D fancy index (bitwise-identical) at a fraction of the cost.
    j0n = j0 * nlon
    j1n = j1 * nlon
    idx00 = j0n + i0
    idx01 = j0n + i1
    idx10 = j1n + i0
    idx11 = j1n + i1
    if field.ndim > 2:
        # Batched members gather from their own slab; the member offset on
        # the flat index keeps the same elementwise arithmetic as the 2-D
        # path.
        base = (np.arange(field.shape[0]) * (nlat * nlon)).reshape(
            (-1,) + (1,) * (field.ndim - 1))
        idx00 = idx00 + base
        idx01 = idx01 + base
        idx10 = idx10 + base
        idx11 = idx11 + base
    # Gather the four corners into preallocated buffers, then combine them
    # into float64 work buffers: the same pairwise operations on the same
    # operands as ``(1-wy)*((1-wx)*f00 + wx*f01) + wy*((1-wx)*f10 + wx*f11)``
    # (a float64 ``out=`` widens float32 gathers exactly, matching the
    # expression form's dtype promotion).
    ws = get_workspace()
    rt = np.result_type(field.dtype, np.float64)
    shape = idx00.shape
    flat = field.reshape(-1)
    f00 = np.take(flat, idx00, out=ws.empty("semilag.f00", shape, flat.dtype))
    f01 = np.take(flat, idx01, out=ws.empty("semilag.f01", shape, flat.dtype))
    f10 = np.take(flat, idx10, out=ws.empty("semilag.f10", shape, flat.dtype))
    f11 = np.take(flat, idx11, out=ws.empty("semilag.f11", shape, flat.dtype))
    wx1 = np.subtract(1.0, wx, out=ws.empty("semilag.wx1", wx.shape, rt))
    wy1 = np.subtract(1.0, wy, out=ws.empty("semilag.wy1", wy.shape, rt))
    t00 = np.multiply(f00, wx1, out=ws.empty("semilag.t00", shape, rt))
    t01 = np.multiply(f01, wx, out=ws.empty("semilag.t01", shape, rt))
    t00 += t01                          # (1-wx)*f00 + wx*f01
    t10 = np.multiply(f10, wx1, out=ws.empty("semilag.t10", shape, rt))
    t11 = np.multiply(f11, wx, out=ws.empty("semilag.t11", shape, rt))
    t10 += t11                          # (1-wx)*f10 + wx*f11
    np.multiply(t00, wy1, out=t00)
    np.multiply(t10, wy, out=t10)
    return t00 + t10                    # fresh array: outlives the workspace


def departure_points(tr: SpectralTransform, u: np.ndarray, v: np.ndarray,
                     dt: float) -> tuple[np.ndarray, np.ndarray]:
    """Upstream departure (lat, lon) for every grid point, one midpoint pass."""
    ws = get_workspace()
    shape = u.shape                     # (nlat, nlon), batched: (E, nlat, nlon)
    lat2 = ws.empty("semilag.lat2", shape, np.float64)
    lat2[:] = tr.lats[:, None]
    lon2 = ws.empty("semilag.lon2", shape, np.float64)
    lon2[:] = tr.lons[None, :]
    a = tr.radius
    coslat = np.cos(lat2, out=ws.empty("semilag.coslat", shape, np.float64))
    coslat = np.maximum(coslat, 0.05, out=coslat)  # guard the polar singularity
    acoslat = np.multiply(coslat, a, out=coslat)

    # First guess straight upstream, then one midpoint refinement.
    fdt = np.result_type(u, np.float64)
    t_lat = np.multiply(v, 0.5 * dt, out=ws.empty("semilag.tlat", shape, fdt))
    t_lat /= a
    lat_mid = np.subtract(lat2, t_lat, out=t_lat)
    t_lon = np.multiply(u, 0.5 * dt, out=ws.empty("semilag.tlon", shape, fdt))
    t_lon /= acoslat
    lon_mid = np.subtract(lon2, t_lon, out=t_lon)
    u_mid = _bilinear_sphere(u, tr.lats, tr.lons, lat_mid, lon_mid)
    v_mid = _bilinear_sphere(v, tr.lats, tr.lons, lat_mid, lon_mid)
    v_mid *= dt
    v_mid /= a
    lat_d = np.subtract(lat2, v_mid, out=v_mid)
    u_mid *= dt
    u_mid /= acoslat
    lon_d = np.subtract(lon2, u_mid, out=u_mid)
    lat_d = np.clip(lat_d, tr.lats[0], tr.lats[-1], out=lat_d)
    return lat_d, lon_d


def advect_semilagrangian(tr: SpectralTransform, u: np.ndarray, v: np.ndarray,
                          q: np.ndarray, dt: float) -> np.ndarray:
    """Advect each level of ``q`` (L, nlat, nlon) with winds (u, v) over dt.

    Moisture is clipped at zero after interpolation (the simple positivity
    fixer low-resolution spectral-era models used).
    """
    if q.shape != u.shape:
        raise ValueError(f"q shape {q.shape} must match wind shape {u.shape}")
    # `out` never escapes: the clipped copy below is what the caller keeps.
    out = get_workspace().empty_like("semilag.out", q)
    for l in range(q.shape[0]):
        lat_d, lon_d = departure_points(tr, u[l], v[l], dt)
        out[l] = _bilinear_sphere(q[l], tr.lats, tr.lons, lat_d, lon_d)
    return np.maximum(out, 0.0)
