"""Semi-implicit spectral primitive-equation dynamical core (PCCM2 lineage).

Solves the dry adiabatic primitive equations in vorticity-divergence form on
sigma levels, the formulation of Bourke (1974) / Hoskins & Simmons (1975)
that the NCAR CCM series (and hence FOAM's atmosphere) descends from:

* prognostic spectral fields: relative vorticity ``zeta``, divergence ``div``,
  temperature deviation ``T' = T - T_ref``, and log surface pressure ``lnps``;
* grid-space evaluation of all quadratic nonlinear terms (the "transform"
  method), including sigma-coordinate vertical advection and the
  energy-conversion term;
* semi-implicit leapfrog: the linear gravity-wave coupling between ``div``,
  ``T'`` and ``lnps`` is averaged across the leapfrog interval and solved by
  a precomputed per-total-wavenumber (L x L) matrix inverse, which is what
  lets FOAM take 30-minute steps at R15;
* Robert-Asselin time filter and CCM-style del^4 spectral hyperdiffusion;
* grid-space specific humidity ``q`` advected semi-Lagrangially
  (see :mod:`repro.atmosphere.semilag`), as the paper notes PCCM2 does.

Array conventions: grid fields are (nlev, nlat, nlon); spectral fields are
(nlev, nm, nk) complex (lnps: (nm, nk)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atmosphere.semilag import advect_semilagrangian
from repro.atmosphere.spectral import SpectralTransform
from repro.atmosphere.vertical import VerticalGrid
from repro.backend import get_workspace
from repro.backend.kernels import fused_enabled, robert_filter
from repro.perf.profiler import profile_section, profiled
from repro.util.constants import CP, KAPPA, OMEGA, P0, RD


@dataclass
class AtmosphereState:
    """Prognostic state of the dynamical core (spectral + grid moisture)."""

    vort: np.ndarray    # (L, nm, nk) complex — relative vorticity
    div: np.ndarray     # (L, nm, nk) complex — divergence
    temp: np.ndarray    # (L, nm, nk) complex — T' = T - T_ref
    lnps: np.ndarray    # (nm, nk) complex — ln(ps / P0)
    q: np.ndarray       # (L, nlat, nlon) — specific humidity, grid space
    time: float = 0.0   # seconds since initialization

    def copy(self) -> "AtmosphereState":
        return AtmosphereState(self.vort.copy(), self.div.copy(), self.temp.copy(),
                               self.lnps.copy(), self.q.copy(), self.time)


@dataclass
class GridDiagnostics:
    """Grid-space fields diagnosed from a spectral state (one synthesis pass)."""

    u: np.ndarray           # (L, nlat, nlon) zonal wind
    v: np.ndarray           # meridional wind
    temp: np.ndarray        # full temperature T = T_ref + T'
    vort: np.ndarray        # relative vorticity
    div: np.ndarray         # divergence
    lnps: np.ndarray        # (nlat, nlon) ln(ps/P0)
    ps: np.ndarray          # surface pressure, Pa
    pressure: np.ndarray    # (L, nlat, nlon) full-level pressure
    geopotential: np.ndarray  # (L, nlat, nlon), above the surface
    omega_over_p: np.ndarray


class SpectralDynamicalCore:
    """The atmosphere dynamics engine: owns the transform, vertical grid, stepping."""

    def __init__(self, transform: SpectralTransform, vgrid: VerticalGrid,
                 dt: float = 1800.0, robert: float = 0.04,
                 diffusion_coefficient: float | None = None,
                 semi_implicit: bool = True,
                 rotation_factor: float = 1.0):
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.tr = transform
        self.vg = vgrid
        self.dt = float(dt)
        # Scalar, or a per-member array broadcastable against every state
        # field (e.g. (nens, 1, 1) from the ensemble driver).  0-d arrays
        # collapse to python floats: a 0-d float64 array would silently
        # upcast float32/complex64 state through the Robert filter.
        self.robert = (robert if isinstance(robert, np.ndarray) and robert.ndim
                       else float(robert))
        self.semi_implicit = bool(semi_implicit)
        # CCM2 R15 recommended del^4 coefficient scales with resolution
        # (Williamson et al. 1995); default tuned so the smallest retained
        # scale damps with an e-folding of ~3 hours.
        if diffusion_coefficient is None:
            nmax = transform.trunc.mmax + transform.trunc.nk - 1
            k4_scale = (nmax * (nmax + 1) / transform.radius**2) ** 2
            diffusion_coefficient = 1.0 / (3.0 * 3600.0 * k4_scale)
        self.k4 = float(diffusion_coefficient)

        # Coriolis parameter as a grid field; f also enters the vorticity
        # equation through the nonlinear terms only (f itself is Y_1^0).
        # ``rotation_factor`` scales the planetary rotation (1 = Earth;
        # multiplying by exactly 1.0 is bitwise neutral).
        self.rotation_factor = float(rotation_factor)
        self.f_grid = (2.0 * (OMEGA * self.rotation_factor)
                       * transform.mu[:, None]
                       * np.ones((1, transform.nlon))
                       ).astype(transform.policy.float_dtype, copy=False)

        # Semi-implicit solver tables: one (L x L) inverse per total wavenumber.
        self._m_matrix = vgrid.semi_implicit_matrix()
        self._hyper_denom: np.ndarray | None = None
        self._hyper_dt: float | None = None
        self._build_implicit_inverses()

    # ------------------------------------------------------------------
    def _build_implicit_inverses(self) -> None:
        L = self.vg.nlev
        n_max = self.tr.trunc.mmax + self.tr.trunc.nk - 1
        eye = np.eye(L)
        dt = self.dt
        self._inv = np.empty((n_max + 1, L, L))
        for n in range(n_max + 1):
            b = n * (n + 1) / self.tr.radius**2
            self._inv[n] = np.linalg.inv(eye + dt * dt * b * self._m_matrix)
        # Map (m, k) slot -> n for gather operations.
        self._n_of_slot = self.tr.trunc.n_values()

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def initial_state(self, kind: str = "isothermal_rest", seed: int = 0,
                      noise_amplitude: float = 1e-8) -> AtmosphereState:
        """Build an initial state.

        ``isothermal_rest``: T = T_ref, no motion, uniform ps, plus optional
        rotational noise to break symmetry.  ``zonal_jet``: balanced
        midlatitude jets for dynamics tests.
        """
        L = self.vg.nlev
        nm, nk = self.tr.spec_shape
        cdt = self.tr.policy.complex_dtype
        fdt = self.tr.policy.float_dtype
        zero = np.zeros((L, nm, nk), dtype=cdt)
        state = AtmosphereState(
            vort=zero.copy(), div=zero.copy(), temp=zero.copy(),
            lnps=np.zeros((nm, nk), dtype=cdt),
            q=np.zeros((L, self.tr.nlat, self.tr.nlon), dtype=fdt))
        if kind == "isothermal_rest":
            if noise_amplitude > 0:
                rng = np.random.default_rng(seed)
                noise = (rng.normal(size=state.vort.shape)
                         + 1j * rng.normal(size=state.vort.shape)) * noise_amplitude
                noise[:, 0, :] = noise[:, 0, :].real
                state.vort += noise
        elif kind == "zonal_jet":
            # u = u0 sin^2(2 lat)-style jets via zonal vorticity coefficients.
            u0 = 20.0
            u = u0 * np.sin(2.0 * self.tr.lats) ** 2 * np.sign(self.tr.lats)
            ugrid = np.repeat(u[:, None], self.tr.nlon, axis=1)
            vgrid_ = np.zeros_like(ugrid)
            vs, ds = self.tr.vortdiv_from_uv(ugrid, vgrid_)
            for l in range(L):
                state.vort[l] = vs
                state.div[l] = ds
        else:
            raise ValueError(f"unknown initial state kind {kind!r}")
        return state

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @profiled("diagnose")
    def diagnose(self, state: AtmosphereState) -> GridDiagnostics:
        """Synthesize all grid fields the physics and coupler need.

        Accepts serial states ((L, nm, nk) spectral fields) and ensemble
        states with a member axis after the level axis ((L, E, nm, nk));
        grid diagnostics then carry the member axis in the same slot.
        """
        L = self.vg.nlev
        fdt = self.tr.policy.float_dtype
        bshape = state.vort.shape[1:-2]          # () serial, (nens,) batched
        if fused_enabled():
            # Whole-(level[, member]) stacks through the fused plan: one
            # transform call per field instead of a per-level Python loop
            # (ellipsis einsum batching is bitwise identical per slice).
            # The returned grids are views of per-call-fresh inverse-FFT
            # outputs, so they escape into GridDiagnostics safely.
            u, v = self.tr.uv_from_vortdiv(state.vort, state.div)
            tg, zg, dg = self.tr.synthesize_many(
                state.temp, state.vort, state.div)
            tg = tg + self.vg.t_ref
        else:
            # Diagnostics escape into GridDiagnostics, so they are freshly
            # allocated (never workspace buffers) — only their dtype is policy.
            u = np.empty((L,) + bshape + (self.tr.nlat, self.tr.nlon), dtype=fdt)
            v = np.empty_like(u)
            tg = np.empty_like(u)
            zg = np.empty_like(u)
            dg = np.empty_like(u)
            for l in range(L):
                u[l], v[l] = self.tr.uv_from_vortdiv(state.vort[l], state.div[l])
                tg[l] = self.tr.synthesize(state.temp[l]) + self.vg.t_ref
                zg[l] = self.tr.synthesize(state.vort[l])
                dg[l] = self.tr.synthesize(state.div[l])
        lnps = self.tr.synthesize(state.lnps)
        ps = P0 * np.exp(lnps)
        pressure = self.vg.sigma.reshape((-1,) + (1,) * ps.ndim) * ps[None]
        phi = self.vg.geopotential(tg).astype(fdt, copy=False)
        px, py = self.tr.gradient(state.lnps)
        vgradp = u * px[None] + v * py[None]
        wop = self.vg.omega_over_p(dg, vgradp).astype(fdt, copy=False)
        return GridDiagnostics(u=u, v=v, temp=tg, vort=zg, div=dg, lnps=lnps,
                               ps=ps, pressure=pressure, geopotential=phi,
                               omega_over_p=wop)

    # ------------------------------------------------------------------
    # tendency evaluation (the transform-method nonlinear terms)
    # ------------------------------------------------------------------
    def _nonlinear_tendencies(self, state: AtmosphereState):
        """Explicit (nonlinear) spectral tendencies N_zeta, N_D, N_T, N_pi.

        Returns also the grid diagnostics so the caller can reuse them.
        """
        tr, vg = self.tr, self.vg
        L = vg.nlev
        d = self.diagnose(state)
        tprime = d.temp - vg.t_ref

        px, py = tr.gradient(state.lnps)
        vgradp = d.u * px[None] + d.v * py[None]
        c = d.div + vgradp

        # Continuity: nonlinear part only (the -dsig.D part goes implicit).
        dsig = vg.dsigma.reshape((-1,) + (1,) * (vgradp.ndim - 1))
        npi_grid = -np.sum(dsig * vgradp, axis=0)
        n_pi = tr.analyze(npi_grid)

        sigdot = vg.sigma_dot(d.div, vgradp)
        du_dsig = vg.vertical_advection(sigdot, d.u)
        dv_dsig = vg.vertical_advection(sigdot, d.v)
        dt_dsig = vg.vertical_advection(sigdot, d.temp)

        absvort = d.vort + self.f_grid[None]
        fu = absvort * d.v - du_dsig - RD * tprime * px[None]
        fv = -absvort * d.u - dv_dsig - RD * tprime * py[None]

        ws = get_workspace()
        # Thermodynamic: advective form + full energy conversion, minus the
        # linear part that the implicit tau matrix will handle.
        # Linearized omega/p keeps only the divergence part:
        wop_lin = vg.omega_over_p(d.div, ws.zeros_like("dyn.wop_zero", vgradp))
        heating = KAPPA * d.temp * d.omega_over_p - KAPPA * vg.t_ref * wop_lin

        if fused_enabled():
            # Whole-(level[, member]) stacks: one fused transform call per
            # term, bitwise identical per slice to the per-level loop.
            n_vort, dt_all = tr.vortdiv_from_uv(fu, fv)
            energy = 0.5 * (d.u ** 2 + d.v ** 2)
            n_div = dt_all - tr.laplacian(tr.analyze(energy))
            tx, ty = tr.gradient(state.temp)
            adv_t = -(d.u * tx + d.v * ty)
            n_temp = tr.analyze(adv_t - dt_dsig + heating)
            return n_vort, n_div, n_temp, n_pi, d

        # Tendency accumulators are consumed inside this step only, so they
        # live in the workspace arena (unique names: never aliased).
        n_vort = ws.empty_like("dyn.n_vort", state.vort)
        n_div = ws.empty_like("dyn.n_div", state.div)
        n_temp = ws.empty_like("dyn.n_temp", state.temp)

        for l in range(L):
            zt, dt_ = tr.vortdiv_from_uv(fu[l], fv[l])
            n_vort[l] = zt
            energy = 0.5 * (d.u[l] ** 2 + d.v[l] ** 2)
            n_div[l] = dt_ - tr.laplacian(tr.analyze(energy))

            tx, ty = tr.gradient(state.temp[l])
            adv_t = -(d.u[l] * tx + d.v[l] * ty)
            n_temp[l] = tr.analyze(adv_t - dt_dsig[l] + heating[l])

        return n_vort, n_div, n_temp, n_pi, d

    # ------------------------------------------------------------------
    # time stepping
    # ------------------------------------------------------------------
    def step(self, prev: AtmosphereState, curr: AtmosphereState
             ) -> tuple[AtmosphereState, AtmosphereState]:
        """One leapfrog step: (t-dt, t) -> (filtered t, t+dt).

        Returns the new (prev, curr) pair; the returned prev is the
        Robert-Asselin-filtered center state.
        """
        dt = self.dt
        with profile_section("nonlinear"):
            n_vort, n_div, n_temp, n_pi, diag = self._nonlinear_tendencies(curr)

        new_vort = prev.vort + 2.0 * dt * n_vort

        with profile_section("implicit"):
            if self.semi_implicit:
                new_div, new_temp, new_lnps = self._implicit_update(
                    prev, n_div, n_temp, n_pi)
            else:
                # Fully explicit update: linear terms evaluated at center time.
                g_mat = self.vg.hydrostatic_matrix()
                tau = self.vg.energy_conversion_matrix()
                dsig = self.vg.dsigma
                lin_d = np.tensordot(g_mat, curr.temp, axes=(1, 0)) \
                    + RD * self.vg.t_ref * curr.lnps[None]
                new_div = prev.div + 2.0 * dt * (n_div - self._lap3(lin_d))
                new_temp = prev.temp + 2.0 * dt * (
                    n_temp - np.tensordot(tau, curr.div, axes=(1, 0)))
                new_lnps = prev.lnps + 2.0 * dt * (
                    n_pi - self._dsig_dot(dsig, curr.div))

        # Mixed-precision leakage guard: the float64 implicit solver tables
        # upcast the update under a float32 policy; pin state dtype here.
        cdt = self.tr.policy.complex_dtype
        new_div = new_div.astype(cdt, copy=False)
        new_temp = new_temp.astype(cdt, copy=False)
        new_lnps = new_lnps.astype(cdt, copy=False)

        # del^4 hyperdiffusion, applied implicitly to the new fields.
        with profile_section("hyperdiffusion"):
            new_vort = self._hyperdiffuse(new_vort)
            new_div = self._hyperdiffuse(new_div)
            new_temp = self._hyperdiffuse(new_temp)

        # Semi-Lagrangian moisture transport on the grid.
        with profile_section("semilag"):
            new_q = advect_semilagrangian(self.tr, diag.u, diag.v, prev.q, 2.0 * dt)

        # Robert-Asselin filter on the center state.
        filt = self.robert
        if fused_enabled():
            # Workspace-resident chains: only the filtered sums allocate.
            filtered = AtmosphereState(
                vort=robert_filter(prev.vort, curr.vort, new_vort, filt,
                                   name="dyn.rob.vort"),
                div=robert_filter(prev.div, curr.div, new_div, filt,
                                  name="dyn.rob.div"),
                temp=robert_filter(prev.temp, curr.temp, new_temp, filt,
                                   name="dyn.rob.temp"),
                lnps=robert_filter(prev.lnps, curr.lnps, new_lnps, filt,
                                   name="dyn.rob.lnps"),
                q=robert_filter(prev.q, curr.q, new_q, filt,
                                name="dyn.rob.q"),
                time=curr.time)
        else:
            filtered = AtmosphereState(
                vort=curr.vort + filt * (prev.vort - 2 * curr.vort + new_vort),
                div=curr.div + filt * (prev.div - 2 * curr.div + new_div),
                temp=curr.temp + filt * (prev.temp - 2 * curr.temp + new_temp),
                lnps=curr.lnps + filt * (prev.lnps - 2 * curr.lnps + new_lnps),
                q=curr.q + filt * (prev.q - 2 * curr.q + new_q),
                time=curr.time)
        new = AtmosphereState(new_vort, new_div, new_temp, new_lnps, new_q,
                              time=curr.time + dt)
        return filtered, new

    def _lap3(self, spec3: np.ndarray) -> np.ndarray:
        """Laplacian applied along the last two (spectral) axes of (L, nm, nk)."""
        return spec3 * self.tr._lap[None]

    @staticmethod
    def _dsig_dot(dsig: np.ndarray, field: np.ndarray) -> np.ndarray:
        """Contract the level axis of ``field`` ((L, ...)) with ``dsig`` ((L,)).

        A single tensordot over a member-batched operand is a gemv whose
        accumulation order differs from the serial per-member call, so for
        batched fields each member is contracted separately — bitwise
        identical to serial member-at-a-time integration.
        """
        if field.ndim == 3:
            return np.tensordot(dsig, field, axes=(0, 0))
        out = np.empty(field.shape[1:], dtype=field.dtype)
        for e in range(field.shape[1]):
            out[e] = np.tensordot(dsig, field[:, e], axes=(0, 0))
        return out

    def _hyperdiffuse(self, spec3: np.ndarray) -> np.ndarray:
        # The implicit damping denominator depends only on (truncation, dt);
        # rebuild it only when dt changes instead of three times per step.
        if self._hyper_denom is None or self._hyper_dt != self.dt:
            n = self.tr.trunc.n_values().astype(np.float64)
            damp = self.k4 * (n * (n + 1.0) / self.tr.radius**2) ** 2
            denom = (1.0 + 2.0 * self.dt * damp)[None]
            self._hyper_denom = denom.astype(self.tr.policy.float_dtype, copy=False)
            self._hyper_dt = self.dt
        if fused_enabled():
            # Every caller passes a freshly built new-time field, so the
            # division can land in place (same op, no temporary).
            return np.divide(spec3, self._hyper_denom, out=spec3)
        return spec3 / self._hyper_denom

    def _implicit_update(self, prev: AtmosphereState, n_div, n_temp, n_pi):
        """Semi-implicit solve for divergence, then back-substitute T and lnps."""
        dt = self.dt
        vg, tr = self.vg, self.tr
        L = vg.nlev
        g_mat = vg.hydrostatic_matrix()
        tau = vg.energy_conversion_matrix()
        dsig = vg.dsigma
        m_mat = self._m_matrix

        t_star = prev.temp + dt * n_temp                  # (L, nm, nk)
        pi_star = prev.lnps + dt * n_pi                   # (nm, nk)
        # RHS: (I - dt^2 b M) D^- + 2 dt N_D + 2 dt b [G t* + R Tref pi*]
        gt = np.tensordot(g_mat, t_star, axes=(1, 0))
        lin = gt + RD * vg.t_ref * pi_star[None]

        n_vals = self._n_of_slot                          # (nm, nk)
        b = n_vals * (n_vals + 1) / tr.radius**2          # (nm, nk)

        md_prev = np.tensordot(m_mat, prev.div, axes=(1, 0))
        rhs = prev.div + 2.0 * dt * n_div \
            + 2.0 * dt * b[None] * lin \
            - dt * dt * b[None] * md_prev

        # Solve (I + dt^2 b M) D+ = rhs, gathering coefficients by n.
        # Batched fields solve member-at-a-time: a single gemm over all
        # members' gathered columns widens N and shifts BLAS blocking, which
        # perturbs the last bits relative to the serial solve.  The gathered
        # (L, S_n) operand per member is byte-identical to the serial one.
        new_div = np.empty_like(prev.div)
        flat_rhs = rhs.reshape(L, -1, n_vals.size)         # (L, E|1, S)
        flat_new = new_div.reshape(L, -1, n_vals.size)
        flat_n = n_vals.reshape(-1)
        for n in np.unique(flat_n):
            cols = flat_n == n
            inv = self._inv[n]
            for e in range(flat_rhs.shape[1]):
                flat_new[:, e][:, cols] = inv @ flat_rhs[:, e][:, cols]
        new_div = flat_new.reshape(prev.div.shape)

        dbar = 0.5 * (new_div + prev.div)
        new_temp = prev.temp + 2.0 * dt * n_temp \
            - 2.0 * dt * np.tensordot(tau, dbar, axes=(1, 0))
        new_lnps = prev.lnps + 2.0 * dt * n_pi \
            - 2.0 * dt * self._dsig_dot(dsig, dbar)
        return new_div, new_temp, new_lnps

    # ------------------------------------------------------------------
    def run(self, state: AtmosphereState, nsteps: int,
            forcing=None) -> AtmosphereState:
        """Integrate ``nsteps`` leapfrog steps from ``state`` (cold start).

        ``forcing(core, prev, curr) -> None`` may mutate ``curr`` in place
        between steps (used by tests for e.g. Held-Suarez-style relaxation).
        """
        prev = state
        curr = self._forward_start(state)
        for _ in range(nsteps):
            if forcing is not None:
                forcing(self, prev, curr)
            prev, curr = self.step(prev, curr)
        return curr

    def _forward_start(self, state: AtmosphereState) -> AtmosphereState:
        """Half-step Euler start to prime the leapfrog."""
        saved_dt = self.dt
        try:
            self.dt = 0.5 * saved_dt
            self._build_implicit_inverses()
            _, half = self.step(state, state)
        finally:
            self.dt = saved_dt
            self._build_implicit_inverses()
        half.time = state.time + saved_dt
        return half

    # ------------------------------------------------------------------
    # budgets used by tests and diagnostics
    # ------------------------------------------------------------------
    def global_mass(self, state: AtmosphereState) -> float:
        """Area-mean surface pressure (Pa): conserved by adiabatic dynamics."""
        return self.tr.global_mean(P0 * np.exp(self.tr.synthesize(state.lnps)))

    def total_energy(self, state: AtmosphereState) -> float:
        """Column-integrated total (kinetic + internal) energy per unit area."""
        d = self.diagnose(state)
        ke = 0.5 * (d.u**2 + d.v**2)
        ie = CP * d.temp
        col = np.tensordot(self.vg.dsigma, ke + ie, axes=(0, 0)) * d.ps / 9.80616
        return self.tr.global_mean(col)
