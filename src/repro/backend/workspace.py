"""Workspace arena: named, shape/dtype-keyed reusable scratch buffers.

Hot paths call ``ws.empty("ocean.pgx", shape, dtype)`` instead of
``np.empty(shape)``.  The first request for a (name, shape, dtype) key
allocates (a *miss*); every later request returns the same buffer (a
*hit*), so a warmed-up model step performs (near) zero temporary
allocations.  ``ws.zeros`` refills the reused buffer with ``buf[...] = 0``,
which is bitwise-identical to a fresh ``np.zeros``.

Usage rules that make reuse safe:

* only scratch that does **not** escape the requesting call lives here —
  anything stored into model state must stay freshly allocated;
* every call site uses a unique name, so two live temporaries can never
  alias the same buffer;
* the default workspace is **thread-local**: simulated-MPI rank threads
  run the same kernels concurrently and each gets its own arena.

Counters: ``hits``/``misses`` accumulate per workspace and are also fed
to the profiler (``profile_count("ws.hits"/"ws.misses")``) so they land
on whichever profiler section is active — that is how the per-section
allocation win in ``BENCH_backend.json`` is measured.

``FOAM_WORKSPACE=0`` disables reuse (every request allocates and counts
as a miss), giving the before/after baseline without code changes.
"""

from __future__ import annotations

import os
import threading
import weakref

import numpy as np

__all__ = [
    "Workspace", "arenas_disjoint", "get_workspace", "workspace_enabled",
    "workspace_totals", "reset_workspaces",
]


def workspace_enabled() -> bool:
    """Whether buffer reuse is on (``FOAM_WORKSPACE=0`` turns it off)."""
    return os.environ.get("FOAM_WORKSPACE", "1").lower() not in ("0", "off", "false")


_profile_count = None


def _count(name: str) -> None:
    """Forward a counter to the profiler, importing it lazily.

    ``repro.perf`` imports modules that themselves use workspaces, so a
    module-level import here would be circular; the first actual counter
    event resolves it instead (by then everything is loaded).
    """
    global _profile_count
    if _profile_count is None:
        from repro.perf.profiler import profile_count
        _profile_count = profile_count
    _profile_count(name)


# Every workspace ever handed out, for aggregate reporting.
_registry: "weakref.WeakSet[Workspace]" = weakref.WeakSet()
_registry_lock = threading.Lock()


class Workspace:
    """A keyed arena of reusable buffers with hit/miss accounting."""

    __slots__ = ("_buffers", "hits", "misses", "__weakref__")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        with _registry_lock:
            _registry.add(self)

    def empty(self, name: str, shape, dtype) -> np.ndarray:
        """An uninitialised buffer for ``name`` (contents are stale on a hit)."""
        shape = (shape,) if np.isscalar(shape) else tuple(shape)
        key = (name, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None or not workspace_enabled():
            self.misses += 1
            _count("ws.misses")
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
            _count("ws.hits")
        return buf

    def zeros(self, name: str, shape, dtype) -> np.ndarray:
        """A zero-filled buffer (refill of a reused buffer ≡ fresh np.zeros)."""
        buf = self.empty(name, shape, dtype)
        buf[...] = 0
        return buf

    def zeros_once(self, name: str, shape, dtype) -> np.ndarray:
        """A buffer zeroed only at allocation; hits return it as last left.

        For pad buffers whose zero region is never overwritten (e.g. the
        inverse-FFT tail beyond the truncation), this skips the per-call
        refill: the caller rewrites its live columns every request and the
        zero tail persists.  With ``FOAM_WORKSPACE=0`` every request is a
        miss, so the buffer is freshly zeroed each call and the contract
        degrades gracefully to :meth:`zeros`.
        """
        shape = (shape,) if np.isscalar(shape) else tuple(shape)
        key = (name, shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None or not workspace_enabled():
            self.misses += 1
            _count("ws.misses")
            buf = np.zeros(shape, dtype=dtype)
            self._buffers[key] = buf
        else:
            self.hits += 1
            _count("ws.hits")
        return buf

    def empty_like(self, name: str, arr: np.ndarray) -> np.ndarray:
        return self.empty(name, arr.shape, arr.dtype)

    def zeros_like(self, name: str, arr: np.ndarray) -> np.ndarray:
        return self.zeros(name, arr.shape, arr.dtype)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop all buffers and zero the counters."""
        self._buffers.clear()
        self.hits = 0
        self.misses = 0


_local = threading.local()


def get_workspace() -> Workspace:
    """This thread's workspace (each simmpi rank thread gets its own)."""
    ws = getattr(_local, "ws", None)
    if ws is None:
        ws = _local.ws = Workspace()
    return ws


def workspace_totals() -> dict[str, int]:
    """Aggregate hit/miss/buffer/byte counts across all live workspaces."""
    with _registry_lock:
        workspaces = list(_registry)
    return {
        "hits": sum(w.hits for w in workspaces),
        "misses": sum(w.misses for w in workspaces),
        "buffers": sum(len(w) for w in workspaces),
        "nbytes": sum(w.nbytes for w in workspaces),
    }


def reset_workspaces() -> None:
    """Clear every live workspace (buffers and counters)."""
    with _registry_lock:
        workspaces = list(_registry)
    for w in workspaces:
        w.clear()


def arenas_disjoint(workspaces) -> bool:
    """True when no two of the given workspaces share a scratch buffer.

    The concurrent coupled driver's correctness argument needs the
    atmosphere-pool and ocean-pool rank threads to scribble in disjoint
    arenas; thread-local :func:`get_workspace` guarantees it, and this
    helper lets tests (and the driver's own audit) verify it by object
    identity rather than by trusting the thread-local plumbing.
    """
    seen: set[int] = set()
    for w in workspaces:
        for buf in w._buffers.values():
            if id(buf) in seen:
                return False
            seen.add(id(buf))
    return True
