"""Precision policy: one object naming the float/complex pair in use.

The model was written float64-only; the policy threads a single choice
of working precision through every constructor that used to hard-code
``np.float64`` / ``dtype=complex``.  Selection order:

1. an explicit ``DTypePolicy`` passed to a constructor,
2. a process-wide override installed by :func:`set_default_dtype` or the
   :func:`dtype_policy` context manager,
3. the ``FOAM_DTYPE`` environment variable (``float32``/``float64``,
   with ``f32``/``single``/``f64``/``double`` accepted as aliases),
4. float64 (the seed behaviour — bitwise identical to the pre-backend
   code).

Solver tables (Legendre recurrences, implicit-inverse matrices,
tridiagonal coefficients) are always *built* in float64 for stability
and only cast down on the way into policy-dtype storage.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DTypePolicy", "FLOAT32", "FLOAT64", "policy_from_name",
    "default_policy", "set_default_dtype", "dtype_policy",
]


@dataclass(frozen=True)
class DTypePolicy:
    """An immutable float/complex dtype pair with byte-size metadata."""

    name: str
    float_dtype: np.dtype
    complex_dtype: np.dtype

    @property
    def float_bytes(self) -> int:
        return self.float_dtype.itemsize

    @property
    def complex_bytes(self) -> int:
        return self.complex_dtype.itemsize

    def asfloat(self, arr: np.ndarray) -> np.ndarray:
        """Cast to the policy float dtype; identity (no copy) if already there."""
        return np.asarray(arr).astype(self.float_dtype, copy=False)

    def ascomplex(self, arr: np.ndarray) -> np.ndarray:
        """Cast to the policy complex dtype; identity (no copy) if already there."""
        return np.asarray(arr).astype(self.complex_dtype, copy=False)


FLOAT64 = DTypePolicy("float64", np.dtype(np.float64), np.dtype(np.complex128))
FLOAT32 = DTypePolicy("float32", np.dtype(np.float32), np.dtype(np.complex64))

_ALIASES = {
    "float64": FLOAT64, "f64": FLOAT64, "double": FLOAT64, "fp64": FLOAT64,
    "float32": FLOAT32, "f32": FLOAT32, "single": FLOAT32, "fp32": FLOAT32,
}

# Process-wide override; None means "fall through to FOAM_DTYPE then float64".
_override: DTypePolicy | None = None
_override_lock = threading.Lock()


def policy_from_name(name: str | DTypePolicy | None) -> DTypePolicy:
    """Resolve a dtype name (or pass through a policy / None -> default)."""
    if name is None:
        return default_policy()
    if isinstance(name, DTypePolicy):
        return name
    try:
        return _ALIASES[str(name).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown dtype policy {name!r}; expected one of {sorted(_ALIASES)}"
        ) from None


def default_policy() -> DTypePolicy:
    """The ambient policy: override if set, else FOAM_DTYPE, else float64."""
    if _override is not None:
        return _override
    env = os.environ.get("FOAM_DTYPE")
    if env:
        return policy_from_name(env)
    return FLOAT64


def set_default_dtype(name: str | DTypePolicy | None) -> None:
    """Install (or with None, clear) the process-wide dtype override."""
    global _override
    with _override_lock:
        _override = None if name is None else policy_from_name(name)


@contextmanager
def dtype_policy(name: str | DTypePolicy):
    """Temporarily run under a different precision policy."""
    global _override
    with _override_lock:
        prev = _override
        _override = policy_from_name(name)
    try:
        yield _override
    finally:
        with _override_lock:
            _override = prev
