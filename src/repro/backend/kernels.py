"""Fused spectral kernel plans: the hot contractions as few large calls.

PR 6's batched-ensemble profile shows the paired Legendre einsums and the
elementwise chains around them dominating the batched coupled step.  Each
:class:`~repro.atmosphere.spectral.SpectralTransform` method used to issue
2–4 separate ``np.einsum`` calls per level per field plus a fresh
allocation per intermediate; a :class:`SpectralKernelPlan` collapses every
transform into a handful of large backend-dispatchable calls over the
whole (level, member) batch:

* workspace-resident intermediates (``out=`` chains, zero steady-state
  allocations) with *pre-zeroed* inverse-FFT pad buffers
  (:meth:`Workspace.zeros_once`) — the truncation tail is zeroed once at
  allocation and only the live columns are rewritten per call;
* multi-field stacking: the two wind components (and the three synthesis
  fields ``diagnose`` needs) share one pad buffer and one ``irfft`` call;
* truncation-mask skipping: a rhomboidal truncation retains every (m, k)
  slot, so its all-``True`` mask multiplies are dropped (``x * True`` is
  bitwise ``x``) and the escaping copy becomes a straight ``memcpy``;
* the forward FFT normalization divides only the retained ``nm`` columns
  (slice-then-divide ≡ divide-then-slice, bitwise).

Every transformation is bitwise-neutral on the NumPy float64 path: the
same IEEE operations in the same order, just batched and buffered.  The
``*_ref`` functions below keep the seed-era *unfused* formulation — naive
per-field calls with fresh allocations and separate einsums — as the
oracle the regression tests pin against and the baseline
``benchmarks/bench_kernels.py`` measures the fused plan against (the same
role :func:`~repro.atmosphere.spectral._associated_legendre_ref` plays
for the batched Legendre recurrence).

Backend dispatch: the plan issues its contractions, FFTs and big
elementwise chains through :class:`~repro.backend.core.ArrayBackend`
compute ops.  The NumPy backend aliases them to the exact calls the
transform previously inlined; the torch backend executes them on
zero-copy ``torch.from_numpy`` wrappers of the same host buffers, which
is what lets ``FOAM_BACKEND=torch`` drive a complete coupled day through
``FoamModel.run_days``/``FoamEnsemble`` with conversion only at the
history/diagnostics edges (tolerance-close, never bitwise).

``FOAM_FUSED=0`` switches the transforms (and the dynamics-level batching
that rides on them) back to the pre-fusion code path — the before/after
baseline for the fused-vs-unfused day wall in ``BENCH_kernels.json``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.backend.workspace import get_workspace

__all__ = [
    "fused_enabled", "SpectralKernelPlan", "robert_filter",
    "fourier_ref", "inverse_fourier_ref", "analyze_ref", "synthesize_ref",
    "uv_from_vortdiv_ref", "vortdiv_from_uv_ref", "gradient_ref",
]


def fused_enabled() -> bool:
    """Whether the fused kernel plans are on (``FOAM_FUSED=0`` disables)."""
    return os.environ.get("FOAM_FUSED", "1").lower() not in ("0", "off", "false")


class SpectralKernelPlan:
    """Fused, backend-dispatchable transform kernels for one transform.

    Bound to a :class:`~repro.atmosphere.spectral.SpectralTransform`'s
    cached tables and its resolved :class:`ArrayBackend`.  All methods
    accept arbitrary leading batch axes — the dynamical core passes whole
    ``(nlev, [nens], ...)`` stacks so one call covers what used to be a
    per-level (per-member) Python loop — and are bitwise identical per
    slice to the unfused path on the NumPy backend.
    """

    def __init__(self, tr):
        self.tr = tr
        self.bk = tr.backend
        self.nlat, self.nlon = tr.nlat, tr.nlon
        self.nm, self.nk = tr.spec_shape
        self.radius = tr.radius
        # A rhomboidal truncation retains every slot: its mask multiplies
        # are identity ops and are skipped (escaping results still copy).
        self._allones = bool(tr._mask.all())
        self._mask = tr._mask
        self._im = tr._im
        self._invlap = tr._invlap
        self._rcos = tr._rcos
        self._cos = tr.coslat[:, None]
        # Same expression vortdiv_from_uv evaluated per call, hoisted.
        self._oc2 = (1.0 / (tr.coslat ** 2))[:, None]
        # Backend-side table handles (the NumPy backend returns the very
        # same arrays; torch wraps them zero-copy, copying only the
        # read-only shared plan tables).
        self._pbar = self.bk.asarray(tr.pbar)
        self._hbar = self.bk.asarray(tr.hbar)
        self._wp = self.bk.asarray(tr._wp)
        self._wh = self.bk.asarray(tr._wh)
        self._pbar_dt = tr.pbar.dtype
        self._wp_dt = tr._wp.dtype

    # ------------------------------------------------------------------
    def _irfft_stacked(self, name: str, fms) -> np.ndarray:
        """One inverse FFT over ``len(fms)`` stacked Fourier fields.

        The pad buffer is zeroed once at allocation; each call rewrites
        only the live ``nm`` columns (folding the ``* nlon``
        denormalization into the copy), so the truncation tail stays zero
        without a per-call refill.  The name carries ``nm`` because two
        transforms with the same grid but different truncations must not
        share a pad (their zero tails start at different columns).
        """
        n = len(fms)
        fm0 = fms[0]
        ws = get_workspace()
        full = ws.zeros_once(f"{name}.m{self.nm}",
                             (n,) + fm0.shape[:-1] + (self.nlon // 2 + 1,),
                             fm0.dtype)
        for i, fm in enumerate(fms):
            self.bk.multiply(fm, self.nlon, out=full[i][..., : self.nm])
        return self.bk.irfft(full, n=self.nlon, axis=-1)

    # ------------------------------------------------------------------
    def analyze(self, grid: np.ndarray) -> np.ndarray:
        """Fused grid -> spectral: rfft + one quadrature einsum."""
        bk = self.bk
        f = bk.rfft(grid, axis=-1)
        fm = f[..., : self.nm]
        # Normalize only the retained columns of the fresh FFT output.
        bk.divide(fm, self.nlon, out=fm)
        ws = get_workspace()
        spec = bk.einsum("...jm,jmk->...mk", fm, self._wp,
                         out=ws.empty("spectral.fused.an.spec",
                                      grid.shape[:-2] + (self.nm, self.nk),
                                      np.result_type(fm.dtype, self._wp_dt)))
        if self._allones:
            return spec.copy()
        return spec * self._mask

    def synthesize(self, spec: np.ndarray) -> np.ndarray:
        """Fused spectral -> grid: one einsum + pre-zeroed-pad irfft."""
        bk = self.bk
        ws = get_workspace()
        masked = spec
        if not self._allones:
            masked = np.multiply(spec, self._mask,
                                 out=ws.empty("spectral.fused.syn.masked",
                                              spec.shape, spec.dtype))
        fm = bk.einsum("...mk,jmk->...jm", masked, self._pbar,
                       out=ws.empty("spectral.fused.syn.fm",
                                    spec.shape[:-2] + (self.nlat, self.nm),
                                    np.result_type(spec.dtype, self._pbar_dt)))
        return self._irfft_stacked("spectral.fused.syn.pad", (fm,))[0]

    def synthesize_many(self, *specs: np.ndarray) -> tuple:
        """Several same-shape spectral fields through ONE einsum + irfft."""
        n = len(specs)
        s0 = specs[0]
        bk = self.bk
        ws = get_workspace()
        sp = ws.empty(f"spectral.fused.syn{n}.stack", (n,) + s0.shape, s0.dtype)
        for i, s in enumerate(specs):
            np.copyto(sp[i], s)
        if not self._allones:
            np.multiply(sp, self._mask, out=sp)
        fm = bk.einsum("...mk,jmk->...jm", sp, self._pbar,
                       out=ws.empty(f"spectral.fused.syn{n}.fm",
                                    (n,) + s0.shape[:-2] + (self.nlat, self.nm),
                                    np.result_type(s0.dtype, self._pbar_dt)))
        g = self._irfft_stacked(f"spectral.fused.syn{n}.pad", (fm,))[0]
        return tuple(g[i] for i in range(n))

    def uv_from_vortdiv(self, vort_spec: np.ndarray, div_spec: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Fused winds: 4 stacked-table einsums, one shared-pad irfft."""
        bk = self.bk
        ws = get_workspace()
        shape = vort_spec.shape
        sdt = np.result_type(vort_spec.dtype, self._invlap.dtype)
        psi = bk.multiply(vort_spec, self._invlap,
                          out=ws.empty("spectral.fused.uv.psi", shape, sdt))
        chi = bk.multiply(div_spec, self._invlap,
                          out=ws.empty("spectral.fused.uv.chi", shape, sdt))
        t1 = bk.multiply(self._im, chi,
                         out=ws.empty("spectral.fused.uv.t1", shape, sdt))
        t2 = psi
        if not self._allones:
            np.multiply(t1, self._mask, out=t1)
            t2 = np.multiply(psi, self._mask,
                             out=ws.empty("spectral.fused.uv.t2", shape, sdt))
        fm_shape = shape[:-2] + (self.nlat, self.nm)
        fdt = np.result_type(sdt, self._pbar_dt)
        e1 = bk.einsum("...mk,jmk->...jm", t1, self._pbar,
                       out=ws.empty("spectral.fused.uv.e1", fm_shape, fdt))
        e2 = bk.einsum("...mk,jmk->...jm", t2, self._hbar,
                       out=ws.empty("spectral.fused.uv.e2", fm_shape, fdt))
        u_fm = bk.subtract(e1, e2, out=e1)
        bk.divide(u_fm, self.radius, out=u_fm)
        bk.multiply(self._im, psi, out=t1)
        t2 = chi
        if not self._allones:
            np.multiply(t1, self._mask, out=t1)
            t2 = np.multiply(chi, self._mask,
                             out=ws.empty("spectral.fused.uv.t2b", shape, sdt))
        e3 = bk.einsum("...mk,jmk->...jm", t1, self._pbar,
                       out=ws.empty("spectral.fused.uv.e3", fm_shape, fdt))
        e4 = bk.einsum("...mk,jmk->...jm", t2, self._hbar,
                       out=ws.empty("spectral.fused.uv.e4", fm_shape, fdt))
        v_fm = bk.add(e3, e4, out=e3)
        bk.divide(v_fm, self.radius, out=v_fm)
        g = self._irfft_stacked("spectral.fused.uv.pad", (u_fm, v_fm))
        bk.divide(g, self._cos, out=g)
        return g[0], g[1]

    def vortdiv_from_uv(self, u: np.ndarray, v: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Fused (zeta, D): two FFTs + 4 einsums, all workspace-resident."""
        bk = self.bk
        ws = get_workspace()
        uc = bk.multiply(u, self._cos,
                         out=ws.empty("spectral.fused.vd.uc", u.shape, u.dtype))
        vc = bk.multiply(v, self._cos,
                         out=ws.empty("spectral.fused.vd.vc", v.shape, v.dtype))
        fu = bk.rfft(uc, axis=-1)
        fv = bk.rfft(vc, axis=-1)
        u_fm = fu[..., : self.nm]
        v_fm = fv[..., : self.nm]
        bk.divide(u_fm, self.nlon, out=u_fm)
        bk.divide(v_fm, self.nlon, out=v_fm)
        bk.multiply(u_fm, self._oc2, out=u_fm)
        bk.multiply(v_fm, self._oc2, out=v_fm)
        sdt = np.result_type(u_fm.dtype, self._wp_dt)
        sp_shape = u.shape[:-2] + (self.nm, self.nk)
        e1 = bk.einsum("...jm,jmk->...mk", v_fm, self._wp,
                       out=ws.empty("spectral.fused.vd.e1", sp_shape, sdt))
        e2 = bk.einsum("...jm,jmk->...mk", u_fm, self._wh,
                       out=ws.empty("spectral.fused.vd.e2", sp_shape, sdt))
        bk.multiply(self._im, e1, out=e1)
        vort = bk.add(e1, e2, out=e1)
        bk.divide(vort, self.radius, out=vort)
        e3 = bk.einsum("...jm,jmk->...mk", u_fm, self._wp,
                       out=ws.empty("spectral.fused.vd.e3", sp_shape, sdt))
        e4 = bk.einsum("...jm,jmk->...mk", v_fm, self._wh,
                       out=ws.empty("spectral.fused.vd.e4", sp_shape, sdt))
        bk.multiply(self._im, e3, out=e3)
        div = bk.subtract(e3, e4, out=e3)
        bk.divide(div, self.radius, out=div)
        if self._allones:
            return vort.copy(), div.copy()
        return vort * self._mask, div * self._mask

    def gradient(self, spec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused sphere gradient: 2 einsums, one shared-pad irfft."""
        bk = self.bk
        ws = get_workspace()
        t1 = bk.multiply(spec, self._im,
                         out=ws.empty("spectral.fused.grad.t1", spec.shape,
                                      np.result_type(spec.dtype,
                                                     self._im.dtype)))
        t2 = spec
        if not self._allones:
            np.multiply(t1, self._mask, out=t1)
            t2 = np.multiply(spec, self._mask,
                             out=ws.empty("spectral.fused.grad.t2",
                                          spec.shape, spec.dtype))
        fm_shape = spec.shape[:-2] + (self.nlat, self.nm)
        fdt = np.result_type(t1.dtype, self._pbar_dt)
        fx_fm = bk.einsum("...mk,jmk->...jm", t1, self._pbar,
                          out=ws.empty("spectral.fused.grad.fx", fm_shape, fdt))
        fy_fm = bk.einsum("...mk,jmk->...jm", t2, self._hbar,
                          out=ws.empty("spectral.fused.grad.fy", fm_shape, fdt))
        g = self._irfft_stacked("spectral.fused.grad.pad", (fx_fm, fy_fm))
        bk.divide(g, self._rcos, out=g)
        return g[0], g[1]


# ---------------------------------------------------------------------------
# Fused elementwise chains (dynamics)
# ---------------------------------------------------------------------------
def robert_filter(prev: np.ndarray, curr: np.ndarray, new: np.ndarray,
                  filt, *, name: str) -> np.ndarray:
    """``curr + filt * (prev - 2*curr + new)`` as one workspace chain.

    Only the final sum is freshly allocated (it escapes into the filtered
    state); the inner combination lives in a named scratch buffer.
    Bitwise identical to the expression form: the ops are the same IEEE
    tree, with the two commuted multiplications (``curr * 2`` for
    ``2 * curr``, ``tmp * filt`` for ``filt * tmp``) exact by IEEE-754
    commutativity.
    """
    ws = get_workspace()
    tmp = np.multiply(curr, 2.0, out=ws.empty(name, curr.shape, curr.dtype))
    np.subtract(prev, tmp, out=tmp)
    np.add(tmp, new, out=tmp)
    np.multiply(tmp, filt, out=tmp)
    return np.add(curr, tmp)


# ---------------------------------------------------------------------------
# Unfused oracles: the seed-era per-field formulation, fresh allocations
# ---------------------------------------------------------------------------
def fourier_ref(tr, grid: np.ndarray) -> np.ndarray:
    """Unfused forward FFT: full-width normalize, then truncate."""
    return (np.fft.rfft(grid, axis=-1) / tr.nlon)[..., : tr.trunc.nm]


def inverse_fourier_ref(tr, fm: np.ndarray) -> np.ndarray:
    """Unfused inverse FFT: fresh zero pad per call."""
    full = np.zeros(fm.shape[:-1] + (tr.nlon // 2 + 1,), fm.dtype)
    full[..., : tr.trunc.nm] = fm
    full *= tr.nlon
    return np.fft.irfft(full, n=tr.nlon, axis=-1)


def analyze_ref(tr, grid: np.ndarray) -> np.ndarray:
    """Unfused analysis of one (nlat, nlon) grid field."""
    return np.einsum("jm,jmk->mk", fourier_ref(tr, grid), tr._wp) * tr._mask


def synthesize_ref(tr, spec: np.ndarray) -> np.ndarray:
    """Unfused synthesis of one (nm, nk) spectral field."""
    return inverse_fourier_ref(
        tr, np.einsum("mk,jmk->jm", spec * tr._mask, tr.pbar))


def uv_from_vortdiv_ref(tr, vort_spec: np.ndarray, div_spec: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Unfused winds from one (nm, nk) vorticity/divergence pair."""
    psi = vort_spec * tr._invlap
    chi = div_spec * tr._invlap
    t1 = (tr._im * chi) * tr._mask
    t2 = psi * tr._mask
    u_fm = (np.einsum("mk,jmk->jm", t1, tr.pbar)
            - np.einsum("mk,jmk->jm", t2, tr.hbar)) / tr.radius
    t1 = (tr._im * psi) * tr._mask
    t2 = chi * tr._mask
    v_fm = (np.einsum("mk,jmk->jm", t1, tr.pbar)
            + np.einsum("mk,jmk->jm", t2, tr.hbar)) / tr.radius
    cos = tr.coslat[:, None]
    return inverse_fourier_ref(tr, u_fm) / cos, inverse_fourier_ref(tr, v_fm) / cos


def vortdiv_from_uv_ref(tr, u: np.ndarray, v: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
    """Unfused (zeta, D) from one (nlat, nlon) wind pair."""
    cos = tr.coslat[:, None]
    over_c2 = 1.0 / (cos[:, 0] ** 2)
    u_fm = fourier_ref(tr, u * cos) * over_c2[:, None]
    v_fm = fourier_ref(tr, v * cos) * over_c2[:, None]
    vort = (tr._im * np.einsum("jm,jmk->mk", v_fm, tr._wp)
            + np.einsum("jm,jmk->mk", u_fm, tr._wh)) / tr.radius
    div = (tr._im * np.einsum("jm,jmk->mk", u_fm, tr._wp)
           - np.einsum("jm,jmk->mk", v_fm, tr._wh)) / tr.radius
    return vort * tr._mask, div * tr._mask


def gradient_ref(tr, spec: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unfused sphere gradient of one (nm, nk) spectral field."""
    t1 = (spec * tr._im) * tr._mask
    t2 = spec * tr._mask
    fx = inverse_fourier_ref(tr, np.einsum("mk,jmk->jm", t1, tr.pbar)) / tr._rcos
    fy = inverse_fourier_ref(tr, np.einsum("mk,jmk->jm", t2, tr.hbar)) / tr._rcos
    return fx, fy
