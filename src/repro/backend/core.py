"""Array backend registry: the substrate hot kernels allocate through.

A backend supplies the array module (``xp``) plus the small allocation
surface the model needs (``empty``/``zeros``/``asarray``/``to_numpy``).
The default is NumPy and is always available.  Alternate backends
register a *factory* under a name; the factory runs (and imports its
dependency) only when the backend is actually selected, so merely having
``torch``/``cupy`` entries in the registry costs nothing and a missing
dependency surfaces as a clear :class:`BackendUnavailableError` instead
of an ImportError at module import time.

Selection: ``get_backend(None)`` honours the ``FOAM_BACKEND``
environment variable and falls back to ``"numpy"``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrayBackend", "NumpyBackend", "BackendUnavailableError",
    "register_backend", "get_backend", "available_backends",
]


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend's dependency is not importable."""


@runtime_checkable
class ArrayBackend(Protocol):
    """What a backend must provide for the model's hot paths."""

    name: str

    @property
    def xp(self) -> Any:
        """The array-API module (numpy, cupy, ...)."""
        ...

    def empty(self, shape, dtype) -> Any: ...

    def zeros(self, shape, dtype) -> Any: ...

    def asarray(self, arr, dtype=None) -> Any: ...

    def to_numpy(self, arr) -> np.ndarray: ...


class NumpyBackend:
    """The default backend: plain NumPy, host memory."""

    name = "numpy"

    @property
    def xp(self):
        return np

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def asarray(self, arr, dtype=None):
        return np.asarray(arr, dtype=dtype)

    def to_numpy(self, arr):
        return np.asarray(arr)


_NUMPY = NumpyBackend()

# name -> factory returning a ready ArrayBackend (may raise
# BackendUnavailableError).  Factories run per get_backend call for
# non-default backends; the numpy singleton short-circuits.
_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}
_CACHE: dict[str, ArrayBackend] = {"numpy": _NUMPY}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (lowercased)."""
    _REGISTRY[name.lower()] = factory
    _CACHE.pop(name.lower(), None)


def available_backends() -> list[str]:
    """All registered backend names (available or not)."""
    return sorted({"numpy", *_REGISTRY})


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend by name, honouring ``FOAM_BACKEND`` when None."""
    if name is not None and not isinstance(name, str):
        return name
    if name is None:
        name = os.environ.get("FOAM_BACKEND", "numpy")
    key = name.lower()
    if key in _CACHE:
        return _CACHE[key]
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered: {available_backends()}"
        ) from None
    backend = factory()
    _CACHE[key] = backend
    return backend


def _torch_factory() -> ArrayBackend:
    try:
        import torch  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailableError(
            "FOAM_BACKEND=torch requested but torch is not installed; "
            "install torch or unset FOAM_BACKEND"
        ) from exc

    class TorchBackend:  # pragma: no cover - requires torch installed
        name = "torch"

        @property
        def xp(self):
            return torch

        def empty(self, shape, dtype):
            return torch.empty(shape, dtype=self._dt(dtype))

        def zeros(self, shape, dtype):
            return torch.zeros(shape, dtype=self._dt(dtype))

        def asarray(self, arr, dtype=None):
            t = torch.as_tensor(np.asarray(arr))
            return t.to(self._dt(dtype)) if dtype is not None else t

        def to_numpy(self, arr):
            return arr.detach().cpu().numpy()

        @staticmethod
        def _dt(dtype):
            mapping = {
                np.dtype(np.float32): torch.float32,
                np.dtype(np.float64): torch.float64,
                np.dtype(np.complex64): torch.complex64,
                np.dtype(np.complex128): torch.complex128,
            }
            return mapping[np.dtype(dtype)]

    return TorchBackend()


def _cupy_factory() -> ArrayBackend:
    try:
        import cupy  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailableError(
            "FOAM_BACKEND=cupy requested but cupy is not installed; "
            "install cupy or unset FOAM_BACKEND"
        ) from exc

    class CupyBackend:  # pragma: no cover - requires cupy installed
        name = "cupy"

        @property
        def xp(self):
            return cupy

        def empty(self, shape, dtype):
            return cupy.empty(shape, dtype=dtype)

        def zeros(self, shape, dtype):
            return cupy.zeros(shape, dtype=dtype)

        def asarray(self, arr, dtype=None):
            return cupy.asarray(arr, dtype=dtype)

        def to_numpy(self, arr):
            return cupy.asnumpy(arr)

    return CupyBackend()


register_backend("torch", _torch_factory)
register_backend("cupy", _cupy_factory)
