"""Array backend registry: the substrate hot kernels allocate through.

A backend supplies the array module (``xp``) plus the small allocation
surface the model needs (``empty``/``zeros``/``asarray``/``to_numpy``).
The default is NumPy and is always available.  Alternate backends
register a *factory* under a name; the factory runs (and imports its
dependency) only when the backend is actually selected, so merely having
``torch``/``cupy`` entries in the registry costs nothing and a missing
dependency surfaces as a clear :class:`BackendUnavailableError` instead
of an ImportError at module import time.

Selection: ``get_backend(None)`` honours the ``FOAM_BACKEND``
environment variable and falls back to ``"numpy"``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArrayBackend", "NumpyBackend", "BackendUnavailableError",
    "register_backend", "get_backend", "available_backends",
]


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend's dependency is not importable."""


@runtime_checkable
class ArrayBackend(Protocol):
    """What a backend must provide for the model's hot paths.

    Beyond allocation, the fused kernel plans
    (:mod:`repro.backend.kernels`) need the handful of compute ops below.
    Every compute op accepts and returns NumPy arrays at the call
    boundary — a backend is free to execute on its own array type
    internally (the torch backend wraps operands zero-copy via
    ``torch.from_numpy`` and writes results into the shared memory of the
    ``out`` argument), so host state arrays flow through unchanged and
    conversion happens only where a backend keeps device-resident data.
    """

    name: str

    @property
    def xp(self) -> Any:
        """The array-API module (numpy, cupy, ...)."""
        ...

    def empty(self, shape, dtype) -> Any: ...

    def zeros(self, shape, dtype) -> Any: ...

    def asarray(self, arr, dtype=None) -> Any: ...

    def to_numpy(self, arr) -> np.ndarray: ...

    # -- compute ops for the fused kernel plans ------------------------
    def einsum(self, subscripts: str, *operands, out=None) -> Any: ...

    def matmul(self, a, b, out=None) -> Any: ...

    def rfft(self, x, axis: int = -1) -> Any: ...

    def irfft(self, x, n: int, axis: int = -1) -> Any: ...

    def where(self, cond, a, b) -> Any: ...

    def multiply(self, a, b, out=None) -> Any: ...

    def divide(self, a, b, out=None) -> Any: ...

    def add(self, a, b, out=None) -> Any: ...

    def subtract(self, a, b, out=None) -> Any: ...


class NumpyBackend:
    """The default backend: plain NumPy, host memory.

    The compute ops are direct aliases of the NumPy calls the kernels
    previously issued inline, so routing through the backend is bitwise
    neutral on the default path.
    """

    name = "numpy"

    @property
    def xp(self):
        return np

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def asarray(self, arr, dtype=None):
        return np.asarray(arr, dtype=dtype)

    def to_numpy(self, arr):
        return np.asarray(arr)

    def einsum(self, subscripts, *operands, out=None):
        return np.einsum(subscripts, *operands, out=out)

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    def rfft(self, x, axis=-1):
        return np.fft.rfft(x, axis=axis)

    def irfft(self, x, n, axis=-1):
        return np.fft.irfft(x, n=n, axis=axis)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def divide(self, a, b, out=None):
        return np.divide(a, b, out=out)

    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)


_NUMPY = NumpyBackend()

# name -> factory returning a ready ArrayBackend (may raise
# BackendUnavailableError).  Factories run per get_backend call for
# non-default backends; the numpy singleton short-circuits.
_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}
_CACHE: dict[str, ArrayBackend] = {"numpy": _NUMPY}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (lowercased)."""
    _REGISTRY[name.lower()] = factory
    _CACHE.pop(name.lower(), None)


def available_backends() -> list[str]:
    """All registered backend names (available or not)."""
    return sorted({"numpy", *_REGISTRY})


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend by name, honouring ``FOAM_BACKEND`` when None."""
    if name is not None and not isinstance(name, str):
        return name
    if name is None:
        name = os.environ.get("FOAM_BACKEND", "numpy")
    key = name.lower()
    if key in _CACHE:
        return _CACHE[key]
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered: {available_backends()}"
        ) from None
    backend = factory()
    _CACHE[key] = backend
    return backend


def _torch_factory() -> ArrayBackend:
    try:
        import torch  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailableError(
            "FOAM_BACKEND=torch requested but torch is not installed; "
            "install torch or unset FOAM_BACKEND"
        ) from exc

    class TorchBackend:  # pragma: no cover - requires torch installed
        """CPU torch backend over shared host memory.

        NumPy operands are wrapped zero-copy with ``torch.from_numpy`` and
        results land either in the caller's ``out`` buffer (same memory)
        or come back as a zero-copy ``.numpy()`` view, so the model's
        NumPy-typed state flows through a coupled day with torch executing
        the contractions, FFTs and fused elementwise chains.  Results are
        tolerance-close (never bitwise) to the NumPy path: torch's einsum
        and pocketfft-equivalent kernels accumulate in different orders.
        """

        name = "torch"

        @property
        def xp(self):
            return torch

        def empty(self, shape, dtype):
            return torch.empty(shape, dtype=self._dt(dtype))

        def zeros(self, shape, dtype):
            return torch.zeros(shape, dtype=self._dt(dtype))

        def asarray(self, arr, dtype=None):
            if isinstance(arr, torch.Tensor):
                t = arr
            else:
                a = np.asarray(arr)
                # from_numpy refuses (warns on) read-only arrays — the
                # cached Legendre plan tables are deliberately frozen.
                if a.flags["WRITEABLE"]:
                    t = torch.from_numpy(a)
                else:
                    t = torch.from_numpy(a.copy())
            return t.to(self._dt(dtype)) if dtype is not None else t

        def to_numpy(self, arr):
            if isinstance(arr, torch.Tensor):
                return arr.detach().cpu().numpy()
            return np.asarray(arr)

        @staticmethod
        def _dt(dtype):
            mapping = {
                np.dtype(np.float32): torch.float32,
                np.dtype(np.float64): torch.float64,
                np.dtype(np.complex64): torch.complex64,
                np.dtype(np.complex128): torch.complex128,
            }
            return mapping[np.dtype(dtype)]

        @staticmethod
        def _wrap(a):
            if isinstance(a, np.ndarray):
                return torch.from_numpy(a)
            return a  # tensors and python scalars pass through

        def _finish(self, result, out):
            if out is None:
                return result.numpy()
            self._wrap(out).copy_(result)
            return out

        def einsum(self, subscripts, *operands, out=None):
            r = torch.einsum(subscripts, *[self._wrap(o) for o in operands])
            return self._finish(r, out)

        def matmul(self, a, b, out=None):
            r = torch.matmul(self._wrap(a), self._wrap(b))
            return self._finish(r, out)

        def rfft(self, x, axis=-1):
            return torch.fft.rfft(self._wrap(x), dim=axis).numpy()

        def irfft(self, x, n, axis=-1):
            return torch.fft.irfft(self._wrap(x), n=n, dim=axis).numpy()

        def where(self, cond, a, b):
            r = torch.where(self._wrap(cond), self._wrap(a), self._wrap(b))
            return r.numpy()

        def _binary(self, fn, a, b, out):
            wa, wb = self._wrap(a), self._wrap(b)
            if out is None:
                return fn(wa, wb).numpy()
            fn(wa, wb, out=self._wrap(out))
            return out

        def multiply(self, a, b, out=None):
            return self._binary(torch.mul, a, b, out)

        def divide(self, a, b, out=None):
            return self._binary(torch.div, a, b, out)

        def add(self, a, b, out=None):
            return self._binary(torch.add, a, b, out)

        def subtract(self, a, b, out=None):
            return self._binary(torch.sub, a, b, out)

    return TorchBackend()


def _cupy_factory() -> ArrayBackend:
    try:
        import cupy  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailableError(
            "FOAM_BACKEND=cupy requested but cupy is not installed; "
            "install cupy or unset FOAM_BACKEND"
        ) from exc

    class CupyBackend:  # pragma: no cover - requires cupy installed
        name = "cupy"

        @property
        def xp(self):
            return cupy

        def empty(self, shape, dtype):
            return cupy.empty(shape, dtype=dtype)

        def zeros(self, shape, dtype):
            return cupy.zeros(shape, dtype=dtype)

        def asarray(self, arr, dtype=None):
            return cupy.asarray(arr, dtype=dtype)

        def to_numpy(self, arr):
            return cupy.asnumpy(arr)

        def einsum(self, subscripts, *operands, out=None):
            r = cupy.einsum(subscripts, *map(cupy.asarray, operands))
            if out is None:
                return r
            out[...] = cupy.asnumpy(r)
            return out

        def matmul(self, a, b, out=None):
            r = cupy.matmul(cupy.asarray(a), cupy.asarray(b))
            if out is None:
                return r
            out[...] = cupy.asnumpy(r)
            return out

        def rfft(self, x, axis=-1):
            return cupy.asnumpy(cupy.fft.rfft(cupy.asarray(x), axis=axis))

        def irfft(self, x, n, axis=-1):
            return cupy.asnumpy(cupy.fft.irfft(cupy.asarray(x), n=n, axis=axis))

        def where(self, cond, a, b):
            return cupy.asnumpy(cupy.where(cupy.asarray(cond),
                                           cupy.asarray(a), cupy.asarray(b)))

        def _binary(self, fn, a, b, out):
            r = fn(cupy.asarray(a), cupy.asarray(b))
            if out is None:
                return r
            out[...] = cupy.asnumpy(r)
            return out

        def multiply(self, a, b, out=None):
            return self._binary(cupy.multiply, a, b, out)

        def divide(self, a, b, out=None):
            return self._binary(cupy.divide, a, b, out)

        def add(self, a, b, out=None):
            return self._binary(cupy.add, a, b, out)

        def subtract(self, a, b, out=None):
            return self._binary(cupy.subtract, a, b, out)

    return CupyBackend()


register_backend("torch", _torch_factory)
register_backend("cupy", _cupy_factory)
