"""Swappable array backend + precision policy + preallocated workspaces.

Every hot kernel in the model (spectral transforms, ocean stepping, the
coupler's regrid passes, the parallel transpose) runs on top of this seam
instead of calling ``numpy`` allocation primitives ad hoc:

* :class:`ArrayBackend` — the array substrate.  The default is NumPy;
  alternates register under a name and are selected with the
  ``FOAM_BACKEND`` environment variable (or explicitly via config).
  Backends that need an unavailable dependency (torch, cupy) stay
  registered but raise :class:`BackendUnavailableError` with an
  actionable message when selected.
* :class:`DTypePolicy` — the precision policy (``float32``/``float64``
  plus the matching complex type), selected with ``FOAM_DTYPE`` and
  threaded through the grid/spectral constructors instead of hard-coded
  ``float64``/``complex`` literals.
* :class:`Workspace` — a named, shape/dtype-keyed arena of reusable
  buffers.  Hot paths request scratch by name and get the same buffer
  back every step, so the steady-state allocation count of a step is
  (near) zero.  Hit/miss counts feed the profiler (``ws.hits`` /
  ``ws.misses`` per section), which is how the win is measured.

The contract that keeps the default configuration *bitwise identical* to
ad-hoc allocation: a workspace buffer holds exactly what the requesting
call site writes into it, the arithmetic performed on it is the same
sequence of NumPy ufunc applications as before, and only values that do
not escape the requesting step live in the arena.
"""

from repro.backend.core import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backend.kernels import (
    SpectralKernelPlan,
    fused_enabled,
    robert_filter,
)
from repro.backend.dtypes import (
    FLOAT32,
    FLOAT64,
    DTypePolicy,
    default_policy,
    dtype_policy,
    policy_from_name,
    set_default_dtype,
)
from repro.backend.workspace import (
    Workspace,
    arenas_disjoint,
    get_workspace,
    reset_workspaces,
    workspace_enabled,
    workspace_totals,
)

__all__ = [
    "ArrayBackend", "BackendUnavailableError", "NumpyBackend",
    "available_backends", "get_backend", "register_backend",
    "DTypePolicy", "FLOAT32", "FLOAT64", "default_policy", "dtype_policy",
    "policy_from_name", "set_default_dtype",
    "Workspace", "arenas_disjoint", "get_workspace", "reset_workspaces", "workspace_enabled",
    "workspace_totals",
    "SpectralKernelPlan", "fused_enabled", "robert_filter",
]
