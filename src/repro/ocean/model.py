"""The FOAM ocean model: z-coordinate primitive equations, triple-rate stepping.

This is the paper's centerpiece claim: *"We believe that the combination of
these techniques yields the most computationally efficient ocean model in
existence ... roughly a tenfold increase in the amount of simulated time
represented per unit of computation."*  The three techniques (paper, "The
FOAM Ocean Model"):

1. artificially slowed explicit free surface (:mod:`repro.ocean.barotropic`);
2. barotropic/baroclinic mode splitting — the 2-D surface system subcycles
   inside the internal step;
3. multi-rate subcycling of the internal dynamics themselves: the *fast*
   internal terms (Coriolis, baroclinic pressure gradient) run on a shorter
   step than the *slow* advective and diffusive terms.

:class:`OceanModel` integrates one coupling interval per :meth:`step` call,
taking the coupler's surface fluxes (stress, heat, fresh water) as boundary
conditions, and exposes SST and budget diagnostics.  All arithmetic is
vectorized over the full 3-D grid; the structure maps one-to-one onto the
2-D domain decomposition in :mod:`repro.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ocean.barotropic import BarotropicParams, BarotropicSolver
from repro.ocean.eos import buoyancy_frequency_sq, density_anomaly
from repro.ocean.filters import apply_polar_filter
from repro.ocean.grid import OceanGrid, world_topography
from repro.ocean.mixing import (
    PPMixingParams,
    convective_adjustment,
    mix_column_implicit,
    pp_viscosity,
    richardson_number,
)
from repro.ocean.operators import (
    advect_centered,
    biharmonic,
    ddx,
    ddy,
    flux_divergence,
)
from repro.backend import get_workspace
from repro.perf.profiler import profile_section
from repro.util.constants import (
    CP_SEAWATER,
    GRAVITY,
    RHO_SEAWATER,
    T_FREEZE_SEA,
)


@dataclass
class OceanParams:
    """Time stepping rates and dissipation settings."""

    dt_long: float = 6.0 * 3600.0        # advective/diffusive (coupling) step
    n_internal: int = 6                  # internal (fast) substeps per long step
    biharmonic_coeff: float | None = None  # m^4/s; resolution-scaled if None
    barotropic: BarotropicParams = field(default_factory=BarotropicParams)
    mixing: PPMixingParams = field(default_factory=PPMixingParams)
    polar_filter_lat: float = 60.0
    # deg C: the paper's -1.92 clamp.  May be a per-member array (e.g.
    # (nens, 1, 1)) broadcastable against the surface-temperature field.
    sst_clamp: float | np.ndarray = T_FREEZE_SEA - 273.15
    reference_salinity: float = 34.7
    # Optional Euler-backward corrector for the slow stage.  Off by default:
    # fast modes (inertial, internal waves) live inside the subcycled
    # internal loop where they are integrated forward-backward; wrapping a
    # multi-radian propagator in Matsuno amplifies instead of damping.
    matsuno: bool = False

    def __post_init__(self):
        # Same guard as eos.density_anomaly's scalar depth: a 0-d float64
        # array here would upcast every float32 surface-temperature clamp.
        if isinstance(self.sst_clamp, np.ndarray) and self.sst_clamp.ndim == 0:
            self.sst_clamp = float(self.sst_clamp)


@dataclass
class OceanState:
    """Prognostic ocean fields (temperature in Celsius, MOM convention)."""

    u: np.ndarray        # (L, ny, nx) baroclinic velocity (zero depth-mean)
    v: np.ndarray
    temp: np.ndarray     # (L, ny, nx) potential temperature, deg C
    salt: np.ndarray     # (L, ny, nx) salinity, psu
    eta: np.ndarray      # (ny, nx) free surface height, m
    ubar: np.ndarray     # (ny, nx) barotropic velocity
    vbar: np.ndarray
    time: float = 0.0

    def copy(self) -> "OceanState":
        return OceanState(*(getattr(self, k).copy() for k in
                            ("u", "v", "temp", "salt", "eta", "ubar", "vbar")),
                          time=self.time)


@dataclass
class OceanForcing:
    """Surface boundary conditions handed over by the coupler each long step."""

    taux: np.ndarray       # N/m^2, eastward stress on the ocean
    tauy: np.ndarray
    heat_flux: np.ndarray  # W/m^2, positive = into the ocean
    freshwater: np.ndarray  # kg m^-2 s^-1, positive = into the ocean (P - E + R)

    @classmethod
    def zeros(cls, ny: int, nx: int, dtype=np.float64,
              lead: tuple = ()) -> "OceanForcing":
        """Zero forcing; ``lead`` prepends batch (ensemble) axes."""
        z = np.zeros(tuple(lead) + (ny, nx), dtype=dtype)
        return cls(z.copy(), z.copy(), z.copy(), z.copy())


class OceanModel:
    """The FOAM parallel ocean model (Anderson & Tobis formulation)."""

    def __init__(self, grid: OceanGrid,
                 land_mask: np.ndarray | None = None,
                 depth: np.ndarray | None = None,
                 params: OceanParams | None = None):
        self.grid = grid
        self.params = params or OceanParams()
        self.policy = grid.policy
        fdt = self.policy.float_dtype
        if land_mask is None or depth is None:
            land_mask, depth = world_topography(grid)
        self.land = land_mask
        self.mask2d = ~land_mask
        self.depth = np.where(self.mask2d, depth, 0.0).astype(fdt, copy=False)
        # 3-D mask: level k active where the column is deep enough.
        self.mask3d = (grid.z_full[:, None, None] < self.depth[None]) & self.mask2d[None]
        # Active thickness per column (for depth means).
        self.dz3d = np.where(self.mask3d, grid.dz[:, None, None],
                             0.0).astype(fdt, copy=False)
        self.coldepth = np.maximum(self.dz3d.sum(axis=0),
                                   1e-9).astype(fdt, copy=False)
        self.baro = BarotropicSolver(grid, self.depth, self.mask2d,
                                     self.params.barotropic)
        # del^4 coefficient per latitude row, scaled to the local grid size so
        # the 2-grid (checkerboard) mode damps at the same rate everywhere
        # while staying inside the explicit stability bound
        # a4 * dt * (8/dx^2)^2 <= 2 (we use 1/4 of the limit).
        dloc = np.minimum(grid.dx, grid.dy)
        if self.params.biharmonic_coeff is None:
            self.a4 = (0.008 * dloc**4 / self.params.dt_long)[:, None]
        else:
            self.a4 = np.full((grid.ny, 1), self.params.biharmonic_coeff,
                              dtype=fdt)
        self.a4 = self.a4.astype(fdt, copy=False)
        # Harmonic (Laplacian) viscosity on momentum, also row-scaled; this is
        # the usual O(10^4) m^2/s eddy viscosity a ~2 degree ocean needs.
        self.a2 = (0.02 * dloc**2 / self.params.dt_long)[:, None].astype(
            fdt, copy=False)
        # Coriolis rotation factors for the internal substep, rebuilt only
        # when the substep length changes.
        self._rot_dt: float | None = None
        self._cosf: np.ndarray | None = None
        self._sinf: np.ndarray | None = None
        self.op_count = 0   # crude operation counter for the cost model

    # ------------------------------------------------------------------
    def initial_state(self, kind: str = "rest_stratified") -> OceanState:
        """Climatological-ish initial condition: warm tropics, cold poles/deep."""
        g = self.grid
        L = g.nlev
        shape = (L, g.ny, g.nx)
        lat = g.lats[:, None]
        sst = 27.0 * np.cos(lat) ** 2 - 1.0 * (1.0 - np.cos(lat) ** 2)
        decay = np.exp(-g.z_full / 800.0)
        temp = np.broadcast_to(
            2.0 + (sst[None] - 2.0) * decay[:, None, None], shape).copy()
        salt = np.full(shape, self.params.reference_salinity)
        # Subtropical salty surface lens.
        salt[0] += 0.8 * np.exp(-((np.degrees(lat) ** 2 - 25.0**2) / 900.0) ** 2)
        fdt = self.policy.float_dtype
        temp = np.where(self.mask3d, temp, 0.0).astype(fdt, copy=False)
        salt = np.where(self.mask3d, salt, 0.0).astype(fdt, copy=False)
        z2 = np.zeros((g.ny, g.nx), dtype=fdt)
        zero3 = np.zeros(shape, dtype=fdt)
        if kind == "rest_stratified":
            return OceanState(zero3.copy(), zero3.copy(), temp, salt,
                              z2.copy(), z2.copy(), z2.copy())
        if kind == "cold_uniform":
            # Snowball-style start: the whole ocean sits just above the
            # freezing clamp, no stratification, no salinity lens.
            cold = np.where(self.mask3d, -1.5, 0.0).astype(fdt, copy=False)
            salt_u = np.where(self.mask3d, self.params.reference_salinity,
                              0.0).astype(fdt, copy=False)
            return OceanState(zero3.copy(), zero3.copy(), cold, salt_u,
                              z2.copy(), z2.copy(), z2.copy())
        raise ValueError(f"unknown ocean initial state {kind!r}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _m3(self, field3d: np.ndarray) -> np.ndarray:
        """The 3-D mask, viewed to broadcast against ``field3d``.

        Serial fields are (L, ny, nx); ensemble-batched fields carry a
        member axis after the level axis, (L, E, ny, nx), so the mask gains
        a broadcasting singleton there.  Pure views — no copies, and the
        serial path sees the exact same array as before.
        """
        return self.mask3d if field3d.ndim == 3 else self.mask3d[:, None]

    def _dz3(self, field3d: np.ndarray) -> np.ndarray:
        """Active layer thickness, viewed like :meth:`_m3`."""
        return self.dz3d if field3d.ndim == 3 else self.dz3d[:, None]

    def depth_mean(self, field3d: np.ndarray) -> np.ndarray:
        """Thickness-weighted column mean over active levels."""
        return np.sum(field3d * self._dz3(field3d), axis=0) / self.coldepth

    def remove_depth_mean(self, field3d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = self.depth_mean(field3d)
        out = np.where(self._m3(field3d), field3d - mean[None], 0.0)
        return out, mean

    def total_velocity(self, state: OceanState) -> tuple[np.ndarray, np.ndarray]:
        u = np.where(self._m3(state.u), state.u + state.ubar[None], 0.0)
        v = np.where(self._m3(state.v), state.v + state.vbar[None], 0.0)
        return u, v

    def baroclinic_pressure_gradient(self, temp, salt):
        """(-1/rho0) grad of hydrostatic pressure from density anomalies."""
        g = self.grid
        rho = np.where(self._m3(temp), density_anomaly(temp, salt, 0.0), 0.0)
        # Pressure at layer centers: integrate rho from the surface down.
        wdz = rho * g.dz.reshape((-1,) + (1,) * (rho.ndim - 1))
        p_above = np.cumsum(wdz, axis=0) - wdz          # full layers above
        p = GRAVITY * (p_above + 0.5 * wdz)
        ws = get_workspace()
        pgx = ws.empty_like("ocean.pgx", p)
        pgy = ws.empty_like("ocean.pgy", p)
        for k in range(g.nlev):
            pgx[k] = ddx(p[k], g.dx, self.mask3d[k], centered_only=True)
            pgy[k] = ddy(p[k], g.dy, self.mask3d[k], centered_only=True)
        np.negative(pgx, out=pgx)
        pgx /= RHO_SEAWATER
        np.negative(pgy, out=pgy)
        pgy /= RHO_SEAWATER
        return pgx, pgy

    def vertical_velocity(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """w at layer *tops* (positive up), from discrete continuity, w=0 at bottom.

        Uses the same flux-divergence stencil as the tracer advection so a
        constant tracer is exactly preserved.
        """
        g = self.grid
        ws = get_workspace()
        div = ws.empty_like("ocean.div", u)
        for k in range(g.nlev):
            div[k] = flux_divergence(u[k], v[k], g.dx, g.dy, self.mask3d[k])
        # integrate from the bottom: w_top(k) = w_top(k+1) - dz_k div_k
        # (w_top is a workspace buffer: each internal substep consumes it
        # fully before the next call refills it).
        w_top = ws.empty_like("ocean.w_top", u)
        acc = ws.zeros_like("ocean.w_acc", u[0])
        for k in range(g.nlev - 1, -1, -1):
            acc -= g.dz[k] * div[k]
            w_top[k] = acc
        return w_top

    # ------------------------------------------------------------------
    # tracer advection (flux form: conserves content exactly)
    # ------------------------------------------------------------------
    def advect_tracer_horizontal(self, tracer: np.ndarray, u: np.ndarray,
                                 v: np.ndarray) -> np.ndarray:
        """Tendency -(u dC/dx + v dC/dy), advective form (the slow part).

        Advective form pairs with the advective-form vertical term in the
        internal loop so that a spatially constant tracer is *exactly*
        invariant — the split-rate analogue of discrete flux consistency.
        (A flux-form split would leave an uncancelled C div(u) term on one
        of the two rates, which grows with the Celsius offset of T and is
        violently unstable in shallow polar channels.)
        """
        g = self.grid
        return advect_centered(tracer, u, v, g.dx, g.dy, self._m3(tracer))

    def advect_tracer_vertical(self, tracer: np.ndarray, w_top: np.ndarray
                               ) -> np.ndarray:
        """Tendency -w dC/dz, advective form (the *fast*, wave-carrying part).

        This term couples the velocity field back into the density field —
        it carries the internal gravity and near-inertial waves — so the
        model evaluates it inside the subcycled internal loop, exactly the
        paper's "fastest parts of the internal dynamics".  ``w_top`` holds
        the upward velocity at layer tops (zero at the surface and floor by
        construction); gradients across inactive interfaces are dropped.
        """
        g = self.grid
        # dC/d(depth) at interior interfaces (between layer k-1 and k).
        dzi = (g.z_full[1:] - g.z_full[:-1]).reshape(
            (-1,) + (1,) * (tracer.ndim - 1))
        grad = (tracer[1:] - tracer[:-1]) / dzi           # dC/d(depth)
        m3 = self._m3(tracer)
        open_if = m3[:-1] & m3[1:]
        grad = np.where(open_if, grad, 0.0)
        # w dC/dz = -w dC/d(depth); average the two interface contributions.
        contrib = w_top[1:] * grad                        # at interfaces
        tend = get_workspace().zeros_like("ocean.adv_tend", tracer)
        tend[:-1] += 0.5 * contrib
        tend[1:] += 0.5 * contrib
        return np.where(m3, tend, 0.0)

    # ------------------------------------------------------------------
    # the triple-rate step
    # ------------------------------------------------------------------
    def step(self, state: OceanState, forcing: OceanForcing) -> OceanState:
        """Advance one long (coupling) step using the three-rate scheme.

        The *baroclinic* fields (u, v, T, S) are wrapped in a Matsuno
        (Euler-backward) predictor-corrector: a provisional pass, then the
        final update using increments evaluated at the provisional state.
        Matsuno damps the marginally neutral internal-gravity-wave coupling
        between the advective (long) and fast (internal) stages — the role
        the Robert filter plays in leapfrog ocean codes.

        The *barotropic* subsystem is deliberately OUTSIDE the corrector: it
        advances many external-wave radians per long step via its own stable
        forward-backward subcycle, and composing a multi-radian propagator
        with Matsuno is violently unstable.  It steps exactly once, driven by
        the depth-mean forcing diagnosed in the corrector pass.
        """
        if self.params.matsuno:
            star, _ = self._advance(state, forcing)
            incr, gxy = self._advance(star, forcing)
            out = state.copy()
            for name in ("u", "v", "temp", "salt"):
                setattr(out, name, getattr(state, name)
                        + (getattr(incr, name) - getattr(star, name)))
            self.op_count += self._ops_per_step()  # second evaluation
        else:
            out, gxy = self._advance(state, forcing)
        with profile_section("barotropic"):
            out.eta, out.ubar, out.vbar, _ = self.baro.step(
                state.eta, state.ubar, state.vbar, gxy[0], gxy[1],
                self.params.dt_long)
        g = self.grid
        for name in ("eta", "ubar", "vbar"):
            setattr(out, name, apply_polar_filter(
                getattr(out, name), g.lats, self.mask2d,
                self.params.polar_filter_lat))
        out.time = state.time + self.params.dt_long
        return out

    def _advance(self, state: OceanState, forcing: OceanForcing
                 ) -> tuple[OceanState, tuple[np.ndarray, np.ndarray]]:
        """One raw (uncorrected) baroclinic pass of the three-rate update.

        Returns the provisional state and the time-mean depth-averaged
        accelerations (gx, gy) that force the barotropic subsystem.
        """
        p = self.params
        g = self.grid
        s = state.copy()
        dt_long = p.dt_long
        dt_int = dt_long / p.n_internal

        # ---- slow terms, once per long step -----------------------------
        with profile_section("advection"):
            u_tot, v_tot = self.total_velocity(s)

            s.temp = s.temp + dt_long * self.advect_tracer_horizontal(s.temp, u_tot, v_tot)
            s.salt = s.salt + dt_long * self.advect_tracer_horizontal(s.salt, u_tot, v_tot)
            m3 = self._m3(s.u)
            s.u = s.u + dt_long * advect_centered(s.u, u_tot, v_tot, g.dx, g.dy,
                                                  m3)
            s.v = s.v + dt_long * advect_centered(s.v, u_tot, v_tot, g.dx, g.dy,
                                                  m3)

            # del^4 dissipation (A-grid mode control) on all prognostic fields,
            # plus harmonic eddy viscosity on momentum.
            from repro.ocean.operators import laplacian
            for f3 in (s.u, s.v, s.temp, s.salt):
                f3 -= dt_long * self.a4 * biharmonic(f3, g.dx, g.dy, m3)
            for f3 in (s.u, s.v):
                f3 += dt_long * self.a2 * laplacian(f3, g.dx, g.dy, m3)

        # Vertical mixing (PP81 steepened) + surface fluxes, implicit.
        with profile_section("mixing"):
            n_sq = buoyancy_frequency_sq(s.temp, s.salt, g.z_full)
            ri = richardson_number(s.u, s.v, n_sq, g.z_full)
            nu, kappa = pp_viscosity(ri, p.mixing)
            heat_in = forcing.heat_flux / (RHO_SEAWATER * CP_SEAWATER)   # K m/s
            # Virtual salt flux: fresh water dilutes surface salinity.
            salt_in = -forcing.freshwater * p.reference_salinity / RHO_SEAWATER
            s.temp = mix_column_implicit(s.temp, kappa, g.dz, dt_long, heat_in,
                                         mask=m3)
            s.salt = mix_column_implicit(s.salt, kappa, g.dz, dt_long, salt_in,
                                         mask=m3)
            s.u = mix_column_implicit(s.u, nu, g.dz, dt_long,
                                      forcing.taux / RHO_SEAWATER, mask=m3)
            s.v = mix_column_implicit(s.v, nu, g.dz, dt_long,
                                      forcing.tauy / RHO_SEAWATER, mask=m3)
            s.temp, s.salt = convective_adjustment(s.temp, s.salt, g.z_full, g.dz,
                                                   mask=m3)

        # The paper's sea-surface clamp at -1.92 C (ice formation handles the rest).
        s.temp[0] = np.where(self.mask2d, np.maximum(s.temp[0], p.sst_clamp), 0.0)

        # Mask everything that may have leaked onto land.
        for name in ("u", "v", "temp", "salt"):
            setattr(s, name, np.where(m3, getattr(s, name), 0.0))

        # ---- fast internal terms, subcycled -------------------------------
        # Forward-backward pairing: density (via vertical advection of the
        # stratification) first, then the pressure gradient from the *new*
        # density — the neutral integration of the internal-wave loop.
        ws = get_workspace()
        fdt = self.policy.float_dtype
        lead = s.u.shape[1:-2]                   # () serial, (nens,) batched
        gx_acc = ws.zeros("ocean.gx_acc", lead + (g.ny, g.nx), fdt)
        gy_acc = ws.zeros("ocean.gy_acc", lead + (g.ny, g.nx), fdt)
        if self._rot_dt != dt_int:
            self._rot_dt = dt_int
            self._cosf = np.cos(g.f * dt_int)[None]
            self._sinf = np.sin(g.f * dt_int)[None]
        cosf, sinf = self._cosf, self._sinf
        with profile_section("baroclinic"):
            for _ in range(p.n_internal):
                w_top = self.vertical_velocity(s.u, s.v)
                s.temp = s.temp + dt_int * self.advect_tracer_vertical(s.temp, w_top)
                s.salt = s.salt + dt_int * self.advect_tracer_vertical(s.salt, w_top)
                pgx, pgy = self.baroclinic_pressure_gradient(s.temp, s.salt)
                # Exact Coriolis rotation of the baroclinic shear.
                u_rot = s.u * cosf + s.v * sinf
                v_rot = -s.u * sinf + s.v * cosf
                s.u = u_rot + dt_int * pgx
                s.v = v_rot + dt_int * pgy
                # Project out the depth mean; it belongs to the barotropic mode.
                s.u, gu = self.remove_depth_mean(s.u)
                s.v, gv = self.remove_depth_mean(s.v)
                gx_acc += gu / dt_int
                gy_acc += gv / dt_int

        # Time-mean depth-averaged acceleration over the long step, plus the
        # depth-mean wind stress: this is what drives the 2-D subsystem.
        gx = gx_acc / p.n_internal + np.where(
            self.mask2d, forcing.taux / (RHO_SEAWATER * self.coldepth), 0.0)
        gy = gy_acc / p.n_internal + np.where(
            self.mask2d, forcing.tauy / (RHO_SEAWATER * self.coldepth), 0.0)

        # ---- polar filter (baroclinic fields, 3-D mask-aware) ---------------
        for name in ("temp", "salt", "u", "v"):
            setattr(s, name, apply_polar_filter(
                getattr(s, name), g.lats, m3, p.polar_filter_lat))
            setattr(s, name, np.where(m3, getattr(s, name), 0.0))

        s.time = state.time + dt_long
        self.op_count += self._ops_per_step()
        return s, (gx, gy)

    # ------------------------------------------------------------------
    def _ops_per_step(self) -> int:
        """Rough floating-point op count of one long step (for the cost model)."""
        n3 = int(self.mask3d.sum())
        n2 = int(self.mask2d.sum())
        nsub = self.baro.n_substeps(self.params.dt_long / self.params.n_internal)
        return (250 * n3                    # advection + dissipation + mixing
                + self.params.n_internal * 60 * n3     # fast internal terms
                + self.params.n_internal * nsub * 30 * n2)  # barotropic subcycle

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def sst(self, state: OceanState) -> np.ndarray:
        """Sea surface temperature (deg C), NaN on land."""
        return np.where(self.mask2d, state.temp[0], np.nan)

    def mean_temperature(self, state: OceanState) -> float:
        vol = self.dz3d * self.grid.cell_areas()[None]
        return float(np.sum(state.temp * vol) / np.sum(vol))

    def mean_salinity(self, state: OceanState) -> float:
        vol = self.dz3d * self.grid.cell_areas()[None]
        return float(np.sum(state.salt * vol) / np.sum(vol))

    def total_kinetic_energy(self, state: OceanState) -> float:
        u, v = self.total_velocity(state)
        vol = self.dz3d * self.grid.cell_areas()[None]
        return float(0.5 * RHO_SEAWATER * np.sum((u**2 + v**2) * vol))

    def run(self, state: OceanState, nsteps: int,
            forcing: OceanForcing | None = None) -> OceanState:
        if forcing is None:
            forcing = OceanForcing.zeros(self.grid.ny, self.grid.nx)
        for _ in range(nsteps):
            state = self.step(state, forcing)
        return state
