"""Ocean grid: unstaggered Mercator mesh, stretched z levels, world topography.

Paper, "The FOAM Ocean Model": *"A simple, unstaggered Mercator 128 x 128
point grid is used, yielding a discretization of approximately 1.4 degrees
latitude by 2.8 degrees longitude."*  On a Mercator mesh the latitude rows
are spaced so that dy = dx cos(lat) — the grid is locally square, which is
why a single A-grid stencil serves everywhere.

The topography is "somewhat tuned to preserve basin topology at the
represented resolution but is not smoothed": :func:`world_topography`
generates an idealized continental layout with the correct basin topology
(Atlantic, Pacific, Indian, Arctic and Southern oceans; the Americas,
Eurasia-Africa, Australia, Antarctica, Greenland) at any resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import DTypePolicy, policy_from_name
from repro.util.constants import EARTH_RADIUS, OMEGA


def mercator_latitudes(ny: int, lat_max_deg: float = 72.0) -> np.ndarray:
    """Row latitudes (radians, S->N) equally spaced in Mercator y.

    y = ln(tan(pi/4 + lat/2)); rows are uniform in y between +-lat_max, so
    dy_physical = dx_physical * cos(lat) holds row by row.
    """
    if ny < 4:
        raise ValueError(f"need at least 4 latitude rows, got {ny}")
    y_max = np.log(np.tan(np.pi / 4.0 + np.deg2rad(lat_max_deg) / 2.0))
    y = np.linspace(-y_max, y_max, ny)
    return 2.0 * (np.arctan(np.exp(y)) - np.pi / 4.0)


def stretched_depths(nlev: int = 16, total_depth: float = 5000.0,
                     surface_layer: float = 25.0) -> np.ndarray:
    """Layer interface depths (m, nlev+1 values from 0 down), surface-refined.

    Geometric stretching: thin layers near the surface ("a stretched vertical
    coordinate maximizing resolution in the upper layers" — paper), thick in
    the abyss.  The stretching ratio is solved so the column sums exactly.
    """
    if nlev < 2:
        raise ValueError(f"need at least 2 levels, got {nlev}")
    if surface_layer * nlev >= total_depth:
        raise ValueError("surface_layer too thick for requested total depth")
    # Solve sum_{k=0}^{n-1} h0 r^k = D for r by bisection.
    lo, hi = 1.0 + 1e-9, 3.0
    for _ in range(200):
        r = 0.5 * (lo + hi)
        s = surface_layer * (r**nlev - 1.0) / (r - 1.0)
        if s < total_depth:
            lo = r
        else:
            hi = r
    r = 0.5 * (lo + hi)
    h = surface_layer * r ** np.arange(nlev)
    h *= total_depth / h.sum()
    return np.concatenate([[0.0], np.cumsum(h)])


@dataclass
class OceanGrid:
    """Geometry and masks for the A-grid ocean model."""

    nx: int
    ny: int
    nlev: int = 16
    lat_max_deg: float = 72.0
    total_depth: float = 5000.0
    dtype: str | DTypePolicy | None = None
    rotation_factor: float = 1.0    # planetary rotation rate / Earth's

    lats: np.ndarray = field(init=False)       # (ny,), radians
    lons: np.ndarray = field(init=False)       # (nx,), radians
    dx: np.ndarray = field(init=False)         # (ny,), meters, per row
    dy: np.ndarray = field(init=False)         # (ny,), meters, per row
    z_half: np.ndarray = field(init=False)     # (nlev+1,), interface depths (m)
    z_full: np.ndarray = field(init=False)     # (nlev,), layer centers
    dz: np.ndarray = field(init=False)         # (nlev,), layer thicknesses
    f: np.ndarray = field(init=False)          # (ny, 1) Coriolis parameter

    def __post_init__(self):
        if self.nx < 4:
            raise ValueError(f"nx must be >= 4, got {self.nx}")
        # Coordinates stay float64 (they drive mask/topography decisions);
        # metric and stratification arrays that enter the stepping kernels
        # carry the policy precision.
        self.policy = policy_from_name(self.dtype)
        fdt = self.policy.float_dtype
        self.lats = mercator_latitudes(self.ny, self.lat_max_deg)
        self.lons = 2.0 * np.pi * np.arange(self.nx) / self.nx
        dlon = 2.0 * np.pi / self.nx
        self.dx = (EARTH_RADIUS * np.cos(self.lats) * dlon).astype(fdt, copy=False)
        # Mercator: dy = dx exactly on this mesh; store row spacing from lats.
        dlat = np.gradient(self.lats)
        self.dy = (EARTH_RADIUS * dlat).astype(fdt, copy=False)
        z_half64 = stretched_depths(self.nlev, self.total_depth)
        self.z_half = z_half64.astype(fdt, copy=False)
        self.z_full = (0.5 * (z_half64[:-1] + z_half64[1:])).astype(fdt, copy=False)
        self.dz = np.diff(z_half64).astype(fdt, copy=False)
        self.f = (2.0 * (OMEGA * float(self.rotation_factor))
                  * np.sin(self.lats))[:, None].astype(fdt, copy=False)

    @property
    def lat_degrees(self) -> np.ndarray:
        return np.degrees(self.lats)

    @property
    def lon_degrees(self) -> np.ndarray:
        return np.degrees(self.lons)

    def cell_areas(self) -> np.ndarray:
        """(ny, nx) cell areas in m^2."""
        return np.repeat(((self.dx * self.dy)[:, None]), self.nx, axis=1)


def _box(lat_deg, lon_deg, lat_lo, lat_hi, lon_lo, lon_hi):
    """Boolean box on the grid, tolerant of lon wraparound."""
    latm = (lat_deg >= lat_lo) & (lat_deg <= lat_hi)
    if lon_lo <= lon_hi:
        lonm = (lon_deg >= lon_lo) & (lon_deg <= lon_hi)
    else:
        lonm = (lon_deg >= lon_lo) | (lon_deg <= lon_hi)
    return latm[:, None] & lonm[None, :]


def world_topography(grid: OceanGrid) -> tuple[np.ndarray, np.ndarray]:
    """(land_mask, depth) with earth-like basin topology at any resolution.

    ``land_mask`` is True on land; ``depth`` (m) is the column depth, zero on
    land, with continental shelves along coasts.  The layout is an idealized
    rendering of the real continents — the paper notes its topography was
    hand-tuned at 128x128 to keep basins connected, which this generator
    guarantees by construction: the Atlantic, Pacific and Indian oceans all
    open into the Southern Ocean; the Arctic connects via the N Atlantic;
    the Drake Passage stays open.
    """
    lat = grid.lat_degrees
    lon = grid.lon_degrees
    land = np.zeros((grid.ny, grid.nx), dtype=bool)

    # The Americas: a sinuous meridional barrier ~ lon 240-300.
    land |= _box(lat, lon, 10, 70, 235, 300)       # North America
    land |= _box(lat, lon, -10, 12, 255, 300)      # Central America bridge
    land |= _box(lat, lon, -55, -8, 280, 325)      # South America
    # Eurasia + Africa: the big landmass, lon ~ 0-140 (Africa south to -35).
    land |= _box(lat, lon, 35, 75, 0, 140)         # Eurasia
    land |= _box(lat, lon, -35, 37, 342, 360)      # W Africa (wraps)
    land |= _box(lat, lon, -35, 37, 0, 52)         # Africa main block
    land |= _box(lat, lon, 5, 35, 52, 90)          # Arabia / India
    land |= _box(lat, lon, 20, 40, 90, 122)        # SE Asia shoulder
    # Australia and Antarctica, Greenland.
    land |= _box(lat, lon, -40, -12, 113, 154)     # Australia
    land |= _box(lat, lon, -90, -66, 0, 360)       # Antarctica
    land |= _box(lat, lon, 60, 84, 300, 335)       # Greenland

    # Guarantee the critical straits stay open at any resolution.
    land &= ~_box(lat, lon, -64, -49.5, 285, 305)  # Drake Passage
    land &= ~_box(lat, lon, -45, -36, 10, 25)      # Agulhas corridor
    land &= ~_box(lat, lon, -20, 10, 40, 100)      # Indian Ocean open
    land &= ~_box(lat, lon, 50, 80, 335, 355)      # Nordic seas / Arctic inflow

    depth = np.where(land, 0.0, grid.total_depth * 0.85)
    # Continental shelves: any ocean cell adjacent to land is shallower.
    shelf = np.zeros_like(land)
    shelf |= np.roll(land, 1, axis=1) | np.roll(land, -1, axis=1)
    shelf[1:] |= land[:-1]
    shelf[:-1] |= land[1:]
    shelf &= ~land
    depth = np.where(shelf, 0.35 * grid.total_depth, depth)
    # Mid-ocean ridge flavor in the Atlantic (not smoothed, per the paper).
    ridge = _box(lat, lon, -40, 40, 325, 335)
    depth = np.where(ridge & ~land & ~shelf, 0.55 * grid.total_depth, depth)
    return land, depth


def aquaplanet_topography(grid: OceanGrid) -> tuple[np.ndarray, np.ndarray]:
    """All-ocean world at uniform depth (tests and idealized runs)."""
    land = np.zeros((grid.ny, grid.nx), dtype=bool)
    depth = np.full((grid.ny, grid.nx), grid.total_depth * 0.85)
    return land, depth


def paleo_topography(grid: OceanGrid) -> tuple[np.ndarray, np.ndarray]:
    """(land_mask, depth) for an idealized Pangaea-like supercontinent.

    One connected landmass straddling the equator on the prime-meridian side
    of the planet, a circumglobal Panthalassa ocean everywhere else, and a
    shallow Tethys-style embayment biting into the eastern margin.  Built
    from the same box primitives as :func:`world_topography`, so the shelf
    and ridge treatment match; no polar caps, so the polar rows stay a
    connected channel at any resolution.
    """
    lat = grid.lat_degrees
    lon = grid.lon_degrees
    land = np.zeros((grid.ny, grid.nx), dtype=bool)

    # The supercontinent: widest at the equator, tapering poleward.
    land |= _box(lat, lon, -45, 55, 330, 360)      # western lobe (wraps)
    land |= _box(lat, lon, -45, 55, 0, 40)
    land |= _box(lat, lon, -25, 35, 40, 65)        # equatorial bulge east
    land |= _box(lat, lon, 20, 50, 65, 85)         # northeastern arm
    land |= _box(lat, lon, -50, -20, 305, 335)     # southwestern arm

    # The Tethys embayment: a shallow eastern bite into the bulge.
    tethys = _box(lat, lon, -12, 15, 45, 70)
    land &= ~tethys

    depth = np.where(land, 0.0, grid.total_depth * 0.85)
    shelf = np.zeros_like(land)
    shelf |= np.roll(land, 1, axis=1) | np.roll(land, -1, axis=1)
    shelf[1:] |= land[:-1]
    shelf[:-1] |= land[1:]
    shelf &= ~land
    depth = np.where(shelf, 0.35 * grid.total_depth, depth)
    depth = np.where(tethys & ~land & ~shelf, 0.15 * grid.total_depth, depth)
    return land, depth


#: Named topography generators (the FoamConfig ``topography`` knob).
TOPOGRAPHIES = {
    "world": world_topography,
    "aquaplanet": aquaplanet_topography,
    "paleo": paleo_topography,
}


def topography_by_name(name: str):
    """The generator for a named topography (raises on unknown names)."""
    try:
        return TOPOGRAPHIES[name]
    except KeyError:
        raise ValueError(f"unknown topography {name!r}; "
                         f"choose from {sorted(TOPOGRAPHIES)}") from None
