"""Slab (mixed-layer) ocean: a motionless heat reservoir under the coupler.

The classic cheap lower boundary for atmosphere-focused experiments: the
ocean is a fixed-depth mixed layer whose temperature integrates the net
surface heat flux, with the paper's -1.92 C clamp (sea-ice formation takes
over below it).  No currents, no barotropic mode, no tracer transport — one
:meth:`step` costs a handful of 2-D array operations, so slab scenarios run
an order of magnitude faster than the full triple-rate ocean.

:class:`SlabOceanModel` subclasses :class:`~repro.ocean.model.OceanModel`
and keeps its full state/diagnostic interface (same ``OceanState`` shapes,
``sst``, KE/heat-content diagnostics, masks), so the coupler, the batched
ensemble driver, and the concurrent rank pools all drive it unchanged —
``FoamConfig(ocean_mode="slab")`` is the only switch.
"""

from __future__ import annotations

import numpy as np

from repro.ocean.model import OceanForcing, OceanModel, OceanState
from repro.perf.profiler import profile_section
from repro.util.constants import CP_SEAWATER, RHO_SEAWATER


class SlabOceanModel(OceanModel):
    """A mixed-layer-only ocean with the OceanModel interface."""

    def __init__(self, *args, mixed_layer_depth: float = 50.0, **kwargs):
        super().__init__(*args, **kwargs)
        if mixed_layer_depth <= 0:
            raise ValueError(f"mixed_layer_depth must be positive, "
                             f"got {mixed_layer_depth}")
        self.mixed_layer_depth = float(mixed_layer_depth)
        # Effective heat-capacity depth per column: the mixed layer, but
        # never deeper than the water column itself (shelves).
        fdt = self.policy.float_dtype
        self._h_eff = np.where(
            self.mask2d,
            np.minimum(self.depth, self.mixed_layer_depth),
            1.0).astype(fdt, copy=False)

    # ------------------------------------------------------------------
    def step(self, state: OceanState, forcing: OceanForcing) -> OceanState:
        """One coupling interval of the mixed-layer heat budget.

        dT/dt = Q_net / (rho c_p h); freshwater only dilutes surface
        salinity (virtual salt flux), velocities and the free surface stay
        identically zero.  Supports ensemble-batched forcing via the same
        leading-axis broadcasting as the full model.
        """
        with profile_section("mixed_layer"):
            s = state.copy()
            dt = self.params.dt_long
            heat_cap = RHO_SEAWATER * CP_SEAWATER * self._h_eff
            t0 = s.temp[0] + forcing.heat_flux * dt / heat_cap
            s.temp[0] = np.where(self.mask2d,
                                 np.maximum(t0, self.params.sst_clamp), 0.0)
            salt_in = (-forcing.freshwater * self.params.reference_salinity
                       / RHO_SEAWATER)
            s.salt[0] = np.where(self.mask2d,
                                 s.salt[0] + salt_in * dt / self._h_eff, 0.0)
            s.time = state.time + dt
            self.op_count += self._ops_per_step()
        return s

    def _ops_per_step(self) -> int:
        """Slab cost: a few 2-D passes over the surface layer."""
        return 10 * int(self.mask2d.sum())
