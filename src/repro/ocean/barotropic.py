"""The split, artificially slowed barotropic (free-surface) subsystem.

Two of the paper's three ocean speedup techniques live here:

1. *Slowed free surface* — "the free surface is explicitly represented, but
   its dynamics are artificially slowed, an approach which has been shown to
   make little difference to the internal motions" (Tobis 1996; Tobis &
   Anderson 1997).  The whole barotropic momentum tendency is divided by
   ``gamma = 1/slow_factor**2``: every *steady* balance (geostrophy, Sverdrup,
   the equilibrium sea surface height) is exactly unchanged, but the mode's
   adjustment — the external gravity wave — propagates ``slow_factor`` times
   slower, relaxing the CFL limit by the same factor.  This is the essential
   trick: barotropic adjustment takes hours in nature and days in the slowed
   model, both negligible against the decadal dynamics of interest.

2. *Mode splitting* — "the still relatively fast ... free surface is modeled
   as a separate two-dimensional system coupled to the internal ocean in a
   way that correctly reproduces the free surface while allowing a much
   longer time step in the internal ocean" (Killworth et al. 1991).  The 2-D
   system subcycles with its own short step inside each internal step,
   driven by the depth-averaged forcing ``gx, gy`` handed over by the 3-D
   model.

The scheme is forward-backward (eta first, then velocities using the new
eta), the standard choice for explicit free-surface stepping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ocean.grid import OceanGrid
from repro.ocean.operators import ddx, ddy, flux_divergence
from repro.util.constants import GRAVITY


@dataclass
class BarotropicParams:
    slow_factor: float = 0.1       # external wave speed multiplier (the "slowing")
    bottom_drag: float = 3.0e-6    # s^-1 linear drag (~4 day spin-down)
    cfl_safety: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.slow_factor <= 1.0:
            raise ValueError(f"slow_factor must be in (0, 1], got {self.slow_factor}")

    @property
    def gamma(self) -> float:
        """Inertia multiplier of the barotropic mode (1 = no slowing)."""
        return 1.0 / self.slow_factor**2

    @property
    def effective_wave_speed_factor(self) -> float:
        """External gravity waves travel this fraction of their true speed."""
        return self.slow_factor


class BarotropicSolver:
    """Explicit 2-D free-surface solver on the ocean A-grid."""

    def __init__(self, grid: OceanGrid, depth: np.ndarray, mask: np.ndarray,
                 params: BarotropicParams = BarotropicParams()):
        self.grid = grid
        self.depth = np.where(mask, np.maximum(depth, 10.0),
                              0.0).astype(grid.policy.float_dtype, copy=False)
        self.mask = mask
        self.params = params
        c = np.sqrt(GRAVITY * max(self.depth.max(), 1.0)) * params.slow_factor
        dmin = min(grid.dx.min(), grid.dy.min())
        self.dt_max = params.cfl_safety * dmin / max(c, 1e-6) / np.sqrt(2.0)

    def n_substeps(self, dt_outer: float) -> int:
        """Number of barotropic substeps needed to cover ``dt_outer`` stably."""
        return max(1, int(np.ceil(dt_outer / self.dt_max)))

    def step(self, eta: np.ndarray, ubar: np.ndarray, vbar: np.ndarray,
             gx: np.ndarray, gy: np.ndarray, dt_outer: float
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Advance (eta, ubar, vbar) by ``dt_outer`` via stable substeps.

        ``gx, gy`` are the depth-averaged accelerations (m/s^2) from the 3-D
        model (wind stress, depth-mean pressure-gradient and Coriolis
        residuals), held constant across the subcycle.

        Returns the new fields and the number of substeps taken.
        """
        n = self.n_substeps(dt_outer)
        dt = dt_outer / n
        gamma = self.params.gamma
        dt_slow = dt / gamma            # the slowed momentum time increment
        drag = self.params.bottom_drag
        m = self.mask
        f = self.grid.f
        # The rotation factors are constant across the subcycle; hoist them.
        cosf = np.cos(f * dt_slow)
        sinf = np.sin(f * dt_slow)
        for _ in range(n):
            # Forward step of the surface (flux form: globally conservative).
            div = flux_divergence(self.depth * ubar, self.depth * vbar,
                                  self.grid.dx, self.grid.dy, m)
            eta = np.where(m, eta - dt * div, 0.0)
            # Backward step of velocity with the *new* eta (forward-backward).
            # Every momentum term advances with dt/gamma: steady balances are
            # untouched, the adjustment dynamics run gamma times slower.
            detax = ddx(eta, self.grid.dx, m)
            detay = ddy(eta, self.grid.dy, m)
            # Exact Coriolis rotation keeps the (slowed) inertial mode neutral.
            u_rot = ubar * cosf + vbar * sinf
            v_rot = -ubar * sinf + vbar * cosf
            # Wave dynamics and forcing run in slowed time; bottom friction
            # stays at the physical rate so transients spin down on the real
            # frictional time scale instead of gamma times slower.
            ubar = u_rot + dt_slow * (-GRAVITY * detax + gx) - dt * drag * u_rot
            vbar = v_rot + dt_slow * (-GRAVITY * detay + gy) - dt * drag * v_rot
            ubar = np.where(m, ubar, 0.0)
            vbar = np.where(m, vbar, 0.0)
        return eta, ubar, vbar, n

    def mean_sea_level(self, eta: np.ndarray) -> float:
        """Area-weighted mean of eta over ocean (conserved by stepping)."""
        areas = self.grid.cell_areas()
        w = np.where(self.mask, areas, 0.0)
        return float(np.sum(eta * w) / np.sum(w))
