"""Vertical mixing: Pacanowski-Philander (1981) with a steeper Ri dependence.

Paper: *"The ocean model uses the vertical mixing scheme of [Pacanowski &
Philander 1981] but with a steeper Reynolds [Richardson] number dependency
consistent with the observational analysis of [Peters, Gregg & Toole 1988].
The revised mixing values appear to improve the tropical Pacific SST field
by reducing the model cold bias in the west equatorial Pacific."*

PP81:  nu = nu0 / (1 + a Ri)^n + nu_b,   kappa = nu / (1 + a Ri) + kappa_b
with n = 2 originally; FOAM's revision steepens the exponent.  Convective
instability (Ri < 0) gets the large convective-adjustment diffusivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import get_workspace


@dataclass(frozen=True)
class PPMixingParams:
    nu0: float = 5.0e-3          # m^2/s, maximum shear-driven viscosity
    alpha: float = 5.0
    exponent: float = 3.0        # FOAM's steepened value (PP81 used 2)
    nu_background: float = 1.0e-4
    kappa_background: float = 1.0e-5
    convective_kappa: float = 1.0  # m^2/s applied where Ri < 0 (unstable)
    ri_max: float = 100.0


def richardson_number(u: np.ndarray, v: np.ndarray, n_sq: np.ndarray,
                      z_full: np.ndarray) -> np.ndarray:
    """Gradient Richardson number at interior interfaces: Ri = N^2 / |dU/dz|^2."""
    dz = (z_full[1:] - z_full[:-1]).reshape((-1,) + (1,) * (u.ndim - 1))
    # Workspace-resident chain: same op sequence (difference in the field
    # dtype, division in the promoted dtype), only the Ri quotient escapes.
    ws = get_workspace()
    shape = u[1:].shape
    rdt = np.result_type(u.dtype, dz.dtype)
    du = np.subtract(u[1:], u[:-1], out=ws.empty("mix.ri.dus", shape, u.dtype))
    du = np.divide(du, dz, out=ws.empty("mix.ri.du", shape, rdt))
    dv = np.subtract(v[1:], v[:-1], out=ws.empty("mix.ri.dvs", shape, v.dtype))
    dv = np.divide(dv, dz, out=ws.empty("mix.ri.dv", shape, rdt))
    np.multiply(du, du, out=du)
    np.multiply(dv, dv, out=dv)
    shear2 = np.add(du, dv, out=du)
    np.add(shear2, 1e-10, out=shear2)
    return n_sq / shear2


def pp_viscosity(ri: np.ndarray, p: PPMixingParams = PPMixingParams()
                 ) -> tuple[np.ndarray, np.ndarray]:
    """(viscosity, diffusivity) at interfaces from the Richardson number."""
    # Workspace-resident chain with the shared ``nu0 / denom**exponent``
    # factor computed once (it is a pure expression — bitwise identical to
    # evaluating it twice); only the np.where outputs escape.
    ws = get_workspace()
    denom = np.clip(ri, 0.0, p.ri_max,
                    out=ws.empty("mix.pp.ric", ri.shape, ri.dtype))
    np.multiply(denom, p.alpha, out=denom)
    np.add(denom, 1.0, out=denom)
    shear_nu = np.power(denom, p.exponent,
                        out=ws.empty("mix.pp.pow", ri.shape, denom.dtype))
    np.divide(p.nu0, shear_nu, out=shear_nu)
    kappa = np.divide(shear_nu, denom,
                      out=ws.empty("mix.pp.kap", ri.shape, denom.dtype))
    np.add(kappa, p.kappa_background, out=kappa)
    nu = np.add(shear_nu, p.nu_background, out=shear_nu)
    unstable = ri < 0.0
    return (np.where(unstable, p.convective_kappa, nu),
            np.where(unstable, p.convective_kappa, kappa))


def mix_column_implicit(field: np.ndarray, kappa_half: np.ndarray,
                        dz: np.ndarray, dt: float,
                        surface_flux: np.ndarray | None = None,
                        mask: np.ndarray | None = None) -> np.ndarray:
    """Implicit vertical diffusion of (nlev, ...) with interface diffusivities.

    ``surface_flux`` (units of field times m/s) enters the top layer.
    Zero flux through the bottom.  ``mask`` (L, ...) marks active cells;
    interfaces touching an inactive cell carry no flux (the sea floor).
    Uses the shared tridiagonal solver.
    """
    from repro.atmosphere.physics.boundary_layer import solve_tridiagonal

    if mask is not None:
        kappa_half = np.where(mask[:-1] & mask[1:], kappa_half, 0.0)
    L = field.shape[0]
    dzf = dz.reshape((-1,) + (1,) * (field.ndim - 1))
    dzh = 0.5 * (dzf[:-1] + dzf[1:])
    ws = get_workspace()
    a = ws.zeros_like("mix.a", field)
    c = ws.zeros_like("mix.c", field)
    a[1:] = -dt * kappa_half / (dzf[1:] * dzh)
    c[:-1] = -dt * kappa_half / (dzf[:-1] * dzh)
    b = np.subtract(1.0, a, out=ws.empty_like("mix.b", field))
    b -= c
    rhs = field.copy()
    if surface_flux is not None:
        rhs[0] = rhs[0] + dt * surface_flux / dzf[0]
    return solve_tridiagonal(a, b, c, rhs)


def convective_adjustment(temp: np.ndarray, salt: np.ndarray,
                          z_full: np.ndarray, dz: np.ndarray,
                          passes: int = 3,
                          mask: np.ndarray | None = None
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Classic pairwise convective adjustment: homogenize unstable pairs.

    Conserves the column heat and salt content exactly (thickness-weighted
    means); repeated passes handle deep instabilities.  ``mask`` (L, ...)
    marks active cells; a pair is only adjusted when both levels are active
    (inactive cells hold placeholder values that must never mix in).
    """
    from repro.ocean.eos import density_anomaly

    t = temp.copy()
    s = salt.copy()
    L = t.shape[0]
    dzf = dz.reshape((-1,) + (1,) * (t.ndim - 1))
    for _ in range(passes):
        rho = density_anomaly(t, s, 0.0)
        for k in range(L - 1):
            unstable = rho[k] > rho[k + 1] + 1e-12
            if mask is not None:
                unstable &= mask[k] & mask[k + 1]
            if not np.any(unstable):
                continue
            w0 = dzf[k] / (dzf[k] + dzf[k + 1])
            w1 = 1.0 - w0
            t_mix = w0 * t[k] + w1 * t[k + 1]
            s_mix = w0 * s[k] + w1 * s[k + 1]
            t[k] = np.where(unstable, t_mix, t[k])
            t[k + 1] = np.where(unstable, t_mix, t[k + 1])
            s[k] = np.where(unstable, s_mix, s[k])
            s[k + 1] = np.where(unstable, s_mix, s[k + 1])
            rho = density_anomaly(t, s, 0.0)
    return t, s
