"""Polar Fourier filter for the ocean grid.

Paper: *"A spatial filter similar to the sort used in atmospheric models
[CCM1] is used to maintain numerical stability in the Arctic."*  Poleward of
a critical latitude the zonal grid spacing shrinks as cos(lat) and the CFL
condition would otherwise force a tiny time step; the classic fix is to
damp zonal wavenumbers that the converged meridians cannot stably carry.

The filter multiplies each row's zonal Fourier spectrum by
``min(1, (cos(lat)/cos(lat_crit)) * (m_crit/m))`` — wavenumbers resolvable at
the critical latitude pass untouched, higher ones are attenuated in
proportion to the meridian convergence.  Rows with any land are filtered in
segments? No — following the original models, land rows are simply exempt
(the Arctic rows of FOAM's grid are open ocean on this topography).
"""

from __future__ import annotations

import numpy as np


def polar_filter_factors(nx: int, coslat_row: float, coslat_crit: float) -> np.ndarray:
    """Attenuation per rfft wavenumber for one row."""
    m = np.arange(nx // 2 + 1, dtype=float)
    if coslat_row >= coslat_crit or coslat_row <= 0.0:
        return np.ones_like(m)
    # Full pass below the cutoff wavenumber set by the meridian convergence,
    # quadratic roll-off above it; the zonal mean always passes.
    m_cut = max(1.0, (coslat_row / coslat_crit) * (nx // 2))
    factors = np.minimum(1.0, (m_cut / np.maximum(m, 1e-9)) ** 2)
    factors[0] = 1.0
    return factors


def masked_zonal_smooth(row: np.ndarray, row_mask: np.ndarray,
                        passes: int) -> np.ndarray:
    """Mask-aware 1-2-1 zonal smoother for rows with coastline.

    Each pass multiplies wavenumber k by (0.5 + 0.5 cos(k dx)) on open water;
    weights of land neighbours are folded back into the center so land values
    never leak into the ocean and the masked row sum is preserved per pass
    up to the no-flux closure.  ``row`` has shape (..., nx).
    """
    out = row.copy()
    east_open = row_mask & np.roll(row_mask, -1)
    west_open = row_mask & np.roll(row_mask, 1)
    for _ in range(passes):
        east = np.roll(out, -1, axis=-1)
        west = np.roll(out, 1, axis=-1)
        w_e = np.where(east_open, 0.25, 0.0)
        w_w = np.where(west_open, 0.25, 0.0)
        w_c = 1.0 - w_e - w_w
        out = np.where(row_mask, w_c * out + w_e * east + w_w * west, out)
    return out


def apply_polar_filter(field: np.ndarray, lats: np.ndarray, mask: np.ndarray,
                       lat_crit_deg: float = 60.0) -> np.ndarray:
    """Filter rows poleward of ``lat_crit_deg``.

    Fully open rows get the exact Fourier filter; rows containing closed
    cells (coastline, or sea floor intersecting a deep level — a periodic
    FFT would smear those placeholder values into the sea) get the
    mask-aware 1-2-1 smoother with a pass count matched to the meridian
    convergence.

    ``field`` is (..., ny, nx); ``mask`` is (ny, nx) for 2-D fields or the
    full (..., ny, nx) 3-D mask for level fields.  The zonal mean of open
    rows is preserved exactly (wavenumber zero unfiltered).
    """
    out = field.copy()
    nx = field.shape[-1]
    coslat_crit = np.cos(np.deg2rad(lat_crit_deg))
    coslat = np.cos(lats)
    for j in range(len(lats)):
        if coslat[j] >= coslat_crit:
            continue
        row_mask = mask[..., j, :]        # (nx,) or (L, nx)
        slab = out[..., j, :]
        if row_mask.all():
            factors = polar_filter_factors(nx, float(coslat[j]), float(coslat_crit))
            spec = np.fft.rfft(slab, axis=-1)
            spec *= factors
            out[..., j, :] = np.fft.irfft(spec, n=nx, axis=-1)
        else:
            # Pass count grows as the meridians converge.
            ratio = coslat_crit / max(float(coslat[j]), 1e-3)
            passes = int(np.clip(np.ceil(ratio), 1, 8))
            out[..., j, :] = masked_zonal_smooth(slab, row_mask, passes)
    return out
