"""Equation of state for seawater.

A quadratic fit to the UNESCO (1981) equation in the oceanographically
relevant range (-2..32 C, 30..40 psu), with thermobaric deepening — the same
class of simplified EOS the GFDL Modular Ocean Model (the paper's dynamical
ancestor, ref [29]) shipped as its fast option.  Density is returned as the
deviation from the Boussinesq reference ``RHO_SEAWATER``.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import RHO_SEAWATER

# Fit coefficients about the reference state (T0, S0).
T0 = 10.0      # deg C
S0 = 35.0      # psu
ALPHA0 = 0.17     # kg m^-3 K^-1 thermal expansion at T0 (rho units)
ALPHA_T = 0.0062  # K^-2: expansion grows with temperature (nonlinearity)
BETA = 0.76      # kg m^-3 psu^-1 haline contraction
GAMMA_Z = 4.5e-5  # kg m^-3 per m: pressure (depth) effect on in-situ density


def _asfloat(x) -> np.ndarray:
    """Floating coercion that preserves float32 instead of forcing float64."""
    arr = np.asarray(x)
    return arr if arr.dtype.kind == "f" else arr.astype(np.float64)


def density_anomaly(temp_c: np.ndarray, salt: np.ndarray,
                    depth_m: np.ndarray | float = 0.0) -> np.ndarray:
    """In-situ density minus RHO_SEAWATER (kg m^-3).

    ``temp_c`` in Celsius, ``salt`` in psu, ``depth_m`` positive downward.
    """
    t = _asfloat(temp_c)
    s = _asfloat(salt)
    dt = t - T0
    # Scalar depths stay python floats: a 0-d float64 array would promote
    # the whole expression and silently upcast float32 fields.
    depth = depth_m if np.isscalar(depth_m) else _asfloat(depth_m)
    return (-ALPHA0 * dt - 0.5 * ALPHA_T * dt * dt
            + BETA * (s - S0) + GAMMA_Z * depth)


def density(temp_c, salt, depth_m=0.0) -> np.ndarray:
    """Full in-situ density (kg m^-3)."""
    return RHO_SEAWATER + density_anomaly(temp_c, salt, depth_m)


def thermal_expansion(temp_c) -> np.ndarray:
    """-d(rho)/dT (kg m^-3 K^-1), increasing with temperature."""
    return ALPHA0 + ALPHA_T * (_asfloat(temp_c) - T0)


def buoyancy_frequency_sq(temp_c: np.ndarray, salt: np.ndarray,
                          z_full: np.ndarray) -> np.ndarray:
    """N^2 (s^-2) at interior interfaces from the local density gradient.

    ``temp_c``/``salt`` are (nlev, ...); ``z_full`` (nlev,) layer-center
    depths.  Positive N^2 = stable stratification.
    """
    from repro.util.constants import GRAVITY

    rho = density_anomaly(temp_c, salt, 0.0)  # potential density (no z term)
    dz = (z_full[1:] - z_full[:-1]).reshape((-1,) + (1,) * (rho.ndim - 1))
    drho = rho[1:] - rho[:-1]                 # positive when denser below
    return GRAVITY / RHO_SEAWATER * drho / dz
