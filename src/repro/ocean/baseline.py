"""Conventional ocean baseline: FOAM's speedups disabled (ablation reference).

The paper claims FOAM's ocean needs ~10x fewer floating-point operations per
simulated time than "other state-of-the-art ocean models".  This baseline
quantifies that statement: the same physics, but

* the free surface is **not** slowed (full gravity-wave speed), and
* there is **no** mode splitting or subcycling — *everything*, 3-D fields
  included, advances together at the shortest stable step, the way a naive
  explicit free-surface primitive-equation code must.

The op-count ratio baseline/FOAM is experiment E9's headline number.
"""

from __future__ import annotations

import numpy as np

from repro.ocean.barotropic import BarotropicParams
from repro.ocean.grid import OceanGrid
from repro.ocean.model import OceanForcing, OceanModel, OceanParams, OceanState


class ConventionalOceanModel(OceanModel):
    """Same equations as :class:`OceanModel`, single-rate unslowed stepping."""

    def __init__(self, grid: OceanGrid, land_mask=None, depth=None,
                 params: OceanParams | None = None):
        params = params or OceanParams()
        # Disable the slowing; the barotropic CFL then sets the global step.
        params.barotropic = BarotropicParams(
            slow_factor=1.0,
            bottom_drag=params.barotropic.bottom_drag,
            cfl_safety=params.barotropic.cfl_safety)
        super().__init__(grid, land_mask, depth, params)
        # The unsplit model's single step: the barotropic CFL limit.
        self.dt_single = self.baro.dt_max

    def steps_per_long(self) -> int:
        """How many single-rate steps cover one FOAM long step."""
        return max(1, int(np.ceil(self.params.dt_long / self.dt_single)))

    def step(self, state: OceanState, forcing: OceanForcing) -> OceanState:
        """March the whole model at the barotropic CFL step (no splitting).

        Physics outcome matches the split model closely (it solves the same
        equations); the point is the *cost*: every 3-D term is evaluated at
        the 2-D system's tiny step.
        """
        n = self.steps_per_long()
        # Evaluate every term (3-D advection, dissipation, mixing, pressure
        # gradients) n times instead of FOAM's 1 (slow) / n_internal (fast)
        # split.  We reuse the split infrastructure with dt_long shrunk and
        # subcycling turned off so the physics stays identical.
        saved = (self.params.dt_long, self.params.n_internal)
        self.params.dt_long = saved[0] / n
        self.params.n_internal = 1
        try:
            for _ in range(n):
                state = super().step(state, forcing)
        finally:
            self.params.dt_long, self.params.n_internal = saved
        return state

    def _ops_per_step(self) -> int:
        """Ops for one *small* step: all 3-D terms plus the 2-D update."""
        n3 = int(self.mask3d.sum())
        n2 = int(self.mask2d.sum())
        return 250 * n3 + 60 * n3 + 30 * n2
