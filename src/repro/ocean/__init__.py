"""The FOAM ocean: fast z-coordinate model with triple-rate time stepping.

Paper section "The FOAM Ocean Model": an unstaggered 128x128 Mercator grid,
16 stretched z levels, Pacanowski-Philander mixing with a steepened
Richardson dependence, del^4 dissipation, a polar Fourier filter, and three
speedup techniques — slowed free surface, barotropic/baroclinic splitting,
and multi-rate subcycling — claimed to make it "the most computationally
efficient ocean model in existence".
"""

from repro.ocean.barotropic import BarotropicParams, BarotropicSolver
from repro.ocean.baseline import ConventionalOceanModel
from repro.ocean.eos import (
    buoyancy_frequency_sq,
    density,
    density_anomaly,
    thermal_expansion,
)
from repro.ocean.filters import apply_polar_filter, polar_filter_factors
from repro.ocean.grid import (
    OceanGrid,
    aquaplanet_topography,
    mercator_latitudes,
    stretched_depths,
    world_topography,
)
from repro.ocean.mixing import (
    PPMixingParams,
    convective_adjustment,
    mix_column_implicit,
    pp_viscosity,
    richardson_number,
)
from repro.ocean.model import OceanForcing, OceanModel, OceanParams, OceanState

__all__ = [
    "OceanGrid", "aquaplanet_topography", "mercator_latitudes",
    "stretched_depths", "world_topography",
    "buoyancy_frequency_sq", "density", "density_anomaly", "thermal_expansion",
    "PPMixingParams", "convective_adjustment", "mix_column_implicit",
    "pp_viscosity", "richardson_number",
    "BarotropicParams", "BarotropicSolver",
    "apply_polar_filter", "polar_filter_factors",
    "OceanForcing", "OceanModel", "OceanParams", "OceanState",
    "ConventionalOceanModel",
]
