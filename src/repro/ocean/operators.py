"""Horizontal finite-difference operators on the unstaggered (A-grid) mesh.

The FOAM ocean uses a single unstaggered grid: all variables live at cell
centers.  The price of that simplicity is the A-grid's checkerboard
computational mode, which the paper controls with del^4 dissipation; the
reward is that one centered-difference stencil serves every equation, and
the polar Fourier filter can act on whole rows.

All operators are land-aware: ``mask`` is True on ocean; differences across
a land edge are dropped (no-flux / free-slip walls).  Longitude is periodic;
latitude rows end at walls.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_workspace


def _shift_east(name: str, arr: np.ndarray) -> np.ndarray:
    """np.roll(arr, -1, axis=-1) into a reusable workspace buffer."""
    out = get_workspace().empty_like(name, arr)
    out[..., :-1] = arr[..., 1:]
    out[..., -1] = arr[..., 0]
    return out


def _shift_west(name: str, arr: np.ndarray) -> np.ndarray:
    """np.roll(arr, 1, axis=-1) into a reusable workspace buffer."""
    out = get_workspace().empty_like(name, arr)
    out[..., 1:] = arr[..., :-1]
    out[..., 0] = arr[..., -1]
    return out


def ddx(field: np.ndarray, dx_row: np.ndarray, mask: np.ndarray,
        centered_only: bool = False) -> np.ndarray:
    """Centered d/dx with periodic longitude; one-sided at coastlines.

    With ``centered_only`` the one-sided coastal differences are dropped
    (gradient set to zero there) — used for the baroclinic pressure
    gradient, where a one-sided difference across a shelf break converts
    the full vertical pressure structure into a spurious permanent
    horizontal force (the classic z-coordinate topography PGF error).
    """
    east = _shift_east("op.ddx.east", field)
    west = _shift_west("op.ddx.west", field)
    m_east = _shift_east("op.ddx.m_east", mask)
    m_west = _shift_west("op.ddx.m_west", mask)
    both = m_east & m_west
    if centered_only:
        d = np.where(both, (east - west) * 0.5, 0.0)
    else:
        d = np.where(both, (east - west) * 0.5,
                     np.where(m_east, east - field,
                              np.where(m_west, field - west, 0.0)))
    return np.where(mask, d / dx_row[..., :, None], 0.0)


def ddy(field: np.ndarray, dy_row: np.ndarray, mask: np.ndarray,
        centered_only: bool = False) -> np.ndarray:
    """Centered d/dy with wall boundaries at the first/last rows and land."""
    ws = get_workspace()
    north = ws.empty_like("op.ddy.north", field)
    south = ws.empty_like("op.ddy.south", field)
    north[..., :-1, :] = field[..., 1:, :]
    north[..., -1, :] = field[..., -1, :]
    south[..., 1:, :] = field[..., :-1, :]
    south[..., 0, :] = field[..., 0, :]
    m_north = ws.zeros_like("op.ddy.m_north", mask)
    m_south = ws.zeros_like("op.ddy.m_south", mask)
    m_north[..., :-1, :] = mask[..., 1:, :]
    m_south[..., 1:, :] = mask[..., :-1, :]
    both = m_north & m_south
    if centered_only:
        d = np.where(both, (north - south) * 0.5, 0.0)
    else:
        d = np.where(both, (north - south) * 0.5,
                     np.where(m_north, north - field,
                              np.where(m_south, field - south, 0.0)))
    return np.where(mask, d / dy_row[..., :, None], 0.0)


def laplacian(field: np.ndarray, dx_row: np.ndarray, dy_row: np.ndarray,
              mask: np.ndarray) -> np.ndarray:
    """Masked 5-point Laplacian; land neighbours contribute no flux."""
    ws = get_workspace()
    out = ws.zeros_like("op.lap.out", field)
    # x direction (periodic)
    east = _shift_east("op.lap.east", field)
    west = _shift_west("op.lap.west", field)
    m_east = _shift_east("op.lap.m_east", mask)
    m_west = _shift_west("op.lap.m_west", mask)
    fx = (np.where(m_east, east - field, 0.0) + np.where(m_west, west - field, 0.0))
    out += fx / (dx_row[..., :, None] ** 2)
    # y direction (walls)
    m_n = ws.zeros_like("op.lap.m_n", mask)
    m_s = ws.zeros_like("op.lap.m_s", mask)
    m_n[..., :-1, :] = mask[..., 1:, :]
    m_s[..., 1:, :] = mask[..., :-1, :]
    north = ws.empty_like("op.lap.north", field)
    south = ws.empty_like("op.lap.south", field)
    north[..., :-1, :] = field[..., 1:, :]
    north[..., -1, :] = 0.0
    south[..., 1:, :] = field[..., :-1, :]
    south[..., 0, :] = 0.0
    fy = (np.where(m_n, north - field, 0.0) + np.where(m_s, south - field, 0.0))
    out += fy / (dy_row[..., :, None] ** 2)
    return np.where(mask, out, 0.0)


def biharmonic(field: np.ndarray, dx_row: np.ndarray, dy_row: np.ndarray,
               mask: np.ndarray) -> np.ndarray:
    """del^4 as Laplacian applied twice (the paper's A-grid mode control)."""
    return laplacian(laplacian(field, dx_row, dy_row, mask),
                     dx_row, dy_row, mask)


def advect_centered(field: np.ndarray, u: np.ndarray, v: np.ndarray,
                    dx_row: np.ndarray, dy_row: np.ndarray,
                    mask: np.ndarray) -> np.ndarray:
    """-(u df/dx + v df/dy), centered differences (MOM-style interior scheme)."""
    return -(u * ddx(field, dx_row, mask) + v * ddy(field, dy_row, mask))


def divergence(u: np.ndarray, v: np.ndarray, dx_row: np.ndarray,
               dy_row: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """du/dx + dv/dy on the A-grid (velocities at centers)."""
    return ddx(u, dx_row, mask) + ddy(v, dy_row, mask)


def flux_divergence(h_u: np.ndarray, h_v: np.ndarray, dx_row: np.ndarray,
                    dy_row: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """div(H u) in conservative (flux) form for the free-surface equation.

    Fluxes are evaluated at cell edges by averaging the two adjacent
    centers, and edges touching land carry zero flux, so the global integral
    of the divergence is exactly zero — the property the free surface (and
    the paper's closed hydrological cycle) needs.
    """
    mu = mask
    area = (dx_row * dy_row)[..., :, None]
    # x fluxes at east edges, integrated over the edge length dy (constant
    # along a row, so it factors out of the telescoping sum).
    he = 0.5 * (h_u + _shift_east("op.fdiv.hu_e", h_u))
    open_e = mu & _shift_east("op.fdiv.m_e", mu)
    fe = np.where(open_e, he, 0.0) * dy_row[..., :, None]
    div_x = (fe - _shift_west("op.fdiv.fe_w", fe)) / area
    # y fluxes at north edges, integrated over the edge length dx_edge
    # (average of the adjacent rows' dx) so the column sum telescopes exactly.
    dx_edge = 0.5 * (dx_row[:-1] + dx_row[1:])
    hn = 0.5 * (h_v[..., :-1, :] + h_v[..., 1:, :])
    open_n = mu[..., :-1, :] & mu[..., 1:, :]
    fn = np.where(open_n, hn, 0.0) * dx_edge[..., :, None]
    fy = get_workspace().empty_like("op.fdiv.fy", h_v)
    fy[..., 0, :] = fn[..., 0, :]
    fy[..., 1:-1, :] = fn[..., 1:, :] - fn[..., :-1, :]
    fy[..., -1, :] = -fn[..., -1, :]
    div_y = fy / area
    return np.where(mask, div_x + div_y, 0.0)
