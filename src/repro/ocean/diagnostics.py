"""Ocean circulation diagnostics: streamfunction, transports, overturning.

The standard instruments for judging whether a wind-driven spin-up produced
the right circulation: the barotropic streamfunction (gyres), section
transports in Sverdrups (e.g. the ACC through Drake Passage), and the
zonal-mean meridional overturning.
"""

from __future__ import annotations

import numpy as np

from repro.ocean.model import OceanModel, OceanState

SVERDRUP = 1.0e6   # m^3/s


def barotropic_streamfunction(model: OceanModel, state: OceanState
                              ) -> np.ndarray:
    """Psi (Sv) with U = -dPsi/dy: integrate zonal transport northward.

    Cumulative integral of the depth-integrated zonal velocity from the
    southern wall; closed (constant) on land by construction of the masks.
    """
    u, _ = model.total_velocity(state)
    uz = np.sum(u * model.dz3d, axis=0)             # depth-integrated (m^2/s)
    dy = model.grid.dy[:, None]
    psi = -np.cumsum(uz * dy, axis=0)
    return np.where(model.mask2d, psi / SVERDRUP, np.nan)


def zonal_section_transport(model: OceanModel, state: OceanState,
                            lon_index: int, lat_lo_deg: float,
                            lat_hi_deg: float) -> float:
    """Eastward volume transport (Sv) through a meridional section."""
    u, _ = model.total_velocity(state)
    lat_d = np.degrees(model.grid.lats)
    rows = (lat_d >= lat_lo_deg) & (lat_d <= lat_hi_deg)
    uz = np.sum(u[:, rows, lon_index]
                * model.dz3d[:, rows, lon_index], axis=0)    # m^2/s per row
    dy = model.grid.dy[rows]
    return float(np.sum(uz * dy) / SVERDRUP)


def drake_passage_transport(model: OceanModel, state: OceanState) -> float:
    """ACC transport through the Drake Passage gap (~295E, 49.5-64S)."""
    lon_d = np.degrees(model.grid.lons)
    i = int(np.argmin(np.abs(lon_d - 295.0)))
    return zonal_section_transport(model, state, i, -64.0, -49.5)


def meridional_overturning(model: OceanModel, state: OceanState
                           ) -> np.ndarray:
    """Zonal-mean overturning streamfunction (Sv), shape (nlev+1, ny).

    Psi(z, y) = integral over x and over depth (surface down to z) of v;
    positive cells = clockwise circulation in the (y, z) plane viewed with
    north to the right.
    """
    _, v = model.total_velocity(state)
    dx = model.grid.dx[:, None]
    vdx = np.sum(v * dx[None], axis=2)                 # (L, ny): m^2/s
    vdz = vdx * model.grid.dz[:, None]                 # m^3/s per layer
    psi = np.zeros((model.grid.nlev + 1, model.grid.ny))
    psi[1:] = np.cumsum(vdz, axis=0)
    return psi / SVERDRUP


def mixed_layer_depth(model: OceanModel, state: OceanState,
                      delta_t: float = 0.5) -> np.ndarray:
    """Depth (m) where temperature first drops ``delta_t`` below the surface."""
    g = model.grid
    t0 = state.temp[0]
    below = state.temp < (t0[None] - delta_t)
    below &= model.mask3d
    # First True level per column; full column depth if never.
    first = np.where(below.any(axis=0), below.argmax(axis=0), g.nlev - 1)
    mld = g.z_full[first]
    return np.where(model.mask2d, mld, np.nan)
