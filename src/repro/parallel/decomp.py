"""Domain decomposition for the FOAM component models.

GCM parallelization (paper, section "The FOAM Atmosphere Model") is a one- or
two-dimensional block decomposition of the horizontal domain.  This module
provides:

* :class:`BlockDecomp1D` — latitude-band decomposition, the layout PCCM2 used
  for gridpoint physics (each rank owns a contiguous band of latitudes and
  all longitudes, so vertical-column physics needs no communication at all);
* :class:`BlockDecomp2D` — latitude x longitude checkerboard used by the
  ocean model, with 4-point halo exchange;
* halo-exchange helpers that move real array ghost rows through a
  :class:`~repro.parallel.simmpi.SimComm`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.simmpi import SimComm

_TAG_HALO_N = 101
_TAG_HALO_S = 102
_TAG_HALO_E = 103
_TAG_HALO_W = 104


def block_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """Return [lo, hi) bounds of block ``index`` when ``n`` items split ``parts`` ways.

    Uses the balanced formula (remainder spread over the leading blocks), the
    same rule MPI tutorials and PCCM2's decomposition employ, so block sizes
    differ by at most one.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if not 0 <= index < parts:
        raise ValueError(f"block index {index} out of range for {parts} parts")
    base, extra = divmod(n, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


@dataclass(frozen=True)
class BlockDecomp1D:
    """Latitude-band decomposition of an (nlat, nlon) grid over ``nranks`` ranks."""

    nlat: int
    nlon: int
    nranks: int

    def __post_init__(self):
        if self.nranks > self.nlat:
            raise ValueError(
                f"cannot split {self.nlat} latitudes over {self.nranks} ranks; "
                "this is the decomposition limit the paper hits at 68 nodes")

    def bounds(self, rank: int) -> tuple[int, int]:
        """Latitude bounds [lo, hi) owned by ``rank``."""
        return block_bounds(self.nlat, self.nranks, rank)

    def owner(self, j: int) -> int:
        """Rank owning global latitude row ``j``."""
        for r in range(self.nranks):
            lo, hi = self.bounds(r)
            if lo <= j < hi:
                return r
        raise ValueError(f"latitude index {j} out of range")

    def local_shape(self, rank: int) -> tuple[int, int]:
        lo, hi = self.bounds(rank)
        return (hi - lo, self.nlon)

    def scatter(self, comm: SimComm, full: np.ndarray | None) -> np.ndarray:
        """Distribute a full (nlat, nlon, ...) array from rank 0 to band owners."""
        if comm.rank == 0:
            assert full is not None
            parts = [full[slice(*self.bounds(r))] for r in range(comm.size)]
        else:
            parts = None
        return comm.scatter(parts, root=0)

    def gather(self, comm: SimComm, local: np.ndarray) -> np.ndarray | None:
        """Reassemble the full array on rank 0 from per-rank bands."""
        parts = comm.gather(local, root=0)
        if comm.rank == 0:
            return np.concatenate(parts, axis=0)
        return None

    def exchange_halo(self, comm: SimComm, local: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Exchange one ghost latitude row with north/south neighbours.

        Returns ``(south_ghost, north_ghost)``; at the physical boundaries the
        ghost row is a copy of the edge row (zero-gradient closure), matching
        the polar treatment of a latitude-band model.
        """
        north = comm.rank + 1 if comm.rank + 1 < comm.size else None
        south = comm.rank - 1 if comm.rank - 1 >= 0 else None
        # Buffered sends: post both before receiving, the classic safe pattern.
        if north is not None:
            comm.send(local[-1], dest=north, tag=_TAG_HALO_N)
        if south is not None:
            comm.send(local[0], dest=south, tag=_TAG_HALO_S)
        south_ghost = (comm.recv(source=south, tag=_TAG_HALO_N)
                       if south is not None else local[0].copy())
        north_ghost = (comm.recv(source=north, tag=_TAG_HALO_S)
                       if north is not None else local[-1].copy())
        return south_ghost, north_ghost


@dataclass(frozen=True)
class BlockDecomp2D:
    """Checkerboard decomposition of an (ny, nx) grid over py x px ranks.

    The x direction is periodic (longitude); the y direction is bounded.
    """

    ny: int
    nx: int
    py: int
    px: int

    def __post_init__(self):
        if self.py * self.px < 1:
            raise ValueError("need at least one rank")
        if self.py > self.ny or self.px > self.nx:
            raise ValueError(
                f"decomposition {self.py}x{self.px} too fine for {self.ny}x{self.nx} grid")

    @property
    def nranks(self) -> int:
        return self.py * self.px

    def coords(self, rank: int) -> tuple[int, int]:
        """(row, col) process coordinates of ``rank`` (row-major)."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range")
        return divmod(rank, self.px)

    def rank_at(self, prow: int, pcol: int) -> int:
        return prow * self.px + (pcol % self.px)

    def bounds(self, rank: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """((ylo, yhi), (xlo, xhi)) owned by ``rank``."""
        prow, pcol = self.coords(rank)
        return block_bounds(self.ny, self.py, prow), block_bounds(self.nx, self.px, pcol)

    def local_shape(self, rank: int) -> tuple[int, int]:
        (ylo, yhi), (xlo, xhi) = self.bounds(rank)
        return (yhi - ylo, xhi - xlo)

    def scatter(self, comm: SimComm, full: np.ndarray | None) -> np.ndarray:
        if comm.rank == 0:
            assert full is not None
            parts = []
            for r in range(comm.size):
                (ylo, yhi), (xlo, xhi) = self.bounds(r)
                parts.append(np.ascontiguousarray(full[ylo:yhi, xlo:xhi]))
        else:
            parts = None
        return comm.scatter(parts, root=0)

    def gather(self, comm: SimComm, local: np.ndarray) -> np.ndarray | None:
        parts = comm.gather(local, root=0)
        if comm.rank != 0:
            return None
        trailing = parts[0].shape[2:]
        full = np.empty((self.ny, self.nx) + trailing, dtype=parts[0].dtype)
        for r, part in enumerate(parts):
            (ylo, yhi), (xlo, xhi) = self.bounds(r)
            full[ylo:yhi, xlo:xhi] = part
        return full

    def exchange_halo(self, comm: SimComm, local: np.ndarray) -> np.ndarray:
        """Return ``local`` padded by a one-cell halo filled from neighbours.

        East-west is periodic; north-south uses edge replication at the walls
        (the ocean model applies its own no-flux masking on top).  Corners are
        filled by edge replication, sufficient for the 5-point and 13-point
        stencils used here.
        """
        prow, pcol = self.coords(comm.rank)
        ny, nx = local.shape[:2]
        padded = np.empty((ny + 2, nx + 2) + local.shape[2:], dtype=local.dtype)
        padded[1:-1, 1:-1] = local

        east = self.rank_at(prow, pcol + 1)
        west = self.rank_at(prow, pcol - 1)
        # Periodic east-west exchange (always has a partner, may be self).
        if east == comm.rank:
            padded[1:-1, -1] = local[:, 0]
            padded[1:-1, 0] = local[:, -1]
        else:
            comm.send(local[:, -1], dest=east, tag=_TAG_HALO_E)
            comm.send(local[:, 0], dest=west, tag=_TAG_HALO_W)
            padded[1:-1, 0] = comm.recv(source=west, tag=_TAG_HALO_E)
            padded[1:-1, -1] = comm.recv(source=east, tag=_TAG_HALO_W)

        north = self.rank_at(prow + 1, pcol) if prow + 1 < self.py else None
        south = self.rank_at(prow - 1, pcol) if prow - 1 >= 0 else None
        if north is not None:
            comm.send(local[-1], dest=north, tag=_TAG_HALO_N)
        if south is not None:
            comm.send(local[0], dest=south, tag=_TAG_HALO_S)
        padded[0, 1:-1] = (comm.recv(source=south, tag=_TAG_HALO_N)
                           if south is not None else local[0])
        padded[-1, 1:-1] = (comm.recv(source=north, tag=_TAG_HALO_S)
                            if north is not None else local[-1])

        # Corner closure by replication.
        padded[0, 0] = padded[0, 1]
        padded[0, -1] = padded[0, -2]
        padded[-1, 0] = padded[-1, 1]
        padded[-1, -1] = padded[-1, -2]
        return padded
