"""Per-rank activity tracing, the data model behind the paper's Figure 2.

Figure 2 of the paper shows, for each SP processor, a bar of colored time
segments: green = atmosphere computation, red = coupler, blue = ocean,
purple = idle.  :class:`RankTrace` records exactly that — a list of
``(start, end, activity)`` segments in model time — and :class:`TraceSet`
aggregates the per-rank utilization statistics the paper discusses (all
atmosphere ranks leaving the coupler simultaneously; imperfect load balance
from non-uniform cloud distributions; one ocean rank keeping up with 16
atmosphere ranks but not 32).
"""

from __future__ import annotations

from dataclasses import dataclass, field

ACTIVITIES = ("atmosphere", "coupler", "ocean", "idle")


@dataclass
class Segment:
    start: float
    end: float
    activity: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class RankTrace:
    """Activity timeline for one simulated processor."""

    rank: int
    segments: list[Segment] = field(default_factory=list)

    def record(self, start: float, end: float, activity: str) -> None:
        if activity not in ACTIVITIES:
            raise ValueError(f"unknown activity {activity!r}; must be one of {ACTIVITIES}")
        if end < start:
            raise ValueError(f"segment ends ({end}) before it starts ({start})")
        if self.segments and start < self.segments[-1].end - 1e-12:
            raise ValueError(
                f"rank {self.rank}: segment at {start} overlaps previous "
                f"ending at {self.segments[-1].end}")
        self.segments.append(Segment(start, end, activity))

    @property
    def end_time(self) -> float:
        return self.segments[-1].end if self.segments else 0.0

    def time_in(self, activity: str) -> float:
        return sum(s.duration for s in self.segments if s.activity == activity)

    def busy_fraction(self) -> float:
        total = self.end_time
        if total <= 0:
            return 0.0
        return 1.0 - self.time_in("idle") / total


@dataclass
class TraceSet:
    """Traces for every rank of a run, plus Figure-2-style summaries.

    ``comm`` optionally carries the :class:`~repro.parallel.simmpi.CommStats`
    behind the timeline — either the per-rank counters of the traced run
    itself, or the measured calibration stats the performance simulator was
    driven by — so a trace answers both "where did the time go?" (Figure 2)
    and "what traffic moved?".
    """

    traces: list[RankTrace]
    comm: list | None = None   # list[CommStats] when attached

    def attach_comm(self, stats) -> "TraceSet":
        """Attach per-rank CommStats; returns self for chaining."""
        self.comm = list(stats)
        return self

    def total_messages(self) -> int:
        """Total messages sent across all attached CommStats."""
        return sum(s.msgs_sent for s in self.comm or ())

    def total_comm_bytes(self) -> int:
        """Total bytes sent across all attached CommStats."""
        return sum(s.bytes_sent for s in self.comm or ())

    def message_breakdown(self) -> dict[str, int]:
        """Messages sent per operation label, summed over ranks."""
        out: dict[str, int] = {}
        for s in self.comm or ():
            for op, n in s.op_msgs.items():
                out[op] = out.get(op, 0) + n
        return out

    @property
    def nranks(self) -> int:
        return len(self.traces)

    @property
    def makespan(self) -> float:
        return max((t.end_time for t in self.traces), default=0.0)

    def total_time_in(self, activity: str) -> float:
        return sum(t.time_in(activity) for t in self.traces)

    def utilization(self) -> float:
        """Fraction of total processor-time spent not idle."""
        span = self.makespan * self.nranks
        if span <= 0:
            return 0.0
        busy = sum(t.end_time - t.time_in("idle") for t in self.traces)
        return busy / span

    def breakdown(self) -> dict[str, float]:
        """Processor-time fractions by activity (the Figure 2 color budget)."""
        span = self.makespan * self.nranks
        out = {}
        for act in ACTIVITIES:
            explicit = self.total_time_in(act)
            out[act] = explicit / span if span > 0 else 0.0
        # Uncovered trailing time (rank finished before makespan) counts as idle.
        covered = sum(t.end_time for t in self.traces)
        if span > 0:
            out["idle"] += (span - covered) / span
        return out

    def render_ascii(self, width: int = 72) -> str:
        """Render the Gantt chart as text (one row per rank), for reports.

        Uses A/C/O/. for atmosphere, coupler, ocean, idle — the same four
        categories as the paper's Figure 2.
        """
        glyph = {"atmosphere": "A", "coupler": "C", "ocean": "O", "idle": "."}
        span = self.makespan
        lines = []
        for t in self.traces:
            row = ["."] * width
            for s in t.segments:
                i0 = int(s.start / span * width) if span > 0 else 0
                i1 = max(i0 + 1, int(s.end / span * width)) if span > 0 else 1
                for i in range(i0, min(i1, width)):
                    row[i] = glyph[s.activity]
            lines.append(f"rank {t.rank:3d} |{''.join(row)}|")
        return "\n".join(lines)
