"""Parallel execution of FOAM components on the simulated-MPI substrate.

These drivers reproduce the decomposition strategy of the paper on the
in-process message-passing layer, with the defining correctness property —
*a decomposed run produces bit-identical results to the serial run* —
verified by the test suite:

* :func:`parallel_physics` — the paper's central parallelization claim:
  "the physics processes in CCM2 ... occur entirely in vertical columns,
  [and] are represented without any information exchange between
  processors."  Columns are scattered by latitude band, the full physics
  suite runs per rank with zero communication, results are gathered.
* :func:`parallel_laplacian` / :func:`parallel_biharmonic` — the ocean's
  horizontal stencils under the 2-D checkerboard decomposition with halo
  exchange, the communication pattern of the real parallel ocean model.
* :func:`parallel_spectral_analysis` — the PCCM2 spectral transform with
  the latitude-band -> wavenumber-band distributed transpose (Foster &
  Worley), each rank computing the Legendre sums for its own wavenumbers.
"""

from __future__ import annotations

import numpy as np

from repro.atmosphere.physics import PhysicsSuite, SurfaceState
from repro.atmosphere.spectral import SpectralTransform
from repro.ocean.grid import OceanGrid
from repro.ocean.operators import laplacian
from repro.parallel.decomp import BlockDecomp1D, BlockDecomp2D, block_bounds
from repro.parallel.simmpi import CommStats, SimComm, run_ranks
from repro.parallel.transpose import transpose_backward, transpose_forward


# ----------------------------------------------------------------- physics
def parallel_physics(nranks: int, *, temp, q, u, v, pressure, ps,
                     geopotential, dsigma, surface: SurfaceState, dt, time,
                     lats, lons) -> dict:
    """Run the full physics suite decomposed over latitude bands.

    Returns dict with gathered (dtdt, dqdt, precip) plus per-rank
    communication counters proving the no-communication property.
    """
    nlat = temp.shape[1]
    nlon = temp.shape[2]
    decomp = BlockDecomp1D(nlat=nlat, nlon=nlon, nranks=nranks)

    def worker(comm: SimComm):
        lo, hi = decomp.bounds(comm.rank)
        sub_surface = SurfaceState(
            t_sfc=surface.t_sfc[lo:hi], albedo=surface.albedo[lo:hi],
            wetness=surface.wetness[lo:hi], z0=surface.z0[lo:hi],
            ocean_mask=surface.ocean_mask[lo:hi])
        suite = PhysicsSuite()
        sent_before = comm.messages_sent
        out = suite.compute(
            temp=temp[:, lo:hi], q=q[:, lo:hi], u=u[:, lo:hi], v=v[:, lo:hi],
            pressure=pressure[:, lo:hi], ps=ps[lo:hi],
            geopotential=geopotential[:, lo:hi], dsigma=dsigma,
            surface=sub_surface, dt=dt, time=time,
            lats=lats[lo:hi], lons=lons)
        physics_messages = comm.messages_sent - sent_before
        # Only now gather results (communication belongs to the coupler).
        dtdt = decomp.gather(comm, np.moveaxis(out.dtdt, 0, 1))
        dqdt = decomp.gather(comm, np.moveaxis(out.dqdt, 0, 1))
        prec = decomp.gather(comm, out.precip_conv + out.precip_strat)
        return dict(dtdt=dtdt, dqdt=dqdt, precip=prec,
                    physics_messages=physics_messages, stats=comm.stats)

    results = run_ranks(nranks, worker)
    root = results[0]
    return dict(
        dtdt=np.moveaxis(root["dtdt"], 1, 0),
        dqdt=np.moveaxis(root["dqdt"], 1, 0),
        precip=root["precip"],
        physics_messages=[r["physics_messages"] for r in results],
        comm_stats=[r["stats"] for r in results])


# ----------------------------------------------------------------- stencils
def parallel_laplacian(py: int, px: int, field: np.ndarray,
                       grid: OceanGrid, mask: np.ndarray) -> np.ndarray:
    """Masked 5-point Laplacian under a (py x px) checkerboard decomposition.

    Each rank applies the *serial* operator to its halo-padded block using
    only locally available rows of the metric arrays; halos move through
    the simulated MPI layer.  Equivalence with the serial operator is the
    test-suite property.
    """
    decomp = BlockDecomp2D(ny=grid.ny, nx=grid.nx, py=py, px=px)

    def worker(comm: SimComm):
        local = decomp.scatter(comm, field if comm.rank == 0 else None)
        local_mask = decomp.scatter(comm, mask.astype(float)
                                    if comm.rank == 0 else None) > 0.5
        padded = decomp.exchange_halo(comm, local)
        padded_mask = decomp.exchange_halo(
            comm, local_mask.astype(float)) > 0.5
        (ylo, yhi), _ = decomp.bounds(comm.rank)
        # Metric rows incl. the halo rows (replicate at physical walls).
        rows = np.clip(np.arange(ylo - 1, yhi + 1), 0, grid.ny - 1)
        out = laplacian(padded, grid.dx[rows], grid.dy[rows], padded_mask)
        return decomp.gather(comm, out[1:-1, 1:-1])

    results = run_ranks(decomp.nranks, worker)
    return results[0]


def parallel_biharmonic(py: int, px: int, field: np.ndarray,
                        grid: OceanGrid, mask: np.ndarray) -> np.ndarray:
    """del^4 as two communicating Laplacian applications."""
    once = parallel_laplacian(py, px, field, grid, mask)
    return parallel_laplacian(py, px, once, grid, mask)


# ----------------------------------------------------------------- spectral
def parallel_spectral_analysis(nranks: int, tr: SpectralTransform,
                               grid_field: np.ndarray,
                               with_stats: bool = False,
                               substrate: str | None = None):
    """Distributed grid->spectral transform (the PCCM2 pattern).

    1. each rank FFTs its latitude band (local);
    2. distributed transpose to wavenumber bands (alltoall);
    3. each rank performs the Legendre quadrature for its own m's;
    4. gather the spectral coefficients.

    Bit-identical to ``tr.analyze`` because every rank uses the same
    quadrature weights and Legendre tables — on either communicator
    substrate (``substrate="process"`` forks real rank processes).  With
    ``with_stats=True`` returns ``(spec, [CommStats, ...])``, the
    measured traffic of the run.
    """
    nlat = tr.nlat
    nm = tr.trunc.nm
    decomp = BlockDecomp1D(nlat=nlat, nlon=tr.nlon, nranks=nranks)

    def worker(comm: SimComm):
        local = decomp.scatter(comm, grid_field if comm.rank == 0 else None)
        # Local FFT of our latitude band.
        fm = np.fft.rfft(local, axis=1)[:, :nm] / tr.nlon
        # Transpose: rows=lats -> columns=wavenumbers.
        cols = transpose_forward(comm, fm, nlat, nm)
        # Legendre quadrature for our block of m's (all latitudes local now).
        mlo, mhi = block_bounds(nm, comm.size, comm.rank)
        spec_block = np.einsum("jm,jmk->mk", cols, tr._wp[:, mlo:mhi, :])
        gathered = comm.gather(spec_block, root=0)
        spec = None
        if comm.rank == 0:
            spec = np.concatenate(gathered, axis=0) * tr.trunc.mask()
        return spec, comm.stats

    results = run_ranks(nranks, worker, substrate=substrate)
    spec = results[0][0]
    if with_stats:
        return spec, [r[1] for r in results]
    return spec


def measure_transpose_comm(nranks: int, nlat: int, nm: int, nlev: int = 1,
                           seed: int = 0,
                           substrate: str | None = None) -> list[CommStats]:
    """Measure the real traffic of one forward+backward spectral transpose.

    Runs the distributed transpose on a ``(nlat, nm * nlev)`` complex field
    (the per-step Fourier-coefficient volume of the spectral transform) and
    returns per-rank :class:`CommStats` whose ``transpose.*`` labels hold
    the measured message counts and bytes.  This is the calibration input
    for ``repro.perf.eventsim.simulate_coupled_day(transpose_comm=...)`` —
    simulated timing driven by measured traffic instead of the analytic
    ``AtmosphereCost.transpose_bytes()`` formula.  The counters are
    substrate-independent: per-rank ``CommStats`` marshal back from forked
    processes (``substrate="process"``) identical to the thread run.
    """
    ncols = nm * nlev
    rng = np.random.default_rng(seed)
    full = rng.normal(size=(nlat, ncols)) + 1j * rng.normal(size=(nlat, ncols))

    def worker(comm: SimComm):
        lo, hi = block_bounds(nlat, comm.size, comm.rank)
        cols = transpose_forward(comm, full[lo:hi], nlat, ncols)
        back = transpose_backward(comm, cols, nlat, ncols)
        if not np.array_equal(back, full[lo:hi]):
            raise AssertionError(
                f"rank {comm.rank}: transpose roundtrip not bitwise-identical")
        return comm.stats

    return run_ranks(nranks, worker, substrate=substrate)
