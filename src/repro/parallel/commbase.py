"""Substrate-independent core of the simulated MPI layer.

The communicator API (:class:`CommBase`) is implemented twice:

* :class:`repro.parallel.simmpi.SimComm` — ranks are threads of one
  process sharing a mailbox world (the default: deterministic, fast to
  spawn, ideal for tests);
* :class:`repro.parallel.procmpi.ProcComm` — ranks are real forked
  processes exchanging envelopes through a parent-side router, with bulk
  array payloads carried in POSIX shared memory (real wall-clock
  parallelism: no GIL).

Everything that must behave *identically* on both substrates lives here:
the collective algorithms (binomial-tree bcast/reduce, gather-based
barrier, pairwise-exchange alltoall), communicator-context tag stamping,
``split(color, key)`` bookkeeping, operation labeling for
:class:`CommStats`, crash-injection scoping, and the structured failure
vocabulary (:class:`CommError`, :class:`DeadlockReport`).  Because the
collectives are layered on the two abstract primitives ``_send`` and
``_recv``, a payload takes the same route — same message count, same
reduction tree, same operation order — on threads and on processes, which
is what makes the cross-substrate bitwise-equivalence suite
(``tests/test_substrate_equivalence.py``) meaningful.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

ANY_SOURCE = -1
ANY_TAG = -1
_CTX_SHIFT = 36                # communicator-context bits above the tag space:
                               # absolute tag = (ctx << _CTX_SHIFT) + tag, so
                               # sub-communicator traffic can never match the
                               # parent's (collective bases stop at 5 << 30)
_DEFAULT_TIMEOUT = 120.0       # seconds before declaring a hang outside pytest
_PYTEST_TIMEOUT = 10.0         # default under pytest: a genuine bug should not
                               # cost the suite two minutes of sleeping
_POLL_SLICE = 0.05             # receiver wake-up cadence for failure checks

_TAG_BCAST = 1 << 30
_TAG_REDUCE = 2 << 30
_TAG_GATHER = 3 << 30
_TAG_SCATTER = 4 << 30
_TAG_ALLTOALL = 5 << 30

_SUBSTRATES = ("thread", "process")


def resolve_substrate(substrate: str | None = None) -> str:
    """Resolve the communicator substrate for a new world.

    An explicit ``substrate`` argument wins; otherwise the ``FOAM_COMM``
    environment variable decides (default ``"thread"``).
    """
    sub = substrate or os.environ.get("FOAM_COMM", "thread")
    if sub not in _SUBSTRATES:
        raise CommError(
            f"unknown communicator substrate {sub!r}; pick one of "
            f"{_SUBSTRATES} (via substrate= or FOAM_COMM)")
    return sub


def _default_timeout() -> float:
    """Resolve the default communication timeout for this process.

    ``REPRO_SIMMPI_TIMEOUT`` overrides; otherwise the default is low when
    running under pytest.  The timeout is a last-resort backstop — genuine
    deadlocks are caught by the wait-for-graph detector long before it.
    """
    env = os.environ.get("REPRO_SIMMPI_TIMEOUT")
    if env:
        return float(env)
    if os.environ.get("PYTEST_CURRENT_TEST") or "pytest" in sys.modules:
        return _PYTEST_TIMEOUT
    return _DEFAULT_TIMEOUT


class CommError(RuntimeError):
    """Raised on misuse of the communicator (bad rank, dead peer, timeout)."""


class RankCrashedError(CommError):
    """Raised on the victim rank by an injected ``FaultPlan.crash`` rule."""


@dataclass(frozen=True)
class BlockedRank:
    """One blocked rank in a :class:`DeadlockReport`."""

    rank: int
    op: str                    # operation label: recv, barrier, alltoall, ...
    peer: int                  # source rank it waits on; ANY_SOURCE if wildcard
    tag: int                   # tag it waits on; ANY_TAG if wildcard
    waited: float              # seconds spent blocked when diagnosed

    def __str__(self) -> str:
        peer = "ANY" if self.peer == ANY_SOURCE else self.peer
        tag = "ANY" if self.tag == ANY_TAG else self.tag
        return (f"rank {self.rank}: blocked in {self.op}(source={peer}, "
                f"tag={tag}) for {self.waited:.2f}s")


@dataclass(frozen=True)
class DeadlockReport:
    """Structured diagnosis of a wedged world.

    ``blocked`` lists every live blocked rank with its operation, peer and
    tag; ``cycle`` is a wait-for cycle if one exists (``r`` waits on the
    next entry, the last waits on the first); ``dead`` lists crashed ranks
    implicated in the hang.  The report is a plain frozen dataclass, so a
    process-substrate world can marshal it back to the parent (and to
    every sibling rank) by pickling.
    """

    blocked: tuple[BlockedRank, ...]
    cycle: tuple[int, ...] = ()
    dead: tuple[int, ...] = ()

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(b.rank for b in self.blocked)

    def __str__(self) -> str:
        lines = [f"deadlock among {len(self.blocked)} rank(s):"]
        lines += [f"  {b}" for b in self.blocked]
        if self.cycle:
            lines.append("  wait-for cycle: "
                         + " -> ".join(str(r) for r in self.cycle)
                         + f" -> {self.cycle[0]}")
        if self.dead:
            lines.append("  crashed rank(s): "
                         + ", ".join(str(r) for r in self.dead))
        return "\n".join(lines)


class DeadlockError(CommError):
    """A diagnosed deadlock; ``.report`` holds the :class:`DeadlockReport`."""

    def __init__(self, report: DeadlockReport):
        super().__init__(str(report))
        self.report = report

    def __reduce__(self):
        # Default exception pickling would rebuild from the stringified
        # args, losing the structured report; rebuild from the report.
        return (DeadlockError, (self.report,))


@dataclass
class CommStats:
    """Per-rank message/byte/operation counters.

    ``op_*`` dictionaries are keyed by the *outermost* operation label
    active when traffic moved — a send inside ``bcast`` inside ``barrier``
    is charged to ``"barrier"`` — so transports like the spectral transpose
    can label their traffic (``"transpose.forward"``) and the performance
    model can be calibrated from measured volumes
    (:func:`repro.perf.costmodel.transpose_bytes_from_stats`).
    """

    rank: int
    msgs_sent: int = 0
    bytes_sent: int = 0
    msgs_recv: int = 0
    bytes_recv: int = 0
    op_calls: dict[str, int] = field(default_factory=dict)   # label -> # calls
    op_msgs: dict[str, int] = field(default_factory=dict)    # label -> msgs sent
    op_bytes: dict[str, int] = field(default_factory=dict)   # label -> bytes sent
    peer_msgs: dict[int, int] = field(default_factory=dict)  # dest -> msgs sent
    peer_bytes: dict[int, int] = field(default_factory=dict)  # dest -> bytes sent

    def note_call(self, op: str) -> None:
        self.op_calls[op] = self.op_calls.get(op, 0) + 1

    def note_send(self, op: str, dest: int, nbytes: int) -> None:
        self.msgs_sent += 1
        self.bytes_sent += nbytes
        self.op_msgs[op] = self.op_msgs.get(op, 0) + 1
        self.op_bytes[op] = self.op_bytes.get(op, 0) + nbytes
        self.peer_msgs[dest] = self.peer_msgs.get(dest, 0) + 1
        self.peer_bytes[dest] = self.peer_bytes.get(dest, 0) + nbytes

    def note_recv(self, nbytes: int) -> None:
        self.msgs_recv += 1
        self.bytes_recv += nbytes

    def bytes_for(self, prefix: str) -> int:
        """Total bytes sent under operation labels starting with ``prefix``."""
        return sum(v for k, v in self.op_bytes.items() if k.startswith(prefix))

    def msgs_for(self, prefix: str) -> int:
        """Total messages sent under labels starting with ``prefix``."""
        return sum(v for k, v in self.op_msgs.items() if k.startswith(prefix))

    @classmethod
    def merge(cls, stats: Sequence["CommStats"], rank: int = -1) -> "CommStats":
        """Sum per-rank counters into one world-level :class:`CommStats`.

        This is the marshalling path for substrates whose ranks live in
        child processes: each rank's counters come back to the parent by
        pickling (they are plain dataclasses) and merge here, so
        profiler/eventsim calibration sees the same world totals no
        matter which substrate measured them.  ``rank=-1`` marks the
        result as a merged, not per-rank, counter.
        """
        out = cls(rank=rank)
        for s in stats:
            out.msgs_sent += s.msgs_sent
            out.bytes_sent += s.bytes_sent
            out.msgs_recv += s.msgs_recv
            out.bytes_recv += s.bytes_recv
            for d, src in ((out.op_calls, s.op_calls),
                           (out.op_msgs, s.op_msgs),
                           (out.op_bytes, s.op_bytes),
                           (out.peer_msgs, s.peer_msgs),
                           (out.peer_bytes, s.peer_bytes)):
                for key, n in src.items():
                    d[key] = d.get(key, 0) + n
        return out


def _find_cycle(edges: dict[int, list[int]]) -> tuple[int, ...]:
    """Find one cycle in a wait-for graph; () if none."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {r: WHITE for r in edges}
    for start in edges:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(edges[start]))]
        color[start] = GREY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == GREY:
                    return tuple(path[path.index(nxt):])
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(edges[nxt])))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return ()


def _match(src: int, tag: int, want_src: int, want_tag: int,
           ctx: int = 0) -> bool:
    """Envelope match: ``tag`` is absolute (context-stamped), ``want_tag``
    communicator-local.  ANY_TAG still only matches within the context."""
    if want_src not in (ANY_SOURCE, src):
        return False
    if want_tag == ANY_TAG:
        return tag >> _CTX_SHIFT == ctx
    return tag == (ctx << _CTX_SHIFT) + want_tag


def _copy_payload(obj: Any) -> Any:
    """Copy send buffers so the sender may safely reuse them (MPI semantics)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_copy_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v) for v in obj.values())
    return 64  # rough envelope for small scalars/objects


def _combine(a: Any, b: Any, op: str) -> Any:
    if op == "sum":
        return a + b
    if op == "max":
        return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
    if op == "min":
        return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
    if op == "prod":
        return a * b
    raise CommError(f"unsupported reduction op {op!r}")


class CommBase:
    """Shared communicator algorithms; substrates provide the transport.

    Mirrors the mpi4py API subset the model uses.  Lower-case methods move
    arbitrary Python objects; arrays are passed by reference after a
    defensive copy at send time (MPI semantics: the send buffer may be
    reused by the sender immediately after ``send`` returns).

    Substrate hooks (all operate on *world* ranks / absolute tags):

    * ``_send(obj, dest, tag)`` / ``_recv(source, tag)`` — the blocking
      point-to-point primitives everything else is layered on;
    * ``_crash_message(op)`` — consult the world's ``FaultPlan`` for an
      injected crash at this rank's current top-level operation count;
    * ``_allocate_context(key)`` — world-unique context id for a split
      group (same key must yield the same id on every member);
    * ``_spawn(new_rank, group, ctx)`` — construct the sub-communicator.
    """

    def __init__(self, rank: int, size: int, *,
                 timeout: float | None = None,
                 group: Sequence[int] | None = None, ctx: int = 0,
                 stats: CommStats | None = None):
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range for world size {size}")
        self.rank = rank
        self.size = size
        self._timeout = _default_timeout() if timeout is None else timeout
        # Sub-communicator plumbing: ``group`` maps local -> world ranks
        # (None = identity, the world communicator fast path); ``ctx`` is
        # the context id stamped into message tags.  Liveness, deadlock
        # reports and mailboxes always operate on world ranks.
        self._group = list(group) if group is not None else None
        self._ctx = ctx
        self._wrank = rank if self._group is None else self._group[rank]
        self.stats = stats if stats is not None else CommStats(rank=rank)
        # Collective sequence number: every rank calls collectives in the
        # same order, so stamping the tag with a per-call counter keeps
        # back-to-back collectives from consuming each other's messages.
        self._collective_seq = 0
        self._split_seq = 0
        self._op_stack: list[str] = []
        self._op_count = 0

    # ------------------------------------------------------------------
    # substrate hooks
    # ------------------------------------------------------------------
    def _send(self, obj: Any, dest: int, tag: int) -> None:
        raise NotImplementedError

    def _recv(self, source: int, tag: int) -> Any:
        raise NotImplementedError

    def _crash_message(self, op: str) -> str | None:
        raise NotImplementedError

    def _allocate_context(self, key: tuple) -> int:
        raise NotImplementedError

    def _spawn(self, new_rank: int, group: list[int], ctx: int) -> "CommBase":
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _to_world(self, rank: int) -> int:
        return rank if self._group is None else self._group[rank]

    # Legacy counter aliases (pre-CommStats API).
    @property
    def bytes_sent(self) -> int:
        return self.stats.bytes_sent

    @property
    def messages_sent(self) -> int:
        return self.stats.msgs_sent

    @contextmanager
    def _op(self, name: str):
        """Operation scope: labels traffic and triggers injected crashes.

        Only the *outermost* scope counts toward ``op_calls`` and the crash
        op counter, so ``allreduce`` is one op even though it layers on
        ``reduce`` + ``bcast``.
        """
        outermost = not self._op_stack
        self._op_stack.append(name)
        try:
            if outermost:
                self.stats.note_call(name)
                self._op_count += 1
                msg = self._crash_message(name)
                if msg is not None:
                    raise RankCrashedError(msg)
            yield
        finally:
            self._op_stack.pop()

    def _check_send_args(self, dest: int) -> None:
        if not isinstance(dest, (int, np.integer)):
            # Catch swapped send(dest, obj) arguments with a clear error
            # instead of an unhashable-type failure inside the stats layer.
            raise TypeError(
                f"send: dest must be an integer rank, got "
                f"{type(dest).__name__} — signature is send(obj, dest, tag)")
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")

    def _check_recv_args(self, source: int) -> None:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommError(f"recv: bad source rank {source}")

    def _peer_liveness_error(self, source: int, tag: int, op: str,
                             dead: dict, finished: set) -> None:
        """Fail fast when the awaited peer(s) can never send.

        ``source`` is communicator-local; liveness is tracked (and
        reported) in world ranks.  ``dead`` maps world rank ->
        ``(origin_rank, reason)``; ``finished`` is a set of world ranks.
        """
        if source != ANY_SOURCE:
            src_w = self._to_world(source)
            if src_w in dead:
                origin, reason = dead[src_w]
                err = CommError(
                    f"rank {self._wrank}: {op}(source={src_w}, tag={tag}) failed "
                    f"— rank {origin} crashed ({reason})")
                err.origin_rank = origin
                raise err
            if src_w in finished:
                raise CommError(
                    f"rank {self._wrank}: {op}(source={src_w}, tag={tag}) can "
                    f"never complete — rank {src_w} already finished")
            return
        others = [self._to_world(r) for r in range(self.size) if r != self.rank]
        if others and all(r in finished or r in dead for r in others):
            dead_peers = sorted(r for r in others if r in dead)
            if dead_peers:
                origin, reason = dead[dead_peers[0]]
                err = CommError(
                    f"rank {self._wrank}: {op}(source=ANY, tag={tag}) failed "
                    f"— rank {origin} crashed ({reason})")
                err.origin_rank = origin
                raise err
            raise CommError(
                f"rank {self._wrank}: {op}(source=ANY, tag={tag}) can never "
                f"complete — all peers already finished")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send (buffered: never deadlocks by itself)."""
        with self._op("send"):
            self._send(obj, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive matching (source, tag); wildcards allowed."""
        with self._op("recv"):
            return self._recv(source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive; safe for shift patterns (send is buffered)."""
        with self._op("sendrecv"):
            self._send(obj, dest, sendtag)
            return self._recv(source, recvtag)

    # ------------------------------------------------------------------
    # collectives (layered on point-to-point, as in a portable MPI)
    # ------------------------------------------------------------------
    def _collective_tag(self, base: int) -> int:
        self._collective_seq += 1
        return base + self._collective_seq

    def barrier(self) -> None:
        """Synchronize all ranks (gather-to-root then broadcast).

        Layering the barrier on point-to-point means a crashed or wedged
        peer is diagnosed by the same machinery as any other exchange: the
        deadlock report names the operation as ``barrier``.
        """
        with self._op("barrier"):
            self.gather(None, root=0)
            self.bcast(None, root=0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast from root; returns the object on all ranks."""
        with self._op("bcast"):
            tag = self._collective_tag(_TAG_BCAST)
            rel = (self.rank - root) % self.size
            # Receive phase: a non-root rank receives from the parent at its
            # lowest set bit (standard MPICH binomial tree).
            mask = 1
            while mask < self.size:
                if rel & mask:
                    obj = self._recv((rel - mask + root) % self.size, tag)
                    break
                mask <<= 1
            # Send phase: forward to children at all lower bits, descending.
            mask >>= 1
            while mask > 0:
                if rel + mask < self.size:
                    self._send(obj, (rel + mask + root) % self.size, tag)
                mask >>= 1
            return obj

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any:
        """Binomial-tree reduction to root; returns result on root, None elsewhere."""
        with self._op("reduce"):
            tag = self._collective_tag(_TAG_REDUCE)
            rel = (self.rank - root) % self.size
            acc = obj
            mask = 1
            while mask < self.size:
                if rel & mask:
                    self._send(acc, (rel - mask + root) % self.size, tag)
                    break
                partner = rel + mask
                if partner < self.size:
                    other = self._recv((partner + root) % self.size, tag)
                    acc = _combine(acc, other, op)
                mask <<= 1
            return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        """Reduce-then-broadcast allreduce."""
        with self._op("allreduce"):
            result = self.reduce(obj, op=op, root=0)
            return self.bcast(result, root=0)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into a list on root (rank order)."""
        with self._op("gather"):
            tag = self._collective_tag(_TAG_GATHER)
            if self.rank == root:
                out: list[Any] = [None] * self.size
                out[root] = _copy_payload(obj)
                for _ in range(self.size - 1):
                    src, payload = self._recv(ANY_SOURCE, tag)
                    out[src] = payload
                return out
            self._send((self.rank, obj), root, tag)
            return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to root then broadcast the full list."""
        with self._op("allgather"):
            full = self.gather(obj, root=0)
            return self.bcast(full, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a sequence of world-size objects from root."""
        with self._op("scatter"):
            tag = self._collective_tag(_TAG_SCATTER)
            if self.rank == root:
                if objs is None or len(objs) != self.size:
                    raise CommError(f"scatter: root must supply {self.size} items")
                for dest in range(self.size):
                    if dest != root:
                        self._send(objs[dest], dest, tag)
                return _copy_payload(objs[root])
            return self._recv(root, tag)

    def alltoall(self, objs: Sequence[Any], op: str = "alltoall") -> list[Any]:
        """Personalized all-to-all via pairwise exchange rounds.

        This is the communication kernel of the parallel spectral transform
        (Foster & Worley 1997): each rank sends a distinct block to every
        other rank.  ``op`` lets transports label their traffic (e.g.
        ``"transpose.forward"``) in deadlock reports and :class:`CommStats`.
        """
        if len(objs) != self.size:
            raise CommError(f"alltoall: need {self.size} items, got {len(objs)}")
        with self._op(op):
            tag = self._collective_tag(_TAG_ALLTOALL)
            out: list[Any] = [None] * self.size
            out[self.rank] = _copy_payload(objs[self.rank])
            for step in range(1, self.size):
                dest = (self.rank + step) % self.size
                src = (self.rank - step) % self.size
                self._send(objs[dest], dest, tag)
                out[src] = self._recv(src, tag)
            return out

    # ------------------------------------------------------------------
    # sub-communicators
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "CommBase | None":
        """Partition the communicator, MPI_Comm_split style (collective).

        Ranks passing the same ``color`` form a new communicator, ordered
        by ``(key, rank)`` (``key`` defaults to the current rank, so rank
        order is preserved).  ``color=None`` opts out, as MPI_UNDEFINED
        does: the rank participates in the collective but gets ``None``.

        The sub-communicator exchanges messages in its own tag context, so
        its traffic (including collectives) can never match the parent's or
        a sibling group's even with equal tags.  Deadlock reports, crash
        diagnostics and :class:`CommStats` keep identifying ranks by their
        *world* rank; the stats object is shared with the parent so one
        counter sees a rank's total traffic.
        """
        with self._op("split"):
            entries = self.allgather(
                (color, self.rank if key is None else key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in entries if c == color)
        group = [self._to_world(r) for _, r in members]
        new_rank = [r for _, r in members].index(self.rank)
        ctx = self._allocate_context(
            ("split", self._ctx, self._split_seq, color))
        return self._spawn(new_rank, group, ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"
