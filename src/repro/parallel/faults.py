"""Fault injection for the simulated MPI layer.

The communication layer is the part of a coupled model that earns trust
through perturbation: every production MPI code eventually meets delayed
messages, reordered delivery, corrupted payloads, and dead peers, and the
difference between a diagnosable failure and a two-minute hang is whether
those conditions can be *provoked on demand*.  This module provides the
:class:`FaultPlan` that :func:`repro.parallel.simmpi.run_ranks` threads
through every ``send``/``recv`` and therefore through every collective
(collectives are layered on point-to-point, so a plan perturbs ``bcast``,
``reduce``, ``gather``, ``scatter``, ``alltoall`` and ``barrier`` traffic
with no extra plumbing).

The FaultPlan model
-------------------
A plan is an ordered list of rules built with chained calls::

    plan = (FaultPlan()
            .delay(0.2, src=0, dest=1)        # hold messages 0->1 for 200 ms
            .duplicate(src=1, dest=0, tag=5)  # deliver tag-5 messages twice
            .reorder(src=2, dest=3)           # swap consecutive 2->3 messages
            .corrupt(src=0, dest=2, times=1)  # negate the first payload 0->2
            .crash(rank=3, at_op=4))          # rank 3 dies at its 4th comm op

    run_ranks(4, worker, faults=plan)

Rule matching: ``src``/``dest``/``tag`` of ``None`` match anything; ``times``
bounds how often a rule fires (``None`` = unlimited).  Rules are applied in
the order they were added.  The five kinds:

* **delay** — the message is enqueued immediately but becomes *visible* to
  the receiver only ``seconds`` later, modelling a slow link.  Later
  messages on the same link can overtake it, so a delay also perturbs
  ordering exactly as real networks do.
* **reorder** — consecutive matching messages are delivered pairwise
  swapped (the second overtakes the first).  A held message is flushed when
  its sender finishes, dies, or when the world would otherwise deadlock, so
  reordering never wedges a correct program.
* **duplicate** — the message is delivered twice, modelling retransmission.
* **corrupt** — every ndarray in the payload is replaced by ``-x - 1``
  (``~x`` for booleans), a deterministic, always-detectable corruption.
* **crash** — the rank raises ``RankCrashedError`` when it *begins* its
  ``at_op``-th communication operation (1-based, counting top-level ops).
  Peers then observe a structured ``CommError`` naming the dead rank
  instead of hanging.

Calibrating the performance model with CommStats
------------------------------------------------
Every :class:`~repro.parallel.simmpi.SimComm` keeps a
:class:`~repro.parallel.simmpi.CommStats` counter of messages, bytes and
calls per operation label.  ``repro.parallel.components.measure_transpose_comm``
runs the real distributed spectral transpose and returns those per-rank
counters; ``repro.perf.costmodel.transpose_bytes_from_stats`` converts them
into the full-exchange byte volume, which
``repro.perf.eventsim.simulate_coupled_day(..., transpose_comm=...)`` then
charges instead of its analytic ``AtmosphereCost.transpose_bytes()``
formula — simulated timing driven by *measured* message traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

# A message in flight is the tuple (src, dest, tag, payload, visible_at).
_Held = tuple[int, int, int, Any, float]


def corrupt_payload(obj: Any) -> Any:
    """Deterministically corrupt every ndarray in a payload (``-x - 1``)."""
    if isinstance(obj, np.ndarray):
        if obj.dtype == bool:
            return ~obj
        return -obj - 1
    if isinstance(obj, tuple):
        return tuple(corrupt_payload(o) for o in obj)
    if isinstance(obj, list):
        return [corrupt_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: corrupt_payload(v) for k, v in obj.items()}
    return obj


@dataclass
class _Rule:
    kind: str                      # delay | reorder | duplicate | corrupt | crash
    src: int | None = None
    dest: int | None = None
    tag: int | None = None
    seconds: float = 0.0           # delay only
    rank: int | None = None        # crash only
    at_op: int = 1                 # crash only (1-based op counter)
    times: int | None = None       # max firings; None = unlimited
    applied: int = 0
    held: _Held | None = None      # reorder only: the message being held back

    def active(self) -> bool:
        return self.times is None or self.applied < self.times

    def matches_send(self, src: int, dest: int, tag: int) -> bool:
        return (self.active()
                and self.src in (None, src)
                and self.dest in (None, dest)
                and self.tag in (None, tag))


class FaultPlan:
    """An injectable schedule of communication faults (see module docstring).

    A plan is mutable shared state for one :func:`run_ranks` world; all rule
    bookkeeping happens under the world lock, so a plan must not be shared
    between concurrently running worlds.
    """

    def __init__(self):
        self.rules: list[_Rule] = []

    # -------------------------------------------------- builder interface
    def delay(self, seconds: float, *, src: int | None = None,
              dest: int | None = None, tag: int | None = None,
              times: int | None = None) -> "FaultPlan":
        """Delay delivery of matching messages by ``seconds``."""
        if seconds < 0:
            raise ValueError(f"delay must be >= 0, got {seconds}")
        self.rules.append(_Rule("delay", src, dest, tag, seconds=seconds, times=times))
        return self

    def reorder(self, *, src: int | None = None, dest: int | None = None,
                tag: int | None = None, times: int | None = None) -> "FaultPlan":
        """Deliver consecutive matching messages pairwise swapped."""
        self.rules.append(_Rule("reorder", src, dest, tag, times=times))
        return self

    def duplicate(self, *, src: int | None = None, dest: int | None = None,
                  tag: int | None = None, times: int | None = None) -> "FaultPlan":
        """Deliver matching messages twice."""
        self.rules.append(_Rule("duplicate", src, dest, tag, times=times))
        return self

    def corrupt(self, *, src: int | None = None, dest: int | None = None,
                tag: int | None = None, times: int | None = None) -> "FaultPlan":
        """Corrupt ndarray payloads of matching messages."""
        self.rules.append(_Rule("corrupt", src, dest, tag, times=times))
        return self

    def crash(self, rank: int, at_op: int = 1) -> "FaultPlan":
        """Kill ``rank`` when it begins its ``at_op``-th communication op."""
        if at_op < 1:
            raise ValueError(f"at_op is 1-based, got {at_op}")
        self.rules.append(_Rule("crash", rank=rank, at_op=at_op, times=1))
        return self

    # -------------------------------------------------- engine interface
    @property
    def empty(self) -> bool:
        return not self.rules

    def crash_message(self, rank: int, op_count: int, op: str) -> str | None:
        """Return the crash text if ``rank`` must die at op ``op_count``."""
        for rule in self.rules:
            if (rule.kind == "crash" and rule.active()
                    and rule.rank == rank and op_count >= rule.at_op):
                rule.applied += 1
                return (f"rank {rank}: injected crash at communication "
                        f"op #{op_count} ({op})")
        return None

    def apply_send(self, src: int, dest: int, tag: int, payload: Any,
                   now: float,
                   corrupt: Any = corrupt_payload) -> list[tuple[int, int, Any, float]]:
        """Transform one outgoing message into zero or more deliveries.

        Returns ``[(dest, tag, payload, visible_at), ...]`` in delivery
        order; an empty list means the message is held back (reorder).
        Called with the world lock held (thread substrate) or from the
        router, the single point all traffic passes (process substrate —
        which supplies its own ``corrupt`` transform able to reach
        shared-memory-parked arrays).
        """
        visible = now
        copies = 1
        for rule in self.rules:
            if not rule.matches_send(src, dest, tag):
                continue
            if rule.kind == "corrupt":
                rule.applied += 1
                payload = corrupt(payload)
            elif rule.kind == "delay":
                rule.applied += 1
                visible = max(visible, now + rule.seconds)
            elif rule.kind == "duplicate":
                rule.applied += 1
                copies += 1
            elif rule.kind == "reorder":
                rule.applied += 1
                if rule.held is None:
                    rule.held = (src, dest, tag, payload, visible)
                    return []
                _, hdest, htag, hpayload, hvis = rule.held
                rule.held = None
                return ([(dest, tag, payload, visible)] * copies
                        + [(hdest, htag, hpayload, hvis)])
        return [(dest, tag, payload, visible)] * copies

    def flush_held(self, src: int | None = None) -> list[_Held]:
        """Release held (reorder) messages, optionally only those from ``src``.

        Used when a sender finishes or dies, and as the progress valve of the
        deadlock detector: a held message counts as in-flight traffic, so the
        world is not deadlocked while one exists.
        """
        out: list[_Held] = []
        for rule in self.rules:
            if rule.kind == "reorder" and rule.held is not None:
                if src is None or rule.held[0] == src:
                    out.append(rule.held)
                    rule.held = None
        return out
