"""A simulated MPI layer: real message passing between rank threads.

The paper's fourth design element is the use of MPI for all interprocessor
communication.  This module provides a faithful in-process stand-in: each
rank runs in its own thread, and ranks exchange *real* NumPy arrays through
blocking point-to-point channels.  Collectives (bcast, reduce, allreduce,
gather, scatter, alltoall, barrier) are implemented on top of point-to-point
using the standard binomial-tree / pairwise-exchange algorithms, exactly as a
portable MPI implementation would layer them.

The communicator algorithms live in :mod:`repro.parallel.commbase`, shared
with the real-process substrate (:mod:`repro.parallel.procmpi`): this module
contributes the thread transport — a shared :class:`_World` of
condition-variable mailboxes.  Threads are the default substrate because they
are deterministic and cheap to spawn; pass ``substrate="process"`` to
:func:`run_ranks` (or set ``FOAM_COMM=process``) to run the same worker on
forked rank processes for real wall-clock parallelism.

The thread substrate's goal is functional fidelity, not wall-clock parallel
speedup: code that runs correctly on this layer (halo exchanges, spectral
transposes, coupler gathers) is structured the same way the Fortran+MPI
original was.  The companion ``repro.perf`` package models the *timing* of
these exchanges on an IBM SP2-like machine.

Diagnosability is first-class:

* every communicator keeps a :class:`CommStats` counter of messages, bytes
  and calls per operation label, the measured traffic that calibrates
  ``repro.perf.eventsim``;
* a stuck world is diagnosed by a wait-for-graph deadlock detector instead
  of a bare timeout: when every live rank is blocked and no pending message
  can satisfy any of them, each rank raises :class:`DeadlockError` carrying
  a :class:`DeadlockReport` that names every blocked rank, the operation it
  is in (recv/barrier/alltoall/...), its peer and tag, within a fraction of
  a second rather than after two minutes;
* faults (delays, reordering, duplication, corruption, rank crashes) are
  injected through a :class:`repro.parallel.faults.FaultPlan`, and a dead
  rank surfaces on every peer as a structured :class:`CommError` naming the
  crashed rank — never as a hang.

Typical usage::

    def worker(comm):
        data = comm.bcast(payload if comm.rank == 0 else None, root=0)
        ...
        return comm.allreduce(local_sum, op="sum")

    results = run_ranks(4, worker)                      # rank threads
    results = run_ranks(4, worker, substrate="process")  # forked processes
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

from repro.parallel.commbase import (  # noqa: F401 - re-exported public API
    ANY_SOURCE,
    ANY_TAG,
    _CTX_SHIFT,
    _DEFAULT_TIMEOUT,
    _POLL_SLICE,
    _PYTEST_TIMEOUT,
    _TAG_ALLTOALL,
    _TAG_BCAST,
    _TAG_GATHER,
    _TAG_REDUCE,
    _TAG_SCATTER,
    BlockedRank,
    CommBase,
    CommError,
    CommStats,
    DeadlockError,
    DeadlockReport,
    RankCrashedError,
    _combine,
    _copy_payload,
    _default_timeout,
    _find_cycle,
    _match,
    _payload_nbytes,
    resolve_substrate,
)
from repro.parallel.faults import FaultPlan


class _World:
    """Shared state of one rank world: mailboxes, liveness, fault plan.

    All mutation happens under ``cond``; senders notify it, blocked
    receivers wait on it in short slices so failure diagnosis (dead peers,
    deadlock) is prompt.
    """

    def __init__(self, size: int, faults: FaultPlan | None = None):
        self.size = size
        self.cond = threading.Condition()
        # Pending messages per destination: (src, abs_tag, payload, visible_at)
        # where abs_tag carries the communicator context in its high bits.
        self.mail: list[list[tuple[int, int, Any, float]]] = [[] for _ in range(size)]
        # rank -> (op, source, tag, since, ctx) while blocked in a receive;
        # rank/source are world ranks, tag is communicator-local.
        self.blocked: dict[int, tuple[str, int, int, float, int]] = {}
        # Communicator contexts: deterministically keyed so every member of
        # a split lands on the same context id without extra communication.
        self._next_ctx = 1
        self._ctx_keys: dict[tuple, int] = {}
        self.finished: set[int] = set()
        # rank -> (origin_rank, reason): origin is the root-cause crash, so
        # transitively failing peers keep naming the rank that really died.
        self.dead: dict[int, tuple[int, str]] = {}
        self.deadlock: DeadlockReport | None = None
        self.faults = faults or FaultPlan()

    def mark_finished(self, rank: int) -> None:
        with self.cond:
            self.finished.add(rank)
            self._release_held(self.faults.flush_held(src=rank))
            self.cond.notify_all()

    def mark_dead(self, rank: int, exc: BaseException) -> None:
        origin = getattr(exc, "origin_rank", rank)
        if origin != rank and origin in self.dead:
            reason = self.dead[origin][1]
        else:
            reason = f"{type(exc).__name__}: {exc}"
        with self.cond:
            self.dead[rank] = (origin, reason)
            self._release_held(self.faults.flush_held(src=rank))
            self.cond.notify_all()

    def _release_held(self, held) -> None:
        for src, dest, tag, payload, visible in held:
            self.mail[dest].append((src, tag, payload, visible))

    def allocate_context(self, key: tuple) -> int:
        """Context id for one split group; same key -> same id on every member."""
        with self.cond:
            ctx = self._ctx_keys.get(key)
            if ctx is None:
                ctx = self._ctx_keys[key] = self._next_ctx
                self._next_ctx += 1
            return ctx

    def detect_deadlock(self, now: float) -> DeadlockReport | None:
        """Wait-for-graph deadlock check; call with ``cond`` held.

        The world is deadlocked when every live rank is blocked in a
        receive and no pending (or held) message can satisfy any of them.
        The last rank to block always runs this check, so detection needs
        no dedicated watchdog thread.
        """
        live = [r for r in range(self.size)
                if r not in self.finished and r not in self.dead]
        if not live or any(r not in self.blocked for r in live):
            return None  # somebody can still make progress
        held = self.faults.flush_held()
        if held:  # in-flight reorder holdbacks count as progress
            self._release_held(held)
            self.cond.notify_all()
            return None
        for r in live:
            _, src, tag, _, ctx = self.blocked[r]
            if any(_match(msrc, mtag, src, tag, ctx)
                   for msrc, mtag, _, _ in self.mail[r]):
                return None  # r has (possibly delayed) matching traffic
        blocked = tuple(
            BlockedRank(rank=r, op=self.blocked[r][0], peer=self.blocked[r][1],
                        tag=self.blocked[r][2], waited=now - self.blocked[r][3])
            for r in sorted(live))
        edges = {r: ([self.blocked[r][1]] if self.blocked[r][1] != ANY_SOURCE
                     else [x for x in live if x != r])
                 for r in live}
        report = DeadlockReport(blocked=blocked, cycle=_find_cycle(edges),
                                dead=tuple(sorted(self.dead)))
        self.deadlock = report
        self.cond.notify_all()
        return report


class SimComm(CommBase):
    """Communicator for one rank of a thread-substrate simulated MPI world.

    The collective algorithms and the public API live in
    :class:`~repro.parallel.commbase.CommBase`; this class provides the
    thread transport: blocking point-to-point over the shared
    :class:`_World` mailboxes, fault injection under the world lock, and
    in-place wait-for-graph deadlock detection (every rank can see the
    whole world's blocked set, so the last rank to block diagnoses the
    cycle itself).
    """

    def __init__(self, rank: int, size: int, world: _World,
                 timeout: float | None = None, *,
                 group: Sequence[int] | None = None, ctx: int = 0,
                 stats: CommStats | None = None):
        super().__init__(rank, size, timeout=timeout, group=group, ctx=ctx,
                         stats=stats)
        self._world = world

    # ------------------------------------------------------------------
    # substrate hooks
    # ------------------------------------------------------------------
    def _crash_message(self, op: str) -> str | None:
        with self._world.cond:
            return self._world.faults.crash_message(
                self._wrank, self._op_count, op)

    def _allocate_context(self, key: tuple) -> int:
        return self._world.allocate_context(key)

    def _spawn(self, new_rank: int, group: list[int], ctx: int) -> "SimComm":
        return SimComm(new_rank, len(group), self._world,
                       timeout=self._timeout, group=group, ctx=ctx,
                       stats=self.stats)

    def _send(self, obj: Any, dest: int, tag: int) -> None:
        self._check_send_args(dest)
        payload = _copy_payload(obj)
        op = self._op_stack[0]
        world = self._world
        dest_w = self._to_world(dest)
        abs_tag = (self._ctx << _CTX_SHIFT) + tag
        with world.cond:
            deliveries = world.faults.apply_send(
                self._wrank, dest_w, abs_tag, payload, time.monotonic())
            for ddest, dtag, dpayload, visible in deliveries:
                self.stats.note_send(op, ddest, _payload_nbytes(dpayload))
                world.mail[ddest].append((self._wrank, dtag, dpayload, visible))
            if deliveries:
                world.cond.notify_all()

    def _recv(self, source: int, tag: int) -> Any:
        self._check_recv_args(source)
        op = self._op_stack[0]
        world = self._world
        me = self._wrank
        src_w = ANY_SOURCE if source == ANY_SOURCE else self._to_world(source)
        ctx = self._ctx
        start = time.monotonic()
        deadline = start + self._timeout
        with world.cond:
            world.blocked[me] = (op, src_w, tag, start, ctx)
            try:
                while True:
                    now = time.monotonic()
                    box = world.mail[me]
                    next_visible: float | None = None
                    for i, (src, t, payload, visible) in enumerate(box):
                        if not _match(src, t, src_w, tag, ctx):
                            continue
                        if visible > now:  # delayed message, not yet deliverable
                            next_visible = (visible if next_visible is None
                                            else min(next_visible, visible))
                            continue
                        del box[i]
                        self.stats.note_recv(_payload_nbytes(payload))
                        return payload
                    if world.deadlock is not None:
                        raise DeadlockError(world.deadlock)
                    if next_visible is None:
                        # No matching (even delayed) traffic pending: check
                        # whether the awaited peer can still ever send.
                        self._peer_liveness_error(source, tag, op,
                                                  world.dead, world.finished)
                    report = world.detect_deadlock(now)
                    if report is not None:
                        raise DeadlockError(report)
                    if now >= deadline:
                        raise CommError(
                            f"rank {me}: {op}(source={src_w}, tag={tag}) "
                            f"timed out after {self._timeout}s")
                    wait = min(_POLL_SLICE, deadline - now)
                    if next_visible is not None:
                        wait = min(wait, max(next_visible - now, 0.0) + 1e-4)
                    world.cond.wait(wait)
            finally:
                world.blocked.pop(me, None)


def run_ranks(size: int, fn: Callable[..., Any], *,
              timeout: float | None = None, args: tuple = (),
              faults: FaultPlan | None = None,
              return_exceptions: bool = False,
              substrate: str | None = None) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; return per-rank results.

    ``substrate`` picks the transport: ``"thread"`` (default) runs ranks as
    threads of this process; ``"process"`` forks real rank processes
    (:func:`repro.parallel.procmpi.run_ranks_process`) for wall-clock
    parallelism.  ``None`` defers to the ``FOAM_COMM`` environment variable.

    ``timeout`` bounds every blocking operation; ``None`` resolves via
    :func:`_default_timeout` (low under pytest, ``REPRO_SIMMPI_TIMEOUT``
    overrides).  ``faults`` is an optional
    :class:`~repro.parallel.faults.FaultPlan` perturbing all traffic.

    With ``return_exceptions=False`` (default), exceptions on any rank are
    re-raised in the caller after all ranks have been joined, preferring
    the root cause: genuine (non-communication) errors first, then injected
    crashes, then structured deadlock reports, then secondary ``CommError``
    fallout.  With ``return_exceptions=True``, each rank's slot in the
    result list holds either its return value or the exception it raised —
    the mode fault-injection tests use to assert what *every* peer saw.
    """
    if resolve_substrate(substrate) == "process":
        from repro.parallel.procmpi import run_ranks_process
        return run_ranks_process(size, fn, timeout=timeout, args=args,
                                 faults=faults,
                                 return_exceptions=return_exceptions)
    if size < 1:
        raise CommError(f"world size must be >= 1, got {size}")
    tmo = _default_timeout() if timeout is None else timeout
    world = _World(size, faults=faults)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        comm = SimComm(rank, size, world, timeout=tmo)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagate to main thread
            errors[rank] = exc
            world.mark_dead(rank, exc)
        else:
            world.mark_finished(rank)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=tmo + 10.0)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise CommError(f"{len(alive)} rank thread(s) failed to finish (deadlock?)")
    if return_exceptions:
        return [errors[r] if errors[r] is not None else results[r]
                for r in range(size)]
    for picker in ((lambda e: not isinstance(e, CommError)),
                   (lambda e: isinstance(e, RankCrashedError)),
                   (lambda e: isinstance(e, DeadlockError)),
                   (lambda e: True)):
        for err in errors:
            if err is not None and picker(err):
                raise err
    return results
