"""A simulated MPI layer: real message passing between rank threads.

The paper's fourth design element is the use of MPI for all interprocessor
communication.  This module provides a faithful in-process stand-in: each
rank runs in its own thread, and ranks exchange *real* NumPy arrays through
blocking point-to-point channels.  Collectives (bcast, reduce, allreduce,
gather, scatter, alltoall, barrier) are implemented on top of point-to-point
using the standard binomial-tree / pairwise-exchange algorithms, exactly as a
portable MPI implementation would layer them.

The goal is functional fidelity, not wall-clock parallel speedup: code that
runs correctly on this layer (halo exchanges, spectral transposes, coupler
gathers) is structured the same way the Fortran+MPI original was.  The
companion ``repro.perf`` package models the *timing* of these exchanges on an
IBM SP2-like machine.

Typical usage::

    def worker(comm):
        data = comm.bcast(payload if comm.rank == 0 else None, root=0)
        ...
        return comm.allreduce(local_sum, op="sum")

    results = run_ranks(4, worker)
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

ANY_SOURCE = -1
ANY_TAG = -1
_DEFAULT_TIMEOUT = 120.0  # seconds before declaring deadlock in tests


class CommError(RuntimeError):
    """Raised on misuse of the communicator (bad rank, deadlock timeout)."""


@dataclass
class _Mailbox:
    """Per-destination-rank mailbox holding (source, tag, payload) messages."""

    q: "queue.Queue[tuple[int, int, Any]]" = field(default_factory=queue.Queue)
    # Messages popped while matching a selective recv, awaiting re-delivery.
    stash: list[tuple[int, int, Any]] = field(default_factory=list)


class SimComm:
    """Communicator for one rank of a simulated MPI world.

    Mirrors the mpi4py API subset the model uses.  Lower-case methods move
    arbitrary Python objects; arrays are passed by reference after a defensive
    copy at send time (MPI semantics: the send buffer may be reused by the
    sender immediately after ``send`` returns).
    """

    def __init__(self, rank: int, size: int, mailboxes: list[_Mailbox],
                 barrier: threading.Barrier, timeout: float = _DEFAULT_TIMEOUT):
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range for world size {size}")
        self.rank = rank
        self.size = size
        self._mailboxes = mailboxes
        self._barrier = barrier
        self._timeout = timeout
        self.bytes_sent = 0
        self.messages_sent = 0
        # Collective sequence number: every rank calls collectives in the
        # same order, so stamping the tag with a per-call counter keeps
        # back-to-back collectives from consuming each other's messages.
        self._collective_seq = 0

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send (buffered: never deadlocks by itself)."""
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")
        payload = _copy_payload(obj)
        self.bytes_sent += _payload_nbytes(payload)
        self.messages_sent += 1
        self._mailboxes[dest].q.put((self.rank, tag, payload))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive matching (source, tag); wildcards allowed."""
        box = self._mailboxes[self.rank]
        # First scan the stash of previously unmatched messages.
        for i, (src, t, payload) in enumerate(box.stash):
            if _match(src, t, source, tag):
                box.stash.pop(i)
                return payload
        while True:
            try:
                src, t, payload = box.q.get(timeout=self._timeout)
            except queue.Empty:
                raise CommError(
                    f"rank {self.rank}: recv(source={source}, tag={tag}) timed out "
                    f"after {self._timeout}s — likely deadlock") from None
            if _match(src, t, source, tag):
                return payload
            box.stash.append((src, t, payload))

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive; safe for shift patterns (send is buffered)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------
    # collectives (layered on point-to-point, as in a portable MPI)
    # ------------------------------------------------------------------
    def _collective_tag(self, base: int) -> int:
        self._collective_seq += 1
        return base + self._collective_seq

    def barrier(self) -> None:
        """Synchronize all ranks."""
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise CommError(f"rank {self.rank}: barrier broken (deadlock or peer died)")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast from root; returns the object on all ranks."""
        tag = self._collective_tag(_TAG_BCAST)
        rel = (self.rank - root) % self.size
        # Receive phase: a non-root rank receives from the parent at its
        # lowest set bit (standard MPICH binomial tree).
        mask = 1
        while mask < self.size:
            if rel & mask:
                obj = self.recv(source=(rel - mask + root) % self.size, tag=tag)
                break
            mask <<= 1
        # Send phase: forward to children at all lower bits, descending.
        mask >>= 1
        while mask > 0:
            if rel + mask < self.size:
                self.send(obj, dest=(rel + mask + root) % self.size, tag=tag)
            mask >>= 1
        return obj

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any:
        """Binomial-tree reduction to root; returns result on root, None elsewhere."""
        tag = self._collective_tag(_TAG_REDUCE)
        rel = (self.rank - root) % self.size
        acc = obj
        mask = 1
        while mask < self.size:
            if rel & mask:
                self.send(acc, dest=(rel - mask + root) % self.size, tag=tag)
                break
            partner = rel + mask
            if partner < self.size:
                other = self.recv(source=(partner + root) % self.size, tag=tag)
                acc = _combine(acc, other, op)
            mask <<= 1
        return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        """Reduce-then-broadcast allreduce."""
        result = self.reduce(obj, op=op, root=0)
        return self.bcast(result, root=0)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into a list on root (rank order)."""
        tag = self._collective_tag(_TAG_GATHER)
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[root] = _copy_payload(obj)
            for _ in range(self.size - 1):
                src, payload = self.recv(source=ANY_SOURCE, tag=tag)
                out[src] = payload
            return out
        self.send((self.rank, obj), dest=root, tag=tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to root then broadcast the full list."""
        full = self.gather(obj, root=0)
        return self.bcast(full, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a sequence of world-size objects from root."""
        tag = self._collective_tag(_TAG_SCATTER)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommError(f"scatter: root must supply {self.size} items")
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest=dest, tag=tag)
            return _copy_payload(objs[root])
        return self.recv(source=root, tag=tag)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all via pairwise exchange rounds.

        This is the communication kernel of the parallel spectral transform
        (Foster & Worley 1997): each rank sends a distinct block to every
        other rank.
        """
        if len(objs) != self.size:
            raise CommError(f"alltoall: need {self.size} items, got {len(objs)}")
        tag = self._collective_tag(_TAG_ALLTOALL)
        out: list[Any] = [None] * self.size
        out[self.rank] = _copy_payload(objs[self.rank])
        for step in range(1, self.size):
            dest = (self.rank + step) % self.size
            src = (self.rank - step) % self.size
            out[src] = self.sendrecv(objs[dest], dest=dest, source=src,
                                     sendtag=tag, recvtag=tag)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size})"


_TAG_BCAST = 1 << 30
_TAG_REDUCE = 2 << 30
_TAG_GATHER = 3 << 30
_TAG_SCATTER = 4 << 30
_TAG_ALLTOALL = 5 << 30


def _match(src: int, tag: int, want_src: int, want_tag: int) -> bool:
    return (want_src in (ANY_SOURCE, src)) and (want_tag in (ANY_TAG, tag))


def _copy_payload(obj: Any) -> Any:
    """Copy send buffers so the sender may safely reuse them (MPI semantics)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_copy_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v) for v in obj.values())
    return 64  # rough envelope for small scalars/objects


def _combine(a: Any, b: Any, op: str) -> Any:
    if op == "sum":
        return a + b
    if op == "max":
        return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
    if op == "min":
        return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
    if op == "prod":
        return a * b
    raise CommError(f"unsupported reduction op {op!r}")


def run_ranks(size: int, fn: Callable[[SimComm], Any], *,
              timeout: float = _DEFAULT_TIMEOUT, args: tuple = ()) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return per-rank results.

    Exceptions on any rank are re-raised in the caller (first by rank order),
    after all threads have been joined, so a failing test reports the real
    error instead of a deadlock.
    """
    if size < 1:
        raise CommError(f"world size must be >= 1, got {size}")
    mailboxes = [_Mailbox() for _ in range(size)]
    barrier = threading.Barrier(size)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        comm = SimComm(rank, size, mailboxes, barrier, timeout=timeout)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagate to main thread
            errors[rank] = exc
            barrier.abort()

    threads = [threading.Thread(target=runner, args=(r,), daemon=True) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 10.0)
    # Prefer the root-cause exception: when one rank dies it aborts the
    # barrier, so peers fail with secondary CommErrors we should not mask.
    real = [e for e in errors if e is not None and not isinstance(e, CommError)]
    if real:
        raise real[0]
    for err in errors:
        if err is not None:
            raise err
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise CommError(f"{len(alive)} rank thread(s) failed to finish (deadlock?)")
    return results
