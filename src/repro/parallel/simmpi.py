"""A simulated MPI layer: real message passing between rank threads.

The paper's fourth design element is the use of MPI for all interprocessor
communication.  This module provides a faithful in-process stand-in: each
rank runs in its own thread, and ranks exchange *real* NumPy arrays through
blocking point-to-point channels.  Collectives (bcast, reduce, allreduce,
gather, scatter, alltoall, barrier) are implemented on top of point-to-point
using the standard binomial-tree / pairwise-exchange algorithms, exactly as a
portable MPI implementation would layer them.

The goal is functional fidelity, not wall-clock parallel speedup: code that
runs correctly on this layer (halo exchanges, spectral transposes, coupler
gathers) is structured the same way the Fortran+MPI original was.  The
companion ``repro.perf`` package models the *timing* of these exchanges on an
IBM SP2-like machine.

Diagnosability is first-class:

* every communicator keeps a :class:`CommStats` counter of messages, bytes
  and calls per operation label, the measured traffic that calibrates
  ``repro.perf.eventsim``;
* a stuck world is diagnosed by a wait-for-graph deadlock detector instead
  of a bare timeout: when every live rank is blocked and no pending message
  can satisfy any of them, each rank raises :class:`DeadlockError` carrying
  a :class:`DeadlockReport` that names every blocked rank, the operation it
  is in (recv/barrier/alltoall/...), its peer and tag, within a fraction of
  a second rather than after two minutes;
* faults (delays, reordering, duplication, corruption, rank crashes) are
  injected through a :class:`repro.parallel.faults.FaultPlan`, and a dead
  rank surfaces on every peer as a structured :class:`CommError` naming the
  crashed rank — never as a hang.

Typical usage::

    def worker(comm):
        data = comm.bcast(payload if comm.rank == 0 else None, root=0)
        ...
        return comm.allreduce(local_sum, op="sum")

    results = run_ranks(4, worker)
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.parallel.faults import FaultPlan

ANY_SOURCE = -1
ANY_TAG = -1
_CTX_SHIFT = 36                # communicator-context bits above the tag space:
                               # absolute tag = (ctx << _CTX_SHIFT) + tag, so
                               # sub-communicator traffic can never match the
                               # parent's (collective bases stop at 5 << 30)
_DEFAULT_TIMEOUT = 120.0       # seconds before declaring a hang outside pytest
_PYTEST_TIMEOUT = 10.0         # default under pytest: a genuine bug should not
                               # cost the suite two minutes of sleeping
_POLL_SLICE = 0.05             # receiver wake-up cadence for failure checks


def _default_timeout() -> float:
    """Resolve the default communication timeout for this process.

    ``REPRO_SIMMPI_TIMEOUT`` overrides; otherwise the default is low when
    running under pytest.  The timeout is a last-resort backstop — genuine
    deadlocks are caught by the wait-for-graph detector long before it.
    """
    env = os.environ.get("REPRO_SIMMPI_TIMEOUT")
    if env:
        return float(env)
    if os.environ.get("PYTEST_CURRENT_TEST") or "pytest" in sys.modules:
        return _PYTEST_TIMEOUT
    return _DEFAULT_TIMEOUT


class CommError(RuntimeError):
    """Raised on misuse of the communicator (bad rank, dead peer, timeout)."""


class RankCrashedError(CommError):
    """Raised on the victim rank by an injected ``FaultPlan.crash`` rule."""


@dataclass(frozen=True)
class BlockedRank:
    """One blocked rank in a :class:`DeadlockReport`."""

    rank: int
    op: str                    # operation label: recv, barrier, alltoall, ...
    peer: int                  # source rank it waits on; ANY_SOURCE if wildcard
    tag: int                   # tag it waits on; ANY_TAG if wildcard
    waited: float              # seconds spent blocked when diagnosed

    def __str__(self) -> str:
        peer = "ANY" if self.peer == ANY_SOURCE else self.peer
        tag = "ANY" if self.tag == ANY_TAG else self.tag
        return (f"rank {self.rank}: blocked in {self.op}(source={peer}, "
                f"tag={tag}) for {self.waited:.2f}s")


@dataclass(frozen=True)
class DeadlockReport:
    """Structured diagnosis of a wedged world.

    ``blocked`` lists every live blocked rank with its operation, peer and
    tag; ``cycle`` is a wait-for cycle if one exists (``r`` waits on the
    next entry, the last waits on the first); ``dead`` lists crashed ranks
    implicated in the hang.
    """

    blocked: tuple[BlockedRank, ...]
    cycle: tuple[int, ...] = ()
    dead: tuple[int, ...] = ()

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(b.rank for b in self.blocked)

    def __str__(self) -> str:
        lines = [f"deadlock among {len(self.blocked)} rank(s):"]
        lines += [f"  {b}" for b in self.blocked]
        if self.cycle:
            lines.append("  wait-for cycle: "
                         + " -> ".join(str(r) for r in self.cycle)
                         + f" -> {self.cycle[0]}")
        if self.dead:
            lines.append("  crashed rank(s): "
                         + ", ".join(str(r) for r in self.dead))
        return "\n".join(lines)


class DeadlockError(CommError):
    """A diagnosed deadlock; ``.report`` holds the :class:`DeadlockReport`."""

    def __init__(self, report: DeadlockReport):
        super().__init__(str(report))
        self.report = report


@dataclass
class CommStats:
    """Per-rank message/byte/operation counters.

    ``op_*`` dictionaries are keyed by the *outermost* operation label
    active when traffic moved — a send inside ``bcast`` inside ``barrier``
    is charged to ``"barrier"`` — so transports like the spectral transpose
    can label their traffic (``"transpose.forward"``) and the performance
    model can be calibrated from measured volumes
    (:func:`repro.perf.costmodel.transpose_bytes_from_stats`).
    """

    rank: int
    msgs_sent: int = 0
    bytes_sent: int = 0
    msgs_recv: int = 0
    bytes_recv: int = 0
    op_calls: dict[str, int] = field(default_factory=dict)   # label -> # calls
    op_msgs: dict[str, int] = field(default_factory=dict)    # label -> msgs sent
    op_bytes: dict[str, int] = field(default_factory=dict)   # label -> bytes sent
    peer_msgs: dict[int, int] = field(default_factory=dict)  # dest -> msgs sent
    peer_bytes: dict[int, int] = field(default_factory=dict)  # dest -> bytes sent

    def note_call(self, op: str) -> None:
        self.op_calls[op] = self.op_calls.get(op, 0) + 1

    def note_send(self, op: str, dest: int, nbytes: int) -> None:
        self.msgs_sent += 1
        self.bytes_sent += nbytes
        self.op_msgs[op] = self.op_msgs.get(op, 0) + 1
        self.op_bytes[op] = self.op_bytes.get(op, 0) + nbytes
        self.peer_msgs[dest] = self.peer_msgs.get(dest, 0) + 1
        self.peer_bytes[dest] = self.peer_bytes.get(dest, 0) + nbytes

    def note_recv(self, nbytes: int) -> None:
        self.msgs_recv += 1
        self.bytes_recv += nbytes

    def bytes_for(self, prefix: str) -> int:
        """Total bytes sent under operation labels starting with ``prefix``."""
        return sum(v for k, v in self.op_bytes.items() if k.startswith(prefix))

    def msgs_for(self, prefix: str) -> int:
        """Total messages sent under labels starting with ``prefix``."""
        return sum(v for k, v in self.op_msgs.items() if k.startswith(prefix))


def _find_cycle(edges: dict[int, list[int]]) -> tuple[int, ...]:
    """Find one cycle in a wait-for graph; () if none."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {r: WHITE for r in edges}
    for start in edges:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(edges[start]))]
        color[start] = GREY
        path = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == GREY:
                    return tuple(path[path.index(nxt):])
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(edges[nxt])))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return ()


class _World:
    """Shared state of one rank world: mailboxes, liveness, fault plan.

    All mutation happens under ``cond``; senders notify it, blocked
    receivers wait on it in short slices so failure diagnosis (dead peers,
    deadlock) is prompt.
    """

    def __init__(self, size: int, faults: FaultPlan | None = None):
        self.size = size
        self.cond = threading.Condition()
        # Pending messages per destination: (src, abs_tag, payload, visible_at)
        # where abs_tag carries the communicator context in its high bits.
        self.mail: list[list[tuple[int, int, Any, float]]] = [[] for _ in range(size)]
        # rank -> (op, source, tag, since, ctx) while blocked in a receive;
        # rank/source are world ranks, tag is communicator-local.
        self.blocked: dict[int, tuple[str, int, int, float, int]] = {}
        # Communicator contexts: deterministically keyed so every member of
        # a split lands on the same context id without extra communication.
        self._next_ctx = 1
        self._ctx_keys: dict[tuple, int] = {}
        self.finished: set[int] = set()
        # rank -> (origin_rank, reason): origin is the root-cause crash, so
        # transitively failing peers keep naming the rank that really died.
        self.dead: dict[int, tuple[int, str]] = {}
        self.deadlock: DeadlockReport | None = None
        self.faults = faults or FaultPlan()

    def mark_finished(self, rank: int) -> None:
        with self.cond:
            self.finished.add(rank)
            self._release_held(self.faults.flush_held(src=rank))
            self.cond.notify_all()

    def mark_dead(self, rank: int, exc: BaseException) -> None:
        origin = getattr(exc, "origin_rank", rank)
        if origin != rank and origin in self.dead:
            reason = self.dead[origin][1]
        else:
            reason = f"{type(exc).__name__}: {exc}"
        with self.cond:
            self.dead[rank] = (origin, reason)
            self._release_held(self.faults.flush_held(src=rank))
            self.cond.notify_all()

    def _release_held(self, held) -> None:
        for src, dest, tag, payload, visible in held:
            self.mail[dest].append((src, tag, payload, visible))

    def allocate_context(self, key: tuple) -> int:
        """Context id for one split group; same key -> same id on every member."""
        with self.cond:
            ctx = self._ctx_keys.get(key)
            if ctx is None:
                ctx = self._ctx_keys[key] = self._next_ctx
                self._next_ctx += 1
            return ctx

    def detect_deadlock(self, now: float) -> DeadlockReport | None:
        """Wait-for-graph deadlock check; call with ``cond`` held.

        The world is deadlocked when every live rank is blocked in a
        receive and no pending (or held) message can satisfy any of them.
        The last rank to block always runs this check, so detection needs
        no dedicated watchdog thread.
        """
        live = [r for r in range(self.size)
                if r not in self.finished and r not in self.dead]
        if not live or any(r not in self.blocked for r in live):
            return None  # somebody can still make progress
        held = self.faults.flush_held()
        if held:  # in-flight reorder holdbacks count as progress
            self._release_held(held)
            self.cond.notify_all()
            return None
        for r in live:
            _, src, tag, _, ctx = self.blocked[r]
            if any(_match(msrc, mtag, src, tag, ctx)
                   for msrc, mtag, _, _ in self.mail[r]):
                return None  # r has (possibly delayed) matching traffic
        blocked = tuple(
            BlockedRank(rank=r, op=self.blocked[r][0], peer=self.blocked[r][1],
                        tag=self.blocked[r][2], waited=now - self.blocked[r][3])
            for r in sorted(live))
        edges = {r: ([self.blocked[r][1]] if self.blocked[r][1] != ANY_SOURCE
                     else [x for x in live if x != r])
                 for r in live}
        report = DeadlockReport(blocked=blocked, cycle=_find_cycle(edges),
                                dead=tuple(sorted(self.dead)))
        self.deadlock = report
        self.cond.notify_all()
        return report


class SimComm:
    """Communicator for one rank of a simulated MPI world.

    Mirrors the mpi4py API subset the model uses.  Lower-case methods move
    arbitrary Python objects; arrays are passed by reference after a defensive
    copy at send time (MPI semantics: the send buffer may be reused by the
    sender immediately after ``send`` returns).
    """

    def __init__(self, rank: int, size: int, world: _World,
                 timeout: float | None = None, *,
                 group: Sequence[int] | None = None, ctx: int = 0,
                 stats: CommStats | None = None):
        if not 0 <= rank < size:
            raise CommError(f"rank {rank} out of range for world size {size}")
        self.rank = rank
        self.size = size
        self._world = world
        self._timeout = _default_timeout() if timeout is None else timeout
        # Sub-communicator plumbing: ``group`` maps local -> world ranks
        # (None = identity, the world communicator fast path); ``ctx`` is
        # the context id stamped into message tags.  Liveness, deadlock
        # reports and mailboxes always operate on world ranks.
        self._group = list(group) if group is not None else None
        self._ctx = ctx
        self._wrank = rank if self._group is None else self._group[rank]
        self.stats = stats if stats is not None else CommStats(rank=rank)
        # Collective sequence number: every rank calls collectives in the
        # same order, so stamping the tag with a per-call counter keeps
        # back-to-back collectives from consuming each other's messages.
        self._collective_seq = 0
        self._split_seq = 0
        self._op_stack: list[str] = []
        self._op_count = 0

    def _to_world(self, rank: int) -> int:
        return rank if self._group is None else self._group[rank]

    # Legacy counter aliases (pre-CommStats API).
    @property
    def bytes_sent(self) -> int:
        return self.stats.bytes_sent

    @property
    def messages_sent(self) -> int:
        return self.stats.msgs_sent

    @contextmanager
    def _op(self, name: str):
        """Operation scope: labels traffic and triggers injected crashes.

        Only the *outermost* scope counts toward ``op_calls`` and the crash
        op counter, so ``allreduce`` is one op even though it layers on
        ``reduce`` + ``bcast``.
        """
        outermost = not self._op_stack
        self._op_stack.append(name)
        try:
            if outermost:
                self.stats.note_call(name)
                self._op_count += 1
                with self._world.cond:
                    msg = self._world.faults.crash_message(
                        self._wrank, self._op_count, name)
                if msg is not None:
                    raise RankCrashedError(msg)
            yield
        finally:
            self._op_stack.pop()

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send (buffered: never deadlocks by itself)."""
        with self._op("send"):
            self._send(obj, dest, tag)

    def _send(self, obj: Any, dest: int, tag: int) -> None:
        if not isinstance(dest, (int, np.integer)):
            # Catch swapped send(dest, obj) arguments with a clear error
            # instead of an unhashable-type failure inside the stats layer.
            raise TypeError(
                f"send: dest must be an integer rank, got "
                f"{type(dest).__name__} — signature is send(obj, dest, tag)")
        if not 0 <= dest < self.size:
            raise CommError(f"send: bad destination rank {dest}")
        payload = _copy_payload(obj)
        op = self._op_stack[0]
        world = self._world
        dest_w = self._to_world(dest)
        abs_tag = (self._ctx << _CTX_SHIFT) + tag
        with world.cond:
            deliveries = world.faults.apply_send(
                self._wrank, dest_w, abs_tag, payload, time.monotonic())
            for ddest, dtag, dpayload, visible in deliveries:
                self.stats.note_send(op, ddest, _payload_nbytes(dpayload))
                world.mail[ddest].append((self._wrank, dtag, dpayload, visible))
            if deliveries:
                world.cond.notify_all()

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive matching (source, tag); wildcards allowed."""
        with self._op("recv"):
            return self._recv(source, tag)

    def _recv(self, source: int, tag: int) -> Any:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommError(f"recv: bad source rank {source}")
        op = self._op_stack[0]
        world = self._world
        me = self._wrank
        src_w = ANY_SOURCE if source == ANY_SOURCE else self._to_world(source)
        ctx = self._ctx
        start = time.monotonic()
        deadline = start + self._timeout
        with world.cond:
            world.blocked[me] = (op, src_w, tag, start, ctx)
            try:
                while True:
                    now = time.monotonic()
                    box = world.mail[me]
                    next_visible: float | None = None
                    for i, (src, t, payload, visible) in enumerate(box):
                        if not _match(src, t, src_w, tag, ctx):
                            continue
                        if visible > now:  # delayed message, not yet deliverable
                            next_visible = (visible if next_visible is None
                                            else min(next_visible, visible))
                            continue
                        del box[i]
                        self.stats.note_recv(_payload_nbytes(payload))
                        return payload
                    if world.deadlock is not None:
                        raise DeadlockError(world.deadlock)
                    if next_visible is None:
                        # No matching (even delayed) traffic pending: check
                        # whether the awaited peer can still ever send.
                        self._check_peer_liveness(source, tag, op)
                    report = world.detect_deadlock(now)
                    if report is not None:
                        raise DeadlockError(report)
                    if now >= deadline:
                        raise CommError(
                            f"rank {me}: {op}(source={src_w}, tag={tag}) "
                            f"timed out after {self._timeout}s")
                    wait = min(_POLL_SLICE, deadline - now)
                    if next_visible is not None:
                        wait = min(wait, max(next_visible - now, 0.0) + 1e-4)
                    world.cond.wait(wait)
            finally:
                world.blocked.pop(me, None)

    def _check_peer_liveness(self, source: int, tag: int, op: str) -> None:
        """Fail fast when the awaited peer(s) can never send; lock held.

        ``source`` is communicator-local; liveness is tracked (and reported)
        in world ranks.
        """
        world = self._world
        if source != ANY_SOURCE:
            src_w = self._to_world(source)
            if src_w in world.dead:
                origin, reason = world.dead[src_w]
                err = CommError(
                    f"rank {self._wrank}: {op}(source={src_w}, tag={tag}) failed "
                    f"— rank {origin} crashed ({reason})")
                err.origin_rank = origin
                raise err
            if src_w in world.finished:
                raise CommError(
                    f"rank {self._wrank}: {op}(source={src_w}, tag={tag}) can "
                    f"never complete — rank {src_w} already finished")
            return
        others = [self._to_world(r) for r in range(self.size) if r != self.rank]
        if others and all(r in world.finished or r in world.dead for r in others):
            dead = sorted(r for r in others if r in world.dead)
            if dead:
                origin, reason = world.dead[dead[0]]
                err = CommError(
                    f"rank {self._wrank}: {op}(source=ANY, tag={tag}) failed "
                    f"— rank {origin} crashed ({reason})")
                err.origin_rank = origin
                raise err
            raise CommError(
                f"rank {self._wrank}: {op}(source=ANY, tag={tag}) can never "
                f"complete — all peers already finished")

    def sendrecv(self, obj: Any, dest: int, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive; safe for shift patterns (send is buffered)."""
        with self._op("sendrecv"):
            self._send(obj, dest, sendtag)
            return self._recv(source, recvtag)

    # ------------------------------------------------------------------
    # collectives (layered on point-to-point, as in a portable MPI)
    # ------------------------------------------------------------------
    def _collective_tag(self, base: int) -> int:
        self._collective_seq += 1
        return base + self._collective_seq

    def barrier(self) -> None:
        """Synchronize all ranks (gather-to-root then broadcast).

        Layering the barrier on point-to-point means a crashed or wedged
        peer is diagnosed by the same machinery as any other exchange: the
        deadlock report names the operation as ``barrier``.
        """
        with self._op("barrier"):
            self.gather(None, root=0)
            self.bcast(None, root=0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast from root; returns the object on all ranks."""
        with self._op("bcast"):
            tag = self._collective_tag(_TAG_BCAST)
            rel = (self.rank - root) % self.size
            # Receive phase: a non-root rank receives from the parent at its
            # lowest set bit (standard MPICH binomial tree).
            mask = 1
            while mask < self.size:
                if rel & mask:
                    obj = self._recv((rel - mask + root) % self.size, tag)
                    break
                mask <<= 1
            # Send phase: forward to children at all lower bits, descending.
            mask >>= 1
            while mask > 0:
                if rel + mask < self.size:
                    self._send(obj, (rel + mask + root) % self.size, tag)
                mask >>= 1
            return obj

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any:
        """Binomial-tree reduction to root; returns result on root, None elsewhere."""
        with self._op("reduce"):
            tag = self._collective_tag(_TAG_REDUCE)
            rel = (self.rank - root) % self.size
            acc = obj
            mask = 1
            while mask < self.size:
                if rel & mask:
                    self._send(acc, (rel - mask + root) % self.size, tag)
                    break
                partner = rel + mask
                if partner < self.size:
                    other = self._recv((partner + root) % self.size, tag)
                    acc = _combine(acc, other, op)
                mask <<= 1
            return acc if self.rank == root else None

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        """Reduce-then-broadcast allreduce."""
        with self._op("allreduce"):
            result = self.reduce(obj, op=op, root=0)
            return self.bcast(result, root=0)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into a list on root (rank order)."""
        with self._op("gather"):
            tag = self._collective_tag(_TAG_GATHER)
            if self.rank == root:
                out: list[Any] = [None] * self.size
                out[root] = _copy_payload(obj)
                for _ in range(self.size - 1):
                    src, payload = self._recv(ANY_SOURCE, tag)
                    out[src] = payload
                return out
            self._send((self.rank, obj), root, tag)
            return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather to root then broadcast the full list."""
        with self._op("allgather"):
            full = self.gather(obj, root=0)
            return self.bcast(full, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a sequence of world-size objects from root."""
        with self._op("scatter"):
            tag = self._collective_tag(_TAG_SCATTER)
            if self.rank == root:
                if objs is None or len(objs) != self.size:
                    raise CommError(f"scatter: root must supply {self.size} items")
                for dest in range(self.size):
                    if dest != root:
                        self._send(objs[dest], dest, tag)
                return _copy_payload(objs[root])
            return self._recv(root, tag)

    def alltoall(self, objs: Sequence[Any], op: str = "alltoall") -> list[Any]:
        """Personalized all-to-all via pairwise exchange rounds.

        This is the communication kernel of the parallel spectral transform
        (Foster & Worley 1997): each rank sends a distinct block to every
        other rank.  ``op`` lets transports label their traffic (e.g.
        ``"transpose.forward"``) in deadlock reports and :class:`CommStats`.
        """
        if len(objs) != self.size:
            raise CommError(f"alltoall: need {self.size} items, got {len(objs)}")
        with self._op(op):
            tag = self._collective_tag(_TAG_ALLTOALL)
            out: list[Any] = [None] * self.size
            out[self.rank] = _copy_payload(objs[self.rank])
            for step in range(1, self.size):
                dest = (self.rank + step) % self.size
                src = (self.rank - step) % self.size
                self._send(objs[dest], dest, tag)
                out[src] = self._recv(src, tag)
            return out

    # ------------------------------------------------------------------
    # sub-communicators
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "SimComm | None":
        """Partition the communicator, MPI_Comm_split style (collective).

        Ranks passing the same ``color`` form a new communicator, ordered
        by ``(key, rank)`` (``key`` defaults to the current rank, so rank
        order is preserved).  ``color=None`` opts out, as MPI_UNDEFINED
        does: the rank participates in the collective but gets ``None``.

        The sub-communicator exchanges messages in its own tag context, so
        its traffic (including collectives) can never match the parent's or
        a sibling group's even with equal tags.  Deadlock reports, crash
        diagnostics and :class:`CommStats` keep identifying ranks by their
        *world* rank; the stats object is shared with the parent so one
        counter sees a rank's total traffic.
        """
        with self._op("split"):
            entries = self.allgather(
                (color, self.rank if key is None else key, self.rank))
        self._split_seq += 1
        if color is None:
            return None
        members = sorted((k, r) for c, k, r in entries if c == color)
        group = [self._to_world(r) for _, r in members]
        new_rank = [r for _, r in members].index(self.rank)
        ctx = self._world.allocate_context(
            ("split", self._ctx, self._split_seq, color))
        return SimComm(new_rank, len(group), self._world,
                       timeout=self._timeout, group=group, ctx=ctx,
                       stats=self.stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size})"


_TAG_BCAST = 1 << 30
_TAG_REDUCE = 2 << 30
_TAG_GATHER = 3 << 30
_TAG_SCATTER = 4 << 30
_TAG_ALLTOALL = 5 << 30


def _match(src: int, tag: int, want_src: int, want_tag: int,
           ctx: int = 0) -> bool:
    """Envelope match: ``tag`` is absolute (context-stamped), ``want_tag``
    communicator-local.  ANY_TAG still only matches within the context."""
    if want_src not in (ANY_SOURCE, src):
        return False
    if want_tag == ANY_TAG:
        return tag >> _CTX_SHIFT == ctx
    return tag == (ctx << _CTX_SHIFT) + want_tag


def _copy_payload(obj: Any) -> Any:
    """Copy send buffers so the sender may safely reuse them (MPI semantics)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_copy_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


def _payload_nbytes(obj: Any) -> int:
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (tuple, list)):
        return sum(_payload_nbytes(o) for o in obj)
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v) for v in obj.values())
    return 64  # rough envelope for small scalars/objects


def _combine(a: Any, b: Any, op: str) -> Any:
    if op == "sum":
        return a + b
    if op == "max":
        return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)
    if op == "min":
        return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)
    if op == "prod":
        return a * b
    raise CommError(f"unsupported reduction op {op!r}")


def run_ranks(size: int, fn: Callable[[SimComm], Any], *,
              timeout: float | None = None, args: tuple = (),
              faults: FaultPlan | None = None,
              return_exceptions: bool = False) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; return per-rank results.

    ``timeout`` bounds every blocking operation; ``None`` resolves via
    :func:`_default_timeout` (low under pytest, ``REPRO_SIMMPI_TIMEOUT``
    overrides).  ``faults`` is an optional
    :class:`~repro.parallel.faults.FaultPlan` perturbing all traffic.

    With ``return_exceptions=False`` (default), exceptions on any rank are
    re-raised in the caller after all threads have been joined, preferring
    the root cause: genuine (non-communication) errors first, then injected
    crashes, then structured deadlock reports, then secondary ``CommError``
    fallout.  With ``return_exceptions=True``, each rank's slot in the
    result list holds either its return value or the exception it raised —
    the mode fault-injection tests use to assert what *every* peer saw.
    """
    if size < 1:
        raise CommError(f"world size must be >= 1, got {size}")
    tmo = _default_timeout() if timeout is None else timeout
    world = _World(size, faults=faults)
    results: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size

    def runner(rank: int) -> None:
        comm = SimComm(rank, size, world, timeout=tmo)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagate to main thread
            errors[rank] = exc
            world.mark_dead(rank, exc)
        else:
            world.mark_finished(rank)

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=tmo + 10.0)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise CommError(f"{len(alive)} rank thread(s) failed to finish (deadlock?)")
    if return_exceptions:
        return [errors[r] if errors[r] is not None else results[r]
                for r in range(size)]
    for picker in ((lambda e: not isinstance(e, CommError)),
                   (lambda e: isinstance(e, RankCrashedError)),
                   (lambda e: isinstance(e, DeadlockError)),
                   (lambda e: True)):
        for err in errors:
            if err is not None and picker(err):
                raise err
    return results
