"""Distributed transpose for the parallel spectral transform.

PCCM2's spectral transform (Foster & Worley 1997, ref [8] of the paper) keeps
gridpoint fields decomposed by latitude band.  The Legendre transform,
however, needs *all* latitudes for a given zonal wavenumber m.  The standard
solution is a transpose: re-decompose from latitude-bands to wavenumber-bands
with a personalized all-to-all, do the (now local) Legendre sums, and
transpose back.

This module implements that transpose over :class:`SimComm` for 2-D arrays
``(nlat, nm)`` — rows = latitudes, columns = Fourier coefficients.
"""

from __future__ import annotations

import numpy as np

from repro.backend import get_workspace
from repro.parallel.decomp import block_bounds
from repro.parallel.simmpi import SimComm
from repro.perf.profiler import profile_section


def transpose_forward(comm: SimComm, local_rows: np.ndarray, nrows: int, ncols: int) -> np.ndarray:
    """From row-decomposed to column-decomposed layout.

    Parameters
    ----------
    local_rows:
        This rank's block of rows, shape ``(my_rows, ncols)``.
    nrows, ncols:
        Global array dimensions.

    Returns
    -------
    ndarray of shape ``(nrows, my_cols)`` — every global row, but only this
    rank's block of columns.

    The underlying all-to-all is labeled ``"transpose.forward"``, so its
    traffic is attributable in :class:`~repro.parallel.simmpi.CommStats`
    and a wedged transpose is named as such in a
    :class:`~repro.parallel.simmpi.DeadlockReport`.
    """
    rlo, rhi = block_bounds(nrows, comm.size, comm.rank)
    if local_rows.ndim != 2 or local_rows.shape != (rhi - rlo, ncols):
        raise ValueError(
            f"local_rows must be ({rhi - rlo}, {ncols}), got {local_rows.shape}")
    with profile_section("transpose.forward") as sec:
        bytes_before = comm.stats.bytes_sent
        # Pack into per-destination workspace buffers: the simulated MPI
        # layer copies payloads on send, so these are free to reuse on the
        # next call (get_workspace() is thread-local == rank-local).
        ws = get_workspace()
        sendblocks = []
        for dest in range(comm.size):
            clo, chi = block_bounds(ncols, comm.size, dest)
            blk = ws.empty(f"tp.fwd.send{dest}",
                           (rhi - rlo, chi - clo), local_rows.dtype)
            blk[...] = local_rows[:, clo:chi]
            sendblocks.append(blk)
        recvblocks = comm.alltoall(sendblocks, op="transpose.forward")
        if sec is not None:
            sec.count("comm_bytes", comm.stats.bytes_sent - bytes_before)
        # recvblocks[src] holds src's rows of *our* columns; stack by row block.
        return np.concatenate(recvblocks, axis=0)


def transpose_backward(comm: SimComm, local_cols: np.ndarray, nrows: int, ncols: int) -> np.ndarray:
    """Inverse of :func:`transpose_forward`: back to row-decomposed layout."""
    clo, chi = block_bounds(ncols, comm.size, comm.rank)
    if local_cols.ndim != 2 or local_cols.shape != (nrows, chi - clo):
        raise ValueError(
            f"local_cols must be ({nrows}, {chi - clo}), got {local_cols.shape}")
    with profile_section("transpose.backward") as sec:
        bytes_before = comm.stats.bytes_sent
        ws = get_workspace()
        sendblocks = []
        for dest in range(comm.size):
            rlo, rhi = block_bounds(nrows, comm.size, dest)
            blk = ws.empty(f"tp.bwd.send{dest}",
                           (rhi - rlo, chi - clo), local_cols.dtype)
            blk[...] = local_cols[rlo:rhi, :]
            sendblocks.append(blk)
        recvblocks = comm.alltoall(sendblocks, op="transpose.backward")
        if sec is not None:
            sec.count("comm_bytes", comm.stats.bytes_sent - bytes_before)
        return np.concatenate(recvblocks, axis=1)
