"""Real-process rank substrate: the simulated-MPI interface without the GIL.

:func:`run_ranks_process` runs the same worker functions as
:func:`repro.parallel.simmpi.run_ranks`, but each rank is a *forked child
process*, so rank pools genuinely execute in parallel on separate cores —
this is the substrate that makes ``--atm-ranks/--ocn-ranks`` buy real
wall-clock (ROADMAP "Break the GIL") and matches the paper's own
architecture of MPI ranks on distributed memory.

Design
------
* **Fork, not spawn.**  Workers are closures over models and configs; fork
  inherits them, so only results, exceptions and message payloads ever
  cross a process boundary (all plain data).  This also means a
  ``FaultPlan`` is inherited by every child: each rank consults its own
  copy for *crash* rules (the op counters are process-local, exactly like
  the thread substrate's per-rank counters), while the parent's copy
  applies the traffic rules (delay/reorder/duplicate/corrupt) at the
  router, the single point every message passes through.
* **A parent-side router.**  Children push envelopes up one shared queue
  (``send`` / ``blocked`` / ``unblocked`` / ``ctx`` / ``done``); the parent
  routes messages to per-rank downlink queues and broadcasts liveness
  events (``finished`` / ``dead`` / ``deadlock``).  Because each child's
  uplink traffic is FIFO, a ``send`` is always routed before the same
  child's ``finished``/``blocked`` — the orderings the thread substrate
  gets for free from its shared lock.
* **Shared memory for bulk payloads.**  ndarrays of at least
  ``FOAM_COMM_SHM_MIN`` bytes (default 64 KiB) travel as named POSIX
  shared-memory blocks; the queues carry only small pickled envelopes
  referencing them.  The receiver copies out of the block and unlinks it,
  preserving MPI copy-on-send semantics end to end.  One resource tracker
  is started *before* forking so create/attach/unlink bookkeeping balances
  across processes.
* **Deadlock detection by marshalled wait-for graph.**  A blocked child
  reports (op, peer, tag, ctx) along with how many messages it has seen;
  the world is declared deadlocked when every live rank's report is
  current (seen == delivered), the uplink is idle and no held/delayed
  message remains — the same quiescence condition the thread substrate's
  in-lock detector checks.  The router then builds the identical
  :class:`~repro.parallel.commbase.DeadlockReport` (rank/op/peer/tag +
  wait-for cycle) and broadcasts it, so every rank raises
  :class:`~repro.parallel.commbase.DeadlockError` within a poll slice —
  still well under a second.

Because :class:`ProcComm` and :class:`~repro.parallel.simmpi.SimComm`
share every collective algorithm (:mod:`repro.parallel.commbase`), a
payload takes the same reduction tree and operation order on both
substrates; ``tests/test_substrate_equivalence.py`` pins the result to be
bitwise-identical at float64.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import pickle
import queue as queuelib
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.parallel.commbase import (
    ANY_SOURCE,
    _CTX_SHIFT,
    _POLL_SLICE,
    BlockedRank,
    CommBase,
    CommError,
    CommStats,
    DeadlockError,
    DeadlockReport,
    RankCrashedError,
    _default_timeout,
    _find_cycle,
    _match,
    _payload_nbytes,
)
from repro.parallel.faults import FaultPlan

_ROUTER_SLICE = 0.02           # router poll cadence (uplink idle check)
_HARD_DEATH_GRACE = 0.25       # seconds between a child dying and the router
                               # declaring it dead without a result


def _shm_min_bytes() -> int:
    """Arrays at least this large travel via shared memory, not the queue."""
    return int(os.environ.get("FOAM_COMM_SHM_MIN", 1 << 16))


@dataclass(frozen=True)
class _ShmRef:
    """A bulk ndarray parked in a named shared-memory block."""

    name: str
    shape: tuple
    dtype: str


def _encode_payload(obj: Any) -> Any:
    """Copy a payload for sending, parking bulk ndarrays in shared memory.

    This is the process substrate's ``_copy_payload``: the copy *is* the
    serialization.  Small arrays stay inline (the queue pickles them);
    large ones become :class:`_ShmRef` so the router never touches bulk
    bytes.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= _shm_min_bytes():
            from multiprocessing import shared_memory
            arr = np.ascontiguousarray(obj)
            shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            ref = _ShmRef(shm.name, arr.shape, arr.dtype.str)
            shm.close()
            return ref
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_encode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_encode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _encode_payload(v) for k, v in obj.items()}
    return obj


def _decode_payload(obj: Any) -> Any:
    """Materialize a received payload, consuming (unlinking) shm blocks."""
    if isinstance(obj, _ShmRef):
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            src = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=shm.buf)
            out = src.copy()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        return out
    if isinstance(obj, tuple):
        return tuple(_decode_payload(o) for o in obj)
    if isinstance(obj, list):
        return [_decode_payload(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _decode_payload(v) for k, v in obj.items()}
    return obj


def _unlink_refs(obj: Any) -> None:
    """Free shm blocks of a payload that will never be delivered."""
    if isinstance(obj, _ShmRef):
        from multiprocessing import shared_memory
        try:
            shm = shared_memory.SharedMemory(name=obj.name)
        except FileNotFoundError:  # pragma: no cover - already freed
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
    elif isinstance(obj, (tuple, list)):
        for o in obj:
            _unlink_refs(o)
    elif isinstance(obj, dict):
        for v in obj.values():
            _unlink_refs(v)


def _clone_refs(obj: Any) -> Any:
    """Deep-duplicate shm blocks (for ``duplicate`` fault deliveries)."""
    if isinstance(obj, _ShmRef):
        from multiprocessing import shared_memory
        nbytes = math.prod(obj.shape) * np.dtype(obj.dtype).itemsize
        src = shared_memory.SharedMemory(name=obj.name)
        try:
            dup = shared_memory.SharedMemory(create=True, size=nbytes)
            dup.buf[:nbytes] = src.buf[:nbytes]
            name = dup.name
            dup.close()
            return _ShmRef(name, obj.shape, obj.dtype)
        finally:
            src.close()
    if isinstance(obj, tuple):
        return tuple(_clone_refs(o) for o in obj)
    if isinstance(obj, list):
        return [_clone_refs(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _clone_refs(v) for k, v in obj.items()}
    return obj


def _corrupt_encoded(obj: Any) -> Any:
    """``FaultPlan.corrupt`` transform for encoded payloads.

    Inline values corrupt exactly like the thread substrate
    (:func:`repro.parallel.faults.corrupt_payload`); shm-parked arrays are
    corrupted in place inside their block.
    """
    from repro.parallel.faults import corrupt_payload
    if isinstance(obj, _ShmRef):
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            arr = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype),
                             buffer=shm.buf)
            if arr.dtype == bool:
                arr[...] = ~arr
            else:
                arr[...] = -arr - 1
        finally:
            shm.close()
        return obj
    if isinstance(obj, tuple):
        return tuple(_corrupt_encoded(o) for o in obj)
    if isinstance(obj, list):
        return [_corrupt_encoded(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _corrupt_encoded(v) for k, v in obj.items()}
    return corrupt_payload(obj)


def _picklable_exc(exc: BaseException) -> BaseException:
    """Round-trip-check an exception; fall back to a CommError summary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure
        err = CommError(f"{type(exc).__name__}: {exc}")
        origin = getattr(exc, "origin_rank", None)
        if origin is not None:
            err.origin_rank = origin
        return err


class _Client:
    """Child-side endpoint: local mailbox + liveness mirrored off the router."""

    def __init__(self, rank: int, size: int, uplink, downlink,
                 plan: FaultPlan):
        self.rank = rank
        self.size = size
        self.uplink = uplink
        self.downlink = downlink
        self.plan = plan
        # (src, abs_tag, encoded, visible_at): delayed messages are
        # delivered eagerly and sit here until their visibility stamp
        # passes, exactly like the thread substrate's mailbox.
        self.box: list[tuple[int, int, Any, float]] = []
        # Envelopes ingested (messages AND liveness events); echoed in
        # blocked reports.  The router counts every downlink put the same
        # way, so a standing blocked report is invalidated by *any* event
        # the child has not yet reacted to — the child always gets to run
        # its liveness check on fresh dead/finished knowledge before the
        # router may trust the report for deadlock declaration (the thread
        # substrate gets this ordering from its shared lock).
        self.seen = 0
        self.finished: set[int] = set()              # reports so the router can
        self.dead: dict[int, tuple[int, str]] = {}   # tell stale from current
        self.deadlock: DeadlockReport | None = None
        self.ctx_replies: dict[tuple, int] = {}

    def _handle(self, env: tuple) -> None:
        kind = env[0]
        self.seen += 1
        if kind == "msg":
            _, src, abs_tag, enc, visible = env
            self.box.append((src, abs_tag, enc, visible))
        elif kind == "finished":
            self.finished.add(env[1])
        elif kind == "dead":
            self.dead[env[1]] = (env[2], env[3])
        elif kind == "deadlock":
            self.deadlock = env[1]
        elif kind == "ctx":
            self.ctx_replies[env[1]] = env[2]

    def drain(self, timeout: float = 0.0) -> int:
        """Ingest pending downlink envelopes; block up to ``timeout`` if idle."""
        n = 0
        while True:
            try:
                env = self.downlink.get_nowait()
            except queuelib.Empty:
                break
            self._handle(env)
            n += 1
        if n == 0 and timeout > 0.0:
            try:
                env = self.downlink.get(timeout=timeout)
            except queuelib.Empty:
                return n
            self._handle(env)
            n += 1
        return n


class ProcComm(CommBase):
    """Communicator for one rank of a real-process simulated MPI world.

    Same API and collective algorithms as
    :class:`~repro.parallel.simmpi.SimComm` (both subclass
    :class:`~repro.parallel.commbase.CommBase`); the transport is the
    uplink/downlink queue pair of this rank's :class:`_Client`.
    """

    def __init__(self, rank: int, size: int, client: _Client, *,
                 timeout: float | None = None, group=None, ctx: int = 0,
                 stats: CommStats | None = None):
        super().__init__(rank, size, timeout=timeout, group=group, ctx=ctx,
                         stats=stats)
        self._client = client

    # ------------------------------------------------------------------
    # substrate hooks
    # ------------------------------------------------------------------
    def _crash_message(self, op: str) -> str | None:
        # The child's inherited FaultPlan copy: per-rank op counters evolve
        # exactly as the thread substrate's (each rank only ever consults
        # its own counts), so crash schedules are substrate-portable.
        return self._client.plan.crash_message(self._wrank, self._op_count, op)

    def _allocate_context(self, key: tuple) -> int:
        cl = self._client
        if key not in cl.ctx_replies:
            cl.uplink.put(("ctx", self._wrank, key))
            deadline = time.monotonic() + self._timeout
            while key not in cl.ctx_replies:
                if time.monotonic() >= deadline:
                    raise CommError(
                        f"rank {self._wrank}: context allocation for split "
                        f"timed out after {self._timeout}s")
                cl.drain(_POLL_SLICE)
        return cl.ctx_replies[key]

    def _spawn(self, new_rank: int, group: list[int], ctx: int) -> "ProcComm":
        return ProcComm(new_rank, len(group), self._client,
                        timeout=self._timeout, group=group, ctx=ctx,
                        stats=self.stats)

    def _send(self, obj: Any, dest: int, tag: int) -> None:
        self._check_send_args(dest)
        op = self._op_stack[0]
        dest_w = self._to_world(dest)
        abs_tag = (self._ctx << _CTX_SHIFT) + tag
        enc = _encode_payload(obj)
        # Stats parity with the thread substrate: one note_send per send
        # with the logical payload size (the router's fault transforms can
        # add duplicate deliveries, which the thread substrate counts at
        # the sender; fault-free traffic counts identically either way).
        self.stats.note_send(op, dest_w, _payload_nbytes(obj))
        self._client.uplink.put(("send", self._wrank, dest_w, abs_tag, enc))

    def _recv(self, source: int, tag: int) -> Any:
        self._check_recv_args(source)
        op = self._op_stack[0]
        cl = self._client
        me = self._wrank
        src_w = ANY_SOURCE if source == ANY_SOURCE else self._to_world(source)
        ctx = self._ctx
        start = time.monotonic()
        deadline = start + self._timeout
        reported_seen = -1
        try:
            while True:
                cl.drain(0.0)
                now = time.monotonic()
                box = cl.box
                next_visible: float | None = None
                for i, (src, t, enc, visible) in enumerate(box):
                    if not _match(src, t, src_w, tag, ctx):
                        continue
                    if visible > now:  # delayed message, not yet deliverable
                        next_visible = (visible if next_visible is None
                                        else min(next_visible, visible))
                        continue
                    del box[i]
                    payload = _decode_payload(enc)
                    self.stats.note_recv(_payload_nbytes(payload))
                    return payload
                if cl.deadlock is not None:
                    raise DeadlockError(cl.deadlock)
                if next_visible is None:
                    # No matching (even delayed) traffic pending: check
                    # whether the awaited peer can still ever send, and
                    # (re-)report the wait whenever new traffic has been
                    # ingested since the last report — the router treats a
                    # report as current only while seen == delivered.
                    self._peer_liveness_error(source, tag, op, cl.dead,
                                              cl.finished)
                    if cl.seen != reported_seen:
                        cl.uplink.put(("blocked", me, op, src_w, tag, ctx,
                                       start, cl.seen))
                        reported_seen = cl.seen
                if now >= deadline:
                    raise CommError(
                        f"rank {me}: {op}(source={src_w}, tag={tag}) "
                        f"timed out after {self._timeout}s")
                wait = min(_POLL_SLICE, deadline - now)
                if next_visible is not None:
                    wait = min(wait, max(next_visible - now, 0.0) + 1e-4)
                cl.drain(wait)
        finally:
            if reported_seen >= 0:
                cl.uplink.put(("unblocked", me))


def _child_main(rank: int, size: int, fn: Callable[..., Any], args: tuple,
                uplink, downlink, plan: FaultPlan, timeout: float) -> None:
    from repro.backend.workspace import get_workspace
    # The fork inherited the parent thread's workspace arena; start this
    # rank with a clean one, as a fresh rank thread would.
    get_workspace().clear()
    client = _Client(rank, size, uplink, downlink, plan)
    comm = ProcComm(rank, size, client, timeout=timeout)
    try:
        result = fn(comm, *args)
        blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    except BaseException as exc:  # noqa: BLE001 - marshalled to the parent
        uplink.put(("done", rank, None, _picklable_exc(exc)))
    else:
        uplink.put(("done", rank, blob, None))


class _Router:
    """Parent-side message router, fault engine and deadlock detector."""

    def __init__(self, size: int, uplink, downlinks, plan: FaultPlan,
                 procs, timeout: float):
        self.size = size
        self.uplink = uplink
        self.downlinks = downlinks
        self.plan = plan
        self.procs = procs
        self.timeout = timeout
        self.delivered = [0] * size
        # rank -> (op, src_w, tag, ctx, since, seen) from blocked reports.
        self.blocked: dict[int, tuple] = {}
        self.finished: set[int] = set()
        self.dead: dict[int, tuple[int, str]] = {}
        self.done = [False] * size
        self.results: list[Any] = [None] * size
        self.errors: list[BaseException | None] = [None] * size
        self.deadlock: DeadlockReport | None = None
        self._ctx_ids: dict[tuple, int] = {}
        self._next_ctx = 1
        self._death_seen: dict[int, float] = {}

    # -------------------------------------------------------------- core
    def run(self) -> bool:
        """Route until every rank reported done; False on hard timeout."""
        deadline = time.monotonic() + self.timeout + 10.0
        while not all(self.done):
            if time.monotonic() >= deadline:
                return False
            try:
                env = self.uplink.get(timeout=_ROUTER_SLICE)
            except queuelib.Empty:
                # Uplink idle: the only moment the marshalled wait-for
                # graph can be trusted to be quiescent.
                self._check_processes()
                self._check_deadlock()
                continue
            self._handle(env)
        return True

    def _handle(self, env: tuple) -> None:
        kind = env[0]
        if kind == "send":
            _, src, dest, abs_tag, enc = env
            deliveries = self.plan.apply_send(src, dest, abs_tag, enc,
                                              time.monotonic(),
                                              corrupt=_corrupt_encoded)
            seen_ids: set[int] = set()
            for ddest, dtag, denc, visible in deliveries:
                if id(denc) in seen_ids:   # duplicate fault: same object
                    denc = _clone_refs(denc)
                else:
                    seen_ids.add(id(denc))
                self._route(ddest, dtag, denc, visible, src)
        elif kind == "blocked":
            _, rank, op, src_w, tag, ctx, since, seen = env
            if not self.done[rank]:
                self.blocked[rank] = (op, src_w, tag, ctx, since, seen)
        elif kind == "unblocked":
            self.blocked.pop(env[1], None)
        elif kind == "ctx":
            _, rank, key = env
            ctx = self._ctx_ids.get(key)
            if ctx is None:
                ctx = self._ctx_ids[key] = self._next_ctx
                self._next_ctx += 1
            if not self.done[rank]:
                self._put(rank, ("ctx", key, ctx))
        elif kind == "done":
            _, rank, blob, error = env
            self.done[rank] = True
            self.blocked.pop(rank, None)
            self.errors[rank] = error
            self.results[rank] = blob
            if error is None:
                self.finished.add(rank)
                self._broadcast(("finished", rank))
            else:
                origin = getattr(error, "origin_rank", None)
                origin = rank if origin is None else origin
                if origin != rank and origin in self.dead:
                    reason = self.dead[origin][1]
                else:
                    reason = f"{type(error).__name__}: {error}"
                self.dead[rank] = (origin, reason)
                self._broadcast(("dead", rank, origin, reason))
            # A finished/dead sender releases its reorder holdbacks, as the
            # thread substrate's mark_finished/mark_dead do.
            for src, dest, tag, payload, visible in self.plan.flush_held(src=rank):
                self._route(dest, tag, payload, visible, src)

    def _route(self, dest: int, abs_tag: int, enc: Any, visible: float,
               src: int) -> None:
        # Delayed messages are delivered eagerly with their visibility
        # stamp — the receiver sits on them, exactly like the thread
        # substrate's mailbox — so liveness/deadlock logic on the child
        # can see matching in-flight traffic.
        if self.done[dest]:
            _unlink_refs(enc)   # nobody will ever drain this payload
            return
        self._put(dest, ("msg", src, abs_tag, enc, visible))

    def _put(self, dest: int, env: tuple) -> None:
        # Every downlink envelope counts toward ``delivered``, mirroring
        # the client's ``seen`` (see _Client.seen for why).
        self.downlinks[dest].put(env)
        self.delivered[dest] += 1

    def _broadcast(self, env: tuple) -> None:
        for r in range(self.size):
            if not self.done[r]:
                self._put(r, env)

    # ------------------------------------------------------- diagnostics
    def _check_processes(self) -> None:
        """Detect hard child deaths (exit without a ``done`` report)."""
        now = time.monotonic()
        for r, p in enumerate(self.procs):
            if self.done[r] or p.is_alive():
                continue
            first = self._death_seen.setdefault(r, now)
            if now - first < _HARD_DEATH_GRACE:
                continue   # grace: its done envelope may still be in flight
            reason = (f"process exited with code {p.exitcode} "
                      f"without reporting a result")
            err = CommError(f"rank {r}: {reason}")
            err.origin_rank = r
            self.done[r] = True
            self.errors[r] = err
            self.blocked.pop(r, None)
            self.dead[r] = (r, reason)
            self._broadcast(("dead", r, r, reason))

    def _check_deadlock(self) -> None:
        """Declare deadlock iff the marshalled wait-for graph is quiescent.

        Mirrors ``_World.detect_deadlock``: every live rank blocked with a
        *current* report (it has ingested everything routed to it and
        found no match), no reorder holdback and no pending delayed
        message.  Only called with the uplink idle, so a rank that had
        just sent before blocking has had that send routed already.
        """
        if self.deadlock is not None:
            return
        live = [r for r in range(self.size) if not self.done[r]]
        if not live:
            return
        for r in live:
            b = self.blocked.get(r)
            if b is None or b[5] != self.delivered[r]:
                return   # r is running, or hasn't seen all its traffic yet
        held = self.plan.flush_held()
        if held:         # reorder holdbacks count as in-flight progress
            for src, dest, tag, payload, visible in held:
                self._route(dest, tag, payload, visible, src)
            return
        now = time.monotonic()
        blocked = tuple(
            BlockedRank(rank=r, op=self.blocked[r][0], peer=self.blocked[r][1],
                        tag=self.blocked[r][2], waited=now - self.blocked[r][4])
            for r in sorted(live))
        edges = {r: ([self.blocked[r][1]]
                     if self.blocked[r][1] != ANY_SOURCE
                     else [x for x in live if x != r])
                 for r in live}
        self.deadlock = DeadlockReport(blocked=blocked,
                                       cycle=_find_cycle(edges),
                                       dead=tuple(sorted(self.dead)))
        self._broadcast(("deadlock", self.deadlock))

    def scrub(self) -> None:
        """Free shm blocks of undeliverable (reorder-held) messages."""
        for _, _, _, payload, _ in self.plan.flush_held():
            _unlink_refs(payload)


def run_ranks_process(size: int, fn: Callable[..., Any], *,
                      timeout: float | None = None, args: tuple = (),
                      faults: FaultPlan | None = None,
                      return_exceptions: bool = False) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` forked rank processes.

    The process-substrate twin of :func:`repro.parallel.simmpi.run_ranks`
    (same signature, semantics and error-priority re-raise order); usually
    reached through ``run_ranks(..., substrate="process")`` or
    ``FOAM_COMM=process``.  Results and exceptions must be picklable —
    they cross a process boundary (an unpicklable result is reported as a
    structured :class:`CommError` on that rank).
    """
    if size < 1:
        raise CommError(f"world size must be >= 1, got {size}")
    if "fork" not in mp.get_all_start_methods():  # pragma: no cover - POSIX only
        raise CommError("the process substrate requires the fork start method")
    tmo = _default_timeout() if timeout is None else timeout
    plan = faults or FaultPlan()
    ctx = mp.get_context("fork")
    # Start the shm resource tracker before forking so parent and children
    # share one tracker: the creator's register and the consumer's
    # unregister then land in the same ledger and cancel out.
    from multiprocessing import resource_tracker
    resource_tracker.ensure_running()
    uplink = ctx.Queue()
    downlinks = [ctx.Queue() for _ in range(size)]
    procs = [ctx.Process(target=_child_main,
                         args=(r, size, fn, args, uplink, downlinks[r],
                               plan, tmo),
                         daemon=True)
             for r in range(size)]
    for p in procs:
        p.start()
    router = _Router(size, uplink, downlinks, plan, procs, tmo)
    try:
        ok = router.run()
    finally:
        router.scrub()
    for p in procs:
        p.join(timeout=5.0 if ok else 0.2)
    for p in procs:
        if p.is_alive():  # pragma: no cover - only on router timeout
            p.terminate()
            p.join(timeout=1.0)
    for q in [uplink, *downlinks]:
        q.cancel_join_thread()
        q.close()
    if not ok:
        stuck = sum(1 for d in router.done if not d)
        raise CommError(
            f"{stuck} rank process(es) failed to finish (deadlock?)")
    results = [None if blob is None else pickle.loads(blob)
               for blob in router.results]
    errors = router.errors
    if return_exceptions:
        return [errors[r] if errors[r] is not None else results[r]
                for r in range(size)]
    for picker in ((lambda e: not isinstance(e, CommError)),
                   (lambda e: isinstance(e, RankCrashedError)),
                   (lambda e: isinstance(e, DeadlockError)),
                   (lambda e: True)):
        for err in errors:
            if err is not None and picker(err):
                raise err
    return results
