"""Concurrent coupled execution on disjoint rank pools (paper Figure 2).

FOAM's headline throughput comes from running the atmosphere and ocean
*simultaneously* on disjoint processor pools, with a lightweight coupler
overlapping the ocean's 6-hour integration under the next atmosphere
steps.  This module makes that schedule functional on the simulated-MPI
layer: :func:`run_concurrent_coupled` splits the world into

* an **atmosphere pool** (``layout.n_atm`` ranks) holding a replicated
  spectral state: each rank runs column physics on its own latitude band
  (physics is column-local, so bands are bitwise rows of the full-grid
  run), allgathers the band tendencies inside the pool, and redundantly
  applies the cheap spectral update + dynamics;
* a **coupler rank** owning the land/hydrology/river/ice state and the
  ocean-forcing accumulator, exchanging only overlap-grid payloads with
  both pools via tagged sends;
* an **ocean pool** (``layout.n_ocn`` ranks; the leader computes) running
  the 6-hour ocean call *under* the atmosphere's boundary-step dynamics
  and the next step's diagnostics — the coupler asks for the fresh SST
  lazily, right before the first step that needs it.

The exchange epochs are exactly the serial :meth:`FoamModel.coupled_step`
ones, so the float64 trajectory is bitwise comparable to the serial run
(the equivalence tests assert array equality, not just 1e-12 closeness).

Per-rank :class:`~repro.perf.profiler.RunProfile` s (recorded through
``thread_profiler``) merge into one profile whose measured section costs
calibrate the event simulator's concurrent-schedule prediction
(:func:`repro.perf.eventsim.predict_concurrent_speedup`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import get_workspace
from repro.parallel.decomp import block_bounds
from repro.parallel.simmpi import CommStats, SimComm, resolve_substrate, run_ranks
from repro.perf.profiler import Profiler, RunProfile, merge_profiles, thread_profiler

# Coupler exchange tags (world-communicator context).
TAG_ATM_STATE = 210    # atm leader -> coupler: bottom-level state fields
TAG_SURFACE = 211      # coupler -> every atm rank: surface state + fluxes
TAG_ATM_PHYS = 212     # atm leader -> coupler: precip + surface radiation
TAG_FORCING = 213      # coupler -> ocean leader: window-mean forcing
TAG_SST = 214          # ocean leader -> coupler: fresh SST after each call

_POOL_COLORS = {"atm": 0, "cpl": 1, "ocn": 2}


@dataclass(frozen=True)
class PoolLayout:
    """World layout: ranks [0, n_atm) atmosphere, n_atm coupler, rest ocean."""

    n_atm: int = 2
    n_ocn: int = 1

    def __post_init__(self):
        if self.n_atm < 1:
            raise ValueError(f"need >= 1 atmosphere rank, got {self.n_atm}")
        if self.n_ocn < 1:
            raise ValueError(f"need >= 1 ocean rank, got {self.n_ocn}")

    @property
    def world_size(self) -> int:
        return self.n_atm + 1 + self.n_ocn

    @property
    def atm_ranks(self) -> tuple[int, ...]:
        return tuple(range(self.n_atm))

    @property
    def cpl_rank(self) -> int:
        return self.n_atm

    @property
    def ocn_ranks(self) -> tuple[int, ...]:
        return tuple(range(self.n_atm + 1, self.n_atm + 1 + self.n_ocn))

    @property
    def ocn_leader(self) -> int:
        return self.n_atm + 1

    def role_of(self, rank: int) -> str:
        if rank < self.n_atm:
            return "atm"
        if rank == self.cpl_rank:
            return "cpl"
        if rank in self.ocn_ranks:
            return "ocn"
        raise ValueError(f"rank {rank} outside world of size {self.world_size}")


@dataclass
class ConcurrentCoupledResult:
    """Everything a concurrent coupled run produced, assembled world-side."""

    state: object                      # FoamState (atm from pool, ocn/cpl owners)
    nsteps: int
    layout: PoolLayout
    wall_seconds: float                # max per-rank loop wall (post-barrier)
    rank_walls: list[float]
    waits: dict[str, float]            # blocking-recv seconds by payload kind
    rank_waits: list[dict]
    profile: RunProfile | None         # merged across ranks (None w/o profiling)
    profiles: list[RunProfile] = field(default_factory=list)
    comm_stats: list[CommStats] = field(default_factory=list)
    acc: object | None = None          # coupler-side OceanForcing accumulator
    acc_steps: int = 0
    sst: np.ndarray | None = None      # SST the coupler last held
    workspaces: list = field(default_factory=list)   # per-rank arenas (strong refs)
    ws_stats: list[dict] = field(default_factory=list)
    ocean_busy_seconds: float = 0.0    # time the ocean leader spent computing
    overlap_seconds: float = 0.0       # ocean busy time hidden under atm work
    substrate: str = "thread"          # communicator substrate the run used

    @property
    def hidden_fraction(self) -> float:
        """Fraction of ocean compute the schedule hid (1.0 = fully hidden)."""
        if self.ocean_busy_seconds <= 0.0:
            return 0.0
        return self.overlap_seconds / self.ocean_busy_seconds


def _timed_recv(comm: SimComm, source: int, tag: int,
                waits: dict, key: str):
    t0 = time.perf_counter()
    payload = comm.recv(source, tag)
    waits[key] = waits.get(key, 0.0) + (time.perf_counter() - t0)
    return payload


def _atm_worker(comm, pool, layout, model, state, nsteps, waits):
    """One atmosphere-pool rank: band physics + replicated spectral state."""
    from repro.atmosphere.physics import SurfaceState
    from repro.core.foam import FoamState

    cfg = model.config
    dt = cfg.atm_dt
    lo, hi = block_bounds(cfg.atm_nlat, layout.n_atm, pool.rank)
    leader = pool.rank == 0
    cpl = layout.cpl_rank
    ocean_mask = ~model.coupler.atm_land_mask

    for _ in range(nsteps):
        curr = state.atm_curr
        diag = model.atm_diagnose(curr)
        if leader:
            comm.send({"t_air": diag.temp[-1], "t_air2": diag.temp[-2],
                       "q_air": curr.q[-1], "u_air": diag.u[-1],
                       "v_air": diag.v[-1], "ps": diag.ps},
                      cpl, TAG_ATM_STATE)
        sfc = _timed_recv(comm, cpl, TAG_SURFACE, waits, "surface")
        surface = SurfaceState(t_sfc=sfc["t_sfc"], albedo=sfc["albedo"],
                               wetness=sfc["wetness"], z0=sfc["z0"],
                               ocean_mask=ocean_mask)
        phys = model.atm_physics(diag, curr.q, surface, sfc["fluxes"],
                                 time=state.time, rows=(lo, hi))
        band = {"dtdt": phys.dtdt, "dudt": phys.dudt, "dvdt": phys.dvdt,
                "dqdt": phys.dqdt,
                "precip": phys.precip_conv + phys.precip_strat,
                "sw_sfc": phys.fluxes["sw_sfc"],
                "lw_down": phys.fluxes["lw_down"]}
        parts = pool.allgather(band)
        # Latitude is the second-to-last axis of every payload field.
        full = {key: np.concatenate([p[key] for p in parts],
                                    axis=parts[0][key].ndim - 2)
                for key in band}
        if leader:
            # Ship the coupler's inputs *before* the spectral update and
            # dynamics: land/river/regrid work overlaps them every step.
            comm.send({"precip": full["precip"], "sw_sfc": full["sw_sfc"],
                       "lw_down": full["lw_down"]}, cpl, TAG_ATM_PHYS)
        new_curr = model.atm_apply_tendencies(
            curr, full["dtdt"], full["dudt"], full["dvdt"], full["dqdt"])
        new_prev, new_next = model.atm_dynamics(state.atm_prev, new_curr)
        state = FoamState(atm_prev=new_prev, atm_curr=new_next,
                          ocean=state.ocean, coupler=state.coupler,
                          time=state.time + dt)
    return {"atm_prev": state.atm_prev, "atm_curr": state.atm_curr,
            "time": state.time}


def _cpl_worker(comm, pool, layout, model, state, nsteps, waits):
    """The coupler rank: owns land/river/ice state + the forcing window."""
    cfg = model.config
    dt = cfg.atm_dt
    atm_leader = layout.atm_ranks[0]
    ocn_leader = layout.ocn_leader
    cpl_state = state.coupler

    # Initial SST (the serial run reads it straight off the initial ocean).
    sst = _timed_recv(comm, ocn_leader, TAG_SST, waits, "sst")
    pending_sst = False
    for _ in range(nsteps):
        st = _timed_recv(comm, atm_leader, TAG_ATM_STATE, waits, "atm_state")
        if pending_sst:
            # Lazily collect the overlapped ocean call's SST: this is the
            # first step that consumes it, so the recv lands as late as the
            # serial exchange epochs allow.
            sst = _timed_recv(comm, ocn_leader, TAG_SST, waits, "sst")
            pending_sst = False
        surface, turb = model.merge_surface(
            cpl_state, sst, t_air=st["t_air"], q_air=st["q_air"],
            u_air=st["u_air"], v_air=st["v_air"], ps=st["ps"])
        payload = {"t_sfc": surface.t_sfc, "albedo": surface.albedo,
                   "wetness": surface.wetness, "z0": surface.z0,
                   "fluxes": turb["atm"]}
        for r in layout.atm_ranks:
            comm.send(payload, r, TAG_SURFACE)
        ph = _timed_recv(comm, atm_leader, TAG_ATM_PHYS, waits, "atm_phys")
        # Land/rivers/regrid run here while the atm pool is inside its
        # spectral update + dynamics — the every-step overlap.
        cpl_state, _diags = model.accumulate_forcing(
            cpl_state, turb, surface, precip=ph["precip"],
            sw_sfc=ph["sw_sfc"], lw_down=ph["lw_down"],
            t_low1=st["t_air"], t_low2=st["t_air2"], dt=dt)
        if model.coupling_due():
            cpl_state, forcing = model.ocean_forcing(cpl_state, sst,
                                                     t_air_bot=st["t_air"])
            comm.send({"taux": forcing.taux, "tauy": forcing.tauy,
                       "heat": forcing.heat_flux, "fresh": forcing.freshwater},
                      ocn_leader, TAG_FORCING)
            pending_sst = True
    if pending_sst:  # drain the final overlapped call
        sst = _timed_recv(comm, ocn_leader, TAG_SST, waits, "sst")
    return {"coupler": cpl_state, "sst": sst, "acc": model._acc,
            "acc_steps": model._acc_steps}


def _ocn_worker(comm, pool, layout, model, state, nsteps, waits):
    """Ocean-pool rank: the leader integrates; extra ranks idle (ROADMAP)."""
    from repro.ocean.model import OceanForcing

    cfg = model.config
    cpl = layout.cpl_rank
    ocean_state = state.ocean
    busy = 0.0
    if pool.rank == 0:
        comm.send(model.ocean.sst(ocean_state), cpl, TAG_SST)
        n_calls = nsteps // cfg.atm_steps_per_coupling
        for _ in range(n_calls):
            f = _timed_recv(comm, cpl, TAG_FORCING, waits, "forcing")
            forcing = OceanForcing(f["taux"], f["tauy"], f["heat"], f["fresh"])
            t0 = time.perf_counter()
            ocean_state = model.ocean_advance(ocean_state, forcing)
            busy += time.perf_counter() - t0
            comm.send(model.ocean.sst(ocean_state), cpl, TAG_SST)
    return {"ocean": ocean_state, "ocean_busy": busy}


_WORKERS = {"atm": _atm_worker, "cpl": _cpl_worker, "ocn": _ocn_worker}


def run_concurrent_coupled(config=None, *, days: float = 1.0,
                           nsteps: int | None = None,
                           layout: PoolLayout | None = None,
                           profile: bool = False,
                           timeout: float | None = None,
                           substrate: str | None = None,
                           initial_state=None) -> ConcurrentCoupledResult:
    """Run the coupled model concurrently on disjoint rank pools.

    ``nsteps`` overrides ``days``.  With ``profile=True`` every rank
    records its own :class:`RunProfile` (via ``thread_profiler``) and the
    result carries both the per-rank profiles and their merge.  The
    returned state is numerically equivalent — bitwise at float64 — to
    ``nsteps`` serial ``coupled_step`` calls from the same initial state.

    ``substrate`` picks the communicator implementation ("thread" or
    "process"; default follows ``FOAM_COMM``).  On the process substrate
    each pool rank is a forked OS process, so ``--atm-ranks``/``--ocn-ranks``
    buy real multi-core wall-clock instead of GIL-interleaved threads.

    ``initial_state`` starts the run from an existing :class:`FoamState`
    (the run harness passes checkpointed or segment-boundary states here)
    instead of ``model.initial_state()``.  Each rank deep-copies it, so
    thread-substrate ranks never alias arrays.  For bitwise equivalence
    with a continuous run, ``initial_state.time`` must sit on a safe
    checkpoint boundary (coupling + radiation; see
    ``FoamConfig.checkpoint_boundary_steps``) so the fresh per-rank
    models' transient caches reconstruct identically.
    """
    import copy

    from repro.core.config import test_config
    from repro.core.foam import FoamModel, FoamState

    layout = layout or PoolLayout()
    cfg = config or test_config()
    if nsteps is None:
        nsteps = max(1, int(round(days * 86400.0 / cfg.atm_dt)))
    if layout.n_atm > cfg.atm_nlat:
        raise ValueError(f"n_atm={layout.n_atm} exceeds nlat={cfg.atm_nlat}")
    # Rank threads interleave on the GIL; size the backstop to the run, not
    # to the (pytest-lowered) default, so long runs don't false-timeout.
    tmo = timeout if timeout is not None else max(60.0, 2.0 * nsteps)

    def worker(comm: SimComm):
        role = layout.role_of(comm.rank)
        pool = comm.split(_POOL_COLORS[role])
        model = FoamModel(cfg)
        if initial_state is not None:
            state = copy.deepcopy(initial_state)
        else:
            state = model.initial_state()
        prof = Profiler(enabled=profile)
        waits: dict[str, float] = {}
        comm.barrier()                 # exclude construction from the walls
        t0 = time.perf_counter()
        with thread_profiler(prof):
            out = _WORKERS[role](comm, pool, layout, model, state, nsteps,
                                 waits)
        wall = time.perf_counter() - t0
        ws = get_workspace()
        out.update(
            rank=comm.rank, role=role, wall=wall, waits=waits,
            workspace=ws,
            ws_stats={"rank": comm.rank, "role": role, "hits": ws.hits,
                      "misses": ws.misses, "buffers": len(ws),
                      "nbytes": ws.nbytes},
            stats=comm.stats,
            profile=(prof.snapshot(label=f"rank{comm.rank}:{role}",
                                   meta={"rank": comm.rank, "pool": role,
                                         "wall": wall})
                     if profile else None))
        return out

    substrate = resolve_substrate(substrate)
    results = run_ranks(layout.world_size, worker, timeout=tmo,
                        substrate=substrate)

    atm0 = results[layout.atm_ranks[0]]
    cplr = results[layout.cpl_rank]
    ocn0 = results[layout.ocn_leader]
    state = FoamState(atm_prev=atm0["atm_prev"], atm_curr=atm0["atm_curr"],
                      ocean=ocn0["ocean"], coupler=cplr["coupler"],
                      time=atm0["time"])

    waits: dict[str, float] = {}
    for r in results:
        for k, v in r["waits"].items():
            waits[k] = waits.get(k, 0.0) + v
    profiles = [r["profile"] for r in results if r["profile"] is not None]
    merged = None
    if profiles:
        merged = merge_profiles(
            profiles,
            label=(f"concurrent coupled ({layout.n_atm} atm + 1 cpl + "
                   f"{layout.n_ocn} ocn ranks), {nsteps} steps"),
            meta={"layout": {"n_atm": layout.n_atm, "n_ocn": layout.n_ocn},
                  "nsteps": nsteps, "atm_dt": cfg.atm_dt,
                  "dtype": cfg.dtype_policy.name, "waits": dict(waits)})
    ocean_busy = ocn0["ocean_busy"]
    sst_wait = cplr["waits"].get("sst", 0.0)
    return ConcurrentCoupledResult(
        state=state, nsteps=nsteps, layout=layout,
        wall_seconds=max(r["wall"] for r in results),
        rank_walls=[r["wall"] for r in results],
        waits=waits,
        rank_waits=[{"rank": r["rank"], "role": r["role"], **r["waits"]}
                    for r in results],
        profile=merged, profiles=profiles,
        comm_stats=[r["stats"] for r in results],
        acc=cplr["acc"], acc_steps=cplr["acc_steps"], sst=cplr["sst"],
        workspaces=[r["workspace"] for r in results],
        ws_stats=[r["ws_stats"] for r in results],
        ocean_busy_seconds=ocean_busy,
        overlap_seconds=max(0.0, ocean_busy - sst_wait),
        substrate=substrate)
