"""Message-passing substrate: simulated MPI, domain decomposition, tracing.

FOAM's third and fourth design strategies (paper section 3) are
distributed-memory message passing via MPI.  This package provides the
in-process equivalent: :func:`run_ranks` spins up ranks exchanging real
NumPy arrays through the :class:`SimComm` interface, on which the
decompositions and distributed transposes of the component models are
built.  Two substrates implement that interface: rank threads
(:mod:`repro.parallel.simmpi`, the default) and real forked processes with
shared-memory bulk payloads (:mod:`repro.parallel.procmpi`), selected per
world via ``run_ranks(..., substrate=...)`` or the ``FOAM_COMM``
environment variable.
"""

from repro.parallel.commbase import CommBase, resolve_substrate
from repro.parallel.coupled import (
    ConcurrentCoupledResult,
    PoolLayout,
    run_concurrent_coupled,
)
from repro.parallel.decomp import BlockDecomp1D, BlockDecomp2D, block_bounds
from repro.parallel.faults import FaultPlan, corrupt_payload
from repro.parallel.procmpi import ProcComm, run_ranks_process
from repro.parallel.simmpi import (
    ANY_SOURCE,
    ANY_TAG,
    BlockedRank,
    CommError,
    CommStats,
    DeadlockError,
    DeadlockReport,
    RankCrashedError,
    SimComm,
    run_ranks,
)
from repro.parallel.trace import ACTIVITIES, RankTrace, Segment, TraceSet
from repro.parallel.transpose import transpose_backward, transpose_forward

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BlockedRank",
    "CommBase",
    "CommError",
    "CommStats",
    "ProcComm",
    "resolve_substrate",
    "run_ranks_process",
    "ConcurrentCoupledResult",
    "PoolLayout",
    "run_concurrent_coupled",
    "DeadlockError",
    "DeadlockReport",
    "FaultPlan",
    "RankCrashedError",
    "SimComm",
    "corrupt_payload",
    "run_ranks",
    "BlockDecomp1D",
    "BlockDecomp2D",
    "block_bounds",
    "transpose_forward",
    "transpose_backward",
    "ACTIVITIES",
    "RankTrace",
    "Segment",
    "TraceSet",
]
