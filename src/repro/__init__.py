"""FOAM: the Fast Ocean-Atmosphere Model — an SC'97 reproduction.

A coupled ocean-atmosphere climate model built for throughput, after
Tobis, Schafer, Foster, Jacob & Anderson, "FOAM: Expanding the Horizons of
Climate Modeling" (Supercomputing 1997):

* :mod:`repro.atmosphere` — R15-class spectral atmosphere (PCCM2 lineage)
  with CCM2/CCM3-style physics;
* :mod:`repro.ocean` — the fast z-coordinate ocean (slowed free surface,
  mode splitting, triple-rate subcycling);
* :mod:`repro.coupler` — overlap-grid fluxes, land, bucket hydrology,
  rivers, sea ice, closed hydrological cycle;
* :mod:`repro.core` — the coupled FOAM driver, configuration, restarts;
* :mod:`repro.parallel` — simulated-MPI substrate and decompositions;
* :mod:`repro.perf` — machine/cost models reproducing the paper's
  performance results;
* :mod:`repro.analysis` — EOF/VARIMAX/filtering toolkit for the science
  figures.

Quick start::

    from repro.core import FoamModel, small_config
    model = FoamModel(small_config())
    state = model.initial_state()
    state = model.run_days(state, 5.0)
    print(model.ocean.sst(state.ocean))
"""

__version__ = "1.0.0"

from repro.core import FoamConfig, FoamModel, paper_config, small_config, test_config

__all__ = ["FoamConfig", "FoamModel", "paper_config", "small_config",
           "test_config", "__version__"]
