"""VARIMAX rotation of EOF patterns (Kaiser 1958), as used for Figure 4.

Raw EOFs maximize explained variance mode by mode, which tends to smear
physically distinct centers of action into single global patterns.  VARIMAX
rotates a set of leading modes to maximize the variance of the *squared*
loadings — concentrating each rotated pattern on few locations — which is
how the paper isolates the two-basin (North Atlantic + North Pacific) mode.
"""

from __future__ import annotations

import numpy as np


def varimax(patterns: np.ndarray, max_iter: int = 500,
            tol: float = 1e-10, normalize: bool = True
            ) -> tuple[np.ndarray, np.ndarray]:
    """Rotate ``patterns`` (n_modes, n_space) to the VARIMAX criterion.

    Returns (rotated_patterns, rotation_matrix R) with
    ``rotated = R.T @ patterns`` and R orthogonal — so total variance over
    the rotated set is exactly preserved (tested property).

    ``normalize``: Kaiser normalization (rows scaled to unit communality
    during rotation), the standard variant.
    """
    a = np.asarray(patterns, dtype=float).T.copy()    # (n_space, n_modes)
    ns, k = a.shape
    if k < 2:
        return patterns.copy(), np.eye(k)

    comm = np.sqrt(np.sum(a**2, axis=1))
    if normalize:
        safe = np.where(comm > 0, comm, 1.0)
        a /= safe[:, None]

    r = np.eye(k)
    var_old = 0.0
    for _ in range(max_iter):
        lam = a @ r
        u, s, vt = np.linalg.svd(
            a.T @ (lam**3 - lam @ np.diag(np.sum(lam**2, axis=0)) / ns))
        r = u @ vt
        var_new = float(np.sum(s))
        if var_new - var_old < tol * max(var_new, 1.0):
            break
        var_old = var_new

    rotated = (a @ r)
    if normalize:
        rotated *= np.where(comm > 0, comm, 1.0)[:, None]
    return rotated.T, r


def rotated_variance_fractions(pcs: np.ndarray, rotation: np.ndarray,
                               total_variance: float) -> np.ndarray:
    """Variance fraction accounted by each rotated mode.

    The rotated PCs are ``pcs @ R``; with an orthogonal R their summed
    variance equals that of the unrotated set, redistributed across modes.
    """
    rot_pcs = pcs @ rotation
    var = np.sum(rot_pcs**2, axis=0)
    return var / total_variance
