"""Analysis toolkit: EOFs, VARIMAX rotation, low-pass filtering, climatology.

The instruments behind the paper's science results: Figure 3 (SST
climatology vs observations) and Figure 4 (VARIMAX-rotated EOF of 60-month
low-pass filtered SST showing the two-basin decadal mode).
"""

from repro.analysis.climatology import (
    anomalies,
    area_weights_from_lats,
    time_mean,
    zonal_mean,
)
from repro.analysis.eof import EOFResult, compute_eofs
from repro.analysis.filters import (
    detrend,
    lanczos_lowpass_weights,
    lowpass,
    monthly_means,
)
from repro.analysis.sst_obs import sst_error_statistics, synthetic_sst_climatology
from repro.analysis.varimax import rotated_variance_fractions, varimax

__all__ = [
    "EOFResult", "compute_eofs",
    "rotated_variance_fractions", "varimax",
    "detrend", "lanczos_lowpass_weights", "lowpass", "monthly_means",
    "anomalies", "area_weights_from_lats", "time_mean", "zonal_mean",
    "sst_error_statistics", "synthetic_sst_climatology",
]
