"""Time filtering for climate series: the 60-month low-pass of Figure 4.

A Lanczos (sinc * sigma-window) low-pass filter, the standard instrument for
isolating decadal variability from monthly model output, plus a
monthly-means helper and a detrend utility.
"""

from __future__ import annotations

import numpy as np


def lanczos_lowpass_weights(cutoff_steps: float, half_width: int) -> np.ndarray:
    """Symmetric Lanczos low-pass weights.

    ``cutoff_steps``: period (in samples) below which variance is removed —
    e.g. 60 for a 60-month cutoff on monthly data.  ``half_width``: the
    filter half-length (total length 2*half_width + 1); larger = sharper.
    """
    if cutoff_steps <= 2:
        raise ValueError("cutoff must exceed 2 samples (Nyquist)")
    if half_width < 1:
        raise ValueError("half_width must be >= 1")
    fc = 1.0 / cutoff_steps
    k = np.arange(-half_width, half_width + 1, dtype=float)
    with np.errstate(invalid="ignore", divide="ignore"):
        w = np.where(k == 0, 2.0 * fc, np.sin(2 * np.pi * fc * k) / (np.pi * k))
        sigma = np.where(k == 0, 1.0,
                         np.sin(np.pi * k / half_width) / (np.pi * k / half_width))
    w = w * sigma
    return w / w.sum()


def lowpass(series: np.ndarray, cutoff_steps: float,
            half_width: int | None = None) -> np.ndarray:
    """Low-pass filter along axis 0, reflecting at the ends.

    Works for 1-D series or (time, space) arrays.
    """
    x = np.asarray(series, dtype=float)
    if half_width is None:
        half_width = max(3, int(cutoff_steps))
    w = lanczos_lowpass_weights(cutoff_steps, half_width)
    n = x.shape[0]
    if n < 3:
        raise ValueError("series too short to filter")
    # Reflect-pad so the filtered series has the same length as the input;
    # reflection is the standard choice for climate series (no phase shift,
    # no spurious trend at the ends).
    pad = half_width
    idx = np.arange(-pad, n + pad)
    idx = np.abs(idx)                         # reflect at the start
    idx = np.where(idx >= n, 2 * (n - 1) - idx, idx)   # reflect at the end
    idx = np.clip(idx, 0, n - 1)
    flat = x.reshape(n, -1)
    padded = flat[idx]
    from numpy.lib.stride_tricks import sliding_window_view
    windows = sliding_window_view(padded, w.size, axis=0)   # (n, k, w)
    out = np.einsum("tkw,w->tk", windows, w)
    return out.reshape(x.shape)


def monthly_means(series: np.ndarray, times: np.ndarray,
                  month_seconds: float = 30 * 86400.0) -> tuple[np.ndarray, np.ndarray]:
    """Bin a time series into (30-day) monthly means.

    Returns (month_center_times, means); incomplete trailing bins dropped.
    """
    t = np.asarray(times, dtype=float)
    x = np.asarray(series, dtype=float)
    bins = np.floor((t - t[0]) / month_seconds).astype(int)
    nb = bins.max() + 1
    out = []
    centers = []
    for b in range(nb):
        sel = bins == b
        if sel.sum() == 0:
            continue
        out.append(x[sel].mean(axis=0))
        centers.append(t[sel].mean())
    return np.asarray(centers), np.asarray(out)


def detrend(series: np.ndarray) -> np.ndarray:
    """Remove the mean and least-squares linear trend along axis 0."""
    x = np.asarray(series, dtype=float)
    n = x.shape[0]
    t = np.arange(n, dtype=float)
    t -= t.mean()
    flat = x.reshape(n, -1)
    anom = flat - flat.mean(axis=0)
    slope = (t[:, None] * anom).sum(axis=0) / max((t**2).sum(), 1e-12)
    return (anom - np.outer(t, slope)).reshape(x.shape)
