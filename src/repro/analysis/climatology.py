"""Climatology helpers: time means, anomalies, zonal statistics."""

from __future__ import annotations

import numpy as np


def time_mean(snapshots: np.ndarray) -> np.ndarray:
    """Mean along the leading (time) axis."""
    x = np.asarray(snapshots, dtype=float)
    if x.shape[0] == 0:
        raise ValueError("no snapshots")
    return x.mean(axis=0)


def anomalies(snapshots: np.ndarray) -> np.ndarray:
    """Deviation of each snapshot from the time mean."""
    x = np.asarray(snapshots, dtype=float)
    return x - x.mean(axis=0, keepdims=True)


def zonal_mean(field: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """Longitude mean of (..., nlat, nlon), optionally over a mask."""
    f = np.asarray(field, dtype=float)
    if mask is None:
        return f.mean(axis=-1)
    m = np.asarray(mask, dtype=float)
    return np.sum(f * m, axis=-1) / np.maximum(np.sum(m, axis=-1), 1e-12)


def area_weights_from_lats(lats: np.ndarray, nlon: int) -> np.ndarray:
    """(nlat*nlon,) flattened cos(lat) area weights for EOF analysis."""
    w = np.cos(np.asarray(lats))[:, None] * np.ones((1, nlon))
    return (w / w.sum()).ravel()
