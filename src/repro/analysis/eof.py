"""Empirical orthogonal function (EOF) decomposition.

Figure 4 of the paper is "a pattern (obtained by VARIMAX rotation of
empirical orthogonal function decomposition) that accounts for fully 15
percent of 60 month low-pass filtered variance in sea surface temperature".
This module provides the EOF half; :mod:`repro.analysis.varimax` rotates the
result.

EOFs are computed by SVD of the (time x space) anomaly matrix — numerically
preferable to forming the covariance matrix — with optional area weighting
(fields on a lat-lon grid must be weighted by sqrt(cell area) so the inner
product approximates the spherical integral).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EOFResult:
    """EOF decomposition of an anomaly dataset.

    ``patterns``: (n_modes, n_space) spatial modes (unit norm in the
    weighted metric); ``pcs``: (n_time, n_modes) principal-component time
    series; ``variance_fraction``: fraction of total variance per mode.
    """

    patterns: np.ndarray
    pcs: np.ndarray
    variance_fraction: np.ndarray
    weights: np.ndarray

    def reconstruct(self, n_modes: int | None = None) -> np.ndarray:
        """Rebuild the (time x space) anomalies from the leading modes."""
        k = len(self.variance_fraction) if n_modes is None else n_modes
        return (self.pcs[:, :k] @ self.patterns[:k]) / np.sqrt(self.weights)[None, :]


def compute_eofs(anomalies: np.ndarray, n_modes: int = 10,
                 weights: np.ndarray | None = None) -> EOFResult:
    """EOFs of ``anomalies`` (n_time, n_space) with optional area weights.

    The time mean is removed defensively (no-op on true anomalies).  Columns
    with zero weight (e.g. land points) are retained but contribute nothing.
    """
    x = np.asarray(anomalies, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"anomalies must be 2-D (time, space), got {x.shape}")
    nt, ns = x.shape
    if nt < 2:
        raise ValueError("need at least 2 time samples")
    n_modes = min(n_modes, nt - 1, ns)
    if weights is None:
        weights = np.ones(ns)
    w = np.asarray(weights, dtype=float)
    if w.shape != (ns,):
        raise ValueError(f"weights must have shape ({ns},), got {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")

    x = x - x.mean(axis=0, keepdims=True)
    xw = x * np.sqrt(w)[None, :]
    u, s, vt = np.linalg.svd(xw, full_matrices=False)
    total_var = float(np.sum(s**2))
    if total_var == 0:
        raise ValueError("anomaly field has zero variance")
    patterns = vt[:n_modes]
    pcs = u[:, :n_modes] * s[:n_modes][None, :]
    varfrac = s[:n_modes] ** 2 / total_var
    return EOFResult(patterns=patterns, pcs=pcs,
                     variance_fraction=varfrac, weights=w)
