"""Synthetic "observed" SST climatology (substitute for Shea et al. 1990).

Figure 3(b) of the paper shows the Shea-Trenberth-Reynolds observed annual
mean SST, which is proprietary-era NCAR data we do not have.  This module
generates an analytic climatology with the same gross structure — the
comparison target for experiment E3:

* a zonal-mean profile peaking ~28-29 C in the tropics, falling to the
  freezing clamp poleward;
* the west-Pacific warm pool and east-Pacific equatorial cold tongue;
* warm western-boundary currents (Gulf Stream, Kuroshio) and their
  cold-tongue counterparts off the eastern boundaries;
* the circum-Antarctic cold ring.

All amplitudes are degrees-Celsius-scale values from any SST atlas; the
substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import T_FREEZE_SEA


def synthetic_sst_climatology(lats: np.ndarray, lons: np.ndarray
                              ) -> np.ndarray:
    """Annual-mean SST (deg C) on the given (lat, lon) grid (radians)."""
    lat = np.asarray(lats)[:, None]
    lon = np.asarray(lons)[None, :]
    lat_d = np.degrees(lat)
    lon_d = np.degrees(lon)

    # Zonal mean: warm tropical plateau, midlatitude gradient matching the
    # observed ~8 C at 50N, near-freezing poleward of ~65.
    sst = -1.5 + 30.0 * np.exp(-((lat_d / 40.0) ** 2)) * np.ones_like(lon_d)

    # West Pacific warm pool (+2.5 C around 0N, 150E).
    sst += 2.5 * np.exp(-(((lat_d - 2) / 12) ** 2 + ((lon_d - 150) / 35) ** 2))
    # East Pacific cold tongue (-3 C along the equator near 250E).
    sst -= 3.0 * np.exp(-((lat_d / 4) ** 2 + ((lon_d - 255) / 30) ** 2))
    # Gulf Stream warm tongue (38N, 300E) and Kuroshio (38N, 145E).
    sst += 2.0 * np.exp(-(((lat_d - 38) / 7) ** 2 + ((lon_d - 300) / 18) ** 2))
    sst += 2.0 * np.exp(-(((lat_d - 38) / 7) ** 2 + ((lon_d - 145) / 18) ** 2))
    # Eastern-boundary upwelling cool patches (Canary, California, Peru).
    sst -= 1.5 * np.exp(-(((lat_d - 25) / 8) ** 2 + ((lon_d - 340) / 12) ** 2))
    sst -= 1.5 * np.exp(-(((lat_d - 30) / 8) ** 2 + ((lon_d - 235) / 12) ** 2))
    sst -= 1.5 * np.exp(-(((lat_d + 15) / 8) ** 2 + ((lon_d - 280) / 12) ** 2))

    # Clamp at sea-water freezing, as the model does.
    return np.maximum(sst, T_FREEZE_SEA - 273.15)


def sst_error_statistics(model_sst: np.ndarray, obs_sst: np.ndarray,
                         weights: np.ndarray,
                         mask: np.ndarray | None = None) -> dict:
    """Fig-3(c)-style error metrics: bias, RMSE, pattern correlation."""
    if mask is None:
        mask = np.isfinite(model_sst)
    m = np.where(mask, model_sst, 0.0)
    o = np.where(mask, obs_sst, 0.0)
    w = np.where(mask, weights, 0.0)
    wsum = w.sum()
    bias = float(np.sum((m - o) * w) / wsum)
    rmse = float(np.sqrt(np.sum((m - o) ** 2 * w) / wsum))
    mm = np.sum(m * w) / wsum
    oo = np.sum(o * w) / wsum
    cov = np.sum((m - mm) * (o - oo) * w) / wsum
    sm = np.sqrt(np.sum((m - mm) ** 2 * w) / wsum)
    so = np.sqrt(np.sum((o - oo) ** 2 * w) / wsum)
    corr = float(cov / max(sm * so, 1e-12))
    return {"bias": bias, "rmse": rmse, "pattern_correlation": corr}
