"""Declarative run plans: one object describes a whole execution.

A :class:`RunPlan` captures everything that determines a FOAM integration —
the world (config and/or scenario), the duration, the execution mode
(serial, batched ensemble, concurrent rank pools), the communicator
substrate, and the output cadences (history snapshots, restart
checkpoints).  The :class:`~repro.runs.harness.RunHarness` resolves a plan
into a single stepping loop; nothing about the *result* depends on how the
plan is executed (the resume/equivalence contract in ``tests/test_runs.py``
pins serial == ensemble-member == thread-pool == process-pool bitwise).

:func:`RunPlan.run_key` is the content hash the future serving tier caches
on: it covers exactly the result-determining inputs (config, scenario,
duration, ensemble shape) and deliberately **excludes** the execution mode,
rank layout, substrate, and output cadences — bitwise mode-equivalence is
what makes one cache entry valid for every way of computing it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.config import FoamConfig, test_config

RUN_MODES = ("serial", "ensemble", "concurrent")


@dataclass(frozen=True)
class HistorySpec:
    """Streaming history output: what to record, how often, where.

    ``fields`` names extractors from
    :data:`repro.runs.observers.HISTORY_FIELDS`.  ``flush_every`` bounds
    writer memory: that many snapshots roll to one file.
    """

    directory: str
    interval_days: float = 0.25
    fields: tuple[str, ...] = ("sst", "t_sfc", "ice_thickness")
    flush_every: int = 8
    prefix: str = "history"

    def __post_init__(self):
        if self.interval_days <= 0:
            raise ValueError(f"history interval_days must be > 0, "
                             f"got {self.interval_days}")
        if not self.fields:
            raise ValueError("history needs at least one field")

    def interval_steps(self, config: FoamConfig) -> int:
        steps = int(round(self.interval_days * 86400.0 / config.atm_dt))
        return max(1, steps)


@dataclass(frozen=True)
class CheckpointSpec:
    """Restart checkpoints: cadence and directory.

    The cadence must land on *safe* boundaries
    (:attr:`FoamConfig.checkpoint_boundary_steps` — coupling and radiation
    boundaries coincide there), which is what makes a checkpoint bitwise
    resumable by a fresh model on any substrate.
    """

    directory: str
    interval_days: float = 0.5
    prefix: str = "ckpt"

    def __post_init__(self):
        if self.interval_days <= 0:
            raise ValueError(f"checkpoint interval_days must be > 0, "
                             f"got {self.interval_days}")

    def interval_steps(self, config: FoamConfig) -> int:
        steps = int(round(self.interval_days * 86400.0 / config.atm_dt))
        boundary = config.checkpoint_boundary_steps
        if steps <= 0 or steps % boundary != 0:
            raise ValueError(
                f"checkpoint cadence of {self.interval_days} days "
                f"({steps} steps) does not align with the safe checkpoint "
                f"boundary of {boundary} steps "
                f"({boundary * config.atm_dt / 86400.0:g} days): resumes "
                f"would not be bitwise")
        return steps


@dataclass(frozen=True)
class RunPlan:
    """A complete, declarative description of one FOAM run.

    ``config`` is the base configuration (default: ``test_config()``);
    ``scenario`` optionally names a registered world whose knobs are
    applied on top of it.  ``mode`` selects the execution path; ``nens``
    and ``ic_perturbation`` shape the ensemble; ``n_atm``/``n_ocn``/
    ``substrate`` shape the concurrent rank pools.  ``history`` and
    ``checkpoint`` attach the streaming observers.
    """

    config: FoamConfig | None = None
    scenario: str | None = None
    days: float = 1.0
    mode: str = "serial"
    nens: int = 1
    ic_perturbation: float = 0.0
    n_atm: int = 2
    n_ocn: int = 1
    substrate: str | None = None
    history: HistorySpec | None = None
    checkpoint: CheckpointSpec | None = None
    #: Free-form labels stored in checkpoint metadata.
    tags: tuple[str, ...] = field(default=())

    def __post_init__(self):
        if self.mode not in RUN_MODES:
            raise ValueError(f"mode must be one of {RUN_MODES}, "
                             f"got {self.mode!r}")
        if self.days <= 0:
            raise ValueError(f"days must be > 0, got {self.days}")
        if self.nens < 1:
            raise ValueError(f"nens must be >= 1, got {self.nens}")
        if self.mode != "ensemble" and self.nens != 1:
            raise ValueError(f"nens={self.nens} requires mode='ensemble'")
        if self.mode != "concurrent" and self.substrate is not None:
            raise ValueError("substrate only applies to mode='concurrent'")

    # ------------------------------------------------------------------
    def resolved_config(self) -> FoamConfig:
        """The effective :class:`FoamConfig` (scenario knobs applied)."""
        base = self.config if self.config is not None else test_config()
        if self.scenario is None:
            return base
        from repro.scenarios.registry import get_scenario
        return get_scenario(self.scenario).config(base)

    def total_steps(self, config: FoamConfig | None = None) -> int:
        cfg = config if config is not None else self.resolved_config()
        return max(1, int(round(self.days * 86400.0 / cfg.atm_dt)))

    # ------------------------------------------------------------------
    def run_key(self) -> str:
        """Content hash of the result-determining inputs.

        Two plans share a key iff they integrate the same world for the
        same duration with the same ensemble shape — however they are
        executed.  This is the serving tier's future cache key: a result
        computed serially satisfies a concurrent request and vice versa,
        because the execution paths are proven bitwise-equivalent.
        """
        cfg = self.resolved_config()
        payload = json.dumps(
            {"config": cfg.content_hash(), "scenario": self.scenario,
             "days": self.days, "nens": self.nens,
             "ic_perturbation": self.ic_perturbation},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
