"""Unified run execution: declarative plans, one stepping loop, resume.

``repro.runs`` is the façade every FOAM execution goes through: a
:class:`RunPlan` describes *what* to integrate (world, duration, ensemble
shape, rank layout, output cadences) and :class:`RunHarness` decides *how*
— one observer-instrumented stepping loop shared by serial, batched
ensemble, and concurrent rank-pool execution, with streaming history and
bitwise-resumable checkpoints on every path.
"""

from repro.runs.harness import RunHarness, RunResult, drive_steps
from repro.runs.observers import (
    HISTORY_FIELDS,
    CheckpointObserver,
    CoupledDiagnosticsObserver,
    HistoryObserver,
    StepObserver,
)
from repro.runs.plan import RUN_MODES, CheckpointSpec, HistorySpec, RunPlan

__all__ = [
    "RunPlan", "HistorySpec", "CheckpointSpec", "RUN_MODES",
    "RunHarness", "RunResult", "drive_steps",
    "StepObserver", "HistoryObserver", "CheckpointObserver",
    "CoupledDiagnosticsObserver", "HISTORY_FIELDS",
]
