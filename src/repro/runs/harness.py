"""The run harness: one stepping loop for every execution path.

:class:`RunHarness` resolves a declarative :class:`~repro.runs.plan.RunPlan`
into an integration and owns the time loop for every substrate:

* **serial** and **ensemble** plans drive :func:`drive_steps` — the single
  observer-instrumented loop that ``FoamModel.run_days`` and
  ``scenario_climatology`` also delegate to;
* **concurrent** plans segment the run at observer-event boundaries and
  hand each segment to the rank-pool driver
  (:func:`repro.parallel.coupled.run_concurrent_coupled`), threading the
  state through — since segments start at safe boundaries (see
  :attr:`FoamConfig.checkpoint_boundary_steps`) the segmented trajectory is
  bitwise the continuous one.

The headline contract (``tests/test_runs.py``): for any plan,
``run(N days)`` is bitwise float64-identical to ``run(k) -> checkpoint ->
resume -> run(N-k)``, across serial == ensemble-member == thread-pool ==
process-pool, including resuming a serial checkpoint onto a concurrent
substrate.  That is what lets the future serving tier cache results under
:meth:`RunPlan.run_key` regardless of how they were computed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import FoamConfig
from repro.core.foam import FoamModel, FoamState
from repro.core.history import HistoryWriter, load_checkpoint
from repro.runs.observers import (
    CheckpointObserver,
    HistoryObserver,
    StepObserver,
    step_index,
)
from repro.runs.plan import RunPlan

__all__ = ["RunHarness", "RunResult", "drive_steps"]


def drive_steps(model: FoamModel, state: FoamState, nsteps: int,
                observers: tuple[StepObserver, ...] = ()) -> FoamState:
    """THE stepping loop: ``nsteps`` coupled steps with observer hooks.

    Every in-process execution path funnels through here —
    ``FoamModel.run_days``, the batched ensemble, the scenario
    climatology reducer, and the harness's serial/ensemble modes — so
    there is exactly one place where a FOAM trajectory advances.
    Observers only *read* the state; the trajectory is independent of the
    observer set (and of ``nsteps`` partitioning, for the cache-
    reconstructible boundaries the checkpoint observer enforces).
    """
    for ob in observers:
        ob.on_start(model, state)
    for _ in range(nsteps):
        state = model.coupled_step(state)
        for ob in observers:
            ob.on_step(model, state)
    for ob in observers:
        ob.on_end(model, state)
    return state


@dataclass
class RunResult:
    """Everything one harness run produced."""

    state: FoamState
    plan: RunPlan
    run_key: str
    steps: int                         # steps executed by *this* call
    start_step: int                    # absolute step index the run began at
    wall_seconds: float
    mode: str
    substrate: str | None = None
    nens: int = 1
    history_files: list[Path] = field(default_factory=list)
    checkpoints: list[Path] = field(default_factory=list)
    #: Per-segment pool-driver results (concurrent mode only).
    concurrent: list = field(default_factory=list)

    @property
    def hidden_fraction(self) -> float:
        """Ocean-compute overlap across concurrent segments (0 if serial)."""
        busy = sum(r.ocean_busy_seconds for r in self.concurrent)
        if busy <= 0.0:
            return 0.0
        return sum(r.overlap_seconds for r in self.concurrent) / busy


class RunHarness:
    """Resolve a :class:`RunPlan` and own its stepping loop end to end."""

    def __init__(self, plan: RunPlan,
                 observers: tuple[StepObserver, ...] = ()):
        self.plan = plan
        self.config: FoamConfig = plan.resolved_config()
        self.extra_observers = tuple(observers)
        self.ensemble = None
        if plan.mode == "ensemble":
            from repro.core.ensemble import EnsembleConfig, FoamEnsemble
            self.ensemble = FoamEnsemble(EnsembleConfig(
                nens=plan.nens, base=self.config,
                ic_perturbation=plan.ic_perturbation))
            self.model = self.ensemble.model
        else:
            self.model = FoamModel(self.config)

    # ------------------------------------------------------------------
    def initial_state(self) -> FoamState:
        if self.ensemble is not None:
            return self.ensemble.initial_state()
        return self.model.initial_state()

    def _build_observers(self) -> tuple[StepObserver, ...]:
        plan, cfg = self.plan, self.config
        built: list[StepObserver] = []
        if plan.history is not None:
            writer = HistoryWriter(plan.history.directory,
                                   prefix=plan.history.prefix,
                                   flush_every=plan.history.flush_every)
            built.append(HistoryObserver(
                writer, plan.history.interval_steps(cfg),
                fields=plan.history.fields))
        if plan.checkpoint is not None:
            built.append(CheckpointObserver(
                plan.checkpoint.directory,
                plan.checkpoint.interval_steps(cfg), config=cfg,
                meta={"run_key": self.plan.run_key(), "mode": plan.mode,
                      "nens": plan.nens, "scenario": plan.scenario,
                      "days": plan.days, "tags": list(plan.tags)},
                prefix=plan.checkpoint.prefix))
        return tuple(built) + self.extra_observers

    # ------------------------------------------------------------------
    def _load_resume_state(self, checkpoint: str | Path) -> FoamState:
        state, meta = load_checkpoint(checkpoint)
        want = self.config.content_hash()
        got = meta.get("config_hash")
        if got is not None and got != want:
            raise ValueError(
                f"checkpoint {checkpoint} was produced by a different "
                f"configuration (hash {got[:12]}… vs plan {want[:12]}…); "
                f"resuming would silently diverge")
        ckpt_nens = meta.get("nens")
        if ckpt_nens is not None and ckpt_nens != self.plan.nens:
            raise ValueError(
                f"checkpoint {checkpoint} holds nens={ckpt_nens} members "
                f"but the plan asks for nens={self.plan.nens}")
        return state

    # ------------------------------------------------------------------
    def run(self, *, state: FoamState | None = None,
            resume_from: str | Path | None = None,
            observers: tuple[StepObserver, ...] = ()) -> RunResult:
        """Execute the plan (or its remainder, when resuming).

        ``plan.days`` is the run's *total* duration from time zero:
        resuming from a checkpoint taken at day ``k`` integrates the
        remaining ``days - k`` — so ``run()`` and ``run(resume_from=...)``
        of the same plan end at the same simulated time with bitwise the
        same state.
        """
        if state is not None and resume_from is not None:
            raise ValueError("pass either state or resume_from, not both")
        if resume_from is not None:
            state = self._load_resume_state(resume_from)
        elif state is None:
            state = self.initial_state()

        cfg = self.config
        total = self.plan.total_steps(cfg)
        start = step_index(self.model, state)
        if start > total:
            raise ValueError(
                f"state is already {start} steps in; the plan only runs "
                f"{total} (raise plan.days to resume further)")
        remaining = total - start
        observers = self._build_observers() + tuple(observers)

        t0 = _time.perf_counter()
        if self.plan.mode == "concurrent":
            result_state, segments = self._run_concurrent(
                state, start, total, observers)
        else:
            result_state = drive_steps(self.model, state, remaining,
                                       observers)
            segments = []
        wall = _time.perf_counter() - t0

        history_files: list[Path] = []
        checkpoints: list[Path] = []
        for ob in observers:
            if isinstance(ob, HistoryObserver):
                history_files.extend(ob.writer.files_written)
            if isinstance(ob, CheckpointObserver):
                checkpoints.extend(ob.paths)
        return RunResult(
            state=result_state, plan=self.plan, run_key=self.plan.run_key(),
            steps=remaining, start_step=start, wall_seconds=wall,
            mode=self.plan.mode, substrate=self.plan.substrate,
            nens=self.plan.nens, history_files=history_files,
            checkpoints=checkpoints, concurrent=segments)

    # ------------------------------------------------------------------
    def _segment_targets(self, start: int, total: int,
                         observers) -> list[int]:
        """Absolute step indices the concurrent run must surface state at.

        Segment boundaries are where observers fire; they must be safe
        boundaries (fresh per-segment rank models reconstruct their
        caches bitwise there), which the cadence validation guarantees
        for checkpoints and this method enforces for history.
        """
        boundary = self.config.checkpoint_boundary_steps
        cadences = []
        for ob in observers:
            interval = getattr(ob, "interval_steps", None)
            if interval is None:
                continue
            if interval % boundary != 0:
                raise ValueError(
                    f"{type(ob).__name__} cadence of {interval} steps "
                    f"does not align with the safe segment boundary of "
                    f"{boundary} steps required by concurrent execution")
            cadences.append(interval)
        targets = {total}
        for interval in cadences:
            targets.update(s for s in range(start + 1, total + 1)
                           if s % interval == 0)
        return sorted(targets)

    def _run_concurrent(self, state: FoamState, start: int, total: int,
                        observers) -> tuple[FoamState, list]:
        from repro.parallel.coupled import PoolLayout, run_concurrent_coupled

        plan = self.plan
        layout = PoolLayout(n_atm=plan.n_atm, n_ocn=plan.n_ocn)
        for ob in observers:
            ob.on_start(self.model, state)
        segments = []
        cursor = start
        for target in self._segment_targets(start, total, observers):
            if target == cursor:
                continue
            seg = run_concurrent_coupled(
                config=self.config, nsteps=target - cursor, layout=layout,
                substrate=plan.substrate, initial_state=state)
            segments.append(seg)
            state = seg.state
            cursor = target
            for ob in observers:
                ob.on_step(self.model, state)
        for ob in observers:
            ob.on_end(self.model, state)
        return state, segments
