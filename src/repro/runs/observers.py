"""Pluggable per-step hooks for the run harness.

A :class:`StepObserver` sees the model and the state after every coupled
step (and at run start/end) without owning any part of the stepping loop —
history output, checkpointing, climatology accumulation, and the legacy
``CoupledDiagnostics`` sampling are all observers now, so every execution
path (serial, batched ensemble, concurrent rank pools) gets them from the
same code.

Cadenced observers derive "am I due?" from the *absolute* step index
(``round(state.time / atm_dt)``), never from a private counter — so a run
resumed from a checkpoint fires at exactly the step numbers the
straight-through run would, and ``run(N)`` and ``run(k) + resume(N-k)``
produce identical history files and checkpoint sequences.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.history import HistoryWriter, save_restart

__all__ = ["StepObserver", "HistoryObserver", "CheckpointObserver",
           "CoupledDiagnosticsObserver", "HISTORY_FIELDS", "step_index"]


def step_index(model, state) -> int:
    """Absolute coupled-step index of a state (0 at time zero)."""
    return int(round(state.time / model.config.atm_dt))


class StepObserver:
    """Base class: override any subset of the three hooks."""

    def on_start(self, model, state) -> None:
        """Called once with the state the loop starts from."""

    def on_step(self, model, state) -> None:
        """Called after every coupled step with the new state."""

    def on_end(self, model, state) -> None:
        """Called once with the final state."""


# ----------------------------------------------------------------------
# history
# ----------------------------------------------------------------------
#: Named history field extractors: ``f(model, state) -> ndarray``.  All
#: shapes pass through untouched, so batched states contribute their
#: member axis natively (``(nens, ny, nx)`` snapshots -> ``(T, nens, ny,
#: nx)`` files).
HISTORY_FIELDS = {
    "sst": lambda model, state: np.nan_to_num(model.ocean.sst(state.ocean)),
    "t_sfc": lambda model, state: model.coupler.surface_state_for_atm(
        state.coupler, model.ocean.sst(state.ocean)).t_sfc,
    "ice_thickness": lambda model, state: state.coupler.ice.thickness,
    "eta": lambda model, state: state.ocean.eta,
    "soil_moisture": lambda model, state: state.coupler.hydrology.soil_moisture,
    "snow_depth": lambda model, state: state.coupler.hydrology.snow_depth,
}


class HistoryObserver(StepObserver):
    """Streams named diagnostics to a rolling :class:`HistoryWriter`.

    Records every ``interval_steps`` coupled steps (by absolute step
    index, so resumed runs continue the exact snapshot schedule) plus the
    initial state at run start when it falls on the cadence.
    """

    def __init__(self, writer: HistoryWriter, interval_steps: int,
                 fields: tuple[str, ...] = ("sst", "t_sfc", "ice_thickness")):
        if interval_steps < 1:
            raise ValueError(f"interval_steps must be >= 1, "
                             f"got {interval_steps}")
        unknown = set(fields) - set(HISTORY_FIELDS)
        if unknown:
            raise ValueError(f"unknown history fields {sorted(unknown)}; "
                             f"known: {sorted(HISTORY_FIELDS)}")
        self.writer = writer
        self.interval_steps = interval_steps
        self.fields = tuple(fields)

    def _record(self, model, state) -> None:
        self.writer.record(state.time, **{
            name: HISTORY_FIELDS[name](model, state) for name in self.fields})

    def on_start(self, model, state) -> None:
        # The t=0 snapshot of a fresh run; resumed runs start past it and
        # must not re-record their checkpointed step's snapshot.
        if step_index(model, state) == 0:
            self._record(model, state)

    def on_step(self, model, state) -> None:
        if step_index(model, state) % self.interval_steps == 0:
            self._record(model, state)

    def on_end(self, model, state) -> None:
        self.writer.close()


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
class CheckpointObserver(StepObserver):
    """Writes versioned, config-hash-stamped checkpoints on a cadence.

    ``interval_steps`` must be a multiple of
    :attr:`FoamConfig.checkpoint_boundary_steps` (validated by
    :meth:`CheckpointSpec.interval_steps`) so every file is bitwise
    resumable by a fresh model on any substrate.
    """

    def __init__(self, directory: str | Path, interval_steps: int, *,
                 config, meta: dict | None = None, prefix: str = "ckpt"):
        boundary = config.checkpoint_boundary_steps
        if interval_steps < 1 or interval_steps % boundary != 0:
            raise ValueError(
                f"checkpoint interval of {interval_steps} steps does not "
                f"align with the safe boundary of {boundary} steps")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval_steps = interval_steps
        self.config = config
        self.meta = dict(meta or {})
        self.prefix = prefix
        self.paths: list[Path] = []

    def on_step(self, model, state) -> None:
        istep = step_index(model, state)
        if istep % self.interval_steps == 0:
            path = self.directory / f"{self.prefix}_{istep:08d}.npz"
            save_restart(path, state, config=self.config,
                         meta={**self.meta, "step": istep})
            self.paths.append(path)


# ----------------------------------------------------------------------
# legacy CoupledDiagnostics sampling (FoamModel.run_days contract)
# ----------------------------------------------------------------------
class CoupledDiagnosticsObserver(StepObserver):
    """Replicates the historical ``run_days(diagnostics=...)`` sampling.

    Samples SST whenever ``state.time`` crosses the next multiple of
    ``sample_interval`` past the start time — operation-for-operation the
    loop ``run_days`` used to inline, so existing diagnostics consumers
    see identical accumulations.
    """

    def __init__(self, diagnostics, sample_interval: float = 86400.0):
        self.diagnostics = diagnostics
        self.sample_interval = sample_interval
        self._next = None

    def on_start(self, model, state) -> None:
        self._next = state.time

    def on_step(self, model, state) -> None:
        d = self.diagnostics
        if state.time >= self._next:
            sst = model.ocean.sst(state.ocean)
            if d.sst_sum is None:
                d.sst_sum = np.zeros_like(np.nan_to_num(sst))
            d.sst_sum += np.nan_to_num(sst)
            d.sst_count += 1
            d.history_sst.append(np.nan_to_num(sst).copy())
            d.history_time.append(state.time)
            self._next += self.sample_interval
