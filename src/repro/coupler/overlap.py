"""The FOAM overlap grid: exact, conservative atm <-> ocean exchange (Fig. 1).

Paper: *"The model represents the globe as being divided into two grids, one
for the atmosphere and another for the ocean.  A third decomposition of the
surface is constructed by laying one grid on top of the other ...  The
atmosphere/ocean exchanges, which depend on the properties of both, are
calculated for each piece of this overlap grid and are then averaged for
passing back to the ocean and atmosphere ...  No effort is made to
interpolate all state variables to a single grid."*

Both component grids are latitude-longitude boxes, so every overlap cell is
itself a lat-lon box: the overlap grid is simply the outer product of the
merged latitude edges and merged longitude edges.  Cell areas are exact
(proportional to  d(sin lat) * d lon), so a flux computed once per overlap
cell and area-averaged back to either grid conserves the global integral to
round-off *by construction* — the property the closed hydrological cycle
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import get_workspace
from repro.util.constants import EARTH_RADIUS


def cell_edges_from_centers(centers: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Cell edges at midpoints between centers, clamped to [lo, hi]."""
    c = np.asarray(centers, dtype=float)
    if np.any(np.diff(c) <= 0):
        raise ValueError("centers must be strictly increasing")
    edges = np.empty(c.size + 1)
    edges[1:-1] = 0.5 * (c[:-1] + c[1:])
    edges[0] = lo
    edges[-1] = hi
    return edges


def lon_edges_uniform(nlon: int) -> np.ndarray:
    """Edges of nlon uniform longitude cells centered on 2 pi i / n."""
    dlon = 2.0 * np.pi / nlon
    return -0.5 * dlon + dlon * np.arange(nlon + 1)


def _merge_edges(edges_a: np.ndarray, edges_b: np.ndarray,
                 tol: float = 1e-12) -> np.ndarray:
    merged = np.union1d(edges_a, edges_b)
    # Collapse near-duplicates (same physical edge from both grids).
    keep = np.concatenate([[True], np.diff(merged) > tol])
    return merged[keep]


def _band_owner(band_centers: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Index of the source cell containing each band center; -1 outside."""
    idx = np.searchsorted(edges, band_centers) - 1
    idx[(band_centers < edges[0]) | (band_centers > edges[-1])] = -1
    return np.clip(idx, -1, len(edges) - 2)


@dataclass
class OverlapGrid:
    """Conservative exchange operator between an atmosphere and an ocean grid.

    Parameters are the *centers* of the two grids' cells: atmosphere
    (Gaussian latitudes spanning pole to pole) and ocean (Mercator latitudes
    spanning less than pole to pole — the polar caps are atmosphere-over-land
    or over the ice model, not open ocean).
    """

    atm_lats: np.ndarray      # radians, increasing
    atm_nlon: int
    ocn_lats: np.ndarray
    ocn_nlon: int

    def __post_init__(self):
        a_lat_edges = cell_edges_from_centers(self.atm_lats, -np.pi / 2, np.pi / 2)
        o_lo = 1.5 * self.ocn_lats[0] - 0.5 * self.ocn_lats[1]
        o_hi = 1.5 * self.ocn_lats[-1] - 0.5 * self.ocn_lats[-2]
        o_lat_edges = cell_edges_from_centers(self.ocn_lats, o_lo, o_hi)
        self._o_lat_edges = o_lat_edges
        self._a_lat_edges = a_lat_edges
        lat_edges = _merge_edges(a_lat_edges, o_lat_edges)
        self.lat_edges = lat_edges
        lat_centers = 0.5 * (lat_edges[:-1] + lat_edges[1:])
        self.a_lat_of = _band_owner(lat_centers, a_lat_edges)
        self.o_lat_of = _band_owner(lat_centers, o_lat_edges)

        a_lon_edges = lon_edges_uniform(self.atm_nlon)
        o_lon_edges = lon_edges_uniform(self.ocn_nlon)
        # Merge in [lon0, lon0 + 2pi); both start at -dlon/2 of their own grid.
        lo = min(a_lon_edges[0], o_lon_edges[0])
        a_shift = np.sort(np.mod(a_lon_edges[:-1] - lo, 2 * np.pi))
        o_shift = np.sort(np.mod(o_lon_edges[:-1] - lo, 2 * np.pi))
        lon_edges = _merge_edges(np.concatenate([a_shift, [2 * np.pi]]),
                                 np.concatenate([o_shift, [2 * np.pi]]))
        self.lon_edges = lon_edges
        self._lon_lo = lo
        lon_centers = 0.5 * (lon_edges[:-1] + lon_edges[1:]) + lo
        self.a_lon_of = (np.searchsorted(a_lon_edges, np.mod(
            lon_centers - a_lon_edges[0], 2 * np.pi) + a_lon_edges[0]) - 1) % self.atm_nlon
        self.o_lon_of = (np.searchsorted(o_lon_edges, np.mod(
            lon_centers - o_lon_edges[0], 2 * np.pi) + o_lon_edges[0]) - 1) % self.ocn_nlon

        # Exact areas (m^2): R^2 * d(sin lat) * d lon.
        dsin = np.diff(np.sin(lat_edges))
        dlon = np.diff(lon_edges)
        self.areas = EARTH_RADIUS**2 * np.outer(dsin, dlon)
        self.nlat = self.areas.shape[0]
        self.nlon = self.areas.shape[1]
        self._build_weights()

    # ------------------------------------------------------------------
    def _build_weights(self) -> None:
        """Per-target-cell area normalizations for the averaging passes.

        The broadcast 2-D scatter indices and the clamped denominators are
        built once here and reused by every :meth:`to_atm` / :meth:`to_ocn`
        call — the regrid runs every coupling interval and must not rebuild
        its index arrays each time.
        """
        self._a_idx = (
            self.a_lat_of[:, None] * np.ones_like(self.a_lon_of[None, :]),
            np.ones_like(self.a_lat_of[:, None]) * self.a_lon_of[None, :])
        self._atm_area = np.zeros((len(self.atm_lats), self.atm_nlon))
        np.add.at(self._atm_area, self._a_idx, self.areas)
        valid = self.ocean_valid_mask()
        self._ocn_valid = valid
        self._ocn_invalid = ~valid
        o_lat = np.where(self.o_lat_of >= 0, self.o_lat_of, 0)
        self._o_idx = (
            o_lat[:, None] * np.ones_like(self.o_lon_of[None, :], dtype=int),
            np.ones_like(o_lat[:, None], dtype=int) * self.o_lon_of[None, :])
        self._ocn_area = np.zeros((len(self.ocn_lats), self.ocn_nlon))
        np.add.at(self._ocn_area, self._o_idx,
                  np.where(valid, self.areas, 0.0))
        self._atm_area_safe = np.maximum(self._atm_area, 1e-30)
        self._ocn_area_safe = np.maximum(self._ocn_area, 1e-30)
        # Flattened scatter indices for the bincount-based averaging passes
        # (bincount accumulates in the same C traversal order as np.add.at,
        # so the swap is bitwise-neutral — and an order of magnitude faster).
        self._a_flat = (self._a_idx[0] * self.atm_nlon
                        + self._a_idx[1]).ravel()
        self._o_flat = (self._o_idx[0] * self.ocn_nlon
                        + self._o_idx[1]).ravel()
        self._flat_cache: dict = {}
        # Flattened gather indices for from_atm/from_ocn: np.take along a
        # flattened trailing axis moves the same elements as the broadcast
        # 2-D fancy index (bitwise-identical), substantially faster.
        self._a_gather = (self.a_lat_of[:, None] * self.atm_nlon
                          + self.a_lon_of[None, :])
        self._o_gather = o_lat[:, None] * self.ocn_nlon + self.o_lon_of[None, :]

    def _flat_scatter_idx(self, flat: np.ndarray, ncell: int,
                          lead: tuple) -> np.ndarray:
        """Member-offset flattened scatter indices, cached per batch shape."""
        if not lead:
            return flat
        key = (flat is self._a_flat, lead[0])
        cached = self._flat_cache.get(key)
        if cached is None:
            cached = (np.arange(lead[0])[:, None] * ncell + flat[None]).ravel()
            self._flat_cache[key] = cached
        return cached

    def ocean_valid_mask(self) -> np.ndarray:
        """(nlat, nlon) overlap cells that lie inside the ocean grid's span."""
        return (self.o_lat_of >= 0)[:, None] & np.ones(self.nlon, dtype=bool)[None, :]

    # ------------------------------------------------------------------
    # gather: component grid -> overlap grid (no interpolation: piecewise const)
    # ------------------------------------------------------------------
    def from_atm(self, field: np.ndarray) -> np.ndarray:
        """(..., atm_nlat, atm_nlon) -> (..., nlat, nlon) by indexing.

        Piecewise-constant gather (Fig 1(b) region ii); leading ensemble
        axes pass straight through.
        """
        flat = field.reshape(field.shape[:-2] + (-1,))
        return np.take(flat, self._a_gather, axis=-1)

    def from_ocn(self, field: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """(..., ocn_nlat, ocn_nlon) -> overlap; cells outside the ocean span get fill."""
        flat = field.reshape(field.shape[:-2] + (-1,))
        out = np.take(flat, self._o_gather, axis=-1)
        return np.where(self._ocn_valid, out, fill)

    # ------------------------------------------------------------------
    # scatter: overlap grid -> component grid (area-weighted average)
    # ------------------------------------------------------------------
    def to_atm(self, overlap_field: np.ndarray) -> np.ndarray:
        """Area-average the overlap field onto the atmosphere grid.

        Leading (ensemble) axes on ``overlap_field`` carry through; each
        member accumulates its overlap cells in the same C order as the
        unbatched scatter, so results are bitwise identical per member.
        """
        ws = get_workspace()
        lead = overlap_field.shape[:-2]
        weighted = np.multiply(overlap_field, self.areas,
                               out=ws.empty("overlap.weighted",
                                            lead + self.areas.shape, np.float64))
        ncell = len(self.atm_lats) * self.atm_nlon
        idx = self._flat_scatter_idx(self._a_flat, ncell, lead)
        out = np.bincount(idx, weights=weighted.ravel(),
                          minlength=int(np.prod(lead, dtype=int)) * ncell)
        out = out.reshape(lead + (len(self.atm_lats), self.atm_nlon))
        return out / self._atm_area_safe

    def to_ocn(self, overlap_field: np.ndarray) -> np.ndarray:
        """Area-average the overlap field onto the ocean grid."""
        ws = get_workspace()
        lead = overlap_field.shape[:-2]
        weighted = np.multiply(overlap_field, self.areas,
                               out=ws.empty("overlap.weighted",
                                            lead + self.areas.shape, np.float64))
        # Zeroing invalid cells in place adds the same 0.0 terms, in the
        # same order, as the old np.where operand did.
        weighted[..., self._ocn_invalid] = 0.0
        ncell = len(self.ocn_lats) * self.ocn_nlon
        idx = self._flat_scatter_idx(self._o_flat, ncell, lead)
        out = np.bincount(idx, weights=weighted.ravel(),
                          minlength=int(np.prod(lead, dtype=int)) * ncell)
        out = out.reshape(lead + (len(self.ocn_lats), self.ocn_nlon))
        return out / self._ocn_area_safe

    # ------------------------------------------------------------------
    def integrate(self, overlap_field: np.ndarray) -> float:
        """Exact global integral of an overlap field (flux * area)."""
        return float(np.sum(overlap_field * self.areas))

    def integrate_atm(self, field: np.ndarray) -> float:
        """Global integral of an atmosphere-grid field using overlap areas."""
        return float(np.sum(field * self._atm_area))

    def integrate_ocn(self, field: np.ndarray) -> float:
        """Integral of an ocean-grid field over the ocean grid's span."""
        return float(np.sum(field * self._ocn_area))
