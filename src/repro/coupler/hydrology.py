"""Bucket hydrology: the Manabe/Budyko box model as used in FOAM.

Paper: *"Precipitation is added to a 15 cm soil moisture box or to the snow
cover, if the ground and lowest two atmosphere levels are below freezing.
The soil moisture is used to calculate a wetness factor D_w used in the
latent heat flux calculation.  (D_w equals 1 for land ice, sea ice, snow
covered and ocean surfaces.)  Evaporation removes water from the box and any
excess over 15 cm is designated as runoff and sent to the river model.  Snow
cover modifies the properties of the upper soil layer ... Snow melt is
calculated and added to the local soil moisture.  Snow depths greater than
1 m liquid water equivalent are also sent to the river model to mimic the
near-equilibrium of the Greenland and Antarctic ice sheets."*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import (
    LATENT_HEAT_FUS,
    RHO_WATER,
    SNOW_RUNOFF_DEPTH,
    SOIL_MOISTURE_CAPACITY,
    T_FREEZE,
)

# Manabe (1969): evaporation is unstressed above 75% of bucket capacity.
WETNESS_SATURATION_FRACTION = 0.75


@dataclass
class HydrologyState:
    """Soil moisture and snow depth (m liquid water equivalent)."""

    soil_moisture: np.ndarray    # (nlat, nlon), meters, 0..0.15
    snow_depth: np.ndarray      # (nlat, nlon), meters liquid equivalent

    @classmethod
    def initialized(cls, nlat: int, nlon: int,
                    moisture_fraction: float = 0.5) -> "HydrologyState":
        return cls(
            soil_moisture=np.full((nlat, nlon),
                                  moisture_fraction * SOIL_MOISTURE_CAPACITY),
            snow_depth=np.zeros((nlat, nlon)))


def wetness_factor(state: HydrologyState, land_ice: np.ndarray | None = None
                   ) -> np.ndarray:
    """The D_w latent-heat availability factor of the paper.

    1 over snow cover and land ice; otherwise the Manabe ramp
    W / (0.75 W_max) capped at 1.
    """
    dw = np.clip(state.soil_moisture /
                 (WETNESS_SATURATION_FRACTION * SOIL_MOISTURE_CAPACITY), 0.0, 1.0)
    snow_covered = state.snow_depth > 1e-4
    dw = np.where(snow_covered, 1.0, dw)
    if land_ice is not None:
        dw = np.where(land_ice, 1.0, dw)
    return dw


def snowfall_partition(precip: np.ndarray, ground_temp: np.ndarray,
                       t_low1: np.ndarray, t_low2: np.ndarray) -> np.ndarray:
    """Fraction of precipitation falling as snow.

    The paper's rule verbatim: snow iff the ground and the lowest two
    atmosphere levels are all below freezing.
    """
    cold = (ground_temp < T_FREEZE) & (t_low1 < T_FREEZE) & (t_low2 < T_FREEZE)
    return np.where(cold, 1.0, 0.0)


def snow_melt_rate(snow_depth: np.ndarray, surface_temp: np.ndarray,
                   available_energy: np.ndarray, dt: float) -> np.ndarray:
    """Melt rate (m liquid equiv / s), energy-limited and snow-limited.

    ``available_energy`` is the surface energy surplus (W/m^2) when the skin
    is at/above freezing; it melts snow at L_f per kg.
    """
    warm = surface_temp >= T_FREEZE
    rate_energy = np.maximum(available_energy, 0.0) / (LATENT_HEAT_FUS * RHO_WATER)
    rate = np.where(warm, rate_energy, 0.0)
    return np.minimum(rate, snow_depth / max(dt, 1e-9))


def step_hydrology(state: HydrologyState, *, precip: np.ndarray,
                   evaporation: np.ndarray, ground_temp: np.ndarray,
                   t_low1: np.ndarray, t_low2: np.ndarray,
                   melt_energy: np.ndarray, dt: float,
                   land_mask: np.ndarray) -> tuple[HydrologyState, np.ndarray]:
    """One hydrology step.  Returns (new state, runoff rate kg m^-2 s^-1).

    ``precip`` and ``evaporation`` in kg m^-2 s^-1; runoff collects bucket
    overflow plus excess snow (> 1 m liquid equivalent) for the river model.
    All quantities are zero off ``land_mask``.
    """
    w = state.soil_moisture.copy()
    snow = state.snow_depth.copy()

    snow_frac = snowfall_partition(precip, ground_temp, t_low1, t_low2)
    p_snow = precip * snow_frac / RHO_WATER           # m/s
    p_rain = precip * (1.0 - snow_frac) / RHO_WATER

    melt = snow_melt_rate(snow, ground_temp, melt_energy, dt)
    snow = snow + dt * (p_snow - melt)
    snow = np.maximum(snow, 0.0)

    # Evaporation first sublimates snow, then draws the bucket.
    evap_m = np.maximum(evaporation, 0.0) / RHO_WATER
    from_snow = np.minimum(evap_m, snow / max(dt, 1e-9))
    snow = np.maximum(snow - dt * from_snow, 0.0)
    from_soil = evap_m - from_snow

    w = w + dt * (p_rain + melt - from_soil)
    w = np.maximum(w, 0.0)

    overflow = np.maximum(w - SOIL_MOISTURE_CAPACITY, 0.0)
    w = w - overflow

    ice_excess = np.maximum(snow - SNOW_RUNOFF_DEPTH, 0.0)
    snow = snow - ice_excess

    runoff = (overflow + ice_excess) / max(dt, 1e-9) * RHO_WATER   # kg m^-2 s^-1
    runoff = np.where(land_mask, runoff, 0.0)
    w = np.where(land_mask, w, 0.0)
    snow = np.where(land_mask, snow, 0.0)
    return HydrologyState(soil_moisture=w, snow_depth=snow), runoff
