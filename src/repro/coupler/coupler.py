"""The FOAM coupler: surface fluxes on the overlap grid + land/river/ice.

Paper: *"The separately developed atmosphere and ocean models are integrated
into a functioning whole by a set of routines called the coupler.  The
coupler is essentially a model of the land surface and atmosphere-ocean
interface.  The coupler also handles the calculation of fluxes between the
ocean and atmosphere, organizes the exchange of information between them,
and calls a new parallel river model for routing the runoff found by the
hydrology model to the oceans."*

Responsibilities implemented here:

* build the overlap grid between the two component grids (:mod:`overlap`);
* classify every overlap cell as open ocean / sea ice / land;
* compute turbulent fluxes once per overlap cell — CCM3 wind-dependent
  roughness over water, CCM2 bulk formulas with soil-type roughness over
  land — and area-average them back to both grids;
* run the land four-layer soil model, the 15 cm bucket hydrology, the river
  routing, and the thermodynamic sea ice;
* close the hydrological cycle: precipitation - evaporation + river
  discharge + ice brine/melt water all return to the ocean as a freshwater
  flux.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atmosphere.physics.driver import SurfaceState
from repro.atmosphere.physics.surface_flux import (
    SurfaceFluxParams,
    bulk_fluxes,
    ocean_fluxes,
)
from repro.backend import DTypePolicy, get_workspace, policy_from_name
from repro.coupler.hydrology import HydrologyState, step_hydrology, wetness_factor
from repro.coupler.land import LandModel, LandState, soil_types_from_latitude
from repro.coupler.overlap import OverlapGrid
from repro.coupler.river import RiverModel
from repro.coupler.seaice import (
    SEAICE_ALBEDO,
    SEAICE_ROUGHNESS,
    SeaIceModel,
    SeaIceState,
)
from repro.perf.profiler import profiled
from repro.util.constants import (
    EARTH_RADIUS,
    STEFAN_BOLTZMANN,
)

OCEAN_ALBEDO = 0.07


@dataclass
class CouplerState:
    """All coupler-owned prognostic state (restart-complete)."""

    land: LandState
    hydrology: HydrologyState
    ice: SeaIceState
    river_volume: np.ndarray | None = None   # m^3 stored water per cell
    time: float = 0.0


@dataclass
class CouplerDiagnostics:
    """Per-coupling-step diagnostics (global water/energy bookkeeping)."""

    precip_total: float = 0.0          # kg/s, global
    evap_total: float = 0.0
    runoff_total: float = 0.0
    river_discharge_total: float = 0.0
    ocean_heat_flux_mean: float = 0.0  # W/m^2 over the ocean


class FluxCoupler:
    """Couples one atmosphere grid to one ocean grid via the overlap grid."""

    def __init__(self, atm_lats: np.ndarray, atm_nlon: int,
                 ocn_lats: np.ndarray, ocn_nlon: int,
                 ocn_land_mask: np.ndarray,
                 flux_params: SurfaceFluxParams = SurfaceFluxParams(),
                 rng_seed: int = 7,
                 dtype: str | DTypePolicy | None = None):
        self.overlap = OverlapGrid(atm_lats, atm_nlon, ocn_lats, ocn_nlon)
        self.atm_nlat = len(atm_lats)
        self.atm_nlon = atm_nlon
        self.flux_params = flux_params
        self.policy = policy_from_name(dtype)

        # Ocean-fraction of every atmosphere cell, from the exact overlap
        # areas: the honest way to make a land mask for the coarse grid.
        water_ocn = np.where(ocn_land_mask, 0.0, 1.0)
        water_on_overlap = self.overlap.from_ocn(water_ocn, fill=0.0)
        self.atm_ocean_frac = self.overlap.to_atm(water_on_overlap)
        self.atm_land_mask = self.atm_ocean_frac < 0.5
        self.ocn_land_mask = ocn_land_mask
        self._water_overlap = water_on_overlap > 0.5   # open-water overlap cells

        # Land-side components live on the atmosphere grid.
        lat_deg = np.degrees(atm_lats)
        soil = soil_types_from_latitude(lat_deg, atm_nlon, seed=rng_seed)
        self.land_model = LandModel(soil)
        dlat = np.gradient(atm_lats)
        dlon = 2 * np.pi / atm_nlon
        areas = (EARTH_RADIUS**2 * np.cos(atm_lats) * dlat * dlon)[:, None] \
            * np.ones((1, atm_nlon))
        self.atm_cell_areas = np.abs(areas).astype(self.policy.float_dtype,
                                                   copy=False)
        spacing = EARTH_RADIUS * np.abs(dlat)
        self.river = RiverModel(self.atm_land_mask, self.atm_cell_areas,
                                spacing, rng_seed=rng_seed)
        self.ice_model = SeaIceModel()

    # ------------------------------------------------------------------
    def initial_state(self) -> CouplerState:
        ny_o, nx_o = self.ocn_land_mask.shape
        return CouplerState(
            land=LandState.isothermal(self.atm_nlat, self.atm_nlon),
            hydrology=HydrologyState.initialized(self.atm_nlat, self.atm_nlon),
            ice=SeaIceState.ice_free(ny_o, nx_o),
            river_volume=np.zeros((self.atm_nlat, self.atm_nlon)))

    # ------------------------------------------------------------------
    @profiled("merge_surface")
    def surface_state_for_atm(self, state: CouplerState,
                              sst_celsius: np.ndarray) -> SurfaceState:
        """Blend ocean/ice/land surface properties onto the atmosphere grid.

        ``sst_celsius`` on the ocean grid (NaN over land is tolerated).
        """
        ov = self.overlap
        sst_k = np.nan_to_num(sst_celsius, nan=0.0) + 273.15
        ice_mask_o = state.ice.mask
        # Ocean-grid skin: ice skin where icy, SST elsewhere.
        skin_o = np.where(ice_mask_o, state.ice.surface_temp, sst_k)
        skin_ov = ov.from_ocn(skin_o, fill=0.0)
        land_skin = self.land_model.skin_temperature(state.land)
        skin_land_ov = ov.from_atm(land_skin)
        water = self._water_overlap
        t_sfc_ov = np.where(water, skin_ov, skin_land_ov)
        t_sfc = ov.to_atm(t_sfc_ov)

        # Albedo: ocean/ice over water cells, soil+snow over land.
        alb_land = self.land_model.albedo(state.hydrology.snow_depth)
        alb_ocean_o = np.where(ice_mask_o, SEAICE_ALBEDO, OCEAN_ALBEDO)
        alb_ov = np.where(water, ov.from_ocn(alb_ocean_o, fill=OCEAN_ALBEDO),
                          ov.from_atm(alb_land))
        albedo = ov.to_atm(alb_ov)

        wet_land = wetness_factor(state.hydrology,
                                  self.land_model.soil_type == 4)
        wet_ov = np.where(water, 1.0, ov.from_atm(wet_land))
        wetness = ov.to_atm(wet_ov)

        z0_ocean_o = np.where(ice_mask_o, SEAICE_ROUGHNESS, 1e-4)
        z0_ov = np.where(water, ov.from_ocn(z0_ocean_o, fill=1e-4),
                         ov.from_atm(self.land_model.roughness))
        z0 = ov.to_atm(z0_ov)

        ocean_mask = ~self.atm_land_mask
        if t_sfc.ndim > 2:
            ocean_mask = np.broadcast_to(ocean_mask, t_sfc.shape)
        return SurfaceState(t_sfc=t_sfc, albedo=albedo, wetness=wetness,
                            z0=z0, ocean_mask=ocean_mask)

    # ------------------------------------------------------------------
    @profiled("fluxes")
    def turbulent_fluxes(self, state: CouplerState, *, t_air: np.ndarray,
                         q_air: np.ndarray, u_air: np.ndarray,
                         v_air: np.ndarray, ps: np.ndarray,
                         sst_celsius: np.ndarray) -> dict:
        """Compute surface turbulent fluxes once per overlap cell (Fig. 1).

        Atmosphere inputs are lowest-model-level fields on the atm grid; SST
        on the ocean grid.  Returns a dict with the fluxes already averaged
        onto both grids:

        * ``atm``: dict usable as ``external_fluxes`` by the physics driver;
        * ``ocn_taux/ocn_tauy``: stress on the ocean grid (ice-divided);
        * ``ocn_turb_heat_loss``: SH + LH leaving the water surface (W/m^2);
        * ``ocn_evap``: evaporation from the water surface (kg m^-2 s^-1);
        * plus the raw overlap-cell fields for conservation checks.
        """
        ov = self.overlap
        water = self._water_overlap
        ice_ov = ov.from_ocn(state.ice.mask.astype(float), fill=0.0) > 0.5
        open_water = water & ~ice_ov

        ta = ov.from_atm(t_air)
        qa = ov.from_atm(q_air)
        ua = ov.from_atm(u_air)
        va = ov.from_atm(v_air)
        pa = ov.from_atm(ps)

        sst_k = np.nan_to_num(sst_celsius, nan=-1.92) + 273.15
        sst_ov = ov.from_ocn(sst_k, fill=271.23)
        ice_skin_ov = ov.from_ocn(state.ice.surface_temp, fill=271.23)
        land_skin_ov = ov.from_atm(self.land_model.skin_temperature(state.land))
        wet_land_ov = ov.from_atm(wetness_factor(
            state.hydrology, self.land_model.soil_type == 4))
        z0_land_ov = ov.from_atm(self.land_model.roughness)

        # CCM3 formulas over open water; CCM2 bulk over land and ice.
        f_ocean = ocean_fluxes(ta, qa, ua, va, pa, sst_ov, self.flux_params)
        t_solid = np.where(ice_ov, ice_skin_ov, land_skin_ov)
        z0_solid = np.where(ice_ov, SEAICE_ROUGHNESS, z0_land_ov)
        wet_solid = np.where(ice_ov, 1.0, wet_land_ov)
        f_solid = bulk_fluxes(ta, qa, ua, va, pa, t_solid, z0_solid,
                              wet_solid, self.flux_params)

        fluxes_ov = {k: np.where(open_water, f_ocean[k], f_solid[k])
                     for k in f_ocean}

        atm_fluxes = {k: ov.to_atm(v) for k, v in fluxes_ov.items()}

        # Ocean receives stress (ice-shielded), turbulent heat loss and evap
        # only from its water cells.
        taux_ov, tauy_ov = SeaIceModel.stress_to_ocean(
            fluxes_ov["taux"], fluxes_ov["tauy"], ice_ov)
        zero = get_workspace().zeros_like("coupler.zero_ov", taux_ov)
        ocn_taux = ov.to_ocn(np.where(water, taux_ov, zero))
        ocn_tauy = ov.to_ocn(np.where(water, tauy_ov, zero))
        turb_loss_ov = np.where(water, fluxes_ov["shf"] + fluxes_ov["lhf"], zero)
        ocn_turb = ov.to_ocn(turb_loss_ov)
        ocn_evap = ov.to_ocn(np.where(water, fluxes_ov["evap"], zero))

        return {
            "atm": atm_fluxes,
            "overlap": fluxes_ov,
            "ocn_taux": ocn_taux,
            "ocn_tauy": ocn_tauy,
            "ocn_turb_heat_loss": ocn_turb,
            "ocn_evap": ocn_evap,
        }

    # ------------------------------------------------------------------
    def surface_radiation_to_ocean(self, *, sw_sfc: np.ndarray,
                                   lw_down: np.ndarray,
                                   t_sfc: np.ndarray) -> np.ndarray:
        """Net radiative flux INTO the surface, mapped to the ocean grid.

        ``sw_sfc`` (absorbed solar), ``lw_down`` and ``t_sfc`` live on the
        atmosphere grid (radiation is an atmosphere column computation).
        """
        ov = self.overlap
        net_atm = sw_sfc + lw_down - STEFAN_BOLTZMANN * t_sfc**4
        return ov.to_ocn(np.where(self._water_overlap,
                                  ov.from_atm(net_atm), 0.0))

    # ------------------------------------------------------------------
    def step_land_and_rivers(self, state: CouplerState, *,
                             precip: np.ndarray, evap: np.ndarray,
                             t_low1: np.ndarray, t_low2: np.ndarray,
                             net_land_flux: np.ndarray, dt: float
                             ) -> tuple[CouplerState, np.ndarray,
                                        CouplerDiagnostics]:
        """Advance land temperature, hydrology, and river routing.

        All inputs on the atmosphere grid; ``net_land_flux`` is the energy
        residual into the soil (W/m^2).  Returns the new state, the river
        discharge onto atmosphere-grid ocean cells (kg m^-2 s^-1), and
        bookkeeping diagnostics.
        """
        land = self.atm_land_mask
        ground = self.land_model.skin_temperature(state.land)
        new_hydro, runoff = step_hydrology(
            state.hydrology, precip=np.where(land, precip, 0.0),
            evaporation=np.where(land, evap, 0.0),
            ground_temp=ground, t_low1=t_low1, t_low2=t_low2,
            melt_energy=np.where(land, np.maximum(net_land_flux, 0.0), 0.0),
            dt=dt, land_mask=land)
        # River storage is prognostic state: restore it so restarts are exact.
        if runoff.ndim == 2:
            if state.river_volume is not None:
                self.river.volume = state.river_volume.copy()
            discharge = self.river.step(runoff, dt)
            new_volume = self.river.volume.copy()
        else:
            # River routing is a stateful scatter-add; run each ensemble
            # member through the serial kernel and stack the results.
            vol = state.river_volume
            discharge = np.empty_like(runoff)
            new_volume = np.empty_like(runoff)
            for e in range(runoff.shape[0]):
                self.river.volume = (vol[e].copy() if vol is not None
                                     else np.zeros_like(runoff[e]))
                discharge[e] = self.river.step(runoff[e], dt)
                new_volume[e] = self.river.volume
        new_land = self.land_model.step(
            state.land, np.where(land, net_land_flux, 0.0), dt)

        a = self.atm_cell_areas
        diags = CouplerDiagnostics(
            precip_total=float(np.sum(precip * a)),
            evap_total=float(np.sum(evap * a)),
            runoff_total=float(np.sum(runoff * a)),
            river_discharge_total=float(np.sum(discharge * a)))
        return (CouplerState(land=new_land, hydrology=new_hydro,
                             ice=state.ice,
                             river_volume=new_volume,
                             time=state.time + dt),
                discharge, diags)

    # ------------------------------------------------------------------
    def step_sea_ice(self, state: CouplerState, *, sst_celsius: np.ndarray,
                     ocean_heat_loss: np.ndarray, t_air_on_ocn: np.ndarray,
                     dt: float) -> tuple[CouplerState, np.ndarray]:
        """Advance sea ice on the ocean grid; returns freshwater flux."""
        new_ice, fw = self.ice_model.step(
            state.ice, sst=np.nan_to_num(sst_celsius, nan=0.0) + 273.15,
            ocean_heat_loss=ocean_heat_loss, air_temp=t_air_on_ocn,
            ocean_mask=~self.ocn_land_mask, dt=dt)
        return CouplerState(land=state.land, hydrology=state.hydrology,
                            ice=new_ice, river_volume=state.river_volume,
                            time=state.time), fw

    # ------------------------------------------------------------------
    def discharge_to_ocean_grid(self, discharge_atm: np.ndarray) -> np.ndarray:
        """Map river-mouth discharge (atm grid) onto the ocean grid, conserving mass."""
        ov = self.overlap
        ov_field = ov.from_atm(discharge_atm)
        ov_field = np.where(self._water_overlap, ov_field, 0.0)
        mapped = ov.to_ocn(ov_field)
        # Rescale to conserve the global freshwater integral exactly
        # (coastline mismatch between grids can clip some discharge cells).
        if discharge_atm.ndim == 2:
            total_in = float(np.sum(discharge_atm * self.atm_cell_areas))
            total_out = ov.integrate_ocn(mapped)
            if total_out > 0 and total_in > 0:
                mapped = mapped * (total_in / total_out)
        else:
            # The conservation ratio is a per-member scalar; rescale each
            # member exactly as the serial path does.
            for e in range(discharge_atm.shape[0]):
                total_in = float(np.sum(discharge_atm[e] * self.atm_cell_areas))
                total_out = ov.integrate_ocn(mapped[e])
                if total_out > 0 and total_in > 0:
                    mapped[e] = mapped[e] * (total_in / total_out)
        return mapped
