"""Land surface: the four-layer soil diffusion model of CCM2/FOAM.

Paper: *"The land surface in FOAM (and in CCM2) is represented by a
four-layer diffusion model with heat capacities, thicknesses and thermal
conductivities specified for each layer.  Soil types vary in the horizontal
direction, with 5 distinct types derived from the vegetation data of
[Matthews 1983].  Roughness lengths and albedos for two different radiation
bands are also specified."*

We carry the same structure: five soil types, each with per-layer heat
capacity/conductivity, a roughness length, and visible/near-IR albedos; the
soil column is diffused implicitly and the skin temperature responds to the
surface energy balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atmosphere.physics.boundary_layer import solve_tridiagonal

N_SOIL_LAYERS = 4
N_SOIL_TYPES = 5

# Layer thicknesses (m), surface downward — geometric, CCM2-like.
SOIL_LAYER_THICKNESS = np.array([0.05, 0.20, 0.70, 2.50])

# Per-type properties: (volumetric heat capacity J m^-3 K^-1,
#                       conductivity W m^-1 K^-1,
#                       roughness m, albedo_visible, albedo_nir)
SOIL_TYPES = {
    0: dict(name="desert",    heat_capacity=1.2e6, conductivity=0.30,
            roughness=0.01, albedo_vis=0.35, albedo_nir=0.45),
    1: dict(name="grassland", heat_capacity=2.0e6, conductivity=0.80,
            roughness=0.05, albedo_vis=0.15, albedo_nir=0.30),
    2: dict(name="forest",    heat_capacity=2.5e6, conductivity=1.00,
            roughness=0.50, albedo_vis=0.08, albedo_nir=0.22),
    3: dict(name="tundra",    heat_capacity=2.2e6, conductivity=0.60,
            roughness=0.03, albedo_vis=0.18, albedo_nir=0.30),
    4: dict(name="land_ice",  heat_capacity=1.9e6, conductivity=2.20,
            roughness=0.001, albedo_vis=0.80, albedo_nir=0.65),
}

SNOW_ALBEDO_VIS = 0.85
SNOW_ALBEDO_NIR = 0.65


def soil_types_from_latitude(lat_degrees: np.ndarray, nlon: int,
                             seed: int = 7) -> np.ndarray:
    """Idealized Matthews-style soil-type map: zonal bands + noise.

    Land ice at very high latitudes, tundra next, then forest/grass belts
    with a subtropical desert band — the zonal-mean structure of the real
    vegetation data.
    """
    rng = np.random.default_rng(seed)
    lat = np.abs(lat_degrees)[:, None] * np.ones((1, nlon))
    t = np.full(lat.shape, 1, dtype=int)                 # grassland default
    t[(lat >= 15) & (lat < 35)] = 0                       # desert belt
    t[(lat >= 35) & (lat < 55)] = 2                       # forest belt
    t[(lat >= 55) & (lat < 68)] = 3                       # tundra
    t[lat >= 68] = 4                                      # land ice
    t[(lat < 15)] = 2                                     # tropical forest
    # Sprinkle heterogeneity so fields are not purely zonal.
    flip = rng.random(lat.shape) < 0.15
    t = np.where(flip & (t == 2), 1, t)
    return t


@dataclass
class LandState:
    """Soil temperature (4 layers) on the atmosphere grid."""

    soil_temp: np.ndarray    # (4, nlat, nlon), K

    @classmethod
    def isothermal(cls, nlat: int, nlon: int, t0: float = 283.0) -> "LandState":
        return cls(np.full((N_SOIL_LAYERS, nlat, nlon), t0))


class LandModel:
    """Four-layer soil thermodynamics with type-dependent properties."""

    def __init__(self, soil_type: np.ndarray):
        self.soil_type = np.asarray(soil_type, dtype=int)
        if self.soil_type.min() < 0 or self.soil_type.max() >= N_SOIL_TYPES:
            raise ValueError("soil types must be 0..4")
        shape = self.soil_type.shape
        self.heat_capacity = np.empty(shape)
        self.conductivity = np.empty(shape)
        self.roughness = np.empty(shape)
        self.albedo_vis = np.empty(shape)
        self.albedo_nir = np.empty(shape)
        for k, props in SOIL_TYPES.items():
            sel = self.soil_type == k
            self.heat_capacity[sel] = props["heat_capacity"]
            self.conductivity[sel] = props["conductivity"]
            self.roughness[sel] = props["roughness"]
            self.albedo_vis[sel] = props["albedo_vis"]
            self.albedo_nir[sel] = props["albedo_nir"]

    def albedo(self, snow_depth: np.ndarray | None = None) -> np.ndarray:
        """Broadband albedo (mean of the two bands); snow masks the soil.

        Snow modifies the surface properties (paper, hydrology section):
        a snow cover of > ~2 cm liquid equivalent fully imposes snow albedo.
        """
        base = 0.5 * (self.albedo_vis + self.albedo_nir)
        if snow_depth is None:
            return base
        snow_alb = 0.5 * (SNOW_ALBEDO_VIS + SNOW_ALBEDO_NIR)
        frac = np.clip(snow_depth / 0.02, 0.0, 1.0)
        return (1.0 - frac) * base + frac * snow_alb

    def step(self, state: LandState, net_surface_flux: np.ndarray,
             dt: float) -> LandState:
        """Implicitly diffuse the soil column; net flux enters the top layer.

        ``net_surface_flux`` (W/m^2, positive downward into the soil) is the
        residual of the surface energy balance computed by the coupler.
        """
        ndim = state.soil_temp.ndim                      # 3, or 4 with members
        dz = SOIL_LAYER_THICKNESS.reshape((-1,) + (1,) * (ndim - 1))
        cap = self.heat_capacity[None] * dz              # J m^-2 K^-1 per layer
        cond = self.conductivity[None]
        # Interface conductance between layers k and k+1.
        dz_between = 0.5 * (SOIL_LAYER_THICKNESS[:-1] + SOIL_LAYER_THICKNESS[1:])
        g_if = cond[0] / dz_between.reshape((-1,) + (1,) * (ndim - 1))

        a = np.zeros_like(state.soil_temp)
        c = np.zeros_like(state.soil_temp)
        a[1:] = -dt * g_if / cap[1:]
        c[:-1] = -dt * g_if / cap[:-1]
        b = 1.0 - a - c
        rhs = state.soil_temp.copy()
        rhs[0] = rhs[0] + dt * net_surface_flux / cap[0]
        new_temp = solve_tridiagonal(a, b, c, rhs)
        return LandState(soil_temp=new_temp)

    def skin_temperature(self, state: LandState) -> np.ndarray:
        return state.soil_temp[0]
