"""Parallel river routing model (Miller et al. 1994, as used in FOAM).

Paper: *"The flow F in cubic meters per second out of a cell is
F = V u / d, where V is the total river volume equal to the local runoff
plus the sum of the flow from up to seven of the eight neighboring cells,
u is an effective flow velocity which is taken as a constant 0.35 meters per
second, and d is the downstream distance ...  V for an ocean point near the
coast is then calculated as the sum of the outflow from neighboring land
points and converted back to a flux by dividing by the area of that ocean
point."*

Flow directions: the paper set many by hand so basins match observation; we
derive them automatically by steepest descent on a distance-to-ocean
potential (every land cell drains toward its nearest coast), with the same
override hook (``set_direction``) the hand-tuning implies.  This closes the
hydrological cycle: continental runoff returns to the ocean at point
sources (river mouths) after a finite delay V/F = d/u.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import RIVER_FLOW_VELOCITY

# The 8 D8 neighbors as (dj, di); i wraps periodically, j does not.
NEIGHBORS = [(-1, -1), (-1, 0), (-1, 1),
             (0, -1),           (0, 1),
             (1, -1),  (1, 0),  (1, 1)]


def distance_to_ocean(land_mask: np.ndarray) -> np.ndarray:
    """Integer BFS distance (in cells) from each land cell to the nearest ocean.

    Longitude wraps; latitude does not.  Ocean cells have distance 0.
    Land cells with no path to the ocean (shouldn't exist on a real mask)
    get a large finite value.
    """
    ny, nx = land_mask.shape
    dist = np.where(land_mask, np.iinfo(np.int32).max, 0).astype(np.int64)
    frontier = [(j, i) for j in range(ny) for i in range(nx) if not land_mask[j, i]]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for j, i in frontier:
            for dj, di in NEIGHBORS:
                jj, ii = j + dj, (i + di) % nx
                if 0 <= jj < ny and land_mask[jj, ii] and dist[jj, ii] > d:
                    dist[jj, ii] = d
                    nxt.append((jj, ii))
        frontier = nxt
    return dist


def derive_flow_directions(land_mask: np.ndarray,
                           rng_seed: int = 0) -> np.ndarray:
    """D8 flow direction index (0-7 into NEIGHBORS) per land cell, -1 elsewhere.

    Steepest descent on the distance-to-ocean field, ties broken at random
    (the stand-in for the paper's hand tuning — see ``set_direction``).
    """
    ny, nx = land_mask.shape
    dist = distance_to_ocean(land_mask)
    rng = np.random.default_rng(rng_seed)
    direction = np.full((ny, nx), -1, dtype=int)
    for j in range(ny):
        for i in range(nx):
            if not land_mask[j, i]:
                continue
            best = []
            best_d = dist[j, i]
            for n, (dj, di) in enumerate(NEIGHBORS):
                jj, ii = j + dj, (i + di) % nx
                if not 0 <= jj < ny:
                    continue
                if dist[jj, ii] < best_d:
                    best_d = dist[jj, ii]
                    best = [n]
                elif dist[jj, ii] == best_d and best and dist[jj, ii] < dist[j, i]:
                    best.append(n)
            if best:
                direction[j, i] = best[0] if len(best) == 1 else int(rng.choice(best))
            else:
                direction[j, i] = -1    # interior pit: water pools (rare)
    return direction


class RiverModel:
    """Explicit river routing with storage, on the atmosphere (land) grid."""

    def __init__(self, land_mask: np.ndarray, cell_areas: np.ndarray,
                 cell_spacing: np.ndarray,
                 flow_velocity: float = RIVER_FLOW_VELOCITY,
                 rng_seed: int = 0):
        """``cell_spacing`` (ny,) is the downstream distance d per row (m)."""
        self.land = np.asarray(land_mask, dtype=bool)
        self.areas = np.asarray(cell_areas, dtype=float)
        self.spacing = np.asarray(cell_spacing, dtype=float)
        self.u = float(flow_velocity)
        self.direction = derive_flow_directions(self.land, rng_seed)
        self.volume = np.zeros_like(self.areas)          # m^3 stored per cell
        self._build_routing()

    def set_direction(self, j: int, i: int, direction: int) -> None:
        """Hand-tune one cell's flow direction (the paper's practice)."""
        if not self.land[j, i]:
            raise ValueError(f"({j},{i}) is not a land cell")
        if not 0 <= direction < 8:
            raise ValueError("direction must be 0..7")
        self.direction[j, i] = direction
        self._build_routing()

    def _build_routing(self) -> None:
        ny, nx = self.land.shape
        self.dest_j = np.full((ny, nx), -1, dtype=int)
        self.dest_i = np.full((ny, nx), -1, dtype=int)
        for j in range(ny):
            for i in range(nx):
                n = self.direction[j, i]
                if n < 0:
                    continue
                dj, di = NEIGHBORS[n]
                jj, ii = j + dj, (i + di) % nx
                if 0 <= jj < ny:
                    self.dest_j[j, i] = jj
                    self.dest_i[j, i] = ii

    # ------------------------------------------------------------------
    def step(self, runoff: np.ndarray, dt: float) -> np.ndarray:
        """Route ``runoff`` (kg m^-2 s^-1 on land) for ``dt`` seconds.

        Returns the freshwater flux delivered to ocean cells
        (kg m^-2 s^-1 on this grid; zero on land).  Total water is conserved
        exactly: d(storage)/dt = inflow - outflow, outflow at the coast goes
        to the mouth cell.
        """
        ny, nx = self.land.shape
        # Add local runoff to storage (convert kg/m^2/s -> m^3).
        self.volume += np.where(self.land, runoff, 0.0) * self.areas * dt / 1000.0

        # F = V u / d, limited so a cell cannot export more than it holds.
        d_row = self.spacing[:, None]
        outflow = np.where(self.land & (self.direction >= 0),
                           self.volume * self.u / d_row, 0.0)   # m^3/s
        outflow = np.minimum(outflow, self.volume / max(dt, 1e-9))

        delivered = np.zeros((ny, nx))
        moved = outflow * dt
        self.volume -= moved
        valid = self.dest_j >= 0
        np.add.at(delivered, (self.dest_j[valid], self.dest_i[valid]),
                  moved[valid])
        # Water arriving on land joins that cell's storage; water arriving
        # in the ocean is the river discharge at the mouth.
        self.volume += np.where(self.land, delivered, 0.0)
        mouth_m3 = np.where(~self.land, delivered, 0.0)
        return mouth_m3 * 1000.0 / (self.areas * dt)     # kg m^-2 s^-1

    def total_storage(self) -> float:
        """Total river water in storage (m^3)."""
        return float(self.volume.sum())
