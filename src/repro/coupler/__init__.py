"""The FOAM coupler: overlap-grid fluxes, land surface, hydrology, rivers, ice.

Paper section "The FOAM Coupler": an independent piece of code linking the
pre-existing atmosphere and ocean models, modeling the land surface and the
air-sea interface, and closing the hydrological cycle through a parallel
river model.
"""

from repro.coupler.coupler import (
    OCEAN_ALBEDO,
    CouplerDiagnostics,
    CouplerState,
    FluxCoupler,
)
from repro.coupler.hydrology import (
    HydrologyState,
    snow_melt_rate,
    snowfall_partition,
    step_hydrology,
    wetness_factor,
)
from repro.coupler.land import (
    N_SOIL_LAYERS,
    N_SOIL_TYPES,
    SOIL_TYPES,
    LandModel,
    LandState,
    soil_types_from_latitude,
)
from repro.coupler.overlap import OverlapGrid, cell_edges_from_centers, lon_edges_uniform
from repro.coupler.river import (
    NEIGHBORS,
    RiverModel,
    derive_flow_directions,
    distance_to_ocean,
)
from repro.coupler.seaice import SeaIceModel, SeaIceState

__all__ = [
    "OverlapGrid", "cell_edges_from_centers", "lon_edges_uniform",
    "LandModel", "LandState", "N_SOIL_LAYERS", "N_SOIL_TYPES", "SOIL_TYPES",
    "soil_types_from_latitude",
    "HydrologyState", "snow_melt_rate", "snowfall_partition", "step_hydrology",
    "wetness_factor",
    "NEIGHBORS", "RiverModel", "derive_flow_directions", "distance_to_ocean",
    "SeaIceModel", "SeaIceState",
    "CouplerDiagnostics", "CouplerState", "FluxCoupler", "OCEAN_ALBEDO",
]
