"""Thermodynamic sea ice, treated "as another soil type" (the paper's scheme).

Paper: *"The temperature of the sea ice is determined by treating it as
another soil type.  The sea surface may continue to lose heat by conduction
with the lowest ice layer so a clamp on temperature is imposed by the ocean
model at -1.92 degrees Celsius.  Sea ice roughness and albedos are
prescribed.  For the hydrologic cycle, the formation of sea ice is treated
as a flux of 2 m of water out of the ocean.  The stress between the ice and
the atmosphere is arbitrarily divided by 15 before passing to the ocean
model."*

The paper also flags this as the model's weak spot ("the crude
representation of sea ice that we currently use" explains the Antarctic SST
errors of Figure 3) — updating it was "a high priority", so the class keeps
the interface minimal and replaceable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.constants import (
    LATENT_HEAT_FUS,
    RHO_WATER,
    SEAICE_FRESHWATER_DEPTH,
    SEAICE_STRESS_DIVISOR,
    T_FREEZE_SEA,
)

SEAICE_ALBEDO = 0.65
SEAICE_ROUGHNESS = 5.0e-4
SEAICE_CONDUCTIVITY = 2.2      # W m^-1 K^-1
SEAICE_MIN_THICKNESS = 0.1     # m, below which a cell is declared open water


@dataclass
class SeaIceState:
    """Ice presence, thickness (m), and surface (skin) temperature (K)."""

    thickness: np.ndarray
    surface_temp: np.ndarray

    @classmethod
    def ice_free(cls, nlat: int, nlon: int) -> "SeaIceState":
        return cls(thickness=np.zeros((nlat, nlon)),
                   surface_temp=np.full((nlat, nlon), T_FREEZE_SEA))

    @classmethod
    def uniform(cls, ocean_mask: np.ndarray,
                thickness: float) -> "SeaIceState":
        """Uniform ice of ``thickness`` (m) over every ocean cell.

        The snowball initial condition: the skin starts at the freezing
        point and the thermodynamic scheme takes over from there.  A
        thickness below ``SEAICE_MIN_THICKNESS`` leaves open water.
        """
        if thickness < 0:
            raise ValueError(f"ice thickness must be >= 0, got {thickness}")
        h = np.where(ocean_mask, float(thickness), 0.0)
        return cls(thickness=h,
                   surface_temp=np.full(ocean_mask.shape, T_FREEZE_SEA))

    @property
    def mask(self) -> np.ndarray:
        return self.thickness >= SEAICE_MIN_THICKNESS


class SeaIceModel:
    """Minimal thermodynamic ice: freeze at the clamp, melt when warm."""

    def __init__(self, freezing_point: float = T_FREEZE_SEA):
        self.t_freeze = freezing_point

    def step(self, state: SeaIceState, *, sst: np.ndarray,
             ocean_heat_loss: np.ndarray, air_temp: np.ndarray,
             ocean_mask: np.ndarray, dt: float
             ) -> tuple[SeaIceState, np.ndarray]:
        """Advance ice; returns (new state, freshwater flux to ocean).

        ``sst`` in Kelvin; ``ocean_heat_loss`` (W/m^2, positive = ocean losing
        heat to the atmosphere).  Where the ocean sits at the freezing clamp
        and keeps losing heat, the loss freezes ice instead of cooling water.
        Freshwater flux (kg m^-2 s^-1): negative on formation — the paper's
        "2 m of water out of the ocean" — positive on melt.
        """
        h = state.thickness.copy()
        ts = state.surface_temp.copy()
        fw = np.zeros_like(h)

        at_clamp = ocean_mask & (sst <= self.t_freeze + 0.02)
        freezing = at_clamp & (ocean_heat_loss > 0.0)
        growth = np.where(freezing,
                          ocean_heat_loss / (RHO_WATER * LATENT_HEAT_FUS), 0.0)
        newly_frozen = freezing & (h < SEAICE_MIN_THICKNESS) \
            & (h + dt * growth >= SEAICE_MIN_THICKNESS)
        h = h + dt * growth
        # The paper's bookkeeping: formation pulls 2 m of water from the ocean.
        fw -= np.where(newly_frozen,
                       SEAICE_FRESHWATER_DEPTH * RHO_WATER / dt, 0.0)

        # Melt: warm air over ice erodes it (bulk rate ~ conductive flux).
        warm = ocean_mask & (h > 0) & (air_temp > self.t_freeze + 0.5)
        melt_flux = SEAICE_CONDUCTIVITY * np.maximum(
            air_temp - self.t_freeze, 0.0) / np.maximum(h, SEAICE_MIN_THICKNESS)
        melt = np.where(warm, melt_flux / (RHO_WATER * LATENT_HEAT_FUS), 0.0)
        melt = np.minimum(melt, h / max(dt, 1e-9))
        melted_out = warm & (h >= SEAICE_MIN_THICKNESS) \
            & (h - dt * melt < SEAICE_MIN_THICKNESS)
        h = np.maximum(h - dt * melt, 0.0)
        fw += np.where(melted_out, SEAICE_FRESHWATER_DEPTH * RHO_WATER / dt, 0.0)

        # Skin temperature relaxes toward air temperature but never above
        # freezing while ice remains (melting surface sits at 0 C).
        tau = 6 * 3600.0
        ts = ts + (np.minimum(air_temp, 273.15) - ts) * min(dt / tau, 1.0)
        ts = np.where(h >= SEAICE_MIN_THICKNESS, ts, self.t_freeze)
        h = np.where(ocean_mask, h, 0.0)
        fw = np.where(ocean_mask, fw, 0.0)
        return SeaIceState(thickness=h, surface_temp=ts), fw

    @staticmethod
    def stress_to_ocean(taux: np.ndarray, tauy: np.ndarray,
                        ice_mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Under ice, the atmosphere stress is divided by 15 (paper verbatim)."""
        factor = np.where(ice_mask, 1.0 / SEAICE_STRESS_DIVISOR, 1.0)
        return taux * factor, tauy * factor
