"""FOAM coupled-model configuration.

The paper's production configuration (``paper_config``): R15 spectral
atmosphere on a 48 x 40 Gaussian grid with 18 levels and a 30-minute step;
128 x 128 x 16 Mercator ocean with a 6-hour step (called 4x per simulated
day); radiation recomputed twice per day.  ``test_config`` scales everything
down for CI-speed runs; ``small_config`` sits in between for the example
scripts.  All knobs are independent, so any resolution in between works.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.backend import DTypePolicy, get_backend, policy_from_name
from repro.ocean.barotropic import BarotropicParams
from repro.ocean.mixing import PPMixingParams
from repro.ocean.model import OceanParams
from repro.util.constants import SECONDS_PER_DAY, SOLAR_CONSTANT

TOPOGRAPHY_KINDS = ("world", "aquaplanet", "paleo")
OCEAN_MODES = ("full", "slab")
OCEAN_INIT_KINDS = ("rest_stratified", "cold_uniform")


@dataclass
class FoamConfig:
    """Every tunable of the coupled system in one place."""

    # Atmosphere (PCCM2-style spectral).
    atm_mmax: int = 15              # rhomboidal truncation (R15)
    atm_nlat: int = 40
    atm_nlon: int = 48
    atm_nlev: int = 18
    atm_dt: float = 1800.0          # 30-minute step (paper)
    robert_filter: float = 0.04

    # Ocean.
    ocn_nx: int = 128
    ocn_ny: int = 128
    ocn_nlev: int = 16
    ocean_params: OceanParams = field(default_factory=OceanParams)

    # Coupling cadence.
    ocean_coupling_interval: float = 6.0 * 3600.0   # ocean called 4x/day
    radiation_interval: float = SECONDS_PER_DAY / 2  # radiation 2x/day

    # Numerics / reproducibility.
    seed: int = 0
    # Array-backend knobs: None defers to FOAM_DTYPE / FOAM_BACKEND (and
    # their float64 / numpy defaults).
    dtype: str | None = None
    backend: str | None = None

    # --- scenario (world-builder) knobs --------------------------------
    # The defaults reproduce the paper's Earth exactly; each knob feeds one
    # component constructor, so the scenario registry (repro.scenarios) can
    # describe a whole world as a FoamConfig delta and every driver —
    # serial, batched ensemble, concurrent rank pools — inherits it.
    solar_constant: float = SOLAR_CONSTANT   # W m^-2 at the top of atmosphere
    co2_ppmv: float = 355.0                  # longwave CO2 band concentration
    rotation_factor: float = 1.0             # planetary rotation / Earth's
    # Fixed-sun (tidally locked) insolation: the subsolar point stays pinned
    # at this longitude (degrees) with zero declination.  None = diurnal and
    # seasonal cycles as usual.
    subsolar_lon_deg: float | None = None
    topography: str = "world"                # world | aquaplanet | paleo
    ocean_mode: str = "full"                 # full | slab (mixed layer only)
    mixed_layer_depth: float = 50.0          # m, slab-ocean heat capacity
    ocean_init: str = "rest_stratified"      # rest_stratified | cold_uniform
    initial_ice_thickness: float = 0.0       # m of sea ice at t=0 (ocean-wide)

    @property
    def dtype_policy(self) -> DTypePolicy:
        """The resolved precision policy threaded into every component grid."""
        return policy_from_name(self.dtype)

    def array_backend(self):
        """The resolved array backend (raises if an optional one is absent)."""
        return get_backend(self.backend)

    def __post_init__(self):
        if self.ocean_coupling_interval % self.atm_dt != 0:
            raise ValueError(
                "ocean_coupling_interval must be a multiple of atm_dt "
                f"({self.ocean_coupling_interval} vs {self.atm_dt})")
        if abs(self.ocean_params.dt_long - self.ocean_coupling_interval) > 1e-9:
            # Keep the two clocks consistent automatically.
            self.ocean_params.dt_long = self.ocean_coupling_interval
        if self.topography not in TOPOGRAPHY_KINDS:
            raise ValueError(f"topography must be one of {TOPOGRAPHY_KINDS}, "
                             f"got {self.topography!r}")
        if self.ocean_mode not in OCEAN_MODES:
            raise ValueError(f"ocean_mode must be one of {OCEAN_MODES}, "
                             f"got {self.ocean_mode!r}")
        if self.ocean_init not in OCEAN_INIT_KINDS:
            raise ValueError(f"ocean_init must be one of {OCEAN_INIT_KINDS}, "
                             f"got {self.ocean_init!r}")
        if self.rotation_factor < 0:
            raise ValueError(f"rotation_factor must be >= 0, "
                             f"got {self.rotation_factor}")
        if self.solar_constant <= 0:
            raise ValueError(f"solar_constant must be positive, "
                             f"got {self.solar_constant}")

    @property
    def atm_steps_per_coupling(self) -> int:
        return int(round(self.ocean_coupling_interval / self.atm_dt))

    @property
    def atm_steps_per_day(self) -> int:
        return int(round(SECONDS_PER_DAY / self.atm_dt))

    @property
    def atm_steps_per_radiation(self) -> int:
        return max(1, int(round(self.radiation_interval / self.atm_dt)))

    @property
    def checkpoint_boundary_steps(self) -> int:
        """Steps between *safe* checkpoint boundaries.

        A checkpoint is bitwise-resumable by a **fresh** model only where
        every model-level transient reconstructs itself: the ocean-forcing
        accumulator must be empty (a coupling boundary) and the radiation
        cache must be recomputed on the next step anyway (a radiation
        boundary).  The least common multiple of the two cadences is the
        finest checkpoint interval the run harness accepts.
        """
        return math.lcm(self.atm_steps_per_coupling,
                        self.atm_steps_per_radiation)

    # ------------------------------------------------------------------
    # serialization (scenario specs, result-cache keys, restart metadata)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A plain, JSON-serializable dict of every knob (nested included).

        Per-member array knobs (the ensemble driver's ``(nens, 1, 1)``
        ``sst_clamp``) are not serializable — serialize the member configs
        (``FoamEnsemble.member_config``) instead.
        """
        if isinstance(self.ocean_params.sst_clamp, np.ndarray):
            raise ValueError(
                "cannot serialize a per-member array sst_clamp; serialize "
                "each member's config instead")
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FoamConfig":
        """Rebuild a config from :meth:`to_dict` output (exact round-trip)."""
        data = dict(data)
        ocean = data.pop("ocean_params", None)
        if ocean is not None and not isinstance(ocean, OceanParams):
            ocean = dict(ocean)
            baro = ocean.pop("barotropic", None)
            mixing = ocean.pop("mixing", None)
            ocean = OceanParams(
                barotropic=(BarotropicParams(**baro) if isinstance(baro, dict)
                            else baro or BarotropicParams()),
                mixing=(PPMixingParams(**mixing) if isinstance(mixing, dict)
                        else mixing or PPMixingParams()),
                **ocean)
        if ocean is not None:
            data["ocean_params"] = ocean
        unknown = set(data) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown FoamConfig fields: {sorted(unknown)}")
        return cls(**data)

    def content_hash(self) -> str:
        """Stable SHA-256 of the full configuration content.

        Hashes the canonical JSON of :meth:`to_dict` (sorted keys, no
        whitespace), so two configs hash equal iff every knob — nested
        ocean parameters included — is equal, regardless of construction
        order.  This is the :class:`~repro.runs.plan.RunKey` building
        block and the stamp restart checkpoints carry so a resume onto a
        mismatched configuration fails loudly instead of diverging.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def paper_config() -> FoamConfig:
    """The configuration of the paper's production runs."""
    return FoamConfig()


def small_config() -> FoamConfig:
    """Reduced resolution for example scripts (minutes, not hours)."""
    return FoamConfig(atm_mmax=10, atm_nlat=28, atm_nlon=36, atm_nlev=8,
                      ocn_nx=48, ocn_ny=48, ocn_nlev=8)


def test_config() -> FoamConfig:
    """Minimal configuration for the test suite (seconds per simulated day)."""
    return FoamConfig(atm_mmax=8, atm_nlat=24, atm_nlon=32, atm_nlev=5,
                      atm_dt=3600.0, ocn_nx=24, ocn_ny=24, ocn_nlev=5)
