"""FOAM coupled-model configuration.

The paper's production configuration (``paper_config``): R15 spectral
atmosphere on a 48 x 40 Gaussian grid with 18 levels and a 30-minute step;
128 x 128 x 16 Mercator ocean with a 6-hour step (called 4x per simulated
day); radiation recomputed twice per day.  ``test_config`` scales everything
down for CI-speed runs; ``small_config`` sits in between for the example
scripts.  All knobs are independent, so any resolution in between works.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend import DTypePolicy, get_backend, policy_from_name
from repro.ocean.model import OceanParams
from repro.util.constants import SECONDS_PER_DAY


@dataclass
class FoamConfig:
    """Every tunable of the coupled system in one place."""

    # Atmosphere (PCCM2-style spectral).
    atm_mmax: int = 15              # rhomboidal truncation (R15)
    atm_nlat: int = 40
    atm_nlon: int = 48
    atm_nlev: int = 18
    atm_dt: float = 1800.0          # 30-minute step (paper)
    robert_filter: float = 0.04

    # Ocean.
    ocn_nx: int = 128
    ocn_ny: int = 128
    ocn_nlev: int = 16
    ocean_params: OceanParams = field(default_factory=OceanParams)

    # Coupling cadence.
    ocean_coupling_interval: float = 6.0 * 3600.0   # ocean called 4x/day
    radiation_interval: float = SECONDS_PER_DAY / 2  # radiation 2x/day

    # Numerics / reproducibility.
    seed: int = 0
    # Array-backend knobs: None defers to FOAM_DTYPE / FOAM_BACKEND (and
    # their float64 / numpy defaults).
    dtype: str | None = None
    backend: str | None = None

    @property
    def dtype_policy(self) -> DTypePolicy:
        """The resolved precision policy threaded into every component grid."""
        return policy_from_name(self.dtype)

    def array_backend(self):
        """The resolved array backend (raises if an optional one is absent)."""
        return get_backend(self.backend)

    def __post_init__(self):
        if self.ocean_coupling_interval % self.atm_dt != 0:
            raise ValueError(
                "ocean_coupling_interval must be a multiple of atm_dt "
                f"({self.ocean_coupling_interval} vs {self.atm_dt})")
        if abs(self.ocean_params.dt_long - self.ocean_coupling_interval) > 1e-9:
            # Keep the two clocks consistent automatically.
            self.ocean_params.dt_long = self.ocean_coupling_interval

    @property
    def atm_steps_per_coupling(self) -> int:
        return int(round(self.ocean_coupling_interval / self.atm_dt))

    @property
    def atm_steps_per_day(self) -> int:
        return int(round(SECONDS_PER_DAY / self.atm_dt))


def paper_config() -> FoamConfig:
    """The configuration of the paper's production runs."""
    return FoamConfig()


def small_config() -> FoamConfig:
    """Reduced resolution for example scripts (minutes, not hours)."""
    return FoamConfig(atm_mmax=10, atm_nlat=28, atm_nlon=36, atm_nlev=8,
                      ocn_nx=48, ocn_ny=48, ocn_nlev=8)


def test_config() -> FoamConfig:
    """Minimal configuration for the test suite (seconds per simulated day)."""
    return FoamConfig(atm_mmax=8, atm_nlat=24, atm_nlon=32, atm_nlev=5,
                      atm_dt=3600.0, ocn_nx=24, ocn_ny=24, ocn_nlev=5)
